examples/whatif_physical_design.mli:
