examples/whatif_physical_design.ml: Cardest Core Cost Exec List Planner Printf Storage Util
