examples/cardinality_anatomy.mli:
