examples/quickstart.ml: Cardest Core Exec List Printf Query Storage
