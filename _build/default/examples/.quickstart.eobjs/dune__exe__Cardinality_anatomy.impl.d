examples/cardinality_anatomy.ml: Array Cardest Core Float List Option Printf Query String Util
