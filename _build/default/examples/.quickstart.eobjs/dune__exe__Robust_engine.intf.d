examples/robust_engine.mli:
