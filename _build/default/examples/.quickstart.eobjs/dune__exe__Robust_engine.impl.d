examples/robust_engine.ml: Core Exec Float List Printf Storage
