examples/quickstart.mli:
