(** Zipfian (power-law) samplers.

    The IMDB data set is dominated by heavy-tailed distributions: a few
    movies have thousands of cast entries while most have a handful. The
    synthetic generator uses this module to plant the same skew, which is
    what breaks the optimizers' uniformity assumption. *)

type t
(** A sampler over ranks [0 .. n-1] with probability proportional to
    [1 / (rank+1)^theta]. *)

val create : n:int -> theta:float -> t
(** [create ~n ~theta] precomputes the cumulative distribution. [theta = 0]
    degenerates to uniform; typical skew values are 0.5–1.2. Requires
    [n > 0] and [theta >= 0]. *)

val n : t -> int

val theta : t -> float

val sample : t -> Prng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)

val pmf : t -> int -> float
(** Probability mass of a rank. *)

val weights : t -> float array
(** Copy of the normalized probability masses, indexed by rank. *)
