type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step (Steele, Lea, Flood 2014). *)
let next t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  assert (k <= n);
  if k * 3 >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let all = Array.init n (fun i -> i) in
    shuffle t all;
    Array.sub all 0 k
  end else begin
    (* Sparse case: rejection sampling through a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let candidate = int t n in
      if not (Hashtbl.mem seen candidate) then begin
        Hashtbl.add seen candidate ();
        out.(!filled) <- candidate;
        incr filled
      end
    done;
    out
  end
