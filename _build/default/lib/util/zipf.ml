type t = {
  n : int;
  theta : float;
  cumulative : float array; (* cumulative.(i) = P(rank <= i) *)
}

let create ~n ~theta =
  assert (n > 0);
  assert (theta >= 0.0);
  let raw = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (raw.(i) /. total);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { n; theta; cumulative }

let n t = t.n

let theta t = t.theta

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Binary search for the first index with cumulative >= u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cumulative.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (t.n - 1)

let pmf t rank =
  assert (rank >= 0 && rank < t.n);
  if rank = 0 then t.cumulative.(0)
  else t.cumulative.(rank) -. t.cumulative.(rank - 1)

let weights t = Array.init t.n (pmf t)
