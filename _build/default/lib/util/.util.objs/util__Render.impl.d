lib/util/render.ml: Array Buffer Bytes Float List Printf Stat String
