lib/util/render.mli: Stat
