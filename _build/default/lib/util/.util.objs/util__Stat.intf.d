lib/util/stat.mli:
