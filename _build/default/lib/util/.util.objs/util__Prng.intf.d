lib/util/prng.mli:
