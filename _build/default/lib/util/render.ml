let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let pad_left width s =
  let n = String.length s in
  if n >= width then s else String.make (width - n) ' ' ^ s

let table ?title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> if i = 0 then pad widths.(i) cell else pad_left widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let bar_chart ?title ?(width = 50) entries =
  let max_v = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 entries in
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 entries in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  List.iter
    (fun (label, v) ->
      let n =
        if max_v <= 0.0 then 0
        else int_of_float (Float.round (v /. max_v *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%s  %s %s\n" (pad label_w label) (String.make n '#')
           (if Float.is_integer v then Printf.sprintf "%.0f" v
            else Printf.sprintf "%.1f" v)))
    entries;
  Buffer.contents buf

let log_boxplot_rows ?title ~lo ~hi ?(width = 72) rows =
  assert (lo > 0.0 && hi > lo);
  let llo = log10 lo and lhi = log10 hi in
  let position v =
    let v = Float.min (Float.max v lo) hi in
    let frac = (log10 v -. llo) /. (lhi -. llo) in
    int_of_float (Float.round (frac *. float_of_int (width - 1)))
  in
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows in
  let buf = Buffer.create 512 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  (* Axis line with tick marks at powers of ten. *)
  let axis = Bytes.make width '.' in
  let d = ref (Float.round llo) in
  while !d <= lhi do
    if !d >= llo then Bytes.set axis (position (10.0 ** !d)) '+';
    d := !d +. 1.0
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s  %s  (log scale %g .. %g, +: powers of 10)\n"
       (pad label_w "") (Bytes.to_string axis) lo hi);
  List.iter
    (fun (label, bp) ->
      match bp with
      | None -> Buffer.add_string buf (Printf.sprintf "%s  (no data)\n" (pad label_w label))
      | Some (b : Stat.boxplot) ->
          let line = Bytes.make width ' ' in
          let a = position b.p5 and z = position b.p95 in
          for i = a to z do
            Bytes.set line i '-'
          done;
          let a = position b.p25 and z = position b.p75 in
          for i = a to z do
            Bytes.set line i '#'
          done;
          Bytes.set line (position b.p50) '|';
          Buffer.add_string buf (Printf.sprintf "%s  %s\n" (pad label_w label) (Bytes.to_string line)))
    rows;
  Buffer.contents buf

let float_cell v =
  let a = Float.abs v in
  if a >= 1e6 then Printf.sprintf "%.2e" v
  else if a >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.is_integer v && a < 100.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let percent_cell v =
  let p = v *. 100.0 in
  if p > 0.0 && p < 10.0 then Printf.sprintf "%.1f%%" p else Printf.sprintf "%.0f%%" p
