(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction (data generation,
    sampling, randomized plan enumeration) draws from this SplitMix64
    generator so that all tables and figures are bit-for-bit reproducible
    across runs and machines. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Used to give each table / experiment its own stream. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)]. Requires [k <= n]. *)
