(** Plain-text rendering of the paper's tables and figures.

    The benchmark harness prints every reproduced table as an aligned ASCII
    table and every figure as an ASCII chart (log-scale boxplot strips for
    Figure 3-style plots, bar histograms for Figure 6/7-style plots), so
    the whole evaluation is readable straight from [dune exec
    bench/main.exe]. *)

val table :
  ?title:string -> header:string list -> string list list -> string
(** Aligned table with a header row and one line per data row. *)

val bar_chart :
  ?title:string -> ?width:int -> (string * float) list -> string
(** Horizontal bar per labeled value, scaled to the maximum. *)

val log_boxplot_rows :
  ?title:string ->
  lo:float ->
  hi:float ->
  ?width:int ->
  (string * Stat.boxplot option) list ->
  string
(** One row per label, drawing 5/25/50/75/95 percentiles on a log10 axis
    from [lo] to [hi]. [None] rows render as absent (no data). Markers:
    ['-'] whisker span (p5..p95), ['#'] box (p25..p75), ['|'] median. *)

val float_cell : float -> string
(** Compact numeric formatting: 2 significant decimals under 100, integers
    above, scientific beyond 10^6. *)

val percent_cell : float -> string
(** Renders 0.253 as ["25%"] (nearest percent, with one decimal under
    10%). *)
