(** Adaptive re-optimization — the paper's "second route" for future
    work (Section 8: "increase the interaction between the runtime and
    the query optimizer").

    The strategy is deliberately simple (mid-query plan switching needs
    engine surgery; this needs none): before committing to a plan, probe
    it. Optimize with the current estimates, {e execute the plan's
    bottom-most unobserved join subtree} for real, inject the observed
    cardinality back into the optimizer (the paper's own injection
    mechanism), and re-optimize. After a bounded number of probes, run
    the final plan. Probe work is honestly charged: the reported runtime
    is probe work plus final execution.

    The pay-off mirrors Section 4.1's analysis: a handful of cheap
    observations removes exactly the catastrophic plans that pure
    estimates produce, at a small constant overhead for queries that
    were already fine. *)

type outcome = {
  result : Exec.Executor.result;
      (** Final execution; [work] and [runtime_ms] include probe work. *)
  probes : int;  (** Re-optimization rounds actually used. *)
  probe_work : int;  (** Work spent observing subtree cardinalities. *)
}

val run :
  db:Storage.Database.t ->
  graph:Query.Query_graph.t ->
  config:Exec.Engine_config.t ->
  model:Cost.Cost_model.t ->
  estimator:Cardest.Estimator.t ->
  ?max_probes:int ->
  ?projections:(int * int) list ->
  unit ->
  outcome
(** Defaults: at most 3 probes. The plan search honours the engine
    configuration (nested-loop joins offered only when the engine would
    execute them). *)
