lib/core/session.mli: Cardest Cost Exec Plan Planner Query Storage
