lib/core/session.ml: Cardest Cost Datagen Dbstats Exec Format Hashtbl Plan Planner Printf Query Sqlfront Storage Util Workload
