lib/core/adaptive.mli: Cardest Cost Exec Query Storage
