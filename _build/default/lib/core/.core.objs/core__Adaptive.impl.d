lib/core/adaptive.ml: Cardest Exec Float Hashtbl Option Plan Planner Query Storage Util
