(** Figure 5: PostgreSQL estimates with its sampled distinct-value counts
    versus exact distinct counts.

    The paper's counter-intuitive finding: fixing the distinct counts
    slightly reduces error variance but makes systematic underestimation
    {e worse}, because the too-low distinct estimates inflated join
    selectivities in a direction that accidentally compensated for the
    independence assumption ("two wrongs make a right"). *)

val measure :
  Harness.t -> (string * (int * Util.Stat.boxplot option) list) list
(** Two entries — default statistics and true distinct counts — each with
    per-join-count boxplots of signed errors. *)

val render : Harness.t -> string
