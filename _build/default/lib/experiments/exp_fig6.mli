(** Figure 6: how engine robustness tames bad estimates.

    PostgreSQL's own estimates, PK-only indexes, three engine variants:
    (a) stock 9.4 (nested-loop joins + fixed hash tables) — some queries
    time out; (b) nested-loop joins disabled — timeouts disappear;
    (c) plus runtime hash-table resizing — nearly all queries within 2x
    of the true-cardinality plan. *)

val variants : (string * Exec.Engine_config.t) list

val bucket_edges : float array
val bucket_labels : string list

val measure : Harness.t -> (string * float list) list
(** Per engine variant: fraction of queries per slowdown bucket
    ([\[0.3,0.9) .. >100]). *)

val render : Harness.t -> string
