(** Table 1: q-error percentiles (median / 90th / 95th / max) of the
    base-table selection estimates of all five systems, over every
    selection in the JOB workload. *)

type row = {
  system : string;
  median : float;
  p90 : float;
  p95 : float;
  max : float;
  selections : int;
}

val measure : Harness.t -> row list

val render : Harness.t -> string
