(** Figure 9 / Section 6.1: the cost distribution of random join orders.

    10,000 Quickpick samples per query (true cardinalities, C_mm cost)
    under three physical designs; costs are normalized by the optimal
    PK+FK plan. Also reproduces the paper's workload-level summary: the
    percentage of random plans within 1.5x of the optimum per design,
    and the average worst/best plan ratio ("width" of the distribution). *)

val query_names : string list
(** 6a, 13a, 16d, 17b, 25c — the figure's five representative queries. *)

type summary = {
  config : Storage.Database.index_config;
  frac_within_1_5 : float;
  avg_width : float;  (** Geometric mean over queries of worst/best. *)
}

val measure_query :
  Harness.t -> Harness.qctx -> attempts:int ->
  (Storage.Database.index_config * float array) list
(** Normalized cost samples per index configuration. *)

val summarize : Harness.t -> attempts:int -> summary list
(** Whole-workload summary (fewer samples per query for tractability). *)

val render : Harness.t -> string
