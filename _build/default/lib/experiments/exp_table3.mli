(** Table 3 / Section 6.3: exhaustive dynamic programming versus the
    Quickpick-1000 and Greedy Operator Ordering heuristics, with
    PostgreSQL estimates and with true cardinalities, under PK-only and
    PK+FK designs.

    Each algorithm plans with the given cardinalities; the resulting
    plan's cost is then recomputed with the {e true} cardinalities and
    normalized by the optimal plan of that index configuration — the
    paper's methodology for comparing enumeration quality without
    executing every plan. *)

type row = {
  algorithm : string;
  cards : string;
  config : Storage.Database.index_config;
  median : float;
  p95 : float;
  max : float;
}

val measure : Harness.t -> row list

val render : Harness.t -> string
