type row = {
  algorithm : string;
  cards : string;
  config : Storage.Database.index_config;
  median : float;
  p95 : float;
  max : float;
}

let algorithms = [ "Dynamic Programming"; "Quickpick-1000"; "Greedy Operator Ordering" ]

let card_sources = [ ("PostgreSQL estimates", "PostgreSQL"); ("true cardinalities", "true") ]

let configs = [ Storage.Database.Pk_only; Storage.Database.Pk_fk ]

let plan_of algorithm search prng =
  match algorithm with
  | "Dynamic Programming" -> fst (Planner.Dp.optimize search)
  | "Quickpick-1000" -> fst (Planner.Quickpick.best_of search prng ~attempts:1000)
  | "Greedy Operator Ordering" -> fst (Planner.Goo.optimize search)
  | other -> invalid_arg ("Exp_table3: unknown algorithm " ^ other)

let measure (h : Harness.t) =
  List.concat_map
    (fun config ->
      Harness.with_index_config h config (fun () ->
          List.concat_map
            (fun (cards_label, system) ->
              (* slowdown per query per algorithm *)
              let per_query =
                Array.to_list h.Harness.queries
                |> List.map (fun q ->
                       let est = Harness.estimator h q system in
                       let search =
                         Planner.Search.create ~model:Cost.Cost_model.cmm
                           ~graph:q.Harness.graph ~db:h.Harness.db
                           ~card:est.Cardest.Estimator.subset ()
                       in
                       let true_search =
                         Planner.Search.create ~model:Cost.Cost_model.cmm
                           ~graph:q.Harness.graph ~db:h.Harness.db
                           ~card:(Cardest.True_card.card (Harness.truth q))
                           ()
                       in
                       let optimal = snd (Planner.Dp.optimize true_search) in
                       List.map
                         (fun algorithm ->
                           let prng = Util.Prng.create 90125 in
                           let plan = plan_of algorithm search prng in
                           let cost = Harness.true_cost h q plan in
                           (algorithm, cost /. Float.max 1e-9 optimal))
                         algorithms)
              in
              List.map
                (fun algorithm ->
                  let slowdowns =
                    Array.of_list
                      (List.map (fun per -> List.assoc algorithm per) per_query)
                  in
                  {
                    algorithm;
                    cards = cards_label;
                    config;
                    median = Util.Stat.median slowdowns;
                    p95 = Util.Stat.percentile slowdowns 0.95;
                    max = Util.Stat.maximum slowdowns;
                  })
                algorithms)
            card_sources))
    configs

let render h =
  let rows = measure h in
  Util.Render.table
    ~title:
      "Table 3: exhaustive DP vs Quickpick-1000 vs Greedy Operator Ordering\n\
       (plan chosen with the given cardinalities; cost recomputed with the\n\
       true ones, normalized by the optimal plan of that configuration)"
    ~header:[ "algorithm"; "cardinalities"; "index config"; "median"; "95%"; "max" ]
    (List.map
       (fun r ->
         [
           r.algorithm;
           r.cards;
           Storage.Database.index_config_to_string r.config;
           Util.Render.float_cell r.median;
           Util.Render.float_cell r.p95;
           Util.Render.float_cell r.max;
         ])
       rows)
