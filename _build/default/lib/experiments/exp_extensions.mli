(** The paper's two future-work routes, implemented and measured
    (Section 8: better estimation algorithms from the literature, and
    more interaction between runtime and optimizer).

    Extension 1 — {b join sampling} ({!Cardest.Join_sample}): exact
    counting on a sampled sub-database, scaled by the inverse sampling
    rates. Compared against PostgreSQL's estimator per join count,
    Figure-3 style: the sample sees join-crossing correlations, so its
    medians stay near 1 where the per-attribute estimators have
    collapsed.

    Extension 2 — {b adaptive re-optimization} ({!Core.Adaptive}): probe
    the plan's bottom-most joins, inject the observed cardinalities, and
    re-plan (bounded rounds). Measured as the Section-4.1 slowdown
    distribution, stock engine, against the same optimizer without
    probing. *)

val join_sampling : Harness.t -> string

val adaptive : Harness.t -> string

val qerror_bound : Harness.t -> string
(** Empirical validation of the q^4 plan-quality guarantee of the
    paper's reference [30] ({!Cardest.Qbound}). *)

val render : Harness.t -> string
