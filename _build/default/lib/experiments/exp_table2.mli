(** Table 2 / Section 6.2: how much performance is lost by restricting
    the tree shape to zig-zag, left-deep or right-deep, relative to the
    optimal bushy plan (true cardinalities, C_mm cost), under PK-only
    and PK+FK physical designs.

    Expected shape (the paper's): zig-zag ≈ left-deep ≪ right-deep, and
    the right-deep penalty explodes under FK indexes because only its
    bottom-most join can use an index lookup. *)

type row = {
  shape : string;
  config : Storage.Database.index_config;
  median : float;
  p95 : float;
  max : float;
}

val measure : Harness.t -> row list

val render : Harness.t -> string
