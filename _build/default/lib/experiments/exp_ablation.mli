(** Ablation studies of the design choices DESIGN.md calls out — not in
    the paper's evaluation, but direct follow-ups to its analysis:

    - {b statistics knobs}: PostgreSQL-style base estimation with the MCV
      list and/or histograms removed (how much of Table 1's quality comes
      from which statistic);
    - {b damping sweep}: DBMS A's join-selectivity damping exponent swept
      from 1.0 (pure independence) toward 0.5, showing the
      under/over-estimation trade-off the paper speculates about;
    - {b hash-table bucket floor}: the executor's PostgreSQL-style
      1024-bucket floor removed/enlarged, quantifying how much engine
      robustness it alone provides (Section 4.1's theme);
    - {b syntactic order sensitivity}: the paper's footnote-6 anecdote —
      the same query estimated after permuting the FROM clause yields
      different numbers, because intermediate clamping interacts with the
      (order-dependent) decomposition. *)

val statistics_knobs : Harness.t -> string

val damping_sweep : Harness.t -> string

val bucket_floor : Harness.t -> string

val syntactic_order : Harness.t -> string

val join_algorithms : Harness.t -> string

val render : Harness.t -> string
(** All five, concatenated. *)
