(** Section 4.1's slowdown table: each system's estimates are injected
    into the optimizer, the resulting plans are executed, and runtimes
    are grouped by their slowdown relative to the true-cardinality plan.

    Runs under the paper's initial conditions: primary-key indexes only,
    stock engine (nested-loop joins enabled, fixed-size hash tables). *)

val buckets : float array
(** Bucket edges 0.9 / 1.1 / 2 / 10 / 100; six groups as in the paper. *)

val bucket_labels : string list

val measure : Harness.t -> (string * float list) list
(** Per system: fraction of queries per slowdown group. *)

val render : Harness.t -> string
