(** Figure 4: PostgreSQL estimation errors for individual JOB queries
    versus TPC-H queries.

    The four hard JOB queries (6a, 16d, 17b, 25c) show errors that grow
    with the join count, while the three TPC-H analogues — uniform,
    independent data — stay near 1 across all join counts: synthetic
    benchmarks do not stress cardinality estimation. *)

val job_query_names : string list
val tpch_query_names : string list

val measure :
  Harness.t -> (string * (int * Util.Stat.boxplot option) list) list
(** Per query: (join count, boxplot of signed errors) rows. The TPC-H
    side builds its own database and statistics internally. *)

val render : Harness.t -> string
