lib/experiments/exp_fig8.ml: Array Cardest Cost Exec Float Harness List Printf Storage String Util
