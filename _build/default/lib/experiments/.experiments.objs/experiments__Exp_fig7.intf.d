lib/experiments/exp_fig7.mli: Harness Storage
