lib/experiments/harness.ml: Array Cardest Cost Datagen Dbstats Exec Float Fun Lazy List Planner Query Sqlfront Storage String Workload
