lib/experiments/exp_fig6.ml: Array Buffer Cost Exec Harness List Storage Util
