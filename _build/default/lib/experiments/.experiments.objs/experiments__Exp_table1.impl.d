lib/experiments/exp_table1.ml: Array Cardest Float Harness List Printf Query Util
