lib/experiments/exp_fig7.ml: Array Buffer Cost Exec Exp_fig6 Harness List Storage Util
