lib/experiments/harness.mli: Cardest Cost Dbstats Exec Lazy Plan Planner Query Storage Util Workload
