lib/experiments/exp_fig9.ml: Array Buffer Cardest Cost Float Harness List Planner Printf Storage Util
