lib/experiments/exp_extensions.ml: Array Cardest Core Cost Exec Float Harness List Printf Query Storage Util
