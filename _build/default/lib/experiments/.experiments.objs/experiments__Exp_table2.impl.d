lib/experiments/exp_table2.ml: Array Cardest Cost Float Harness List Planner Storage Util
