lib/experiments/exp_fig3.ml: Array Buffer Cardest Float Harness List Printf Query Util
