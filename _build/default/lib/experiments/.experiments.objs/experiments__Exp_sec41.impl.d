lib/experiments/exp_sec41.ml: Array Cardest Cost Exec Harness List Storage Util
