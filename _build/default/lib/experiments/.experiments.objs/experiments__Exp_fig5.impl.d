lib/experiments/exp_fig5.ml: Array Buffer Exp_fig3 Harness List Option Printf String Util
