lib/experiments/exp_fig3.mli: Cardest Harness Util
