lib/experiments/exp_table3.ml: Array Cardest Cost Float Harness List Planner Storage Util
