lib/experiments/exp_ablation.ml: Array Cardest Cost Dbstats Exec Float Harness List Planner Printf Query Sqlfront Storage String Util
