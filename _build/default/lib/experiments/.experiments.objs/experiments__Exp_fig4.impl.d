lib/experiments/exp_fig4.ml: Array Buffer Cardest Datagen Dbstats Exp_fig3 Float Harness List Printf Query Sqlfront Util Workload
