lib/experiments/exp_fig6.mli: Exec Harness
