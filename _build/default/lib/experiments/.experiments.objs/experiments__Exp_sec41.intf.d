lib/experiments/exp_sec41.mli: Harness
