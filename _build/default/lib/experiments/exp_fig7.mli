(** Figure 7: the same slowdown histogram under two physical designs —
    primary-key indexes only versus primary + foreign-key indexes.

    With FK indexes the plan space contains far better and far worse
    plans; misestimates now push a large fraction of queries beyond 2x
    of the optimum, even with the robust engine of Figure 6c. *)

val configs : (string * Storage.Database.index_config) list

val measure : Harness.t -> (string * float list) list

val render : Harness.t -> string
