(** Figure 8 / Section 5: predicted cost versus actual runtime for the
    three cost models, with PostgreSQL estimates and with true
    cardinalities (PK+FK indexes, robust engine).

    Reported per (cost model, cardinality source):
    - r² of a linear cost→runtime regression (the scatter's tightness);
    - the median absolute percentage prediction error ε of that linear
      model (the paper: 38% for the standard model with true
      cardinalities, 30% after tuning);
    - the geometric-mean runtime of the plans the model picks, and its
      improvement over the standard model under true cardinalities (the
      paper: tuned −41%, simple C_mm −34%). *)

type cell = {
  model : string;
  cards : string;  (** "PostgreSQL estimates" or "true cardinalities" *)
  r2 : float;
  median_error : float;
  geomean_runtime_ms : float;
  timeouts : int;
}

val measure : Harness.t -> cell list

val render : Harness.t -> string
