(** Figure 3: distribution of join cardinality estimation errors by
    number of joins, for all five systems.

    For every connected subexpression of every workload query (up to 6
    joins, as in the figure) the signed error [estimate / truth] is
    computed; a value below 1 is underestimation. One boxplot (5/25/50/
    75/95th percentiles) per (system, join count). *)

type cell = {
  joins : int;
  count : int;
  box : Util.Stat.boxplot;  (** Over signed errors, log-scale friendly. *)
  frac_wrong_10x : float;
      (** Fraction of estimates off by 10x or more (the paper's 16% /
          32% / 52% numbers for PostgreSQL). *)
}

val measure : Harness.t -> max_joins:int -> (string * cell list) list

val signed_errors_for :
  Harness.t -> Harness.qctx -> Cardest.Estimator.t -> max_joins:int ->
  (int * float) list
(** (join count, signed error) for each connected subexpression of one
    query — reused by Figures 4 and 5. *)

val render : Harness.t -> string
