(** Hand-written SQL tokenizer for the JOB subset. *)

type token =
  | IDENT of string  (** lowercased identifier or keyword *)
  | INT of int
  | STRING of string  (** contents of a single-quoted literal *)
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | STAR
  | OP_EQ
  | OP_NE
  | OP_LT
  | OP_LE
  | OP_GT
  | OP_GE
  | SEMI
  | EOF

exception Lex_error of string

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input (unterminated string, stray
    character). Identifiers and keywords come out lowercased; quoted
    string contents are preserved verbatim (with [''] unescaped to [']).
    SQL comments ([-- ...]) are skipped. *)

val token_to_string : token -> string
