exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let peek2 st = match st.tokens with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token what =
  if peek st = token then advance st
  else fail "expected %s, found %s" what (Lexer.token_to_string (peek st))

let keyword st kw =
  match peek st with
  | Lexer.IDENT s when String.equal s kw -> true
  | _ -> false

let expect_keyword st kw =
  if keyword st kw then advance st
  else fail "expected %s, found %s" (String.uppercase_ascii kw)
      (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail "expected identifier, found %s" (Lexer.token_to_string t)

let colref st =
  let alias = ident st in
  expect st Lexer.DOT ".";
  let column = ident st in
  { Ast.alias; column }

let const st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Ast.Cint i
  | Lexer.STRING s ->
      advance st;
      Ast.Cstr s
  | t -> fail "expected constant, found %s" (Lexer.token_to_string t)

let int_const st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | t -> fail "expected integer, found %s" (Lexer.token_to_string t)

let cmp_of_token = function
  | Lexer.OP_EQ -> Some Ast.Eq
  | Lexer.OP_NE -> Some Ast.Ne
  | Lexer.OP_LT -> Some Ast.Lt
  | Lexer.OP_LE -> Some Ast.Le
  | Lexer.OP_GT -> Some Ast.Gt
  | Lexer.OP_GE -> Some Ast.Ge
  | _ -> None

(* An atom or a join predicate, starting at a column reference. *)
let where_leaf st =
  let lhs = colref st in
  match peek st with
  | t when cmp_of_token t <> None -> (
      let op = Option.get (cmp_of_token t) in
      advance st;
      match peek st with
      | Lexer.IDENT _ when peek2 st = Lexer.DOT ->
          let rhs = colref st in
          if op <> Ast.Eq then fail "only equality join predicates are supported";
          Ast.W_join (lhs, rhs)
      | _ -> Ast.W_atom (Ast.A_cmp (lhs, op, const st)))
  | Lexer.IDENT kw -> (
      match kw with
      | "between" ->
          advance st;
          let lo = int_const st in
          expect_keyword st "and";
          let hi = int_const st in
          Ast.W_atom (Ast.A_between (lhs, lo, hi))
      | "in" ->
          advance st;
          expect st Lexer.LPAREN "(";
          let rec items acc =
            let c = const st in
            if peek st = Lexer.COMMA then begin
              advance st;
              items (c :: acc)
            end
            else List.rev (c :: acc)
          in
          let cs = items [] in
          expect st Lexer.RPAREN ")";
          Ast.W_atom (Ast.A_in (lhs, cs))
      | "like" ->
          advance st;
          (match const st with
          | Ast.Cstr p -> Ast.W_atom (Ast.A_like (lhs, p, false))
          | Ast.Cint _ -> fail "LIKE pattern must be a string")
      | "not" -> (
          advance st;
          match peek st with
          | Lexer.IDENT "like" ->
              advance st;
              (match const st with
              | Ast.Cstr p -> Ast.W_atom (Ast.A_like (lhs, p, true))
              | Ast.Cint _ -> fail "LIKE pattern must be a string")
          | Lexer.IDENT "in" ->
              fail "NOT IN is not part of the JOB subset"
          | t -> fail "expected LIKE after NOT, found %s" (Lexer.token_to_string t))
      | "is" -> (
          advance st;
          match peek st with
          | Lexer.IDENT "null" ->
              advance st;
              Ast.W_atom (Ast.A_null (lhs, false))
          | Lexer.IDENT "not" ->
              advance st;
              expect_keyword st "null";
              Ast.W_atom (Ast.A_null (lhs, true))
          | t -> fail "expected NULL after IS, found %s" (Lexer.token_to_string t))
      | other -> fail "unexpected keyword %s in predicate" other)
  | t -> fail "unexpected token %s in predicate" (Lexer.token_to_string t)

let atom_of_leaf = function
  | Ast.W_atom a -> a
  | Ast.W_join _ -> fail "join predicates cannot appear inside OR groups"

let where_item st =
  if peek st = Lexer.LPAREN then begin
    advance st;
    let first = atom_of_leaf (where_leaf st) in
    let rec more acc =
      if keyword st "or" then begin
        advance st;
        more (atom_of_leaf (where_leaf st) :: acc)
      end
      else List.rev acc
    in
    let rest = more [] in
    expect st Lexer.RPAREN ")";
    match rest with
    | [] -> Ast.W_atom first
    | _ -> Ast.W_atom (Ast.A_or (first :: rest))
  end
  else where_leaf st

let projection st =
  if keyword st "min" then begin
    advance st;
    expect st Lexer.LPAREN "(";
    let expr = colref st in
    expect st Lexer.RPAREN ")";
    let label =
      if keyword st "as" then begin
        advance st;
        Some (ident st)
      end
      else None
    in
    { Ast.expr; label }
  end
  else if peek st = Lexer.STAR then begin
    advance st;
    { Ast.expr = { Ast.alias = "*"; column = "*" }; label = None }
  end
  else begin
    let expr = colref st in
    let label =
      if keyword st "as" then begin
        advance st;
        Some (ident st)
      end
      else None
    in
    { Ast.expr; label }
  end

let from_item st =
  let table = ident st in
  match peek st with
  | Lexer.IDENT "as" ->
      advance st;
      (table, ident st)
  | Lexer.IDENT s when s <> "where" ->
      advance st;
      (table, s)
  | _ -> (table, table)

let parse input =
  let st = { tokens = Lexer.tokenize input } in
  expect_keyword st "select";
  let rec projections acc =
    let p = projection st in
    if peek st = Lexer.COMMA then begin
      advance st;
      projections (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let projections = projections [] in
  expect_keyword st "from";
  let rec from acc =
    let f = from_item st in
    if peek st = Lexer.COMMA then begin
      advance st;
      from (f :: acc)
    end
    else List.rev (f :: acc)
  in
  let from = from [] in
  expect_keyword st "where";
  let rec conj acc =
    let item = where_item st in
    if keyword st "and" then begin
      advance st;
      conj (item :: acc)
    end
    else List.rev (item :: acc)
  in
  let where = conj [] in
  if peek st = Lexer.SEMI then advance st;
  if peek st <> Lexer.EOF then
    fail "trailing input: %s" (Lexer.token_to_string (peek st));
  { Ast.projections; from; where }
