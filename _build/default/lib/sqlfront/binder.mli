(** Name resolution and constant encoding: AST -> query graph.

    Binding resolves table aliases against the catalog, translates
    constants into each column's physical representation (dictionary
    codes for strings — a string constant that is absent from the
    dictionary binds to a sentinel code that matches nothing, which is
    precisely the "selectivity 10^-6 predicate" case the paper's Section
    3.1 highlights), and classifies each equality between columns as a
    PK/FK or FK/FK join edge. *)

type bound = {
  graph : Query.Query_graph.t;
  projections : (int * int) list;
      (** (relation index, column index) per SELECT item; the ["*"]
          projection binds to the empty list. *)
}

exception Bind_error of string

val bind : Storage.Database.t -> name:string -> Ast.select -> bound

val bind_sql : Storage.Database.t -> name:string -> string -> bound
(** Parse then bind. *)
