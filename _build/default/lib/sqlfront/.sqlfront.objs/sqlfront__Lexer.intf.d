lib/sqlfront/lexer.mli:
