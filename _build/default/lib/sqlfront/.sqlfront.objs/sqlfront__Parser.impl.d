lib/sqlfront/parser.ml: Ast Lexer List Option Printf String
