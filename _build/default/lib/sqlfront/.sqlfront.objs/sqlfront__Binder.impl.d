lib/sqlfront/binder.ml: Array Ast Hashtbl List Parser Printf Query Storage
