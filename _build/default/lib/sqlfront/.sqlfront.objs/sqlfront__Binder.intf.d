lib/sqlfront/binder.mli: Ast Query Storage
