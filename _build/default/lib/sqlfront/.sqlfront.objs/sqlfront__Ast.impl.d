lib/sqlfront/ast.ml: Format List Printf String
