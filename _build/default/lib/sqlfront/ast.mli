(** Abstract syntax of the JOB SQL subset.

    One select-project-join block: [SELECT MIN(a.c) ... FROM t AS a, ...
    WHERE conj]. The WHERE clause is a conjunction of join predicates
    (column = column) and single-column filter atoms, optionally wrapped
    in OR groups — exactly the shape of the 113 JOB queries. *)

type colref = { alias : string; column : string }

type const = Cint of int | Cstr of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | A_cmp of colref * cmp * const
  | A_between of colref * int * int
  | A_in of colref * const list
  | A_like of colref * string * bool  (** pattern, negated *)
  | A_null of colref * bool  (** negated = IS NOT NULL *)
  | A_or of atom list

type where_item =
  | W_join of colref * colref
  | W_atom of atom

type projection = { expr : colref; label : string option }

type select = {
  projections : projection list;
  from : (string * string) list;  (** (table, alias) *)
  where : where_item list;
}

val pp_colref : Format.formatter -> colref -> unit
val pp_select : Format.formatter -> select -> unit
