type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | STAR
  | OP_EQ
  | OP_NE
  | OP_LT
  | OP_LE
  | OP_GT
  | OP_GE
  | SEMI
  | EOF

exception Lex_error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek () = if !i < n then Some input.[!i] else None in
  let advance () = incr i in
  while !i < n do
    match input.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> advance ()
    | '-' when !i + 1 < n && input.[!i + 1] = '-' ->
        (* Line comment. *)
        while !i < n && input.[!i] <> '\n' do
          advance ()
        done
    | ',' -> emit COMMA; advance ()
    | '.' -> emit DOT; advance ()
    | '(' -> emit LPAREN; advance ()
    | ')' -> emit RPAREN; advance ()
    | '*' -> emit STAR; advance ()
    | ';' -> emit SEMI; advance ()
    | '=' -> emit OP_EQ; advance ()
    | '!' ->
        advance ();
        if peek () = Some '=' then begin emit OP_NE; advance () end
        else raise (Lex_error "expected '=' after '!'")
    | '<' ->
        advance ();
        (match peek () with
        | Some '=' -> emit OP_LE; advance ()
        | Some '>' -> emit OP_NE; advance ()
        | _ -> emit OP_LT)
    | '>' ->
        advance ();
        (match peek () with
        | Some '=' -> emit OP_GE; advance ()
        | _ -> emit OP_GT)
    | '\'' ->
        advance ();
        let buf = Buffer.create 16 in
        let finished = ref false in
        while not !finished do
          match peek () with
          | None -> raise (Lex_error "unterminated string literal")
          | Some '\'' ->
              advance ();
              if peek () = Some '\'' then begin
                Buffer.add_char buf '\'';
                advance ()
              end
              else finished := true
          | Some c ->
              Buffer.add_char buf c;
              advance ()
        done;
        emit (STRING (Buffer.contents buf))
    | c when is_digit c ->
        let start = !i in
        while !i < n && is_digit input.[!i] do
          advance ()
        done;
        emit (INT (int_of_string (String.sub input start (!i - start))))
    | c when is_ident_start c ->
        let start = !i in
        while !i < n && is_ident_char input.[!i] do
          advance ()
        done;
        emit (IDENT (String.lowercase_ascii (String.sub input start (!i - start))))
    | c -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  List.rev (EOF :: !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | STRING s -> Printf.sprintf "'%s'" s
  | COMMA -> ","
  | DOT -> "."
  | LPAREN -> "("
  | RPAREN -> ")"
  | STAR -> "*"
  | OP_EQ -> "="
  | OP_NE -> "<>"
  | OP_LT -> "<"
  | OP_LE -> "<="
  | OP_GT -> ">"
  | OP_GE -> ">="
  | SEMI -> ";"
  | EOF -> "<eof>"
