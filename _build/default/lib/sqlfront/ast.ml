type colref = { alias : string; column : string }

type const = Cint of int | Cstr of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | A_cmp of colref * cmp * const
  | A_between of colref * int * int
  | A_in of colref * const list
  | A_like of colref * string * bool
  | A_null of colref * bool
  | A_or of atom list

type where_item =
  | W_join of colref * colref
  | W_atom of atom

type projection = { expr : colref; label : string option }

type select = {
  projections : projection list;
  from : (string * string) list;
  where : where_item list;
}

let pp_colref fmt { alias; column } = Format.fprintf fmt "%s.%s" alias column

let cmp_str = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let const_str = function
  | Cint i -> string_of_int i
  | Cstr s -> Printf.sprintf "'%s'" s

let rec atom_str = function
  | A_cmp (c, op, v) ->
      Printf.sprintf "%s.%s %s %s" c.alias c.column (cmp_str op) (const_str v)
  | A_between (c, lo, hi) ->
      Printf.sprintf "%s.%s BETWEEN %d AND %d" c.alias c.column lo hi
  | A_in (c, vs) ->
      Printf.sprintf "%s.%s IN (%s)" c.alias c.column
        (String.concat ", " (List.map const_str vs))
  | A_like (c, p, neg) ->
      Printf.sprintf "%s.%s %sLIKE '%s'" c.alias c.column
        (if neg then "NOT " else "") p
  | A_null (c, neg) ->
      Printf.sprintf "%s.%s IS %sNULL" c.alias c.column (if neg then "NOT " else "")
  | A_or atoms -> Printf.sprintf "(%s)" (String.concat " OR " (List.map atom_str atoms))

let pp_select fmt s =
  let projections =
    String.concat ", "
      (List.map
         (fun p ->
           Printf.sprintf "MIN(%s.%s)%s" p.expr.alias p.expr.column
             (match p.label with Some l -> " AS " ^ l | None -> ""))
         s.projections)
  in
  let from =
    String.concat ", "
      (List.map (fun (t, a) -> Printf.sprintf "%s AS %s" t a) s.from)
  in
  let where =
    String.concat " AND "
      (List.map
         (function
           | W_join (a, b) ->
               Printf.sprintf "%s.%s = %s.%s" a.alias a.column b.alias b.column
           | W_atom a -> atom_str a)
         s.where)
  in
  Format.fprintf fmt "SELECT %s FROM %s WHERE %s" projections from where
