(** Recursive-descent parser for the JOB SQL subset.

    Accepted grammar (case-insensitive keywords):

    {v
    select   ::= SELECT proj ("," proj)* FROM rel ("," rel)* WHERE conj [";"]
    proj     ::= MIN "(" colref ")" [AS ident] | colref [AS ident] | "*"
    rel      ::= ident [[AS] ident]
    conj     ::= item (AND item)*
    item     ::= "(" atom (OR atom)* ")" | atom
    atom     ::= colref "=" colref            -- join predicate
               | colref cmp const
               | colref BETWEEN int AND int
               | colref [NOT] IN "(" const ("," const)* ")"
               | colref [NOT] LIKE string
               | colref IS [NOT] NULL
    colref   ::= ident "." ident
    v} *)

exception Parse_error of string

val parse : string -> Ast.select
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input. *)
