(** Per-column string dictionaries.

    Codes are dense integers assigned in insertion order; comparisons and
    joins run on codes, while pattern predicates (LIKE) are compiled once
    into a set of matching codes by scanning the dictionary. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Code for the string, allocating a fresh code on first sight. *)

val find_opt : t -> string -> int option
(** Code if the string is already interned. *)

val get : t -> int -> string
(** Inverse of [intern]. Raises [Invalid_argument] on unknown codes. *)

val size : t -> int
(** Number of distinct interned strings. *)

val iter : (int -> string -> unit) -> t -> unit
(** Visit every (code, string) pair. *)

val matching_codes : t -> (string -> bool) -> bool array
(** [matching_codes d p] is a bitmap indexed by code, true where the
    decoded string satisfies [p]. Used to compile LIKE predicates. *)
