type t = {
  mutable strings : string array;
  mutable count : int;
  index : (string, int) Hashtbl.t;
}

let create () = { strings = Array.make 16 ""; count = 0; index = Hashtbl.create 64 }

let grow t =
  let capacity = Array.length t.strings in
  if t.count = capacity then begin
    let bigger = Array.make (2 * capacity) "" in
    Array.blit t.strings 0 bigger 0 capacity;
    t.strings <- bigger
  end

let intern t s =
  match Hashtbl.find_opt t.index s with
  | Some code -> code
  | None ->
      grow t;
      let code = t.count in
      t.strings.(code) <- s;
      t.count <- t.count + 1;
      Hashtbl.add t.index s code;
      code

let find_opt t s = Hashtbl.find_opt t.index s

let get t code =
  if code < 0 || code >= t.count then invalid_arg "Dict.get: unknown code";
  t.strings.(code)

let size t = t.count

let iter f t =
  for code = 0 to t.count - 1 do
    f code t.strings.(code)
  done

let matching_codes t p =
  let bitmap = Array.make t.count false in
  iter (fun code s -> if p s then bitmap.(code) <- true) t;
  bitmap
