lib/storage/column.mli: Dict Value
