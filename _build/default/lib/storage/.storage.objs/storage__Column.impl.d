lib/storage/column.ml: Array Dict Hashtbl Printf Value
