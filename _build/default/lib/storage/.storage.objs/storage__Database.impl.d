lib/storage/database.ml: Hashtbl Index List Option Printf Table
