lib/storage/index.ml: Array Hashtbl Table Value
