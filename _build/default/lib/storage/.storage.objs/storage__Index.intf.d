lib/storage/index.mli: Table
