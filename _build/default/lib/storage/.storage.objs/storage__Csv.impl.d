lib/storage/csv.ml: Array Buffer Column Database Filename Fun List Printf String Sys Table Value
