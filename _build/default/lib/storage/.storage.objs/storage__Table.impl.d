lib/storage/table.ml: Array Column Hashtbl List Option Printf
