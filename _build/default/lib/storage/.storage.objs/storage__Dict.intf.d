lib/storage/dict.mli:
