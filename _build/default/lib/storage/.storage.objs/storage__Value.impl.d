lib/storage/value.ml: Format String
