lib/storage/csv.mli: Database Table Value
