lib/storage/database.mli: Index Table
