(** CSV import and export for tables and whole databases.

    The paper's IMDB snapshot ships as CSV files; this module is the
    bridge between such dumps and the engine's columnar storage. The
    dialect is the common one: comma separator, double-quote quoting
    with [""] escapes, quoted fields may contain separators and
    newlines, an empty unquoted field is SQL NULL (a quoted empty string
    [""] is the empty string). Exports write a header row; imports
    validate it against the declared schema. *)

type column_spec = { name : string; ty : Value.ty }

exception Csv_error of string
(** Malformed input: unterminated quote, wrong column count, type errors,
    header mismatch — always with a line number. *)

val export : Table.t -> path:string -> unit
(** Write the table (with a header row) to [path]. *)

val import :
  name:string ->
  ?pk:string ->
  ?fks:string list ->
  columns:column_spec list ->
  path:string ->
  unit ->
  Table.t
(** Read a CSV with a header row matching [columns] (same names, same
    order). Integer columns accept decimal literals; empty fields load
    as NULL. *)

val export_database : Database.t -> dir:string -> unit
(** One [<table>.csv] per table (directory created if missing). *)

(* Low-level helpers, exposed for tests. *)

val parse_line : string -> int -> string option list * int
(** [parse_line text pos] parses one record starting at [pos]; returns
    the fields ([None] = NULL) and the position after the record's
    newline. Handles quoted newlines. *)

val format_field : Value.t -> string
(** CSV encoding of one value. *)
