(** A base table: a named bundle of equal-length columns plus key
    metadata.

    The key metadata ([pk], [fks]) is what the physical-design experiments
    switch on: "PK indexes only" builds one index per [pk] column, "PK+FK"
    additionally indexes every [fks] column. *)

type t

val create :
  name:string -> ?pk:string -> ?fks:string list -> Column.t array -> t
(** All columns must have the same length; [pk]/[fks] must name existing
    columns. *)

val name : t -> string
val row_count : t -> int
val columns : t -> Column.t array
val column_count : t -> int

val column_index : t -> string -> int
(** Raises [Invalid_argument] with a helpful message if absent. *)

val column : t -> int -> Column.t
val find_column : t -> string -> Column.t

val pk : t -> int option
(** Column index of the primary key, if declared. *)

val fks : t -> int list
(** Column indexes of declared foreign keys. *)

val value : t -> row:int -> col:int -> Value.t
