(** Scalar values and column types.

    The engine is columnar: every column physically stores machine
    integers. String columns are dictionary-encoded, so a [Str] value only
    materializes at the storage boundary (loading, printing, LIKE
    evaluation over the dictionary). *)

type ty = Int_ty | Str_ty

type t = Null | Int of int | Str of string

val null_code : int
(** Sentinel stored in column arrays for SQL NULL ([min_int]). *)

val ty_to_string : ty -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
(** SQL-style equality except that it is total: [Null] equals [Null] here
    (predicate evaluation handles three-valued logic itself). *)
