type ty = Int_ty | Str_ty

type t = Null | Int of int | Str of string

let null_code = min_int

let ty_to_string = function Int_ty -> "int" | Str_ty -> "text"

let pp fmt = function
  | Null -> Format.pp_print_string fmt "NULL"
  | Int i -> Format.pp_print_int fmt i
  | Str s -> Format.fprintf fmt "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | (Null | Int _ | Str _), _ -> false
