type t = {
  name : string;
  ty : Value.ty;
  data : int array;
  dict : Dict.t option;
}

let of_ints ~name values =
  let data =
    Array.map (function Some v -> v | None -> Value.null_code) values
  in
  { name; ty = Value.Int_ty; data; dict = None }

let of_strings ~name values =
  let dict = Dict.create () in
  let data =
    Array.map
      (function Some s -> Dict.intern dict s | None -> Value.null_code)
      values
  in
  { name; ty = Value.Str_ty; data; dict = Some dict }

let length t = Array.length t.data

let value t row =
  let code = t.data.(row) in
  if code = Value.null_code then Value.Null
  else
    match t.dict with
    | None -> Value.Int code
    | Some dict -> Value.Str (Dict.get dict code)

let is_null t row = t.data.(row) = Value.null_code

let distinct_count t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun code -> if code <> Value.null_code then Hashtbl.replace seen code ())
    t.data;
  Hashtbl.length seen

let encode t v =
  match (v, t.dict) with
  | Value.Null, _ -> Some Value.null_code
  | Value.Int i, None -> Some i
  | Value.Str s, Some dict -> Dict.find_opt dict s
  | Value.Int _, Some _ | Value.Str _, None ->
      invalid_arg
        (Printf.sprintf "Column.encode: type mismatch on column %s" t.name)
