(** A single materialized column.

    Integer columns hold their values directly; string columns hold
    dictionary codes. NULL is [Value.null_code] in either case. *)

type t = {
  name : string;
  ty : Value.ty;
  data : int array; (* values or dictionary codes; Value.null_code for NULL *)
  dict : Dict.t option; (* Some for Str_ty columns *)
}

val of_ints : name:string -> int option array -> t
(** Integer column; [None] becomes NULL. *)

val of_strings : name:string -> string option array -> t
(** Dictionary-encoded string column; [None] becomes NULL. *)

val length : t -> int

val value : t -> int -> Value.t
(** Decoded value of a row. *)

val is_null : t -> int -> bool

val distinct_count : t -> int
(** Exact number of distinct non-NULL values (computed on demand). *)

val encode : t -> Value.t -> int option
(** Physical code a value would have in this column, or [None] when a
    string constant is absent from the dictionary (it then matches no
    row). [Some Value.null_code] encodes NULL. *)
