(** Unclustered hash indexes.

    The executor's index-nested-loop join probes these; the optimizer's
    access-path choices depend on which of them exist (the paper's "no /
    PK / PK+FK" physical designs). NULL keys are not indexed. *)

type t

val build : Table.t -> col:int -> t
(** Single pass over the column, bucketing row ids by key code. *)

val table_name : t -> string
val column : t -> int

val lookup : t -> int -> int array
(** Row ids whose key equals the given code; empty array if none. The
    returned array is shared — callers must not mutate it. *)

val count : t -> int -> int
(** Number of matching rows, without materializing them. *)

val distinct_keys : t -> int

val average_fanout : t -> float
(** Mean bucket size over present keys. *)
