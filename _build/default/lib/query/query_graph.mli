(** The bound query graph: the optimizer's view of one JOB query.

    Relations are indexed 0..n-1; subsets of relations are
    {!Util.Bitset.t} values. Edges are equality join predicates between
    two relation columns; [fk_side] records which side references the
    other's primary key (both [None] for the FK/FK "dotted" edges of the
    paper's Figure 2). *)

type relation = {
  idx : int;
  alias : string;
  table : Storage.Table.t;
  preds : Predicate.t;
}

type edge = {
  left : int;  (** relation index *)
  left_col : int;
  right : int;  (** relation index *)
  right_col : int;
  pk_side : [ `Left | `Right ] option;
      (** Which side is a primary key, if either (key/foreign-key edge). *)
}

type t

val create : name:string -> relation array -> edge list -> t
(** Validates indices and that the graph is connected. *)

val name : t -> string
val n_relations : t -> int
val relations : t -> relation array
val relation : t -> int -> relation
val edges : t -> edge list
val n_edges : t -> int

val relation_by_alias : t -> string -> relation option

val adjacency : t -> int -> Util.Bitset.t
(** Neighbor mask of one relation. *)

val neighbors : t -> Util.Bitset.t -> Util.Bitset.t
(** Union of neighbors of a subset, minus the subset itself. *)

val is_connected : t -> Util.Bitset.t -> bool
(** O(|S|) BFS with bit tricks; true for singletons, false for empty. *)

val edges_between : t -> Util.Bitset.t -> Util.Bitset.t -> edge list
(** Join edges with one endpoint in each (disjoint) subset, oriented so
    that [left] lies in the first subset. *)

val connected_subsets : t -> Util.Bitset.t array
(** All connected non-empty subsets, sorted by cardinality then value.
    For our capped queries this is at most a few thousand masks. *)

val join_columns : t -> int -> int list
(** Columns of a relation that participate in any join edge (sorted,
    deduplicated). *)

val full_set : t -> Util.Bitset.t

val pp : Format.formatter -> t -> unit
(** Human-readable dump: relations with predicates, then edges. *)
