type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | Cmp of { col : int; op : cmp; code : int }
  | In of { col : int; codes : int list }
  | Str_cmp of { col : int; op : cmp; value : string }
  | Like of { col : int; pattern : string; negated : bool }
  | Is_null of { col : int; negated : bool }
  | Between of { col : int; lo : int; hi : int }
  | Or of atom list
  | Const_false

type t = atom list

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec atom_column = function
  | Cmp { col; _ } | In { col; _ } | Like { col; _ } | Is_null { col; _ }
  | Between { col; _ } | Str_cmp { col; _ } ->
      Some col
  | Const_false -> None
  | Or atoms -> (
      match List.filter_map atom_column atoms with
      | [] -> None
      | c :: rest -> if List.for_all (Int.equal c) rest then Some c else None)

let eval_cmp op lhs rhs =
  match op with
  | Eq -> lhs = rhs
  | Ne -> lhs <> rhs
  | Lt -> lhs < rhs
  | Le -> lhs <= rhs
  | Gt -> lhs > rhs
  | Ge -> lhs >= rhs

let rec compile_atom table atom =
  let data col = (Storage.Table.column table col).Storage.Column.data in
  let null = Storage.Value.null_code in
  match atom with
  | Const_false -> fun _ -> false
  | Cmp { col; op; code } ->
      let d = data col in
      fun row ->
        let v = d.(row) in
        v <> null && eval_cmp op v code
  | In { col; codes } ->
      let d = data col in
      let set = Hashtbl.create (List.length codes) in
      List.iter (fun c -> Hashtbl.replace set c ()) codes;
      fun row ->
        let v = d.(row) in
        v <> null && Hashtbl.mem set v
  | Between { col; lo; hi } ->
      let d = data col in
      fun row ->
        let v = d.(row) in
        v <> null && v >= lo && v <= hi
  | Is_null { col; negated } ->
      let d = data col in
      fun row -> if negated then d.(row) <> null else d.(row) = null
  | Str_cmp { col; op; value } -> (
      let column = Storage.Table.column table col in
      let d = column.Storage.Column.data in
      match column.Storage.Column.dict with
      | None -> invalid_arg "Predicate.compile: string comparison on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s ->
                eval_cmp op (String.compare s value) 0)
          in
          fun row ->
            let v = d.(row) in
            v <> null && bitmap.(v))
  | Like { col; pattern; negated } -> (
      let column = Storage.Table.column table col in
      let d = column.Storage.Column.data in
      match column.Storage.Column.dict with
      | None -> invalid_arg "Predicate.compile: LIKE on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s -> Like_match.matches ~pattern s)
          in
          fun row ->
            let v = d.(row) in
            v <> null && bitmap.(v) <> negated)
  | Or atoms ->
      let fns = List.map (compile_atom table) atoms in
      fun row -> List.exists (fun f -> f row) fns

let compile table preds =
  let fns = List.map (compile_atom table) preds in
  match fns with
  | [] -> fun _ -> true
  | [ f ] -> f
  | fns -> fun row -> List.for_all (fun f -> f row) fns

let column_name table col =
  (Storage.Table.column table col).Storage.Column.name

let const_str table col code =
  let column = Storage.Table.column table col in
  match column.Storage.Column.dict with
  | None -> string_of_int code
  | Some dict -> Printf.sprintf "'%s'" (Storage.Dict.get dict code)

let rec pp_atom table fmt = function
  | Const_false -> Format.pp_print_string fmt "FALSE"
  | Cmp { col; op; code } ->
      Format.fprintf fmt "%s %s %s" (column_name table col) (cmp_to_string op)
        (const_str table col code)
  | In { col; codes } ->
      Format.fprintf fmt "%s IN (%s)" (column_name table col)
        (String.concat ", " (List.map (const_str table col) codes))
  | Str_cmp { col; op; value } ->
      Format.fprintf fmt "%s %s '%s'" (column_name table col) (cmp_to_string op)
        value
  | Like { col; pattern; negated } ->
      Format.fprintf fmt "%s %sLIKE '%s'" (column_name table col)
        (if negated then "NOT " else "")
        pattern
  | Is_null { col; negated } ->
      Format.fprintf fmt "%s IS %sNULL" (column_name table col)
        (if negated then "NOT " else "")
  | Between { col; lo; hi } ->
      Format.fprintf fmt "%s BETWEEN %d AND %d" (column_name table col) lo hi
  | Or atoms ->
      Format.fprintf fmt "(%s)"
        (String.concat " OR "
           (List.map (Format.asprintf "%a" (pp_atom table)) atoms))

let pp table fmt preds =
  match preds with
  | [] -> Format.pp_print_string fmt "TRUE"
  | _ ->
      Format.pp_print_string fmt
        (String.concat " AND "
           (List.map (Format.asprintf "%a" (pp_atom table)) preds))
