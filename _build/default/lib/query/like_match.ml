let matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Memoized recursion over (pattern index, string index). *)
  let memo = Hashtbl.create 64 in
  let rec go pi si =
    if pi = np then si = ns
    else
      match Hashtbl.find_opt memo (pi, si) with
      | Some r -> r
      | None ->
          let r =
            match pattern.[pi] with
            | '%' ->
                (* Skip runs of % then either consume nothing or one char. *)
                let rec after_pct j = if j < np && pattern.[j] = '%' then after_pct (j + 1) else j in
                let pj = after_pct pi in
                if pj = np then true
                else
                  let rec try_from k = k <= ns && (go pj k || try_from (k + 1)) in
                  try_from si
            | '_' -> si < ns && go (pi + 1) (si + 1)
            | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
          in
          Hashtbl.add memo (pi, si) r;
          r
  in
  go 0 0

let is_prefix_pattern pattern =
  let n = String.length pattern in
  n > 1
  && pattern.[n - 1] = '%'
  && not (String.exists (fun c -> c = '%' || c = '_') (String.sub pattern 0 (n - 1)))
