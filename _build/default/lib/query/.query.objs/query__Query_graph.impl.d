lib/query/query_graph.ml: Array Format Hashtbl List Option Predicate Printf Storage Util
