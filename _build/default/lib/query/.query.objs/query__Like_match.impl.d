lib/query/like_match.ml: Hashtbl String
