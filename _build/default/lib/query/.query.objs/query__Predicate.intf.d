lib/query/predicate.mli: Format Storage
