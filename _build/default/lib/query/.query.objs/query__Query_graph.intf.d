lib/query/query_graph.mli: Format Predicate Storage Util
