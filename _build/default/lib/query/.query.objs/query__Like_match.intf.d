lib/query/like_match.mli:
