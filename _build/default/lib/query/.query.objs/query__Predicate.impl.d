lib/query/predicate.ml: Array Format Hashtbl Int Like_match List Printf Storage String
