(** SQL [LIKE] pattern matching.

    Supports the two standard wildcards: ['%'] (any sequence, including
    empty) and ['_'] (any single character). Matching is case-sensitive,
    as in PostgreSQL. *)

val matches : pattern:string -> string -> bool

val is_prefix_pattern : string -> bool
(** True when the pattern is of the form ["abc%"] — the only LIKE form
    PostgreSQL can range-estimate from a histogram; everything else gets a
    magic constant. The estimators use this distinction. *)
