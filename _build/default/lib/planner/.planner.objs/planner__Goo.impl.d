lib/planner/goo.ml: Cost List Plan Query Search Util
