lib/planner/search.ml: Cost List Plan Query Storage Util
