lib/planner/dp.ml: Array Cost Hashtbl Plan Printf Query Search Util
