lib/planner/quickpick.mli: Plan Search Util
