lib/planner/dp.mli: Hashtbl Plan Search Util
