lib/planner/quickpick.ml: Array Cost Option Plan Query Search Util
