lib/planner/goo.mli: Plan Search
