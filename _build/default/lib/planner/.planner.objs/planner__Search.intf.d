lib/planner/search.mli: Cost Plan Query Storage Util
