(** Greedy Operator Ordering (Fegaras) — the deterministic greedy
    heuristic of Table 3.

    GOO maintains a forest of join trees, initially one per base
    relation, and repeatedly merges the pair of connected trees whose
    join produces the smallest (estimated) intermediate result. It can
    produce bushy trees but explores only a sliver of the search space,
    and — as the paper notes — it is not index-aware: the merge choice
    looks at cardinalities only, the join method is picked afterwards. *)

val optimize : Search.t -> Plan.t * float
