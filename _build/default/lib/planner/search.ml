module Bitset = Util.Bitset
module QG = Query.Query_graph

type shape_limit = Any_shape | Only_left_deep | Only_right_deep | Only_zig_zag

type t = {
  env : Cost.Cost_model.env;
  model : Cost.Cost_model.t;
  allow_nl : bool;
  allow_hash : bool;
  shape : shape_limit;
}

let create ?(allow_nl = false) ?(allow_hash = true) ?(shape = Any_shape) ~model
    ~graph ~db ~card () =
  { env = { Cost.Cost_model.graph; db; card }; model; allow_nl; allow_hash; shape }

let inl_possible t ~outer ~inner =
  match Plan.base_rel inner with
  | None -> false
  | Some r ->
      let relation = QG.relation t.env.Cost.Cost_model.graph r in
      let table = Storage.Table.name relation.QG.table in
      List.exists
        (fun (e : QG.edge) ->
          (* edges_between orients left into the outer set *)
          Storage.Database.index t.env.Cost.Cost_model.db ~table ~col:e.QG.right_col
          <> None)
        (QG.edges_between t.env.Cost.Cost_model.graph outer.Plan.set inner.Plan.set)

let shape_allows t ~outer ~inner =
  match t.shape with
  | Any_shape -> true
  | Only_left_deep -> Plan.is_base inner
  | Only_right_deep -> Plan.is_base outer
  | Only_zig_zag -> Plan.is_base inner || Plan.is_base outer

let best_join t ~outer:(outer, outer_cost) ~inner:(inner, inner_cost) =
  if not (shape_allows t ~outer ~inner) then None
  else begin
    let candidates = ref [] in
    let consider algo =
      let cost =
        t.model.Cost.Cost_model.join_cost t.env algo ~outer ~inner ~outer_cost
          ~inner_cost
      in
      candidates := (Plan.join algo ~outer ~inner, cost) :: !candidates
    in
    if t.allow_hash then consider Plan.Hash_join;
    consider Plan.Merge_join;
    if inl_possible t ~outer ~inner then consider Plan.Index_nl_join;
    if t.allow_nl then consider Plan.Nl_join;
    match !candidates with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun ((_, bc) as best) ((_, c) as cand) ->
               if c < bc then cand else best)
             first rest)
  end

let best_join_any_orientation t a b =
  let forward = best_join t ~outer:a ~inner:b in
  let backward = best_join t ~outer:b ~inner:a in
  match (forward, backward) with
  | None, r | r, None -> r
  | Some ((_, cf) as f), Some ((_, cb) as b) -> Some (if cf <= cb then f else b)

let scan_entry t r =
  let plan = Plan.scan r in
  (plan, t.model.Cost.Cost_model.scan_cost t.env r)
