module Bitset = Util.Bitset
module QG = Query.Query_graph

let sample (t : Search.t) prng =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let n = QG.n_relations graph in
  let edges = Array.of_list (QG.edges graph) in
  (* Partial plans, keyed by a component representative. *)
  let component = Array.init n (fun i -> i) in
  let rec find i = if component.(i) = i then i else find component.(i) in
  let entries : (Plan.t * float) option array =
    Array.init n (fun r -> Some (Search.scan_entry t r))
  in
  let order = Array.init (Array.length edges) (fun i -> i) in
  Util.Prng.shuffle prng order;
  let remaining = ref n in
  Array.iter
    (fun ei ->
      if !remaining > 1 then begin
        let e = edges.(ei) in
        let ra = find e.QG.left and rb = find e.QG.right in
        if ra <> rb then begin
          let a = Option.get entries.(ra) and b = Option.get entries.(rb) in
          match Search.best_join_any_orientation t a b with
          | Some entry ->
              (* Merge rb into ra. *)
              component.(rb) <- ra;
              entries.(ra) <- Some entry;
              entries.(rb) <- None;
              decr remaining
          | None -> ()
        end
      end)
    order;
  if !remaining <> 1 then invalid_arg "Quickpick.sample: graph not connected";
  Option.get entries.(find 0)

let sample_costs t prng ~attempts =
  Array.init attempts (fun _ -> snd (sample t prng))

let best_of t prng ~attempts =
  assert (attempts > 0);
  let best = ref (sample t prng) in
  for _ = 2 to attempts do
    let cand = sample t prng in
    if snd cand < snd !best then best := cand
  done;
  !best
