(** Quickpick randomized plan enumeration (Waas & Pellenkoft), used two
    ways by the paper: 10,000 raw samples visualize the cost distribution
    of random join orders (Figure 9), and "Quickpick-1000" — the best of
    1000 samples — serves as a randomized optimization heuristic
    (Table 3).

    One sample picks join-graph edges uniformly at random; an edge whose
    endpoints lie in different partial plans merges them (with the
    cheapest legal join method and orientation), until a single plan
    covers all relations. *)

val sample : Search.t -> Util.Prng.t -> Plan.t * float
(** One random (valid) plan and its estimated cost. *)

val sample_costs : Search.t -> Util.Prng.t -> attempts:int -> float array
(** Costs of [attempts] independent random plans (Figure 9's raw
    material). *)

val best_of : Search.t -> Util.Prng.t -> attempts:int -> Plan.t * float
(** Quickpick-N: cheapest of N random plans under the search context's
    cost model and cardinality estimates. *)
