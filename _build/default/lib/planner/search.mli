(** Shared plan-search context: which join methods are legal, and how a
    candidate join is costed.

    The index-nested-loop option exists only when the database's current
    physical design provides a hash index on the inner base relation's
    join column — this is how the paper's "no / PK / PK+FK indexes"
    configurations reshape the search space. The (non-index) nested-loop
    option is the "risky" operator; Section 4.1 disables it. *)

type shape_limit = Any_shape | Only_left_deep | Only_right_deep | Only_zig_zag

type t = {
  env : Cost.Cost_model.env;
  model : Cost.Cost_model.t;
  allow_nl : bool;
  allow_hash : bool;  (** PostgreSQL's [enable_hashjoin]; sort-merge steps in when off. *)
  shape : shape_limit;
}

val create :
  ?allow_nl:bool ->
  ?allow_hash:bool ->
  ?shape:shape_limit ->
  model:Cost.Cost_model.t ->
  graph:Query.Query_graph.t ->
  db:Storage.Database.t ->
  card:(Util.Bitset.t -> float) ->
  unit ->
  t

val inl_possible : t -> outer:Plan.t -> inner:Plan.t -> bool
(** Inner is a base scan and an index exists on one of the join edges'
    inner columns. *)

val best_join : t -> outer:Plan.t * float -> inner:Plan.t * float -> (Plan.t * float) option
(** Cheapest legal join of [outer] with [inner] (in this orientation), or
    [None] when no join method is legal. Shape limits are enforced. *)

val best_join_any_orientation :
  t -> Plan.t * float -> Plan.t * float -> (Plan.t * float) option
(** Tries both orientations. *)

val scan_entry : t -> int -> Plan.t * float
