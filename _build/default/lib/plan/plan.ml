module Bitset = Util.Bitset

type join_algo = Hash_join | Index_nl_join | Merge_join | Nl_join

type t = { op : op; set : Bitset.t }

and op =
  | Scan of int
  | Join of { algo : join_algo; outer : t; inner : t }

type shape = Left_deep | Right_deep | Zig_zag | Bushy

let scan rel = { op = Scan rel; set = Bitset.singleton rel }

let is_base t = match t.op with Scan _ -> true | Join _ -> false

let base_rel t = match t.op with Scan r -> Some r | Join _ -> None

let join algo ~outer ~inner =
  if not (Bitset.disjoint outer.set inner.set) then
    invalid_arg "Plan.join: overlapping children";
  if algo = Index_nl_join && not (is_base inner) then
    invalid_arg "Plan.join: index-NL inner must be a base relation";
  { op = Join { algo; outer; inner }; set = Bitset.union outer.set inner.set }

let rec join_count t =
  match t.op with
  | Scan _ -> 0
  | Join { outer; inner; _ } -> 1 + join_count outer + join_count inner

let shape t =
  let rec walk t (left_ok, right_ok, zig_ok) =
    match t.op with
    | Scan _ -> (left_ok, right_ok, zig_ok)
    | Join { outer; inner; _ } ->
        let left_ok = left_ok && is_base inner in
        let right_ok = right_ok && is_base outer in
        let zig_ok = zig_ok && (is_base inner || is_base outer) in
        walk inner (walk outer (left_ok, right_ok, zig_ok))
  in
  match walk t (true, true, true) with
  | true, true, _ -> Left_deep (* single join: both classes; report left-deep *)
  | true, false, _ -> Left_deep
  | false, true, _ -> Right_deep
  | false, false, true -> Zig_zag
  | false, false, false -> Bushy

let shape_to_string = function
  | Left_deep -> "left-deep"
  | Right_deep -> "right-deep"
  | Zig_zag -> "zig-zag"
  | Bushy -> "bushy"

let algo_to_string = function
  | Hash_join -> "hash join"
  | Index_nl_join -> "index-NL join"
  | Merge_join -> "sort-merge join"
  | Nl_join -> "NL join"

let rec fold f acc t =
  let acc = f acc t in
  match t.op with
  | Scan _ -> acc
  | Join { outer; inner; _ } -> fold f (fold f acc outer) inner

let subsets_on_path t = List.rev (fold (fun acc node -> node.set :: acc) [] t)

let validate graph t =
  let n = Query.Query_graph.n_relations graph in
  let seen = Array.make n 0 in
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let rec walk t =
    match t.op with
    | Scan r ->
        if r < 0 || r >= n then add "scan of unknown relation %d" r
        else seen.(r) <- seen.(r) + 1
    | Join { algo; outer; inner } ->
        if not (Bitset.disjoint outer.set inner.set) then
          add "join children overlap";
        if Query.Query_graph.edges_between graph outer.set inner.set = [] then
          add "cross product between %s and %s"
            (Format.asprintf "%a" Bitset.pp outer.set)
            (Format.asprintf "%a" Bitset.pp inner.set);
        (if algo = Index_nl_join then
           match inner.op with
           | Scan _ -> ()
           | Join _ -> add "index-NL inner is not a base relation");
        walk outer;
        walk inner
  in
  walk t;
  if t.set <> Bitset.full n then add "plan does not cover all relations";
  Array.iteri (fun r c -> if c > 1 then add "relation %d appears %d times" r c) seen;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))

let to_dot ?(annot = fun _ -> "") graph t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n";
  let next = ref 0 in
  let rec walk t =
    let id = !next in
    incr next;
    let label =
      match t.op with
      | Scan r ->
          let rel = Query.Query_graph.relation graph r in
          Printf.sprintf "scan %s\\n(%s)%s" rel.Query.Query_graph.alias
            (Storage.Table.name rel.Query.Query_graph.table)
            (annot t)
      | Join { algo; _ } -> Printf.sprintf "%s%s" (algo_to_string algo) (annot t)
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" id (String.concat "\\\"" (String.split_on_char '"' label)));
    (match t.op with
    | Scan _ -> ()
    | Join { outer; inner; _ } ->
        let o = walk outer in
        let i = walk inner in
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"outer\"];\n" id o);
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [label=\"inner\"];\n" id i));
    id
  in
  ignore (walk t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ?(annot = fun _ -> "") graph fmt t =
  let rec go indent t =
    let pad = String.make indent ' ' in
    match t.op with
    | Scan r ->
        let rel = Query.Query_graph.relation graph r in
        Format.fprintf fmt "%sscan %s (%s)%s@." pad rel.Query.Query_graph.alias
          (Storage.Table.name rel.Query.Query_graph.table)
          (annot t)
    | Join { algo; outer; inner } ->
        Format.fprintf fmt "%s%s%s@." pad (algo_to_string algo) (annot t);
        go (indent + 2) outer;
        go (indent + 2) inner
  in
  go 0 t
