(** Physical join plans.

    Conventions, following the paper (Section 6.2):
    - a hash join builds its table on the {e inner} (right) child and
      probes with the outer (left) child;
    - an index-nested-loop join reads tuples from the outer (left) child
      and looks each up in an index on the inner child, which must be a
      base-table scan;
    - a sort-merge join sorts both children on the join keys and merges
      (PostgreSQL's third join algorithm, Section 2.3 — in a
      main-memory setting it loses to hashing, which is exactly the
      paper's work_mem observation in Section 2.5);
    - a (non-index) nested-loop join scans the inner for every outer
      tuple — the "risky" operator of Section 4.1.

    Tree shapes: left-deep = every inner child is a base relation,
    right-deep = every outer child is one, zig-zag = every join has at
    least one base child, bushy = unrestricted. *)

type join_algo = Hash_join | Index_nl_join | Merge_join | Nl_join

type t = { op : op; set : Util.Bitset.t }

and op =
  | Scan of int  (** base relation index in the query graph *)
  | Join of { algo : join_algo; outer : t; inner : t }

type shape = Left_deep | Right_deep | Zig_zag | Bushy

val scan : int -> t

val join : join_algo -> outer:t -> inner:t -> t
(** Checks set disjointness; checks the INL inner-is-base invariant. *)

val is_base : t -> bool

val base_rel : t -> int option
(** The relation index when the plan is a single scan. *)

val join_count : t -> int

val shape : t -> shape
(** Most restrictive shape class the tree belongs to. *)

val shape_to_string : shape -> string

val algo_to_string : join_algo -> string

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val subsets_on_path : t -> Util.Bitset.t list
(** The set of every node in the tree (each intermediate result the plan
    materializes or streams). *)

val validate : Query.Query_graph.t -> t -> (unit, string) result
(** Full structural check: covers all relations exactly once, every join
    has at least one connecting edge, INL inners are base scans. *)

val pp :
  ?annot:(t -> string) -> Query.Query_graph.t -> Format.formatter -> t -> unit
(** Indented tree rendering; [annot] can attach per-node text (e.g.
    cardinalities or costs). *)

val to_dot :
  ?annot:(t -> string) -> Query.Query_graph.t -> t -> string
(** GraphViz rendering of the operator tree ([dot -Tsvg ...]). *)
