module Bitset = Util.Bitset
module QG = Query.Query_graph

type t = {
  name : string;
  base : int -> float;
  subset : Bitset.t -> float;
}

type combine =
  | Independence
  | Backoff of float

type rounding =
  | No_rounding
  | Clamp_one
  | Floor_one

let apply_rounding rounding x =
  match rounding with
  | No_rounding -> x
  | Clamp_one -> Float.max 1.0 x
  | Floor_one -> Float.max 1.0 (Float.of_int (int_of_float x))

(* Deterministic decomposition: the highest-index relation whose removal
   keeps the subset connected (one always exists in a connected graph). *)
let canonical_split graph s =
  let rec go r =
    if r < 0 then invalid_arg "Estimator: disconnected subset"
    else if Bitset.mem r s && QG.is_connected graph (Bitset.remove r s) then r
    else go (r - 1)
  in
  go (QG.n_relations graph - 1)

let compositional ~name ~graph ~base ~edge_selectivity ?(combine = Independence)
    ?(rounding = No_rounding) () =
  let base_cache = Array.make (QG.n_relations graph) None in
  let base_memo r =
    match base_cache.(r) with
    | Some v -> v
    | None ->
        let v = base r in
        base_cache.(r) <- Some v;
        v
  in
  let memo : (Bitset.t, float) Hashtbl.t = Hashtbl.create 256 in
  (* Number of edges already applied inside a subset, for backoff
     numbering (deterministic because the decomposition is canonical). *)
  let edges_inside s =
    List.length
      (List.filter
         (fun (e : QG.edge) -> Bitset.mem e.QG.left s && Bitset.mem e.QG.right s)
         (QG.edges graph))
  in
  let rec subset s =
    if Bitset.is_empty s then invalid_arg "Estimator: empty subset"
    else if Bitset.cardinal s = 1 then
      apply_rounding rounding (base_memo (Bitset.lowest s))
    else
      match Hashtbl.find_opt memo s with
      | Some v -> v
      | None ->
          let r = canonical_split graph s in
          let rest = Bitset.remove r s in
          let crossing = QG.edges_between graph rest (Bitset.singleton r) in
          let rest_est = subset rest in
          let base_est = base_memo r in
          let already = edges_inside rest in
          let joined =
            List.fold_left
              (fun (acc, j) e ->
                let sel = edge_selectivity e in
                let sel =
                  match combine with
                  | Independence -> sel
                  | Backoff c ->
                      (* Every join selectivity after the first is damped
                         by a constant exponent c < 1 (raised toward 1):
                         the more predicates, the less the system trusts
                         full independence. *)
                      if j = 0 then sel else sel ** c
                in
                (acc *. sel, j + 1))
              (rest_est *. base_est, already)
              crossing
            |> fst
          in
          let v = apply_rounding rounding joined in
          Hashtbl.add memo s v;
          v
  in
  { name; base = base_memo; subset }

let of_function ~name ~base subset = { name; base; subset }

let textbook_edge_selectivity ~dom (e : QG.edge) =
  let dl = Float.max 1.0 (dom ~rel:e.QG.left ~col:e.QG.left_col) in
  let dr = Float.max 1.0 (dom ~rel:e.QG.right ~col:e.QG.right_col) in
  1.0 /. Float.max dl dr
