module Bitset = Util.Bitset

let create ~name ~fallback overrides =
  let table = Hashtbl.create (List.length overrides) in
  List.iter (fun (s, c) -> Hashtbl.replace table s c) overrides;
  let subset s =
    match Hashtbl.find_opt table s with
    | Some c -> c
    | None -> fallback.Estimator.subset s
  in
  let base r =
    match Hashtbl.find_opt table (Bitset.singleton r) with
    | Some c -> c
    | None -> fallback.Estimator.base r
  in
  { Estimator.name; base; subset }

let of_estimator ~name ~fallback ~source ~subsets =
  create ~name ~fallback
    (List.map (fun s -> (s, source.Estimator.subset s)) subsets)
