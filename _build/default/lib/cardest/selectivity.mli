(** Histogram / MCV based selectivity estimation for base-table atoms —
    the PostgreSQL way (Section 2.3 of the paper).

    Equality uses the MCV list when the constant is a most-common value
    and the uniform leftover estimate [(1 - mcv - nulls) / (d - |mcv|)]
    otherwise; order comparisons use the equi-depth histogram (in rank
    space for strings) plus the satisfying MCV mass; LIKE and other
    histogram-resistant predicates fall back to "magic constants";
    conjunctions multiply (independence). *)

type magic = {
  like_contains : float;  (** LIKE '%...%' and other free patterns. *)
  like_prefix : float;  (** LIKE 'abc%'. *)
  default_range : float;  (** Order comparison with no histogram. *)
}

val pg_magic : magic
(** 0.005 / 0.02 / 0.333 — in the spirit of PostgreSQL's defaults. *)

val atom :
  stats:Dbstats.Column_stats.t ->
  table:Storage.Table.t ->
  magic:magic ->
  Query.Predicate.atom ->
  float
(** Selectivity in [\[0, 1\]] of one atom. *)

val conjunction :
  stats_of:(int -> Dbstats.Column_stats.t) ->
  table:Storage.Table.t ->
  magic:magic ->
  Query.Predicate.t ->
  float
(** Independence product over the atoms ([stats_of] maps a column index
    to its statistics). *)
