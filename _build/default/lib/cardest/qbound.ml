module QG = Query.Query_graph

let worst_q ~truth est graph =
  Array.fold_left
    (fun acc s ->
      let estimate = Float.max 1.0 (est.Estimator.subset s) in
      let exact = Float.max 1.0 (True_card.card truth s) in
      Float.max acc (Util.Stat.q_error ~estimate ~truth:exact))
    1.0
    (QG.connected_subsets graph)

let cost_ratio_bound ~q = q ** 4.0
