(** Cardinality injection (the paper's PostgreSQL patch, Section 2.4).

    The patched PostgreSQL lets an experiment override the optimizer's
    estimate for {e arbitrary join expressions} while the optimizer falls
    back to its own numbers elsewhere. This module is that patch:
    overrides are keyed by relation subset; unlisted subsets go to the
    fallback estimator. *)

val create :
  name:string ->
  fallback:Estimator.t ->
  (Util.Bitset.t * float) list ->
  Estimator.t

val of_estimator :
  name:string ->
  fallback:Estimator.t ->
  source:Estimator.t ->
  subsets:Util.Bitset.t list ->
  Estimator.t
(** Inject the source's estimates for the listed subsets (e.g. the
    estimates extracted from another system) on top of the fallback. *)
