(** Join-sampling cardinality estimation — the paper's "first route"
    for future work (Section 8: "database systems can incorporate more
    advanced estimation algorithms that have been proposed in the
    literature", citing join samples, e.g. Haas et al.).

    A sampled sub-database keeps every small (dimension) table whole and
    an independent Bernoulli sample of each large table. The size of any
    join on the sample, scaled by the inverse sampling rates of the
    participating relations, is an unbiased estimator of the true join
    size — and unlike per-attribute statistics it {e sees} join-crossing
    correlations, because the correlated rows travel together into the
    sample. Its weakness is variance: deep, selective subexpressions
    often produce zero sampled rows, and the estimator must fall back.

    The point of the extension experiment is exactly the paper's: a
    technique from the literature beats all five production-style
    estimators on multi-join queries. *)

type t

val create :
  ?seed:int ->
  ?rate:float ->
  ?dimension_threshold:int ->
  Storage.Database.t ->
  t
(** Build the sampled sub-database once; reusable across queries.
    Defaults: rate 0.1 for tables with more than [dimension_threshold]
    (default 1000) rows, whole tables below. *)

val sampling_rate : t -> string -> float
(** Rate used for one table. *)

val estimator : t -> Query.Query_graph.t -> Estimator.t
(** Estimator for one query: exact counting on the sample, scaled by the
    inverse rates; subexpressions with zero sampled rows fall back to
    the scale factor itself (the smallest value the sample can
    resolve). *)

val sampled_db : t -> Storage.Database.t
(** The sampled sub-database itself — used by {!Core.Adaptive} to run
    cheap plan probes. *)

val rebind : t -> Query.Query_graph.t -> Query.Query_graph.t
(** The same query graph over the sampled tables. *)

val scale : t -> Query.Query_graph.t -> Util.Bitset.t -> float
(** Inverse-rate scale factor for a relation subset of the given query:
    multiply a sampled count by this to estimate the true count. *)
