(** Cardinality estimators and the compositional estimation framework.

    An estimator answers one question: how many rows does the join of a
    connected relation subset produce (after base-table selections)?
    Singletons give base-table estimates; larger subsets are estimated
    compositionally with the textbook join formula, exactly like
    PostgreSQL: pick a relation [r] whose removal keeps the subset
    connected, estimate [|S \ r|], and multiply by [|σ(r)|] and the
    selectivity of every join edge that connects [r] to the rest.

    The framework exposes the two knobs that differentiate the five
    emulated systems:
    - how edge selectivities are {e combined} (pure independence, or
      damped "exponential backoff" that trusts independence less as more
      joins pile up — the behaviour the paper attributes to DBMS A);
    - how intermediate estimates are {e rounded} ([Clamp_one] reproduces
      PostgreSQL's round-up-to-1 artifact; [Floor_one] reproduces the
      DBMS B collapse to exactly 1 row beyond a couple of joins). *)

type t = {
  name : string;
  base : int -> float;  (** Estimated [|σ(R_i)|]. *)
  subset : Util.Bitset.t -> float;
      (** Estimated size of a connected subset join; memoized. *)
}

type combine =
  | Independence
  | Backoff of float
      (** [Backoff c]: every join selectivity after the first applied
          within one query is raised to the power [c] ([0 < c < 1]),
          pulling deep join estimates up toward the truth — the damping
          the paper attributes to DBMS A. *)

type rounding =
  | No_rounding
  | Clamp_one  (** Estimates below 1 become exactly 1 (PostgreSQL). *)
  | Floor_one  (** Truncate to an integer, floored at 1 (DBMS B). *)

val compositional :
  name:string ->
  graph:Query.Query_graph.t ->
  base:(int -> float) ->
  edge_selectivity:(Query.Query_graph.edge -> float) ->
  ?combine:combine ->
  ?rounding:rounding ->
  unit ->
  t
(** Build a memoized estimator over one query graph. [base] is consulted
    once per relation. *)

val of_function :
  name:string -> base:(int -> float) -> (Util.Bitset.t -> float) -> t

val textbook_edge_selectivity :
  dom:(rel:int -> col:int -> float) -> Query.Query_graph.edge -> float
(** [1 / max(dom x, dom y)] — the System-R / PostgreSQL join selectivity
    from Section 2.3 of the paper. *)
