(** Exact cardinalities of every connected subexpression of a query.

    This replaces the paper's [SELECT COUNT( * )] runs (Section 2.4).
    Instead of materializing each intermediate result, the computation
    aggregates multiplicities: every relation is first grouped by its
    join attributes (more precisely, by the join-attribute {e equivalence
    classes} induced by the query's equality predicates), and connected
    subsets are then combined bottom-up, level by level, keeping only
    counts per frontier-attribute value. The result is exact — projection
    onto the frontier preserves total multiplicity — and the memory high
    water mark is two levels of compressed tables rather than the full
    intermediate results.

    Cost: one pass over each base table plus work proportional to the
    number of connected subsets times the size of the compressed tables
    (bounded by the join-key domains, not by intermediate result
    sizes). *)

type t

val compute : Query.Query_graph.t -> t
(** Runs the full bottom-up DP eagerly over all connected subsets. *)

val card : t -> Util.Bitset.t -> float
(** Exact cardinality of a connected subset. Raises [Invalid_argument]
    for subsets that are not connected in the query graph. *)

val base : t -> int -> float
(** Exact [|σ(R_i)|]. *)

val estimator : t -> Estimator.t
(** The oracle "estimator" used for cardinality injection of true
    values. *)

val subset_count : t -> int
(** Number of connected subsets whose cardinality was computed. *)
