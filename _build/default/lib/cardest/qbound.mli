(** The q-error plan-quality guarantee (Moerkotte, Neumann & Steidl,
    "Preventing Bad Plans by Bounding the Impact of Cardinality
    Estimation Errors", PVLDB 2009 — reference [30] of the paper, invoked
    in its Section 3.1: "the q-error provides a theoretical upper bound
    for the plan quality if the q-errors of a query are bounded").

    The theorem: if every cardinality estimate the optimizer consults is
    within a factor [q] of the truth, then for cost functions built from
    monotone per-operator terms bounded by linear functions of their
    input/output cardinalities (C_mm with hash joins qualifies), the plan
    chosen under the estimates costs at most [q^4] times the true
    optimum. The empirical validation lives in
    {!Experiments.Exp_extensions}. *)

val worst_q : truth:True_card.t -> Estimator.t -> Query.Query_graph.t -> float
(** The largest q-error over every connected subexpression of the query
    (both sides floored at one row). *)

val cost_ratio_bound : q:float -> float
(** The guaranteed bound [q^4]. *)
