lib/cardest/systems.ml: Dbstats Estimator Float Hashtbl List Option Printf Query Selectivity Storage Util
