lib/cardest/estimator.mli: Query Util
