lib/cardest/injection.mli: Estimator Util
