lib/cardest/true_card.mli: Estimator Query Util
