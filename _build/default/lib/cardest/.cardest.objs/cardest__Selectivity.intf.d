lib/cardest/selectivity.mli: Dbstats Query Storage
