lib/cardest/qbound.ml: Array Estimator Float Query True_card Util
