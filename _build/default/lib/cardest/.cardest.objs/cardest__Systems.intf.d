lib/cardest/systems.mli: Dbstats Estimator Query Storage
