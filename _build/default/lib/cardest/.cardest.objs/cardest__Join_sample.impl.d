lib/cardest/join_sample.ml: Array Estimator Float Hashtbl List Option Printf Query Storage True_card Util
