lib/cardest/qbound.mli: Estimator Query True_card
