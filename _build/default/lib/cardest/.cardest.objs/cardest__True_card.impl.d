lib/cardest/true_card.ml: Array Estimator Format Hashtbl List Option Query Storage Util
