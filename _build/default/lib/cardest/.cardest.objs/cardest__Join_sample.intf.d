lib/cardest/join_sample.mli: Estimator Query Storage Util
