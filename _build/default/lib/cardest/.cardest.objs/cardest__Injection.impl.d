lib/cardest/injection.ml: Estimator Hashtbl List Util
