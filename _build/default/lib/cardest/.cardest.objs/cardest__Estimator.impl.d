lib/cardest/estimator.ml: Array Float Hashtbl List Query Util
