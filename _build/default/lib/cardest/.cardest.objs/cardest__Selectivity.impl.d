lib/cardest/selectivity.ml: Array Dbstats Float List Query Storage
