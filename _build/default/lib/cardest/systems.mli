(** The five emulated cardinality estimators (PostgreSQL, DBMS A, DBMS B,
    DBMS C, HyPer).

    Each system is modeled by the mechanism the paper diagnoses for it,
    not by reverse-engineered internals (those are black boxes in the
    paper too); see DESIGN.md §4 for the mapping. All five share the
    compositional join framework of {!Estimator}; they differ in

    - base-table estimation: per-attribute statistics under the
      independence assumption (PostgreSQL, DBMS B, DBMS C) versus
      evaluating the whole conjunction on a materialized table sample
      (HyPer: 1000 rows; DBMS A: 5000 rows), which captures intra-table
      correlations;
    - the magic constants used where statistics cannot help;
    - join-selectivity combination: pure independence versus DBMS A's
      damping ("exponential backoff");
    - rounding: PostgreSQL clamps intermediate estimates up to 1 row,
      DBMS B floors them to integers (collapsing to 1 beyond a couple of
      joins). *)

type context = {
  db : Storage.Database.t;
  graph : Query.Query_graph.t;
}

val postgres :
  ?true_distinct:bool -> Dbstats.Analyze.t -> context -> Estimator.t
(** Histogram + MCV + sampled-distinct statistics, independence,
    clamp-to-1. [true_distinct] switches the join formula's domain
    cardinalities to exact distinct counts (the Figure 5 variant). *)

val hyper : Dbstats.Analyze.t -> context -> Estimator.t
(** 1000-row table sample evaluated against the full conjunction; magic
    fallback when the sample yields zero rows. *)

val dbms_a : Dbstats.Analyze.t -> context -> Estimator.t
(** 5000-row sample plus damped join-selectivity combination — the best
    estimator in the paper's comparison. *)

val dbms_a_damping : float
(** The damping exponent DBMS A uses (0.85). *)

val dbms_a_damped : float -> Dbstats.Analyze.t -> context -> Estimator.t
(** DBMS A with an explicit damping exponent (1.0 = pure independence);
    used by the ablation bench. *)

val dbms_b : Dbstats.Analyze.t -> context -> Estimator.t
(** Coarse statistics, crude magic constants, floor-to-1 rounding — the
    paper's aggressive underestimator. *)

val dbms_c : Dbstats.Analyze.t -> context -> Estimator.t
(** Optimistic fixed selectivities for histogram-resistant predicates —
    large base-table overestimates in the error tail. *)

val names : string list
(** The display names, in the paper's order: PostgreSQL, DBMS A, DBMS B,
    DBMS C, HyPer. *)

val by_name :
  ?true_distinct:bool ->
  Dbstats.Analyze.t ->
  context ->
  string ->
  Estimator.t
(** Build a system estimator by display name. Raises [Invalid_argument]
    for unknown names. *)

val coarse_analyze : Storage.Database.t -> Dbstats.Analyze.t
(** The degraded ANALYZE configuration used by DBMS B (small sample, 10
    buckets, 5 MCVs). *)
