(** Equi-depth (quantile) histograms.

    Built over integer values — either the column's own integers or, for
    string columns, lexicographic ranks of dictionary codes. This mirrors
    PostgreSQL, whose histogram bounds are quantiles of a sorted
    sample. *)

type t

val build : buckets:int -> int array -> t option
(** [build ~buckets values] from (sampled) non-NULL values. [None] when
    no values. The number of buckets is capped by the number of distinct
    bounds available. *)

val bucket_count : t -> int

val bounds : t -> int array
(** [bucket_count + 1] quantile boundaries, non-decreasing. *)

val range_selectivity : t -> ?lo:int -> ?hi:int -> unit -> float
(** Estimated fraction of values in the inclusive range [lo..hi]
    (open-ended when a bound is missing), with linear interpolation inside
    buckets. Result is clamped to [\[0, 1\]]. *)

val cmp_selectivity : t -> Query.Predicate.cmp -> int -> float
(** Selectivity of [column op constant] for order operators; equality
    gets the width-based point estimate (callers normally prefer
    MCV/distinct-based equality estimates). *)
