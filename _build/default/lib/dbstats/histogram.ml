type t = { bounds : int array } (* length = buckets + 1 *)

let build ~buckets values =
  if Array.length values = 0 then None
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let buckets = max 1 (min buckets n) in
    let bounds =
      Array.init (buckets + 1) (fun i ->
          let pos = i * (n - 1) / buckets in
          sorted.(pos))
    in
    Some { bounds }
  end

let bucket_count t = Array.length t.bounds - 1

let bounds t = Array.copy t.bounds

(* Fraction of mass strictly below x, interpolating inside the bucket. *)
let cdf t x =
  let b = t.bounds in
  let k = bucket_count t in
  if x <= b.(0) then 0.0
  else if x > b.(k) then 1.0
  else begin
    (* Find bucket i with b.(i) < x <= b.(i+1). *)
    let rec find i = if i >= k - 1 || x <= b.(i + 1) then i else find (i + 1) in
    let i = find 0 in
    let lo = b.(i) and hi = b.(i + 1) in
    let within =
      if hi = lo then 1.0
      else (float_of_int x -. float_of_int lo) /. (float_of_int hi -. float_of_int lo)
    in
    (float_of_int i +. Float.min 1.0 within) /. float_of_int k
  end

let range_selectivity t ?lo ?hi () =
  let below_hi = match hi with None -> 1.0 | Some h -> cdf t (h + 1) in
  let below_lo = match lo with None -> 0.0 | Some l -> cdf t l in
  Float.min 1.0 (Float.max 0.0 (below_hi -. below_lo))

let cmp_selectivity t op c =
  match (op : Query.Predicate.cmp) with
  | Eq -> range_selectivity t ~lo:c ~hi:c ()
  | Ne -> 1.0 -. range_selectivity t ~lo:c ~hi:c ()
  | Lt -> range_selectivity t ~hi:(c - 1) ()
  | Le -> range_selectivity t ~hi:c ()
  | Gt -> range_selectivity t ~lo:(c + 1) ()
  | Ge -> range_selectivity t ~lo:c ()
