(** Row samples, the raw material of ANALYZE.

    PostgreSQL samples ~30 k rows per table for its statistics; HyPer
    keeps a 1000-row materialized sample per table and evaluates
    predicates on it directly. Both are modeled here as arrays of row
    ids. *)

type t = { table : string; rows : int array }

val take : Util.Prng.t -> Storage.Table.t -> size:int -> t
(** Uniform sample without replacement; the whole table when [size >=
    row_count]. *)

val evaluate : t -> Storage.Table.t -> (int -> bool) -> int
(** Number of sampled rows satisfying a compiled predicate. *)

val selectivity : t -> Storage.Table.t -> (int -> bool) -> float
(** Fraction of the sample satisfying the predicate (0 when the sample is
    empty). *)

val size : t -> int
