(** The ANALYZE pipeline: build and cache statistics for a database.

    One [t] corresponds to one run of the statistics-gathering command of
    a system under test (Section 2.4 of the paper: "we ran the statistics
    gathering command of each database system with default settings").
    Estimators with different sampling budgets create their own [t]. *)

type table_stats = {
  table : Storage.Table.t;
  row_count : int;
  columns : Column_stats.t array;  (** Indexed like the table's columns. *)
  sample : Sample.t;  (** The row sample the statistics came from. *)
}

type t

val create :
  ?seed:int ->
  ?sample_size:int ->
  ?buckets:int ->
  ?mcv_entries:int ->
  Storage.Database.t ->
  t
(** Lazy: a table is analyzed on first access. Defaults: sample 30000
    rows, 100 histogram buckets, 100 MCV entries (PostgreSQL-ish). *)

val database : t -> Storage.Database.t

val table : t -> string -> table_stats

val column : t -> table:string -> col:int -> Column_stats.t

val sample : t -> table:string -> Sample.t
