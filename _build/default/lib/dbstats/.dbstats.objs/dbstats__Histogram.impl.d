lib/dbstats/histogram.ml: Array Float Query
