lib/dbstats/analyze.mli: Column_stats Sample Storage
