lib/dbstats/histogram.mli: Query
