lib/dbstats/sample.mli: Storage Util
