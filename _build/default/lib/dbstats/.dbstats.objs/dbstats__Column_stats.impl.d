lib/dbstats/column_stats.ml: Array Float Hashtbl Histogram List Storage String
