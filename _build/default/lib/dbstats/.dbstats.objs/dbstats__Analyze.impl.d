lib/dbstats/analyze.ml: Array Column_stats Hashtbl Sample Storage Util
