lib/dbstats/sample.ml: Array Storage Util
