lib/dbstats/column_stats.mli: Histogram Storage Util
