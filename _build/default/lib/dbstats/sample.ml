type t = { table : string; rows : int array }

let take prng table ~size =
  let n = Storage.Table.row_count table in
  let rows =
    if size >= n then Array.init n (fun i -> i)
    else Util.Prng.sample_without_replacement prng size n
  in
  { table = Storage.Table.name table; rows }

let evaluate t table pred =
  ignore table;
  Array.fold_left (fun acc row -> if pred row then acc + 1 else acc) 0 t.rows

let size t = Array.length t.rows

let selectivity t table pred =
  let n = size t in
  if n = 0 then 0.0 else float_of_int (evaluate t table pred) /. float_of_int n
