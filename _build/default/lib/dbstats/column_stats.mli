(** Per-column statistics as produced by ANALYZE.

    For string columns, order-sensitive structures (histogram) operate on
    lexicographic ranks of dictionary codes; [rank_of_code] performs the
    translation. Equality structures (MCVs, distinct counts) operate on
    raw codes. *)

type t = {
  row_count : int;
  null_fraction : float;
  distinct_sampled : float;
      (** Haas–Stokes Duj1 estimate from the sample — systematically low
          for skewed columns, exactly the PostgreSQL failure mode the
          paper's Section 3.4 studies. *)
  distinct_exact : float;  (** True distinct count (Figure 5 variant). *)
  mcv : (int * float) array;
      (** Most common values: (code, fraction of all rows), descending. *)
  histogram : Histogram.t option;
      (** Over values (int columns) or lexicographic ranks (string
          columns); built from the non-MCV part of the sample. *)
  rank_of_code : int array option;
      (** For string columns: [rank_of_code.(code)] is the code's
          lexicographic rank in the dictionary. *)
}

val build :
  Util.Prng.t ->
  Storage.Table.t ->
  col:int ->
  sample_rows:int array ->
  ?buckets:int ->
  ?mcv_entries:int ->
  unit ->
  t

val mcv_fraction_total : t -> float
(** Total mass held by the MCV list. *)

val mcv_find : t -> int -> float option
(** Fraction of a code if it is an MCV. *)

val rank : t -> int -> int
(** Rank of a code (identity for int columns). *)

val rank_of_string : t -> Storage.Column.t -> string -> int
(** Rank a string constant would occupy in the column's dictionary order
    (for estimating [col < 'foo'] when ['foo'] itself is not stored).
    Returns the rank of the smallest dictionary entry [>=] the constant. *)
