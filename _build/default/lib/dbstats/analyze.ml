type table_stats = {
  table : Storage.Table.t;
  row_count : int;
  columns : Column_stats.t array;
  sample : Sample.t;
}

type t = {
  db : Storage.Database.t;
  prng : Util.Prng.t;
  sample_size : int;
  buckets : int;
  mcv_entries : int;
  cache : (string, table_stats) Hashtbl.t;
}

let create ?(seed = 1337) ?(sample_size = 30_000) ?(buckets = 100)
    ?(mcv_entries = 100) db =
  {
    db;
    prng = Util.Prng.create seed;
    sample_size;
    buckets;
    mcv_entries;
    cache = Hashtbl.create 32;
  }

let database t = t.db

let table t name =
  match Hashtbl.find_opt t.cache name with
  | Some stats -> stats
  | None ->
      let tbl = Storage.Database.find_table t.db name in
      let sample = Sample.take t.prng tbl ~size:t.sample_size in
      let columns =
        Array.init (Storage.Table.column_count tbl) (fun col ->
            Column_stats.build t.prng tbl ~col ~sample_rows:sample.Sample.rows
              ~buckets:t.buckets ~mcv_entries:t.mcv_entries ())
      in
      let stats = { table = tbl; row_count = Storage.Table.row_count tbl; columns; sample } in
      Hashtbl.add t.cache name stats;
      stats

let column t ~table:name ~col = (table t name).columns.(col)

let sample t ~table:name = (table t name).sample
