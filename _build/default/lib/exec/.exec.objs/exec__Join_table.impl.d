lib/exec/join_table.ml: Array Float Int64 Stdlib
