lib/exec/executor.ml: Array Engine_config Float Join_table List Plan Query Storage Util
