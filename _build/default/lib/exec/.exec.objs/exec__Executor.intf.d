lib/exec/executor.mli: Engine_config Plan Query Storage Util
