lib/exec/engine_config.mli:
