lib/exec/engine_config.ml:
