type t = {
  mutable buckets : int array; (* head index into entries, -1 = empty *)
  mutable mask : int;
  mutable next : int array;
  mutable hashes : int array;
  mutable payloads : int array;
  mutable count : int;
  resizable : bool;
}

let mix x =
  (* SplitMix64 finalizer, truncated to OCaml's int. *)
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

let combine a b = mix ((a * 31) lxor b)

let next_pow2 x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 16

let create ?(bucket_floor = 1024) ~estimated_rows ~resizable () =
  (* PostgreSQL floors its hash tables at ~1k buckets regardless of the
     estimate; without the floor every underestimate is a catastrophe
     rather than a slowdown. The floor is a parameter so the ablation
     bench can quantify exactly that. *)
  let est =
    int_of_float
      (Float.max (float_of_int (max 1 bucket_floor)) (Float.min 1e9 estimated_rows))
  in
  let n_buckets = next_pow2 est in
  {
    buckets = Array.make n_buckets (-1);
    mask = n_buckets - 1;
    next = Array.make 64 (-1);
    hashes = Array.make 64 0;
    payloads = Array.make 64 0;
    count = 0;
    resizable;
  }

let bucket_count t = Array.length t.buckets

let entry_count t = t.count

let grow_entries t =
  let capacity = Array.length t.next in
  if t.count = capacity then begin
    let resize a fill =
      let bigger = Array.make (2 * capacity) fill in
      Array.blit a 0 bigger 0 capacity;
      bigger
    in
    t.next <- resize t.next (-1);
    t.hashes <- resize t.hashes 0;
    t.payloads <- resize t.payloads 0
  end

(* Double the bucket array and redistribute; returns entries moved. *)
let rehash t =
  let n = 2 * Array.length t.buckets in
  t.buckets <- Array.make n (-1);
  t.mask <- n - 1;
  for i = 0 to t.count - 1 do
    let b = t.hashes.(i) land t.mask in
    t.next.(i) <- t.buckets.(b);
    t.buckets.(b) <- i
  done;
  t.count

let insert t ~hash ~payload =
  let work = ref 1 in
  if t.resizable && t.count >= Array.length t.buckets then
    work := !work + rehash t;
  grow_entries t;
  let i = t.count in
  t.count <- i + 1;
  t.hashes.(i) <- hash;
  t.payloads.(i) <- payload;
  let b = hash land t.mask in
  t.next.(i) <- t.buckets.(b);
  t.buckets.(b) <- i;
  !work

let probe t ~hash ~f =
  (* Chain entries are hash comparisons on consecutive memory — charge a
     quarter of a tuple's work each, matching the relative CPU weights of
     the cost models. *)
  let chain = ref 0 in
  let i = ref t.buckets.(hash land t.mask) in
  while !i >= 0 do
    incr chain;
    if t.hashes.(!i) = hash then f t.payloads.(!i);
    i := t.next.(!i)
  done;
  1 + (!chain / 4)
