(** The executor's hash table for hash joins, with explicit bucket
    management so that the paper's undersized-hash-table pathology
    (Section 4.1 / Figure 6) is physically reproduced.

    In fixed mode the bucket count is chosen once from the optimizer's
    cardinality estimate — underestimates produce long collision chains
    whose traversal is charged to the query. In resizing mode (the 9.5
    patch) the table doubles when the load factor exceeds 1, and the
    rehash work is charged instead. *)

type t

val create : ?bucket_floor:int -> estimated_rows:float -> resizable:bool -> unit -> t
(** [bucket_floor] defaults to 1024, PostgreSQL's effective minimum. *)

val bucket_count : t -> int

val entry_count : t -> int

val insert : t -> hash:int -> payload:int -> int
(** Add an entry; returns the work units spent (1, plus amortized rehash
    work when a resize triggers). *)

val probe : t -> hash:int -> f:(int -> unit) -> int
(** Visit the payloads of every entry in the hash's chain (callers
    re-check real key equality); returns the work units spent
    (1 + chain length). *)

val mix : int -> int
(** Finalizer-style integer hash (SplitMix64 mixing), used to build entry
    hashes from key values. *)

val combine : int -> int -> int
(** Mix a second key column into a composite hash. *)
