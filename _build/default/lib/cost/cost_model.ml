module Bitset = Util.Bitset
module QG = Query.Query_graph

type env = {
  graph : QG.t;
  db : Storage.Database.t;
  card : Bitset.t -> float;
}

type t = {
  name : string;
  scan_cost : env -> int -> float;
  join_cost :
    env ->
    Plan.join_algo ->
    outer:Plan.t ->
    inner:Plan.t ->
    outer_cost:float ->
    inner_cost:float ->
    float;
}

let table_rows env rel =
  float_of_int (Storage.Table.row_count (QG.relation env.graph rel).QG.table)

let pred_count env rel = List.length (QG.relation env.graph rel).QG.preds

(* Estimated matches an index-NL join retrieves before the inner
   relation's own selection is applied: out / selectivity(inner). *)
let unfiltered_matches env ~out_card ~inner_rel =
  let filtered = Float.max 1e-9 (env.card (Bitset.singleton inner_rel)) in
  let selectivity = filtered /. Float.max 1.0 (table_rows env inner_rel) in
  out_card /. Float.max 1e-9 selectivity

(* ------------------------------------------------------------------ *)
(* C_mm (Section 5.4)                                                  *)

let cmm_tau = 0.2
let cmm_lambda = 2.0

(* n log2 n comparisons, the sort part of a merge join. *)
let sort_cost n =
  let n = Float.max 2.0 n in
  n *. (Float.log n /. Float.log 2.0)

let cmm =
  let scan_cost env rel = cmm_tau *. table_rows env rel in
  let join_cost env algo ~outer ~inner ~outer_cost ~inner_cost =
    let out_card = env.card (Bitset.union outer.Plan.set inner.Plan.set) in
    match algo with
    | Plan.Hash_join -> out_card +. outer_cost +. inner_cost
    | Plan.Merge_join ->
        let oc = env.card outer.Plan.set and ic = env.card inner.Plan.set in
        sort_cost oc +. sort_cost ic +. oc +. ic +. out_card +. outer_cost
        +. inner_cost
    | Plan.Nl_join ->
        let oc = env.card outer.Plan.set and ic = env.card inner.Plan.set in
        (oc *. ic) +. out_card +. outer_cost +. inner_cost
    | Plan.Index_nl_join ->
        let inner_rel = Option.get (Plan.base_rel inner) in
        let oc = env.card outer.Plan.set in
        let lookups =
          Float.max (unfiltered_matches env ~out_card ~inner_rel) oc
        in
        outer_cost +. (cmm_lambda *. lookups)
  in
  { name = "Cmm"; scan_cost; join_cost }

(* ------------------------------------------------------------------ *)
(* PostgreSQL-style disk-oriented model                                *)

type pg_params = {
  seq_page : float;
  random_page : float;
  cpu_tuple : float;
  cpu_index_tuple : float;
  cpu_operator : float;
}

let pg_defaults =
  {
    seq_page = 1.0;
    random_page = 4.0;
    cpu_tuple = 0.01;
    cpu_index_tuple = 0.005;
    cpu_operator = 0.0025;
  }

let tuples_per_page = 64.0

let pg_model ~name p =
  let scan_cost env rel =
    let rows = table_rows env rel in
    let pages = Float.max 1.0 (Float.round (rows /. tuples_per_page)) in
    (pages *. p.seq_page)
    +. (rows *. (p.cpu_tuple +. (float_of_int (pred_count env rel) *. p.cpu_operator)))
  in
  let join_cost env algo ~outer ~inner ~outer_cost ~inner_cost =
    let out_card = env.card (Bitset.union outer.Plan.set inner.Plan.set) in
    let oc = env.card outer.Plan.set and ic = env.card inner.Plan.set in
    match algo with
    | Plan.Hash_join ->
        outer_cost +. inner_cost
        +. (ic *. (p.cpu_operator +. p.cpu_tuple)) (* build *)
        +. (oc *. p.cpu_operator) (* probe *)
        +. (out_card *. p.cpu_tuple)
    | Plan.Merge_join ->
        outer_cost +. inner_cost
        +. ((sort_cost oc +. sort_cost ic) *. p.cpu_operator)
        +. ((oc +. ic) *. p.cpu_operator)
        +. (out_card *. p.cpu_tuple)
    | Plan.Nl_join ->
        (* Inner is materialized once, then rescanned in memory. *)
        outer_cost +. inner_cost
        +. (oc *. ic *. p.cpu_operator)
        +. (out_card *. p.cpu_tuple)
    | Plan.Index_nl_join ->
        let inner_rel = Option.get (Plan.base_rel inner) in
        let inner_rows = Float.max 2.0 (table_rows env inner_rel) in
        let descent = p.cpu_index_tuple *. (Float.log inner_rows /. Float.log 2.0) in
        let matches = unfiltered_matches env ~out_card ~inner_rel in
        outer_cost
        +. (oc *. (descent +. p.random_page))
        +. (matches
            *. (p.cpu_tuple +. (0.25 *. p.random_page)
               +. (float_of_int (pred_count env inner_rel) *. p.cpu_operator)))
  in
  { name; scan_cost; join_cost }

let postgres = pg_model ~name:"PostgreSQL" pg_defaults

let tuned =
  pg_model ~name:"tuned"
    {
      pg_defaults with
      cpu_tuple = pg_defaults.cpu_tuple *. 50.0;
      cpu_index_tuple = pg_defaults.cpu_index_tuple *. 50.0;
      cpu_operator = pg_defaults.cpu_operator *. 50.0;
    }

let all = [ postgres; tuned; cmm ]

let by_name name = List.find_opt (fun m -> String.equal m.name name) all

let plan_cost model env plan =
  let rec go (t : Plan.t) =
    match t.Plan.op with
    | Plan.Scan rel -> model.scan_cost env rel
    | Plan.Join { algo; outer; inner } ->
        model.join_cost env algo ~outer ~inner ~outer_cost:(go outer)
          ~inner_cost:(go inner)
  in
  go plan
