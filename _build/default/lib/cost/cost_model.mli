(** Cost models (Section 5 of the paper).

    A cost model maps a physical plan and a cardinality function to a
    scalar. Three models are provided:

    - {!postgres}: a disk-oriented weighted sum of page accesses and CPU
      work, structured like PostgreSQL's (seq/random page costs, CPU
      tuple/index-tuple/operator costs);
    - {!tuned}: the same with the CPU weights multiplied by 50 — the
      paper's main-memory tuning (Section 5.3);
    - {!cmm}: the paper's simple main-memory model C_mm (Section 5.4),
      which only counts tuples flowing through operators, with a scan
      discount [tau = 0.2] and an index-lookup penalty [lambda = 2].

    Join cost composition follows the plan conventions: hash and NL joins
    add to both children's costs; an index-NL join {e replaces} its
    inner child's scan (the index lookups are the access path). *)

type env = {
  graph : Query.Query_graph.t;
  db : Storage.Database.t;
  card : Util.Bitset.t -> float;
      (** Cardinality (estimate or truth) of a connected relation
          subset. *)
}

type t = {
  name : string;
  scan_cost : env -> int -> float;
  join_cost :
    env ->
    Plan.join_algo ->
    outer:Plan.t ->
    inner:Plan.t ->
    outer_cost:float ->
    inner_cost:float ->
    float;
      (** Total cost of the join's subtree. *)
}

val plan_cost : t -> env -> Plan.t -> float

val postgres : t
val tuned : t
val cmm : t

val all : t list

val by_name : string -> t option

(** Parameters exposed for tests and ablations. *)

val cmm_tau : float
val cmm_lambda : float
