lib/cost/cost_model.mli: Plan Query Storage Util
