lib/cost/cost_model.ml: Float List Option Plan Query Storage String Util
