(** Uniform, independent mini TPC-H generator (Figure 4's contrast case).

    The paper's point about TPC-H is that its generator shares the very
    assumptions estimators make (uniformity, independence, inclusion), so
    estimates look unrealistically good. This generator therefore draws
    every attribute independently and uniformly: no skew, no
    correlations, full key inclusion. *)

type sizes = {
  customers : int;
  orders : int;
  lineitems : int;
  suppliers : int;
  parts : int;
}

val default_sizes : sizes

val generate : ?seed:int -> ?scale:float -> unit -> Storage.Database.t
(** Seven tables: region, nation, supplier, customer, orders, lineitem,
    part, with PK/FK metadata declared. *)

val table_names : string list
