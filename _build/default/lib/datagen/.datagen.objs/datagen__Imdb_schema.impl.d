lib/datagen/imdb_schema.ml: Filename List Printf Storage String
