lib/datagen/vocab.ml: Array Printf String
