lib/datagen/imdb_schema.mli: Storage
