lib/datagen/imdb_gen.mli: Storage
