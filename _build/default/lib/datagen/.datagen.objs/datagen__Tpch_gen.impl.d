lib/datagen/tpch_gen.ml: Array Printf Storage Util
