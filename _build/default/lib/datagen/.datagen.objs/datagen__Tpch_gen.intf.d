lib/datagen/tpch_gen.mli: Storage
