lib/datagen/imdb_gen.ml: Array Char Float List Printf Storage Util Vocab
