lib/datagen/vocab.mli:
