(** Declarative description of the 21-table IMDB schema — the contract
    between the synthetic generator, the workload, and external data.

    [load ~dir] imports a directory of CSV files (one [<table>.csv] per
    table, with header rows, as produced by {!Storage.Csv.export_database})
    into a fully usable database. Exporting the synthetic database and
    re-importing it round-trips exactly; a real IMDB dump converted to
    this layout loads the same way, which is the intended adoption path
    for running the benchmark against the paper's original data. *)

type table_spec = {
  name : string;
  pk : string option;
  fks : string list;
  columns : Storage.Csv.column_spec list;
}

val tables : table_spec list
(** All 21 tables, alphabetical. *)

val find : string -> table_spec
(** Raises [Invalid_argument] for unknown table names. *)

val load : dir:string -> Storage.Database.t
(** Import [<dir>/<table>.csv] for every table of the schema. Raises
    {!Storage.Csv.Csv_error} on malformed input and [Sys_error] on
    missing files. *)
