type table_spec = {
  name : string;
  pk : string option;
  fks : string list;
  columns : Storage.Csv.column_spec list;
}

let i name = { Storage.Csv.name; ty = Storage.Value.Int_ty }
let s name = { Storage.Csv.name; ty = Storage.Value.Str_ty }

let tables =
  [
    {
      name = "aka_name";
      pk = Some "id";
      fks = [ "person_id" ];
      columns =
        [ i "id"; i "person_id"; s "name"; s "imdb_index"; s "name_pcode_cf";
          s "name_pcode_nf"; s "surname_pcode"; s "md5sum" ];
    };
    {
      name = "aka_title";
      pk = Some "id";
      fks = [ "movie_id"; "kind_id" ];
      columns =
        [ i "id"; i "movie_id"; s "title"; s "imdb_index"; i "kind_id";
          i "production_year"; s "phonetic_code"; i "episode_of_id";
          i "season_nr"; i "episode_nr"; s "note"; s "md5sum" ];
    };
    {
      name = "cast_info";
      pk = Some "id";
      fks = [ "person_id"; "movie_id"; "person_role_id"; "role_id" ];
      columns =
        [ i "id"; i "person_id"; i "movie_id"; i "person_role_id"; s "note";
          i "nr_order"; i "role_id" ];
    };
    {
      name = "char_name";
      pk = Some "id";
      fks = [];
      columns =
        [ i "id"; s "name"; s "imdb_index"; i "imdb_id"; s "name_pcode_nf";
          s "surname_pcode"; s "md5sum" ];
    };
    {
      name = "comp_cast_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "kind" ];
    };
    {
      name = "company_name";
      pk = Some "id";
      fks = [];
      columns =
        [ i "id"; s "name"; s "country_code"; i "imdb_id"; s "name_pcode_nf";
          s "name_pcode_sf"; s "md5sum" ];
    };
    {
      name = "company_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "kind" ];
    };
    {
      name = "complete_cast";
      pk = Some "id";
      fks = [ "movie_id"; "subject_id"; "status_id" ];
      columns = [ i "id"; i "movie_id"; i "subject_id"; i "status_id" ];
    };
    {
      name = "info_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "info" ];
    };
    {
      name = "keyword";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "keyword"; s "phonetic_code" ];
    };
    {
      name = "kind_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "kind" ];
    };
    {
      name = "link_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "link" ];
    };
    {
      name = "movie_companies";
      pk = Some "id";
      fks = [ "movie_id"; "company_id"; "company_type_id" ];
      columns =
        [ i "id"; i "movie_id"; i "company_id"; i "company_type_id"; s "note" ];
    };
    {
      name = "movie_info";
      pk = Some "id";
      fks = [ "movie_id"; "info_type_id" ];
      columns = [ i "id"; i "movie_id"; i "info_type_id"; s "info"; s "note" ];
    };
    {
      name = "movie_info_idx";
      pk = Some "id";
      fks = [ "movie_id"; "info_type_id" ];
      columns = [ i "id"; i "movie_id"; i "info_type_id"; s "info"; s "note" ];
    };
    {
      name = "movie_keyword";
      pk = Some "id";
      fks = [ "movie_id"; "keyword_id" ];
      columns = [ i "id"; i "movie_id"; i "keyword_id" ];
    };
    {
      name = "movie_link";
      pk = Some "id";
      fks = [ "movie_id"; "linked_movie_id"; "link_type_id" ];
      columns = [ i "id"; i "movie_id"; i "linked_movie_id"; i "link_type_id" ];
    };
    {
      name = "name";
      pk = Some "id";
      fks = [];
      columns =
        [ i "id"; s "name"; s "imdb_index"; i "imdb_id"; s "gender";
          s "name_pcode_cf"; s "name_pcode_nf"; s "surname_pcode"; s "md5sum" ];
    };
    {
      name = "person_info";
      pk = Some "id";
      fks = [ "person_id"; "info_type_id" ];
      columns = [ i "id"; i "person_id"; i "info_type_id"; s "info"; s "note" ];
    };
    {
      name = "role_type";
      pk = Some "id";
      fks = [];
      columns = [ i "id"; s "role" ];
    };
    {
      name = "title";
      pk = Some "id";
      fks = [ "kind_id" ];
      columns =
        [ i "id"; s "title"; s "imdb_index"; i "kind_id"; i "production_year";
          i "imdb_id"; s "phonetic_code"; i "episode_of_id"; i "season_nr";
          i "episode_nr"; s "series_years"; s "md5sum" ];
    };
  ]

let find name =
  match List.find_opt (fun t -> String.equal t.name name) tables with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Imdb_schema.find: unknown table %s" name)

let load ~dir =
  let db = Storage.Database.create () in
  List.iter
    (fun spec ->
      let table =
        Storage.Csv.import ~name:spec.name ?pk:spec.pk ~fks:spec.fks
          ~columns:spec.columns
          ~path:(Filename.concat dir (spec.name ^ ".csv"))
          ()
      in
      Storage.Database.add_table db table)
    tables;
  db
