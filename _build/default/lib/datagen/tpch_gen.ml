module Prng = Util.Prng
module Column = Storage.Column
module Table = Storage.Table

type sizes = {
  customers : int;
  orders : int;
  lineitems : int;
  suppliers : int;
  parts : int;
}

let default_sizes =
  { customers = 3_000; orders = 10_000; lineitems = 40_000; suppliers = 400; parts = 4_000 }

let table_names =
  [ "customer"; "lineitem"; "nation"; "orders"; "part"; "region"; "supplier" ]

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1);
    ("EGYPT", 4); ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3);
    ("INDIA", 2); ("INDONESIA", 2); ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2);
    ("JORDAN", 4); ("KENYA", 0); ("MOROCCO", 0); ("MOZAMBIQUE", 0);
    ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3); ("SAUDI ARABIA", 4);
    ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3); ("UNITED STATES", 1);
  |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "HOUSEHOLD"; "MACHINERY" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let part_types =
  [|
    "ECONOMY ANODIZED STEEL"; "ECONOMY BRUSHED BRASS"; "STANDARD POLISHED TIN";
    "STANDARD PLATED COPPER"; "LARGE BURNISHED NICKEL"; "MEDIUM ANODIZED STEEL";
    "SMALL PLATED BRASS"; "PROMO BURNISHED COPPER"; "PROMO POLISHED STEEL";
    "LARGE BRUSHED TIN";
  |]

let int_col name values = Column.of_ints ~name values
let str_col name values = Column.of_strings ~name values
let some_init n f = Array.init n (fun i -> Some (f i))

let generate ?(seed = 7) ?(scale = 1.0) () =
  let s base minimum = max minimum (int_of_float (float_of_int base *. scale)) in
  let sizes =
    {
      customers = s default_sizes.customers 30;
      orders = s default_sizes.orders 80;
      lineitems = s default_sizes.lineitems 200;
      suppliers = s default_sizes.suppliers 10;
      parts = s default_sizes.parts 40;
    }
  in
  let prng = Prng.create seed in
  let db = Storage.Database.create () in
  let add = Storage.Database.add_table db in

  let n_region = Array.length regions in
  add
    (Table.create ~name:"region" ~pk:"r_regionkey"
       [|
         int_col "r_regionkey" (some_init n_region (fun i -> i + 1));
         str_col "r_name" (Array.map (fun r -> Some r) regions);
       |]);

  let n_nation = Array.length nations in
  add
    (Table.create ~name:"nation" ~pk:"n_nationkey" ~fks:[ "n_regionkey" ]
       [|
         int_col "n_nationkey" (some_init n_nation (fun i -> i + 1));
         str_col "n_name" (Array.map (fun (n, _) -> Some n) nations);
         int_col "n_regionkey" (Array.map (fun (_, r) -> Some (r + 1)) nations);
       |]);

  let n_supp = sizes.suppliers in
  add
    (Table.create ~name:"supplier" ~pk:"s_suppkey" ~fks:[ "s_nationkey" ]
       [|
         int_col "s_suppkey" (some_init n_supp (fun i -> i + 1));
         str_col "s_name" (some_init n_supp (Printf.sprintf "Supplier#%09d"));
         int_col "s_nationkey" (some_init n_supp (fun _ -> 1 + Prng.int prng n_nation));
       |]);

  let n_cust = sizes.customers in
  add
    (Table.create ~name:"customer" ~pk:"c_custkey" ~fks:[ "c_nationkey" ]
       [|
         int_col "c_custkey" (some_init n_cust (fun i -> i + 1));
         str_col "c_name" (some_init n_cust (Printf.sprintf "Customer#%09d"));
         int_col "c_nationkey" (some_init n_cust (fun _ -> 1 + Prng.int prng n_nation));
         str_col "c_mktsegment" (some_init n_cust (fun _ -> Prng.pick prng segments));
         int_col "c_acctbal" (some_init n_cust (fun _ -> Prng.int prng 11_000 - 1_000));
       |]);

  let n_ord = sizes.orders in
  let order_year = some_init n_ord (fun _ -> 1992 + Prng.int prng 7) in
  add
    (Table.create ~name:"orders" ~pk:"o_orderkey" ~fks:[ "o_custkey" ]
       [|
         int_col "o_orderkey" (some_init n_ord (fun i -> i + 1));
         int_col "o_custkey" (some_init n_ord (fun _ -> 1 + Prng.int prng n_cust));
         int_col "o_orderyear" order_year;
         str_col "o_orderpriority" (some_init n_ord (fun _ -> Prng.pick prng priorities));
         int_col "o_totalprice" (some_init n_ord (fun _ -> 1_000 + Prng.int prng 400_000));
       |]);

  let n_part = sizes.parts in
  add
    (Table.create ~name:"part" ~pk:"p_partkey"
       [|
         int_col "p_partkey" (some_init n_part (fun i -> i + 1));
         str_col "p_name" (some_init n_part (Printf.sprintf "Part#%08d"));
         str_col "p_type" (some_init n_part (fun _ -> Prng.pick prng part_types));
         int_col "p_size" (some_init n_part (fun _ -> 1 + Prng.int prng 50));
       |]);

  let n_li = sizes.lineitems in
  add
    (Table.create ~name:"lineitem" ~pk:"l_linekey"
       ~fks:[ "l_orderkey"; "l_partkey"; "l_suppkey" ]
       [|
         int_col "l_linekey" (some_init n_li (fun i -> i + 1));
         int_col "l_orderkey" (some_init n_li (fun _ -> 1 + Prng.int prng n_ord));
         int_col "l_partkey" (some_init n_li (fun _ -> 1 + Prng.int prng n_part));
         int_col "l_suppkey" (some_init n_li (fun _ -> 1 + Prng.int prng n_supp));
         int_col "l_quantity" (some_init n_li (fun _ -> 1 + Prng.int prng 50));
         int_col "l_extendedprice" (some_init n_li (fun _ -> 1_000 + Prng.int prng 90_000));
         int_col "l_discount" (some_init n_li (fun _ -> Prng.int prng 11));
         int_col "l_shipyear" (some_init n_li (fun _ -> 1992 + Prng.int prng 7));
       |]);

  db
