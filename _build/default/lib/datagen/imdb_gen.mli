(** Synthetic IMDB-like database generator.

    Produces the 21-table schema of the paper's IMDB snapshot, at reduced
    scale, with the statistical properties that make JOB hard for
    cardinality estimators:

    - a Zipfian popularity skew over movies shared by {e every} satellite
      table (cast, info, keywords, companies), so join fan-outs are
      positively correlated and the independence assumption
      underestimates multi-join results;
    - intra-table correlations (kind vs production year, gender vs role,
      genre vs keyword);
    - join-crossing correlations (movies of US production companies
      mostly carry the country info "USA"; popular movies have both high
      ratings and large casts), which no tested estimator can see;
    - heavy-tailed categorical distributions (country codes, genres,
      keywords) with most-common values that dwarf the tail.

    All draws come from a seeded {!Util.Prng}, so a given (seed, scale)
    always yields the identical database. *)

type sizes = {
  titles : int;
  companies : int;
  persons : int;
  char_names : int;
  keywords : int;
  cast_info : int;
  movie_info : int;
  movie_companies : int;
  movie_keyword : int;
  movie_link : int;
  aka_name : int;
  aka_title : int;
  complete_cast : int;
  person_info : int;
}

val default_sizes : sizes
(** The scale-1.0 sizes (~330 k rows across all tables). *)

val sizes_of_scale : float -> sizes
(** Every size multiplied by the factor, floored at small minimums. *)

val generate : ?seed:int -> ?scale:float -> unit -> Storage.Database.t
(** Build the full 21-table database. Default [seed] is 42, default
    [scale] is 1.0. The returned database has PK/FK metadata declared on
    every table; its index configuration starts as [Pk_only]. *)

val table_names : string list
(** The 21 table names, sorted. *)
