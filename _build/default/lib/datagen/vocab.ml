let kind_types =
  [|
    "movie"; "tv series"; "tv movie"; "video movie"; "tv mini series";
    "video game"; "episode";
  |]

let company_types =
  [|
    "production companies"; "distributors"; "special effects companies";
    "miscellaneous companies";
  |]

let role_types =
  [|
    "actor"; "actress"; "producer"; "writer"; "director"; "cinematographer";
    "composer"; "costume designer"; "editor"; "miscellaneous crew";
    "production designer"; "guest";
  |]

let link_types =
  [|
    "follows"; "followed by"; "remake of"; "remade as"; "references";
    "referenced in"; "spoofs"; "spoofed in"; "features"; "featured in";
    "spin off from"; "spin off"; "version of"; "similar to"; "edited into";
    "edited from"; "alternate language version of"; "unknown link";
  |]

let comp_cast_types = [| "cast"; "crew"; "complete"; "complete+verified" |]

let info_types =
  [|
    "budget"; "genres"; "languages"; "countries"; "rating"; "votes";
    "release dates"; "runtimes"; "color info"; "taglines"; "plot";
    "certificates"; "sound mix"; "locations"; "production dates";
    "top 250 rank"; "bottom 10 rank"; "trivia"; "goofs"; "quotes";
    "gross"; "opening weekend"; "admissions"; "filming dates"; "copyright holder";
    "tech info"; "camera"; "laboratory"; "printed film format"; "cinematographic process";
    "birth date"; "death date"; "birth name"; "height"; "biography";
    "spouse"; "other works"; "birth notes"; "books"; "agent address";
  |]

let info_type_id info =
  let rec go i =
    if i >= Array.length info_types then
      invalid_arg (Printf.sprintf "Vocab.info_type_id: unknown info type %s" info)
    else if String.equal info_types.(i) info then i + 1
    else go (i + 1)
  in
  go 0

let genres =
  [|
    "Drama"; "Comedy"; "Documentary"; "Short"; "Romance"; "Action"; "Thriller";
    "Crime"; "Horror"; "Adventure"; "Music"; "Animation"; "Family"; "Mystery";
    "Sci-Fi"; "Fantasy"; "War"; "Western"; "Biography"; "History"; "Sport";
    "Musical"; "Film-Noir"; "News";
  |]

let countries =
  [|
    "USA"; "UK"; "Germany"; "France"; "Italy"; "Japan"; "Canada"; "India";
    "Spain"; "Australia"; "Sweden"; "Denmark"; "Norway"; "Finland";
    "Netherlands"; "Belgium"; "Mexico"; "Brazil"; "Argentina"; "Russia";
    "China"; "South Korea"; "Poland"; "Austria"; "Switzerland"; "Greece";
    "Ireland"; "Hungary"; "Czech Republic"; "Portugal";
  |]

let languages =
  [|
    "English"; "German"; "French"; "Italian"; "Japanese"; "Spanish";
    "Mandarin"; "Hindi"; "Russian"; "Swedish"; "Danish"; "Norwegian";
    "Portuguese"; "Dutch"; "Polish"; "Korean"; "Cantonese"; "Greek";
    "Czech"; "Hungarian";
  |]

let country_codes =
  [|
    "[us]"; "[gb]"; "[de]"; "[fr]"; "[it]"; "[jp]"; "[ca]"; "[in]"; "[es]";
    "[au]"; "[se]"; "[dk]"; "[no]"; "[fi]"; "[nl]"; "[be]"; "[mx]"; "[br]";
    "[ar]"; "[ru]"; "[cn]"; "[kr]"; "[pl]"; "[at]"; "[ch]"; "[gr]"; "[ie]";
    "[hu]"; "[cz]"; "[pt]"; "[tr]"; "[il]"; "[za]"; "[nz]"; "[th]"; "[ph]";
    "[eg]"; "[ro]"; "[bg]"; "[yu]";
  |]

let company_suffixes =
  [|
    "Film"; "Pictures"; "Productions"; "Entertainment"; "Studios"; "Media";
    "Films"; "International"; "Television"; "Cinema";
  |]

let company_cores =
  [|
    "Warner"; "Universal"; "Paramount"; "Columbia"; "Metro"; "Fox"; "United";
    "National"; "Royal"; "Pacific"; "Atlantic"; "Golden"; "Silver"; "Summit";
    "Vista"; "Nova"; "Orion"; "Castle"; "Crown"; "Liberty"; "Phoenix";
    "Aurora"; "Zenith"; "Meridian"; "Harbor"; "Northern"; "Southern";
    "Eastern"; "Western"; "Central";
  |]

let mc_notes =
  [|
    "(presents)"; "(co-production)"; "(in association with)"; "(as producer)";
    "(VHS)"; "(DVD)"; "(USA)"; "(worldwide)"; "(theatrical)"; "(TV)";
    "(2000) (worldwide)"; "(1994) (VHS)"; "(uncredited)";
  |]

let ci_notes =
  [|
    "(producer)"; "(executive producer)"; "(co-producer)"; "(voice)";
    "(voice: English version)"; "(voice: Japanese version)"; "(uncredited)";
    "(archive footage)"; "(as himself)"; "(writer)"; "(story)";
    "(screenplay)";
  |]

let keywords_special =
  [|
    "character-name-in-title"; "marvel-cinematic-universe"; "based-on-novel";
    "based-on-comic"; "sequel"; "superhero"; "murder"; "blood"; "violence";
    "gore"; "revenge"; "female-nudity"; "independent-film"; "love";
    "friendship"; "death"; "police"; "new-york-city"; "london"; "paris";
  |]

let keyword_stems =
  [|
    "dog"; "cat"; "war"; "family"; "school"; "money"; "dream"; "night";
    "city"; "island"; "river"; "mountain"; "winter"; "summer"; "dance";
    "song"; "train"; "ship"; "letter"; "secret"; "ghost"; "robot"; "alien";
    "king"; "queen"; "doctor"; "teacher"; "soldier"; "artist"; "journey";
  |]

let first_names_f =
  [|
    "Anna"; "Maria"; "Elizabeth"; "Angela"; "Catherine"; "Julia"; "Sophie";
    "Laura"; "Emma"; "Alice"; "Clara"; "Diana"; "Eva"; "Grace"; "Helen";
    "Irene"; "Jane"; "Karen"; "Lily"; "Nina";
  |]

let first_names_m =
  [|
    "James"; "John"; "Robert"; "Michael"; "William"; "David"; "Richard";
    "Thomas"; "Charles"; "George"; "Daniel"; "Paul"; "Mark"; "Steven";
    "Andrew"; "Peter"; "Frank"; "Henry"; "Victor"; "Walter";
  |]

let surnames =
  [|
    "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Miller"; "Davis";
    "Wilson"; "Anderson"; "Taylor"; "Moore"; "Martin"; "Lee"; "Walker";
    "Hall"; "Young"; "King"; "Wright"; "Hill"; "Scott"; "Green"; "Baker";
    "Adams"; "Nelson"; "Carter"; "Mitchell"; "Turner"; "Parker"; "Collins";
    "Edwards";
  |]

let title_words =
  [|
    "Night"; "Day"; "Shadow"; "Light"; "River"; "Mountain"; "Dream"; "Star";
    "Heart"; "Storm"; "Fire"; "Ice"; "Road"; "House"; "Garden"; "Island";
    "Winter"; "Summer"; "Autumn"; "Spring"; "Silence"; "Echo"; "Dance";
    "Song"; "Journey"; "Return"; "Secret"; "Promise"; "Letter"; "Stranger";
  |]
