(** Shared constant vocabularies.

    The data generator draws categorical values from these lists, and the
    JOB-style workload (lib/workload) references the same constants in its
    predicates. Keeping both sides on one vocabulary guarantees that every
    query constant actually exists in the generated database (or
    deliberately does not, for the zero-result predicates the paper's
    estimators stumble on). *)

val kind_types : string array
val company_types : string array
val role_types : string array
val link_types : string array
val comp_cast_types : string array

val info_types : string array
(** Position [i] is the info with id [i+1]. Includes the movie infos
    ([rating], [votes], [genres], [countries], ...) and person infos
    ([birth date], ...). *)

val info_type_id : string -> int
(** 1-based id of an info type. Raises [Invalid_argument] if unknown. *)

val genres : string array
val countries : string array
(** Movie-info country names, e.g. ["USA"]. *)

val languages : string array

val country_codes : string array
(** Company country codes, e.g. ["[us]"]; position 0 is ["[us]"]. *)

val company_suffixes : string array
val company_cores : string array
val mc_notes : string array
(** movie_companies note templates, e.g. ["(co-production)"]. *)

val ci_notes : string array
(** cast_info note values, e.g. ["(producer)"]. *)

val keywords_special : string array
(** Keywords referenced verbatim by queries, e.g.
    ["character-name-in-title"]. *)

val keyword_stems : string array

val first_names_f : string array
val first_names_m : string array
val surnames : string array
val title_words : string array
