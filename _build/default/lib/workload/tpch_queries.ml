type query = { name : string; sql : string }

(* Aggregations and arithmetic are stripped (the paper strips them from
   JOB too); the join structure and selections match the TPC-H
   originals. *)
let all =
  [
    {
      name = "TPC-H 5";
      sql =
        "SELECT MIN(n.n_name) FROM customer AS c, orders AS o, lineitem AS l, \
         supplier AS s, nation AS n, region AS r \
         WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
         AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey \
         AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
         AND r.r_name = 'ASIA' AND o.o_orderyear = 1994";
    };
    {
      name = "TPC-H 8";
      sql =
        "SELECT MIN(o.o_orderyear) FROM part AS p, lineitem AS l, orders AS o, \
         customer AS c, nation AS n, region AS r \
         WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey \
         AND o.o_custkey = c.c_custkey AND c.c_nationkey = n.n_nationkey \
         AND n.n_regionkey = r.r_regionkey AND r.r_name = 'AMERICA' \
         AND p.p_type = 'ECONOMY ANODIZED STEEL' \
         AND o.o_orderyear BETWEEN 1995 AND 1996";
    };
    {
      name = "TPC-H 10";
      sql =
        "SELECT MIN(c.c_name) FROM customer AS c, orders AS o, lineitem AS l, \
         nation AS n \
         WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
         AND c.c_nationkey = n.n_nationkey AND o.o_orderyear = 1993 \
         AND l.l_discount > 5";
    };
  ]

let find name =
  match List.find_opt (fun q -> String.equal q.name name) all with
  | Some q -> q
  | None -> raise Not_found
