(** The Join Order Benchmark workload, reproduced over the synthetic IMDB
    schema: 33 query structures, each with 2–6 variants that differ only
    in their selection predicates, 113 queries in total (like the
    original), between 3 and 16 join predicates per query.

    Every query is a single select-project-join block whose join graph is
    star-shaped around [title] with chains hanging off ([cast_info] →
    [name] → [person_info], [movie_link] self-joins of [title], ...) and
    whose FK/FK "dotted" edges arise from transitive join predicates —
    the shape of the paper's Figure 2. Constants reference the
    generator's vocabulary, including a few deliberately empty or
    near-empty selections that force estimators onto their magic-constant
    fallback paths. *)

type query = {
  name : string;  (** e.g. ["13d"] *)
  family : int;  (** 1..33 *)
  sql : string;
}

val all : query list
(** The 113 queries, ordered by family then variant. *)

val find : string -> query
(** Lookup by name; raises [Not_found]. *)

val family_count : int
val query_count : int

val families : (int * query list) list
(** Queries grouped by family. *)
