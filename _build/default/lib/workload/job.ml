type query = {
  name : string;
  family : int;
  sql : string;
}

(* A query structure: fixed FROM clause, fixed join predicates, and one
   selection-predicate list per variant (the JOB recipe: "33 query
   structures, each with 2-6 variants that differ in their selections
   only"). *)
type structure = {
  id : int;
  projections : string list;
  from : string list;
  joins : string list;
  variants : string list list;
}

let render s preds =
  let select =
    String.concat ", " (List.map (fun p -> Printf.sprintf "MIN(%s)" p) s.projections)
  in
  Printf.sprintf "SELECT %s FROM %s WHERE %s" select
    (String.concat ", " s.from)
    (String.concat " AND " (s.joins @ preds))

(* Alias glossary (matching the original JOB):
   t/t2 = title, mc = movie_companies, cn = company_name,
   ct = company_type, mi = movie_info, it/it2 = info_type,
   miidx = movie_info_idx, kt = kind_type, ci = cast_info, n = name,
   rt = role_type, chn = char_name, mk = movie_keyword, k = keyword,
   ml = movie_link, lt = link_type, cc = complete_cast,
   cct1/cct2 = comp_cast_type, an = aka_name, at = aka_title,
   pi = person_info. *)

let structures =
  [
    {
      id = 1;
      projections = [ "cn.name"; "t.title" ];
      from = [ "title AS t"; "movie_companies AS mc"; "company_name AS cn"; "company_type AS ct" ];
      joins =
        [ "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id" ];
      variants =
        [
          [ "ct.kind = 'production companies'"; "cn.country_code = '[de]'"; "t.production_year > 2005" ];
          [ "ct.kind = 'distributors'"; "cn.country_code = '[us]'"; "t.production_year BETWEEN 1990 AND 2000" ];
          [ "ct.kind = 'production companies'"; "cn.name LIKE '%Warner%'" ];
        ];
    };
    {
      id = 2;
      projections = [ "t.title" ];
      from = [ "title AS t"; "movie_keyword AS mk"; "keyword AS k"; "movie_companies AS mc" ];
      joins =
        [
          "t.id = mk.movie_id"; "mk.keyword_id = k.id"; "t.id = mc.movie_id";
          "mk.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'character-name-in-title'"; "t.production_year > 2000" ];
          [ "k.keyword = 'sequel'" ];
          [ "k.keyword IN ('murder', 'blood', 'violence')"; "mc.note IS NOT NULL" ];
        ];
    };
    {
      id = 3;
      projections = [ "t.title"; "mi.info" ];
      from = [ "title AS t"; "movie_info AS mi"; "info_type AS it"; "kind_type AS kt" ];
      joins = [ "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.kind_id = kt.id" ];
      variants =
        [
          [ "it.info = 'genres'"; "mi.info = 'Drama'"; "kt.kind = 'movie'" ];
          [ "it.info = 'countries'"; "mi.info IN ('Sweden', 'Norway', 'Denmark')"; "kt.kind = 'tv series'" ];
          [ "it.info = 'release dates'"; "mi.info LIKE 'USA:%200%'"; "kt.kind = 'movie'"; "t.production_year > 2005" ];
          [ "it.info = 'languages'"; "mi.info = 'German'"; "kt.kind = 'video movie'" ];
        ];
    };
    {
      id = 4;
      projections = [ "miidx.info"; "t.title" ];
      from =
        [
          "title AS t"; "movie_info_idx AS miidx"; "info_type AS it";
          "movie_info AS mi"; "info_type AS it2";
        ];
      joins =
        [
          "t.id = miidx.movie_id"; "miidx.info_type_id = it.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it2.id"; "mi.movie_id = miidx.movie_id";
        ];
      variants =
        [
          [ "it.info = 'rating'"; "miidx.info > '8.0'"; "it2.info = 'genres'"; "mi.info = 'Horror'" ];
          [ "it.info = 'rating'"; "miidx.info > '9.0'"; "it2.info = 'countries'"; "mi.info = 'USA'" ];
          [ "it.info = 'votes'"; "it2.info = 'genres'"; "mi.info = 'Comedy'"; "t.production_year < 1995" ];
        ];
    };
    {
      id = 5;
      projections = [ "t.title"; "cn.name" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "company_type AS ct"; "movie_info AS mi"; "info_type AS it";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "mc.movie_id = mi.movie_id";
        ];
      variants =
        [
          [ "ct.kind = 'production companies'"; "cn.country_code = '[fr]'"; "it.info = 'languages'"; "mi.info = 'French'" ];
          [ "cn.country_code = '[us]'"; "it.info = 'genres'"; "mi.info = 'Action'"; "t.production_year > 2010" ];
          [ "ct.kind = 'distributors'"; "it.info = 'runtimes'"; "cn.name LIKE '%Film%'" ];
          [ "cn.country_code = '[it]'"; "it.info = 'countries'"; "mi.info = 'Italy'" ];
        ];
    };
    {
      id = 6;
      projections = [ "t.title"; "n.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "movie_keyword AS mk";
          "keyword AS k";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "ci.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'marvel-cinematic-universe'"; "n.name LIKE '%Robert%'"; "t.production_year > 2008" ];
          [ "k.keyword IN ('superhero', 'sequel')"; "t.production_year > 2000" ];
          [ "k.keyword = 'murder'"; "n.gender = 'f'" ];
        ];
    };
    {
      id = 7;
      projections = [ "n.name"; "t.title" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "aka_name AS an";
          "person_info AS pi"; "info_type AS it";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "an.person_id = n.id";
          "pi.person_id = n.id"; "pi.info_type_id = it.id";
          "ci.person_id = an.person_id";
        ];
      variants =
        [
          [ "it.info = 'birth date'"; "n.name LIKE 'A%'"; "t.production_year BETWEEN 1980 AND 1995" ];
          [ "it.info = 'biography'"; "n.gender = 'm'"; "pi.note = 'Volker Boehm'" ];
          [ "it.info = 'height'"; "an.name LIKE '%James%'" ];
        ];
    };
    {
      id = 8;
      projections = [ "n.name"; "cn.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "role_type AS rt";
          "movie_companies AS mc"; "company_name AS cn"; "company_type AS ct";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "ci.role_id = rt.id";
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "ci.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'producer'"; "ci.note = '(producer)'"; "cn.country_code = '[us]'" ];
          [ "rt.role = 'actress'"; "n.gender = 'f'"; "ct.kind = 'production companies'"; "t.production_year > 2005" ];
          [ "rt.role = 'director'"; "cn.name LIKE '%Universal%'" ];
          [ "rt.role = 'writer'"; "ci.note IN ('(writer)', '(story)', '(screenplay)')"; "ct.kind = 'distributors'" ];
        ];
    };
    {
      id = 9;
      projections = [ "chn.name"; "t.title" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "char_name AS chn";
          "movie_companies AS mc"; "company_name AS cn"; "kind_type AS kt";
        ];
      joins =
        [
          "ci.person_role_id = chn.id"; "t.id = ci.movie_id"; "ci.person_id = n.id";
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "t.kind_id = kt.id";
          "ci.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "chn.name = 'Tony Stark'"; "kt.kind = 'movie'" ];
          [ "chn.name LIKE '%James%'"; "n.gender = 'f'"; "kt.kind = 'movie'"; "cn.country_code = '[us]'" ];
          [ "chn.name = 'Queen'"; "t.production_year BETWEEN 1950 AND 2000" ];
          [ "n.name LIKE 'B%'"; "kt.kind = 'tv series'"; "cn.country_code = '[gb]'" ];
        ];
    };
    {
      id = 10;
      projections = [ "chn.name"; "t.title" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "char_name AS chn"; "role_type AS rt";
          "movie_companies AS mc"; "company_type AS ct";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_role_id = chn.id"; "ci.role_id = rt.id";
          "t.id = mc.movie_id"; "mc.company_type_id = ct.id"; "ci.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'actor'"; "ct.kind = 'production companies'"; "t.production_year > 2010" ];
          [ "rt.role = 'actress'"; "ci.note = '(uncredited)'" ];
          [ "rt.role = 'guest'"; "ct.kind = 'distributors'"; "t.production_year > 2000" ];
        ];
    };
    {
      id = 11;
      projections = [ "t.title"; "cn.name" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "company_type AS ct"; "movie_link AS ml"; "link_type AS lt";
          "movie_keyword AS mk"; "keyword AS k";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "ml.movie_id = t.id"; "ml.link_type_id = lt.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "mk.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "lt.link = 'follows'"; "k.keyword = 'sequel'"; "cn.country_code = '[us]'" ];
          [ "lt.link IN ('follows', 'followed by')"; "k.keyword = 'character-name-in-title'"; "ct.kind = 'production companies'" ];
          [ "lt.link = 'features'"; "cn.name LIKE '%Paramount%'" ];
          [ "lt.link = 'remake of'"; "k.keyword = 'revenge'"; "t.production_year > 1990" ];
        ];
    };
    {
      id = 12;
      projections = [ "cn.name"; "miidx.info" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "company_type AS ct"; "movie_info AS mi"; "info_type AS it";
          "movie_info_idx AS miidx"; "info_type AS it2";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.id = miidx.movie_id";
          "miidx.info_type_id = it2.id"; "mi.movie_id = miidx.movie_id";
          "mc.movie_id = miidx.movie_id";
        ];
      variants =
        [
          [ "it.info = 'genres'"; "mi.info = 'Drama'"; "it2.info = 'rating'"; "miidx.info > '7.0'"; "cn.country_code = '[us]'" ];
          [ "it.info = 'countries'"; "mi.info = 'Germany'"; "it2.info = 'rating'"; "miidx.info > '8.5'"; "ct.kind = 'production companies'" ];
          [ "it.info = 'genres'"; "mi.info = 'Thriller'"; "it2.info = 'votes'"; "cn.name LIKE '%Metro%'" ];
          [ "it.info = 'languages'"; "mi.info = 'English'"; "it2.info = 'top 250 rank'"; "t.production_year > 2005" ];
        ];
    };
    {
      id = 13;
      projections = [ "cn.name"; "mi.info"; "miidx.info" ];
      from =
        [
          "company_name AS cn"; "company_type AS ct"; "info_type AS it";
          "info_type AS it2"; "title AS t"; "kind_type AS kt";
          "movie_companies AS mc"; "movie_info AS mi"; "movie_info_idx AS miidx";
        ];
      joins =
        [
          "mc.company_id = cn.id"; "mc.company_type_id = ct.id"; "t.id = mc.movie_id";
          "t.kind_id = kt.id"; "t.id = mi.movie_id"; "mi.info_type_id = it2.id";
          "t.id = miidx.movie_id"; "miidx.info_type_id = it.id";
          "mc.movie_id = mi.movie_id"; "mc.movie_id = miidx.movie_id";
          "mi.movie_id = miidx.movie_id";
        ];
      variants =
        [
          [ "cn.country_code = '[de]'"; "ct.kind = 'production companies'"; "it.info = 'rating'"; "it2.info = 'release dates'"; "kt.kind = 'movie'" ];
          [ "cn.country_code = '[gb]'"; "ct.kind = 'distributors'"; "it.info = 'votes'"; "it2.info = 'genres'"; "mi.info = 'Drama'"; "kt.kind = 'tv series'" ];
          [ "cn.country_code = '[fr]'"; "ct.kind = 'production companies'"; "it.info = 'rating'"; "miidx.info < '3.5'"; "it2.info = 'release dates'"; "kt.kind = 'movie'" ];
          (* The paper's running example: ratings and release dates of
             movies produced by US companies. *)
          [ "cn.country_code = '[us]'"; "ct.kind = 'production companies'"; "it.info = 'rating'"; "it2.info = 'release dates'"; "kt.kind = 'movie'" ];
        ];
    };
    {
      id = 14;
      projections = [ "mi.info"; "t.title" ];
      from =
        [
          "title AS t"; "movie_info AS mi"; "info_type AS it"; "kind_type AS kt";
          "movie_info_idx AS miidx"; "info_type AS it2"; "movie_keyword AS mk";
          "keyword AS k";
        ];
      joins =
        [
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.kind_id = kt.id";
          "t.id = miidx.movie_id"; "miidx.info_type_id = it2.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "mi.movie_id = miidx.movie_id";
          "mk.movie_id = mi.movie_id";
        ];
      variants =
        [
          [ "kt.kind = 'movie'"; "it.info = 'countries'"; "mi.info = 'USA'"; "it2.info = 'rating'"; "miidx.info > '8.0'"; "k.keyword = 'murder'" ];
          [ "kt.kind = 'movie'"; "it.info = 'genres'"; "mi.info = 'Horror'"; "it2.info = 'rating'"; "miidx.info < '4.0'"; "k.keyword IN ('blood', 'gore')" ];
          [ "kt.kind = 'episode'"; "it.info = 'languages'"; "mi.info = 'English'"; "it2.info = 'votes'"; "k.keyword = 'death'" ];
          [ "kt.kind = 'movie'"; "it.info = 'release dates'"; "mi.info LIKE 'USA:%199%'"; "it2.info = 'rating'"; "k.keyword = 'love'"; "t.production_year BETWEEN 1990 AND 2000" ];
        ];
    };
    {
      id = 15;
      projections = [ "t.title"; "at.title" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "movie_info AS mi"; "info_type AS it"; "company_type AS ct";
          "aka_title AS at";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "at.movie_id = t.id";
          "mc.movie_id = mi.movie_id"; "at.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "cn.country_code = '[us]'"; "it.info = 'release dates'"; "mi.info LIKE 'USA:%200%'"; "t.production_year > 2000" ];
          [ "ct.kind = 'distributors'"; "it.info = 'genres'"; "mi.info = 'Documentary'"; "at.note IS NOT NULL" ];
          [ "cn.name LIKE '%Fox%'"; "it.info = 'countries'"; "mi.info = 'USA'" ];
        ];
    };
    {
      id = 16;
      projections = [ "an.name"; "t.title" ];
      from =
        [
          "aka_name AS an"; "cast_info AS ci"; "movie_companies AS mc";
          "company_name AS cn"; "keyword AS k"; "movie_keyword AS mk";
          "name AS n"; "title AS t";
        ];
      joins =
        [
          "an.person_id = n.id"; "n.id = ci.person_id"; "ci.movie_id = t.id";
          "t.id = mk.movie_id"; "mk.keyword_id = k.id"; "t.id = mc.movie_id";
          "mc.company_id = cn.id"; "ci.movie_id = mc.movie_id";
          "mk.movie_id = ci.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'character-name-in-title'"; "cn.country_code = '[us]'" ];
          [ "k.keyword = 'based-on-novel'"; "n.name LIKE 'A%'"; "t.production_year BETWEEN 1980 AND 2000" ];
          [ "k.keyword = 'sequel'"; "cn.name LIKE '%Entertainment%'" ];
          [ "k.keyword = 'character-name-in-title'"; "n.name LIKE '%B%'"; "t.production_year > 1990" ];
        ];
    };
    {
      id = 17;
      projections = [ "n.name"; "k.keyword" ];
      from =
        [
          "cast_info AS ci"; "company_name AS cn"; "keyword AS k";
          "movie_companies AS mc"; "movie_keyword AS mk"; "name AS n"; "title AS t";
        ];
      joins =
        [
          "ci.movie_id = t.id"; "ci.person_id = n.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "t.id = mc.movie_id"; "mc.company_id = cn.id";
          "ci.movie_id = mk.movie_id"; "mc.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'character-name-in-title'"; "n.name LIKE 'B%'" ];
          (* 'Z%' matches no generated surname: the near-empty selection
             that pushes estimators onto magic constants. *)
          [ "k.keyword = 'character-name-in-title'"; "n.name LIKE 'Z%'" ];
          [ "k.keyword IN ('murder', 'violence')"; "cn.country_code = '[de]'" ];
        ];
    };
    {
      id = 18;
      projections = [ "n.name"; "pi.info" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "person_info AS pi";
          "info_type AS it";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "pi.person_id = n.id";
          "pi.info_type_id = it.id"; "ci.person_id = pi.person_id";
        ];
      variants =
        [
          [ "it.info = 'birth date'"; "n.gender = 'm'"; "t.production_year > 2005" ];
          [ "it.info = 'spouse'"; "n.name LIKE '%Maria%'" ];
          [ "it.info = 'death date'"; "t.production_year < 1980" ];
        ];
    };
    {
      id = 19;
      projections = [ "n.name"; "t.title" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "aka_name AS an";
          "movie_companies AS mc"; "company_name AS cn"; "movie_info AS mi";
          "info_type AS it"; "role_type AS rt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "an.person_id = n.id";
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "ci.role_id = rt.id"; "ci.movie_id = mc.movie_id";
          "mi.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'actress'"; "n.gender = 'f'"; "it.info = 'genres'"; "mi.info = 'Romance'"; "cn.country_code = '[us]'" ];
          [ "rt.role = 'actor'"; "it.info = 'countries'"; "mi.info = 'Japan'"; "t.production_year > 2000" ];
          [ "rt.role = 'producer'"; "ci.note = '(executive producer)'"; "it.info = 'genres'"; "mi.info = 'Action'" ];
        ];
    };
    {
      id = 20;
      projections = [ "t.title"; "chn.name" ];
      from =
        [
          "title AS t"; "complete_cast AS cc"; "comp_cast_type AS cct1";
          "comp_cast_type AS cct2"; "cast_info AS ci"; "char_name AS chn";
          "kind_type AS kt";
        ];
      joins =
        [
          "cc.movie_id = t.id"; "cc.subject_id = cct1.id"; "cc.status_id = cct2.id";
          "ci.movie_id = t.id"; "ci.person_role_id = chn.id"; "t.kind_id = kt.id";
          "cc.movie_id = ci.movie_id";
        ];
      variants =
        [
          [ "cct1.kind = 'cast'"; "cct2.kind = 'complete+verified'"; "chn.name LIKE '%Sherlock%'"; "kt.kind = 'movie'" ];
          [ "cct1.kind = 'crew'"; "cct2.kind = 'complete'"; "kt.kind = 'tv series'" ];
          [ "cct1.kind = 'cast'"; "cct2.kind = 'complete'"; "chn.name = 'Batman'"; "t.production_year > 1995" ];
        ];
    };
    {
      id = 21;
      projections = [ "cn.name"; "mi.info" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "company_type AS ct"; "movie_link AS ml"; "link_type AS lt";
          "movie_info AS mi"; "info_type AS it";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "ml.movie_id = t.id"; "ml.link_type_id = lt.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "mc.movie_id = mi.movie_id";
          "ml.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "lt.link = 'follows'"; "cn.country_code = '[us]'"; "it.info = 'genres'"; "mi.info = 'Sci-Fi'" ];
          [ "lt.link IN ('remake of', 'remade as')"; "ct.kind = 'production companies'"; "it.info = 'countries'"; "mi.info = 'UK'" ];
          [ "lt.link = 'followed by'"; "it.info = 'runtimes'"; "cn.name LIKE '%Columbia%'" ];
        ];
    };
    {
      id = 22;
      projections = [ "cn.name"; "k.keyword" ];
      from =
        [
          "title AS t"; "movie_companies AS mc"; "company_name AS cn";
          "company_type AS ct"; "movie_info AS mi"; "info_type AS it";
          "movie_keyword AS mk"; "keyword AS k"; "kind_type AS kt";
          "movie_info_idx AS miidx";
        ];
      joins =
        [
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "t.kind_id = kt.id"; "t.id = miidx.movie_id";
          "mi.movie_id = miidx.movie_id"; "mk.movie_id = mi.movie_id";
          "mc.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "kt.kind = 'movie'"; "k.keyword = 'murder'"; "it.info = 'genres'"; "mi.info = 'Thriller'"; "cn.country_code = '[us]'"; "miidx.info > '7.5'" ];
          [ "kt.kind = 'movie'"; "k.keyword IN ('gore', 'blood')"; "it.info = 'genres'"; "mi.info = 'Horror'"; "ct.kind = 'production companies'" ];
          [ "kt.kind = 'tv movie'"; "k.keyword = 'friendship'"; "it.info = 'languages'"; "mi.info = 'English'"; "cn.country_code = '[ca]'" ];
          [ "kt.kind = 'movie'"; "k.keyword = 'police'"; "it.info = 'countries'"; "mi.info = 'France'"; "t.production_year BETWEEN 1995 AND 2005" ];
        ];
    };
    {
      id = 23;
      projections = [ "t.title"; "mi.info" ];
      from =
        [
          "title AS t"; "movie_info AS mi"; "info_type AS it"; "kind_type AS kt";
          "complete_cast AS cc"; "comp_cast_type AS cct1"; "movie_companies AS mc";
          "company_type AS ct"; "company_name AS cn";
        ];
      joins =
        [
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.kind_id = kt.id";
          "cc.movie_id = t.id"; "cc.subject_id = cct1.id"; "t.id = mc.movie_id";
          "mc.company_type_id = ct.id"; "mc.company_id = cn.id";
          "cc.movie_id = mc.movie_id"; "mi.movie_id = mc.movie_id";
        ];
      variants =
        [
          [ "kt.kind = 'movie'"; "cct1.kind = 'cast'"; "it.info = 'release dates'"; "mi.info LIKE 'USA:%199%'"; "cn.country_code = '[us]'" ];
          [ "kt.kind = 'movie'"; "cct1.kind = 'crew'"; "it.info = 'genres'"; "mi.info = 'Mystery'"; "ct.kind = 'distributors'" ];
          [ "kt.kind = 'episode'"; "cct1.kind = 'cast'"; "it.info = 'languages'"; "mi.info = 'Japanese'" ];
        ];
    };
    {
      id = 24;
      projections = [ "chn.name"; "n.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "role_type AS rt";
          "char_name AS chn"; "movie_keyword AS mk"; "keyword AS k";
          "movie_info AS mi"; "info_type AS it"; "kind_type AS kt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "ci.role_id = rt.id";
          "ci.person_role_id = chn.id"; "t.id = mk.movie_id"; "mk.keyword_id = k.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.kind_id = kt.id";
          "ci.movie_id = mk.movie_id"; "mk.movie_id = mi.movie_id";
          "ci.movie_id = mi.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'actor'"; "k.keyword = 'superhero'"; "it.info = 'genres'"; "mi.info = 'Action'"; "kt.kind = 'movie'" ];
          [ "rt.role = 'actress'"; "n.gender = 'f'"; "k.keyword = 'love'"; "it.info = 'genres'"; "mi.info = 'Romance'"; "kt.kind = 'movie'" ];
          [ "rt.role = 'actor'"; "chn.name LIKE '%James%'"; "it.info = 'countries'"; "mi.info = 'UK'"; "k.keyword = 'london'"; "kt.kind = 'movie'" ];
          [ "rt.role = 'guest'"; "k.keyword = 'new-york-city'"; "it.info = 'genres'"; "mi.info = 'Crime'"; "kt.kind = 'tv series'" ];
        ];
    };
    {
      id = 25;
      projections = [ "mi.info"; "miidx.info"; "n.name" ];
      from =
        [
          "cast_info AS ci"; "info_type AS it"; "keyword AS k"; "movie_info AS mi";
          "movie_info_idx AS miidx"; "info_type AS it2"; "movie_keyword AS mk";
          "name AS n"; "title AS t";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "t.id = miidx.movie_id";
          "miidx.info_type_id = it2.id"; "t.id = mk.movie_id"; "mk.keyword_id = k.id";
          "mi.movie_id = miidx.movie_id"; "ci.movie_id = mi.movie_id";
          "ci.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'murder'"; "it.info = 'genres'"; "mi.info = 'Horror'"; "it2.info = 'votes'"; "n.gender = 'm'" ];
          [ "k.keyword IN ('murder', 'blood', 'gore')"; "it.info = 'genres'"; "mi.info = 'Horror'"; "it2.info = 'rating'"; "miidx.info < '5.0'"; "n.gender = 'm'" ];
          [ "k.keyword IN ('murder', 'violence', 'blood', 'gore', 'revenge')"; "it.info = 'genres'"; "mi.info IN ('Horror', 'Thriller')"; "it2.info = 'votes'"; "n.gender = 'm'"; "t.production_year > 1990" ];
        ];
    };
    {
      id = 26;
      projections = [ "chn.name"; "t.title" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "char_name AS chn"; "name AS n";
          "complete_cast AS cc"; "comp_cast_type AS cct1"; "keyword AS k";
          "movie_keyword AS mk"; "kind_type AS kt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_role_id = chn.id"; "ci.person_id = n.id";
          "cc.movie_id = t.id"; "cc.subject_id = cct1.id"; "t.id = mk.movie_id";
          "mk.keyword_id = k.id"; "t.kind_id = kt.id"; "cc.movie_id = ci.movie_id";
          "mk.movie_id = ci.movie_id";
        ];
      variants =
        [
          [ "cct1.kind = 'cast'"; "k.keyword = 'character-name-in-title'"; "kt.kind = 'movie'"; "chn.name LIKE '%King%'" ];
          (* comp_cast_type 'complete' never appears as a subject in the
             generated data: a deliberately empty dimension selection. *)
          [ "cct1.kind = 'complete'"; "kt.kind = 'movie'"; "k.keyword = 'based-on-comic'" ];
          [ "cct1.kind = 'cast'"; "kt.kind = 'tv series'"; "k.keyword = 'friendship'"; "n.gender = 'f'" ];
        ];
    };
    {
      id = 27;
      projections = [ "t.title"; "t2.title" ];
      from =
        [
          "title AS t"; "title AS t2"; "movie_link AS ml"; "link_type AS lt";
          "movie_companies AS mc"; "company_name AS cn";
        ];
      joins =
        [
          "ml.movie_id = t.id"; "ml.linked_movie_id = t2.id"; "ml.link_type_id = lt.id";
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.movie_id = ml.movie_id";
        ];
      variants =
        [
          [ "lt.link = 'follows'"; "cn.country_code = '[us]'"; "t2.production_year > 2000" ];
          [ "lt.link = 'remake of'"; "t.production_year < 1990" ];
          [ "lt.link IN ('spin off', 'spin off from')"; "cn.name LIKE '%Television%'" ];
        ];
    };
    {
      id = 28;
      projections = [ "cn.name"; "mi.info"; "t.title" ];
      from =
        [
          "title AS t"; "complete_cast AS cc"; "comp_cast_type AS cct1";
          "comp_cast_type AS cct2"; "movie_keyword AS mk"; "keyword AS k";
          "movie_info AS mi"; "info_type AS it"; "kind_type AS kt";
          "movie_companies AS mc"; "company_type AS ct"; "company_name AS cn";
        ];
      joins =
        [
          "cc.movie_id = t.id"; "cc.subject_id = cct1.id"; "cc.status_id = cct2.id";
          "t.id = mk.movie_id"; "mk.keyword_id = k.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "t.kind_id = kt.id"; "t.id = mc.movie_id";
          "mc.company_type_id = ct.id"; "mc.company_id = cn.id";
          "mc.movie_id = mi.movie_id"; "mk.movie_id = mi.movie_id";
          "cc.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "cct1.kind = 'cast'"; "cct2.kind = 'complete+verified'"; "k.keyword = 'murder'"; "it.info = 'genres'"; "mi.info = 'Thriller'"; "kt.kind = 'movie'"; "cn.country_code = '[us]'" ];
          [ "cct1.kind = 'crew'"; "cct2.kind = 'complete'"; "k.keyword = 'sequel'"; "it.info = 'genres'"; "mi.info = 'Action'"; "kt.kind = 'movie'"; "ct.kind = 'production companies'" ];
          [ "cct1.kind = 'cast'"; "cct2.kind = 'complete'"; "k.keyword IN ('love', 'friendship')"; "it.info = 'genres'"; "mi.info = 'Drama'"; "kt.kind = 'movie'"; "t.production_year > 2000" ];
          [ "cct1.kind = 'cast'"; "cct2.kind = 'complete+verified'"; "k.keyword = 'independent-film'"; "it.info = 'countries'"; "mi.info = 'Canada'"; "kt.kind = 'movie'"; "cn.country_code = '[ca]'" ];
        ];
    };
    {
      id = 29;
      projections = [ "n.name"; "chn.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "role_type AS rt";
          "aka_name AS an"; "char_name AS chn"; "movie_info AS mi";
          "info_type AS it"; "movie_keyword AS mk"; "keyword AS k";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "ci.role_id = rt.id";
          "an.person_id = n.id"; "ci.person_role_id = chn.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "t.id = mk.movie_id"; "mk.keyword_id = k.id";
          "ci.movie_id = mi.movie_id"; "mk.movie_id = mi.movie_id";
          "ci.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'actress'"; "n.gender = 'f'"; "it.info = 'genres'"; "mi.info = 'Animation'"; "k.keyword = 'love'"; "ci.note = '(voice)'" ];
          [ "rt.role = 'actor'"; "it.info = 'genres'"; "mi.info = 'Animation'"; "ci.note IN ('(voice)', '(voice: English version)')"; "k.keyword = 'superhero'" ];
          [ "rt.role = 'director'"; "it.info = 'countries'"; "mi.info = 'Sweden'"; "k.keyword = 'death'"; "an.name LIKE '%John%'" ];
        ];
    };
    {
      id = 30;
      projections = [ "mi.info"; "miidx.info"; "n.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "movie_info AS mi";
          "info_type AS it"; "movie_info_idx AS miidx"; "info_type AS it2";
          "movie_keyword AS mk"; "keyword AS k"; "role_type AS rt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "ci.role_id = rt.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.id = miidx.movie_id";
          "miidx.info_type_id = it2.id"; "t.id = mk.movie_id"; "mk.keyword_id = k.id";
          "ci.movie_id = mi.movie_id"; "mi.movie_id = miidx.movie_id";
          "mk.movie_id = miidx.movie_id"; "ci.movie_id = mk.movie_id";
        ];
      variants =
        [
          [ "rt.role = 'actor'"; "it.info = 'genres'"; "mi.info = 'Horror'"; "it2.info = 'rating'"; "miidx.info > '7.0'"; "k.keyword IN ('murder', 'blood')"; "n.gender = 'm'" ];
          [ "rt.role = 'actress'"; "it.info = 'genres'"; "mi.info = 'Sci-Fi'"; "it2.info = 'votes'"; "k.keyword = 'superhero'"; "n.gender = 'f'" ];
          [ "rt.role = 'writer'"; "it.info = 'genres'"; "mi.info = 'Western'"; "it2.info = 'rating'"; "miidx.info > '8.0'"; "k.keyword = 'revenge'" ];
          [ "rt.role = 'producer'"; "ci.note = '(producer)'"; "it.info = 'release dates'"; "mi.info LIKE 'USA:%200%'"; "it2.info = 'rating'"; "miidx.info > '6.5'"; "k.keyword = 'sequel'"; "t.production_year > 2000" ];
        ];
    };
    {
      id = 31;
      projections = [ "mi.info"; "cn.name" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "movie_info AS mi";
          "info_type AS it"; "movie_info_idx AS miidx"; "info_type AS it2";
          "movie_companies AS mc"; "company_name AS cn"; "company_type AS ct";
          "kind_type AS kt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "t.id = mi.movie_id";
          "mi.info_type_id = it.id"; "t.id = miidx.movie_id";
          "miidx.info_type_id = it2.id"; "t.id = mc.movie_id"; "mc.company_id = cn.id";
          "mc.company_type_id = ct.id"; "t.kind_id = kt.id";
          "ci.movie_id = mi.movie_id"; "mi.movie_id = miidx.movie_id";
          "mc.movie_id = miidx.movie_id"; "mc.movie_id = mi.movie_id";
        ];
      variants =
        [
          [ "kt.kind = 'movie'"; "cn.country_code = '[us]'"; "ct.kind = 'production companies'"; "it.info = 'genres'"; "mi.info = 'Drama'"; "it2.info = 'rating'"; "miidx.info > '8.0'"; "n.name LIKE 'A%'" ];
          [ "kt.kind = 'movie'"; "cn.country_code = '[de]'"; "it.info = 'languages'"; "mi.info = 'German'"; "it2.info = 'rating'"; "miidx.info > '6.0'" ];
          [ "kt.kind = 'tv movie'"; "ct.kind = 'distributors'"; "it.info = 'genres'"; "mi.info = 'Family'"; "it2.info = 'votes'"; "t.production_year > 2000" ];
          [ "kt.kind = 'movie'"; "cn.name LIKE '%Pictures%'"; "it.info = 'countries'"; "mi.info = 'USA'"; "it2.info = 'rating'"; "miidx.info > '9.0'"; "n.gender = 'f'" ];
        ];
    };
    {
      id = 32;
      projections = [ "t.title"; "t2.title" ];
      from =
        [
          "title AS t"; "movie_keyword AS mk"; "keyword AS k"; "movie_link AS ml";
          "link_type AS lt"; "title AS t2";
        ];
      joins =
        [
          "t.id = mk.movie_id"; "mk.keyword_id = k.id"; "ml.movie_id = t.id";
          "ml.link_type_id = lt.id"; "ml.linked_movie_id = t2.id";
          "mk.movie_id = ml.movie_id";
        ];
      variants =
        [
          [ "k.keyword = 'sequel'"; "lt.link = 'follows'"; "t.production_year > 1995" ];
          [ "k.keyword = 'sequel'"; "lt.link IN ('follows', 'followed by')"; "t2.production_year > 2000" ];
          [ "k.keyword = 'revenge'"; "lt.link = 'features'" ];
        ];
    };
    {
      id = 33;
      projections = [ "n.name"; "cn.name"; "miidx.info" ];
      from =
        [
          "title AS t"; "cast_info AS ci"; "name AS n"; "role_type AS rt";
          "movie_companies AS mc"; "company_name AS cn"; "company_type AS ct";
          "movie_info AS mi"; "info_type AS it"; "movie_info_idx AS miidx";
          "info_type AS it2"; "kind_type AS kt";
        ];
      joins =
        [
          "t.id = ci.movie_id"; "ci.person_id = n.id"; "ci.role_id = rt.id";
          "t.id = mc.movie_id"; "mc.company_id = cn.id"; "mc.company_type_id = ct.id";
          "t.id = mi.movie_id"; "mi.info_type_id = it.id"; "t.id = miidx.movie_id";
          "miidx.info_type_id = it2.id"; "t.kind_id = kt.id";
          "ci.movie_id = mc.movie_id"; "ci.movie_id = mi.movie_id";
          "mc.movie_id = mi.movie_id"; "mc.movie_id = miidx.movie_id";
          "mi.movie_id = miidx.movie_id";
        ];
      variants =
        [
          [ "kt.kind = 'movie'"; "rt.role = 'actor'"; "cn.country_code = '[us]'"; "ct.kind = 'production companies'"; "it.info = 'genres'"; "mi.info = 'Action'"; "it2.info = 'rating'"; "miidx.info > '7.0'" ];
          [ "kt.kind = 'movie'"; "rt.role = 'actress'"; "n.gender = 'f'"; "cn.country_code = '[gb]'"; "it.info = 'countries'"; "mi.info = 'UK'"; "it2.info = 'rating'"; "miidx.info > '6.0'"; "t.production_year > 1990" ];
          [ "kt.kind = 'movie'"; "rt.role = 'director'"; "cn.country_code = '[fr]'"; "ct.kind = 'production companies'"; "it.info = 'languages'"; "mi.info = 'French'"; "it2.info = 'votes'"; "t.production_year BETWEEN 1960 AND 1990" ];
        ];
    };
  ]

let variant_letter i = String.make 1 (Char.chr (Char.code 'a' + i))

let all =
  List.concat_map
    (fun s ->
      List.mapi
        (fun i preds ->
          {
            name = Printf.sprintf "%d%s" s.id (variant_letter i);
            family = s.id;
            sql = render s preds;
          })
        s.variants)
    structures

let find name =
  match List.find_opt (fun q -> String.equal q.name name) all with
  | Some q -> q
  | None -> raise Not_found

let family_count = List.length structures

let query_count = List.length all

let families =
  List.map (fun s -> (s.id, List.filter (fun q -> q.family = s.id) all)) structures
