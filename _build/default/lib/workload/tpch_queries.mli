(** SPJ analogues of TPC-H queries 5, 8 and 10 over the uniform mini
    TPC-H database — the easy-to-estimate contrast workload of the
    paper's Figure 4. *)

type query = { name : string; sql : string }

val all : query list
(** [TPC-H 5], [TPC-H 8], [TPC-H 10]. *)

val find : string -> query
