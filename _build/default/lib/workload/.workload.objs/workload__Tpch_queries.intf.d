lib/workload/tpch_queries.mli:
