lib/workload/job.mli:
