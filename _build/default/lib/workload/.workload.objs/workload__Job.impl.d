lib/workload/job.ml: Char List Printf String
