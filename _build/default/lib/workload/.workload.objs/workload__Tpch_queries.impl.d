lib/workload/tpch_queries.ml: List String
