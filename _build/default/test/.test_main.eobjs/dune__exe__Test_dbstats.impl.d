test/test_dbstats.ml: Alcotest Array Dbstats Float Lazy Option Printf QCheck Query Storage Support Util
