test/test_storage.ml: Alcotest Array List QCheck Storage String Support Util
