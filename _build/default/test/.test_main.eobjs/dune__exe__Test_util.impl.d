test/test_util.ml: Alcotest Array Float List QCheck String Support Util
