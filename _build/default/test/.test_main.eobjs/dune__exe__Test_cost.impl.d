test/test_cost.ml: Alcotest Cost List Plan Query Support Util
