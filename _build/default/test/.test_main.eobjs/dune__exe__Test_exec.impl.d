test/test_exec.ml: Alcotest Array Cardest Cost Exec Lazy List Plan Planner Printf QCheck Query Sqlfront Storage String Support Util
