test/support.ml: Array Datagen Fun List Printf QCheck QCheck_alcotest Query Storage Util
