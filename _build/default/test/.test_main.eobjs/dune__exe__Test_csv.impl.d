test/test_csv.ml: Alcotest Array Cardest Datagen Filename Lazy List Printf QCheck Query Sqlfront Storage String Support Sys
