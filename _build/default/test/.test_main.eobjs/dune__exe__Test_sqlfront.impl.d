test/test_sqlfront.ml: Alcotest Format Lazy List Query Sqlfront Support
