test/test_plan.ml: Alcotest Format List Plan Query String Support Util
