test/test_extensions.ml: Alcotest Cardest Core Cost Dbstats Exec Experiments Float Lazy List Planner Printf Query Sqlfront Storage String Support Util Workload
