test/test_integration.ml: Alcotest Array Cardest Core Cost Exec Experiments Lazy List Plan Query Storage String Workload
