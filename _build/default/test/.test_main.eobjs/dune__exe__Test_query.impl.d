test/test_query.ml: Alcotest Array List Printf QCheck Query Storage String Support Util
