test/test_planner.ml: Alcotest Array Cardest Cost Float Format Hashtbl List Plan Planner Printf QCheck Query Storage String Support Util
