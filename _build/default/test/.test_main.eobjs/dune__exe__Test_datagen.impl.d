test/test_datagen.ml: Alcotest Array Datagen Hashtbl Lazy List Option Printf Storage String Support
