test/test_workload.ml: Alcotest Array Lazy List Printf Query Sqlfront String Support Workload
