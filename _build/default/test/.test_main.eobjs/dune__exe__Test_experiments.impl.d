test/test_experiments.ml: Alcotest Cardest Exec Experiments Lazy List Plan Printf Query Sqlfront Storage String Support Util Workload
