test/test_cardest.ml: Alcotest Array Cardest Dbstats Float Format Lazy List Option Printf QCheck Query Sqlfront Storage Support Util Workload
