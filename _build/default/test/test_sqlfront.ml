(* Tests for the SQL frontend: lexer, parser, binder. *)

module L = Sqlfront.Lexer
module A = Sqlfront.Ast
module P = Query.Predicate

(* --- Lexer --------------------------------------------------------------- *)

let token = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (L.token_to_string t)) ( = )

let test_lexer_basics () =
  Alcotest.(check (list token)) "simple"
    [ L.IDENT "select"; L.IDENT "min"; L.LPAREN; L.IDENT "a"; L.DOT; L.IDENT "b";
      L.RPAREN; L.EOF ]
    (L.tokenize "SELECT MIN(a.b)");
  Alcotest.(check (list token)) "operators"
    [ L.OP_EQ; L.OP_NE; L.OP_NE; L.OP_LE; L.OP_GE; L.OP_LT; L.OP_GT; L.EOF ]
    (L.tokenize "= <> != <= >= < >");
  Alcotest.(check (list token)) "numbers and strings"
    [ L.INT 1995; L.STRING "it's"; L.EOF ]
    (L.tokenize "1995 'it''s'");
  Alcotest.(check (list token)) "comment skipped"
    [ L.IDENT "a"; L.EOF ]
    (L.tokenize "a -- trailing comment")

let test_lexer_errors () =
  Alcotest.check_raises "unterminated" (L.Lex_error "unterminated string literal")
    (fun () -> ignore (L.tokenize "'abc"));
  (try
     ignore (L.tokenize "a # b");
     Alcotest.fail "expected lex error"
   with L.Lex_error _ -> ())

(* --- Parser -------------------------------------------------------------- *)

let parse = Sqlfront.Parser.parse

let test_parse_full_query () =
  let s =
    parse
      "SELECT MIN(cn.name) AS company, MIN(t.title) FROM company_name AS cn, \
       title t, movie_companies AS mc WHERE cn.country_code = '[us]' AND \
       t.id = mc.movie_id AND mc.company_id = cn.id AND t.production_year \
       BETWEEN 1990 AND 2000 AND (mc.note LIKE '%(VHS)%' OR mc.note IS NULL) \
       AND mc.company_type_id IN (1, 2) AND t.title NOT LIKE 'The %' AND \
       t.episode_of_id IS NOT NULL;"
  in
  Alcotest.(check int) "projections" 2 (List.length s.A.projections);
  Alcotest.(check (list (pair string string))) "from"
    [ ("company_name", "cn"); ("title", "t"); ("movie_companies", "mc") ]
    s.A.from;
  Alcotest.(check int) "where items" 8 (List.length s.A.where);
  let joins =
    List.filter (function A.W_join _ -> true | A.W_atom _ -> false) s.A.where
  in
  Alcotest.(check int) "two joins" 2 (List.length joins)

let test_parse_or_group () =
  let s =
    parse
      "SELECT * FROM title AS t WHERE (t.production_year > 2000 OR \
       t.production_year < 1950 OR t.title LIKE 'The %')"
  in
  match s.A.where with
  | [ A.W_atom (A.A_or atoms) ] -> Alcotest.(check int) "3 branches" 3 (List.length atoms)
  | _ -> Alcotest.fail "expected a single OR group"

let expect_parse_error sql =
  try
    ignore (parse sql);
    Alcotest.failf "expected parse error for %s" sql
  with Sqlfront.Parser.Parse_error _ -> ()

let test_parse_errors () =
  expect_parse_error "SELECT";
  expect_parse_error "SELECT MIN(a.b) FROM t AS a";
  expect_parse_error "SELECT MIN(a.b) FROM t a WHERE a.x < b.y";
  (* non-eq join *)
  expect_parse_error "SELECT MIN(a.b) FROM t a WHERE a.x NOT IN (1)";
  expect_parse_error "SELECT MIN(a.b) FROM t a WHERE a.x = 1 garbage";
  expect_parse_error "SELECT MIN(a.b) FROM t a WHERE a.x LIKE 5"

let test_parse_pp_roundtrip () =
  let sql =
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
     t.id = mk.movie_id AND t.production_year > 2000"
  in
  let s = parse sql in
  let printed = Format.asprintf "%a" A.pp_select s in
  let reparsed = parse printed in
  Alcotest.(check int) "where survives" (List.length s.A.where)
    (List.length reparsed.A.where);
  Alcotest.(check (list (pair string string))) "from survives" s.A.from reparsed.A.from

(* --- Binder --------------------------------------------------------------- *)

let bind sql =
  Sqlfront.Binder.bind_sql (Lazy.force Support.imdb) ~name:"test" sql

let test_bind_simple () =
  let b =
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_companies AS mc, \
       company_name AS cn WHERE t.id = mc.movie_id AND mc.company_id = cn.id \
       AND cn.country_code = '[us]' AND t.production_year > 2000"
  in
  let g = b.Sqlfront.Binder.graph in
  Alcotest.(check int) "3 relations" 3 (Query.Query_graph.n_relations g);
  Alcotest.(check int) "2 edges" 2 (Query.Query_graph.n_edges g);
  Alcotest.(check int) "1 projection" 1 (List.length b.Sqlfront.Binder.projections);
  (* PK side detection: t.id is title's PK. *)
  (match Query.Query_graph.edges g with
  | [ e1; _ ] -> Alcotest.(check bool) "pk side" true (e1.Query.Query_graph.pk_side = Some `Left)
  | _ -> Alcotest.fail "edges");
  (* Title got its year predicate. *)
  let t = Query.Query_graph.relation g 0 in
  Alcotest.(check int) "one pred on t" 1 (List.length t.Query.Query_graph.preds)

let test_bind_missing_string_is_sentinel () =
  let b =
    bind
      "SELECT MIN(cn.name) FROM company_name AS cn, movie_companies AS mc \
       WHERE mc.company_id = cn.id AND cn.country_code = '[nonexistent]'"
  in
  let cn = Query.Query_graph.relation b.Sqlfront.Binder.graph 0 in
  match cn.Query.Query_graph.preds with
  | [ P.Cmp { code; _ } ] -> Alcotest.(check int) "sentinel" (-1) code
  | _ -> Alcotest.fail "expected one Cmp predicate"

let test_bind_str_order_becomes_str_cmp () =
  let b =
    bind
      "SELECT MIN(miidx.info) FROM movie_info_idx AS miidx, title AS t WHERE \
       t.id = miidx.movie_id AND miidx.info > '8.0'"
  in
  let miidx = Query.Query_graph.relation b.Sqlfront.Binder.graph 0 in
  match miidx.Query.Query_graph.preds with
  | [ P.Str_cmp { op = P.Gt; value = "8.0"; _ } ] -> ()
  | _ -> Alcotest.fail "expected Str_cmp"

let expect_bind_error sql =
  try
    ignore (bind sql);
    Alcotest.failf "expected bind error for %s" sql
  with Sqlfront.Binder.Bind_error _ -> ()

let test_bind_errors () =
  expect_bind_error "SELECT MIN(x.a) FROM no_such_table AS x, title AS t WHERE t.id = x.a";
  expect_bind_error
    "SELECT MIN(t.title) FROM title AS t, title AS t WHERE t.id = t.kind_id";
  expect_bind_error
    "SELECT MIN(t.nope) FROM title AS t, movie_keyword AS mk WHERE t.id = mk.movie_id";
  expect_bind_error
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
     t.id = mk.movie_id AND zz.a = 1";
  expect_bind_error
    (* OR across relations is unsupported *)
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
     t.id = mk.movie_id AND (t.production_year > 2000 OR mk.keyword_id = 1)";
  expect_bind_error
    (* BETWEEN on string column *)
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
     t.id = mk.movie_id AND t.title BETWEEN 1 AND 2";
  expect_bind_error
    (* LIKE on integer column *)
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
     t.id = mk.movie_id AND t.production_year LIKE 'x%'"

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse full query" `Quick test_parse_full_query;
    Alcotest.test_case "parse OR group" `Quick test_parse_or_group;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse/print roundtrip" `Quick test_parse_pp_roundtrip;
    Alcotest.test_case "bind simple" `Quick test_bind_simple;
    Alcotest.test_case "bind missing string sentinel" `Quick
      test_bind_missing_string_is_sentinel;
    Alcotest.test_case "bind string order cmp" `Quick test_bind_str_order_becomes_str_cmp;
    Alcotest.test_case "bind errors" `Quick test_bind_errors;
  ]
