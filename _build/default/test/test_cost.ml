(* Tests for the cost models: composition rules, the Cmm formulas from
   the paper, and relative behaviour of the three models. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let env_of graph db card = { Cost.Cost_model.graph; db; card }

let fixture () =
  let prng = Util.Prng.create 31 in
  let db = Support.micro_db prng ~tables:3 ~rows:50 in
  let g = Support.micro_query prng db ~relations:3 ~extra_edges:0 in
  (db, g)

let test_by_name () =
  Alcotest.(check bool) "postgres" true (Cost.Cost_model.by_name "PostgreSQL" <> None);
  Alcotest.(check bool) "tuned" true (Cost.Cost_model.by_name "tuned" <> None);
  Alcotest.(check bool) "cmm" true (Cost.Cost_model.by_name "Cmm" <> None);
  Alcotest.(check bool) "unknown" true (Cost.Cost_model.by_name "nope" = None)

let test_cmm_scan () =
  let db, g = fixture () in
  let env = env_of g db (fun _ -> 10.0) in
  (* tau * |R|: micro tables have 50 rows. *)
  Alcotest.(check (Alcotest.float 1e-9)) "tau * rows"
    (Cost.Cost_model.cmm_tau *. 50.0)
    (Cost.Cost_model.cmm.Cost.Cost_model.scan_cost env 0)

let test_cmm_hash_join () =
  let db, g = fixture () in
  let card s = if Bitset.cardinal s = 1 then 50.0 else 123.0 in
  let env = env_of g db card in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let cost =
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Hash_join ~outer ~inner
      ~outer_cost:10.0 ~inner_cost:20.0
  in
  Alcotest.(check (Alcotest.float 1e-9)) "|T| + C1 + C2" (123.0 +. 10.0 +. 20.0) cost

let test_cmm_merge_join () =
  let db, g = fixture () in
  let card s = if Bitset.cardinal s = 1 then 64.0 else 100.0 in
  let env = env_of g db card in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let cost =
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Merge_join ~outer
      ~inner ~outer_cost:0.0 ~inner_cost:0.0
  in
  (* 2 * (64 log2 64) + 64 + 64 + 100 = 768 + 228 *)
  Alcotest.(check (Alcotest.float 1e-6)) "sorts + merge + output"
    ((2.0 *. 64.0 *. 6.0) +. 64.0 +. 64.0 +. 100.0)
    cost;
  (* With equal cards, hashing must look cheaper than sorting. *)
  let hash =
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Hash_join ~outer
      ~inner ~outer_cost:0.0 ~inner_cost:0.0
  in
  Alcotest.(check bool) "hash cheaper" true (hash < cost)

let test_cmm_nl_join () =
  let db, g = fixture () in
  let card s = if Bitset.cardinal s = 1 then 50.0 else 100.0 in
  let env = env_of g db card in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let cost =
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Nl_join ~outer ~inner
      ~outer_cost:0.0 ~inner_cost:0.0
  in
  Alcotest.(check (Alcotest.float 1e-9)) "|T1||T2| + |T|" ((50.0 *. 50.0) +. 100.0) cost

let test_cmm_inl_join () =
  let db, g = fixture () in
  (* Unfiltered inner: selectivity 1, so lookups = max(out, |T1|). *)
  let card s = if Bitset.cardinal s = 1 then 50.0 else 80.0 in
  let env = env_of g db card in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let cost =
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Index_nl_join ~outer
      ~inner ~outer_cost:7.0 ~inner_cost:999.0
  in
  (* Inner cost is replaced by lookups: 7 + lambda * max(80, 50). *)
  Alcotest.(check (Alcotest.float 1e-9)) "INL formula"
    (7.0 +. (Cost.Cost_model.cmm_lambda *. 80.0))
    cost

let test_plan_cost_composition () =
  let db, g = fixture () in
  let env = env_of g db (fun _ -> 10.0) in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let join = Plan.join Plan.Hash_join ~outer ~inner in
  let model = Cost.Cost_model.cmm in
  let manual =
    model.Cost.Cost_model.join_cost env Plan.Hash_join ~outer ~inner
      ~outer_cost:(model.Cost.Cost_model.scan_cost env e.QG.left)
      ~inner_cost:(model.Cost.Cost_model.scan_cost env e.QG.right)
  in
  Alcotest.(check (Alcotest.float 1e-9)) "plan_cost = composed"
    manual
    (Cost.Cost_model.plan_cost model env join)

let test_joining_costs_more_than_children () =
  let db, g = fixture () in
  let env = env_of g db (fun _ -> 25.0) in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let join = Plan.join Plan.Hash_join ~outer ~inner in
  List.iter
    (fun model ->
      let child_costs =
        Cost.Cost_model.plan_cost model env outer
        +. Cost.Cost_model.plan_cost model env inner
      in
      Alcotest.(check bool)
        (model.Cost.Cost_model.name ^ " join > children")
        true
        (Cost.Cost_model.plan_cost model env join > child_costs))
    [ Cost.Cost_model.postgres; Cost.Cost_model.tuned; Cost.Cost_model.cmm ]

let test_tuned_weights_cpu_higher () =
  let db, g = fixture () in
  let env = env_of g db (fun _ -> 100.0) in
  (* Same scan: tuned multiplies CPU weights by 50, so the scan gets more
     expensive while page costs stay put. *)
  let standard = Cost.Cost_model.postgres.Cost.Cost_model.scan_cost env 0 in
  let tuned = Cost.Cost_model.tuned.Cost.Cost_model.scan_cost env 0 in
  Alcotest.(check bool) "tuned scan > standard scan" true (tuned > standard)

let test_costs_monotone_in_cardinality () =
  let db, g = fixture () in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let cost out_card =
    let card s = if Bitset.cardinal s = 1 then 50.0 else out_card in
    let env = env_of g db card in
    Cost.Cost_model.cmm.Cost.Cost_model.join_cost env Plan.Hash_join ~outer ~inner
      ~outer_cost:0.0 ~inner_cost:0.0
  in
  Alcotest.(check bool) "bigger output costs more" true (cost 1e6 > cost 10.0)

let suite =
  [
    Alcotest.test_case "by_name" `Quick test_by_name;
    Alcotest.test_case "cmm scan" `Quick test_cmm_scan;
    Alcotest.test_case "cmm hash join" `Quick test_cmm_hash_join;
    Alcotest.test_case "cmm merge join" `Quick test_cmm_merge_join;
    Alcotest.test_case "cmm NL join" `Quick test_cmm_nl_join;
    Alcotest.test_case "cmm INL join" `Quick test_cmm_inl_join;
    Alcotest.test_case "plan cost composition" `Quick test_plan_cost_composition;
    Alcotest.test_case "join > children" `Quick test_joining_costs_more_than_children;
    Alcotest.test_case "tuned CPU weights" `Quick test_tuned_weights_cpu_higher;
    Alcotest.test_case "monotone in cardinality" `Quick test_costs_monotone_in_cardinality;
  ]
