(* Tests for the storage library: dictionaries, columns, tables, hash
   indexes, and the catalog with its physical-design switching. *)

let check = Alcotest.check

(* --- Dict --------------------------------------------------------------- *)

let test_dict_roundtrip () =
  let d = Storage.Dict.create () in
  let a = Storage.Dict.intern d "alpha" in
  let b = Storage.Dict.intern d "beta" in
  let a' = Storage.Dict.intern d "alpha" in
  check Alcotest.int "stable code" a a';
  Alcotest.(check bool) "codes differ" true (a <> b);
  check Alcotest.string "decode" "beta" (Storage.Dict.get d b);
  check Alcotest.int "size" 2 (Storage.Dict.size d);
  check Alcotest.(option int) "find" (Some a) (Storage.Dict.find_opt d "alpha");
  check Alcotest.(option int) "find missing" None (Storage.Dict.find_opt d "gamma")

let test_dict_get_invalid () =
  let d = Storage.Dict.create () in
  Alcotest.check_raises "unknown code" (Invalid_argument "Dict.get: unknown code")
    (fun () -> ignore (Storage.Dict.get d 3))

let test_dict_matching_codes () =
  let d = Storage.Dict.create () in
  List.iter (fun s -> ignore (Storage.Dict.intern d s)) [ "cat"; "car"; "dog" ];
  let bitmap = Storage.Dict.matching_codes d (fun s -> s.[0] = 'c') in
  check Alcotest.(array bool) "c-prefixed" [| true; true; false |] bitmap

let test_dict_growth () =
  let d = Storage.Dict.create () in
  for i = 0 to 999 do
    ignore (Storage.Dict.intern d (string_of_int i))
  done;
  check Alcotest.int "1000 distinct" 1000 (Storage.Dict.size d);
  check Alcotest.string "decode mid" "517" (Storage.Dict.get d 517)

(* --- Column -------------------------------------------------------------- *)

let test_column_ints () =
  let c = Storage.Column.of_ints ~name:"x" [| Some 5; None; Some 7 |] in
  check Alcotest.int "length" 3 (Storage.Column.length c);
  Alcotest.(check bool) "null" true (Storage.Column.is_null c 1);
  (match Storage.Column.value c 0 with
  | Storage.Value.Int 5 -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v));
  (match Storage.Column.value c 1 with
  | Storage.Value.Null -> ()
  | v -> Alcotest.failf "expected NULL, got %s" (Storage.Value.to_string v));
  check Alcotest.int "distinct" 2 (Storage.Column.distinct_count c)

let test_column_strings () =
  let c = Storage.Column.of_strings ~name:"s" [| Some "a"; Some "b"; Some "a"; None |] in
  check Alcotest.int "distinct" 2 (Storage.Column.distinct_count c);
  (match Storage.Column.value c 2 with
  | Storage.Value.Str "a" -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v));
  check Alcotest.(option int) "encode present"
    (Storage.Column.encode c (Storage.Value.Str "b"))
    (Storage.Column.encode c (Storage.Value.Str "b"));
  check Alcotest.(option int) "encode absent" None
    (Storage.Column.encode c (Storage.Value.Str "zzz"));
  check
    Alcotest.(option int)
    "encode null" (Some Storage.Value.null_code)
    (Storage.Column.encode c Storage.Value.Null)

let test_column_encode_mismatch () =
  let c = Storage.Column.of_ints ~name:"x" [| Some 1 |] in
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Column.encode: type mismatch on column x") (fun () ->
      ignore (Storage.Column.encode c (Storage.Value.Str "a")))

(* --- Table ---------------------------------------------------------------- *)

let mk_table () =
  Storage.Table.create ~name:"demo" ~pk:"id" ~fks:[ "other_id" ]
    [|
      Storage.Column.of_ints ~name:"id" [| Some 1; Some 2; Some 3 |];
      Storage.Column.of_ints ~name:"other_id" [| Some 9; None; Some 9 |];
      Storage.Column.of_strings ~name:"label" [| Some "x"; Some "y"; Some "x" |];
    |]

let test_table_basics () =
  let t = mk_table () in
  check Alcotest.string "name" "demo" (Storage.Table.name t);
  check Alcotest.int "rows" 3 (Storage.Table.row_count t);
  check Alcotest.int "cols" 3 (Storage.Table.column_count t);
  check Alcotest.int "col idx" 1 (Storage.Table.column_index t "other_id");
  check Alcotest.(option int) "pk" (Some 0) (Storage.Table.pk t);
  check Alcotest.(list int) "fks" [ 1 ] (Storage.Table.fks t)

let test_table_validations () =
  let col n = Storage.Column.of_ints ~name:n [| Some 1 |] in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table.create t: column b has 2 rows, expected 1")
    (fun () ->
      ignore
        (Storage.Table.create ~name:"t"
           [| col "a"; Storage.Column.of_ints ~name:"b" [| Some 1; Some 2 |] |]));
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Table.create t: duplicate column a") (fun () ->
      ignore (Storage.Table.create ~name:"t" [| col "a"; col "a" |]));
  Alcotest.check_raises "bad pk"
    (Invalid_argument "Table.create t: pk column nope not found") (fun () ->
      ignore (Storage.Table.create ~name:"t" ~pk:"nope" [| col "a" |]));
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Table.column_index: table t has no column zz") (fun () ->
      ignore (Storage.Table.column_index (Storage.Table.create ~name:"t" [| col "a" |]) "zz"))

(* --- Index ------------------------------------------------------------------ *)

let test_index_lookup () =
  let t = mk_table () in
  let idx = Storage.Index.build t ~col:1 in
  check Alcotest.(array int) "two matches" [| 0; 2 |]
    (let a = Array.copy (Storage.Index.lookup idx 9) in
     Array.sort compare a;
     a);
  check Alcotest.(array int) "no match" [||] (Storage.Index.lookup idx 5);
  check Alcotest.int "count" 2 (Storage.Index.count idx 9);
  check Alcotest.int "distinct keys (nulls excluded)" 1 (Storage.Index.distinct_keys idx)

let index_matches_scan =
  Support.qcheck_case ~name:"index lookup equals full scan" QCheck.small_int
    (fun seed ->
      let prng = Util.Prng.create seed in
      let data =
        Array.init 200 (fun _ ->
            if Util.Prng.chance prng 0.1 then None
            else Some (Util.Prng.int prng 20))
      in
      let t =
        Storage.Table.create ~name:"q"
          [| Storage.Column.of_ints ~name:"k" data |]
      in
      let idx = Storage.Index.build t ~col:0 in
      List.for_all
        (fun key ->
          let via_index = List.sort compare (Array.to_list (Storage.Index.lookup idx key)) in
          let via_scan =
            Array.to_list data
            |> List.mapi (fun i v -> (i, v))
            |> List.filter_map (fun (i, v) -> if v = Some key then Some i else None)
          in
          via_index = via_scan)
        [ 0; 1; 5; 19 ])

let test_index_average_fanout () =
  let t =
    Storage.Table.create ~name:"f"
      [| Storage.Column.of_ints ~name:"k" [| Some 1; Some 1; Some 2; None |] |]
  in
  let idx = Storage.Index.build t ~col:0 in
  Alcotest.check (Alcotest.float 1e-9) "fanout" 1.5 (Storage.Index.average_fanout idx)

(* --- Database ------------------------------------------------------------------ *)

let test_database_catalog () =
  let db = Storage.Database.create () in
  let t = mk_table () in
  Storage.Database.add_table db t;
  check Alcotest.string "find" "demo"
    (Storage.Table.name (Storage.Database.find_table db "demo"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Database.add_table: duplicate table demo") (fun () ->
      Storage.Database.add_table db t);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Database.find_table: unknown table nope") (fun () ->
      ignore (Storage.Database.find_table db "nope"));
  check Alcotest.(list string) "names" [ "demo" ] (Storage.Database.table_names db)

let test_database_index_config () =
  let db = Storage.Database.create () in
  Storage.Database.add_table db (mk_table ());
  let has col =
    Storage.Database.index db ~table:"demo" ~col <> None
  in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  Alcotest.(check bool) "none: no pk" false (has 0);
  Storage.Database.set_index_config db Storage.Database.Pk_only;
  Alcotest.(check bool) "pk: pk yes" true (has 0);
  Alcotest.(check bool) "pk: fk no" false (has 1);
  Storage.Database.set_index_config db Storage.Database.Pk_fk;
  Alcotest.(check bool) "pkfk: fk yes" true (has 1);
  (* force_index ignores configuration *)
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  ignore (Storage.Database.force_index db ~table:"demo" ~col:2)

let dict_intern_roundtrip =
  Support.qcheck_case ~name:"dict intern/get roundtrip"
    QCheck.(small_list (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun strings ->
      let d = Storage.Dict.create () in
      let codes = List.map (Storage.Dict.intern d) strings in
      List.for_all2 (fun s c -> Storage.Dict.get d c = s) strings codes
      && Storage.Dict.size d = List.length (List.sort_uniq compare strings))

let column_value_roundtrip =
  Support.qcheck_case ~name:"column stores and decodes values"
    QCheck.(small_list (option small_int))
    (fun cells ->
      let cells = Array.of_list cells in
      if Array.length cells = 0 then true
      else begin
        let c = Storage.Column.of_ints ~name:"x" cells in
        Array.for_all
          (fun i ->
            match (cells.(i), Storage.Column.value c i) with
            | None, Storage.Value.Null -> true
            | Some v, Storage.Value.Int w -> v = w
            | _ -> false)
          (Array.init (Array.length cells) (fun i -> i))
      end)

let suite =
  [
    Alcotest.test_case "dict roundtrip" `Quick test_dict_roundtrip;
    dict_intern_roundtrip;
    column_value_roundtrip;
    Alcotest.test_case "dict invalid code" `Quick test_dict_get_invalid;
    Alcotest.test_case "dict matching codes" `Quick test_dict_matching_codes;
    Alcotest.test_case "dict growth" `Quick test_dict_growth;
    Alcotest.test_case "column ints" `Quick test_column_ints;
    Alcotest.test_case "column strings" `Quick test_column_strings;
    Alcotest.test_case "column encode mismatch" `Quick test_column_encode_mismatch;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table validations" `Quick test_table_validations;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    index_matches_scan;
    Alcotest.test_case "index fanout" `Quick test_index_average_fanout;
    Alcotest.test_case "database catalog" `Quick test_database_catalog;
    Alcotest.test_case "database index config" `Quick test_database_index_config;
  ]
