(* Tests for the workload: the JOB reproduction's structural guarantees
   (113 queries, 33 families, 3-16 joins) and that every query binds and
   parses against the generated schema. *)

let test_counts () =
  Alcotest.(check int) "113 queries" 113 Workload.Job.query_count;
  Alcotest.(check int) "33 families" 33 Workload.Job.family_count;
  Alcotest.(check int) "list matches count" 113 (List.length Workload.Job.all)

let test_names_unique () =
  let names = List.map (fun q -> q.Workload.Job.name) Workload.Job.all in
  Alcotest.(check int) "unique" 113 (List.length (List.sort_uniq compare names))

let test_find () =
  let q = Workload.Job.find "13d" in
  Alcotest.(check int) "family" 13 q.Workload.Job.family;
  Alcotest.(check bool) "us predicate" true
    (let sql = q.Workload.Job.sql in
     let needle = "'[us]'" in
     let n = String.length needle in
     let found = ref false in
     String.iteri
       (fun i _ ->
         if i + n <= String.length sql && String.sub sql i n = needle then
           found := true)
       sql;
     !found);
  (try
     ignore (Workload.Job.find "99z");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_families_have_2_to_6_variants () =
  List.iter
    (fun (family, queries) ->
      let n = List.length queries in
      if n < 2 || n > 6 then Alcotest.failf "family %d has %d variants" family n)
    Workload.Job.families

let test_variants_differ_only_in_selections () =
  (* All variants of a family parse to the same FROM clause and the same
     join predicates. *)
  List.iter
    (fun (_, queries) ->
      let parsed =
        List.map (fun q -> Sqlfront.Parser.parse q.Workload.Job.sql) queries
      in
      match parsed with
      | [] -> ()
      | first :: rest ->
          let joins_of s =
            List.filter_map
              (function
                | Sqlfront.Ast.W_join (a, b) ->
                    Some (a.Sqlfront.Ast.alias, a.Sqlfront.Ast.column,
                          b.Sqlfront.Ast.alias, b.Sqlfront.Ast.column)
                | Sqlfront.Ast.W_atom _ -> None)
              s.Sqlfront.Ast.where
          in
          List.iter
            (fun other ->
              Alcotest.(check bool) "same FROM" true
                (first.Sqlfront.Ast.from = other.Sqlfront.Ast.from);
              Alcotest.(check bool) "same joins" true
                (joins_of first = joins_of other))
            rest)
    Workload.Job.families

let test_all_bind_with_join_range () =
  let db = Lazy.force Support.imdb in
  let joins =
    List.map
      (fun q ->
        let b = Sqlfront.Binder.bind_sql db ~name:q.Workload.Job.name q.Workload.Job.sql in
        Query.Query_graph.n_edges b.Sqlfront.Binder.graph)
      Workload.Job.all
  in
  let mn = List.fold_left min max_int joins and mx = List.fold_left max 0 joins in
  Alcotest.(check int) "min joins" 3 mn;
  Alcotest.(check int) "max joins" 16 mx;
  let avg = float_of_int (List.fold_left ( + ) 0 joins) /. 113.0 in
  Alcotest.(check bool)
    (Printf.sprintf "average %.1f in [7,10] (paper: 8)" avg)
    true
    (avg >= 7.0 && avg <= 10.0)

let test_relation_count_capped () =
  let db = Lazy.force Support.imdb in
  List.iter
    (fun q ->
      let b = Sqlfront.Binder.bind_sql db ~name:q.Workload.Job.name q.Workload.Job.sql in
      let n = Query.Query_graph.n_relations b.Sqlfront.Binder.graph in
      if n < 4 || n > 12 then
        Alcotest.failf "query %s has %d relations" q.Workload.Job.name n)
    Workload.Job.all

let test_queries_use_base_selections () =
  (* Every query must constrain at least one base table (JOB variants are
     defined by their selections). *)
  let db = Lazy.force Support.imdb in
  List.iter
    (fun q ->
      let b = Sqlfront.Binder.bind_sql db ~name:q.Workload.Job.name q.Workload.Job.sql in
      let with_preds =
        Array.to_list (Query.Query_graph.relations b.Sqlfront.Binder.graph)
        |> List.filter (fun r -> r.Query.Query_graph.preds <> [])
      in
      if with_preds = [] then Alcotest.failf "query %s has no selections" q.Workload.Job.name)
    Workload.Job.all

let test_tpch_queries_bind () =
  let db = Lazy.force Support.tpch in
  Alcotest.(check int) "3 queries" 3 (List.length Workload.Tpch_queries.all);
  List.iter
    (fun q ->
      ignore
        (Sqlfront.Binder.bind_sql db ~name:q.Workload.Tpch_queries.name
           q.Workload.Tpch_queries.sql))
    Workload.Tpch_queries.all;
  ignore (Workload.Tpch_queries.find "TPC-H 5");
  try
    ignore (Workload.Tpch_queries.find "TPC-H 99");
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_figure_queries_exist () =
  (* Queries referenced by name in the paper's figures. *)
  List.iter
    (fun name -> ignore (Workload.Job.find name))
    [ "6a"; "13a"; "13d"; "16d"; "17b"; "25c" ]

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "variants per family" `Quick test_families_have_2_to_6_variants;
    Alcotest.test_case "variants differ in selections only" `Quick
      test_variants_differ_only_in_selections;
    Alcotest.test_case "all bind, 3-16 joins" `Quick test_all_bind_with_join_range;
    Alcotest.test_case "relation cap" `Quick test_relation_count_capped;
    Alcotest.test_case "selections present" `Quick test_queries_use_base_selections;
    Alcotest.test_case "tpch queries bind" `Quick test_tpch_queries_bind;
    Alcotest.test_case "figure queries exist" `Quick test_figure_queries_exist;
  ]
