(* Tests for the physical plan algebra: construction invariants, shape
   classification, validation. *)

module Bitset = Util.Bitset

let s0 = Plan.scan 0
let s1 = Plan.scan 1
let s2 = Plan.scan 2
let s3 = Plan.scan 3

let test_scan_and_join_sets () =
  Alcotest.(check int) "scan set" (Bitset.singleton 2) s2.Plan.set;
  let j = Plan.join Plan.Hash_join ~outer:s0 ~inner:s1 in
  Alcotest.(check int) "join set" (Bitset.of_list [ 0; 1 ]) j.Plan.set;
  Alcotest.(check int) "join count" 1 (Plan.join_count j)

let test_join_invariants () =
  let j = Plan.join Plan.Hash_join ~outer:s0 ~inner:s1 in
  Alcotest.check_raises "overlap" (Invalid_argument "Plan.join: overlapping children")
    (fun () -> ignore (Plan.join Plan.Hash_join ~outer:j ~inner:s1));
  Alcotest.check_raises "INL inner must be base"
    (Invalid_argument "Plan.join: index-NL inner must be a base relation") (fun () ->
      ignore (Plan.join Plan.Index_nl_join ~outer:s2 ~inner:j))

let test_shapes () =
  (* Left-deep: ((0 ⋈ 1) ⋈ 2) ⋈ 3 *)
  let left =
    Plan.join Plan.Hash_join
      ~outer:(Plan.join Plan.Hash_join ~outer:(Plan.join Plan.Hash_join ~outer:s0 ~inner:s1) ~inner:s2)
      ~inner:s3
  in
  Alcotest.(check string) "left-deep" "left-deep" (Plan.shape_to_string (Plan.shape left));
  (* Right-deep: 0 ⋈ (1 ⋈ (2 ⋈ 3)) *)
  let right =
    Plan.join Plan.Hash_join ~outer:s0
      ~inner:(Plan.join Plan.Hash_join ~outer:s1 ~inner:(Plan.join Plan.Hash_join ~outer:s2 ~inner:s3))
  in
  Alcotest.(check string) "right-deep" "right-deep" (Plan.shape_to_string (Plan.shape right));
  (* Zig-zag: 3 ⋈ ((0 ⋈ 1) ⋈ 2) is right-then-left. *)
  let zig =
    Plan.join Plan.Hash_join ~outer:s3
      ~inner:(Plan.join Plan.Hash_join ~outer:(Plan.join Plan.Hash_join ~outer:s0 ~inner:s1) ~inner:s2)
  in
  (* outer base at top, inner a left-deep subtree: at least one base per
     join, but neither pure class. *)
  Alcotest.(check string) "zig-zag" "zig-zag" (Plan.shape_to_string (Plan.shape zig));
  (* Bushy: (0 ⋈ 1) ⋈ (2 ⋈ 3) *)
  let bushy =
    Plan.join Plan.Hash_join
      ~outer:(Plan.join Plan.Hash_join ~outer:s0 ~inner:s1)
      ~inner:(Plan.join Plan.Hash_join ~outer:s2 ~inner:s3)
  in
  Alcotest.(check string) "bushy" "bushy" (Plan.shape_to_string (Plan.shape bushy));
  (* A single join is reported left-deep. *)
  Alcotest.(check string) "pair" "left-deep"
    (Plan.shape_to_string (Plan.shape (Plan.join Plan.Hash_join ~outer:s0 ~inner:s1)))

let test_subsets_on_path () =
  let j =
    Plan.join Plan.Hash_join
      ~outer:(Plan.join Plan.Hash_join ~outer:s0 ~inner:s1)
      ~inner:s2
  in
  Alcotest.(check int) "5 nodes" 5 (List.length (Plan.subsets_on_path j))

let micro_graph () =
  let prng = Util.Prng.create 23 in
  let db = Support.micro_db prng ~tables:3 ~rows:10 in
  Support.micro_query prng db ~relations:3 ~extra_edges:0

let test_validate () =
  let g = micro_graph () in
  (* A valid plan: join along the spanning-tree edges. *)
  let edges = Query.Query_graph.edges g in
  let order =
    (* chain 0-1-2 or star; just join in an order following edges *)
    match edges with
    | [ e1; e2 ] ->
        let p1 =
          Plan.join Plan.Hash_join ~outer:(Plan.scan e1.Query.Query_graph.left)
            ~inner:(Plan.scan e1.Query.Query_graph.right)
        in
        let third =
          List.find
            (fun r -> not (Bitset.mem r p1.Plan.set))
            [ e2.Query.Query_graph.left; e2.Query.Query_graph.right ]
        in
        Plan.join Plan.Hash_join ~outer:p1 ~inner:(Plan.scan third)
    | _ -> Alcotest.fail "expected 2 edges"
  in
  (match Plan.validate g order with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid plan rejected: %s" e);
  (* Incomplete plan. *)
  (match Plan.validate g (Plan.scan 0) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "incomplete plan accepted")

let test_pp_smoke () =
  let g = micro_graph () in
  let e = List.hd (Query.Query_graph.edges g) in
  let p =
    Plan.join Plan.Hash_join ~outer:(Plan.scan e.Query.Query_graph.left)
      ~inner:(Plan.scan e.Query.Query_graph.right)
  in
  let s = Format.asprintf "%a" (Plan.pp g) p in
  Alcotest.(check bool) "mentions hash join" true
    (String.length s > 0
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ ->
        if i + 9 <= String.length s && String.sub s i 9 = "hash join" then
          re_found := true)
      s;
    !re_found)

let suite =
  [
    Alcotest.test_case "scan/join sets" `Quick test_scan_and_join_sets;
    Alcotest.test_case "join invariants" `Quick test_join_invariants;
    Alcotest.test_case "shape classification" `Quick test_shapes;
    Alcotest.test_case "subsets on path" `Quick test_subsets_on_path;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "pretty printing" `Quick test_pp_smoke;
  ]
