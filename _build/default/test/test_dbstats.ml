(* Tests for the statistics layer: samples, histograms, column stats,
   ANALYZE. *)

let checkf = Alcotest.check (Alcotest.float 1e-9)

(* --- Sample ---------------------------------------------------------------- *)

let test_sample_sizes () =
  let db = Lazy.force Support.imdb in
  let t = Storage.Database.find_table db "title" in
  let prng = Util.Prng.create 1 in
  let s = Dbstats.Sample.take prng t ~size:50 in
  Alcotest.(check int) "requested size" 50 (Dbstats.Sample.size s);
  let all = Dbstats.Sample.take prng t ~size:10_000_000 in
  Alcotest.(check int) "whole table" (Storage.Table.row_count t)
    (Dbstats.Sample.size all)

let test_sample_full_selectivity_exact () =
  let db = Lazy.force Support.imdb in
  let t = Storage.Database.find_table db "title" in
  let prng = Util.Prng.create 1 in
  let full = Dbstats.Sample.take prng t ~size:max_int in
  let col = Storage.Table.column_index t "production_year" in
  let pred =
    Query.Predicate.compile t [ Query.Predicate.Cmp { col; op = Query.Predicate.Gt; code = 2000 } ]
  in
  let truth = ref 0 in
  for row = 0 to Storage.Table.row_count t - 1 do
    if pred row then incr truth
  done;
  checkf "exact on full sample"
    (float_of_int !truth /. float_of_int (Storage.Table.row_count t))
    (Dbstats.Sample.selectivity full t pred)

(* --- Histogram ---------------------------------------------------------------- *)

let test_histogram_empty () =
  Alcotest.(check bool) "none" true (Dbstats.Histogram.build ~buckets:10 [||] = None)

let test_histogram_bounds_sorted () =
  let values = Array.init 1000 (fun i -> (i * 37) mod 500) in
  match Dbstats.Histogram.build ~buckets:20 values with
  | None -> Alcotest.fail "expected a histogram"
  | Some h ->
      let b = Dbstats.Histogram.bounds h in
      for i = 0 to Array.length b - 2 do
        Alcotest.(check bool) "non-decreasing" true (b.(i) <= b.(i + 1))
      done;
      checkf "full range" 1.0 (Dbstats.Histogram.range_selectivity h ())

let histogram_vs_brute_force =
  Support.qcheck_case ~name:"histogram range selectivity ~ exact fraction"
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, cutoff) ->
      let prng = Util.Prng.create seed in
      let values = Array.init 2000 (fun _ -> Util.Prng.int prng 100) in
      match Dbstats.Histogram.build ~buckets:50 values with
      | None -> false
      | Some h ->
          let est = Dbstats.Histogram.cmp_selectivity h Query.Predicate.Le cutoff in
          let exact =
            float_of_int (Array.fold_left (fun a v -> if v <= cutoff then a + 1 else a) 0 values)
            /. 2000.0
          in
          Float.abs (est -. exact) < 0.08)

let test_histogram_cmp_consistency () =
  let values = Array.init 500 (fun i -> i) in
  let h = Option.get (Dbstats.Histogram.build ~buckets:25 values) in
  let le = Dbstats.Histogram.cmp_selectivity h Query.Predicate.Le 250 in
  let gt = Dbstats.Histogram.cmp_selectivity h Query.Predicate.Gt 250 in
  Alcotest.(check (Alcotest.float 0.02)) "le + gt = 1" 1.0 (le +. gt)

(* --- Column_stats ----------------------------------------------------------------- *)

let stats_of table col =
  let prng = Util.Prng.create 3 in
  let t = Storage.Database.find_table (Lazy.force Support.imdb_mid) table in
  let n = Storage.Table.row_count t in
  let sample_rows = Array.init n (fun i -> i) in
  ignore prng;
  Dbstats.Column_stats.build (Util.Prng.create 3) t
    ~col:(Storage.Table.column_index t col)
    ~sample_rows ()

let test_column_stats_null_fraction () =
  let s = stats_of "title" "episode_of_id" in
  (* Non-episodes have NULL episode_of_id: roughly 85%. *)
  Alcotest.(check bool)
    (Printf.sprintf "null fraction %.2f in range" s.Dbstats.Column_stats.null_fraction)
    true
    (s.Dbstats.Column_stats.null_fraction > 0.6
    && s.Dbstats.Column_stats.null_fraction < 0.95)

let test_column_stats_mcv () =
  let s = stats_of "company_name" "country_code" in
  (* '[us]' is the dominant value; the MCV list must carry real mass. *)
  Alcotest.(check bool) "has mcvs" true (Array.length s.Dbstats.Column_stats.mcv > 0);
  Alcotest.(check bool) "mass" true (Dbstats.Column_stats.mcv_fraction_total s > 0.2);
  let top_code, top_f = s.Dbstats.Column_stats.mcv.(0) in
  Alcotest.(check bool) "descending" true
    (Array.for_all (fun (_, f) -> f <= top_f) s.Dbstats.Column_stats.mcv);
  Alcotest.(check (option (Alcotest.float 1.0))) "find top" (Some top_f)
    (Dbstats.Column_stats.mcv_find s top_code)

let test_column_stats_distinct_exact () =
  let s = stats_of "kind_type" "kind" in
  checkf "7 kinds" 7.0 s.Dbstats.Column_stats.distinct_exact;
  (* Full-table sample: the sampled estimate equals the exact count. *)
  checkf "sampled = exact on full scan" 7.0 s.Dbstats.Column_stats.distinct_sampled

let test_column_stats_ranks () =
  let s = stats_of "company_name" "country_code" in
  match s.Dbstats.Column_stats.rank_of_code with
  | None -> Alcotest.fail "string column must have ranks"
  | Some ranks ->
      let sorted = Array.copy ranks in
      Array.sort compare sorted;
      Array.iteri (fun i v -> Alcotest.(check int) "permutation" i v) sorted

let test_rank_of_string_boundary () =
  let t = Storage.Database.find_table (Lazy.force Support.imdb_mid) "movie_info_idx" in
  let col = Storage.Table.column_index t "info" in
  let s = stats_of "movie_info_idx" "info" in
  let column = Storage.Table.column t col in
  let r_low = Dbstats.Column_stats.rank_of_string s column "0.0" in
  let r_high = Dbstats.Column_stats.rank_of_string s column "zzzz" in
  Alcotest.(check bool) "low below high" true (r_low < r_high)

(* --- Analyze ------------------------------------------------------------------------- *)

let test_analyze_caching () =
  let db = Lazy.force Support.imdb in
  let a = Dbstats.Analyze.create db in
  let s1 = Dbstats.Analyze.table a "title" in
  let s2 = Dbstats.Analyze.table a "title" in
  Alcotest.(check bool) "same object" true (s1 == s2);
  Alcotest.(check int) "row count" (Storage.Table.row_count s1.Dbstats.Analyze.table)
    s1.Dbstats.Analyze.row_count;
  Alcotest.(check int) "per-column stats"
    (Storage.Table.column_count s1.Dbstats.Analyze.table)
    (Array.length s1.Dbstats.Analyze.columns)

let test_analyze_column_access () =
  let db = Lazy.force Support.imdb in
  let a = Dbstats.Analyze.create db in
  let t = Storage.Database.find_table db "title" in
  let col = Storage.Table.column_index t "production_year" in
  let cs = Dbstats.Analyze.column a ~table:"title" ~col in
  Alcotest.(check bool) "has histogram" true (cs.Dbstats.Column_stats.histogram <> None)

let suite =
  [
    Alcotest.test_case "sample sizes" `Quick test_sample_sizes;
    Alcotest.test_case "sample selectivity exact" `Quick test_sample_full_selectivity_exact;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram bounds" `Quick test_histogram_bounds_sorted;
    histogram_vs_brute_force;
    Alcotest.test_case "histogram cmp consistency" `Quick test_histogram_cmp_consistency;
    Alcotest.test_case "stats null fraction" `Quick test_column_stats_null_fraction;
    Alcotest.test_case "stats mcv" `Quick test_column_stats_mcv;
    Alcotest.test_case "stats distinct" `Quick test_column_stats_distinct_exact;
    Alcotest.test_case "stats ranks" `Quick test_column_stats_ranks;
    Alcotest.test_case "rank of string" `Quick test_rank_of_string_boundary;
    Alcotest.test_case "analyze caching" `Quick test_analyze_caching;
    Alcotest.test_case "analyze column access" `Quick test_analyze_column_access;
  ]
