(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, then micro-benchmarks each experiment's kernel
   with Bechamel (one Test.make per table/figure).

   With -j N (default: the core count) every experiment runs twice, on
   two independently-created harnesses — once serial, once with N worker
   domains — reporting wall-clock for both and the speedup, and writing
   the machine-readable BENCH_parallel.json. Two harnesses keep the
   comparison honest: a second render on one harness would be served
   almost entirely from its plan and estimator caches.

     dune exec bench/main.exe                 -- everything, full scale
     dune exec bench/main.exe -- --scale 0.2  -- smaller database
     dune exec bench/main.exe -- -j 1         -- serial, no comparison
     dune exec bench/main.exe -- --only figure-3
     dune exec bench/main.exe -- --skip-micro *)

(* The experiment list is the catalog in lib/experiments — one source of
   truth shared with 'jobench experiment'. *)
let experiments =
  List.map
    (fun (e : Experiments.Catalog.entry) ->
      (e.Experiments.Catalog.id, e.Experiments.Catalog.render))
    Experiments.Catalog.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the computational kernel behind each
   table/figure, measured in isolation on one representative query.     *)

let micro_tests (h : Experiments.Harness.t) =
  let q = Experiments.Harness.find h "13d" in
  let truth = Experiments.Harness.truth q in
  let graph = q.Experiments.Harness.graph in
  let db = h.Experiments.Harness.db in
  let pg = Experiments.Harness.estimator h q "PostgreSQL" in
  let full = Query.Query_graph.full_set graph in
  let true_search =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph ~db
      ~card:(Cardest.True_card.card truth) ()
  in
  let sql = (Workload.Job.find "13d").Workload.Job.sql in
  let stage = Bechamel.Staged.stage in
  Storage.Database.set_index_config db Storage.Database.Pk_fk;
  let plan, _ = Planner.Dp.optimize true_search in
  [
    Bechamel.Test.make ~name:"table-1: base-table estimation (PostgreSQL, q13d)"
      (stage (fun () ->
           Array.iter
             (fun (r : Query.Query_graph.relation) ->
               ignore (pg.Cardest.Estimator.base r.Query.Query_graph.idx))
             (Query.Query_graph.relations graph)));
    Bechamel.Test.make ~name:"figure-3: full-query estimate (PostgreSQL, q13d)"
      (stage (fun () -> ignore (pg.Cardest.Estimator.subset full)));
    Bechamel.Test.make ~name:"figure-4: SQL parse+bind (q13d)"
      (stage (fun () -> ignore (Sqlfront.Binder.bind_sql db ~name:"13d" sql)));
    Bechamel.Test.make ~name:"figure-5: exact cardinalities (q13d, all subsets)"
      (stage (fun () -> ignore (Cardest.True_card.compute graph)));
    Bechamel.Test.make ~name:"table-4.1: execute optimal plan (robust engine, q13d)"
      (stage (fun () ->
           ignore
             (Exec.Executor.run ~db ~graph ~config:Exec.Engine_config.robust
                ~size_est:(Cardest.True_card.card truth) plan)));
    Bechamel.Test.make ~name:"figure-6: hash-join table build (64k inserts)"
      (stage (fun () ->
           let jt = Exec.Join_table.create ~estimated_rows:65536.0 ~resizable:true () in
           for i = 0 to 65535 do
             ignore (Exec.Join_table.insert jt ~hash:(Exec.Join_table.mix i) ~payload:i)
           done));
    Bechamel.Test.make ~name:"figure-7: index lookups (10k probes)"
      (stage
         (let idx =
            Storage.Database.force_index db ~table:"movie_companies"
              ~col:
                (Storage.Table.column_index
                   (Storage.Database.find_table db "movie_companies")
                   "movie_id")
          in
          fun () ->
            for key = 1 to 10_000 do
              ignore (Storage.Index.lookup idx key)
            done));
    Bechamel.Test.make ~name:"figure-8: plan cost evaluation (Cmm, q13d)"
      (stage (fun () ->
           let env =
             { Cost.Cost_model.graph; db; card = Cardest.True_card.card truth }
           in
           ignore (Cost.Cost_model.plan_cost Cost.Cost_model.cmm env plan)));
    Bechamel.Test.make ~name:"figure-9: one Quickpick sample (q13d)"
      (stage
         (let prng = Util.Prng.create 3 in
          fun () -> ignore (Planner.Quickpick.sample true_search prng)));
    Bechamel.Test.make ~name:"table-2: shape-restricted DP (left-deep, q13d)"
      (stage (fun () ->
           let s =
             Planner.Search.create ~shape:Planner.Search.Only_left_deep
               ~model:Cost.Cost_model.cmm ~graph ~db
               ~card:(Cardest.True_card.card truth) ()
           in
           ignore (Planner.Dp.optimize s)));
    Bechamel.Test.make ~name:"table-3: exhaustive DP (bushy, q13d)"
      (stage (fun () -> ignore (Planner.Dp.optimize true_search)));
  ]

let run_micro h =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  print_endline "=== micro-benchmarks (Bechamel, one kernel per table/figure) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> est
            | _ -> Float.nan
          in
          if ns > 1e6 then Printf.printf "%-58s %10.2f ms/run\n%!" name (ns /. 1e6)
          else if ns > 1e3 then
            Printf.printf "%-58s %10.2f us/run\n%!" name (ns /. 1e3)
          else Printf.printf "%-58s %10.0f ns/run\n%!" name ns)
        analyzed)
    (micro_tests h)

(* ------------------------------------------------------------------ *)
(* The wall-clock baseline: serial vs parallel, as JSON                 *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ~jobs ~scale ~seed rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"jobs\": %d,\n  \"scale\": %g,\n  \"seed\": %d,\n  \
     \"experiments\": [\n"
    jobs scale seed;
  List.iteri
    (fun i (id, serial_ms, parallel_ms) ->
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"serial_ms\": %.3f, \"parallel_ms\": %.3f, \
         \"speedup\": %.3f}%s\n"
        (json_escape id) serial_ms parallel_ms
        (serial_ms /. Float.max 1e-9 parallel_ms)
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let scale = ref 1.0 in
  let seed = ref 42 in
  let only = ref None in
  let skip_micro = ref false in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := Some v;
        parse rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %s" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !jobs < 1 then failwith "-j must be >= 1";
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Join Order Benchmark reproduction - regenerating all paper results\n\
     (scale %.2f, seed %d, %d queries, %d jobs)\n\n%!"
    !scale !seed Workload.Job.query_count !jobs;
  let h = Experiments.Harness.create ~seed:!seed ~scale:!scale () in
  Printf.printf "database: %d tables, %d rows\n\n%!"
    (List.length (Storage.Database.table_names h.Experiments.Harness.db))
    (Storage.Database.total_rows h.Experiments.Harness.db);
  let selected =
    match !only with
    | None -> experiments
    | Some id -> List.filter (fun (i, _) -> String.equal i id) experiments
  in
  (* The parallel twin: same seed and scale, its own caches. Each
     experiment renders on both at an identical cache state (both have
     rendered exactly the same prior experiments). *)
  let h_par =
    if !jobs > 1 then
      Some (Experiments.Harness.create ~seed:!seed ~scale:!scale ~jobs:!jobs ())
    else None
  in
  let timings = ref [] in
  List.iter
    (fun (id, render) ->
      let t1 = Unix.gettimeofday () in
      let output = render h in
      let serial_ms = (Unix.gettimeofday () -. t1) *. 1e3 in
      match h_par with
      | None ->
          Printf.printf "=== %s ===\n%s\n(%.1fs)\n\n%!" id output
            (serial_ms /. 1e3)
      | Some hp ->
          let t2 = Unix.gettimeofday () in
          let par_output = render hp in
          let parallel_ms = (Unix.gettimeofday () -. t2) *. 1e3 in
          if not (String.equal output par_output) then
            Printf.printf
              "WARNING: %s output differs between -j 1 and -j %d\n%!" id !jobs;
          timings := (id, serial_ms, parallel_ms) :: !timings;
          Printf.printf
            "=== %s ===\n%s\n(serial %.1fs, %d jobs %.1fs, speedup %.2fx)\n\n%!"
            id output (serial_ms /. 1e3) !jobs (parallel_ms /. 1e3)
            (serial_ms /. Float.max 1e-9 parallel_ms))
    selected;
  Printf.printf "--- %s\n\n%!" (Experiments.Harness.stats_summary h);
  (match h_par with
  | Some hp ->
      Experiments.Harness.shutdown hp;
      write_bench_json ~path:"BENCH_parallel.json" ~jobs:!jobs ~scale:!scale
        ~seed:!seed (List.rev !timings)
  | None -> ());
  if not !skip_micro then run_micro h;
  Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0)
