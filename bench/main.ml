(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, then micro-benchmarks each experiment's kernel
   with Bechamel (one Test.make per table/figure).

   With -j N (default: the core count) every experiment runs twice, on
   two independently-created harnesses — once serial, once with N worker
   domains — reporting wall-clock for both and the speedup, and writing
   the machine-readable BENCH_parallel.json. Two harnesses keep the
   comparison honest: a second render on one harness would be served
   almost entirely from its plan and estimator caches. --repeat N runs
   the whole comparison N times on fresh harness pairs and reports the
   per-experiment per-side median (still cold-cache times — the repeats
   only strip scheduler and GC-pacing noise).

     dune exec bench/main.exe                 -- everything, full scale
     dune exec bench/main.exe -- --scale 0.2  -- smaller database
     dune exec bench/main.exe -- -j 1         -- serial, no comparison
     dune exec bench/main.exe -- --only figure-3,table-2
     dune exec bench/main.exe -- --repeat 3   -- median over 3 cold runs
     dune exec bench/main.exe -- --skip-micro

   --scale-sweep S1,S2,... runs only the storage scale sweep: per
   scale it builds the database, reports per-encoding compressed sizes
   and query times, and writes BENCH_scale.json (see run_scale_sweep
   below).

   --morsel-sweep S1,S2,... runs only the intra-query scaling sweep:
   per scale it runs the five sweep queries at every --morsel-jobs
   worker count (default 1,2,4,8), enforces byte-identical results
   against the serial baseline (mismatch = exit 1), and writes the
   per-query scaling curves plus morsel-scheduler counters to
   BENCH_morsel.json. --exec-jobs N turns morsel execution on inside
   the regular experiment comparison (both twins get it).

   --obs-gate runs only the observability overhead gate: the golden
   113-query workload with tracing off and on (interleaved, best of
   three per arm), a byte-identity check between the arms, and a
   micro-measurement of the disabled instrumentation path, written to
   BENCH_obs.json. The gate fails (exit 1) if the arms diverge or the
   estimated disabled-path overhead exceeds 1% of the untraced wall
   time. *)

(* The experiment list is the catalog in lib/experiments — one source of
   truth shared with 'jobench experiment'. *)
let experiments =
  List.map
    (fun (e : Experiments.Catalog.entry) ->
      (e.Experiments.Catalog.id, e.Experiments.Catalog.render))
    Experiments.Catalog.all

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the computational kernel behind each
   table/figure, measured in isolation on one representative query.     *)

let micro_tests (h : Experiments.Harness.t) =
  let q = Experiments.Harness.find h "13d" in
  let truth = Experiments.Harness.truth q in
  let graph = q.Experiments.Harness.graph in
  let db = h.Experiments.Harness.db in
  let pg = Experiments.Harness.estimator h q "PostgreSQL" in
  let full = Query.Query_graph.full_set graph in
  let true_search =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph ~db
      ~card:(Cardest.True_card.card truth) ()
  in
  let sql = (Workload.Job.find "13d").Workload.Job.sql in
  let stage = Bechamel.Staged.stage in
  Storage.Database.set_index_config db Storage.Database.Pk_fk;
  let plan, _ = Planner.Dp.optimize true_search in
  [
    Bechamel.Test.make ~name:"table-1: base-table estimation (PostgreSQL, q13d)"
      (stage (fun () ->
           Array.iter
             (fun (r : Query.Query_graph.relation) ->
               ignore (pg.Cardest.Estimator.base r.Query.Query_graph.idx))
             (Query.Query_graph.relations graph)));
    Bechamel.Test.make ~name:"figure-3: full-query estimate (PostgreSQL, q13d)"
      (stage (fun () -> ignore (pg.Cardest.Estimator.subset full)));
    Bechamel.Test.make ~name:"figure-4: SQL parse+bind (q13d)"
      (stage (fun () -> ignore (Sqlfront.Binder.bind_sql db ~name:"13d" sql)));
    Bechamel.Test.make ~name:"figure-5: exact cardinalities (q13d, all subsets)"
      (stage (fun () -> ignore (Cardest.True_card.compute graph)));
    Bechamel.Test.make ~name:"table-4.1: execute optimal plan (robust engine, q13d)"
      (stage (fun () ->
           ignore
             (Exec.Executor.run ~db ~graph ~config:Exec.Engine_config.robust
                ~size_est:(Cardest.True_card.card truth) plan)));
    Bechamel.Test.make ~name:"figure-6: hash-join table build (64k inserts)"
      (stage (fun () ->
           let jt = Exec.Join_table.create ~estimated_rows:65536.0 ~resizable:true () in
           for i = 0 to 65535 do
             ignore (Exec.Join_table.insert jt ~hash:(Exec.Join_table.mix i) ~payload:i)
           done));
    Bechamel.Test.make ~name:"figure-7: index lookups (10k probes)"
      (stage
         (let idx =
            Storage.Database.force_index db ~table:"movie_companies"
              ~col:
                (Storage.Table.column_index
                   (Storage.Database.find_table db "movie_companies")
                   "movie_id")
          in
          fun () ->
            for key = 1 to 10_000 do
              ignore (Storage.Index.lookup idx key)
            done));
    Bechamel.Test.make ~name:"figure-8: plan cost evaluation (Cmm, q13d)"
      (stage (fun () ->
           let env =
             { Cost.Cost_model.graph; db; card = Cardest.True_card.card truth }
           in
           ignore (Cost.Cost_model.plan_cost Cost.Cost_model.cmm env plan)));
    Bechamel.Test.make ~name:"figure-9: one Quickpick sample (q13d)"
      (stage
         (let prng = Util.Prng.create 3 in
          fun () -> ignore (Planner.Quickpick.sample true_search prng)));
    Bechamel.Test.make ~name:"table-2: shape-restricted DP (left-deep, q13d)"
      (stage (fun () ->
           let s =
             Planner.Search.create ~shape:Planner.Search.Only_left_deep
               ~model:Cost.Cost_model.cmm ~graph ~db
               ~card:(Cardest.True_card.card truth) ()
           in
           ignore (Planner.Dp.optimize s)));
    Bechamel.Test.make ~name:"table-3: exhaustive DP (bushy, q13d)"
      (stage (fun () -> ignore (Planner.Dp.optimize true_search)));
  ]

let run_micro h =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  print_endline "=== micro-benchmarks (Bechamel, one kernel per table/figure) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> est
            | _ -> Float.nan
          in
          if ns > 1e6 then Printf.printf "%-58s %10.2f ms/run\n%!" name (ns /. 1e6)
          else if ns > 1e3 then
            Printf.printf "%-58s %10.2f us/run\n%!" name (ns /. 1e3)
          else Printf.printf "%-58s %10.0f ns/run\n%!" name ns)
        analyzed)
    (micro_tests h)

(* ------------------------------------------------------------------ *)
(* Kernel microbenchmarks: the two allocation-sensitive hot paths,
   before/after-visible. The executor kernel executes full plans with
   the scan predicate path toggled between the legacy row-at-a-time
   closures ([Exec.Executor.reference_scan]) and the vectorized
   selection vectors; the true-card kernel groups a fact table's rows
   with the legacy boxed representation (a polymorphic Hashtbl over
   fresh int-array keys, what True_card used before Group_table) versus
   Group_table's packed scratch keys. Both report wall clock and
   GC-allocated bytes per run, written to BENCH_exec.json.              *)

let time_alloc ~runs f =
  f (); (* warm-up: populate caches and size the scratch pools *)
  (* Start every kernel measurement at zero GC debt — otherwise a major
     slice owed by whatever ran before lands in this kernel's wall
     clock. *)
  Gc.full_major ();
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    f ()
  done;
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 /. float_of_int runs in
  let alloc = (Gc.allocated_bytes () -. a0) /. float_of_int runs in
  (ms, alloc)

type kernel_row = {
  kernel : string;
  reference_ms : float;
  reference_alloc : float;
  new_ms : float;
  new_alloc : float;
  work_units : int;  (* deterministic work, identical on both paths *)
}

let bench_exec_kernel (h : Experiments.Harness.t) =
  let engine = Exec.Engine_config.robust in
  let prepared =
    List.map
      (fun name ->
        let q = Experiments.Harness.find h name in
        let est = Experiments.Harness.estimator h q "true" in
        let plan, _ =
          Experiments.Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm ()
        in
        (q, plan, est))
      [ "1a"; "3a"; "6a"; "16d"; "17b" ]
  in
  let work = ref 0 in
  let run_all () =
    work := 0;
    List.iter
      (fun (q, plan, est) ->
        let r =
          Experiments.Harness.execute h q ~plan
            ~size_est:est.Cardest.Estimator.subset ~engine
        in
        work := !work + r.Exec.Executor.work)
      prepared
  in
  let measure flag =
    Atomic.set Exec.Executor.reference_scan flag;
    Fun.protect
      ~finally:(fun () -> Atomic.set Exec.Executor.reference_scan false)
      (fun () -> time_alloc ~runs:10 run_all)
  in
  let reference_ms, reference_alloc = measure true in
  let new_ms, new_alloc = measure false in
  {
    kernel = "executor scan path (5 queries, robust engine)";
    reference_ms;
    reference_alloc;
    new_ms;
    new_alloc;
    work_units = !work;
  }

(* The merge-join sort side, before vs after: the seed built a boxed
   (hash, row) pair list per side — an option per key, a cons and a
   tuple per non-NULL row, sorted with polymorphic compare — where the
   executor now fills a flat int key array and sorts a row-index
   permutation with a monomorphic comparator. *)
let bench_sortside_kernel (h : Experiments.Harness.t) =
  let table =
    Storage.Database.find_table h.Experiments.Harness.db "cast_info"
  in
  let a =
    Storage.Column.to_codes
      (Storage.Table.column table (Storage.Table.column_index table "movie_id"))
  in
  let n = Storage.Table.row_count table in
  let null = Storage.Value.null_code in
  let sink = ref 0 in
  let legacy () =
    let pairs = ref [] in
    for i = n - 1 downto 0 do
      let key = if a.(i) = null then None else Some (Exec.Join_table.mix a.(i)) in
      match key with Some hash -> pairs := (hash, i) :: !pairs | None -> ()
    done;
    let arr = Array.of_list !pairs in
    Array.sort compare arr;
    sink := Array.length arr
  in
  let packed () =
    let keys = Array.make n 0 in
    let m = ref 0 in
    for i = 0 to n - 1 do
      let hash = if a.(i) = null then -1 else Exec.Join_table.mix a.(i) in
      keys.(i) <- hash;
      if hash >= 0 then incr m
    done;
    let idx = Array.make (max 1 !m) 0 in
    let k = ref 0 in
    for i = 0 to n - 1 do
      if keys.(i) >= 0 then begin
        idx.(!k) <- i;
        incr k
      end
    done;
    Array.sort
      (fun x y ->
        let c = Int.compare keys.(x) keys.(y) in
        if c <> 0 then c else Int.compare x y)
      idx;
    sink := Array.length idx
  in
  let reference_ms, reference_alloc = time_alloc ~runs:20 legacy in
  let new_ms, new_alloc = time_alloc ~runs:20 packed in
  {
    kernel = Printf.sprintf "merge-join sort side (cast_info, %d rows)" n;
    reference_ms;
    reference_alloc;
    new_ms;
    new_alloc;
    work_units = n;
  }

let bench_truecard_kernel (h : Experiments.Harness.t) =
  let table =
    Storage.Database.find_table h.Experiments.Harness.db "cast_info"
  in
  let col name =
    Storage.Column.to_codes
      (Storage.Table.column table (Storage.Table.column_index table name))
  in
  let a = col "movie_id" and b = col "role_id" in
  let n = Storage.Table.row_count table in
  (* Several passes over the table per run, so the steady state — every
     probe after the first pass hits an existing group, True_card's
     message-passing access pattern — dominates the one-time table
     setup on both sides. *)
  let reps = max 2 (100_000 / max 1 n) in
  (* The legacy kernel: one boxed int-array key allocated per probe,
     float refs as counts — the shape True_card grouped with before
     Group_table. *)
  let legacy_groups = ref 0 in
  let legacy () =
    let tbl : (int array, float ref) Hashtbl.t = Hashtbl.create 1024 in
    for _ = 1 to reps do
      for row = 0 to n - 1 do
        let key = [| a.(row); b.(row) |] in
        match Hashtbl.find_opt tbl key with
        | Some r -> r := !r +. 1.0
        | None -> Hashtbl.add tbl key (ref 1.0)
      done
    done;
    legacy_groups := Hashtbl.length tbl
  in
  let packed_groups = ref 0 in
  let packed () =
    let gt = Cardest.Group_table.create ~arity:2 () in
    let scratch = Cardest.Group_table.scratch gt in
    for _ = 1 to reps do
      for row = 0 to n - 1 do
        scratch.(0) <- a.(row);
        scratch.(1) <- b.(row);
        Cardest.Group_table.add_scratch gt 1.0
      done
    done;
    packed_groups := Cardest.Group_table.groups gt
  in
  let reference_ms, reference_alloc = time_alloc ~runs:10 legacy in
  let new_ms, new_alloc = time_alloc ~runs:10 packed in
  if !legacy_groups <> !packed_groups then
    Printf.printf "WARNING: group counts differ (legacy %d, packed %d)\n%!"
      !legacy_groups !packed_groups;
  {
    kernel =
      Printf.sprintf "true-card grouping (cast_info, %d rows x %d passes)" n
        reps;
    reference_ms;
    reference_alloc;
    new_ms;
    new_alloc;
    work_units = n * reps;
  }

(* ------------------------------------------------------------------ *)
(* The wall-clock baseline: serial vs parallel, as JSON                 *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ~jobs ~scale ~seed ~repeats rows =
  let oc = open_out path in
  (* [cores] records the host's parallelism so a downstream reader can
     tell a real regression from a single-core host that had no
     parallelism to win (see the WARNING gating below). *)
  let cores = Domain.recommended_domain_count () in
  Printf.fprintf oc
    "{\n  \"jobs\": %d,\n  \"cores\": %d,\n  \"scale\": %g,\n  \"seed\": \
     %d,\n  \"repeats\": %d,\n  \"experiments\": [\n"
    jobs cores scale seed repeats;
  List.iteri
    (fun i (id, serial_ms, parallel_ms) ->
      let speedup = serial_ms /. Float.max 1e-9 parallel_ms in
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"serial_ms\": %.3f, \"parallel_ms\": %.3f, \
         \"speedup\": %.3f, \"cores\": %d, \"regression\": %b}%s\n"
        (json_escape id) serial_ms parallel_ms speedup cores (speedup <= 1.0)
        (if i = List.length rows - 1 then "" else ",")
    )
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Machine-readable companion to the reopt experiment: per-system re-plan
   volume and the simulated-runtime recovery, read from the aggregates
   the experiment left behind rather than re-measuring. *)
let write_reopt_json ~path ~scale ~seed ~threshold
    (summaries : Experiments.Exp_reopt.summary list) =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"scale\": %g,\n  \"seed\": %d,\n  \"threshold\": %g,\n  \
     \"systems\": [\n"
    scale seed threshold;
  List.iteri
    (fun i (s : Experiments.Exp_reopt.summary) ->
      Printf.fprintf oc
        "    {\"system\": \"%s\", \"replans\": %d, \"queries_replanned\": \
         %d, \"off_total_ms\": %.3f, \"on_total_ms\": %.3f, \"speedup\": \
         %.3f, \"comparable\": %d}%s\n"
        (json_escape s.Experiments.Exp_reopt.system)
        s.Experiments.Exp_reopt.replans
        s.Experiments.Exp_reopt.replanned_queries
        s.Experiments.Exp_reopt.off_ms s.Experiments.Exp_reopt.on_ms
        (s.Experiments.Exp_reopt.off_ms
        /. Float.max 1e-9 s.Experiments.Exp_reopt.on_ms)
        s.Experiments.Exp_reopt.comparable
        (if i = List.length summaries - 1 then "" else ","))
    summaries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let write_exec_json ~path ~scale ~seed rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"scale\": %g,\n  \"seed\": %d,\n  \"kernels\": [\n"
    scale seed;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"kernel\": \"%s\", \"reference_ms_per_run\": %.3f, \
         \"new_ms_per_run\": %.3f, \"speedup\": %.3f, \
         \"reference_alloc_bytes_per_run\": %.0f, \
         \"new_alloc_bytes_per_run\": %.0f, \"alloc_reduction\": %.3f, \
         \"work_units\": %d}%s\n"
        (json_escape r.kernel) r.reference_ms r.new_ms
        (r.reference_ms /. Float.max 1e-9 r.new_ms)
        r.reference_alloc r.new_alloc
        (r.reference_alloc /. Float.max 1.0 r.new_alloc)
        r.work_units
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Scale sweep: compressed storage from the reference 0.02 up to the
   paper's full-size 1.0, publishing wall time, allocated bytes,
   resident set and the compression ratio of every encoding to
   BENCH_scale.json. *)

let rss_mb () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec find () =
          let line = input_line ic in
          if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun kb -> float_of_int kb /. 1024.0)
          else find ()
        in
        find ())
  with _ -> 0.0

(* The five kernel-benchmark queries: short enough to run at scale 1.0,
   together covering scans, string predicates, deep joins and MINs. *)
(* A storage-bound mix — four cheap-to-medium scans and one join-heavy
   query — chosen on two grounds. First, executor work must stay
   bounded as the database grows: most JOB queries go superlinear at
   some scale when the synthetic fanouts shift the plan (15a runs fine
   to 0.1, then blows past 2G work units at 0.5 on a 19 GB heap), and
   a capped run's wall clock measures GC on a multi-GB heap, not
   storage. Second, intermediate-result heap must stay in single-digit
   gigabytes at scale 1.0 — beyond that, single-core major-GC pacing
   swamps the storage signal (28d, at 2.7 GB for scale 0.05 already,
   swings 2x between identical passes). 1a/4a/6a/20a scale linearly;
   13d grows ~quadratically but stays under the raised work limit at
   scale 1.0, and is kept as the join-heavy anchor. *)
let sweep_queries = [ "1a"; "4a"; "6a"; "20a"; "13d" ]

let sweep_engine =
  {
    Exec.Engine_config.robust with
    name = "scale sweep";
    work_limit = 2_000_000_000;
    row_limit = 150_000_000;
  }

type storage_totals = {
  st_flat : int; (* bytes of the flat reference layout *)
  st_bytes : int; (* bytes as encoded *)
  st_dict_flat : int; (* same, over dictionary (string) columns only *)
  st_dict_bytes : int;
  st_by_encoding : (string * (int * int)) list; (* name -> columns, bytes *)
}

let storage_totals db =
  let flat = ref 0 and bytes = ref 0 in
  let dict_flat = ref 0 and dict_bytes = ref 0 in
  let per = Hashtbl.create 4 in
  List.iter
    (fun name ->
      Array.iter
        (fun c ->
          let fb = Storage.Column.flat_byte_size c in
          let eb = Storage.Column.byte_size c in
          flat := !flat + fb;
          bytes := !bytes + eb;
          if Storage.Column.ty c = Storage.Value.Str_ty then begin
            dict_flat := !dict_flat + fb;
            dict_bytes := !dict_bytes + eb
          end;
          let key = Storage.Column.encoding_name (Storage.Column.encoding c) in
          let n, b = Option.value ~default:(0, 0) (Hashtbl.find_opt per key) in
          Hashtbl.replace per key (n + 1, b + eb))
        (Storage.Table.columns (Storage.Database.find_table db name)))
    (Storage.Database.table_names db);
  {
    st_flat = !flat;
    st_bytes = !bytes;
    st_dict_flat = !dict_flat;
    st_dict_bytes = !dict_bytes;
    st_by_encoding =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) per []);
  }

(* Plan and execute the sweep queries; returns per-query fingerprints
   (rows, work, MINs) for the cross-encoding identity check plus wall
   time and allocated bytes over the whole set. *)
let sweep_run_queries db =
  let s = Core.Session.of_database db in
  (* ANALYZE and planning happen up front, outside the timed passes. *)
  let planned =
    List.map
      (fun name ->
        let q = Core.Session.job s name in
        (name, q, Core.Session.optimize s q))
      sweep_queries
  in
  (* Untimed warm-up: builds the lazy hash indexes, sizes the GC heap
     and faults in the pages, so the timed passes below measure
     storage, not first-run effects. [Gc.full_major] (never
     [Gc.compact]) between passes settles floating garbage without
     returning memory to the OS — compaction would force every pass to
     re-grow the heap from scratch, and that churn is exactly the
     cross-run noise the warm-up exists to remove. Per query the sweep
     reports the best of two timed passes: the executor is
     deterministic, so the minimum is the pass least disturbed by GC
     pacing. *)
  List.iter
    (fun (_, q, choice) ->
      ignore (Core.Session.run s ~engine:sweep_engine q choice))
    planned;
  let debug = Sys.getenv_opt "SWEEP_DEBUG" <> None in
  let timed_pass () =
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let per_query =
      List.map
        (fun (name, q, choice) ->
          let cpu0 = Unix.times () in
          let q0 = Unix.gettimeofday () in
          let r = Core.Session.run s ~engine:sweep_engine q choice in
          let q_wall = (Unix.gettimeofday () -. q0) *. 1000.0 in
          let cpu1 = Unix.times () in
          let q_cpu =
            (cpu1.Unix.tms_utime -. cpu0.Unix.tms_utime
            +. (cpu1.Unix.tms_stime -. cpu0.Unix.tms_stime))
            *. 1000.0
          in
          if debug then begin
            let st = Gc.quick_stat () in
            Printf.printf "    [%s %.0fms work=%d majors=%d heap=%dMB]\n%!"
              name q_wall r.Exec.Executor.work st.Gc.major_collections
              (st.Gc.heap_words * 8 / 1048576)
          end;
          let fp =
            ( name,
              r.Exec.Executor.rows,
              r.Exec.Executor.work,
              List.map Storage.Value.to_string r.Exec.Executor.mins )
          in
          (fp, q_wall, q_cpu))
        planned
    in
    (per_query, Gc.allocated_bytes () -. a0)
  in
  let pass1, allocated = timed_pass () in
  let pass2, _ = timed_pass () in
  let fingerprints = List.map (fun (fp, _, _) -> fp) pass1 in
  let wall_ms =
    List.fold_left2
      (fun acc (_, w1, _) (_, w2, _) -> acc +. Float.min w1 w2)
      0.0 pass1 pass2
  in
  let cpu_ms =
    List.fold_left2
      (fun acc (_, _, c1) (_, _, c2) -> acc +. Float.min c1 c2)
      0.0 pass1 pass2
  in
  (fingerprints, wall_ms, cpu_ms, allocated)

let run_scale_sweep ~seed scales =
  (* Same GC tuning the worker domains get (Domain_pool.tune_gc): a big
     minor heap and a relaxed space_overhead keep major-GC pacing from
     dominating the timed passes. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 4_194_304; space_overhead = 200 };
  let mismatches = ref 0 in
  let steps =
    List.map
      (fun scale ->
        Printf.printf "scale %g: generating...%!" scale;
        let t0 = Unix.gettimeofday () in
        let db = Datagen.Imdb_gen.generate ~seed ~scale () in
        let build_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let rows = Storage.Database.total_rows db in
        let totals = storage_totals db in
        Printf.printf " %d rows, %.0f ms, %.1fx compression\n%!" rows build_ms
          (float_of_int totals.st_flat /. float_of_int (max 1 totals.st_bytes));
        let fingerprints, wall_ms, cpu_ms, allocated = sweep_run_queries db in
        let resident = rss_mb () in
        (* Per-encoding forced totals; at the smaller steps also re-run
           the queries per encoding and demand identical results (the
           storage-level determinism guard). *)
        let forced =
          List.map
            (fun enc ->
              let name = Storage.Column.encoding_name enc in
              Printf.printf "  forced %-8s%!" name;
              let t0 = Unix.gettimeofday () in
              let fdb = Storage.Database.recode db enc in
              let recode_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
              let ftotals = storage_totals fdb in
              let ftimes =
                if scale <= 0.11 then begin
                  let ffp, fwall, fcpu, _ = sweep_run_queries fdb in
                  if ffp <> fingerprints then begin
                    incr mismatches;
                    Printf.printf " RESULT MISMATCH%!"
                  end;
                  Some (fwall, fcpu)
                end
                else None
              in
              Printf.printf " %.1fx compression, recode %.0f ms%s\n%!"
                (float_of_int ftotals.st_flat /. float_of_int (max 1 ftotals.st_bytes))
                recode_ms
                (match ftimes with
                | Some (w, c) ->
                    Printf.sprintf ", queries %.0f ms wall / %.0f ms cpu" w c
                | None -> "");
              (name, ftotals.st_bytes, ftimes))
            Storage.Column.all_encodings
        in
        Printf.printf "  queries (chosen): %.0f ms wall / %.0f ms cpu\n%!" wall_ms
          cpu_ms;
        (scale, rows, build_ms, totals, wall_ms, cpu_ms, allocated, resident, forced))
      scales
  in
  let oc = open_out "BENCH_scale.json" in
  Printf.fprintf oc "{\n  \"seed\": %d,\n  \"queries\": [%s],\n  \"sweep\": [\n"
    seed
    (String.concat ", " (List.map (fun q -> "\"" ^ q ^ "\"") sweep_queries));
  List.iteri
    (fun i (scale, rows, build_ms, totals, wall_ms, cpu_ms, allocated, resident, forced)
         ->
      Printf.fprintf oc
        "    {\n      \"scale\": %g,\n      \"rows\": %d,\n      \"build_ms\": \
         %.1f,\n      \"query_wall_ms\": %.1f,\n      \"query_cpu_ms\": %.1f,\n      \
         \"allocated_bytes\": %.0f,\n      \"rss_mb\": %.1f,\n"
        scale rows build_ms wall_ms cpu_ms allocated resident;
      Printf.fprintf oc
        "      \"flat_bytes\": %d,\n      \"chosen_bytes\": %d,\n      \
         \"compression_ratio\": %.3f,\n      \"dict_flat_bytes\": %d,\n      \
         \"dict_chosen_bytes\": %d,\n      \"dict_compression_ratio\": %.3f,\n"
        totals.st_flat totals.st_bytes
        (float_of_int totals.st_flat /. float_of_int (max 1 totals.st_bytes))
        totals.st_dict_flat totals.st_dict_bytes
        (float_of_int totals.st_dict_flat
        /. float_of_int (max 1 totals.st_dict_bytes));
      Printf.fprintf oc "      \"chosen_encodings\": {%s},\n"
        (String.concat ", "
           (List.map
              (fun (k, (n, b)) ->
                Printf.sprintf "\"%s\": {\"columns\": %d, \"bytes\": %d}" k n b)
              totals.st_by_encoding));
      Printf.fprintf oc "      \"forced\": {%s}\n    }%s\n"
        (String.concat ", "
           (List.map
              (fun (name, bytes, ftimes) ->
                Printf.sprintf
                  "\"%s\": {\"bytes\": %d, \"ratio\": %.3f%s}" name bytes
                  (float_of_int totals.st_flat /. float_of_int (max 1 bytes))
                  (match ftimes with
                  | Some (w, c) ->
                      Printf.sprintf
                        ", \"query_wall_ms\": %.1f, \"query_cpu_ms\": %.1f" w c
                  | None -> ""))
              forced))
        (if i = List.length steps - 1 then "" else ","))
    steps;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n%!";
  if !mismatches > 0 then begin
    Printf.printf "FAIL: %d per-encoding result mismatches\n%!" !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Morsel sweep: intra-query scaling curves. Per scale it builds the
   database once, then runs the five sweep queries at each worker count
   (default 1,2,4,8), enforcing byte-identical results against the
   serial baseline and publishing per-query wall clock plus the morsel
   scheduler's counters to BENCH_morsel.json. *)

let morsel_run_queries s planned ~pool =
  (* Untimed warm-up (indexes, heap sizing, page faults), then reset
     the scheduler counters so the published telemetry covers exactly
     the timed passes. Best-of-two per query, as in the scale sweep:
     the executor is deterministic, so the minimum is the pass least
     disturbed by GC pacing. *)
  List.iter
    (fun (_, q, choice) ->
      ignore (Core.Session.run s ~engine:sweep_engine ?pool q choice))
    planned;
  Exec.Morsel.reset_stats ();
  let pass () =
    Gc.full_major ();
    List.map
      (fun (name, q, choice) ->
        let t0 = Unix.gettimeofday () in
        let r = Core.Session.run s ~engine:sweep_engine ?pool q choice in
        let wall = (Unix.gettimeofday () -. t0) *. 1000.0 in
        let fp =
          ( name,
            r.Exec.Executor.rows,
            r.Exec.Executor.work,
            List.map Storage.Value.to_string r.Exec.Executor.mins )
        in
        (fp, wall))
      planned
  in
  let pass1 = pass () in
  let pass2 = pass () in
  let stats = Exec.Morsel.stats () in
  let fingerprints = List.map fst pass1 in
  let walls =
    List.map2
      (fun ((name, _, _, _), w1) (_, w2) -> (name, Float.min w1 w2))
      pass1 pass2
  in
  (fingerprints, walls, stats)

let run_morsel_sweep ~seed ~jobs_list scales =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 4_194_304; space_overhead = 200 };
  let jobs_list = match jobs_list with [] -> [ 1 ] | l -> l in
  let mismatches = ref 0 in
  let steps =
    List.map
      (fun scale ->
        Printf.printf "scale %g: generating...%!" scale;
        let db = Datagen.Imdb_gen.generate ~seed ~scale () in
        let rows = Storage.Database.total_rows db in
        Printf.printf " %d rows\n%!" rows;
        let s = Core.Session.of_database db in
        (* Plan once, outside every timed region: all worker counts
           execute the same physical plans. *)
        let planned =
          List.map
            (fun name ->
              let q = Core.Session.job s name in
              (name, q, Core.Session.optimize s q))
            sweep_queries
        in
        let baseline = ref None in
        let runs =
          List.map
            (fun nj ->
              let pool =
                if nj > 1 then Some (Util.Domain_pool.create ~domains:nj)
                else None
              in
              let fingerprints, walls, stats =
                Fun.protect
                  ~finally:(fun () ->
                    match pool with
                    | Some p -> Util.Domain_pool.shutdown p
                    | None -> ())
                  (fun () -> morsel_run_queries s planned ~pool)
              in
              (match !baseline with
              | None -> baseline := Some fingerprints
              | Some fp0 ->
                  if fingerprints <> fp0 then begin
                    incr mismatches;
                    Printf.printf
                      "  RESULT MISMATCH at %d exec jobs (scale %g)\n%!" nj
                      scale
                  end);
              let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 walls in
              Printf.printf
                "  exec-jobs %d: %7.1f ms total  (%s)  phases %d, morsels \
                 %d, stolen %d, skew %.2f\n%!"
                nj total
                (String.concat ", "
                   (List.map
                      (fun (n, w) -> Printf.sprintf "%s %.0f" n w)
                      walls))
                stats.Exec.Morsel.st_phases stats.Exec.Morsel.st_dispatched
                stats.Exec.Morsel.st_stolen stats.Exec.Morsel.st_skew;
              (nj, total, walls, stats))
            jobs_list
        in
        (match runs with
        | (1, serial_total, _, _) :: rest ->
            List.iter
              (fun (nj, total, _, _) ->
                Printf.printf "  speedup at %d exec jobs: %.2fx\n%!" nj
                  (serial_total /. Float.max 1e-9 total))
              rest
        | _ -> ());
        (scale, rows, runs))
      scales
  in
  let oc = open_out "BENCH_morsel.json" in
  Printf.fprintf oc
    "{\n  \"seed\": %d,\n  \"queries\": [%s],\n  \"exec_jobs\": [%s],\n  \
     \"sweep\": [\n"
    seed
    (String.concat ", " (List.map (fun q -> "\"" ^ q ^ "\"") sweep_queries))
    (String.concat ", " (List.map string_of_int jobs_list));
  List.iteri
    (fun i (scale, rows, runs) ->
      let serial_total =
        match runs with
        | (1, t, _, _) :: _ -> Some t
        | _ -> None
      in
      Printf.fprintf oc
        "    {\n      \"scale\": %g,\n      \"rows\": %d,\n      \"runs\": [\n"
        scale rows;
      List.iteri
        (fun j (nj, total, walls, (stats : Exec.Morsel.stats)) ->
          Printf.fprintf oc
            "        {\"exec_jobs\": %d, \"total_wall_ms\": %.3f, \
             \"speedup\": %.3f, \"queries\": {%s}, \"morsel_phases\": %d, \
             \"morsels_dispatched\": %d, \"morsels_stolen\": %d, \
             \"build_skew\": %.3f}%s\n"
            nj total
            (match serial_total with
            | Some st -> st /. Float.max 1e-9 total
            | None -> 1.0)
            (String.concat ", "
               (List.map
                  (fun (n, w) -> Printf.sprintf "\"%s\": %.3f" n w)
                  walls))
            stats.Exec.Morsel.st_phases stats.Exec.Morsel.st_dispatched
            stats.Exec.Morsel.st_stolen stats.Exec.Morsel.st_skew
            (if j = List.length runs - 1 then "" else ","))
        runs;
      Printf.fprintf oc "      ]\n    }%s\n"
        (if i = List.length steps - 1 then "" else ","))
    steps;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_morsel.json\n%!";
  if !mismatches > 0 then begin
    Printf.printf
      "FAIL: %d serial-vs-morsel result mismatches (determinism violated)\n%!"
      !mismatches;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The observability overhead gate (--obs-gate): acceptance evidence
   that the executor can carry its trace instrumentation permanently.
   Two arms over the golden 113-query workload — tracing disabled and
   enabled — interleaved best-of-three with a byte-identity check, plus
   a direct micro-measurement of the disabled start/span pair, scaled
   by the spans one traced pass records. The per-pass estimate is the
   enforced figure: wall-clock deltas between the arms on a busy box
   are dominated by scheduler noise, while ns-per-site times
   sites-per-pass is stable and conservative. *)

let run_obs_gate ~seed ~scale =
  Printf.printf
    "obs gate: golden workload traced vs untraced (scale %g, seed %d)\n%!"
    scale seed;
  let sess = Core.Session.create ~seed ~scale () in
  let entries =
    List.map
      (fun (jq : Workload.Job.query) ->
        let q = Core.Session.job sess jq.Workload.Job.name in
        (q, Core.Session.optimize sess q))
      Workload.Job.all
  in
  let pass () =
    List.map
      (fun (q, c) ->
        let r = Core.Session.run sess q c in
        ( r.Exec.Executor.rows,
          r.Exec.Executor.work,
          List.map Storage.Value.to_string r.Exec.Executor.mins ))
      entries
  in
  ignore (pass ());
  (* Warmed caches; both arms now execute identical plans. *)
  let timed f =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let off_ms = ref infinity and on_ms = ref infinity in
  let off_fp = ref None and on_fp = ref None in
  let spans_per_pass = ref 0 in
  for _ = 1 to 3 do
    Obs.Trace.set_enabled false;
    let fp, ms = timed pass in
    off_ms := Float.min !off_ms ms;
    off_fp := Some fp;
    Obs.Trace.set_enabled true;
    Obs.Trace.clear ();
    let fp, ms = timed pass in
    let spans, _ = Obs.Trace.flush () in
    spans_per_pass := List.length spans;
    on_ms := Float.min !on_ms ms;
    on_fp := Some fp
  done;
  Obs.Trace.set_enabled false;
  let identity = !off_fp = !on_fp in
  (* The disabled path in isolation: one start/span pair per site. *)
  let ph_probe = Obs.Trace.intern "bench.obs_probe" in
  let iters = 20_000_000 in
  let t0 = Unix.gettimeofday () in
  let sink = ref 0 in
  for _ = 1 to iters do
    let t = Obs.Trace.start () in
    Obs.Trace.span ph_probe ~t0:t ~a:0 ~b:0;
    sink := !sink + t
  done;
  let ns_per_site = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters in
  ignore (Sys.opaque_identity !sink);
  let disabled_overhead_est =
    if !off_ms <= 0.0 then 0.0
    else ns_per_site *. float_of_int !spans_per_pass /. (!off_ms *. 1e6)
  in
  let within_budget = disabled_overhead_est < 0.01 in
  let enabled_overhead =
    if !off_ms <= 0.0 then 0.0 else (!on_ms -. !off_ms) /. !off_ms
  in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"obs\",\n\
    \  \"scale\": %g,\n\
    \  \"seed\": %d,\n\
    \  \"queries\": %d,\n\
    \  \"off_wall_ms\": %.3f,\n\
    \  \"on_wall_ms\": %.3f,\n\
    \  \"enabled_overhead\": %.4f,\n\
    \  \"spans_per_pass\": %d,\n\
    \  \"disabled_ns_per_site\": %.2f,\n\
    \  \"disabled_overhead_est\": %.6f,\n\
    \  \"within_budget\": %b,\n\
    \  \"identity\": %b\n\
     }\n"
    scale seed Workload.Job.query_count !off_ms !on_ms enabled_overhead
    !spans_per_pass ns_per_site disabled_overhead_est within_budget identity;
  close_out oc;
  Printf.printf
    "wrote BENCH_obs.json (untraced %.1fms, traced %.1fms, %d spans/pass, \
     disabled path %.1fns/site = %.4f%% est overhead)\n\
     %!"
    !off_ms !on_ms !spans_per_pass ns_per_site
    (100.0 *. disabled_overhead_est);
  if not identity then begin
    Printf.printf "FAIL: traced and untraced results diverge\n%!";
    exit 1
  end;
  if not within_budget then begin
    Printf.printf
      "FAIL: disabled tracing path estimated at >= 1%% of workload wall time\n%!";
    exit 1
  end

let () =
  let scale = ref Datagen.Imdb_gen.reference_scale in
  let seed = ref 42 in
  let only = ref None in
  let skip_micro = ref false in
  let repeat = ref 1 in
  let jobs = ref (Domain.recommended_domain_count ()) in
  let exec_jobs = ref 1 in
  let sweep = ref None in
  let morsel_sweep = ref None in
  let morsel_jobs = ref [ 1; 2; 4; 8 ] in
  let obs_gate = ref false in
  let rec parse = function
    | [] -> ()
    | "--scale-sweep" :: v :: rest ->
        sweep :=
          Some
            (String.split_on_char ',' v |> List.map String.trim
           |> List.map float_of_string);
        parse rest
    | "--morsel-sweep" :: v :: rest ->
        morsel_sweep :=
          Some
            (String.split_on_char ',' v |> List.map String.trim
           |> List.map float_of_string);
        parse rest
    | "--morsel-jobs" :: v :: rest ->
        morsel_jobs :=
          String.split_on_char ',' v |> List.map String.trim
          |> List.map int_of_string;
        parse rest
    | "--exec-jobs" :: v :: rest ->
        exec_jobs := int_of_string v;
        parse rest
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := Some v;
        parse rest
    | "--obs-gate" :: rest ->
        obs_gate := true;
        parse rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        parse rest
    | "--repeat" :: v :: rest ->
        repeat := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %s" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !jobs < 1 then failwith "-j must be >= 1";
  if !exec_jobs < 1 then failwith "--exec-jobs must be >= 1";
  if List.exists (fun n -> n < 1) !morsel_jobs then
    failwith "--morsel-jobs entries must be >= 1";
  (match !sweep with
  | Some scales ->
      Util.Domain_pool.tune_gc ();
      run_scale_sweep ~seed:!seed scales;
      exit 0
  | None -> ());
  (match !morsel_sweep with
  | Some scales ->
      Util.Domain_pool.tune_gc ();
      run_morsel_sweep ~seed:!seed ~jobs_list:!morsel_jobs scales;
      exit 0
  | None -> ());
  if !obs_gate then begin
    Util.Domain_pool.tune_gc ();
    run_obs_gate ~seed:!seed ~scale:!scale;
    exit 0
  end;
  (* Pool workers tune their GC on spawn; the main domain executes the
     serial halves and its share of parallel maps, so it runs under the
     same regime. *)
  Util.Domain_pool.tune_gc ();
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "Join Order Benchmark reproduction - regenerating all paper results\n\
     (scale %g, seed %d, %d queries, %d jobs)\n\n%!"
    !scale !seed Workload.Job.query_count !jobs;
  let selected =
    match !only with
    | None -> experiments
    | Some ids ->
        let wanted = String.split_on_char ',' ids |> List.map String.trim in
        let known = List.map fst experiments in
        let unknown = List.filter (fun w -> not (List.mem w known)) wanted in
        if unknown <> [] then begin
          Printf.eprintf "error: unknown experiment%s %s for --only\n"
            (if List.length unknown > 1 then "s" else "")
            (String.concat ", " unknown);
          Printf.eprintf "valid experiments: %s\n%!" (String.concat ", " known);
          exit 2
        end;
        List.filter (fun (i, _) -> List.mem i wanted) experiments
  in
  (* id -> per-repeat (serial_ms, parallel_ms) samples. Each repeat is a
     fully cold pair of harnesses, so every sample is a cold-run time —
     the reported per-side median just strips scheduler and GC-pacing
     noise, which on a small box can dwarf the quantity being
     measured. *)
  let samples : (string, (float * float) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let mismatches = ref [] in
  let last_h = ref None in
  for r = 1 to !repeat do
    (* Drop the previous repeat's harness before building the next pair:
       keeping it alive would grow the live heap every repeat, and major
       GC marks the whole live set — the extra marking lands inside the
       timed windows. Compacting returns the freed pools to a dense
       heap, so repeat r starts from the same memory state as repeat
       1. *)
    (match !last_h with
    | Some prev ->
        Experiments.Harness.shutdown prev;
        last_h := None;
        Gc.compact ()
    | None -> ());
    let h =
      Experiments.Harness.create ~seed:!seed ~scale:!scale
        ~exec_jobs:!exec_jobs ()
    in
    if r = 1 then
      Printf.printf "database: %d tables, %d rows\n\n%!"
        (List.length (Storage.Database.table_names h.Experiments.Harness.db))
        (Storage.Database.total_rows h.Experiments.Harness.db);
    (* The parallel twin: same seed and scale, its own caches. Each
       experiment renders on both at an identical cache state (both have
       rendered exactly the same prior experiments). *)
    (* Both twins get the same --exec-jobs, so the serial/parallel
       comparison still isolates the inter-query fan-out. *)
    let h_par =
      if !jobs > 1 then
        Some
          (Experiments.Harness.create ~seed:!seed ~scale:!scale ~jobs:!jobs
             ~exec_jobs:!exec_jobs ())
      else None
    in
    (* Spawn the parallel pool's worker domains before any timed region:
       the first par_map otherwise pays domain spawn + minor-arena
       first-touch inside experiment 1's parallel window. *)
    (match h_par with
    | Some hp when Experiments.Harness.jobs hp > 1 ->
        ignore (Experiments.Harness.par_map hp Fun.id [| 0; 1; 2; 3 |])
    | _ -> ());
    List.iter
      (fun (id, render) ->
        (* Collect before each timed window so GC debt accrued by one
           render is not billed to the next (serial and parallel windows
           alternate on twin harnesses — without this, a major slice
           triggered by the previous render lands in the current one's
           wall clock and the speedup column turns into noise). *)
        Gc.full_major ();
        let t1 = Unix.gettimeofday () in
        let output = render h in
        let serial_ms = (Unix.gettimeofday () -. t1) *. 1e3 in
        match h_par with
        | None ->
            if r = 1 then
              Printf.printf "=== %s ===\n%s\n(%.1fs)\n\n%!" id output
                (serial_ms /. 1e3)
            else Printf.printf "repeat %d: %s %.1fs\n%!" r id (serial_ms /. 1e3)
        | Some hp ->
            Gc.full_major ();
            let t2 = Unix.gettimeofday () in
            let par_output = render hp in
            let parallel_ms = (Unix.gettimeofday () -. t2) *. 1e3 in
            if not (String.equal output par_output) then begin
              if not (List.mem id !mismatches) then
                mismatches := id :: !mismatches;
              Printf.printf
                "ERROR: %s output differs between -j 1 and -j %d\n%!" id !jobs
            end;
            Hashtbl.replace samples id
              ((serial_ms, parallel_ms)
              ::
              (match Hashtbl.find_opt samples id with
              | Some l -> l
              | None -> []));
            if r = 1 then
              Printf.printf
                "=== %s ===\n%s\n(serial %.1fs, %d jobs %.1fs, speedup \
                 %.2fx)\n\n%!"
                id output (serial_ms /. 1e3) !jobs (parallel_ms /. 1e3)
                (serial_ms /. Float.max 1e-9 parallel_ms)
            else
              Printf.printf "repeat %d: %s serial %.1fs, %d jobs %.1fs\n%!" r
                id (serial_ms /. 1e3) !jobs (parallel_ms /. 1e3))
      selected;
    (match h_par with
    | Some hp -> Experiments.Harness.shutdown hp
    | None -> ());
    last_h := Some h
  done;
  let h = Option.get !last_h in
  Printf.printf "\n--- %s\n\n%!" (Experiments.Harness.stats_summary h);
  if !jobs > 1 then begin
    let median = Obs.Histogram.median_of_list in
    let rows =
      List.map
        (fun (id, _) ->
          let l = Hashtbl.find samples id in
          (id, median (List.map fst l), median (List.map snd l)))
        selected
    in
    if !repeat > 1 then
      List.iter
        (fun (id, s, p) ->
          Printf.printf
            "median of %d: %s serial %.1fs, %d jobs %.1fs, speedup %.2fx\n%!"
            !repeat id (s /. 1e3) !jobs (p /. 1e3) (s /. Float.max 1e-9 p))
        rows;
    (* Per-experiment regression flag: a parallel render no faster than
       serial is worth a loud line even though it is not an error (tiny
       scales legitimately have nothing to win). On a single-core host
       every row is trivially "no speedup" — extra domains only add
       scheduling overhead — so the noise is suppressed there; the JSON
       rows still record the host's core count for downstream readers. *)
    if Domain.recommended_domain_count () > 1 then
      List.iter
        (fun (id, s, p) ->
          let speedup = s /. Float.max 1e-9 p in
          if speedup <= 1.0 then
            Printf.printf
              "WARNING: %s shows no parallel speedup (%.2fx at %d jobs)\n%!"
              id speedup !jobs)
        rows;
    write_bench_json ~path:"BENCH_parallel.json" ~jobs:!jobs ~scale:!scale
      ~seed:!seed ~repeats:!repeat rows
  end;
  (* Written only when the reopt experiment was among the selected ones:
     its render fills last_summaries. The last render wins (the parallel
     twin's, when -j > 1) — renders are byte-identical across job
     counts, so the aggregates match the printed tables either way. *)
  (match Atomic.get Experiments.Exp_reopt.last_summaries with
  | [] -> ()
  | summaries ->
      write_reopt_json ~path:"BENCH_reopt.json" ~scale:!scale ~seed:!seed
        ~threshold:(Atomic.get Experiments.Exp_reopt.threshold) summaries);
  write_exec_json ~path:"BENCH_exec.json" ~scale:!scale ~seed:!seed
    [ bench_exec_kernel h; bench_sortside_kernel h; bench_truecard_kernel h ];
  if not !skip_micro then run_micro h;
  Printf.printf "\ntotal: %.1fs\n" (Unix.gettimeofday () -. t0);
  (* The determinism guard: any -j 1 vs -j N divergence fails the run
     (and, in CI, the build). *)
  if !mismatches <> [] then begin
    Printf.printf "FAILED: non-deterministic output for %s\n"
      (String.concat ", " (List.rev !mismatches));
    exit 1
  end
