(* Quickstart: load the synthetic IMDB database, ask an ad-hoc question,
   look at the chosen plan, and execute it.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A small database keeps this instant; scale 1.0 is the benchmark
     size (~325k rows). *)
  let session = Core.Session.create ~scale:0.004 () in
  Core.Session.set_physical_design session Storage.Database.Pk_fk;

  let query =
    Core.Session.sql session ~name:"quickstart"
      "SELECT MIN(t.title), MIN(n.name) \
       FROM title AS t, cast_info AS ci, name AS n, movie_keyword AS mk, \
       keyword AS k \
       WHERE t.id = ci.movie_id AND ci.person_id = n.id AND t.id = mk.movie_id \
       AND mk.keyword_id = k.id AND k.keyword = 'murder' \
       AND t.production_year > 2000"
  in

  (* Optimize with PostgreSQL-style estimates and cost model. *)
  let choice = Core.Session.optimize session query in
  print_endline "Chosen plan:";
  print_string (Core.Session.explain session query choice);

  let result = Core.Session.run session query choice in
  Printf.printf "\n%d result rows in %.1f simulated ms (%d work units)\n"
    result.Exec.Executor.rows result.Exec.Executor.runtime_ms
    result.Exec.Executor.work;
  List.iter
    (fun v -> Printf.printf "  MIN = %s\n" (Storage.Value.to_string v))
    result.Exec.Executor.mins;

  (* How good were the optimizer's cardinality guesses? Compare against
     the exact cardinalities of every intermediate result. *)
  let truth = Core.Session.true_cardinalities session query in
  print_endline "\nSame plan, annotated with exact cardinalities:";
  print_string (Core.Session.explain session query choice);
  let final = Query.Query_graph.full_set query.Core.Session.graph in
  Printf.printf "\nFinal result: estimated %.0f rows, actual %.0f rows\n"
    (choice.Core.Session.estimator.Cardest.Estimator.subset final)
    (Cardest.True_card.card truth final);

  (* Every estimator and plan request above went through the session's
     memoizing pipeline; re-optimizing the same combination is free. *)
  let _again = Core.Session.optimize session query in
  Printf.printf "\n%s\n"
    (Core.Pipeline.stats_summary (Core.Session.pipeline session))
