(* What-if physical design: the same query under the paper's three index
   configurations. More indexes widen the gap between the best and worst
   plans (Section 4.3 / Figure 9): overall performance improves, but the
   optimizer's job gets harder.

   Run with: dune exec examples/whatif_physical_design.exe *)

let configs =
  [ Storage.Database.No_indexes; Storage.Database.Pk_only; Storage.Database.Pk_fk ]

let () =
  let session = Core.Session.create ~scale:0.006 () in
  let query = Core.Session.job session "8a" in
  Printf.printf "Query 8a: %s\n\n" query.Core.Session.sql;
  (* Force the exact-cardinality oracle so differences come from the
     plan space alone. *)
  ignore (Core.Session.true_cardinalities session query);

  List.iter
    (fun config ->
      Core.Session.set_physical_design session config;
      let choice =
        Core.Session.optimize session ~estimator:"true" ~cost_model:"Cmm" query
      in
      let result = Core.Session.run session query choice in
      Printf.printf "=== %s ===\n"
        (Storage.Database.index_config_to_string config);
      print_string (Core.Session.explain session query choice);
      Printf.printf "-> %d rows, %.1f simulated ms\n\n"
        result.Exec.Executor.rows result.Exec.Executor.runtime_ms;
      (* How risky is this plan space? Sample random join orders. *)
      let search =
        Planner.Search.create ~model:Cost.Cost_model.cmm
          ~graph:query.Core.Session.graph
          ~db:(Core.Session.db session)
          ~card:choice.Core.Session.estimator.Cardest.Estimator.subset ()
      in
      let prng = Util.Prng.create 7 in
      let costs = Planner.Quickpick.sample_costs search prng ~attempts:500 in
      let optimal = choice.Core.Session.estimated_cost in
      Printf.printf
        "500 random join orders: best %.1fx, median %.0fx, worst %.0fx of optimal\n\n"
        (Util.Stat.minimum costs /. optimal)
        (Util.Stat.median costs /. optimal)
        (Util.Stat.maximum costs /. optimal))
    configs
