(* The risk of relying on estimates (Section 4.1): under an aggressive
   underestimator, a purely cost-based optimizer picks non-index
   nested-loop joins and undersized hash tables; two engine-side changes
   (disable NL joins, resize hash tables at runtime) absorb most of the
   damage without touching the estimator.

   Run with: dune exec examples/robust_engine.exe *)

let engines =
  [
    ("stock 9.4 engine (NL joins, fixed hash tables)", Exec.Engine_config.default_9_4);
    ("no nested-loop joins", Exec.Engine_config.no_nl);
    ("no NL joins + rehashing", Exec.Engine_config.robust);
  ]

let () =
  let session = Core.Session.create ~scale:0.006 () in
  Core.Session.set_physical_design session Storage.Database.Pk_only;
  let query = Core.Session.job session "25c" in
  Printf.printf "Query 25c under DBMS B's collapse-to-1-row estimates:\n\n";

  (* Baseline: what the optimal plan costs. *)
  ignore (Core.Session.true_cardinalities session query);
  let oracle =
    Core.Session.optimize session ~estimator:"true" ~cost_model:"PostgreSQL" query
  in
  let baseline = Core.Session.run session query oracle in
  Printf.printf "true-cardinality plan: %.1f simulated ms (%d rows)\n\n"
    baseline.Exec.Executor.runtime_ms baseline.Exec.Executor.rows;

  List.iter
    (fun (label, engine) ->
      (* The optimizer only considers NL joins when the engine will
         execute them. *)
      let choice =
        Core.Session.optimize session ~estimator:"DBMS B"
          ~cost_model:"PostgreSQL"
          ~allow_nl:engine.Exec.Engine_config.allow_nl_join query
      in
      let result = Core.Session.run session ~engine query choice in
      if result.Exec.Executor.timed_out then
        Printf.printf "%-45s TIMEOUT (>%.0f ms)\n" label
          result.Exec.Executor.runtime_ms
      else
        Printf.printf "%-45s %10.1f ms   (%.1fx the optimal plan)\n" label
          result.Exec.Executor.runtime_ms
          (result.Exec.Executor.runtime_ms
          /. Float.max 0.001 baseline.Exec.Executor.runtime_ms))
    engines;

  print_endline
    "\nThe same bad estimates, three engines: robustness is an engine\n\
     property as much as an optimizer property (paper, Figure 6)."
