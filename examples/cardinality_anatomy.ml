(* Anatomy of a misestimate: walk the paper's example query 13d (ratings
   and release dates of movies by US production companies) and show how
   each emulated system's cardinality estimates drift from the truth as
   the number of joins grows — the per-query version of Figure 3.

   Run with: dune exec examples/cardinality_anatomy.exe *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let systems =
  [ "PostgreSQL"; "DBMS A"; "DBMS B"; "DBMS C"; "HyPer" ]

let () =
  let session = Core.Session.create ~scale:0.006 () in
  let query = Core.Session.job session "13d" in
  let graph = query.Core.Session.graph in
  Printf.printf "Query 13d: %s\n\n" query.Core.Session.sql;

  let truth = Core.Session.true_cardinalities session query in
  let estimators =
    List.map (fun s -> (s, Core.Session.estimator session query s)) systems
  in

  (* For each join count, find the subexpression with the worst
     PostgreSQL error and show everyone's estimate for it. *)
  let subsets = QG.connected_subsets graph in
  let pg = List.assoc "PostgreSQL" estimators in
  Printf.printf "%-6s %12s %12s  %s\n" "joins" "true" "PostgreSQL"
    "(worst-estimated subexpression per level)";
  for joins = 0 to QG.n_relations graph - 1 do
    let level =
      Array.to_list subsets
      |> List.filter (fun s -> Bitset.cardinal s = joins + 1)
    in
    match level with
    | [] -> ()
    | _ ->
        let worst =
          List.fold_left
            (fun acc s ->
              let t = Float.max 1.0 (Cardest.True_card.card truth s) in
              let e = Float.max 1.0 (pg.Cardest.Estimator.subset s) in
              let q = Util.Stat.q_error ~estimate:e ~truth:t in
              match acc with
              | Some (_, bq) when bq >= q -> acc
              | _ -> Some (s, q))
            None level
        in
        let s, _ = Option.get worst in
        let aliases =
          Bitset.to_list s
          |> List.map (fun r -> (QG.relation graph r).QG.alias)
          |> String.concat ","
        in
        Printf.printf "%-6d %12.0f %12.0f  {%s}\n" joins
          (Cardest.True_card.card truth s)
          (pg.Cardest.Estimator.subset s)
          aliases
  done;

  (* Full-query estimates across all systems. *)
  let full = QG.full_set graph in
  Printf.printf "\nFull query (%d joins), true cardinality %.0f:\n"
    (QG.n_edges graph)
    (Cardest.True_card.card truth full);
  List.iter
    (fun (name, est) ->
      let e = est.Cardest.Estimator.subset full in
      let t = Float.max 1.0 (Cardest.True_card.card truth full) in
      Printf.printf "  %-12s estimates %12.0f   (q-error %s)\n" name e
        (Util.Render.float_cell
           (Util.Stat.q_error ~estimate:(Float.max 1.0 e) ~truth:t)))
    estimators;
  print_endline
    "\nUnderestimation compounds with every join under the independence\n\
     assumption - exactly the trend of the paper's Figure 3."
