(* Tests for the util library: PRNG, Zipf, statistics, bitsets,
   rendering. *)

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkf_loose = Alcotest.check (Alcotest.float 1e-6)

(* --- Prng ------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Util.Prng.create 99 and b = Util.Prng.create 99 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Util.Prng.next a) (Util.Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Util.Prng.next a = Util.Prng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_split_independent () =
  let parent = Util.Prng.create 5 in
  let child = Util.Prng.split parent in
  let c1 = Util.Prng.next child and p1 = Util.Prng.next parent in
  Alcotest.(check bool) "split diverges" true (c1 <> p1)

let prng_int_bounds =
  Support.qcheck_case ~name:"Prng.int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Util.Prng.create seed in
      let v = Util.Prng.int t bound in
      v >= 0 && v < bound)

let prng_int_in_bounds =
  Support.qcheck_case ~name:"Prng.int_in inclusive bounds"
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, width) ->
      let hi = lo + width in
      let t = Util.Prng.create seed in
      let v = Util.Prng.int_in t lo hi in
      v >= lo && v <= hi)

let prng_float_bounds =
  Support.qcheck_case ~name:"Prng.float in [0, bound)"
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let t = Util.Prng.create seed in
      let v = Util.Prng.float t bound in
      v >= 0.0 && v < bound)

let test_shuffle_permutation () =
  let t = Util.Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "multiset preserved" (Array.init 50 (fun i -> i)) sorted

let sample_without_replacement_distinct =
  Support.qcheck_case ~name:"sample_without_replacement distinct and in range"
    QCheck.(triple small_int (int_range 0 30) (int_range 30 60))
    (fun (seed, k, n) ->
      let t = Util.Prng.create seed in
      let s = Util.Prng.sample_without_replacement t k n in
      Array.length s = k
      && Array.for_all (fun v -> v >= 0 && v < n) s
      && List.length (List.sort_uniq compare (Array.to_list s)) = k)

(* --- Zipf ------------------------------------------------------------ *)

let test_zipf_pmf_sums_to_one () =
  let z = Util.Zipf.create ~n:500 ~theta:0.9 in
  let sum = Array.fold_left ( +. ) 0.0 (Util.Zipf.weights z) in
  checkf_loose "pmf mass" 1.0 sum

let test_zipf_pmf_decreasing () =
  let z = Util.Zipf.create ~n:100 ~theta:1.1 in
  let w = Util.Zipf.weights z in
  for i = 0 to 98 do
    Alcotest.(check bool) "monotone" true (w.(i) >= w.(i + 1) -. 1e-12)
  done

let test_zipf_uniform_degenerate () =
  let z = Util.Zipf.create ~n:10 ~theta:0.0 in
  Array.iter (fun p -> checkf_loose "uniform" 0.1 p) (Util.Zipf.weights z)

let zipf_sample_in_range =
  Support.qcheck_case ~name:"Zipf.sample in range"
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let z = Util.Zipf.create ~n ~theta:0.8 in
      let prng = Util.Prng.create seed in
      let v = Util.Zipf.sample z prng in
      v >= 0 && v < n)

let test_zipf_skew () =
  let z = Util.Zipf.create ~n:1000 ~theta:1.0 in
  let prng = Util.Prng.create 11 in
  let hits = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let r = Util.Zipf.sample z prng in
    hits.(r) <- hits.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates" true (hits.(0) > hits.(500) * 10)

(* --- Stat ------------------------------------------------------------ *)

let test_q_error_basics () =
  checkf "exact" 1.0 (Util.Stat.q_error ~estimate:42.0 ~truth:42.0);
  checkf "10x over" 10.0 (Util.Stat.q_error ~estimate:1000.0 ~truth:100.0);
  checkf "10x under" 10.0 (Util.Stat.q_error ~estimate:10.0 ~truth:100.0)

let test_floored () =
  checkf "above one" 42.0 (Util.Stat.floored 42.0);
  checkf "below one" 1.0 (Util.Stat.floored 0.3);
  checkf "zero" 1.0 (Util.Stat.floored 0.0);
  checkf "negative" 1.0 (Util.Stat.floored (-5.0))

let q_error_symmetric =
  Support.qcheck_case ~name:"q_error symmetric in estimate/truth"
    QCheck.(pair (float_range 0.1 1e6) (float_range 0.1 1e6))
    (fun (a, b) ->
      Float.abs
        (Util.Stat.q_error ~estimate:a ~truth:b
        -. Util.Stat.q_error ~estimate:b ~truth:a)
      < 1e-9)

let q_error_at_least_one =
  Support.qcheck_case ~name:"q_error >= 1"
    QCheck.(pair (float_range 0.0 1e6) (float_range 0.0 1e6))
    (fun (a, b) -> Util.Stat.q_error ~estimate:a ~truth:b >= 1.0)

let test_percentiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  checkf "median" 3.0 (Util.Stat.median xs);
  checkf "p0" 1.0 (Util.Stat.percentile xs 0.0);
  checkf "p100" 5.0 (Util.Stat.percentile xs 1.0);
  checkf "p25" 2.0 (Util.Stat.percentile xs 0.25);
  checkf "singleton" 9.0 (Util.Stat.median [| 9.0 |])

let test_percentile_empty_raises () =
  Alcotest.check_raises "empty input"
    (Invalid_argument "Stat.percentile: empty input") (fun () ->
      ignore (Util.Stat.percentile [||] 0.5))

let test_geometric_mean () =
  checkf_loose "gm(2,8)" 4.0 (Util.Stat.geometric_mean [| 2.0; 8.0 |]);
  checkf_loose "gm(5)" 5.0 (Util.Stat.geometric_mean [| 5.0 |])

let boxplot_ordered =
  Support.qcheck_case ~name:"boxplot percentiles ordered"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun xs ->
      let b = Util.Stat.boxplot xs in
      b.Util.Stat.p5 <= b.Util.Stat.p25
      && b.Util.Stat.p25 <= b.Util.Stat.p50
      && b.Util.Stat.p50 <= b.Util.Stat.p75
      && b.Util.Stat.p75 <= b.Util.Stat.p95)

let test_linear_regression_exact () =
  let points = Array.init 20 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 7.0)) in
  let fit = Util.Stat.linear_regression points in
  checkf_loose "slope" 3.0 fit.Util.Stat.slope;
  checkf_loose "intercept" 7.0 fit.Util.Stat.intercept;
  checkf_loose "r2" 1.0 fit.Util.Stat.r2

let percentile_monotone =
  Support.qcheck_case ~name:"percentile monotone in p"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 30) (float_range 0.0 100.0))
    (fun xs ->
      let ps = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
      let values = List.map (Util.Stat.percentile xs) ps in
      let rec ordered = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && ordered rest
        | _ -> true
      in
      ordered values)

let percentile_within_range =
  Support.qcheck_case ~name:"percentile within min/max"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 30) (float_range (-50.0) 50.0))
    (fun xs ->
      let p = Util.Stat.percentile xs 0.37 in
      p >= Util.Stat.minimum xs -. 1e-9 && p <= Util.Stat.maximum xs +. 1e-9)

let test_bucketize () =
  let counts = Util.Stat.bucketize ~edges:[| 1.0; 10.0 |] [| 0.5; 1.0; 5.0; 10.0; 100.0 |] in
  check Alcotest.(array int) "buckets" [| 1; 2; 2 |] counts

let bucketize_conserves =
  Support.qcheck_case ~name:"bucketize conserves count"
    QCheck.(array_of_size (QCheck.Gen.int_range 0 40) (float_range (-5.0) 50.0))
    (fun xs ->
      let counts = Util.Stat.bucketize ~edges:[| 0.0; 10.0; 20.0 |] xs in
      Array.fold_left ( + ) 0 counts = Array.length xs)

(* --- Bitset ----------------------------------------------------------- *)

let small_set = QCheck.int_range 0 4095

let bitset_union_like_sets =
  Support.qcheck_case ~name:"bitset union/inter/diff laws"
    QCheck.(pair small_set small_set)
    (fun (a, b) ->
      let module B = Util.Bitset in
      B.union a b = b lor a
      && B.inter a b = (a land b)
      && B.diff a b land b = 0
      && B.union (B.inter a b) (B.diff a b) = a)

let bitset_cardinal =
  Support.qcheck_case ~name:"bitset cardinal = list length" small_set (fun s ->
      Util.Bitset.cardinal s = List.length (Util.Bitset.to_list s))

let bitset_roundtrip =
  Support.qcheck_case ~name:"bitset of_list/to_list roundtrip" small_set
    (fun s -> Util.Bitset.of_list (Util.Bitset.to_list s) = s)

let test_bitset_subsets_iter () =
  let s = Util.Bitset.of_list [ 0; 2; 5 ] in
  let seen = ref [] in
  Util.Bitset.subsets_iter s (fun sub -> seen := sub :: !seen);
  Alcotest.(check int) "2^3 - 2 proper non-empty subsets" 6 (List.length !seen);
  List.iter
    (fun sub ->
      Alcotest.(check bool) "subset" true (Util.Bitset.subset sub s);
      Alcotest.(check bool) "proper" true (sub <> s && sub <> 0))
    !seen

let test_bitset_lowest () =
  Alcotest.(check int) "lowest" 3 (Util.Bitset.lowest (Util.Bitset.of_list [ 3; 7 ]));
  Alcotest.(check int) "full 4" 15 (Util.Bitset.full 4)

(* --- Shard_map --------------------------------------------------------- *)

let shard_map_laws =
  Support.qcheck_case ~name:"shard_map find_or_add/remove/length laws"
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (shards, keys) ->
      let m = Util.Shard_map.create ~shards () in
      let distinct = List.sort_uniq compare keys in
      List.for_all
        (fun k ->
          let v1, c1 = Util.Shard_map.find_or_add m k (fun () -> k * 3) in
          let v2, c2 = Util.Shard_map.find_or_add m k (fun () -> -1) in
          c1 && (not c2) && v1 = k * 3 && v2 = k * 3
          && Util.Shard_map.find_opt m k = Some (k * 3))
        distinct
      && Util.Shard_map.length m = List.length distinct
      && List.for_all
           (fun k ->
             Util.Shard_map.remove m k
             && (not (Util.Shard_map.remove m k))
             && Util.Shard_map.find_opt m k = None)
           distinct
      && Util.Shard_map.length m = 0)

let shard_map_capacity_backstop =
  Support.qcheck_case ~name:"shard_map capacity caps retention, not results"
    QCheck.(pair (int_range 1 8) (int_range 1 64))
    (fun (capacity, n) ->
      let m = Util.Shard_map.create ~shards:1 ~capacity () in
      let results_ok = ref true in
      for k = 0 to n - 1 do
        let v, _created = Util.Shard_map.find_or_add m k (fun () -> k + 100) in
        results_ok := !results_ok && v = k + 100
      done;
      !results_ok
      && Util.Shard_map.length m = min n capacity
      && (n <= capacity
         || (* eviction through remove reopens the slot *)
         Util.Shard_map.remove m 0
         &&
         let v, created = Util.Shard_map.find_or_add m n (fun () -> 7) in
         v = 7 && created))

(* 3 worker domains + the caller race on the same keys: find_or_add must
   elect exactly one winner per key (everyone observing its value), and
   concurrent removes must succeed exactly once per key. *)
let test_shard_map_concurrent () =
  let pool = Util.Domain_pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      let m = Util.Shard_map.create ~shards:4 () in
      let created = Atomic.make 0 in
      let winners = Array.make 4 (-1) in
      Util.Domain_pool.run_workers pool (fun slot ->
          for k = 0 to 99 do
            let v, c =
              Util.Shard_map.find_or_add m k (fun () -> (k * 10) + slot)
            in
            if c then Atomic.incr created;
            if k = 0 then winners.(slot) <- v
          done);
      Alcotest.(check int) "each key created exactly once" 100
        (Atomic.get created);
      Alcotest.(check int) "length counts every key" 100
        (Util.Shard_map.length m);
      Array.iter
        (fun w ->
          Alcotest.(check int) "every domain saw key 0's winner" winners.(0) w)
        winners;
      let removed = Atomic.make 0 in
      Util.Domain_pool.run_workers pool (fun _slot ->
          for k = 0 to 99 do
            if Util.Shard_map.remove m k then Atomic.incr removed
          done);
      Alcotest.(check int) "each key removed exactly once" 100
        (Atomic.get removed);
      Alcotest.(check int) "empty after concurrent removal" 0
        (Util.Shard_map.length m))

(* --- Render ------------------------------------------------------------ *)

let test_render_table () =
  let s =
    Util.Render.table ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "x"; "1" ]; [ "yyy"; "22" ] ]
  in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "mentions rows" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

let test_render_float_cell () =
  check Alcotest.string "small float" "1.50" (Util.Render.float_cell 1.5);
  check Alcotest.string "integral" "42" (Util.Render.float_cell 42.0);
  check Alcotest.string "large" "1677" (Util.Render.float_cell 1677.0);
  Alcotest.(check bool) "scientific" true
    (String.contains (Util.Render.float_cell 2.0e7) 'e')

let test_render_percent () =
  check Alcotest.string "25%" "25%" (Util.Render.percent_cell 0.253);
  check Alcotest.string "5.3%" "5.3%" (Util.Render.percent_cell 0.053)

let test_render_boxplot () =
  let b = Util.Stat.boxplot [| 1.0; 10.0; 100.0; 1000.0 |] in
  let s =
    Util.Render.log_boxplot_rows ~lo:0.1 ~hi:1e4
      [ ("row", Some b); ("empty", None) ]
  in
  Alcotest.(check bool) "median marker" true (String.contains s '|');
  Alcotest.(check bool) "no data row" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> String.length l >= 7 && String.sub l 0 5 = "empty"))

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    prng_int_bounds;
    prng_int_in_bounds;
    prng_float_bounds;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    sample_without_replacement_distinct;
    Alcotest.test_case "zipf pmf mass" `Quick test_zipf_pmf_sums_to_one;
    Alcotest.test_case "zipf pmf decreasing" `Quick test_zipf_pmf_decreasing;
    Alcotest.test_case "zipf uniform theta=0" `Quick test_zipf_uniform_degenerate;
    zipf_sample_in_range;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "q-error basics" `Quick test_q_error_basics;
    Alcotest.test_case "floored" `Quick test_floored;
    q_error_symmetric;
    q_error_at_least_one;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "percentile empty" `Quick test_percentile_empty_raises;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    boxplot_ordered;
    Alcotest.test_case "linear regression" `Quick test_linear_regression_exact;
    percentile_monotone;
    percentile_within_range;
    Alcotest.test_case "bucketize" `Quick test_bucketize;
    bucketize_conserves;
    bitset_union_like_sets;
    bitset_cardinal;
    bitset_roundtrip;
    Alcotest.test_case "bitset subsets_iter" `Quick test_bitset_subsets_iter;
    Alcotest.test_case "bitset lowest/full" `Quick test_bitset_lowest;
    shard_map_laws;
    shard_map_capacity_backstop;
    Alcotest.test_case "shard_map concurrent winners" `Quick
      test_shard_map_concurrent;
    Alcotest.test_case "render table" `Quick test_render_table;
    Alcotest.test_case "render float cell" `Quick test_render_float_cell;
    Alcotest.test_case "render percent" `Quick test_render_percent;
    Alcotest.test_case "render boxplot" `Quick test_render_boxplot;
  ]
