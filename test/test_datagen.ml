(* Tests for the data generators: schema shape, determinism, referential
   integrity, and — crucially — the planted skew and correlations that
   make the workload hard for estimators. *)

let imdb = Support.imdb_mid

let col db table name =
  let t = Storage.Database.find_table db table in
  Storage.Table.find_column t name

let test_schema_complete () =
  let db = Lazy.force imdb in
  Alcotest.(check (list string))
    "21 tables" Datagen.Imdb_gen.table_names
    (Storage.Database.table_names db)

let test_determinism () =
  let a = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
  let b = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
  List.iter
    (fun name ->
      let ta = Storage.Database.find_table a name in
      let tb = Storage.Database.find_table b name in
      Alcotest.(check int)
        (name ^ " row count")
        (Storage.Table.row_count ta) (Storage.Table.row_count tb);
      (* Spot-check some cell values. *)
      for row = 0 to min 20 (Storage.Table.row_count ta - 1) do
        for c = 0 to Storage.Table.column_count ta - 1 do
          Alcotest.(check string) "cell"
            (Storage.Value.to_string (Storage.Table.value ta ~row ~col:c))
            (Storage.Value.to_string (Storage.Table.value tb ~row ~col:c))
        done
      done)
    Datagen.Imdb_gen.table_names

let test_seeds_differ () =
  let a = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
  let b = Datagen.Imdb_gen.generate ~seed:6 ~scale:0.0004 () in
  let va = Storage.Column.to_codes (col a "title" "production_year") in
  let vb = Storage.Column.to_codes (col b "title" "production_year") in
  Alcotest.(check bool) "different data" true (va <> vb)

let test_ids_contiguous () =
  let db = Lazy.force imdb in
  List.iter
    (fun name ->
      let t = Storage.Database.find_table db name in
      let ids = Storage.Column.to_codes (Storage.Table.find_column t "id") in
      Array.iteri
        (fun i v ->
          if v <> i + 1 then Alcotest.failf "%s id at %d is %d" name i v)
        ids)
    [ "title"; "name"; "cast_info"; "keyword"; "company_name" ]

let test_fk_integrity () =
  let db = Lazy.force imdb in
  let check_fk table fk target =
    let data = Storage.Column.to_codes (col db table fk) in
    let n = Storage.Table.row_count (Storage.Database.find_table db target) in
    Array.iter
      (fun v ->
        if v <> Storage.Value.null_code && (v < 1 || v > n) then
          Alcotest.failf "%s.%s = %d out of range (target %s has %d)" table fk v
            target n)
      data
  in
  check_fk "cast_info" "movie_id" "title";
  check_fk "cast_info" "person_id" "name";
  check_fk "cast_info" "role_id" "role_type";
  check_fk "movie_companies" "company_id" "company_name";
  check_fk "movie_info" "movie_id" "title";
  check_fk "movie_info" "info_type_id" "info_type";
  check_fk "movie_keyword" "keyword_id" "keyword";
  check_fk "title" "kind_id" "kind_type";
  check_fk "title" "episode_of_id" "title";
  check_fk "person_info" "person_id" "name"

let test_popularity_skew () =
  (* The shared Zipf: the most popular movie must collect far more cast
     entries than a mid-ranked one. *)
  let db = Lazy.force imdb in
  let movie = Storage.Column.to_codes (col db "cast_info" "movie_id") in
  let titles = Storage.Table.row_count (Storage.Database.find_table db "title") in
  let counts = Array.make (titles + 1) 0 in
  Array.iter (fun m -> if m >= 1 then counts.(m) <- counts.(m) + 1) movie;
  let mid = titles / 2 in
  Alcotest.(check bool)
    (Printf.sprintf "top movie (%d) >> mid movie (%d)" counts.(1) counts.(mid))
    true
    (counts.(1) > 10 * max 1 counts.(mid))

let test_gender_role_correlation () =
  let db = Lazy.force imdb in
  let role = Storage.Column.to_codes (col db "cast_info" "role_id") in
  let person = Storage.Column.to_codes (col db "cast_info" "person_id") in
  let gender = col db "name" "gender" in
  let female_code = Storage.Column.encode gender (Storage.Value.Str "f") in
  let f_actress = ref 0 and actress = ref 0 in
  Array.iteri
    (fun i r ->
      if r = 2 (* actress *) then begin
        incr actress;
        if Some (Storage.Column.get gender (person.(i) - 1)) = female_code then
          incr f_actress
      end)
    role;
  Alcotest.(check bool) "actresses are female" true
    (!actress > 0 && float_of_int !f_actress /. float_of_int !actress > 0.95)

let test_join_crossing_correlation () =
  (* Movies with a US production company carry info 'USA' much more
     often: the correlation no estimator can see. *)
  let db = Lazy.force imdb in
  let mc_movie = Storage.Column.to_codes (col db "movie_companies" "movie_id") in
  let mc_type = Storage.Column.to_codes (col db "movie_companies" "company_type_id") in
  let mc_company = Storage.Column.to_codes (col db "movie_companies" "company_id") in
  let country = col db "company_name" "country_code" in
  let us = Storage.Column.encode country (Storage.Value.Str "[us]") in
  let titles = Storage.Table.row_count (Storage.Database.find_table db "title") in
  let has_us = Array.make (titles + 1) false in
  Array.iteri
    (fun i m ->
      if
        mc_type.(i) = 1
        && Some (Storage.Column.get country (mc_company.(i) - 1)) = us
      then has_us.(m) <- true)
    mc_movie;
  let mi_movie = Storage.Column.to_codes (col db "movie_info" "movie_id") in
  let mi_type = Storage.Column.to_codes (col db "movie_info" "info_type_id") in
  let mi_info = col db "movie_info" "info" in
  let usa = Storage.Column.encode mi_info (Storage.Value.Str "USA") in
  let countries_id = Datagen.Vocab.info_type_id "countries" in
  let us_and_usa = ref 0 and us_total = ref 0 in
  let other_usa = ref 0 and other_total = ref 0 in
  Array.iteri
    (fun i m ->
      if mi_type.(i) = countries_id then
        if has_us.(m) then begin
          incr us_total;
          if Some (Storage.Column.get mi_info i) = usa then incr us_and_usa
        end
        else begin
          incr other_total;
          if Some (Storage.Column.get mi_info i) = usa then incr other_usa
        end)
    mi_movie;
  let p_us = float_of_int !us_and_usa /. float_of_int (max 1 !us_total) in
  let p_other = float_of_int !other_usa /. float_of_int (max 1 !other_total) in
  Alcotest.(check bool)
    (Printf.sprintf "P(USA|us company)=%.2f >> P(USA|other)=%.2f" p_us p_other)
    true
    (p_us > p_other +. 0.3)

let test_rating_strings_ordered () =
  (* Ratings are fixed-width "d.d" strings so lexicographic comparison is
     numeric comparison — required by the miidx.info > '8.0' predicates. *)
  let db = Lazy.force imdb in
  let t = Storage.Database.find_table db "movie_info_idx" in
  let ty = Storage.Column.to_codes (Storage.Table.find_column t "info_type_id") in
  let info = Storage.Table.find_column t "info" in
  let rating_id = Datagen.Vocab.info_type_id "rating" in
  Array.iteri
    (fun i v ->
      if v = rating_id then
        match Storage.Column.value info i with
        | Storage.Value.Str s ->
            if String.length s <> 3 || s.[1] <> '.' then
              Alcotest.failf "bad rating string %s" s
        | _ -> Alcotest.fail "rating must be a string")
    ty

let test_tpch_generator () =
  let db = Lazy.force Support.tpch in
  Alcotest.(check (list string))
    "7 tables" Datagen.Tpch_gen.table_names
    (Storage.Database.table_names db);
  (* Key inclusion: every lineitem order key exists. *)
  let li = Storage.Column.to_codes (col db "lineitem" "l_orderkey") in
  let orders = Storage.Table.row_count (Storage.Database.find_table db "orders") in
  Array.iter
    (fun v ->
      if v < 1 || v > orders then Alcotest.failf "orderkey %d out of range" v)
    li;
  (* Uniformity: order years roughly evenly spread. *)
  let years = Storage.Column.to_codes (col db "orders" "o_orderyear") in
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun y ->
      Hashtbl.replace counts y (1 + Option.value ~default:0 (Hashtbl.find_opt counts y)))
    years;
  let values = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
  let mx = List.fold_left max 0 values and mn = List.fold_left min max_int values in
  Alcotest.(check bool) "uniform years" true (float_of_int mx /. float_of_int mn < 1.5)

let suite =
  [
    Alcotest.test_case "21-table schema" `Quick test_schema_complete;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "ids contiguous" `Quick test_ids_contiguous;
    Alcotest.test_case "FK integrity" `Quick test_fk_integrity;
    Alcotest.test_case "popularity skew" `Quick test_popularity_skew;
    Alcotest.test_case "gender-role correlation" `Quick test_gender_role_correlation;
    Alcotest.test_case "join-crossing correlation" `Quick
      test_join_crossing_correlation;
    Alcotest.test_case "rating strings ordered" `Quick test_rating_strings_ordered;
    Alcotest.test_case "tpch generator" `Quick test_tpch_generator;
  ]
