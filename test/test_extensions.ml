(* Tests for the future-work extensions: the join-sampling estimator and
   adaptive re-optimization. *)

module QG = Query.Query_graph
module Bitset = Util.Bitset

let db = Support.imdb_mid

let bind sql = Sqlfront.Binder.bind_sql (Lazy.force db) ~name:"ext" sql

let test_sample_rates () =
  let s = Cardest.Join_sample.create (Lazy.force db) in
  (* Dimension tables stay whole; fact tables are sampled. *)
  Alcotest.(check (float 0.0)) "kind_type whole" 1.0
    (Cardest.Join_sample.sampling_rate s "kind_type");
  Alcotest.(check (float 0.0)) "cast_info sampled" 0.1
    (Cardest.Join_sample.sampling_rate s "cast_info");
  (try
     ignore (Cardest.Join_sample.sampling_rate s "nope");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_sample_sizes_plausible () =
  let s = Cardest.Join_sample.create (Lazy.force db) in
  let sdb = Cardest.Join_sample.sampled_db s in
  let orig = Storage.Database.find_table (Lazy.force db) "cast_info" in
  let sampled = Storage.Database.find_table sdb "cast_info" in
  let expected = float_of_int (Storage.Table.row_count orig) *. 0.1 in
  let got = float_of_int (Storage.Table.row_count sampled) in
  Alcotest.(check bool)
    (Printf.sprintf "10%% sample (%.0f of %d)" got (Storage.Table.row_count orig))
    true
    (Float.abs (got -. expected) < 0.3 *. expected);
  (* Dimension tables are shared untouched. *)
  Alcotest.(check bool) "kind_type shared" true
    (Storage.Database.find_table sdb "kind_type"
    == Storage.Database.find_table (Lazy.force db) "kind_type")

let test_sample_estimator_unbiased_direction () =
  (* On an unfiltered FK join, the scaled sample estimate must land
     within a factor of ~2 of the truth (it is unbiased; variance at
     this size is modest). *)
  let b =
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
       t.id = mk.movie_id"
  in
  let g = b.Sqlfront.Binder.graph in
  let s = Cardest.Join_sample.create (Lazy.force db) in
  let est = Cardest.Join_sample.estimator s g in
  let tc = Cardest.True_card.compute g in
  let full = QG.full_set g in
  let estimate = est.Cardest.Estimator.subset full in
  let truth = Cardest.True_card.card tc full in
  Alcotest.(check bool)
    (Printf.sprintf "within 2x (est %.0f true %.0f)" estimate truth)
    true
    (estimate > truth /. 2.0 && estimate < truth *. 2.0)

let test_sample_estimator_sees_correlation () =
  (* The join-crossing correlation (US companies <-> 'USA' info): the
     sample-based estimate must beat the independence-based one. *)
  let database = Lazy.force db in
  let b =
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_companies AS mc, \
       company_name AS cn, movie_info AS mi, info_type AS it WHERE \
       t.id = mc.movie_id AND mc.company_id = cn.id AND t.id = mi.movie_id \
       AND mi.info_type_id = it.id AND cn.country_code = '[us]' AND \
       it.info = 'countries' AND mi.info = 'USA'"
  in
  let g = b.Sqlfront.Binder.graph in
  let truth =
    Float.max 1.0 (Cardest.True_card.card (Cardest.True_card.compute g) (QG.full_set g))
  in
  let sample_est =
    (Cardest.Join_sample.estimator (Cardest.Join_sample.create database) g)
      .Cardest.Estimator.subset (QG.full_set g)
  in
  let pg_est =
    (Cardest.Systems.postgres (Dbstats.Analyze.create database)
       { Cardest.Systems.db = database; graph = g })
      .Cardest.Estimator.subset (QG.full_set g)
  in
  let q est = Util.Stat.q_error ~estimate:(Float.max 1.0 est) ~truth in
  Alcotest.(check bool)
    (Printf.sprintf "sampling q=%.1f <= PG q=%.1f" (q sample_est) (q pg_est))
    true
    (q sample_est <= q pg_est)

let test_adaptive_runs_and_is_exact () =
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let q = Workload.Job.find "2a" in
  let b = Sqlfront.Binder.bind_sql database ~name:"2a" q.Workload.Job.sql in
  let g = b.Sqlfront.Binder.graph in
  let analyze = Dbstats.Analyze.create database in
  let est =
    Cardest.Systems.postgres analyze { Cardest.Systems.db = database; graph = g }
  in
  let outcome =
    Core.Adaptive.run ~db:database ~graph:g ~config:Exec.Engine_config.robust
      ~model:Cost.Cost_model.postgres ~estimator:est ()
  in
  let truth =
    int_of_float (Cardest.True_card.card (Cardest.True_card.compute g) (QG.full_set g))
  in
  Alcotest.(check int) "exact rows" truth outcome.Core.Adaptive.result.Exec.Executor.rows;
  Alcotest.(check bool) "probe accounting consistent" true
    (outcome.Core.Adaptive.probe_work >= 0
    && outcome.Core.Adaptive.probes <= 3
    && (outcome.Core.Adaptive.probes > 0) = (outcome.Core.Adaptive.probe_work > 0))

let test_adaptive_no_probes_when_confident () =
  (* With the exact oracle as estimator nothing is suspicious, so the
     adaptive layer must not probe at all. *)
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let b =
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
       t.id = mk.movie_id AND t.production_year > 2000"
  in
  let g = b.Sqlfront.Binder.graph in
  let oracle = Cardest.True_card.estimator (Cardest.True_card.compute g) in
  let outcome =
    Core.Adaptive.run ~db:database ~graph:g ~config:Exec.Engine_config.robust
      ~model:Cost.Cost_model.postgres ~estimator:oracle ()
  in
  Alcotest.(check int) "no probes" 0 outcome.Core.Adaptive.probes;
  Alcotest.(check int) "no probe work" 0 outcome.Core.Adaptive.probe_work

let test_qbound () =
  Alcotest.(check (float 1e-9)) "bound math" 16.0
    (Cardest.Qbound.cost_ratio_bound ~q:2.0);
  let b =
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk WHERE \
       t.id = mk.movie_id"
  in
  let g = b.Sqlfront.Binder.graph in
  let truth = Cardest.True_card.compute g in
  (* The oracle has q = 1 by definition. *)
  Alcotest.(check (float 1e-9)) "oracle q" 1.0
    (Cardest.Qbound.worst_q ~truth (Cardest.True_card.estimator truth) g);
  (* Any other estimator has q >= 1. *)
  let database = Lazy.force db in
  let pg =
    Cardest.Systems.postgres (Dbstats.Analyze.create database)
      { Cardest.Systems.db = database; graph = g }
  in
  Alcotest.(check bool) "pg q >= 1" true (Cardest.Qbound.worst_q ~truth pg g >= 1.0)

let test_qbound_holds_on_query () =
  (* The theorem, end to end on one query: actual cost ratio <= q^4. *)
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.No_indexes;
  let q = Workload.Job.find "3a" in
  let b = Sqlfront.Binder.bind_sql database ~name:"3a" q.Workload.Job.sql in
  let g = b.Sqlfront.Binder.graph in
  let truth = Cardest.True_card.compute g in
  let pg =
    Cardest.Systems.postgres (Dbstats.Analyze.create database)
      { Cardest.Systems.db = database; graph = g }
  in
  let search card =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db:database ~card ()
  in
  let plan, _ = Planner.Dp.optimize (search pg.Cardest.Estimator.subset) in
  let _, optimal = Planner.Dp.optimize (search (Cardest.True_card.card truth)) in
  let env =
    { Cost.Cost_model.graph = g; db = database; card = Cardest.True_card.card truth }
  in
  let actual = Cost.Cost_model.plan_cost Cost.Cost_model.cmm env plan /. optimal in
  let bound =
    Cardest.Qbound.cost_ratio_bound ~q:(Cardest.Qbound.worst_q ~truth pg g)
  in
  Alcotest.(check bool)
    (Printf.sprintf "actual %.2f <= bound %.1f" actual bound)
    true (actual <= bound +. 1e-6)

let test_extensions_render () =
  let mini =
    List.filter
      (fun q -> List.mem q.Workload.Job.name [ "1a"; "2b" ])
      Workload.Job.all
  in
  let h = Experiments.Harness.create ~seed:5 ~scale:0.0006 ~queries:mini () in
  let out = Experiments.Exp_extensions.render h in
  Alcotest.(check bool) "mentions join sampling" true
    (let needle = "join sampling" in
     let n = String.length needle in
     let found = ref false in
     String.iteri
       (fun i _ ->
         if i + n <= String.length out && String.sub out i n = needle then
           found := true)
       out;
     !found)

let suite =
  [
    Alcotest.test_case "sample rates" `Quick test_sample_rates;
    Alcotest.test_case "sample sizes" `Quick test_sample_sizes_plausible;
    Alcotest.test_case "sampling unbiased" `Quick test_sample_estimator_unbiased_direction;
    Alcotest.test_case "sampling sees correlations" `Quick
      test_sample_estimator_sees_correlation;
    Alcotest.test_case "adaptive exact" `Quick test_adaptive_runs_and_is_exact;
    Alcotest.test_case "adaptive skips confident plans" `Quick
      test_adaptive_no_probes_when_confident;
    Alcotest.test_case "q-bound basics" `Quick test_qbound;
    Alcotest.test_case "q-bound holds" `Quick test_qbound_holds_on_query;
    Alcotest.test_case "extensions render" `Quick test_extensions_render;
  ]
