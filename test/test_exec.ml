(* Tests for the executor: the join hash table, result correctness across
   different plans for the same query, work accounting, timeouts and
   configuration gating. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

(* --- Join_table ------------------------------------------------------------ *)

let test_join_table_basics () =
  let jt = Exec.Join_table.create ~estimated_rows:100.0 ~resizable:false () in
  let h1 = Exec.Join_table.mix 42 and h2 = Exec.Join_table.mix 43 in
  ignore (Exec.Join_table.insert jt ~hash:h1 ~payload:1);
  ignore (Exec.Join_table.insert jt ~hash:h1 ~payload:2);
  ignore (Exec.Join_table.insert jt ~hash:h2 ~payload:3);
  let found = ref [] in
  ignore (Exec.Join_table.probe jt ~hash:h1 ~f:(fun p -> found := p :: !found));
  Alcotest.(check (list int)) "both payloads" [ 1; 2 ] (List.sort compare !found);
  Alcotest.(check int) "entries" 3 (Exec.Join_table.entry_count jt)

let test_join_table_undersized_chains () =
  (* A fixed-size table sized for 1 row (floored at 1024 buckets, like
     PostgreSQL) forced to hold 64k entries: probes walk long chains,
     which the work accounting must reflect. *)
  let jt = Exec.Join_table.create ~estimated_rows:1.0 ~resizable:false () in
  for i = 0 to 65535 do
    ignore (Exec.Join_table.insert jt ~hash:(Exec.Join_table.mix i) ~payload:i)
  done;
  Alcotest.(check int) "floored bucket array" 1024 (Exec.Join_table.bucket_count jt);
  (* 64k entries over 1024 buckets: ~64-entry chains, charged at a
     quarter tuple each. *)
  let work = Exec.Join_table.probe jt ~hash:(Exec.Join_table.mix 7) ~f:(fun _ -> ()) in
  Alcotest.(check bool)
    (Printf.sprintf "long chain (%d)" work)
    true (work > 10)

let test_join_table_resizing () =
  let jt = Exec.Join_table.create ~estimated_rows:1.0 ~resizable:true () in
  for i = 0 to 65535 do
    ignore (Exec.Join_table.insert jt ~hash:(Exec.Join_table.mix i) ~payload:i)
  done;
  Alcotest.(check bool) "grew" true (Exec.Join_table.bucket_count jt >= 65536);
  let work = Exec.Join_table.probe jt ~hash:(Exec.Join_table.mix 7) ~f:(fun _ -> ()) in
  Alcotest.(check bool) "short chain" true (work < 10)

let join_table_finds_all =
  Support.qcheck_case ~name:"join table probe finds exactly inserted hashes"
    QCheck.(small_int)
    (fun seed ->
      let prng = Util.Prng.create seed in
      let jt =
        Exec.Join_table.create ~estimated_rows:64.0
          ~resizable:(Util.Prng.bool prng) ()
      in
      let keys = Array.init 200 (fun _ -> Util.Prng.int prng 50) in
      Array.iteri
        (fun payload k ->
          ignore (Exec.Join_table.insert jt ~hash:(Exec.Join_table.mix k) ~payload))
        keys;
      List.for_all
        (fun probe ->
          let found = ref 0 in
          ignore
            (Exec.Join_table.probe jt ~hash:(Exec.Join_table.mix probe)
               ~f:(fun p -> if keys.(p) = probe then incr found));
          let expected = Array.fold_left (fun a k -> if k = probe then a + 1 else a) 0 keys in
          !found = expected)
        [ 0; 7; 49 ])

(* --- Executor ------------------------------------------------------------------ *)

let micro ?(relations = 3) seed =
  let prng = Util.Prng.create seed in
  let db = Support.micro_db prng ~tables:relations ~rows:25 in
  let g = Support.micro_query prng db ~relations ~extra_edges:0 in
  (db, g)

let run ?(config = Exec.Engine_config.robust) db g plan =
  Exec.Executor.run ~db ~graph:g ~config ~size_est:(fun _ -> 64.0) plan

let all_plans_agree =
  Support.qcheck_case ~count:25 ~name:"hash/INL/NL plans return identical row counts"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      let db, g = micro ~relations seed in
      Storage.Database.set_index_config db Storage.Database.Pk_fk;
      let expected = Support.brute_force_count g (QG.full_set g) in
      let tc = Cardest.True_card.compute g in
      let plans =
        [
          fst (Planner.Dp.optimize
                 (Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
                    ~card:(Cardest.True_card.card tc) ()));
          fst (Planner.Dp.optimize
                 (Planner.Search.create ~allow_nl:true
                    ~model:Cost.Cost_model.postgres ~graph:g ~db
                    ~card:(fun _ -> 1.0)
                    ()));
          fst (Planner.Quickpick.sample
                 (Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
                    ~card:(Cardest.True_card.card tc) ())
                 (Util.Prng.create seed));
          fst (Planner.Dp.optimize
                 (Planner.Search.create ~shape:Planner.Search.Only_left_deep
                    ~model:Cost.Cost_model.cmm ~graph:g ~db
                    ~card:(Cardest.True_card.card tc) ()));
        ]
      in
      List.for_all
        (fun plan ->
          let result = run ~config:Exec.Engine_config.default_9_4 db g plan in
          result.Exec.Executor.rows = expected)
        plans)

let merge_join_agrees_with_hash =
  Support.qcheck_case ~count:25 ~name:"sort-merge join = hash join results"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      let db, g = micro ~relations seed in
      Storage.Database.set_index_config db Storage.Database.No_indexes;
      let expected = Support.brute_force_count g (QG.full_set g) in
      (* Force sort-merge everywhere by disabling hash joins. *)
      let tc = Cardest.True_card.compute g in
      let s =
        Planner.Search.create ~allow_hash:false ~model:Cost.Cost_model.cmm
          ~graph:g ~db ~card:(Cardest.True_card.card tc) ()
      in
      let plan, _ = Planner.Dp.optimize s in
      let all_merge =
        Plan.fold
          (fun acc (n : Plan.t) ->
            acc
            && match n.Plan.op with
               | Plan.Join { algo; _ } -> algo = Plan.Merge_join
               | Plan.Scan _ -> true)
          true plan
      in
      let result = run db g plan in
      all_merge && result.Exec.Executor.rows = expected)

let test_merge_join_costs_more_than_hash () =
  (* The paper's work_mem observation: in memory, hashing beats
     sort-merge. Same join, both algorithms. *)
  let db = Lazy.force Support.imdb_mid in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let b =
    Sqlfront.Binder.bind_sql db ~name:"m"
      "SELECT MIN(t.title) FROM title AS t, cast_info AS ci WHERE \
       t.id = ci.movie_id"
  in
  let g = b.Sqlfront.Binder.graph in
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let work algo =
    (run db g (Plan.join algo ~outer ~inner)).Exec.Executor.work
  in
  Alcotest.(check bool) "merge > hash" true
    (work Plan.Merge_join > work Plan.Hash_join)

let test_executor_rows_match_truth () =
  let db = Lazy.force Support.imdb in
  Storage.Database.set_index_config db Storage.Database.Pk_only;
  let b =
    Sqlfront.Binder.bind_sql db ~name:"x"
      "SELECT MIN(t.title) FROM title AS t, cast_info AS ci, name AS n WHERE \
       t.id = ci.movie_id AND ci.person_id = n.id AND n.gender = 'f' AND \
       t.production_year > 2000"
  in
  let g = b.Sqlfront.Binder.graph in
  let tc = Cardest.True_card.compute g in
  let s =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
      ~card:(Cardest.True_card.card tc) ()
  in
  let plan, _ = Planner.Dp.optimize s in
  let result = run db g plan in
  Alcotest.(check int) "rows = true card"
    (int_of_float (Cardest.True_card.card tc (QG.full_set g)))
    result.Exec.Executor.rows;
  Alcotest.(check bool) "work positive" true (result.Exec.Executor.work > 0);
  Alcotest.(check bool) "no timeout" true (not result.Exec.Executor.timed_out)

let test_executor_mins () =
  let db = Lazy.force Support.imdb in
  Storage.Database.set_index_config db Storage.Database.Pk_only;
  let b =
    Sqlfront.Binder.bind_sql db ~name:"x"
      "SELECT MIN(t.production_year) FROM title AS t, movie_keyword AS mk \
       WHERE t.id = mk.movie_id"
  in
  let g = b.Sqlfront.Binder.graph in
  let tc = Cardest.True_card.compute g in
  let s =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
      ~card:(Cardest.True_card.card tc) ()
  in
  let plan, _ = Planner.Dp.optimize s in
  let result =
    Exec.Executor.run ~db ~graph:g ~config:Exec.Engine_config.robust
      ~size_est:(Cardest.True_card.card tc)
      ~projections:b.Sqlfront.Binder.projections plan
  in
  (* Compute MIN(production_year) over movies with keywords manually. *)
  let t = Storage.Database.find_table db "title" in
  let mk = Storage.Database.find_table db "movie_keyword" in
  let year = Storage.Column.to_codes (Storage.Table.find_column t "production_year") in
  let movie = Storage.Column.to_codes (Storage.Table.find_column mk "movie_id") in
  let best = ref max_int in
  Array.iter
    (fun m ->
      let y = year.(m - 1) in
      if y <> Storage.Value.null_code && y < !best then best := y)
    movie;
  match result.Exec.Executor.mins with
  | [ Storage.Value.Int y ] -> Alcotest.(check int) "min year" !best y
  | other ->
      Alcotest.failf "unexpected mins: %s"
        (String.concat "," (List.map Storage.Value.to_string other))

let test_executor_timeout () =
  let db, g = micro ~relations:3 5 in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let tc = Cardest.True_card.compute g in
  let s =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
      ~card:(Cardest.True_card.card tc) ()
  in
  let plan, _ = Planner.Dp.optimize s in
  let config = { Exec.Engine_config.robust with Exec.Engine_config.work_limit = 10 } in
  let result = run ~config db g plan in
  Alcotest.(check bool) "timed out" true result.Exec.Executor.timed_out;
  Alcotest.(check int) "work = limit" 10 result.Exec.Executor.work

let test_nl_disabled_raises () =
  let db, g = micro ~relations:2 9 in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let e = List.hd (QG.edges g) in
  let plan =
    Plan.join Plan.Nl_join ~outer:(Plan.scan e.QG.left) ~inner:(Plan.scan e.QG.right)
  in
  (try
     ignore (run ~config:Exec.Engine_config.no_nl db g plan);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* Allowed under the stock engine. *)
  ignore (run ~config:Exec.Engine_config.default_9_4 db g plan)

let test_inl_without_index_raises () =
  let db, g = micro ~relations:2 10 in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let e = List.hd (QG.edges g) in
  let plan =
    Plan.join Plan.Index_nl_join ~outer:(Plan.scan e.QG.left)
      ~inner:(Plan.scan e.QG.right)
  in
  try
    ignore (run db g plan);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_nl_charges_quadratic_work () =
  let db, g = micro ~relations:2 12 in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  let nl = Plan.join Plan.Nl_join ~outer ~inner in
  let hj = Plan.join Plan.Hash_join ~outer ~inner in
  let run_w plan = (run ~config:Exec.Engine_config.default_9_4 db g plan).Exec.Executor.work in
  Alcotest.(check bool) "NL costs more work than HJ" true (run_w nl > run_w hj)

let test_undersized_hash_table_penalty () =
  (* The 9.4 pathology: a 200k-row build side crammed into the
     1024-bucket floor (estimate says 1 row) makes every probe walk a
     ~200-entry chain; the resizing engine pays rehashing instead. *)
  let db = Storage.Database.create () in
  let some_init n f = Array.init n (fun i -> Some (f i)) in
  Storage.Database.add_table db
    (Storage.Table.create ~name:"build" ~pk:"id"
       [| Storage.Column.of_ints ~name:"id" (some_init 200_000 (fun i -> i)) |]);
  Storage.Database.add_table db
    (Storage.Table.create ~name:"probe" ~fks:[ "build_id" ]
       [|
         Storage.Column.of_ints ~name:"id" (some_init 40_000 (fun i -> i));
         Storage.Column.of_ints ~name:"build_id"
           (some_init 40_000 (fun i -> (i * 7919) mod 200_000));
       |]);
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let rels =
    [|
      { QG.idx = 0; alias = "p"; table = Storage.Database.find_table db "probe"; preds = [] };
      { QG.idx = 1; alias = "b"; table = Storage.Database.find_table db "build"; preds = [] };
    |]
  in
  let g =
    QG.create ~name:"hash-penalty" rels
      [ { QG.left = 0; left_col = 1; right = 1; right_col = 0; pk_side = Some `Right } ]
  in
  let plan = Plan.join Plan.Hash_join ~outer:(Plan.scan 0) ~inner:(Plan.scan 1) in
  let work config =
    (Exec.Executor.run ~db ~graph:g ~config ~size_est:(fun _ -> 1.0) plan)
      .Exec.Executor.work
  in
  let fixed_under = work Exec.Engine_config.no_nl in
  let resizing = work Exec.Engine_config.robust in
  Alcotest.(check bool)
    (Printf.sprintf "undersized fixed (%d) slower than resizing (%d)" fixed_under
       resizing)
    true
    (fixed_under > 2 * resizing)

let test_engine_configs () =
  Alcotest.(check bool) "default allows NL" true
    Exec.Engine_config.default_9_4.Exec.Engine_config.allow_nl_join;
  Alcotest.(check bool) "no_nl forbids" false
    Exec.Engine_config.no_nl.Exec.Engine_config.allow_nl_join;
  Alcotest.(check bool) "robust resizes" true
    Exec.Engine_config.robust.Exec.Engine_config.resize_hash_tables

let suite =
  [
    Alcotest.test_case "join table basics" `Quick test_join_table_basics;
    Alcotest.test_case "undersized chains" `Quick test_join_table_undersized_chains;
    Alcotest.test_case "resizing" `Quick test_join_table_resizing;
    join_table_finds_all;
    all_plans_agree;
    merge_join_agrees_with_hash;
    Alcotest.test_case "merge join slower in memory" `Quick
      test_merge_join_costs_more_than_hash;
    Alcotest.test_case "rows match truth" `Quick test_executor_rows_match_truth;
    Alcotest.test_case "min projections" `Quick test_executor_mins;
    Alcotest.test_case "timeout" `Quick test_executor_timeout;
    Alcotest.test_case "NL gating" `Quick test_nl_disabled_raises;
    Alcotest.test_case "INL needs index" `Quick test_inl_without_index_raises;
    Alcotest.test_case "NL quadratic work" `Quick test_nl_charges_quadratic_work;
    Alcotest.test_case "undersized hash penalty" `Quick
      test_undersized_hash_table_penalty;
    Alcotest.test_case "engine configs" `Quick test_engine_configs;
  ]
