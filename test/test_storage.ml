(* Tests for the storage library: dictionaries, columns, tables, hash
   indexes, and the catalog with its physical-design switching. *)

let check = Alcotest.check

(* --- Dict --------------------------------------------------------------- *)

let test_dict_roundtrip () =
  let d = Storage.Dict.create () in
  let a = Storage.Dict.intern d "alpha" in
  let b = Storage.Dict.intern d "beta" in
  let a' = Storage.Dict.intern d "alpha" in
  check Alcotest.int "stable code" a a';
  Alcotest.(check bool) "codes differ" true (a <> b);
  check Alcotest.string "decode" "beta" (Storage.Dict.get d b);
  check Alcotest.int "size" 2 (Storage.Dict.size d);
  check Alcotest.(option int) "find" (Some a) (Storage.Dict.find_opt d "alpha");
  check Alcotest.(option int) "find missing" None (Storage.Dict.find_opt d "gamma")

let test_dict_get_invalid () =
  let d = Storage.Dict.create () in
  Alcotest.check_raises "unknown code" (Invalid_argument "Dict.get: unknown code")
    (fun () -> ignore (Storage.Dict.get d 3))

let test_dict_matching_codes () =
  let d = Storage.Dict.create () in
  List.iter (fun s -> ignore (Storage.Dict.intern d s)) [ "cat"; "car"; "dog" ];
  let bitmap = Storage.Dict.matching_codes d (fun s -> s.[0] = 'c') in
  check Alcotest.(array bool) "c-prefixed" [| true; true; false |] bitmap

let test_dict_growth () =
  let d = Storage.Dict.create () in
  for i = 0 to 999 do
    ignore (Storage.Dict.intern d (string_of_int i))
  done;
  check Alcotest.int "1000 distinct" 1000 (Storage.Dict.size d);
  check Alcotest.string "decode mid" "517" (Storage.Dict.get d 517)

(* --- Column -------------------------------------------------------------- *)

let test_column_ints () =
  let c = Storage.Column.of_ints ~name:"x" [| Some 5; None; Some 7 |] in
  check Alcotest.int "length" 3 (Storage.Column.length c);
  Alcotest.(check bool) "null" true (Storage.Column.is_null c 1);
  (match Storage.Column.value c 0 with
  | Storage.Value.Int 5 -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v));
  (match Storage.Column.value c 1 with
  | Storage.Value.Null -> ()
  | v -> Alcotest.failf "expected NULL, got %s" (Storage.Value.to_string v));
  check Alcotest.int "distinct" 2 (Storage.Column.distinct_count c)

let test_column_strings () =
  let c = Storage.Column.of_strings ~name:"s" [| Some "a"; Some "b"; Some "a"; None |] in
  check Alcotest.int "distinct" 2 (Storage.Column.distinct_count c);
  (match Storage.Column.value c 2 with
  | Storage.Value.Str "a" -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v));
  check Alcotest.(option int) "encode present"
    (Storage.Column.encode c (Storage.Value.Str "b"))
    (Storage.Column.encode c (Storage.Value.Str "b"));
  check Alcotest.(option int) "encode absent" None
    (Storage.Column.encode c (Storage.Value.Str "zzz"));
  check
    Alcotest.(option int)
    "encode null" (Some Storage.Value.null_code)
    (Storage.Column.encode c Storage.Value.Null)

let test_column_encode_mismatch () =
  let c = Storage.Column.of_ints ~name:"x" [| Some 1 |] in
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Column.encode: type mismatch on column x") (fun () ->
      ignore (Storage.Column.encode c (Storage.Value.Str "a")))

(* --- Table ---------------------------------------------------------------- *)

let mk_table () =
  Storage.Table.create ~name:"demo" ~pk:"id" ~fks:[ "other_id" ]
    [|
      Storage.Column.of_ints ~name:"id" [| Some 1; Some 2; Some 3 |];
      Storage.Column.of_ints ~name:"other_id" [| Some 9; None; Some 9 |];
      Storage.Column.of_strings ~name:"label" [| Some "x"; Some "y"; Some "x" |];
    |]

let test_table_basics () =
  let t = mk_table () in
  check Alcotest.string "name" "demo" (Storage.Table.name t);
  check Alcotest.int "rows" 3 (Storage.Table.row_count t);
  check Alcotest.int "cols" 3 (Storage.Table.column_count t);
  check Alcotest.int "col idx" 1 (Storage.Table.column_index t "other_id");
  check Alcotest.(option int) "pk" (Some 0) (Storage.Table.pk t);
  check Alcotest.(list int) "fks" [ 1 ] (Storage.Table.fks t)

let test_table_validations () =
  let col n = Storage.Column.of_ints ~name:n [| Some 1 |] in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table.create t: column b has 2 rows, expected 1")
    (fun () ->
      ignore
        (Storage.Table.create ~name:"t"
           [| col "a"; Storage.Column.of_ints ~name:"b" [| Some 1; Some 2 |] |]));
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Table.create t: duplicate column a") (fun () ->
      ignore (Storage.Table.create ~name:"t" [| col "a"; col "a" |]));
  Alcotest.check_raises "bad pk"
    (Invalid_argument "Table.create t: pk column nope not found") (fun () ->
      ignore (Storage.Table.create ~name:"t" ~pk:"nope" [| col "a" |]));
  Alcotest.check_raises "unknown column"
    (Invalid_argument "Table.column_index: table t has no column zz") (fun () ->
      ignore (Storage.Table.column_index (Storage.Table.create ~name:"t" [| col "a" |]) "zz"))

(* --- Index ------------------------------------------------------------------ *)

let test_index_lookup () =
  let t = mk_table () in
  let idx = Storage.Index.build t ~col:1 in
  check Alcotest.(array int) "two matches" [| 0; 2 |]
    (let a = Array.copy (Storage.Index.lookup idx 9) in
     Array.sort compare a;
     a);
  check Alcotest.(array int) "no match" [||] (Storage.Index.lookup idx 5);
  check Alcotest.int "count" 2 (Storage.Index.count idx 9);
  check Alcotest.int "distinct keys (nulls excluded)" 1 (Storage.Index.distinct_keys idx)

let index_matches_scan =
  Support.qcheck_case ~name:"index lookup equals full scan" QCheck.small_int
    (fun seed ->
      let prng = Util.Prng.create seed in
      let data =
        Array.init 200 (fun _ ->
            if Util.Prng.chance prng 0.1 then None
            else Some (Util.Prng.int prng 20))
      in
      let t =
        Storage.Table.create ~name:"q"
          [| Storage.Column.of_ints ~name:"k" data |]
      in
      let idx = Storage.Index.build t ~col:0 in
      List.for_all
        (fun key ->
          let via_index = List.sort compare (Array.to_list (Storage.Index.lookup idx key)) in
          let via_scan =
            Array.to_list data
            |> List.mapi (fun i v -> (i, v))
            |> List.filter_map (fun (i, v) -> if v = Some key then Some i else None)
          in
          via_index = via_scan)
        [ 0; 1; 5; 19 ])

let test_index_average_fanout () =
  let t =
    Storage.Table.create ~name:"f"
      [| Storage.Column.of_ints ~name:"k" [| Some 1; Some 1; Some 2; None |] |]
  in
  let idx = Storage.Index.build t ~col:0 in
  Alcotest.check (Alcotest.float 1e-9) "fanout" 1.5 (Storage.Index.average_fanout idx)

(* --- Database ------------------------------------------------------------------ *)

let test_database_catalog () =
  let db = Storage.Database.create () in
  let t = mk_table () in
  Storage.Database.add_table db t;
  check Alcotest.string "find" "demo"
    (Storage.Table.name (Storage.Database.find_table db "demo"));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Database.add_table: duplicate table demo") (fun () ->
      Storage.Database.add_table db t);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Database.find_table: unknown table nope") (fun () ->
      ignore (Storage.Database.find_table db "nope"));
  check Alcotest.(list string) "names" [ "demo" ] (Storage.Database.table_names db)

let test_database_index_config () =
  let db = Storage.Database.create () in
  Storage.Database.add_table db (mk_table ());
  let has col =
    Storage.Database.index db ~table:"demo" ~col <> None
  in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  Alcotest.(check bool) "none: no pk" false (has 0);
  Storage.Database.set_index_config db Storage.Database.Pk_only;
  Alcotest.(check bool) "pk: pk yes" true (has 0);
  Alcotest.(check bool) "pk: fk no" false (has 1);
  Storage.Database.set_index_config db Storage.Database.Pk_fk;
  Alcotest.(check bool) "pkfk: fk yes" true (has 1);
  (* force_index ignores configuration *)
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  ignore (Storage.Database.force_index db ~table:"demo" ~col:2)

let dict_intern_roundtrip =
  Support.qcheck_case ~name:"dict intern/get roundtrip"
    QCheck.(small_list (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun strings ->
      let d = Storage.Dict.create () in
      let codes = List.map (Storage.Dict.intern d) strings in
      List.for_all2 (fun s c -> Storage.Dict.get d c = s) strings codes
      && Storage.Dict.size d = List.length (List.sort_uniq compare strings))

let column_value_roundtrip =
  Support.qcheck_case ~name:"column stores and decodes values"
    QCheck.(small_list (option small_int))
    (fun cells ->
      let cells = Array.of_list cells in
      if Array.length cells = 0 then true
      else begin
        let c = Storage.Column.of_ints ~name:"x" cells in
        Array.for_all
          (fun i ->
            match (cells.(i), Storage.Column.value c i) with
            | None, Storage.Value.Null -> true
            | Some v, Storage.Value.Int w -> v = w
            | _ -> false)
          (Array.init (Array.length cells) (fun i -> i))
      end)


(* --- Compressed encodings ------------------------------------------------ *)

module C = Storage.Column

(* Every encoding must expose the exact code sequence of the flat
   reference: same [get]/[reader]/[to_codes]/[iter_codes], same chunked
   [decode_into] at awkward boundaries, same cached statistics. *)
let encoding_roundtrip_law column =
  let reference = C.to_codes column in
  let n = Array.length reference in
  List.for_all
    (fun enc ->
      let r = C.recode column enc in
      let indices = Array.init n (fun i -> i) in
      let chunks_ok =
        let buf = Array.make (max n 1) 0 in
        let ok = ref true in
        let lo = ref 0 in
        let step = max 1 (n / 3) in
        while !lo < n do
          let len = min step (n - !lo) in
          C.decode_into r ~row_start:!lo ~len buf;
          for i = 0 to len - 1 do
            if buf.(i) <> reference.(!lo + i) then ok := false
          done;
          lo := !lo + len
        done;
        !ok
      in
      let iter_ok =
        let got = ref [] in
        C.iter_codes r (fun v -> got := v :: !got);
        Array.of_list (List.rev !got) = reference
      in
      C.length r = n
      && C.to_codes r = reference
      && Array.for_all (fun i -> C.get r i = reference.(i)) indices
      && (let read = C.reader r in
          Array.for_all (fun i -> read i = reference.(i)) indices)
      && chunks_ok && iter_ok
      && C.distinct_count r = C.distinct_count column
      && C.null_count r = C.null_count column
      && C.min_max r = C.min_max column)
    C.all_encodings

let int_column_of cells = C.of_ints ~name:"x" (Array.of_list cells)

let encoding_roundtrip_random =
  Support.qcheck_case ~name:"encodings roundtrip on random int columns"
    QCheck.(small_list (option int))
    (fun cells -> encoding_roundtrip_law (int_column_of cells))

let encoding_roundtrip_sorted =
  Support.qcheck_case ~name:"encodings roundtrip on sorted columns (frame)"
    QCheck.(small_list (option small_int))
    (fun cells -> encoding_roundtrip_law (int_column_of (List.sort compare cells)))

let encoding_roundtrip_runs =
  Support.qcheck_case ~name:"encodings roundtrip on run-heavy columns (rle)"
    QCheck.(small_list (pair (option (int_bound 5)) (int_bound 6)))
    (fun pairs ->
      let cells = List.concat_map (fun (v, k) -> List.init (k + 1) (fun _ -> v)) pairs in
      encoding_roundtrip_law (int_column_of cells))

let encoding_roundtrip_strings =
  Support.qcheck_case ~name:"encodings roundtrip on dictionary columns"
    QCheck.(small_list (option (string_of_size (QCheck.Gen.int_range 0 6))))
    (fun cells ->
      let column = C.of_strings ~name:"s" (Array.of_list cells) in
      encoding_roundtrip_law column
      && List.for_all
           (fun enc ->
             (* The dictionary is shared, so string decode survives. *)
             let r = C.recode column enc in
             List.for_all
               (fun i -> C.value r i = C.value column i)
               (List.init (C.length column) (fun i -> i)))
           C.all_encodings)

let test_encoding_chooser () =
  (* Sorted dense ids: small per-block deltas, so frame-of-reference (or
     bit-packing) wins and random access still decodes exactly. *)
  let ids = C.of_ints ~name:"id" (Array.init 20_000 (fun i -> Some (i + 1))) in
  Alcotest.(check bool)
    (Printf.sprintf "ids compressed (%s)" (C.encoding_name (C.encoding ids)))
    true
    (C.encoding ids <> C.Flat && C.byte_size ids * 4 <= C.flat_byte_size ids);
  check Alcotest.int "ids decode intact" 12_345 (C.get ids 12_344);
  (* A narrow dictionary column packs to a few bits per row: >= 2x is the
     acceptance floor, 8x the actual expectation at width <= 8. *)
  let strs =
    C.of_strings ~name:"kind"
      (Array.init 8_192 (fun i ->
           if i mod 97 = 0 then None
           else Some [| "movie"; "tv"; "video" |].(i mod 3)))
  in
  Alcotest.(check bool) "dictionary column >= 2x compression" true
    (2 * C.byte_size strs <= C.flat_byte_size strs);
  Alcotest.(check bool) "null preserved in-band" true (C.is_null strs 0);
  (* Constant columns collapse to a run. *)
  let const = C.of_ints ~name:"c" (Array.make 10_000 (Some 7)) in
  Alcotest.(check bool) "constant column is rle" true (C.encoding const = C.Rle);
  Alcotest.(check bool) "rle tiny" true (C.byte_size const < 128);
  (* All-NULL columns need no width at all. *)
  let nulls = C.of_strings ~name:"n" (Array.make 4_096 None) in
  check Alcotest.int "all-null distinct" 0 (C.distinct_count nulls);
  Alcotest.(check bool) "all-null null_count" true (C.null_count nulls = 4_096);
  Alcotest.(check bool) "all-null compresses" true
    (C.byte_size nulls * 8 <= C.flat_byte_size nulls)

let test_encoding_stats_cached () =
  let c = C.of_ints ~name:"x" [| Some 5; None; Some 7; Some 5; Some (-3) |] in
  check Alcotest.int "distinct" 3 (C.distinct_count c);
  check Alcotest.int "nulls" 1 (C.null_count c);
  check Alcotest.(option (pair int int)) "min/max" (Some (-3, 7)) (C.min_max c)

let test_take_shares_dict () =
  let c = C.of_strings ~name:"s" [| Some "a"; Some "b"; None; Some "a" |] in
  let t = C.take c [| 3; 2; 1 |] in
  check Alcotest.int "take length" 3 (C.length t);
  Alcotest.(check bool) "same dict instance" true
    (match (C.dict c, C.dict t) with Some a, Some b -> a == b | _ -> false);
  (match C.value t 0 with
  | Storage.Value.Str "a" -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v));
  Alcotest.(check bool) "take null" true (C.is_null t 1);
  (match C.value t 2 with
  | Storage.Value.Str "b" -> ()
  | v -> Alcotest.failf "unexpected %s" (Storage.Value.to_string v))

let test_database_recode () =
  let db = Lazy.force Support.imdb in
  List.iter
    (fun enc ->
      let r = Storage.Database.recode db enc in
      List.iter
        (fun name ->
          let t = Storage.Database.find_table db name
          and t' = Storage.Database.find_table r name in
          Alcotest.(check int)
            (name ^ " rows")
            (Storage.Table.row_count t)
            (Storage.Table.row_count t');
          Array.iteri
            (fun i c ->
              let c' = Storage.Table.column t' i in
              if C.to_codes c <> C.to_codes c' then
                Alcotest.failf "%s.%s differs under %s" name (C.name c)
                  (C.encoding_name enc))
            (Storage.Table.columns t))
        (Storage.Database.table_names db))
    C.all_encodings

let suite =
  [
    Alcotest.test_case "dict roundtrip" `Quick test_dict_roundtrip;
    dict_intern_roundtrip;
    column_value_roundtrip;
    Alcotest.test_case "dict invalid code" `Quick test_dict_get_invalid;
    Alcotest.test_case "dict matching codes" `Quick test_dict_matching_codes;
    Alcotest.test_case "dict growth" `Quick test_dict_growth;
    Alcotest.test_case "column ints" `Quick test_column_ints;
    Alcotest.test_case "column strings" `Quick test_column_strings;
    Alcotest.test_case "column encode mismatch" `Quick test_column_encode_mismatch;
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "table validations" `Quick test_table_validations;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    index_matches_scan;
    Alcotest.test_case "index fanout" `Quick test_index_average_fanout;
    Alcotest.test_case "database catalog" `Quick test_database_catalog;
    Alcotest.test_case "database index config" `Quick test_database_index_config;
    encoding_roundtrip_random;
    encoding_roundtrip_sorted;
    encoding_roundtrip_runs;
    encoding_roundtrip_strings;
    Alcotest.test_case "encoding chooser" `Quick test_encoding_chooser;
    Alcotest.test_case "encoding stats cached" `Quick test_encoding_stats_cached;
    Alcotest.test_case "take shares dict" `Quick test_take_shares_dict;
    Alcotest.test_case "database recode" `Quick test_database_recode;
  ]
