(* Kernel tests for the allocation-free hot paths: the vectorized
   executor against embedded golden fixtures (with the row-at-a-time
   reference scan cross-checked on the full workload), the
   selection-vector predicate compiler against the row-level closures,
   and the packed-key group table behind True_card.

   The goldens were captured from the pre-vectorization executor at
   seed 5, scale 0.02 (PostgreSQL estimates, Cmm cost model, robust
   engine): query name, result rows, work units, timed_out, the true
   full-join cardinality, and the projected MINs. Any change to work
   accounting, predicate semantics, join ordering inputs, or the
   true-cardinality layer shows up here as a diff against real
   end-to-end results. *)

module Harness = Experiments.Harness
module GT = Cardest.Group_table
module QG = Query.Query_graph

let goldens =
  [
    ("1a", 1, 1331, false, 1, ["'Warner Films 174'"; "'The Secret Garden'"]);
    ("1b", 17, 2092, false, 17, ["'Meridian International'"; "'Letter of the Journey (#3.11)'"]);
    ("1c", 7, 1399, false, 7, ["'Warner Cinema 276'"; "'Silence of the Dream'"]);
    ("2a", 369, 4459, false, 369, ["'Dream of the Heart'"]);
    ("2b", 106, 3271, false, 106, ["'Dream of the Heart'"]);
    ("2c", 157, 3463, false, 157, ["'Dream of the Heart'"]);
    ("3a", 27, 1729, false, 27, ["'The Day Dream'"; "'Drama'"]);
    ("3b", 1, 1337, false, 1, ["'The Shadow Spring 1562'"; "'Norway'"]);
    ("3c", 24, 1662, false, 24, ["'Dream of the Heart'"; "'USA:2 February 2008'"]);
    ("3d", 0, 1259, false, 0, ["NULL"; "NULL"]);
    ("4a", 2, 1787, false, 2, ["'9.1'"; "'Road of the Return'"]);
    ("4b", 8, 1883, false, 8, ["'9.1'"; "'The Garden Summer'"]);
    ("4c", 4, 2332, false, 4, ["'35478'"; "'The Heart Day'"]);
    ("5a", 0, 2593, false, 0, ["NULL"; "NULL"]);
    ("5b", 79, 3737, false, 79, ["'Silence of the Dream'"; "'Meridian International'"]);
    ("5c", 51, 6494, false, 51, ["'Dream of the Heart'"; "'Eastern Films'"]);
    ("5d", 0, 2685, false, 0, ["NULL"; "NULL"]);
    ("6a", 24, 6948, false, 24, ["'Silence of the Dream'"; "'Moore, Robert 1502'"]);
    ("6b", 579, 9955, false, 579, ["'Dream of the Heart'"; "'Hall, Frank 394'"]);
    ("6c", 92, 7119, false, 92, ["'Dream of the Heart'"; "'Green, Clara 1945'"]);
    ("7a", 4, 5299, false, 4, ["'Anderson, Andrew 1421'"; "'Letter of the Journey (#3.11)'"]);
    ("7b", 18, 4205, false, 18, ["'Williams, James 1793'"; "'Summer of the Island'"]);
    ("7c", 24, 4600, false, 24, ["'Hall, Frank 394'"; "'Dream of the Heart'"]);
    ("8a", 133, 6732, false, 133, ["'Davis, Mark 1820'"; "'Meridian International'"]);
    ("8b", 535, 35861, false, 535, ["'Green, Clara 1945'"; "'Meridian International'"]);
    ("8c", 6, 5543, false, 6, ["'Anderson, William 1590'"; "'Universal Media 152'"]);
    ("8d", 13, 3313, false, 13, ["'King, Andrew 1484'"; "'Meridian International'"]);
    ("9a", 0, 4649, false, 0, ["NULL"; "NULL"]);
    ("9b", 9, 5331, false, 9, ["'James Nelson'"; "'Shadow of the Stranger'"]);
    ("9c", 0, 4648, false, 0, ["NULL"; "NULL"]);
    ("9d", 0, 6860, false, 0, ["NULL"; "NULL"]);
    ("10a", 256, 22073, false, 256, ["'Queen'"; "'Silence of the Dream'"]);
    ("10b", 4, 2927, false, 4, ["'Clara Hall'"; "'The Dream Summer'"]);
    ("10c", 0, 4737, false, 0, ["NULL"; "NULL"]);
    ("11a", 35, 3908, false, 35, ["'Silence of the Dream'"; "'Meridian International'"]);
    ("11b", 151, 9030, false, 151, ["'Silence of the Dream'"; "'Meridian International'"]);
    ("11c", 0, 3197, false, 0, ["NULL"; "NULL"]);
    ("11d", 0, 3129, false, 0, ["NULL"; "NULL"]);
    ("12a", 71, 4981, false, 71, ["'Meridian International'"; "'9.0'"]);
    ("12b", 0, 2956, false, 0, ["NULL"; "NULL"]);
    ("12c", 0, 3724, false, 0, ["NULL"; "NULL"]);
    ("12d", 305, 7896, false, 305, ["'Meridian International'"; "'1'"]);
    ("13a", 0, 4705, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("13b", 0, 5180, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("13c", 0, 4328, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("13d", 246, 44795, false, 246, ["'Meridian International'"; "'USA:2 February 2008'"; "'7.6'"]);
    ("14a", 0, 6026, false, 0, ["NULL"; "NULL"]);
    ("14b", 0, 3973, false, 0, ["NULL"; "NULL"]);
    ("14c", 1, 14550, false, 1, ["'English'"; "'Fire of the Winter (#9.13)'"]);
    ("14d", 0, 4169, false, 0, ["NULL"; "NULL"]);
    ("15a", 1312, 35245, false, 1312, ["'Dream of the Heart'"; "'House of the Journey (aka 2)'"]);
    ("15b", 0, 2667, false, 0, ["NULL"; "NULL"]);
    ("15c", 67, 3722, false, 67, ["'Dream of the Heart'"; "'Dream of the Heart (aka 7)'"]);
    ("16a", 8204, 233208, false, 8204, ["'Steven Wright'"; "'Dream of the Heart'"]);
    ("16b", 16, 7609, false, 16, ["'Victor Wright'"; "'Secret of the Stranger 1421'"]);
    ("16c", 124, 42620, false, 124, ["'George Baker'"; "'Dream of the Heart'"]);
    ("16d", 284, 9982, false, 284, ["'Victor Edwards'"; "'Dream of the Heart'"]);
    ("17a", 859, 25352, false, 859, ["'Baker, Daniel 1583'"; "'character-name-in-title'"]);
    ("17b", 0, 18154, false, 0, ["NULL"; "NULL"]);
    ("17c", 0, 6338, false, 0, ["NULL"; "NULL"]);
    ("18a", 64, 5745, false, 64, ["'Williams, James 1793'"; "'26 June 1930'"]);
    ("18b", 2, 4586, false, 2, ["'Adams, Maria 1507'"; "'25 October 1954'"]);
    ("18c", 39, 6081, false, 39, ["'Hall, Frank 394'"; "'10 April 1903'"]);
    ("19a", 8, 7442, false, 8, ["'Green, Clara 1945'"; "'Dance of the Journey'"]);
    ("19b", 5, 6907, false, 5, ["'King, Michael 232'"; "'The Day River (#11.1)'"]);
    ("19c", 0, 4620, false, 0, ["NULL"; "NULL"]);
    ("20a", 0, 3715, false, 0, ["NULL"; "NULL"]);
    ("20b", 0, 4675, false, 0, ["NULL"; "NULL"]);
    ("20c", 3, 3785, false, 3, ["'Dream of the Heart'"; "'Batman'"]);
    ("21a", 2, 2775, false, 2, ["'Eastern Films'"; "'Sci-Fi'"]);
    ("21b", 0, 2669, false, 0, ["NULL"; "NULL"]);
    ("21c", 20, 5307, false, 20, ["'Columbia Media'"; "'155'"]);
    ("22a", 42, 5819, false, 42, ["'Meridian International'"; "'murder'"]);
    ("22b", 0, 5340, false, 0, ["NULL"; "NULL"]);
    ("22c", 0, 13122, false, 0, ["NULL"; "NULL"]);
    ("22d", 0, 5036, false, 0, ["NULL"; "NULL"]);
    ("23a", 4, 5104, false, 4, ["'The River River 134'"; "'USA:22 June 1991'"]);
    ("23b", 8, 3106, false, 8, ["'Silence of the Dream'"; "'Mystery'"]);
    ("23c", 0, 2927, false, 0, ["NULL"; "NULL"]);
    ("24a", 234, 16277, false, 234, ["'Queen'"; "'Johnson, George 1978'"]);
    ("24b", 1, 6436, false, 1, ["'Daniel Edwards'"; "'Collins, Laura 1894'"]);
    ("24c", 0, 6473, false, 0, ["NULL"; "NULL"]);
    ("24d", 0, 6275, false, 0, ["NULL"; "NULL"]);
    ("25a", 20, 15131, false, 20, ["'Horror'"; "'70566'"; "'Davis, Mark 1820'"]);
    ("25b", 0, 10840, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("25c", 265, 45352, false, 265, ["'Thriller'"; "'80166'"; "'Davis, Mark 1820'"]);
    ("26a", 1, 5590, false, 1, ["'Karen King'"; "'The Day Dream'"]);
    ("26b", 0, 8992, false, 0, ["NULL"; "NULL"]);
    ("26c", 0, 5444, false, 0, ["NULL"; "NULL"]);
    ("27a", 43, 2187, false, 43, ["'Silence of the Dream'"; "'Road of the Return'"]);
    ("27b", 0, 1386, false, 0, ["NULL"; "NULL"]);
    ("27c", 0, 1645, false, 0, ["NULL"; "NULL"]);
    ("28a", 17, 20734, false, 17, ["'Meridian International'"; "'Thriller'"; "'Dream of the Heart'"]);
    ("28b", 108, 19497, false, 108, ["'Meridian International'"; "'Action'"; "'Silence of the Dream'"]);
    ("28c", 362, 28460, false, 362, ["'Meridian International'"; "'Drama'"; "'The Day Dream'"]);
    ("28d", 0, 4587, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("29a", 0, 4949, false, 0, ["NULL"; "NULL"]);
    ("29b", 0, 4981, false, 0, ["NULL"; "NULL"]);
    ("29c", 0, 6575, false, 0, ["NULL"; "NULL"]);
    ("30a", 14, 9473, false, 14, ["'Horror'"; "'7.5'"; "'Davis, Mark 1820'"]);
    ("30b", 0, 7111, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("30c", 0, 7277, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("30d", 27, 12594, false, 27, ["'USA:2 February 2008'"; "'7.6'"; "'Anderson, William 1590'"]);
    ("31a", 53, 32959, false, 53, ["'Drama'"; "'Meridian International'"]);
    ("31b", 0, 6341, false, 0, ["NULL"; "NULL"]);
    ("31c", 0, 19788, false, 0, ["NULL"; "NULL"]);
    ("31d", 0, 19400, false, 0, ["NULL"; "NULL"]);
    ("32a", 3, 2026, false, 3, ["'Silence of the Dream'"; "'Night of the Return 903'"]);
    ("32b", 5, 2091, false, 5, ["'Silence of the Dream'"; "'Night of the Return 903'"]);
    ("32c", 1, 2021, false, 1, ["'The Ice River 965'"; "'Dream of the Heart'"]);
    ("33a", 902, 57827, false, 902, ["'Davis, Mark 1820'"; "'Meridian International'"; "'7.2'"]);
    ("33b", 0, 6390, false, 0, ["NULL"; "NULL"; "NULL"]);
    ("33c", 0, 6778, false, 0, ["NULL"; "NULL"; "NULL"]);
  ]

(* One harness shared by the workload-level tests below; the fixture
   parameters must match the golden capture exactly. *)
let harness = lazy (Harness.create ~seed:5 ~scale:0.0004 ())

let run_query h (q : Harness.qctx) =
  let est = Harness.estimator h q "PostgreSQL" in
  let plan, _ = Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm () in
  let r =
    Harness.execute h q ~plan ~size_est:est.Cardest.Estimator.subset
      ~engine:Exec.Engine_config.robust
  in
  let truth = Harness.truth q in
  let full = QG.full_set q.Harness.graph in
  ( r.Exec.Executor.rows,
    r.Exec.Executor.work,
    r.Exec.Executor.timed_out,
    Printf.sprintf "%.0f" (Cardest.True_card.card truth full),
    List.map Storage.Value.to_string r.Exec.Executor.mins )

(* Both scan paths, every query, against the pre-change goldens: rows,
   deterministic work, timeout status, exact cardinality and MINs all
   byte-identical. *)
let test_golden_workload () =
  let h = Lazy.force harness in
  Fun.protect
    ~finally:(fun () -> Atomic.set Exec.Executor.reference_scan false)
    (fun () ->
      List.iter
        (fun (name, rows, work, timed_out, truth, mins) ->
          let q = Harness.find h name in
          List.iter
            (fun reference ->
              Atomic.set Exec.Executor.reference_scan reference;
              let grows, gwork, gtimed, gtruth, gmins = run_query h q in
              let label =
                Printf.sprintf "%s (%s scan)" name
                  (if reference then "reference" else "vectorized")
              in
              Alcotest.(check int) (label ^ " rows") rows grows;
              Alcotest.(check int) (label ^ " work") work gwork;
              Alcotest.(check bool) (label ^ " timed_out") timed_out gtimed;
              Alcotest.(check string)
                (label ^ " true cardinality")
                (string_of_int truth) gtruth;
              Alcotest.(check (list string)) (label ^ " mins") mins gmins)
            [ false; true ])
        goldens)

(* compile_selector must select exactly the rows compile's row closure
   accepts, in ascending order, over every base-table predicate of the
   workload (LIKEs, INs, BETWEENs, ORs, IS NULLs, string compares). *)
let test_selector_matches_compile () =
  let h = Lazy.force harness in
  let chunk = 512 in
  let sel = Array.make chunk 0 in
  let checked = ref 0 in
  Array.iter
    (fun (q : Harness.qctx) ->
      Array.iter
        (fun (r : QG.relation) ->
          if r.QG.preds <> [] then begin
            let table = r.QG.table in
            let n = Storage.Table.row_count table in
            let pred = Query.Predicate.compile table r.QG.preds in
            let fill = Query.Predicate.compile_selector table r.QG.preds in
            let by_closure = ref [] in
            for row = n - 1 downto 0 do
              if pred row then by_closure := row :: !by_closure
            done;
            let by_selector = ref [] in
            let row = ref 0 in
            while !row < n do
              let stop = min n (!row + chunk) in
              let m = fill sel !row stop in
              for k = 0 to m - 1 do
                by_selector := sel.(k) :: !by_selector
              done;
              row := stop
            done;
            incr checked;
            Alcotest.(check (list int))
              (Printf.sprintf "%s/%s rows" q.Harness.query.Workload.Job.name
                 (Storage.Table.name table))
              !by_closure
              (List.rev !by_selector)
          end)
        (QG.relations q.Harness.graph))
    h.Harness.queries;
  Alcotest.(check bool) "predicates were actually checked" true (!checked > 100)

(* ------------------------------------------------------------------ *)
(* Packed-key encoding                                                  *)

let null = Storage.Value.null_code

let test_packed_roundtrip () =
  let field_max = (1 lsl 31) - 2 in
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "fits %d" v) true (GT.Packed.fits v);
      let e = GT.Packed.encode v in
      Alcotest.(check bool)
        (Printf.sprintf "encode %d is non-negative" v)
        true (e >= 0);
      Alcotest.(check int)
        (Printf.sprintf "decode (encode %d)" v)
        v (GT.Packed.decode e))
    [ null; 0; 1; 42; field_max; max_int - 1 ];
  Alcotest.(check bool) "max_int does not fit" false (GT.Packed.fits max_int);
  Alcotest.(check bool) "negative non-NULL does not fit" false
    (GT.Packed.fits (-5));
  Alcotest.(check int) "NULL encodes to slot 0" 0 (GT.Packed.encode null);
  let vals = [ null; 0; 1; 12345; field_max ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let k = GT.Packed.pack2 a b in
          Alcotest.(check bool)
            (Printf.sprintf "pack2 %d %d is non-negative" a b)
            true (k >= 0);
          Alcotest.(check int) "unpack2_fst" a (GT.Packed.unpack2_fst k);
          Alcotest.(check int) "unpack2_snd" b (GT.Packed.unpack2_snd k))
        vals)
    vals;
  Alcotest.(check bool) "2^31-2 fits a pair field" true (GT.Packed.fits2 field_max);
  Alcotest.(check bool) "2^31-1 does not fit a pair field" false
    (GT.Packed.fits2 (field_max + 1))

(* ------------------------------------------------------------------ *)
(* Group table                                                          *)

let add t a b delta =
  let s = GT.scratch t in
  s.(0) <- a;
  s.(1) <- b;
  GT.add_scratch t delta

let find t a b =
  let s = GT.scratch t in
  s.(0) <- a;
  s.(1) <- b;
  GT.find_scratch t

let test_group_table_ops () =
  let t = GT.create ~arity:2 () in
  Alcotest.(check bool) "arity 2 starts packed" true (GT.is_packed t);
  add t 1 2 1.0;
  add t 3 4 2.0;
  add t 1 2 0.5;
  add t null 7 4.0;
  add t 0 7 8.0;
  Alcotest.(check int) "distinct groups" 4 (GT.groups t);
  Alcotest.(check (float 0.0)) "accumulated" 1.5 (find t 1 2);
  Alcotest.(check (float 0.0)) "second group" 2.0 (find t 3 4);
  Alcotest.(check (float 0.0)) "NULL key is its own group" 4.0 (find t null 7);
  Alcotest.(check (float 0.0)) "zero key distinct from NULL" 8.0 (find t 0 7);
  Alcotest.(check (float 0.0)) "absent key" 0.0 (find t 9 9);
  Alcotest.(check (float 0.0)) "count by id" 1.5 (GT.count t 0);
  Alcotest.(check int) "component 0 of group 0" 1 (GT.component t 0 0);
  Alcotest.(check int) "component 1 of group 0" 2 (GT.component t 0 1);
  Alcotest.(check int) "NULL component survives" null (GT.component t 2 0);
  let order = ref [] in
  GT.iter t (fun id c -> order := (id, c) :: !order);
  Alcotest.(check (list (pair int (float 0.0))))
    "iteration in insertion order"
    [ (0, 1.5); (1, 2.0); (2, 4.0); (3, 8.0) ]
    (List.rev !order);
  Alcotest.(check (float 1e-9)) "total" 15.5 (GT.total t);
  Alcotest.(check bool) "still packed" true (GT.is_packed t)

let test_group_table_migration () =
  let t = GT.create ~arity:2 () in
  (* Enough keys to force several growth rounds while packed. *)
  for i = 0 to 299 do
    add t i (2 * i) 1.0
  done;
  Alcotest.(check bool) "packed before the misfit" true (GT.is_packed t);
  (* A key outside the packed domain migrates the whole table. *)
  add t (-5) 3 2.5;
  Alcotest.(check bool) "arena after the misfit" false (GT.is_packed t);
  Alcotest.(check int) "group count preserved" 301 (GT.groups t);
  for i = 0 to 299 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "count of (%d, %d) survives migration" i (2 * i))
      1.0
      (find t i (2 * i))
  done;
  Alcotest.(check (float 0.0)) "the misfit key" 2.5 (find t (-5) 3);
  Alcotest.(check int) "ids keep insertion order" 7 (GT.component t 7 0);
  add t 12 24 1.0;
  Alcotest.(check (float 0.0)) "accumulation still works" 2.0 (find t 12 24);
  Alcotest.(check (float 1e-9)) "total" 303.5 (GT.total t);
  (* Wide keys never pack. *)
  let w = GT.create ~arity:3 () in
  Alcotest.(check bool) "arity 3 starts in the arena" false (GT.is_packed w);
  let s = GT.scratch w in
  s.(0) <- 1;
  s.(1) <- 2;
  s.(2) <- 3;
  GT.add_scratch w 4.0;
  Alcotest.(check (float 0.0)) "arena lookup" 4.0 (GT.find_scratch w);
  (* Arity-1 tables migrate on a value whose encoding would wrap. *)
  let u = GT.create ~arity:1 () in
  let su = GT.scratch u in
  su.(0) <- 11;
  GT.add_scratch u 1.0;
  su.(0) <- max_int;
  GT.add_scratch u 2.0;
  Alcotest.(check bool) "arity 1 migrated" false (GT.is_packed u);
  su.(0) <- 11;
  Alcotest.(check (float 0.0)) "narrow key survives" 1.0 (GT.find_scratch u);
  su.(0) <- max_int;
  Alcotest.(check (float 0.0)) "wide value found" 2.0 (GT.find_scratch u)


(* Every physical encoding, forced across the whole catalog, must leave
   all 113 query results byte-identical to the flat reference layout:
   same rows, same deterministic work (identical plans), same MINs. The
   chooser's mixed-encoding database must agree too. *)
let test_encoding_workload () =
  let base = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
  let run_all db =
    let s = Core.Session.of_database db in
    List.map
      (fun (q : Workload.Job.query) ->
        let query = Core.Session.sql s ~name:q.Workload.Job.name q.Workload.Job.sql in
        let choice = Core.Session.optimize s query in
        let r = Core.Session.run s query choice in
        ( q.Workload.Job.name,
          r.Exec.Executor.rows,
          r.Exec.Executor.work,
          r.Exec.Executor.timed_out,
          List.map Storage.Value.to_string r.Exec.Executor.mins ))
      Workload.Job.all
  in
  let flat = run_all (Storage.Database.recode base Storage.Column.Flat) in
  let check_against label got =
    List.iter2
      (fun (name, rows, work, timed_out, mins) (gname, grows, gwork, gtimed, gmins) ->
        let l = Printf.sprintf "%s (%s)" name label in
        Alcotest.(check string) (l ^ " name") name gname;
        Alcotest.(check int) (l ^ " rows") rows grows;
        Alcotest.(check int) (l ^ " work") work gwork;
        Alcotest.(check bool) (l ^ " timed_out") timed_out gtimed;
        Alcotest.(check (list string)) (l ^ " mins") mins gmins)
      flat got
  in
  check_against "chooser" (run_all base);
  List.iter
    (fun enc ->
      if enc <> Storage.Column.Flat then
        check_against
          (Storage.Column.encoding_name enc)
          (run_all (Storage.Database.recode base enc)))
    Storage.Column.all_encodings

let suite =
  [
    Alcotest.test_case "packed key round-trips" `Quick test_packed_roundtrip;
    Alcotest.test_case "group table operations" `Quick test_group_table_ops;
    Alcotest.test_case "group table migration" `Quick test_group_table_migration;
    Alcotest.test_case "selection vectors match row closures" `Slow
      test_selector_matches_compile;
    Alcotest.test_case "full workload matches pre-change goldens" `Slow
      test_golden_workload;
    Alcotest.test_case "full workload byte-identical under every encoding" `Slow
      test_encoding_workload;
  ]
