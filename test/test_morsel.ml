(* The morsel scheduler and the executor's intra-query parallelism:
   QCheck laws for the work-stealing cursor (every morsel claimed
   exactly once, no claim after exhaustion, under concurrent
   claimants), accumulator semantics, and the end-to-end determinism
   guarantee — the full 113-query workload byte-identical at
   exec-jobs 1/2/4 under every forced column encoding, and the
   re-optimization driver's whole trajectory unchanged by a pool. *)

module Morsel = Exec.Morsel

let with_pool domains f =
  let pool = Util.Domain_pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () -> f pool)

(* --- cursor laws ----------------------------------------------------- *)

(* 3 worker domains + the calling domain = 4 concurrent claimants, each
   draining the cursor as fast as it can. The union of the per-slot
   claims must be exactly [0 .. n-1] with no duplicates, and the cursor
   must stay exhausted afterwards. Slots are claimed dynamically but
   each runs exactly once, so the per-slot lists need no locking. *)
let cursor_claims_each_exactly_once n =
  with_pool 4 (fun pool ->
      let c = Morsel.cursor n in
      let per_slot = Array.make 4 [] in
      Util.Domain_pool.run_workers pool (fun slot ->
          let rec loop () =
            match Morsel.claim c with
            | -1 -> ()
            | i ->
                per_slot.(slot) <- i :: per_slot.(slot);
                loop ()
          in
          loop ());
      let all = List.sort compare (List.concat (Array.to_list per_slot)) in
      Morsel.claim c = -1 && all = List.init n Fun.id)

let test_cursor_serial () =
  let c = Morsel.cursor 3 in
  let a = Morsel.claim c in
  let b = Morsel.claim c in
  let d = Morsel.claim c in
  Alcotest.(check (list int)) "hands out indices in order" [ 0; 1; 2 ]
    [ a; b; d ];
  Alcotest.(check int) "exhausted" (-1) (Morsel.claim c);
  Alcotest.(check int) "stays exhausted" (-1) (Morsel.claim c);
  let empty = Morsel.cursor 0 in
  Alcotest.(check int) "empty cursor starts exhausted" (-1)
    (Morsel.claim empty)

(* --- accumulators ----------------------------------------------------- *)

let test_acc () =
  let a = Morsel.acc () in
  Alcotest.(check int) "add returns committed total" 5 (Morsel.add a 5);
  Alcotest.(check int) "totals accumulate" 12 (Morsel.add a 7);
  Alcotest.(check int) "total reads the sum" 12 (Morsel.total a);
  Morsel.reset a;
  Alcotest.(check int) "reset zeroes" 0 (Morsel.total a);
  (* Concurrent adds commit every contribution exactly once: 4 slots
     (3 workers + caller) x 1000 ones. *)
  with_pool 4 (fun pool ->
      Util.Domain_pool.run_workers pool (fun _slot ->
          for _ = 1 to 1000 do
            ignore (Morsel.add a 1)
          done);
      Alcotest.(check int) "4000 concurrent adds all commit" 4000
        (Morsel.total a))

(* --- the end-to-end determinism guarantee ----------------------------- *)

(* Force the morsel path onto every phase regardless of input size, so
   the tiny test database still exercises the parallel scan, build and
   probe code. Results must not depend on this (or any) threshold. *)
let engine =
  { Exec.Engine_config.robust with name = "morsel test"; morsel_min_rows = 0 }

let run_all db pool =
  let s = Core.Session.of_database db in
  List.map
    (fun (q : Workload.Job.query) ->
      let query =
        Core.Session.sql s ~name:q.Workload.Job.name q.Workload.Job.sql
      in
      let choice = Core.Session.optimize s query in
      let r = Core.Session.run s ~engine ?pool query choice in
      ( q.Workload.Job.name,
        r.Exec.Executor.rows,
        r.Exec.Executor.work,
        r.Exec.Executor.timed_out,
        List.map Storage.Value.to_string r.Exec.Executor.mins ))
    Workload.Job.all

let check_identical label baseline got =
  List.iter2
    (fun (name, rows, work, timed_out, mins)
         (gname, grows, gwork, gtimed, gmins) ->
      let l = Printf.sprintf "%s (%s)" name label in
      Alcotest.(check string) (l ^ " name") name gname;
      Alcotest.(check int) (l ^ " rows") rows grows;
      Alcotest.(check int) (l ^ " work") work gwork;
      Alcotest.(check bool) (l ^ " timed_out") timed_out gtimed;
      Alcotest.(check (list string)) (l ^ " mins") mins gmins)
    baseline got

(* The tentpole acceptance test: all 113 queries, serial vs exec-jobs 2
   vs exec-jobs 4, under every forced physical encoding — rows, work,
   timeout flags and aggregates all byte-identical. *)
let test_workload_exec_jobs () =
  let base = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
  Morsel.reset_stats ();
  List.iter
    (fun enc ->
      let db = Storage.Database.recode base enc in
      let ename = Storage.Column.encoding_name enc in
      let serial = run_all db None in
      with_pool 2 (fun p2 ->
          check_identical (ename ^ " exec-jobs 2") serial
            (run_all db (Some p2)));
      with_pool 4 (fun p4 ->
          check_identical (ename ^ " exec-jobs 4") serial
            (run_all db (Some p4))))
    Storage.Column.all_encodings;
  (* Guard against the identity passing vacuously: the parallel runs
     must actually have taken the morsel path. *)
  let stats = Morsel.stats () in
  Alcotest.(check bool) "parallel phases actually ran" true
    (stats.Morsel.st_phases > 0);
  Alcotest.(check bool) "morsels were dispatched" true
    (stats.Morsel.st_dispatched > 0)

(* --- re-optimization composes with the pool --------------------------- *)

let test_reopt_pool_parity () =
  let database = Lazy.force Support.imdb_mid in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let config =
    { Exec.Engine_config.default_9_4 with morsel_min_rows = 0 }
  in
  List.iter
    (fun name ->
      let q = Workload.Job.find name in
      let b =
        Sqlfront.Binder.bind_sql database ~name q.Workload.Job.sql
      in
      let graph = b.Sqlfront.Binder.graph in
      let estimator =
        Cardest.Systems.postgres
          (Dbstats.Analyze.create database)
          { Cardest.Systems.db = database; graph }
      in
      let drive pool =
        Reopt.Driver.run ~db:database ~graph ~config
          ~model:Cost.Cost_model.postgres ~estimator ~threshold:1.1
          ~max_replans:8 ?pool
          ~projections:b.Sqlfront.Binder.projections ()
      in
      let serial = drive None in
      let pooled = with_pool 4 (fun p -> drive (Some p)) in
      Alcotest.(check int)
        (name ^ ": same number of re-plans")
        serial.Reopt.Driver.replans pooled.Reopt.Driver.replans;
      Alcotest.(check int)
        (name ^ ": same rows")
        serial.Reopt.Driver.result.Exec.Executor.rows
        pooled.Reopt.Driver.result.Exec.Executor.rows;
      Alcotest.(check int)
        (name ^ ": same cumulative work")
        serial.Reopt.Driver.result.Exec.Executor.work
        pooled.Reopt.Driver.result.Exec.Executor.work;
      Alcotest.(check int)
        (name ^ ": same wasted work")
        serial.Reopt.Driver.wasted_work pooled.Reopt.Driver.wasted_work;
      Alcotest.(check int)
        (name ^ ": same reused work")
        serial.Reopt.Driver.reused_work pooled.Reopt.Driver.reused_work;
      Alcotest.(check (list string))
        (name ^ ": same aggregates")
        (List.map Storage.Value.to_string
           serial.Reopt.Driver.result.Exec.Executor.mins)
        (List.map Storage.Value.to_string
           pooled.Reopt.Driver.result.Exec.Executor.mins))
    [ "6a"; "16d"; "17b" ]

let suite =
  [
    Alcotest.test_case "cursor hands out indices serially" `Quick
      test_cursor_serial;
    Support.qcheck_case ~count:20
      ~name:"cursor: every morsel claimed exactly once under concurrency"
      QCheck.(int_range 0 300)
      cursor_claims_each_exactly_once;
    Alcotest.test_case "phase accumulators" `Quick test_acc;
    Alcotest.test_case "113-query workload identical at exec-jobs 1/2/4"
      `Slow test_workload_exec_jobs;
    Alcotest.test_case "reopt trajectory identical with a pool" `Slow
      test_reopt_pool_parity;
  ]
