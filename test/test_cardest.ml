(* Tests for cardinality estimation: the exact True_card oracle (checked
   against brute-force join counting on random databases, including
   cyclic queries), the compositional estimator framework, the PG-style
   selectivity machinery, the five system emulations, and injection. *)

module QG = Query.Query_graph
module Bitset = Util.Bitset

(* --- True_card vs brute force -------------------------------------------- *)

let true_card_matches_brute_force =
  Support.qcheck_case ~count:40 ~name:"True_card = brute force (random acyclic queries)"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      let prng = Util.Prng.create seed in
      let db = Support.micro_db prng ~tables:relations ~rows:12 in
      let g = Support.micro_query prng db ~relations ~extra_edges:0 in
      let tc = Cardest.True_card.compute g in
      Array.for_all
        (fun s ->
          let expected = float_of_int (Support.brute_force_count g s) in
          Cardest.True_card.card tc s = expected)
        (QG.connected_subsets g))

let true_card_matches_brute_force_cyclic =
  Support.qcheck_case ~count:30 ~name:"True_card = brute force (random cyclic queries)"
    QCheck.(pair small_int (int_range 3 4))
    (fun (seed, relations) ->
      let prng = Util.Prng.create (seed + 1000) in
      let db = Support.micro_db prng ~tables:relations ~rows:10 in
      let g = Support.micro_query prng db ~relations ~extra_edges:3 in
      let tc = Cardest.True_card.compute g in
      Array.for_all
        (fun s ->
          let expected = float_of_int (Support.brute_force_count g s) in
          Cardest.True_card.card tc s = expected)
        (QG.connected_subsets g))

let test_true_card_imdb_query () =
  (* A real multi-join query on the small IMDB, against brute force. *)
  let db = Lazy.force Support.imdb in
  let b =
    Sqlfront.Binder.bind_sql db ~name:"t"
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k, \
       cast_info AS ci WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND \
       t.id = ci.movie_id AND k.keyword = 'sequel'"
  in
  let g = b.Sqlfront.Binder.graph in
  let tc = Cardest.True_card.compute g in
  Array.iter
    (fun s ->
      Alcotest.(check (Alcotest.float 0.0))
        (Format.asprintf "subset %a" Bitset.pp s)
        (float_of_int (Support.brute_force_count g s))
        (Cardest.True_card.card tc s))
    (QG.connected_subsets g)

let test_true_card_zero_result () =
  let db = Lazy.force Support.imdb in
  let b =
    Sqlfront.Binder.bind_sql db ~name:"zero"
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k \
       WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND \
       k.keyword = 'definitely-not-a-keyword'"
  in
  let g = b.Sqlfront.Binder.graph in
  let tc = Cardest.True_card.compute g in
  Alcotest.(check (Alcotest.float 0.0)) "empty" 0.0
    (Cardest.True_card.card tc (QG.full_set g))

let test_true_card_rejects_disconnected () =
  let db = Lazy.force Support.imdb in
  let b =
    Sqlfront.Binder.bind_sql db ~name:"t"
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k \
       WHERE t.id = mk.movie_id AND mk.keyword_id = k.id"
  in
  let tc = Cardest.True_card.compute b.Sqlfront.Binder.graph in
  (try
     ignore (Cardest.True_card.card tc (Bitset.of_list [ 0; 2 ]));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* --- Estimator framework ---------------------------------------------------- *)

let toy_graph () =
  let prng = Util.Prng.create 17 in
  let db = Support.micro_db prng ~tables:3 ~rows:20 in
  Support.micro_query prng db ~relations:3 ~extra_edges:0

let test_compositional_singleton_and_clamp () =
  let g = toy_graph () in
  let est =
    Cardest.Estimator.compositional ~name:"t" ~graph:g
      ~base:(fun r -> float_of_int (r + 1) *. 0.25)
      ~edge_selectivity:(fun _ -> 0.001)
      ~rounding:Cardest.Estimator.Clamp_one ()
  in
  Alcotest.(check (Alcotest.float 1e-9)) "singleton clamped" 1.0
    (est.Cardest.Estimator.subset (Bitset.singleton 0));
  Alcotest.(check bool) "never below one" true
    (est.Cardest.Estimator.subset (QG.full_set g) >= 1.0)

let test_compositional_floor () =
  let g = toy_graph () in
  let est =
    Cardest.Estimator.compositional ~name:"t" ~graph:g
      ~base:(fun _ -> 7.9)
      ~edge_selectivity:(fun _ -> 1.0)
      ~rounding:Cardest.Estimator.Floor_one ()
  in
  Alcotest.(check (Alcotest.float 1e-9)) "floored" 7.0
    (est.Cardest.Estimator.subset (Bitset.singleton 0))

let test_compositional_independence_formula () =
  let g = toy_graph () in
  let est =
    Cardest.Estimator.compositional ~name:"t" ~graph:g
      ~base:(fun _ -> 100.0)
      ~edge_selectivity:(fun _ -> 0.01)
      ()
  in
  (* 3 relations, 2 edges: 100^3 * 0.01^2 = 100_00... = 1e6 * 1e-4 = 100. *)
  Alcotest.(check (Alcotest.float 1e-6)) "textbook product" 100.0
    (est.Cardest.Estimator.subset (QG.full_set g))

let test_backoff_raises_estimates () =
  let g = toy_graph () in
  let independent =
    Cardest.Estimator.compositional ~name:"i" ~graph:g
      ~base:(fun _ -> 100.0)
      ~edge_selectivity:(fun _ -> 0.01)
      ()
  in
  let damped =
    Cardest.Estimator.compositional ~name:"d" ~graph:g
      ~base:(fun _ -> 100.0)
      ~edge_selectivity:(fun _ -> 0.01)
      ~combine:(Cardest.Estimator.Backoff 0.5) ()
  in
  Alcotest.(check bool) "damping raises deep estimates" true
    (damped.Cardest.Estimator.subset (QG.full_set g)
    > independent.Cardest.Estimator.subset (QG.full_set g))

let estimator_memo_deterministic =
  Support.qcheck_case ~name:"estimator subset memo deterministic"
    QCheck.small_int
    (fun seed ->
      let prng = Util.Prng.create seed in
      let db = Support.micro_db prng ~tables:4 ~rows:10 in
      let g = Support.micro_query prng db ~relations:4 ~extra_edges:1 in
      let est =
        Cardest.Estimator.compositional ~name:"t" ~graph:g
          ~base:(fun r -> float_of_int ((r * 13) + 5))
          ~edge_selectivity:(fun _ -> 0.03)
          ~rounding:Cardest.Estimator.Clamp_one ()
      in
      Array.for_all
        (fun s ->
          est.Cardest.Estimator.subset s = est.Cardest.Estimator.subset s)
        (Query.Query_graph.connected_subsets g))

let test_textbook_edge_selectivity () =
  let dom ~rel ~col =
    ignore col;
    if rel = 0 then 100.0 else 500.0
  in
  let e = { QG.left = 0; left_col = 0; right = 1; right_col = 0; pk_side = None } in
  Alcotest.(check (Alcotest.float 1e-12)) "1/max" (1.0 /. 500.0)
    (Cardest.Estimator.textbook_edge_selectivity ~dom e)

(* --- Selectivity -------------------------------------------------------------- *)

let test_selectivity_mcv_equality () =
  let db = Lazy.force Support.imdb_mid in
  let t = Storage.Database.find_table db "company_name" in
  let col = Storage.Table.column_index t "country_code" in
  let column = Storage.Table.column t col in
  let stats =
    Dbstats.Column_stats.build (Util.Prng.create 3) t ~col
      ~sample_rows:(Array.init (Storage.Table.row_count t) (fun i -> i))
      ()
  in
  let us = Option.get (Storage.Column.encode column (Storage.Value.Str "[us]")) in
  let sel =
    Cardest.Selectivity.atom ~stats ~table:t ~magic:Cardest.Selectivity.pg_magic
      (Query.Predicate.Cmp { col; op = Query.Predicate.Eq; code = us })
  in
  (* True fraction of '[us]' companies is around 0.3; an MCV hit must be
     close. *)
  let truth = ref 0 in
  Storage.Column.iter_codes column (fun v -> if v = us then incr truth);
  let exact = float_of_int !truth /. float_of_int (Storage.Table.row_count t) in
  Alcotest.(check bool)
    (Printf.sprintf "mcv close: est %.3f vs exact %.3f" sel exact)
    true
    (Float.abs (sel -. exact) < 0.05)

let test_selectivity_or_formula () =
  let db = Lazy.force Support.imdb in
  let t = Storage.Database.find_table db "title" in
  let col = Storage.Table.column_index t "production_year" in
  let stats =
    Dbstats.Column_stats.build (Util.Prng.create 3) t ~col
      ~sample_rows:(Array.init (Storage.Table.row_count t) (fun i -> i))
      ()
  in
  let atom op code = Query.Predicate.Cmp { col; op; code } in
  let s1 =
    Cardest.Selectivity.atom ~stats ~table:t ~magic:Cardest.Selectivity.pg_magic
      (atom Query.Predicate.Gt 2000)
  in
  let s2 =
    Cardest.Selectivity.atom ~stats ~table:t ~magic:Cardest.Selectivity.pg_magic
      (atom Query.Predicate.Lt 1950)
  in
  let s_or =
    Cardest.Selectivity.atom ~stats ~table:t ~magic:Cardest.Selectivity.pg_magic
      (Query.Predicate.Or [ atom Query.Predicate.Gt 2000; atom Query.Predicate.Lt 1950 ])
  in
  Alcotest.(check (Alcotest.float 1e-9)) "s1+s2-s1s2" (s1 +. s2 -. (s1 *. s2)) s_or

let test_selectivity_bounds =
  Support.qcheck_case ~name:"selectivity always within [0,1]"
    QCheck.(pair (int_range 1880 2015) small_int)
    (fun (year, seed) ->
      ignore seed;
      let db = Lazy.force Support.imdb in
      let t = Storage.Database.find_table db "title" in
      let col = Storage.Table.column_index t "production_year" in
      let stats =
        Dbstats.Column_stats.build (Util.Prng.create 3) t ~col
          ~sample_rows:(Array.init (Storage.Table.row_count t) (fun i -> i))
          ()
      in
      List.for_all
        (fun op ->
          let s =
            Cardest.Selectivity.atom ~stats ~table:t
              ~magic:Cardest.Selectivity.pg_magic
              (Query.Predicate.Cmp { col; op; code = year })
          in
          s >= 0.0 && s <= 1.0)
        [ Query.Predicate.Eq; Query.Predicate.Ne; Query.Predicate.Lt;
          Query.Predicate.Ge ])

(* --- Systems --------------------------------------------------------------------- *)

let job_context () =
  let db = Lazy.force Support.imdb_mid in
  let analyze = Dbstats.Analyze.create db in
  let q = Workload.Job.find "1a" in
  let b = Sqlfront.Binder.bind_sql db ~name:"1a" q.Workload.Job.sql in
  (db, analyze, b.Sqlfront.Binder.graph)

let test_all_systems_positive_finite () =
  let db, analyze, graph = job_context () in
  let ctx = { Cardest.Systems.db; graph } in
  List.iter
    (fun name ->
      let est = Cardest.Systems.by_name analyze ctx name in
      Array.iter
        (fun s ->
          let v = est.Cardest.Estimator.subset s in
          if not (Float.is_finite v) || v < 0.0 then
            Alcotest.failf "%s produced %f" name v)
        (QG.connected_subsets graph))
    Cardest.Systems.names

let test_dbms_b_estimates_integral () =
  let db, _, graph = job_context () in
  let coarse = Cardest.Systems.coarse_analyze db in
  let est = Cardest.Systems.dbms_b coarse { Cardest.Systems.db; graph } in
  Array.iter
    (fun s ->
      let v = est.Cardest.Estimator.subset s in
      Alcotest.(check bool) "integer >= 1" true (Float.is_integer v && v >= 1.0))
    (QG.connected_subsets graph)

let test_postgres_true_distinct_variant_differs () =
  (* Needs (a) a small sample, so sampled distinct counts underestimate,
     and (b) an FK/FK join edge — on FK->PK edges the formula's
     max(dom) always picks the PK side, whose distinct count is exact
     either way. Query 2a has the transitive mk/mc edge. *)
  let db = Lazy.force Support.imdb_mid in
  let q = Workload.Job.find "2a" in
  let b = Sqlfront.Binder.bind_sql db ~name:"2a" q.Workload.Job.sql in
  let graph = b.Sqlfront.Binder.graph in
  let analyze = Dbstats.Analyze.create ~sample_size:300 db in
  let ctx = { Cardest.Systems.db; graph } in
  let default = Cardest.Systems.postgres analyze ctx in
  let exact = Cardest.Systems.postgres ~true_distinct:true analyze ctx in
  (* Some subexpression must be estimated differently (the full set may
     clamp to 1 under both variants). *)
  Alcotest.(check bool) "estimates differ somewhere" true
    (Array.exists
       (fun s ->
         default.Cardest.Estimator.subset s <> exact.Cardest.Estimator.subset s)
       (QG.connected_subsets graph))

let test_sample_estimators_good_base () =
  (* HyPer/DBMS A evaluate the whole conjunction on a sample: on the
     mid-size database their base estimates must beat DBMS C's. *)
  let db = Lazy.force Support.imdb_mid in
  let analyze = Dbstats.Analyze.create db in
  let q = Workload.Job.find "1b" in
  let b = Sqlfront.Binder.bind_sql db ~name:"1b" q.Workload.Job.sql in
  let graph = b.Sqlfront.Binder.graph in
  let ctx = { Cardest.Systems.db; graph } in
  let tc = Cardest.True_card.compute graph in
  let err name est =
    let total = ref 0.0 in
    Array.iteri
      (fun r _ ->
        let truth = Float.max 1.0 (Cardest.True_card.base tc r) in
        let estimate = Float.max 1.0 (est.Cardest.Estimator.base r) in
        total := !total +. Util.Stat.q_error ~estimate ~truth)
      (QG.relations graph);
    ignore name;
    !total
  in
  let a = err "A" (Cardest.Systems.dbms_a analyze ctx) in
  let c = err "C" (Cardest.Systems.dbms_c analyze ctx) in
  Alcotest.(check bool) (Printf.sprintf "A (%.1f) <= C (%.1f)" a c) true (a <= c)

(* --- Injection ---------------------------------------------------------------------- *)

let test_injection () =
  let fallback =
    Cardest.Estimator.of_function ~name:"fb" ~base:(fun _ -> 50.0) (fun _ -> 500.0)
  in
  let injected =
    Cardest.Injection.create ~name:"inj" ~fallback
      [ (Bitset.singleton 0, 7.0); (Bitset.of_list [ 0; 1 ], 77.0) ]
  in
  Alcotest.(check (Alcotest.float 0.0)) "override base" 7.0
    (injected.Cardest.Estimator.base 0);
  Alcotest.(check (Alcotest.float 0.0)) "fallback base" 50.0
    (injected.Cardest.Estimator.base 1);
  Alcotest.(check (Alcotest.float 0.0)) "override subset" 77.0
    (injected.Cardest.Estimator.subset (Bitset.of_list [ 0; 1 ]));
  Alcotest.(check (Alcotest.float 0.0)) "fallback subset" 500.0
    (injected.Cardest.Estimator.subset (Bitset.of_list [ 1; 2 ]))

let test_injection_of_estimator () =
  let g = toy_graph () in
  let source =
    Cardest.Estimator.of_function ~name:"src" ~base:(fun _ -> 3.0) (fun _ -> 9.0)
  in
  let fallback =
    Cardest.Estimator.of_function ~name:"fb" ~base:(fun _ -> 1.0) (fun _ -> 1.0)
  in
  let injected =
    Cardest.Injection.of_estimator ~name:"mix" ~fallback ~source
      ~subsets:[ QG.full_set g ]
  in
  Alcotest.(check (Alcotest.float 0.0)) "sourced" 9.0
    (injected.Cardest.Estimator.subset (QG.full_set g));
  Alcotest.(check (Alcotest.float 0.0)) "fallback" 1.0
    (injected.Cardest.Estimator.subset (Bitset.singleton 1))

let suite =
  [
    true_card_matches_brute_force;
    true_card_matches_brute_force_cyclic;
    Alcotest.test_case "true card on IMDB query" `Quick test_true_card_imdb_query;
    Alcotest.test_case "true card zero result" `Quick test_true_card_zero_result;
    Alcotest.test_case "true card disconnected" `Quick test_true_card_rejects_disconnected;
    Alcotest.test_case "clamp to one" `Quick test_compositional_singleton_and_clamp;
    Alcotest.test_case "floor rounding" `Quick test_compositional_floor;
    Alcotest.test_case "independence formula" `Quick test_compositional_independence_formula;
    Alcotest.test_case "backoff damping" `Quick test_backoff_raises_estimates;
    estimator_memo_deterministic;
    Alcotest.test_case "textbook edge selectivity" `Quick test_textbook_edge_selectivity;
    Alcotest.test_case "mcv equality selectivity" `Quick test_selectivity_mcv_equality;
    Alcotest.test_case "OR selectivity formula" `Quick test_selectivity_or_formula;
    test_selectivity_bounds;
    Alcotest.test_case "all systems finite" `Quick test_all_systems_positive_finite;
    Alcotest.test_case "DBMS B integral" `Quick test_dbms_b_estimates_integral;
    Alcotest.test_case "true-distinct variant" `Quick
      test_postgres_true_distinct_variant_differs;
    Alcotest.test_case "sample estimators beat magic" `Quick
      test_sample_estimators_good_base;
    Alcotest.test_case "injection" `Quick test_injection;
    Alcotest.test_case "injection of estimator" `Quick test_injection_of_estimator;
  ]
