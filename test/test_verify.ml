(* Tests for the optimizer sanitizer: the analysis passes must accept
   everything the real pipeline produces (property-style over random
   micro databases) and reject deliberately mutated plans, estimates,
   costs and query graphs with actionable messages. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let micro ?(relations = 4) ?(extra_edges = 1) seed =
  let prng = Util.Prng.create seed in
  let db = Support.micro_db prng ~tables:relations ~rows:15 in
  let g = Support.micro_query prng db ~relations ~extra_edges in
  (db, g)

let true_estimator g =
  Cardest.True_card.estimator (Cardest.True_card.compute g)

let contains sub s =
  let n = String.length sub in
  let found = ref false in
  String.iteri
    (fun i _ -> if i + n <= String.length s && String.sub s i n = sub then found := true)
    s;
  !found

let has_violation ~containing result =
  List.exists
    (fun (v : Verify.Violation.t) -> contains containing v.Verify.Violation.message)
    result.Verify.Violation.violations

(* ------------------------------------------------------------------ *)
(* Whole-matrix acceptance on the real pipeline                        *)

let check_all_accepts_pipeline =
  Support.qcheck_case ~count:15 ~name:"check_all: zero violations on real pipeline"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      (* extra_edges 0: random extras can duplicate a tree edge, which
         the graph lint (part of check_all) correctly rejects. *)
      let db, g = micro ~relations ~extra_edges:0 seed in
      Storage.Database.set_index_config db Storage.Database.Pk_only;
      let tc = Cardest.True_card.compute g in
      let truth = Cardest.True_card.card tc in
      let report =
        Verify.check_all ~query:"micro" ~graph:g ~db
          ~estimators:[ Cardest.True_card.estimator tc ]
          ~models:Cost.Cost_model.all ~pk_bound:true ~truth ()
      in
      Verify.Violation.ok report)

let system_estimators_accepted =
  Support.qcheck_case ~count:10 ~name:"estimate sanitizer: five systems clean"
    QCheck.small_int
    (fun seed ->
      let db, g = micro ~relations:3 seed in
      let analyze = Dbstats.Analyze.create db in
      let ctx = { Cardest.Systems.db; graph = g } in
      List.for_all
        (fun name ->
          let est = Cardest.Systems.by_name analyze ctx name in
          Verify.Violation.ok (Verify.check_estimates g est))
        Cardest.Systems.names)

(* ------------------------------------------------------------------ *)
(* Plan sanitizer rejections                                           *)

let chain_graph () =
  (* Star 1-0, 2-0 built deterministically: relations 1 and 2 share no
     edge, so joining them first is a cross product. *)
  let prng = Util.Prng.create 3 in
  let db = Support.micro_db prng ~tables:3 ~rows:10 in
  let rels =
    Array.init 3 (fun idx ->
        {
          QG.idx;
          alias = Printf.sprintf "t%d" idx;
          table = Storage.Database.find_table db (Printf.sprintf "t%d" idx);
          preds = [];
        })
  in
  let edge a b =
    {
      QG.left = a;
      left_col = Storage.Table.column_index rels.(a).QG.table (Printf.sprintf "fk%d" b);
      right = b;
      right_col = Storage.Table.column_index rels.(b).QG.table "id";
      pk_side = Some `Right;
    }
  in
  (db, QG.create ~name:"star" rels [ edge 1 0; edge 2 0 ])

let test_rejects_duplicate_relation () =
  let _, g = chain_graph () in
  let s0 = Plan.scan 0 and s1 = Plan.scan 1 in
  let j = Plan.join Plan.Hash_join ~outer:s0 ~inner:s1 in
  (* Hand-built node reusing relation 1: the smart constructor would
     refuse, which is exactly what a buggy enumerator could bypass. *)
  let dup =
    {
      Plan.op = Plan.Join { algo = Plan.Hash_join; outer = j; inner = s1 };
      set = Bitset.of_list [ 0; 1; 2 ];
    }
  in
  let r = Verify.check_plan g dup in
  Alcotest.(check bool) "overlap flagged" true (has_violation ~containing:"overlap" r);
  Alcotest.(check bool) "duplicate flagged" true
    (has_violation ~containing:"appears 2 times" r);
  Alcotest.(check bool) "set mismatch flagged" true
    (has_violation ~containing:"union" r)

let test_rejects_cross_product () =
  let _, g = chain_graph () in
  let j = Plan.join Plan.Hash_join ~outer:(Plan.scan 1) ~inner:(Plan.scan 2) in
  let full = Plan.join Plan.Hash_join ~outer:j ~inner:(Plan.scan 0) in
  let r = Verify.check_plan g full in
  Alcotest.(check bool) "cross product flagged" true
    (has_violation ~containing:"cross product" r);
  Alcotest.(check bool) "disconnected intermediate flagged" true
    (has_violation ~containing:"not a connected subgraph" r)

let test_rejects_incomplete_plan () =
  let _, g = chain_graph () in
  let r = Verify.check_plan g (Plan.scan 0) in
  Alcotest.(check bool) "coverage flagged" true
    (has_violation ~containing:"instead of all 3 relations" r)

let test_rejects_inl_composite_inner () =
  let _, g = chain_graph () in
  let inner = Plan.join Plan.Hash_join ~outer:(Plan.scan 0) ~inner:(Plan.scan 1) in
  let bad =
    {
      Plan.op = Plan.Join { algo = Plan.Index_nl_join; outer = Plan.scan 2; inner };
      set = Bitset.of_list [ 0; 1; 2 ];
    }
  in
  let r = Verify.check_plan g bad in
  Alcotest.(check bool) "INL inner flagged" true
    (has_violation ~containing:"index-NL inner" r)

let test_rejects_shape_violation () =
  let _, g = chain_graph () in
  (* Right-deep: 1 ⋈ (2 ⋈ 0); under a left-deep restriction this is a
     shape violation even though it is structurally sound. *)
  let plan =
    Plan.join Plan.Hash_join ~outer:(Plan.scan 1)
      ~inner:(Plan.join Plan.Hash_join ~outer:(Plan.scan 2) ~inner:(Plan.scan 0))
  in
  let r = Verify.check_plan ~shape:Planner.Search.Only_left_deep g plan in
  Alcotest.(check bool) "shape flagged" true
    (has_violation ~containing:"restricted to left-deep" r);
  Alcotest.(check bool) "accepted under any shape" true
    (Verify.Violation.ok (Verify.check_plan g plan))

(* ------------------------------------------------------------------ *)
(* Estimate sanitizer rejections                                       *)

let poisoned base subset =
  Cardest.Estimator.of_function ~name:"poisoned" ~base subset

let test_rejects_bad_estimates () =
  let _, g = chain_graph () in
  let nan_est =
    poisoned (fun _ -> 10.0) (fun s ->
        if Bitset.cardinal s >= 2 then Float.nan else 10.0)
  in
  Alcotest.(check bool) "NaN flagged" true
    (has_violation ~containing:"nan" (Verify.check_estimates g nan_est));
  let neg_est = poisoned (fun _ -> 10.0) (fun _ -> -3.0) in
  Alcotest.(check bool) "negative flagged" true
    (has_violation ~containing:"negative" (Verify.check_estimates g neg_est));
  let inf_est =
    poisoned (fun _ -> 10.0) (fun s ->
        if Bitset.cardinal s >= 3 then Float.infinity else 10.0)
  in
  Alcotest.(check bool) "infinity flagged" true
    (not (Verify.Violation.ok (Verify.check_estimates g inf_est)))

let test_rejects_inclusion_blowup () =
  let _, g = chain_graph () in
  (* Each added relation multiplies the estimate by 1000, far beyond the
     cross-product bound est(S) · base(r) with base 2. *)
  let blowup =
    poisoned
      (fun _ -> 2.0)
      (fun s -> 1000.0 ** float_of_int (Bitset.cardinal s))
  in
  let r = Verify.check_estimates g blowup in
  Alcotest.(check bool) "cross-product bound flagged" true
    (has_violation ~containing:"cross-product bound" r)

let test_pk_bound_on_truth () =
  let _, g = chain_graph () in
  let est = true_estimator g in
  Alcotest.(check bool) "true cardinalities satisfy PK bound" true
    (Verify.Violation.ok (Verify.check_estimates ~pk_bound:true g est));
  (* An estimator that grows when joining a PK side breaks the bound. *)
  let grower =
    poisoned (fun _ -> 1.0) (fun s -> 10.0 ** float_of_int (Bitset.cardinal s))
  in
  let r = Verify.check_estimates ~pk_bound:true ~slack:1e9 g grower in
  Alcotest.(check bool) "PK bound flagged" true
    (has_violation ~containing:"PK inclusion bound" r)

let test_q_error_checked () =
  (match Verify.q_error_checked ~estimate:10.0 ~truth:100.0 with
  | Ok q -> Alcotest.(check (float 1e-9)) "q-error" 10.0 q
  | Error e -> Alcotest.failf "unexpected rejection: %s" e);
  Alcotest.(check bool) "NaN estimate rejected" true
    (Result.is_error (Verify.q_error_checked ~estimate:Float.nan ~truth:1.0));
  Alcotest.(check bool) "infinite truth rejected" true
    (Result.is_error (Verify.q_error_checked ~estimate:1.0 ~truth:Float.infinity))

(* ------------------------------------------------------------------ *)
(* Cost sanitizer                                                      *)

let models_accept_dp_plans =
  Support.qcheck_case ~count:15 ~name:"cost sanitizer: three models clean on DP plans"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      let db, g = micro ~relations seed in
      Storage.Database.set_index_config db Storage.Database.Pk_fk;
      let est = true_estimator g in
      let env =
        { Cost.Cost_model.graph = g; db; card = est.Cardest.Estimator.subset }
      in
      List.for_all
        (fun model ->
          let search =
            Planner.Search.create ~model ~graph:g ~db
              ~card:est.Cardest.Estimator.subset ()
          in
          let plan, cost = Planner.Dp.optimize search in
          Verify.Violation.ok
            (Verify.check_costs ~reported_cost:cost env model plan))
        Cost.Cost_model.all)

let test_rejects_broken_cost_model () =
  let db, g = chain_graph () in
  let est = true_estimator g in
  let env =
    { Cost.Cost_model.graph = g; db; card = est.Cardest.Estimator.subset }
  in
  let search =
    Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
      ~card:est.Cardest.Estimator.subset ()
  in
  let plan, cost = Planner.Dp.optimize search in
  let negative =
    {
      Cost.Cost_model.name = "negative";
      scan_cost = (fun _ _ -> -1.0);
      join_cost = (fun _ _ ~outer:_ ~inner:_ ~outer_cost:_ ~inner_cost:_ -> -5.0);
    }
  in
  let r = Verify.check_costs env negative plan in
  Alcotest.(check bool) "negative cost flagged" true
    (has_violation ~containing:"negative" r);
  (* Dropping the children's cost breaks subtree monotonicity. *)
  let forgetful =
    {
      Cost.Cost_model.name = "forgetful";
      scan_cost = (fun env r -> Cost.Cost_model.cmm.Cost.Cost_model.scan_cost env r);
      join_cost = (fun _ _ ~outer:_ ~inner:_ ~outer_cost:_ ~inner_cost:_ -> 0.5);
    }
  in
  let r = Verify.check_costs env forgetful plan in
  Alcotest.(check bool) "non-monotone cost flagged" true
    (has_violation ~containing:"less than its outer child" r);
  (* A wrong reported total is a search/model disagreement. *)
  let r =
    Verify.check_costs ~reported_cost:(cost *. 2.0) env Cost.Cost_model.cmm plan
  in
  Alcotest.(check bool) "reported-cost mismatch flagged" true
    (has_violation ~containing:"recomputes" r)

let dp_dominates_heuristics =
  Support.qcheck_case ~count:15 ~name:"differential: DP <= GOO and QuickPick"
    QCheck.(pair small_int (int_range 3 5))
    (fun (seed, relations) ->
      let db, g = micro ~relations seed in
      Storage.Database.set_index_config db Storage.Database.Pk_only;
      let est = true_estimator g in
      let search =
        Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:g ~db
          ~card:est.Cardest.Estimator.subset ()
      in
      let _, dp_cost = Planner.Dp.optimize search in
      let _, goo_cost = Planner.Goo.optimize search in
      let _, qp_cost =
        Planner.Quickpick.best_of search (Util.Prng.create seed) ~attempts:5
      in
      Verify.Violation.ok
        (Verify.Cost_sanitizer.differential ~dp:("dp", dp_cost)
           [ ("goo", goo_cost); ("quickpick", qp_cost) ]))

let test_differential_rejects_suboptimal_dp () =
  let r =
    Verify.Cost_sanitizer.differential ~dp:("dp", 10.0) [ ("goo", 5.0) ]
  in
  Alcotest.(check bool) "suboptimal DP flagged" true
    (has_violation ~containing:"missed part" r)

(* ------------------------------------------------------------------ *)
(* Query-graph lint                                                    *)

let lint_accepts_micro_graphs =
  Support.qcheck_case ~count:20 ~name:"graph lint: random micro graphs clean"
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, relations) ->
      let _, g = micro ~relations ~extra_edges:0 seed in
      Verify.Violation.ok (Verify.check_graph g))

let test_lint_rejects_duplicate_edge () =
  let prng = Util.Prng.create 5 in
  let db = Support.micro_db prng ~tables:2 ~rows:10 in
  let rels =
    Array.init 2 (fun idx ->
        {
          QG.idx;
          alias = Printf.sprintf "t%d" idx;
          table = Storage.Database.find_table db (Printf.sprintf "t%d" idx);
          preds = [];
        })
  in
  let e =
    {
      QG.left = 1;
      left_col = Storage.Table.column_index rels.(1).QG.table "fk0";
      right = 0;
      right_col = Storage.Table.column_index rels.(0).QG.table "id";
      pk_side = Some `Right;
    }
  in
  let g = QG.create ~name:"dup" rels [ e; e ] in
  Alcotest.(check bool) "duplicate edge flagged" true
    (has_violation ~containing:"duplicate edge" (Verify.check_graph g));
  (* Mislabeled PK side: fk0 is not t1's primary key. *)
  let mislabeled = { e with QG.pk_side = Some `Left } in
  let g = QG.create ~name:"mislabel" rels [ mislabeled ] in
  Alcotest.(check bool) "PK mislabel flagged" true
    (has_violation ~containing:"primary key" (Verify.check_graph g))

let test_lint_rejects_duplicate_predicate () =
  let prng = Util.Prng.create 7 in
  let db = Support.micro_db prng ~tables:2 ~rows:10 in
  let atom = Query.Predicate.Cmp { col = 0; op = Query.Predicate.Gt; code = 3 } in
  let rels =
    Array.init 2 (fun idx ->
        {
          QG.idx;
          alias = Printf.sprintf "t%d" idx;
          table = Storage.Database.find_table db (Printf.sprintf "t%d" idx);
          (* The same atom bound twice on t1: estimators would apply its
             selectivity twice. *)
          preds = (if idx = 1 then [ atom; atom ] else [ atom ]);
        })
  in
  let e =
    {
      QG.left = 1;
      left_col = Storage.Table.column_index rels.(1).QG.table "fk0";
      right = 0;
      right_col = Storage.Table.column_index rels.(0).QG.table "id";
      pk_side = Some `Right;
    }
  in
  let g = QG.create ~name:"duppred" rels [ e ] in
  Alcotest.(check bool) "duplicate filter predicate flagged" true
    (has_violation ~containing:"duplicate filter predicate"
       (Verify.check_graph g));
  (* The same atom on two different aliases is fine. *)
  let rels_ok =
    Array.map (fun r -> { r with QG.preds = [ atom ] }) rels
  in
  let g_ok = QG.create ~name:"okpred" rels_ok [ e ] in
  Alcotest.(check bool) "distinct per-alias predicates clean" true
    (Verify.Violation.ok (Verify.check_graph g_ok))

(* ------------------------------------------------------------------ *)
(* Enumerator / harness integration                                    *)

let test_ensure_plan_raises () =
  let _, g = chain_graph () in
  let s1 = Plan.scan 1 in
  let dup =
    {
      Plan.op =
        Plan.Join
          {
            algo = Plan.Hash_join;
            outer = Plan.join Plan.Hash_join ~outer:(Plan.scan 0) ~inner:s1;
            inner = s1;
          };
      set = Bitset.of_list [ 0; 1; 2 ];
    }
  in
  match Verify.ensure_plan ~what:"star" g dup with
  | () -> Alcotest.fail "malformed plan accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message is actionable: %s" msg)
        true
        (contains "appears 2 times" msg)

let test_harness_verifies_choices () =
  let h =
    Experiments.Harness.create ~scale:0.0004
      ~queries:[ Workload.Job.find "1a" ] ()
  in
  let qctx = Experiments.Harness.find h "1a" in
  let est = Experiments.Harness.estimator h qctx "PostgreSQL" in
  let model = Cost.Cost_model.cmm in
  Atomic.set Experiments.Harness.debug_verify true;
  Fun.protect
    ~finally:(fun () -> Atomic.set Experiments.Harness.debug_verify false)
    (fun () ->
      (* The real pipeline passes the full sanitizer stack... *)
      let plan, _cost = Experiments.Harness.plan_with h qctx ~est ~model () in
      (* ...and a mutated winning plan is rejected with a diagnosis. *)
      let broken = { plan with Plan.set = Bitset.remove 0 plan.Plan.set } in
      match
        Experiments.Harness.verify_choice h qctx ~est ~model
          ~shape:Planner.Search.Any_shape (broken, 0.0)
      with
      | () -> Alcotest.fail "mutated plan accepted"
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "mentions coverage: %s" msg)
            true (contains "covers" msg))

let suite =
  [
    check_all_accepts_pipeline;
    system_estimators_accepted;
    Alcotest.test_case "rejects duplicate relation" `Quick test_rejects_duplicate_relation;
    Alcotest.test_case "rejects cross product" `Quick test_rejects_cross_product;
    Alcotest.test_case "rejects incomplete plan" `Quick test_rejects_incomplete_plan;
    Alcotest.test_case "rejects composite INL inner" `Quick test_rejects_inl_composite_inner;
    Alcotest.test_case "rejects shape violation" `Quick test_rejects_shape_violation;
    Alcotest.test_case "rejects NaN/negative/Inf estimates" `Quick test_rejects_bad_estimates;
    Alcotest.test_case "rejects inclusion blow-up" `Quick test_rejects_inclusion_blowup;
    Alcotest.test_case "PK bound on true cardinalities" `Quick test_pk_bound_on_truth;
    Alcotest.test_case "q-error bookkeeping" `Quick test_q_error_checked;
    models_accept_dp_plans;
    Alcotest.test_case "rejects broken cost model" `Quick test_rejects_broken_cost_model;
    dp_dominates_heuristics;
    Alcotest.test_case "differential rejects suboptimal DP" `Quick test_differential_rejects_suboptimal_dp;
    lint_accepts_micro_graphs;
    Alcotest.test_case "lint rejects bad edges" `Quick test_lint_rejects_duplicate_edge;
    Alcotest.test_case "lint rejects duplicate predicates" `Quick
      test_lint_rejects_duplicate_predicate;
    Alcotest.test_case "ensure_plan raises on malformed plans" `Quick test_ensure_plan_raises;
    Alcotest.test_case "harness debug verify" `Quick test_harness_verifies_choices;
  ]
