(* Tests for lib/reopt: feedback-store overlay semantics, the
   re-optimization driver's invariants (identical results with the loop
   on and off, sanitized re-planned fragments, deterministic
   trajectories), and the Simpli-Squared enumerator registration. *)

module QG = Query.Query_graph
module Bitset = Util.Bitset

let db = Support.imdb_mid

let bind name =
  let q = Workload.Job.find name in
  Sqlfront.Binder.bind_sql (Lazy.force db) ~name q.Workload.Job.sql

let pg_estimator database graph =
  Cardest.Systems.postgres
    (Dbstats.Analyze.create database)
    { Cardest.Systems.db = database; graph }

(* ------------------------------------------------------------------ *)
(* Feedback store and overlay                                          *)

let constant name v =
  Cardest.Estimator.of_function ~name ~base:(fun _ -> v) (fun _ -> v)

let test_feedback_store () =
  let fb = Reopt.Feedback.create () in
  Alcotest.(check int) "empty" 0 (Reopt.Feedback.cardinal fb);
  let s = Bitset.of_list [ 1; 2 ] in
  Reopt.Feedback.record fb s ~rows:41;
  Reopt.Feedback.record fb s ~rows:42;
  Alcotest.(check int) "overwrite keeps one entry" 1
    (Reopt.Feedback.cardinal fb);
  Alcotest.(check (option (float 0.0))) "latest observation wins"
    (Some 42.0)
    (Reopt.Feedback.observed fb s);
  Alcotest.(check (option (float 0.0))) "unobserved" None
    (Reopt.Feedback.observed fb (Bitset.of_list [ 1; 3 ]))

let test_overlay_semantics () =
  let fb = Reopt.Feedback.create () in
  let seen = Bitset.of_list [ 0; 1 ] in
  let unseen = Bitset.of_list [ 0; 2 ] in
  Reopt.Feedback.record fb seen ~rows:7;
  let est = Reopt.Feedback.overlay ~fallback:(constant "c" 1000.0) fb in
  Alcotest.(check (float 0.0)) "observed answers exactly" 7.0
    (est.Cardest.Estimator.subset seen);
  Alcotest.(check (float 0.0)) "unobserved delegates" 1000.0
    (est.Cardest.Estimator.subset unseen);
  (* Snapshot semantics: an overlay is frozen at creation. *)
  Reopt.Feedback.record fb unseen ~rows:3;
  Alcotest.(check (float 0.0)) "existing overlay unchanged" 1000.0
    (est.Cardest.Estimator.subset unseen);
  let est' = Reopt.Feedback.overlay ~fallback:(constant "c" 1000.0) fb in
  Alcotest.(check (float 0.0)) "fresh overlay sees it" 3.0
    (est'.Cardest.Estimator.subset unseen);
  Alcotest.(check bool) "snapshots get distinct cache names" false
    (String.equal est.Cardest.Estimator.name est'.Cardest.Estimator.name)

let test_overlay_name_order_independent () =
  (* The estimator name embeds a content digest; recording the same
     observations in a different order must produce the same name, or
     the pipeline's name-keyed plan cache would split. *)
  let a = Reopt.Feedback.create () and b = Reopt.Feedback.create () in
  let obs = [ (Bitset.of_list [ 0; 1 ], 5); (Bitset.of_list [ 2; 3 ], 9) ] in
  List.iter (fun (s, rows) -> Reopt.Feedback.record a s ~rows) obs;
  List.iter
    (fun (s, rows) -> Reopt.Feedback.record b s ~rows)
    (List.rev obs);
  let name fb =
    (Reopt.Feedback.overlay ~fallback:(constant "c" 1.0) fb)
      .Cardest.Estimator.name
  in
  Alcotest.(check string) "digest is order-independent" (name a) (name b)

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)

let drive database (b : Sqlfront.Binder.bound) ~threshold ~max_replans =
  let graph = b.Sqlfront.Binder.graph in
  Reopt.Driver.run ~db:database ~graph
    ~config:Exec.Engine_config.default_9_4 ~model:Cost.Cost_model.postgres
    ~estimator:(pg_estimator database graph)
    ~threshold ~max_replans
    ~projections:b.Sqlfront.Binder.projections ()

let test_driver_results_identical_and_sanitized () =
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let total_replans = ref 0 in
  List.iter
    (fun name ->
      let b = bind name in
      let graph = b.Sqlfront.Binder.graph in
      let off = drive database b ~threshold:1.1 ~max_replans:0 in
      let on = drive database b ~threshold:1.1 ~max_replans:8 in
      Alcotest.(check int)
        (name ^ ": off arm never re-plans")
        0 off.Reopt.Driver.replans;
      total_replans := !total_replans + on.Reopt.Driver.replans;
      (* The executor is exact, so both arms must return the query's true
         result — rows and aggregates. *)
      Alcotest.(check int)
        (name ^ ": identical row counts")
        off.Reopt.Driver.result.Exec.Executor.rows
        on.Reopt.Driver.result.Exec.Executor.rows;
      Alcotest.(check bool)
        (name ^ ": identical aggregates")
        true
        (off.Reopt.Driver.result.Exec.Executor.mins
        = on.Reopt.Driver.result.Exec.Executor.mins);
      let truth =
        int_of_float
          (Cardest.True_card.card
             (Cardest.True_card.compute graph)
             (QG.full_set graph))
      in
      Alcotest.(check int) (name ^ ": exact result") truth
        on.Reopt.Driver.result.Exec.Executor.rows;
      (* The driver sanitizes every re-planned tree before executing it;
         re-checking the survivor here would catch a driver that skips
         the check (ensure_plan raises on any violation). *)
      Verify.ensure_plan ~what:(name ^ "/test") graph
        on.Reopt.Driver.final_plan;
      Alcotest.(check bool)
        (name ^ ": accounting sane")
        true
        (on.Reopt.Driver.wasted_work >= 0
        && on.Reopt.Driver.reused_work >= 0
        && on.Reopt.Driver.result.Exec.Executor.work > 0
        && Reopt.Feedback.cardinal on.Reopt.Driver.feedback > 0))
    [ "2a"; "16d" ];
  Alcotest.(check bool)
    (Printf.sprintf "loop actually re-planned (%d re-plans)" !total_replans)
    true (!total_replans > 0)

let test_driver_deterministic () =
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let b = bind "2a" in
  let run () = drive database b ~threshold:1.3 ~max_replans:8 in
  let a = run () and c = run () in
  Alcotest.(check int) "same re-plan count" a.Reopt.Driver.replans
    c.Reopt.Driver.replans;
  Alcotest.(check int) "same total work"
    a.Reopt.Driver.result.Exec.Executor.work
    c.Reopt.Driver.result.Exec.Executor.work;
  Alcotest.(check int) "same rows" a.Reopt.Driver.result.Exec.Executor.rows
    c.Reopt.Driver.result.Exec.Executor.rows

let test_driver_validates_arguments () =
  let database = Lazy.force db in
  let b = bind "1a" in
  (try
     ignore (drive database b ~threshold:0.5 ~max_replans:8);
     Alcotest.fail "threshold < 1 must be rejected"
   with Invalid_argument _ -> ());
  try
    ignore (drive database b ~threshold:2.0 ~max_replans:(-1));
    Alcotest.fail "negative max_replans must be rejected"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Registry integration                                                *)

let test_simpli_enumerator () =
  let database = Lazy.force db in
  Storage.Database.set_index_config database Storage.Database.Pk_only;
  let b = bind "6a" in
  let graph = b.Sqlfront.Binder.graph in
  let est = pg_estimator database graph in
  let search =
    Planner.Search.create ~model:Cost.Cost_model.postgres ~graph ~db:database
      ~card:est.Cardest.Estimator.subset ()
  in
  let plan, cost = Planner.Simpli.optimize search in
  Alcotest.(check bool) "covers the full set" true
    (Bitset.equal plan.Plan.set (QG.full_set graph));
  Alcotest.(check bool) "finite cost" true (Float.is_finite cost && cost > 0.0);
  Verify.ensure_plan ~what:"simpli/test" graph plan;
  (* Registry round trip: the name resolves to the variant and to the
     verifier's enumerator. *)
  (match Core.Registry.(find_exn enumerators) "simpli" with
  | Core.Registry.Simpli_squared -> ()
  | _ -> Alcotest.fail "'simpli' must resolve to Simpli_squared");
  Alcotest.(check bool) "verify maps simpli" true
    (Core.Registry.verify_enumerator Core.Registry.Simpli_squared
    = Verify.Simpli)

let test_feedback_estimator_registered () =
  (* The "feedback" registry entry with an empty store must behave as
     pure PostgreSQL delegation. *)
  let s = Core.Session.of_database (Lazy.force db) in
  let q = Core.Session.job s "1a" in
  let fb = Core.Session.estimator s q "feedback" in
  let pg = Core.Session.estimator s q "PostgreSQL" in
  let full = QG.full_set q.Core.Session.graph in
  Alcotest.(check (float 0.0)) "empty overlay delegates"
    (pg.Cardest.Estimator.subset full)
    (fb.Cardest.Estimator.subset full)

let suite =
  [
    Alcotest.test_case "feedback store" `Quick test_feedback_store;
    Alcotest.test_case "overlay semantics" `Quick test_overlay_semantics;
    Alcotest.test_case "overlay digest order-independent" `Quick
      test_overlay_name_order_independent;
    Alcotest.test_case "identical results, sanitized plans" `Quick
      test_driver_results_identical_and_sanitized;
    Alcotest.test_case "driver deterministic" `Quick test_driver_deterministic;
    Alcotest.test_case "driver validates arguments" `Quick
      test_driver_validates_arguments;
    Alcotest.test_case "simpli enumerator" `Quick test_simpli_enumerator;
    Alcotest.test_case "feedback estimator registered" `Quick
      test_feedback_estimator_registered;
  ]
