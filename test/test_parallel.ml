(* Tests for the multicore harness: the domain pool's ordering, failure
   and reuse semantics, pipeline cache counters under concurrent probes,
   and — the load-bearing guarantee — byte-identical experiment output
   at every job count. *)

module Pool = Util.Domain_pool
module Harness = Experiments.Harness

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Uneven per-item work, so items finish out of claim order. *)
let spin_weight i =
  let rounds = 1 + ((i * 7919) mod 23) * 400 in
  let acc = ref 0 in
  for k = 1 to rounds do
    acc := (!acc + k) land 0xFFFF
  done;
  !acc

let test_map_array_ordering () =
  with_pool ~domains:4 (fun pool ->
      let xs = Array.init 200 Fun.id in
      let expect = Array.map (fun i -> (i, spin_weight i)) xs in
      let got = Pool.map_array pool (fun i -> (i, spin_weight i)) xs in
      Alcotest.(check (array (pair int int)))
        "results land by input index" expect got)

let test_map_list_ordering () =
  with_pool ~domains:3 (fun pool ->
      let xs = List.init 57 string_of_int in
      Alcotest.(check (list string))
        "list map preserves order" xs
        (Pool.map_list pool Fun.id xs))

let test_map_edge_sizes () =
  with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array pool succ [||]);
      Alcotest.(check (array int))
        "singleton" [| 8 |]
        (Pool.map_array pool succ [| 7 |]))

let test_exception_propagation () =
  with_pool ~domains:4 (fun pool ->
      match
        Pool.map_array pool
          (fun i ->
            ignore (spin_weight i);
            if i = 3 || i = 7 then failwith (Printf.sprintf "boom%d" i);
            i)
          (Array.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "expected the worker failure to propagate"
      | exception Failure msg ->
          (* Items are claimed in index order, so index 3 runs (and its
             error wins) even when index 7 fails first on another domain. *)
          Alcotest.(check string) "lowest-indexed failure wins" "boom3" msg)

let test_pool_reuse () =
  with_pool ~domains:4 (fun pool ->
      let xs = Array.init 40 Fun.id in
      let a = Pool.map_array pool (fun x -> x * 2) xs in
      (* A failed map must leave the pool usable. *)
      (try ignore (Pool.map_array pool (fun _ -> failwith "once") xs)
       with Failure _ -> ());
      let b = Pool.map_array pool (fun x -> x * 3) xs in
      Alcotest.(check (array int)) "first map" (Array.map (fun x -> x * 2) xs) a;
      Alcotest.(check (array int)) "after failure" (Array.map (fun x -> x * 3) xs) b)

let test_nested_maps () =
  with_pool ~domains:4 (fun pool ->
      let got =
        Pool.map_array pool
          (fun i ->
            (* Nested maps degrade to the serial path instead of
               deadlocking on the single task slot. *)
            Array.to_list (Pool.map_array pool (fun j -> (10 * i) + j)
                             (Array.init 5 Fun.id)))
          (Array.init 6 Fun.id)
      in
      let expect =
        Array.init 6 (fun i -> List.init 5 (fun j -> (10 * i) + j))
      in
      Alcotest.(check (array (list int))) "nested results" expect got)

let test_serial_pool () =
  with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "no workers spawned" 1 (Pool.size pool);
      let order = ref [] in
      let got =
        Pool.map_array pool
          (fun i ->
            order := i :: !order;
            i + 1)
          (Array.init 10 Fun.id)
      in
      Alcotest.(check (array int)) "serial map" (Array.init 10 succ) got;
      Alcotest.(check (list int))
        "strict left-to-right evaluation"
        (List.init 10 (fun i -> 9 - i))
        !order)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 in
  ignore (Pool.map_array pool succ (Array.init 8 Fun.id));
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map_array pool succ [| 1; 2 |] with
  | _ -> Alcotest.fail "map after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline cache counters under concurrent probes                     *)

(* Figure 4 and 9 look up their queries by name; figure 9 additionally
   needs "13a". *)
let mini_names = [ "1a"; "2b"; "3a"; "6a"; "13a"; "16d"; "17b"; "25c" ]

let mini_queries =
  List.filter
    (fun q -> List.mem q.Workload.Job.name mini_names)
    Workload.Job.all

let probe_everything h =
  ignore
    (Harness.par_map h
       (fun (q : Harness.qctx) ->
         List.iter
           (fun system ->
             let est = Harness.estimator h q system in
             ignore
               (est.Cardest.Estimator.subset
                  (Query.Query_graph.full_set q.Harness.graph)))
           [ "PostgreSQL"; "DBMS A"; "true" ];
         ignore
           (Harness.plan_with h q
              ~est:(Harness.estimator h q "true")
              ~model:Cost.Cost_model.cmm ()))
       h.Harness.queries);
  Harness.stats h

let test_counters_match_serial () =
  let run jobs =
    let h =
      Harness.create ~seed:11 ~scale:0.0006 ~queries:mini_queries ~jobs ()
    in
    Fun.protect
      ~finally:(fun () -> Harness.shutdown h)
      (fun () -> probe_everything h)
  in
  let serial = run 1 and parallel = run 4 in
  let check what f =
    Alcotest.(check int) what (f serial) (f parallel)
  in
  check "estimators built" (fun s -> s.Core.Pipeline.estimators_built);
  check "estimators reused" (fun s -> s.Core.Pipeline.estimators_reused);
  check "estimator probes" (fun s -> s.Core.Pipeline.estimator_probes);
  check "plan hits" (fun s -> s.Core.Pipeline.plan_hits);
  check "plan misses" (fun s -> s.Core.Pipeline.plan_misses);
  check "plans enumerated" (fun s -> s.Core.Pipeline.plans_enumerated)

(* ------------------------------------------------------------------ *)
(* The determinism guarantee: every catalog experiment byte-identical   *)

let test_catalog_deterministic () =
  let render_all jobs =
    let h =
      Harness.create ~seed:11 ~scale:0.0006 ~queries:mini_queries ~jobs ()
    in
    Fun.protect
      ~finally:(fun () -> Harness.shutdown h)
      (fun () ->
        List.map
          (fun (e : Experiments.Catalog.entry) ->
            (e.Experiments.Catalog.id, e.Experiments.Catalog.render h))
          Experiments.Catalog.all)
  in
  let serial = render_all 1 and parallel = render_all 4 in
  List.iter2
    (fun (id, a) (_, b) ->
      Alcotest.(check string)
        (Printf.sprintf "%s is byte-identical at -j 1 and -j 4" id)
        a b)
    serial parallel

let suite =
  [
    Alcotest.test_case "map_array ordering" `Quick test_map_array_ordering;
    Alcotest.test_case "map_list ordering" `Quick test_map_list_ordering;
    Alcotest.test_case "empty and singleton" `Quick test_map_edge_sizes;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "pool reuse after failure" `Quick test_pool_reuse;
    Alcotest.test_case "nested maps run serial" `Quick test_nested_maps;
    Alcotest.test_case "single-domain pool is serial" `Quick test_serial_pool;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "cache counters match serial" `Slow
      test_counters_match_serial;
    Alcotest.test_case "catalog byte-identical under -j" `Slow
      test_catalog_deterministic;
  ]
