let () =
  Alcotest.run "jobench"
    [
      ("util", Test_util.suite);
      ("storage", Test_storage.suite);
      ("query", Test_query.suite);
      ("datagen", Test_datagen.suite);
      ("sqlfront", Test_sqlfront.suite);
      ("dbstats", Test_dbstats.suite);
      ("cardest", Test_cardest.suite);
      ("cost", Test_cost.suite);
      ("plan", Test_plan.suite);
      ("planner", Test_planner.suite);
      ("verify", Test_verify.suite);
      ("domlint", Test_domlint.suite);
      ("obs", Test_obs.suite);
      ("registry", Test_registry.suite);
      ("parallel", Test_parallel.suite);
      ("exec", Test_exec.suite);
      ("morsel", Test_morsel.suite);
      ("serve", Test_serve.suite);
      ("kernels", Test_kernels.suite);
      ("workload", Test_workload.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("reopt", Test_reopt.suite);
      ("csv", Test_csv.suite);
      ("integration", Test_integration.suite);
    ]
