(* Tests for the typed component registry and the memoizing planning
   pipeline: name round-trips, structured errors, parameterized parsing,
   cache consistency (a cached plan is identical to a freshly computed
   one), cross-experiment plan sharing (counter-verified), and the
   per-harness scoping of the verify memo. *)

module Registry = Core.Registry
module Pipeline = Core.Pipeline

let plan_testable =
  Alcotest.testable (fun fmt _ -> Format.fprintf fmt "<plan>") ( = )

(* ------------------------------------------------------------------ *)
(* Round-trips and structured errors                                   *)

let check_roundtrip : type a. a Registry.t -> unit =
 fun registry ->
  List.iter
    (fun name ->
      match Registry.find registry name with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s %S did not round-trip: %s"
            (Registry.kind registry) name (Registry.error_to_string e))
    (Registry.names registry)

let test_roundtrips () =
  check_roundtrip Registry.estimators;
  check_roundtrip Registry.cost_models;
  check_roundtrip Registry.enumerators;
  check_roundtrip Registry.engines;
  check_roundtrip Registry.index_configs

let test_unknown_name () =
  match Registry.find Registry.estimators "nope" with
  | Ok _ -> Alcotest.fail "unknown estimator resolved"
  | Error e ->
      Alcotest.(check string) "kind" "estimator" e.Registry.kind;
      Alcotest.(check string) "input" "nope" e.Registry.input;
      Alcotest.(check (list string))
        "valid lists every canonical name"
        (Registry.names Registry.estimators)
        e.Registry.valid

let contains haystack needle =
  let n = String.length needle in
  let found = ref false in
  String.iteri
    (fun i _ ->
      if i + n <= String.length haystack && String.sub haystack i n = needle
      then found := true)
    haystack;
  !found

let test_find_exn_message () =
  match Registry.find_exn Registry.cost_models "bogus" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the input" true (contains msg "bogus");
      Alcotest.(check bool) "lists alternatives" true (contains msg "Cmm")

let test_duplicate_name_rejected () =
  let entry name = { Registry.name; doc = ""; value = () } in
  match Registry.make ~kind:"dup" [ entry "a"; entry "a" ] with
  | _ -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

let test_cost_model_names_match () =
  (* The registry must cover exactly the library's cost models. *)
  Alcotest.(check (list string))
    "registry = Cost_model.all"
    (List.map (fun m -> m.Cost.Cost_model.name) Cost.Cost_model.all)
    (Registry.names Registry.cost_models)

(* ------------------------------------------------------------------ *)
(* Parameterized enumerator names                                      *)

let test_enumerator_parse () =
  let check name expected =
    match Registry.find Registry.enumerators name with
    | Ok e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s parses" name)
          true (e = expected)
    | Error e -> Alcotest.fail (Registry.error_to_string e)
  in
  check "dp" Registry.Exhaustive_dp;
  check "goo" Registry.Greedy_operator_ordering;
  check "quickpick:17" (Registry.Quickpick 17);
  (match Registry.find Registry.enumerators "quickpick:x" with
  | Ok _ -> Alcotest.fail "quickpick:x parsed"
  | Error e -> Alcotest.(check string) "kind" "enumerator" e.Registry.kind);
  Alcotest.(check string) "canonical name" "quickpick:17"
    (Registry.enumerator_name (Registry.Quickpick 17))

let test_catalog () =
  Alcotest.(check int) "14 experiments" 14
    (List.length Experiments.Catalog.all);
  let e = Experiments.Catalog.find_exn "table-3" in
  Alcotest.(check string) "id" "table-3" e.Experiments.Catalog.id;
  match Experiments.Catalog.find "nope" with
  | Ok _ -> Alcotest.fail "unknown experiment resolved"
  | Error err ->
      Alcotest.(check string) "kind" "experiment" err.Registry.kind

(* ------------------------------------------------------------------ *)
(* Cache consistency: a cached plan choice must be indistinguishable
   from one computed by a fresh session over the same database.         *)

let combos =
  [
    ("PostgreSQL", "PostgreSQL", Planner.Search.Any_shape, false);
    ("DBMS A", "Cmm", Planner.Search.Any_shape, true);
    ("HyPer", "tuned", Planner.Search.Only_left_deep, false);
    ("true", "Cmm", Planner.Search.Only_right_deep, false);
  ]

let test_cache_consistency () =
  let warm = Core.Session.of_database (Support.fresh_imdb ()) in
  let cold = Core.Session.of_database (Support.fresh_imdb ()) in
  let qw = Core.Session.job warm "13d" in
  let qc = Core.Session.job cold "13d" in
  List.iter
    (fun (estimator, cost_model, shape, allow_nl) ->
      let first =
        Core.Session.optimize warm ~estimator ~cost_model ~shape ~allow_nl qw
      in
      let cached =
        Core.Session.optimize warm ~estimator ~cost_model ~shape ~allow_nl qw
      in
      let fresh =
        Core.Session.optimize cold ~estimator ~cost_model ~shape ~allow_nl qc
      in
      let label = Printf.sprintf "%s/%s" estimator cost_model in
      Alcotest.check plan_testable (label ^ ": cached plan = first plan")
        first.Core.Session.plan cached.Core.Session.plan;
      Alcotest.(check (float 0.0))
        (label ^ ": cached cost = first cost")
        first.Core.Session.estimated_cost cached.Core.Session.estimated_cost;
      Alcotest.check plan_testable (label ^ ": cached plan = fresh session's")
        fresh.Core.Session.plan cached.Core.Session.plan;
      Alcotest.(check (float 0.0))
        (label ^ ": cached cost = fresh session's")
        fresh.Core.Session.estimated_cost cached.Core.Session.estimated_cost)
    combos;
  let st = Pipeline.stats (Core.Session.pipeline warm) in
  Alcotest.(check int)
    "one miss per combo" (List.length combos) st.Pipeline.plan_misses;
  Alcotest.(check int)
    "one hit per combo" (List.length combos) st.Pipeline.plan_hits;
  Alcotest.(check int)
    "each plan enumerated exactly once" st.Pipeline.plan_misses
    st.Pipeline.plans_enumerated;
  Alcotest.(check bool)
    "estimator instances were reused" true
    (st.Pipeline.estimators_reused > 0)

let test_cache_keyed_on_index_config () =
  (* The same combo under a different physical design must re-plan, not
     serve the other design's plan. *)
  let s = Core.Session.of_database (Support.fresh_imdb ()) in
  let q = Core.Session.job s "13d" in
  Core.Session.set_physical_design s Storage.Database.Pk_only;
  let pk = Core.Session.optimize s ~cost_model:"Cmm" q in
  Core.Session.set_physical_design s Storage.Database.Pk_fk;
  let pkfk = Core.Session.optimize s ~cost_model:"Cmm" q in
  let st = Pipeline.stats (Core.Session.pipeline s) in
  Alcotest.(check int) "two distinct cache entries" 2 st.Pipeline.plan_misses;
  (* Index nested-loop joins become available under FK indexes, so the
     costs must differ even if the join order happens to agree. *)
  Alcotest.(check bool)
    "designs planned independently" true
    (pk.Core.Session.estimated_cost <> pkfk.Core.Session.estimated_cost
    || pk.Core.Session.plan <> pkfk.Core.Session.plan)

(* ------------------------------------------------------------------ *)
(* Cross-experiment sharing: running two plan-space experiments over
   one harness must enumerate fewer plans than it requests.             *)

let mini_queries names =
  List.filter (fun q -> List.mem q.Workload.Job.name names) Workload.Job.all

let test_cache_across_experiments () =
  let h =
    Experiments.Harness.create ~seed:11 ~scale:0.0006
      ~queries:(mini_queries [ "1a"; "3a"; "6a" ])
      ()
  in
  ignore (Experiments.Exp_table2.measure h);
  ignore (Experiments.Exp_table3.measure h);
  let st = Experiments.Harness.stats h in
  let requests = st.Pipeline.plan_hits + st.Pipeline.plan_misses in
  Alcotest.(check bool) "some requests were served from cache" true
    (st.Pipeline.plan_hits > 0);
  Alcotest.(check bool)
    (Printf.sprintf "enumerations (%d) < planning requests (%d)"
       st.Pipeline.plans_enumerated requests)
    true
    (st.Pipeline.plans_enumerated < requests);
  Alcotest.(check int) "every miss enumerates exactly once"
    st.Pipeline.plan_misses st.Pipeline.plans_enumerated;
  Alcotest.(check bool) "estimator probes are counted" true
    (st.Pipeline.estimator_probes > 0)

(* ------------------------------------------------------------------ *)
(* The verify memo is per harness and keyed on the index config (it
   used to be a module global keyed on query x estimator only, so a
   second harness — or a second physical design — skipped the check).   *)

let test_verify_memo_scoped () =
  let queries = mini_queries [ "1a" ] in
  let h = Experiments.Harness.create ~seed:11 ~scale:0.0006 ~queries () in
  let q = Experiments.Harness.find h "1a" in
  let est = Experiments.Harness.estimator h q "PostgreSQL" in
  Fun.protect
    ~finally:(fun () -> Atomic.set Experiments.Harness.debug_verify false)
    (fun () ->
      Atomic.set Experiments.Harness.debug_verify true;
      ignore
        (Experiments.Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm ());
      ignore
        (Experiments.Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm ());
      Alcotest.(check int) "one entry per query x estimator x config" 1
        (Util.Shard_map.length h.Experiments.Harness.verify_memo);
      Experiments.Harness.with_index_config h Storage.Database.Pk_fk (fun () ->
          ignore
            (Experiments.Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm
               ()));
      Alcotest.(check int) "re-verified under the new physical design" 2
        (Util.Shard_map.length h.Experiments.Harness.verify_memo);
      let h2 = Experiments.Harness.create ~seed:11 ~scale:0.0006 ~queries () in
      Alcotest.(check int) "a fresh harness starts with an empty memo" 0
        (Util.Shard_map.length h2.Experiments.Harness.verify_memo))

let suite =
  [
    Alcotest.test_case "every registered name round-trips" `Quick
      test_roundtrips;
    Alcotest.test_case "unknown names give structured errors" `Quick
      test_unknown_name;
    Alcotest.test_case "find_exn names input and alternatives" `Quick
      test_find_exn_message;
    Alcotest.test_case "duplicate registration rejected" `Quick
      test_duplicate_name_rejected;
    Alcotest.test_case "cost-model registry covers Cost_model.all" `Quick
      test_cost_model_names_match;
    Alcotest.test_case "parameterized enumerator names" `Quick
      test_enumerator_parse;
    Alcotest.test_case "experiment catalog" `Quick test_catalog;
    Alcotest.test_case "cached plan identical to fresh plan" `Slow
      test_cache_consistency;
    Alcotest.test_case "plan cache keyed on index config" `Slow
      test_cache_keyed_on_index_config;
    Alcotest.test_case "experiments share the plan cache" `Slow
      test_cache_across_experiments;
    Alcotest.test_case "verify memo is per-harness, per-config" `Slow
      test_verify_memo_scoped;
  ]
