(* The serving layer: deterministic traffic scripts, the golden-workload
   identity (replies byte-identical with the join-build recycling cache
   on and off, serial and under serve/exec pools), forced evictions
   under a tiny byte budget — with vacuousness guards on hits and
   evictions — and the admission gate and per-session work budget. *)

module Engine = Serve.Engine
module Traffic = Serve.Traffic
module Admission = Serve.Admission

let with_pool domains f =
  let pool = Util.Domain_pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () -> f pool)

(* Force the morsel path regardless of input size, as test_morsel does:
   the identity must hold on the same code paths `jobench serve`
   exercises. *)
let engine =
  { Exec.Engine_config.robust with name = "serve test"; morsel_min_rows = 0 }

(* One prepared session + catalog shared by the serving tests. *)
let fixture =
  lazy
    (let db = Datagen.Imdb_gen.generate ~seed:5 ~scale:0.0004 () in
     let s = Core.Session.of_database db in
     let catalog =
       Engine.prepare s
         (Array.of_list
            (List.map
               (fun (q : Workload.Job.query) ->
                 (q.Workload.Job.name, q.Workload.Job.sql))
               Workload.Job.all))
     in
     (s, catalog))

let cfg ?cache ?exec_pool ?serve_pool ?(max_inflight = 1)
    ?(session_budget = 0) () =
  { Engine.engine; cache; exec_pool; serve_pool; max_inflight; session_budget }

let traffic catalog =
  Traffic.generate ~sessions:4 ~total:150 ~catalog:(Array.length catalog)
    ~theta:1.2 ~think_ms:0.0 ~seed:11

(* --- traffic ----------------------------------------------------------- *)

let test_traffic_deterministic () =
  let gen seed =
    Traffic.generate ~sessions:4 ~total:100 ~catalog:113 ~theta:1.1
      ~think_ms:2.0 ~seed
  in
  let t1 = gen 42 and t2 = gen 42 and t3 = gen 43 in
  Alcotest.(check bool) "same seed, same scripts" true
    (t1.Traffic.scripts = t2.Traffic.scripts);
  Alcotest.(check bool) "different seed differs" true
    (t1.Traffic.scripts <> t3.Traffic.scripts);
  Alcotest.(check int) "sessions" 4 (Traffic.sessions t1);
  Alcotest.(check int) "total" 100 (Traffic.total t1);
  Array.iter
    (Array.iter (fun (r : Traffic.request) ->
         Alcotest.(check bool) "query in catalog" true
           (r.Traffic.r_query >= 0 && r.Traffic.r_query < 113);
         Alcotest.(check bool) "think time in [0, 2*mean)" true
           (r.Traffic.r_think_ms >= 0.0 && r.Traffic.r_think_ms < 4.0)))
    t1.Traffic.scripts;
  List.iter
    (fun q ->
      Alcotest.(check bool) "distinct query in catalog" true
        (q >= 0 && q < 113))
    (Traffic.distinct_queries t1)

let test_traffic_split () =
  let t =
    Traffic.generate ~sessions:4 ~total:10 ~catalog:7 ~theta:0.0
      ~think_ms:0.0 ~seed:3
  in
  let sizes = Array.map Array.length t.Traffic.scripts in
  Alcotest.(check (array int)) "remainder goes to early sessions"
    [| 3; 3; 2; 2 |] sizes;
  Array.iter
    (Array.iter (fun (r : Traffic.request) ->
         Alcotest.(check (Alcotest.float 0.0)) "think time disabled" 0.0
           r.Traffic.r_think_ms))
    t.Traffic.scripts;
  Alcotest.check_raises "sessions < 1 rejected"
    (Invalid_argument "Traffic.generate: sessions must be >= 1") (fun () ->
      ignore
        (Traffic.generate ~sessions:0 ~total:1 ~catalog:1 ~theta:0.0
           ~think_ms:0.0 ~seed:1))

(* --- admission --------------------------------------------------------- *)

let test_admission () =
  let gate = Admission.create ~limit:2 in
  Admission.acquire gate;
  Admission.acquire gate;
  Admission.release gate;
  Admission.acquire gate;
  Admission.release gate;
  Admission.release gate;
  let s = Admission.stats gate in
  Alcotest.(check int) "peak is the high-water mark" 2 s.Admission.peak;
  Alcotest.(check int) "no serial acquire ever blocked" 0 s.Admission.waits;
  Alcotest.check_raises "limit < 1 rejected"
    (Invalid_argument "Admission.create: limit must be >= 1") (fun () ->
      ignore (Admission.create ~limit:0))

(* --- the serving identity (tentpole acceptance) ------------------------ *)

let test_serve_identity () =
  let s, catalog = Lazy.force fixture in
  let t = traffic catalog in
  let reference = Engine.run s catalog t (cfg ()) in
  Alcotest.(check int) "reference completed everything"
    (Traffic.total t) reference.Engine.completed;
  (* Cache on, still serial: byte-identical, and actually hitting. *)
  let cache = Exec.Join_cache.create () in
  let on = Engine.run s catalog t (cfg ~cache ()) in
  Alcotest.(check bool) "cache-on replies identical (serial)" true
    (Engine.replies_equal reference.Engine.replies on.Engine.replies);
  let cs = Exec.Join_cache.stats cache in
  Alcotest.(check bool) "cache was not vacuous: hits recorded" true
    (cs.Exec.Join_cache.hits > 0);
  Alcotest.(check bool) "cache was populated" true
    (cs.Exec.Join_cache.installs > 0);
  (* Cache on, 2 serving workers, admission 2 (inter-query concurrency). *)
  with_pool 2 (fun sp ->
      let cache = Exec.Join_cache.create () in
      let out =
        Engine.run s catalog t
          (cfg ~cache ~serve_pool:sp ~max_inflight:2 ())
      in
      Alcotest.(check bool) "cache-on replies identical (serve pool)" true
        (Engine.replies_equal reference.Engine.replies out.Engine.replies);
      Alcotest.(check bool) "admission bounded in-flight" true
        (out.Engine.admission.Admission.peak <= 2));
  (* Cache off under the serve pool: concurrency alone changes nothing. *)
  with_pool 2 (fun sp ->
      let out =
        Engine.run s catalog t (cfg ~serve_pool:sp ~max_inflight:2 ())
      in
      Alcotest.(check bool) "cache-off replies identical (serve pool)" true
        (Engine.replies_equal reference.Engine.replies out.Engine.replies));
  (* Cache on with intra-query morsels (exec-jobs 2). *)
  with_pool 2 (fun ep ->
      let cache = Exec.Join_cache.create () in
      let out = Engine.run s catalog t (cfg ~cache ~exec_pool:ep ()) in
      Alcotest.(check bool) "cache-on replies identical (exec-jobs 2)" true
        (Engine.replies_equal reference.Engine.replies out.Engine.replies))

(* --- forced evictions -------------------------------------------------- *)

let test_forced_evictions () =
  let s, catalog = Lazy.force fixture in
  let t = traffic catalog in
  (* Measure the workload's full footprint, then rerun with a quarter of
     it: the LRU must evict, keep serving hits, and stay byte-exact. *)
  let full = Exec.Join_cache.create () in
  let reference = Engine.run s catalog t (cfg ~cache:full ()) in
  let footprint = (Exec.Join_cache.stats full).Exec.Join_cache.bytes in
  Alcotest.(check bool) "footprint measured" true (footprint > 0);
  let tiny = Exec.Join_cache.create ~budget_bytes:(max 1 (footprint / 4)) () in
  let out = Engine.run s catalog t (cfg ~cache:tiny ()) in
  Alcotest.(check bool) "replies identical under eviction pressure" true
    (Engine.replies_equal reference.Engine.replies out.Engine.replies);
  let cs = Exec.Join_cache.stats tiny in
  Alcotest.(check bool) "evictions actually happened" true
    (cs.Exec.Join_cache.evictions > 0);
  Alcotest.(check bool) "hits survive eviction pressure" true
    (cs.Exec.Join_cache.hits > 0);
  Alcotest.(check bool) "budget respected after the run" true
    (cs.Exec.Join_cache.bytes <= cs.Exec.Join_cache.budget_bytes)

(* --- per-session work budgets ------------------------------------------ *)

let test_session_budget () =
  let s, catalog = Lazy.force fixture in
  let t =
    Traffic.generate ~sessions:3 ~total:12 ~catalog:(Array.length catalog)
      ~theta:1.2 ~think_ms:0.0 ~seed:7
  in
  (* Every JOB query costs more than one work unit, so a budget of 1
     retires each session after its first reply. *)
  let out = Engine.run s catalog t (cfg ~session_budget:1 ()) in
  Alcotest.(check int) "every session retired" 3 out.Engine.retired_sessions;
  Array.iter
    (fun script ->
      Alcotest.(check int) "each session completed exactly one request" 1
        (Array.length script))
    out.Engine.replies;
  Alcotest.(check int) "completed counts the prefix replies" 3
    out.Engine.completed;
  Alcotest.check_raises "max_inflight < 1 rejected"
    (Invalid_argument "Engine.run: max_inflight must be >= 1") (fun () ->
      ignore (Engine.run s catalog t (cfg ~max_inflight:0 ())))

let suite =
  [
    Alcotest.test_case "traffic deterministic" `Quick
      test_traffic_deterministic;
    Alcotest.test_case "traffic split and bounds" `Quick test_traffic_split;
    Alcotest.test_case "admission gate" `Quick test_admission;
    Alcotest.test_case "serving identity: cache on/off, pools" `Slow
      test_serve_identity;
    Alcotest.test_case "forced evictions under a tiny budget" `Slow
      test_forced_evictions;
    Alcotest.test_case "session budget retires sessions" `Quick
      test_session_budget;
  ]
