(* Tests for plan enumeration: DP optimality against brute-force plan
   enumeration, shape restrictions, Quickpick and GOO validity. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let micro ?(relations = 4) ?(extra_edges = 0) seed =
  let prng = Util.Prng.create seed in
  let db = Support.micro_db prng ~tables:relations ~rows:15 in
  let g = Support.micro_query prng db ~relations ~extra_edges in
  (db, g)

let search ?allow_nl ?shape db g card =
  Planner.Search.create ?allow_nl ?shape ~model:Cost.Cost_model.cmm ~graph:g
    ~db ~card ()

let true_search ?allow_nl ?shape db g =
  let tc = Cardest.True_card.compute g in
  search ?allow_nl ?shape db g (Cardest.True_card.card tc)

(* Brute-force minimum over every bushy hash-join-only plan: with
   indexes disabled and NL joins off, DP must find exactly this cost. *)
let brute_force_best_cost env graph =
  let model = Cost.Cost_model.cmm in
  let rec best subset =
    if Bitset.cardinal subset = 1 then
      model.Cost.Cost_model.scan_cost env (Bitset.lowest subset)
    else begin
      let best_cost = ref infinity in
      Bitset.subsets_iter subset (fun s1 ->
          let s2 = Bitset.diff subset s1 in
          if
            QG.is_connected graph s1 && QG.is_connected graph s2
            && QG.edges_between graph s1 s2 <> []
          then begin
            (* Build dummy plans carrying the right sets. *)
            let rec plan_of s =
              if Bitset.cardinal s = 1 then Plan.scan (Bitset.lowest s)
              else
                let one = Bitset.lowest_bit s in
                Plan.join Plan.Hash_join ~outer:(plan_of one)
                  ~inner:(plan_of (Bitset.diff s one))
            in
            let cost =
              model.Cost.Cost_model.join_cost env Plan.Hash_join
                ~outer:(plan_of s1) ~inner:(plan_of s2) ~outer_cost:(best s1)
                ~inner_cost:(best s2)
            in
            if cost < !best_cost then best_cost := cost
          end);
      !best_cost
    end
  in
  best (QG.full_set graph)

let dp_matches_brute_force =
  Support.qcheck_case ~count:25 ~name:"DP cost = brute-force optimum (hash joins only)"
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, relations) ->
      let db, g = micro ~relations seed in
      Storage.Database.set_index_config db Storage.Database.No_indexes;
      let tc = Cardest.True_card.compute g in
      let env =
        { Cost.Cost_model.graph = g; db; card = Cardest.True_card.card tc }
      in
      let s = search db g (Cardest.True_card.card tc) in
      let _, dp_cost = Planner.Dp.optimize s in
      Float.abs (dp_cost -. brute_force_best_cost env g) < 1e-6)

let dp_plans_valid =
  Support.qcheck_case ~count:25 ~name:"DP plans validate"
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, relations) ->
      let db, g = micro ~relations ~extra_edges:1 seed in
      Storage.Database.set_index_config db Storage.Database.Pk_fk;
      let plan, _ = Planner.Dp.optimize (true_search db g) in
      Plan.validate g plan = Ok ())

let test_shape_restrictions_respected () =
  let db, g = micro ~relations:5 3 in
  Storage.Database.set_index_config db Storage.Database.Pk_fk;
  let check_shape shape_limit accepted =
    let plan, cost =
      Planner.Dp.optimize (true_search ~shape:shape_limit db g)
    in
    let s = Plan.shape plan in
    Alcotest.(check bool)
      (Printf.sprintf "%s plan is %s" (Plan.shape_to_string s)
         (String.concat "/" (List.map Plan.shape_to_string accepted)))
      true
      (List.mem s accepted);
    cost
  in
  let bushy = snd (Planner.Dp.optimize (true_search db g)) in
  let zig = check_shape Planner.Search.Only_zig_zag [ Plan.Left_deep; Plan.Right_deep; Plan.Zig_zag ] in
  let left = check_shape Planner.Search.Only_left_deep [ Plan.Left_deep ] in
  let right = check_shape Planner.Search.Only_right_deep [ Plan.Left_deep; Plan.Right_deep ] in
  (* Restricting the space can only cost more. *)
  Alcotest.(check bool) "zig >= bushy" true (zig >= bushy -. 1e-9);
  Alcotest.(check bool) "left >= zig" true (left >= zig -. 1e-9);
  Alcotest.(check bool) "right >= bushy" true (right >= bushy -. 1e-9)

let quickpick_valid_and_dominated =
  Support.qcheck_case ~count:20 ~name:"Quickpick plans valid and >= DP cost"
    QCheck.small_int
    (fun seed ->
      let db, g = micro ~relations:4 seed in
      Storage.Database.set_index_config db Storage.Database.Pk_only;
      let s = true_search db g in
      let _, optimal = Planner.Dp.optimize s in
      let prng = Util.Prng.create seed in
      let plan, cost = Planner.Quickpick.sample s prng in
      Plan.validate g plan = Ok () && cost >= optimal -. 1e-9)

let test_quickpick_best_of_improves () =
  let db, g = micro ~relations:5 11 in
  Storage.Database.set_index_config db Storage.Database.Pk_only;
  let s = true_search db g in
  let prng1 = Util.Prng.create 1 in
  let _, one = Planner.Quickpick.sample s prng1 in
  let prng2 = Util.Prng.create 1 in
  let _, best = Planner.Quickpick.best_of s prng2 ~attempts:50 in
  Alcotest.(check bool) "best-of-50 <= first sample" true (best <= one +. 1e-9)

let test_quickpick_deterministic () =
  let db, g = micro ~relations:4 5 in
  let s = true_search db g in
  let c1 = Planner.Quickpick.sample_costs s (Util.Prng.create 9) ~attempts:20 in
  let c2 = Planner.Quickpick.sample_costs s (Util.Prng.create 9) ~attempts:20 in
  Alcotest.(check (array (float 0.0))) "same prng same costs" c1 c2

let goo_valid_and_dominated =
  Support.qcheck_case ~count:20 ~name:"GOO plans valid and >= DP cost"
    QCheck.small_int
    (fun seed ->
      let db, g = micro ~relations:4 seed in
      Storage.Database.set_index_config db Storage.Database.Pk_only;
      let s = true_search db g in
      let _, optimal = Planner.Dp.optimize s in
      let plan, cost = Planner.Goo.optimize s in
      Plan.validate g plan = Ok () && cost >= optimal -. 1e-9)

let test_inl_requires_index () =
  let db, g = micro ~relations:3 2 in
  let s config =
    Storage.Database.set_index_config db config;
    true_search db g
  in
  (* Edges are FK -> PK (right side is a pk "id" column). *)
  let e = List.hd (QG.edges g) in
  let outer = Plan.scan e.QG.left and inner = Plan.scan e.QG.right in
  Alcotest.(check bool) "no indexes: no INL" false
    (Planner.Search.inl_possible (s Storage.Database.No_indexes) ~outer ~inner);
  Alcotest.(check bool) "pk indexes: INL available" true
    (Planner.Search.inl_possible (s Storage.Database.Pk_only) ~outer ~inner)

let test_nl_only_when_allowed () =
  let db, g = micro ~relations:3 6 in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let tc = Cardest.True_card.compute g in
  (* An estimate of ~1 row everywhere makes NL the cheapest option under
     the PostgreSQL model when it is allowed. *)
  let tiny = Cardest.Estimator.of_function ~name:"tiny" ~base:(fun _ -> 1.0) (fun _ -> 1.0) in
  ignore tc;
  let with_nl =
    Planner.Search.create ~allow_nl:true ~model:Cost.Cost_model.postgres
      ~graph:g ~db ~card:tiny.Cardest.Estimator.subset ()
  in
  let without_nl =
    Planner.Search.create ~allow_nl:false ~model:Cost.Cost_model.postgres
      ~graph:g ~db ~card:tiny.Cardest.Estimator.subset ()
  in
  let has_nl plan =
    Plan.fold
      (fun acc (n : Plan.t) ->
        acc
        || match n.Plan.op with Plan.Join { algo = Plan.Nl_join; _ } -> true | _ -> false)
      false plan
  in
  let plan_nl, _ = Planner.Dp.optimize with_nl in
  let plan_no, _ = Planner.Dp.optimize without_nl in
  Alcotest.(check bool) "nl appears when allowed" true (has_nl plan_nl);
  Alcotest.(check bool) "nl never when disabled" false (has_nl plan_no)

let test_dp_subsets_table () =
  let db, g = micro ~relations:4 8 in
  let table = Planner.Dp.optimize_all_subsets (true_search db g) in
  (* Every connected subset gets an entry. *)
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Format.asprintf "entry for %a" Bitset.pp s)
        true
        (Planner.Dp.Subset_table.mem table s))
    (QG.connected_subsets g)

let suite =
  [
    dp_matches_brute_force;
    dp_plans_valid;
    Alcotest.test_case "shape restrictions" `Quick test_shape_restrictions_respected;
    quickpick_valid_and_dominated;
    Alcotest.test_case "quickpick best-of" `Quick test_quickpick_best_of_improves;
    Alcotest.test_case "quickpick deterministic" `Quick test_quickpick_deterministic;
    goo_valid_and_dominated;
    Alcotest.test_case "INL requires index" `Quick test_inl_requires_index;
    Alcotest.test_case "NL gating" `Quick test_nl_only_when_allowed;
    Alcotest.test_case "DP subset table" `Quick test_dp_subsets_table;
  ]
