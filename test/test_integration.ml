(* Integration tests: the Session facade end-to-end, the experiment
   harness on a miniature workload, and cross-component consistency
   (optimizer plans execute to the exact true cardinality). *)

module QG = Query.Query_graph

(* One small session shared by the facade tests. *)
let session = lazy (Core.Session.create ~seed:3 ~scale:0.0006 ())

let test_session_job_roundtrip () =
  let s = Lazy.force session in
  let q = Core.Session.job s "1a" in
  let choice = Core.Session.optimize s q in
  (match Plan.validate q.Core.Session.graph choice.Core.Session.plan with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid plan: %s" e);
  let result = Core.Session.run s q choice in
  Alcotest.(check bool) "finished" true (not result.Exec.Executor.timed_out);
  (* The executor's row count must equal the exact cardinality. *)
  let tc = Core.Session.true_cardinalities s q in
  Alcotest.(check int) "rows = truth"
    (int_of_float (Cardest.True_card.card tc (QG.full_set q.Core.Session.graph)))
    result.Exec.Executor.rows

let test_session_adhoc_sql () =
  let s = Lazy.force session in
  let q =
    Core.Session.sql s
      "SELECT MIN(n.name) FROM name AS n, cast_info AS ci, title AS t WHERE \
       n.id = ci.person_id AND ci.movie_id = t.id AND n.gender = 'f'"
  in
  let choice = Core.Session.optimize s ~estimator:"HyPer" ~cost_model:"Cmm" q in
  let explain = Core.Session.explain s q choice in
  Alcotest.(check bool) "explain mentions estimator" true
    (let needle = "HyPer" in
     let n = String.length needle in
     let found = ref false in
     String.iteri
       (fun i _ ->
         if i + n <= String.length explain && String.sub explain i n = needle then
           found := true)
       explain;
     !found)

let test_session_enumerators_agree_on_rows () =
  let s = Lazy.force session in
  let q = Core.Session.job s "2b" in
  let results =
    List.map
      (fun enumerator ->
        let choice = Core.Session.optimize s ~enumerator ~cost_model:"Cmm" q in
        (Core.Session.run s q choice).Exec.Executor.rows)
      [
        Core.Session.Exhaustive_dp;
        Core.Session.Quickpick 20;
        Core.Session.Greedy_operator_ordering;
      ]
  in
  match results with
  | [ a; b; c ] ->
      Alcotest.(check int) "dp = quickpick" a b;
      Alcotest.(check int) "dp = goo" a c
  | _ -> assert false

let test_session_physical_designs () =
  let s = Lazy.force session in
  let q = Core.Session.job s "3a" in
  ignore (Core.Session.true_cardinalities s q);
  let run config =
    Core.Session.set_physical_design s config;
    let choice = Core.Session.optimize s ~estimator:"true" ~cost_model:"Cmm" q in
    (Core.Session.run s q choice).Exec.Executor.rows
  in
  let a = run Storage.Database.No_indexes in
  let b = run Storage.Database.Pk_only in
  let c = run Storage.Database.Pk_fk in
  Core.Session.set_physical_design s Storage.Database.Pk_only;
  Alcotest.(check int) "no-index rows = pk rows" a b;
  Alcotest.(check int) "pk rows = pkfk rows" b c

let test_session_explain_analyze () =
  let s = Lazy.force session in
  let q = Core.Session.job s "1b" in
  let choice = Core.Session.optimize s q in
  let out = Core.Session.explain_analyze s q choice in
  let has needle =
    let n = String.length needle in
    let found = ref false in
    String.iteri
      (fun i _ ->
        if i + n <= String.length out && String.sub out i n = needle then
          found := true)
      out;
    !found
  in
  Alcotest.(check bool) "has true cards" true (has "true");
  Alcotest.(check bool) "has runtime" true (has "simulated ms")

let test_session_plan_dot () =
  let s = Lazy.force session in
  let q = Core.Session.job s "1a" in
  let choice = Core.Session.optimize s q in
  let dot = Core.Session.plan_dot s q choice in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  (* One node per plan operator. *)
  let nodes = ref 0 in
  String.iteri
    (fun i c ->
      if c = '[' && i > 0 && dot.[i - 1] = ' ' then incr nodes)
    dot;
  Alcotest.(check bool) "several nodes" true (!nodes >= 5)

let test_session_unknown_names () =
  let s = Lazy.force session in
  let q = Core.Session.job s "1a" in
  (try
     ignore (Core.Session.optimize s ~cost_model:"nope" q);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  try
    ignore (Core.Session.optimize s ~estimator:"nope" q);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* --- Experiment harness on a miniature workload ------------------------------ *)

let mini_queries =
  List.filter
    (fun q -> List.mem q.Workload.Job.name [ "1a"; "2b"; "3a"; "6c" ])
    Workload.Job.all

let harness = lazy (Experiments.Harness.create ~seed:3 ~scale:0.0006 ~queries:mini_queries ())

let test_harness_table1_shape () =
  let h = Lazy.force harness in
  let rows = Experiments.Exp_table1.measure h in
  Alcotest.(check int) "five systems" 5 (List.length rows);
  List.iter
    (fun (r : Experiments.Exp_table1.row) ->
      Alcotest.(check bool) (r.system ^ " median >= 1") true (r.median >= 1.0);
      Alcotest.(check bool) "percentiles ordered" true
        (r.median <= r.p90 && r.p90 <= r.p95 && r.p95 <= r.max);
      Alcotest.(check bool) "selection count" true (r.selections > 0))
    rows

let test_harness_fig3_shape () =
  let h = Lazy.force harness in
  let data = Experiments.Exp_fig3.measure h ~max_joins:4 in
  Alcotest.(check int) "five systems" 5 (List.length data);
  List.iter
    (fun (_, cells) ->
      Alcotest.(check int) "5 join levels" 5 (List.length cells);
      List.iter
        (fun (c : Experiments.Exp_fig3.cell) ->
          Alcotest.(check bool) "fractions in range" true
            (c.frac_wrong_10x >= 0.0 && c.frac_wrong_10x <= 1.0))
        cells)
    data

let test_harness_slowdown_finite_or_inf () =
  let h = Lazy.force harness in
  Experiments.Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      Array.iter
        (fun q ->
          let est = Experiments.Harness.estimator h q "PostgreSQL" in
          let slowdown =
            Experiments.Harness.slowdown_vs_optimal h q ~est
              ~model:Cost.Cost_model.postgres ~engine:Exec.Engine_config.robust
          in
          Alcotest.(check bool) "positive" true (slowdown > 0.0))
        h.Experiments.Harness.queries)

let test_harness_with_index_config_restores () =
  let h = Lazy.force harness in
  let before = Storage.Database.index_config h.Experiments.Harness.db in
  (try
     Experiments.Harness.with_index_config h Storage.Database.Pk_fk (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after exception" true
    (Storage.Database.index_config h.Experiments.Harness.db = before)

let test_harness_table2_ordering () =
  let h = Lazy.force harness in
  let rows = Experiments.Exp_table2.measure h in
  (* zig-zag can never beat bushy, right-deep can never beat zig-zag (on
     medians over the same queries). *)
  List.iter
    (fun (r : Experiments.Exp_table2.row) ->
      Alcotest.(check bool) (r.shape ^ " median >= 1") true (r.median >= 1.0 -. 1e-9))
    rows

let test_harness_table3_dp_optimal_under_truth () =
  let h = Lazy.force harness in
  let rows = Experiments.Exp_table3.measure h in
  List.iter
    (fun (r : Experiments.Exp_table3.row) ->
      if r.algorithm = "Dynamic Programming" && r.cards = "true cardinalities" then begin
        Alcotest.(check (Alcotest.float 1e-6)) "median exactly 1" 1.0 r.median;
        Alcotest.(check (Alcotest.float 1e-6)) "max exactly 1" 1.0 r.max
      end
      else
        Alcotest.(check bool)
          (r.algorithm ^ "/" ^ r.cards ^ " >= 1")
          true (r.median >= 1.0 -. 1e-9))
    rows

let suite =
  [
    Alcotest.test_case "session JOB roundtrip" `Quick test_session_job_roundtrip;
    Alcotest.test_case "session ad-hoc SQL" `Quick test_session_adhoc_sql;
    Alcotest.test_case "session enumerators agree" `Quick
      test_session_enumerators_agree_on_rows;
    Alcotest.test_case "session physical designs" `Quick test_session_physical_designs;
    Alcotest.test_case "session unknown names" `Quick test_session_unknown_names;
    Alcotest.test_case "session explain analyze" `Quick test_session_explain_analyze;
    Alcotest.test_case "session plan dot" `Quick test_session_plan_dot;
    Alcotest.test_case "harness table 1" `Quick test_harness_table1_shape;
    Alcotest.test_case "harness figure 3" `Quick test_harness_fig3_shape;
    Alcotest.test_case "harness slowdowns" `Quick test_harness_slowdown_finite_or_inf;
    Alcotest.test_case "harness config restore" `Quick
      test_harness_with_index_config_restores;
    Alcotest.test_case "harness table 2" `Quick test_harness_table2_ordering;
    Alcotest.test_case "harness table 3" `Quick test_harness_table3_dp_optimal_under_truth;
  ]
