(* Tests for the experiments library beyond the integration suite:
   rendering smoke tests on a miniature harness, the ablation APIs, and
   the engine-config axes they exercise. *)

(* Figure 4 needs its named queries; the damping sweep needs at least one
   query with deep (>= 4-join) subexpressions. *)
let mini_queries =
  List.filter
    (fun q ->
      List.mem q.Workload.Job.name [ "1a"; "2b"; "3a"; "6a"; "16d"; "17b"; "25c" ])
    Workload.Job.all

let harness =
  lazy (Experiments.Harness.create ~seed:11 ~scale:0.0006 ~queries:mini_queries ())

let contains haystack needle =
  let n = String.length needle in
  let found = ref false in
  String.iteri
    (fun i _ ->
      if i + n <= String.length haystack && String.sub haystack i n = needle then
        found := true)
    haystack;
  !found

let test_render_table1 () =
  let out = Experiments.Exp_table1.render (Lazy.force harness) in
  Alcotest.(check bool) "mentions systems" true (contains out "PostgreSQL");
  Alcotest.(check bool) "mentions HyPer" true (contains out "HyPer")

let test_render_fig5 () =
  let out = Experiments.Exp_fig5.render (Lazy.force harness) in
  Alcotest.(check bool) "both variants" true (contains out "true distinct")

let test_render_fig4 () =
  let out = Experiments.Exp_fig4.render (Lazy.force harness) in
  Alcotest.(check bool) "JOB side" true (contains out "JOB 6a");
  Alcotest.(check bool) "TPC-H side" true (contains out "TPC-H 10")

let test_fig4_tpch_is_easy () =
  (* The point of Figure 4: TPC-H estimates stay within one order of
     magnitude at every join count. *)
  let data = Experiments.Exp_fig4.measure (Lazy.force harness) in
  List.iter
    (fun (name, rows) ->
      if String.length name >= 5 && String.sub name 0 5 = "TPC-H" then
        List.iter
          (fun (_, box) ->
            match box with
            | None -> ()
            | Some (b : Util.Stat.boxplot) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s median within 10x (%.3f)" name b.Util.Stat.p50)
                  true
                  (b.Util.Stat.p50 > 0.1 && b.Util.Stat.p50 < 10.0))
          rows)
    data

let test_ablation_statistics_knobs () =
  let out = Experiments.Exp_ablation.statistics_knobs (Lazy.force harness) in
  Alcotest.(check bool) "has variants" true (contains out "no MCV list")

let test_ablation_damping () =
  let out = Experiments.Exp_ablation.damping_sweep (Lazy.force harness) in
  Alcotest.(check bool) "sweep rows" true (contains out "0.85")

let test_ablation_syntactic_order () =
  let out = Experiments.Exp_ablation.syntactic_order (Lazy.force harness) in
  Alcotest.(check bool) "permutations" true (contains out "reversed")

let test_dbms_a_damping_monotone () =
  (* Less damping (exponent closer to 1) must give smaller or equal deep
     estimates: sel^c is monotone in c for sel < 1. *)
  let h = Lazy.force harness in
  let q = Experiments.Harness.find h "2b" in
  let ctx =
    { Cardest.Systems.db = h.Experiments.Harness.db;
      graph = q.Experiments.Harness.graph }
  in
  let full = Query.Query_graph.full_set q.Experiments.Harness.graph in
  let estimate damping =
    (Cardest.Systems.dbms_a_damped damping h.Experiments.Harness.analyze ctx)
      .Cardest.Estimator.subset full
  in
  Alcotest.(check bool) "0.7 >= 0.9" true (estimate 0.7 >= estimate 0.9);
  Alcotest.(check bool) "0.9 >= 1.0" true (estimate 0.9 >= estimate 1.0)

let test_bucket_floor_configurable () =
  let tiny =
    Exec.Join_table.create ~bucket_floor:16 ~estimated_rows:1.0 ~resizable:false ()
  in
  Alcotest.(check int) "floor 16" 16 (Exec.Join_table.bucket_count tiny);
  let default = Exec.Join_table.create ~estimated_rows:1.0 ~resizable:false () in
  Alcotest.(check int) "floor 1024" 1024 (Exec.Join_table.bucket_count default)

let test_engine_floor_affects_work () =
  (* Same plan, same estimates: a tiny bucket floor must cost at least as
     much as the default. *)
  let db = Lazy.force Support.imdb_mid in
  Storage.Database.set_index_config db Storage.Database.No_indexes;
  let b =
    Sqlfront.Binder.bind_sql db ~name:"floor"
      "SELECT MIN(t.title) FROM title AS t, cast_info AS ci WHERE \
       t.id = ci.movie_id"
  in
  let g = b.Sqlfront.Binder.graph in
  let e = List.hd (Query.Query_graph.edges g) in
  let plan =
    Plan.join Plan.Hash_join
      ~outer:(Plan.scan e.Query.Query_graph.left)
      ~inner:(Plan.scan e.Query.Query_graph.right)
  in
  let work floor =
    let config =
      { Exec.Engine_config.no_nl with Exec.Engine_config.hash_bucket_floor = floor }
    in
    (Exec.Executor.run ~db ~graph:g ~config ~size_est:(fun _ -> 1.0) plan)
      .Exec.Executor.work
  in
  Alcotest.(check bool) "floor 16 >= floor 8192" true (work 16 >= work 8192)

let suite =
  [
    Alcotest.test_case "render table 1" `Quick test_render_table1;
    Alcotest.test_case "render figure 5" `Quick test_render_fig5;
    Alcotest.test_case "render figure 4" `Quick test_render_fig4;
    Alcotest.test_case "TPC-H is easy" `Quick test_fig4_tpch_is_easy;
    Alcotest.test_case "ablation: statistics knobs" `Quick test_ablation_statistics_knobs;
    Alcotest.test_case "ablation: damping sweep" `Quick test_ablation_damping;
    Alcotest.test_case "ablation: syntactic order" `Quick test_ablation_syntactic_order;
    Alcotest.test_case "damping monotone" `Quick test_dbms_a_damping_monotone;
    Alcotest.test_case "bucket floor configurable" `Quick test_bucket_floor_configurable;
    Alcotest.test_case "engine floor affects work" `Quick test_engine_floor_affects_work;
  ]
