(* Shared fixtures and generators for the test suite: a tiny seeded IMDB
   database, randomly generated micro-databases with random join queries
   over them, and a brute-force join counter to check exact components
   against. *)

module QG = Query.Query_graph
module Bitset = Util.Bitset

(* One small IMDB instance shared by all tests that need realistic data
   (generated once, ~1600 rows total). *)
let imdb = lazy (Datagen.Imdb_gen.generate ~seed:7 ~scale:0.0004 ())

(* A mid-sized instance for statistics-sensitive tests. *)
let imdb_mid = lazy (Datagen.Imdb_gen.generate ~seed:7 ~scale:0.002 ())

let tpch = lazy (Datagen.Tpch_gen.generate ~scale:0.2 ())

let fresh_imdb ?(seed = 7) ?(scale = 0.02) () =
  Datagen.Imdb_gen.generate ~seed ~scale ()

(* ------------------------------------------------------------------ *)
(* Random micro-databases                                              *)

(* [k] tables named t0..t{k-1}; each has an [id] PK (1..rows), one
   foreign key into every other table (with NULLs), and a small-domain
   [val] column for selections. *)
let micro_db prng ~tables ~rows =
  let db = Storage.Database.create () in
  for i = 0 to tables - 1 do
    let fk_cols =
      List.init tables (fun j ->
          if j = i then None
          else
            Some
              (Storage.Column.of_ints
                 ~name:(Printf.sprintf "fk%d" j)
                 (Array.init rows (fun _ ->
                      if Util.Prng.chance prng 0.15 then None
                      else Some (1 + Util.Prng.int prng rows)))))
      |> List.filter_map Fun.id
    in
    let columns =
      Array.of_list
        (Storage.Column.of_ints ~name:"id"
           (Array.init rows (fun r -> Some (r + 1)))
        :: Storage.Column.of_ints ~name:"v"
             (Array.init rows (fun _ -> Some (Util.Prng.int prng 5)))
        :: fk_cols)
    in
    let fk_names =
      List.init tables (fun j -> if j = i then None else Some (Printf.sprintf "fk%d" j))
      |> List.filter_map Fun.id
    in
    Storage.Database.add_table db
      (Storage.Table.create ~name:(Printf.sprintf "t%d" i) ~pk:"id" ~fks:fk_names
         columns)
  done;
  db

(* A random connected query over a micro database: a spanning tree of
   FK->PK edges plus optional extra edges (which make it cyclic), and a
   random [v] selection on some relations. *)
let micro_query prng db ~relations ~extra_edges =
  let rels =
    Array.init relations (fun idx ->
        let table =
          Storage.Database.find_table db (Printf.sprintf "t%d" idx)
        in
        let preds =
          if Util.Prng.chance prng 0.6 then
            [
              Query.Predicate.Cmp
                {
                  col = Storage.Table.column_index table "v";
                  op =
                    (if Util.Prng.bool prng then Query.Predicate.Le
                     else Query.Predicate.Ge);
                  code = Util.Prng.int prng 5;
                };
            ]
          else []
        in
        { QG.idx; alias = Printf.sprintf "t%d" idx; table; preds })
  in
  let fk_edge a b =
    (* a.fk_b = b.id *)
    {
      QG.left = a;
      left_col = Storage.Table.column_index rels.(a).QG.table (Printf.sprintf "fk%d" b);
      right = b;
      right_col = Storage.Table.column_index rels.(b).QG.table "id";
      pk_side = Some `Right;
    }
  in
  let tree =
    List.init (relations - 1) (fun i ->
        let child = i + 1 in
        let parent = Util.Prng.int prng (i + 1) in
        fk_edge child parent)
  in
  let extras =
    List.init extra_edges (fun _ ->
        let a = Util.Prng.int prng relations in
        let b = Util.Prng.int prng relations in
        if a = b then None else Some (fk_edge a b))
    |> List.filter_map Fun.id
  in
  QG.create ~name:"micro" rels (tree @ extras)

(* Exact result size of the join of a relation subset, by nested loops
   over the filtered rows. Only for tiny inputs. *)
let brute_force_count graph subset =
  let members = Bitset.to_list subset in
  let filtered =
    List.map
      (fun r ->
        let relation = QG.relation graph r in
        let pred = Query.Predicate.compile relation.QG.table relation.QG.preds in
        let n = Storage.Table.row_count relation.QG.table in
        let rows = ref [] in
        for row = n - 1 downto 0 do
          if pred row then rows := row :: !rows
        done;
        (r, !rows))
      members
  in
  let edges =
    List.filter
      (fun (e : QG.edge) -> Bitset.mem e.QG.left subset && Bitset.mem e.QG.right subset)
      (QG.edges graph)
  in
  let value rel col row =
    Storage.Column.get (Storage.Table.column (QG.relation graph rel).QG.table col) row
  in
  let count = ref 0 in
  let rec loop assignment = function
    | [] ->
        let ok =
          List.for_all
            (fun (e : QG.edge) ->
              let l = value e.QG.left e.QG.left_col (List.assoc e.QG.left assignment) in
              let r = value e.QG.right e.QG.right_col (List.assoc e.QG.right assignment) in
              l <> Storage.Value.null_code && l = r)
            edges
        in
        if ok then incr count
    | (rel, rows) :: rest ->
        List.iter (fun row -> loop ((rel, row) :: assignment) rest) rows
  in
  loop [] filtered;
  !count

let qcheck_case ?(count = 30) ~name arbitrary law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary law)
