(* Tests for CSV import/export and the declarative IMDB schema. *)

module Csv = Storage.Csv

let test_format_field () =
  Alcotest.(check string) "null" "" (Csv.format_field Storage.Value.Null);
  Alcotest.(check string) "int" "42" (Csv.format_field (Storage.Value.Int 42));
  Alcotest.(check string) "plain" "abc" (Csv.format_field (Storage.Value.Str "abc"));
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.format_field (Storage.Value.Str "a,b"));
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.format_field (Storage.Value.Str "a\"b"));
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.format_field (Storage.Value.Str "a\nb"));
  Alcotest.(check string) "empty string quoted" "\"\"" (Csv.format_field (Storage.Value.Str ""))

let fields text =
  let fs, _ = Csv.parse_line text 0 in
  fs

let test_parse_line () =
  Alcotest.(check (list (option string))) "simple"
    [ Some "a"; Some "b"; Some "c" ] (fields "a,b,c\n");
  Alcotest.(check (list (option string))) "nulls"
    [ Some "a"; None; Some "c" ] (fields "a,,c\n");
  Alcotest.(check (list (option string))) "quoted comma"
    [ Some "a,b"; Some "c" ] (fields "\"a,b\",c\n");
  Alcotest.(check (list (option string))) "escaped quote"
    [ Some "say \"hi\"" ] (fields "\"say \"\"hi\"\"\"\n");
  Alcotest.(check (list (option string))) "quoted newline"
    [ Some "a\nb"; Some "c" ] (fields "\"a\nb\",c\n");
  Alcotest.(check (list (option string))) "quoted empty is empty string"
    [ Some ""; Some "x" ] (fields "\"\",x\n");
  Alcotest.(check (list (option string))) "crlf"
    [ Some "a"; Some "b" ] (fields "a,b\r\n")

let test_parse_line_positions () =
  let text = "a,b\nc,d\n" in
  let first, pos = Csv.parse_line text 0 in
  let second, pos2 = Csv.parse_line text pos in
  Alcotest.(check (list (option string))) "first" [ Some "a"; Some "b" ] first;
  Alcotest.(check (list (option string))) "second" [ Some "c"; Some "d" ] second;
  Alcotest.(check int) "consumed" (String.length text) pos2

let test_parse_errors () =
  (try
     ignore (Csv.parse_line "\"unterminated\n" 0);
     Alcotest.fail "expected Csv_error"
   with Csv.Csv_error _ -> ());
  try
    ignore (Csv.parse_line "\"x\"y\n" 0);
    Alcotest.fail "expected Csv_error"
  with Csv.Csv_error _ -> ()

let demo_table () =
  Storage.Table.create ~name:"demo" ~pk:"id"
    [|
      Storage.Column.of_ints ~name:"id" [| Some 1; Some 2; Some 3 |];
      Storage.Column.of_strings ~name:"label"
        [| Some "plain"; Some "has,comma and \"quotes\""; None |];
      Storage.Column.of_ints ~name:"score" [| Some (-5); None; Some 0 |];
    |]

let test_roundtrip_table () =
  let dir = Filename.temp_file "csvtest" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "demo.csv" in
  let original = demo_table () in
  Csv.export original ~path;
  let reloaded =
    Csv.import ~name:"demo" ~pk:"id"
      ~columns:
        [
          { Csv.name = "id"; ty = Storage.Value.Int_ty };
          { Csv.name = "label"; ty = Storage.Value.Str_ty };
          { Csv.name = "score"; ty = Storage.Value.Int_ty };
        ]
      ~path ()
  in
  Alcotest.(check int) "rows" 3 (Storage.Table.row_count reloaded);
  for row = 0 to 2 do
    for col = 0 to 2 do
      Alcotest.(check string)
        (Printf.sprintf "cell %d,%d" row col)
        (Storage.Value.to_string (Storage.Table.value original ~row ~col))
        (Storage.Value.to_string (Storage.Table.value reloaded ~row ~col))
    done
  done

let test_import_errors () =
  let path = Filename.temp_file "csvtest" ".csv" in
  let write text =
    let oc = open_out path in
    output_string oc text;
    close_out oc
  in
  let columns =
    [ { Csv.name = "id"; ty = Storage.Value.Int_ty };
      { Csv.name = "v"; ty = Storage.Value.Str_ty } ]
  in
  write "wrong,header\n1,a\n";
  (try
     ignore (Csv.import ~name:"t" ~columns ~path ());
     Alcotest.fail "expected header error"
   with Csv.Csv_error _ -> ());
  write "id,v\n1,a,extra\n";
  (try
     ignore (Csv.import ~name:"t" ~columns ~path ());
     Alcotest.fail "expected width error"
   with Csv.Csv_error _ -> ());
  write "id,v\nnotanint,a\n";
  (try
     ignore (Csv.import ~name:"t" ~columns ~path ());
     Alcotest.fail "expected int error"
   with Csv.Csv_error _ -> ());
  Sys.remove path

let test_imdb_database_roundtrip () =
  (* Export the whole synthetic database and re-import it through the
     declarative schema: every table must round-trip exactly and the
     key metadata must be restored. *)
  let db = Lazy.force Support.imdb in
  let dir = Filename.temp_file "imdbcsv" "" in
  Sys.remove dir;
  Csv.export_database db ~dir;
  let reloaded = Datagen.Imdb_schema.load ~dir in
  List.iter
    (fun name ->
      let original = Storage.Database.find_table db name in
      let restored = Storage.Database.find_table reloaded name in
      Alcotest.(check int) (name ^ " rows") (Storage.Table.row_count original)
        (Storage.Table.row_count restored);
      Alcotest.(check (option int)) (name ^ " pk") (Storage.Table.pk original)
        (Storage.Table.pk restored);
      Alcotest.(check (list int)) (name ^ " fks") (Storage.Table.fks original)
        (Storage.Table.fks restored);
      (* Spot-check cells. *)
      let rows = Storage.Table.row_count original in
      for probe = 0 to min 10 (rows - 1) do
        let row = probe * (max 1 (rows / 11)) in
        for col = 0 to Storage.Table.column_count original - 1 do
          Alcotest.(check string)
            (Printf.sprintf "%s cell %d,%d" name row col)
            (Storage.Value.to_string (Storage.Table.value original ~row ~col))
            (Storage.Value.to_string (Storage.Table.value restored ~row ~col))
        done
      done)
    Datagen.Imdb_gen.table_names;
  (* The reloaded database answers queries identically. *)
  let sql =
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k \
     WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'sequel'"
  in
  let card database =
    let b = Sqlfront.Binder.bind_sql database ~name:"rt" sql in
    Cardest.True_card.card
      (Cardest.True_card.compute b.Sqlfront.Binder.graph)
      (Query.Query_graph.full_set b.Sqlfront.Binder.graph)
  in
  Alcotest.(check (float 0.0)) "query result equal" (card db) (card reloaded)

let test_schema_matches_generator () =
  (* The declarative schema must list exactly the generator's columns in
     order — otherwise real IMDB dumps and synthetic exports diverge. *)
  let db = Lazy.force Support.imdb in
  List.iter
    (fun (spec : Datagen.Imdb_schema.table_spec) ->
      let table = Storage.Database.find_table db spec.Datagen.Imdb_schema.name in
      let generated =
        Array.to_list
          (Array.map Storage.Column.name (Storage.Table.columns table))
      in
      let declared =
        List.map (fun c -> c.Csv.name) spec.Datagen.Imdb_schema.columns
      in
      Alcotest.(check (list string)) spec.Datagen.Imdb_schema.name declared generated)
    Datagen.Imdb_schema.tables

let csv_field_roundtrip =
  (* Any list of optional strings must survive format -> parse. *)
  let field_gen =
    QCheck.Gen.(
      opt
        (string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; ' '; 'z' ]) (0 -- 8)))
  in
  Support.qcheck_case ~count:100 ~name:"CSV record roundtrip"
    (QCheck.make QCheck.Gen.(list_size (1 -- 6) field_gen))
    (fun fields ->
      (* An unquoted empty field reads back as NULL, so None and Some ""
         both encode as "" only when the writer quotes empty strings —
         which format_field does. *)
      let line =
        String.concat ","
          (List.map
             (function
               | None -> Csv.format_field Storage.Value.Null
               | Some s -> Csv.format_field (Storage.Value.Str s))
             fields)
        ^ "\n"
      in
      let parsed, _ = Csv.parse_line line 0 in
      parsed = fields)

let suite =
  [
    Alcotest.test_case "format field" `Quick test_format_field;
    csv_field_roundtrip;
    Alcotest.test_case "parse line" `Quick test_parse_line;
    Alcotest.test_case "parse positions" `Quick test_parse_line_positions;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "table roundtrip" `Quick test_roundtrip_table;
    Alcotest.test_case "import errors" `Quick test_import_errors;
    Alcotest.test_case "imdb database roundtrip" `Quick test_imdb_database_roundtrip;
    Alcotest.test_case "schema matches generator" `Quick test_schema_matches_generator;
  ]
