(* Tests for the query library: LIKE matching, predicate compilation
   (including three-valued NULL behaviour), and query-graph
   connectivity machinery. *)

module P = Query.Predicate
module QG = Query.Query_graph
module Bitset = Util.Bitset

(* --- Like_match -------------------------------------------------------- *)

let test_like_cases () =
  let m pattern s = Query.Like_match.matches ~pattern s in
  Alcotest.(check bool) "exact" true (m "abc" "abc");
  Alcotest.(check bool) "exact miss" false (m "abc" "abd");
  Alcotest.(check bool) "contains" true (m "%pro%" "(co-production)");
  Alcotest.(check bool) "contains miss" false (m "%pro%" "(presents)");
  Alcotest.(check bool) "prefix" true (m "The %" "The Winter Song");
  Alcotest.(check bool) "suffix" true (m "%)" "(voice)");
  Alcotest.(check bool) "underscore" true (m "c_t" "cat");
  Alcotest.(check bool) "underscore exact len" false (m "c_t" "cart");
  Alcotest.(check bool) "pct matches empty" true (m "a%" "a");
  Alcotest.(check bool) "double pct" true (m "%%x%%" "ax");
  Alcotest.(check bool) "empty pattern empty string" true (m "" "");
  Alcotest.(check bool) "empty pattern" false (m "" "a");
  Alcotest.(check bool) "multi wildcard" true (m "%a%b%" "xxaxyxb");
  Alcotest.(check bool) "case sensitive" false (m "the %" "The X")

let test_prefix_pattern () =
  Alcotest.(check bool) "prefix" true (Query.Like_match.is_prefix_pattern "abc%");
  Alcotest.(check bool) "contains" false (Query.Like_match.is_prefix_pattern "%abc%");
  Alcotest.(check bool) "inner pct" false (Query.Like_match.is_prefix_pattern "a%c%");
  Alcotest.(check bool) "underscore" false (Query.Like_match.is_prefix_pattern "a_c%");
  Alcotest.(check bool) "bare" false (Query.Like_match.is_prefix_pattern "abc")

(* --- Predicate compilation ----------------------------------------------- *)

let pred_table =
  Storage.Table.create ~name:"p"
    [|
      Storage.Column.of_ints ~name:"num" [| Some 10; Some 20; None; Some 30 |];
      Storage.Column.of_strings ~name:"txt"
        [| Some "alpha"; Some "beta"; Some "alpha"; None |];
    |]

let rows_matching preds =
  let f = P.compile pred_table preds in
  List.filter f [ 0; 1; 2; 3 ]

let test_pred_cmp () =
  Alcotest.(check (list int)) "eq" [ 1 ] (rows_matching [ P.Cmp { col = 0; op = P.Eq; code = 20 } ]);
  Alcotest.(check (list int)) "ge skips null" [ 1; 3 ]
    (rows_matching [ P.Cmp { col = 0; op = P.Ge; code = 20 } ]);
  Alcotest.(check (list int)) "ne skips null" [ 0; 3 ]
    (rows_matching [ P.Cmp { col = 0; op = P.Ne; code = 20 } ])

let test_pred_between_in () =
  Alcotest.(check (list int)) "between" [ 0; 1 ]
    (rows_matching [ P.Between { col = 0; lo = 10; hi = 20 } ]);
  Alcotest.(check (list int)) "in" [ 0; 3 ]
    (rows_matching [ P.In { col = 0; codes = [ 10; 30 ] } ]);
  Alcotest.(check (list int)) "empty in" [] (rows_matching [ P.In { col = 0; codes = [] } ])

let test_pred_null () =
  Alcotest.(check (list int)) "is null" [ 2 ]
    (rows_matching [ P.Is_null { col = 0; negated = false } ]);
  Alcotest.(check (list int)) "is not null" [ 0; 1; 3 ]
    (rows_matching [ P.Is_null { col = 0; negated = true } ])

let test_pred_like () =
  Alcotest.(check (list int)) "like" [ 0; 2 ]
    (rows_matching [ P.Like { col = 1; pattern = "al%"; negated = false } ]);
  Alcotest.(check (list int)) "not like skips null" [ 1 ]
    (rows_matching [ P.Like { col = 1; pattern = "al%"; negated = true } ])

let test_pred_str_cmp () =
  Alcotest.(check (list int)) "str >=" [ 1 ]
    (rows_matching [ P.Str_cmp { col = 1; op = P.Ge; value = "b" } ]);
  Alcotest.(check (list int)) "str <" [ 0; 2 ]
    (rows_matching [ P.Str_cmp { col = 1; op = P.Lt; value = "b" } ])

let test_pred_or_and_conjunction () =
  Alcotest.(check (list int)) "or" [ 0; 1; 2 ]
    (rows_matching
       [
         P.Or
           [
             P.Cmp { col = 0; op = P.Eq; code = 10 };
             P.Like { col = 1; pattern = "%a"; negated = false };
           ];
       ]);
  Alcotest.(check (list int)) "conjunction" [ 0 ]
    (rows_matching
       [
         P.Cmp { col = 0; op = P.Le; code = 20 };
         P.Like { col = 1; pattern = "alpha"; negated = false };
       ]);
  Alcotest.(check (list int)) "const false" [] (rows_matching [ P.Const_false ])

let test_pred_sentinel_code () =
  (* The binder's missing-string sentinel: Eq matches nothing, Ne matches
     all non-NULL rows. *)
  Alcotest.(check (list int)) "eq missing" []
    (rows_matching [ P.Cmp { col = 1; op = P.Eq; code = -1 } ]);
  Alcotest.(check (list int)) "ne missing" [ 0; 1; 2 ]
    (rows_matching [ P.Cmp { col = 1; op = P.Ne; code = -1 } ])

let test_atom_column () =
  Alcotest.(check (option int)) "cmp" (Some 3)
    (P.atom_column (P.Cmp { col = 3; op = P.Eq; code = 0 }));
  Alcotest.(check (option int)) "or same col" (Some 1)
    (P.atom_column
       (P.Or
          [
            P.Like { col = 1; pattern = "a"; negated = false };
            P.Is_null { col = 1; negated = false };
          ]));
  Alcotest.(check (option int)) "const false" None (P.atom_column P.Const_false)

(* --- Query graph ----------------------------------------------------------- *)

(* A small chain graph t0 - t1 - t2 over the micro database. *)
let chain_graph () =
  let prng = Util.Prng.create 4 in
  let db = Support.micro_db prng ~tables:3 ~rows:10 in
  let rels =
    Array.init 3 (fun idx ->
        let table = Storage.Database.find_table db (Printf.sprintf "t%d" idx) in
        { QG.idx; alias = Printf.sprintf "t%d" idx; table; preds = [] })
  in
  let edge a b =
    {
      QG.left = a;
      left_col = Storage.Table.column_index rels.(a).QG.table (Printf.sprintf "fk%d" b);
      right = b;
      right_col = 0;
      pk_side = Some `Right;
    }
  in
  QG.create ~name:"chain" rels [ edge 0 1; edge 1 2 ]

let test_graph_connectivity () =
  let g = chain_graph () in
  Alcotest.(check bool) "single" true (QG.is_connected g (Bitset.singleton 1));
  Alcotest.(check bool) "adjacent pair" true (QG.is_connected g (Bitset.of_list [ 0; 1 ]));
  Alcotest.(check bool) "gap" false (QG.is_connected g (Bitset.of_list [ 0; 2 ]));
  Alcotest.(check bool) "full" true (QG.is_connected g (Bitset.full 3));
  Alcotest.(check bool) "empty" false (QG.is_connected g Bitset.empty)

let test_graph_neighbors () =
  let g = chain_graph () in
  Alcotest.(check int) "middle" (Bitset.of_list [ 0; 2 ]) (QG.adjacency g 1);
  Alcotest.(check int) "subset neighbors"
    (Bitset.singleton 2)
    (QG.neighbors g (Bitset.of_list [ 0; 1 ]))

let test_graph_connected_subsets () =
  let g = chain_graph () in
  (* chain of 3: {0},{1},{2},{01},{12},{012} *)
  Alcotest.(check int) "chain subset count" 6
    (Array.length (QG.connected_subsets g))

let test_graph_edges_between_orientation () =
  let g = chain_graph () in
  match QG.edges_between g (Bitset.singleton 1) (Bitset.singleton 0) with
  | [ e ] ->
      Alcotest.(check int) "left in first set" 1 e.QG.left;
      Alcotest.(check bool) "pk flipped" true (e.QG.pk_side = Some `Left)
  | other -> Alcotest.failf "expected 1 edge, got %d" (List.length other)

let test_graph_disconnected_rejected () =
  let prng = Util.Prng.create 4 in
  let db = Support.micro_db prng ~tables:3 ~rows:5 in
  let rels =
    Array.init 3 (fun idx ->
        let table = Storage.Database.find_table db (Printf.sprintf "t%d" idx) in
        { QG.idx; alias = Printf.sprintf "t%d" idx; table; preds = [] })
  in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Query_graph.create: query lonely is disconnected")
    (fun () ->
      ignore
        (QG.create ~name:"lonely" rels
           [
             {
               QG.left = 0;
               left_col = 2;
               right = 1;
               right_col = 0;
               pk_side = Some `Right;
             };
           ]))

let test_graph_join_columns () =
  let g = chain_graph () in
  (* Relation 1 joins via fk2 (to 2) and id (from 0). *)
  Alcotest.(check (list int)) "join columns of middle"
    [ 0; Storage.Table.column_index (QG.relation g 1).QG.table "fk2" ]
    (QG.join_columns g 1)

let edges_between_symmetric =
  Support.qcheck_case ~name:"edges_between symmetric up to orientation"
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, relations) ->
      let prng = Util.Prng.create seed in
      let db = Support.micro_db prng ~tables:relations ~rows:5 in
      let g = Support.micro_query prng db ~relations ~extra_edges:1 in
      let full = Bitset.full relations in
      (* Every split: same number of edges in both orientations, with
         left always inside the first argument. *)
      let ok = ref true in
      Bitset.subsets_iter full (fun s1 ->
          let s2 = Bitset.diff full s1 in
          let fwd = QG.edges_between g s1 s2 in
          let bwd = QG.edges_between g s2 s1 in
          if List.length fwd <> List.length bwd then ok := false;
          List.iter
            (fun (e : QG.edge) ->
              if not (Bitset.mem e.QG.left s1 && Bitset.mem e.QG.right s2) then
                ok := false)
            fwd);
      !ok)

let predicate_compile_matches_interpreter =
  (* Compiled predicates agree with a naive per-row interpretation. *)
  Support.qcheck_case ~name:"compiled predicate = naive interpretation"
    QCheck.(pair small_int (int_range 0 4))
    (fun (seed, shape) ->
      let prng = Util.Prng.create (seed + 77) in
      let db = Support.micro_db prng ~tables:1 ~rows:40 in
      let table = Storage.Database.find_table db "t0" in
      let col = Storage.Table.column_index table "v" in
      let c = Util.Prng.int prng 5 in
      let atom =
        match shape with
        | 0 -> P.Cmp { col; op = P.Eq; code = c }
        | 1 -> P.Cmp { col; op = P.Le; code = c }
        | 2 -> P.In { col; codes = [ c; (c + 2) mod 5 ] }
        | 3 -> P.Between { col; lo = 1; hi = c }
        | _ ->
            P.Or
              [ P.Cmp { col; op = P.Eq; code = c }; P.Is_null { col; negated = false } ]
      in
      let compiled = P.compile table [ atom ] in
      let data = Storage.Column.to_codes (Storage.Table.column table col) in
      let null = Storage.Value.null_code in
      let rec interpret a row =
        match a with
        | P.Cmp { op = P.Eq; code; _ } -> data.(row) <> null && data.(row) = code
        | P.Cmp { op = P.Le; code; _ } -> data.(row) <> null && data.(row) <= code
        | P.In { codes; _ } -> data.(row) <> null && List.mem data.(row) codes
        | P.Between { lo; hi; _ } ->
            data.(row) <> null && data.(row) >= lo && data.(row) <= hi
        | P.Is_null { negated; _ } -> (data.(row) = null) <> negated
        | P.Or atoms -> List.exists (fun a -> interpret a row) atoms
        | _ -> assert false
      in
      List.for_all
        (fun row -> compiled row = interpret atom row)
        (List.init 40 (fun i -> i)))

let star_subsets =
  Support.qcheck_case ~name:"star graph connected subset count"
    (QCheck.int_range 2 6)
    (fun leaves ->
      let prng = Util.Prng.create 4 in
      let db = Support.micro_db prng ~tables:(leaves + 1) ~rows:5 in
      let rels =
        Array.init (leaves + 1) (fun idx ->
            let table = Storage.Database.find_table db (Printf.sprintf "t%d" idx) in
            { QG.idx; alias = Printf.sprintf "t%d" idx; table; preds = [] })
      in
      (* hub = relation 0; each leaf i joins hub.fk_i = leaf.id *)
      let edges =
        List.init leaves (fun i ->
            let leaf = i + 1 in
            {
              QG.left = 0;
              left_col =
                Storage.Table.column_index rels.(0).QG.table
                  (Printf.sprintf "fk%d" leaf);
              right = leaf;
              right_col = 0;
              pk_side = Some `Right;
            })
      in
      let g = QG.create ~name:"star" rels edges in
      (* hub + any leaf set: 2^leaves; single leaves: leaves *)
      Array.length (QG.connected_subsets g) = (1 lsl leaves) + leaves)

(* Reference LIKE implementation: naive exponential recursion. Safe for
   the tiny strings qcheck generates. *)
let rec reference_like p s pi si =
  if pi = String.length p then si = String.length s
  else
    match p.[pi] with
    | '%' ->
        let rec try_skip k =
          k <= String.length s && (reference_like p s (pi + 1) k || try_skip (k + 1))
        in
        try_skip si
    | '_' -> si < String.length s && reference_like p s (pi + 1) (si + 1)
    | c -> si < String.length s && s.[si] = c && reference_like p s (pi + 1) (si + 1)

let like_matches_reference =
  let chars = [ 'a'; 'b'; '%'; '_' ] in
  let gen n = QCheck.Gen.(string_size ~gen:(oneofl chars) (0 -- n)) in
  Support.qcheck_case ~count:200 ~name:"LIKE agrees with naive reference"
    (QCheck.make QCheck.Gen.(pair (gen 6) (gen 8)))
    (fun (pattern, s) ->
      (* The subject must not contain wildcards. *)
      let s = String.map (fun c -> if c = '%' || c = '_' then 'a' else c) s in
      Query.Like_match.matches ~pattern s = reference_like pattern s 0 0)

let suite =
  [
    Alcotest.test_case "LIKE matching" `Quick test_like_cases;
    like_matches_reference;
    Alcotest.test_case "prefix patterns" `Quick test_prefix_pattern;
    Alcotest.test_case "predicate cmp" `Quick test_pred_cmp;
    Alcotest.test_case "predicate between/in" `Quick test_pred_between_in;
    Alcotest.test_case "predicate null" `Quick test_pred_null;
    Alcotest.test_case "predicate like" `Quick test_pred_like;
    Alcotest.test_case "predicate str cmp" `Quick test_pred_str_cmp;
    Alcotest.test_case "predicate or/conjunction" `Quick test_pred_or_and_conjunction;
    Alcotest.test_case "predicate sentinel code" `Quick test_pred_sentinel_code;
    Alcotest.test_case "atom column" `Quick test_atom_column;
    Alcotest.test_case "graph connectivity" `Quick test_graph_connectivity;
    Alcotest.test_case "graph neighbors" `Quick test_graph_neighbors;
    Alcotest.test_case "graph connected subsets" `Quick test_graph_connected_subsets;
    Alcotest.test_case "edges_between orientation" `Quick
      test_graph_edges_between_orientation;
    Alcotest.test_case "disconnected rejected" `Quick test_graph_disconnected_rejected;
    Alcotest.test_case "join columns" `Quick test_graph_join_columns;
    edges_between_symmetric;
    predicate_compile_matches_interpreter;
    star_subsets;
  ]
