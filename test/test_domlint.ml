(* Domlint: every rule demonstrated three ways — catching a seeded
   violation in a fixture, passing the clean counterpart, and honoring a
   suppression — plus a synthetic lock-order cycle R4 must reject and
   the real tree's scan, which must come back at zero unsuppressed
   violations with an acyclic lock graph. Fixtures are written next to
   the test binary (the dune sandbox), one file per scenario, named so
   their module names cannot collide. *)

module Violation = Verify.Violation

let fixture_dir = "domlint_fixtures"

let write_fixture name lines =
  if not (Sys.file_exists fixture_dir) then Sys.mkdir fixture_dir 0o755;
  let path = Filename.concat fixture_dir name in
  let oc = open_out path in
  output_string oc (String.concat "\n" lines);
  output_char oc '\n';
  close_out oc;
  path

let scan ?(allow = []) names_and_lines =
  Domlint.scan ~allow
    (List.map (fun (name, lines) -> write_fixture name lines) names_and_lines)

let has_pass pass (r : Domlint.report) =
  List.exists
    (fun (v : Violation.t) -> String.equal v.Violation.pass pass)
    r.Domlint.result.Violation.violations

let suppressed_of rule (r : Domlint.report) =
  match
    List.find_opt
      (fun (s : Domlint.rule_stat) -> String.equal s.Domlint.rule rule)
      r.Domlint.stats
  with
  | Some s -> s.Domlint.suppressed
  | None -> 0

let check_ok label r = Alcotest.(check bool) label true (Domlint.ok r)

let check_flagged label pass r =
  Alcotest.(check bool) label true (has_pass pass r)

(* --- R1: module-toplevel mutable state ------------------------------ *)

let r1 = "domlint/R1-toplevel-mutable-state"

let test_r1 () =
  check_flagged "bare toplevel Hashtbl flagged" r1
    (scan
       [
         ( "dlt_r1_bad.ml",
           [
             "let table = Hashtbl.create 7";
             "let lookup k = Hashtbl.find_opt table k";
           ] );
       ]);
  check_flagged "bare toplevel ref flagged" r1
    (scan [ ("dlt_r1_ref.ml", [ "let hits = ref 0" ]) ]);
  check_ok "Atomic counter and local state clean"
    (scan
       [
         ( "dlt_r1_ok.ml",
           [
             "let counter = Atomic.make 0";
             "let bump () = Atomic.incr counter";
             "let scratch () = Hashtbl.create 7";
           ] );
       ]);
  let r =
    scan
      [
        ( "dlt_r1_sup.ml",
          [
            "(* domlint: safe R1 — fixture: written once before any \
             domain spawns *)";
            "let table = Hashtbl.create 7";
          ] );
      ]
  in
  check_ok "annotated Hashtbl suppressed" r;
  Alcotest.(check int) "suppression counted" 1
    (suppressed_of "R1-toplevel-mutable-state" r)

let test_r1_allowlist () =
  let allow =
    [
      {
        Domlint.Suppress.rule = "R1";
        file = "dlt_r1_allow.ml";
        symbol = "table";
        reason = "fixture: whole-file exemption";
      };
    ]
  in
  check_ok "allowlist entry suppresses"
    (scan ~allow [ ("dlt_r1_allow.ml", [ "let table = Hashtbl.create 7" ]) ]);
  (* The same entry against a clean file is stale — and reported. *)
  check_flagged "stale allowlist entry reported" "domlint/allowlist"
    (scan ~allow [ ("dlt_r1_allow.ml", [ "let version = 3" ]) ])

(* --- R2: lazy outside Util.Once ------------------------------------- *)

let r2 = "domlint/R2-lazy"

let test_r2 () =
  check_flagged "toplevel lazy flagged" r2
    (scan [ ("dlt_r2_bad.ml", [ "let v = lazy (1 + 2)" ]) ]);
  check_flagged "Lazy.force flagged" r2
    (scan [ ("dlt_r2_force.ml", [ "let get v = Lazy.force v" ]) ]);
  check_ok "no lazy clean" (scan [ ("dlt_r2_ok.ml", [ "let v = 42" ]) ]);
  check_ok "annotated lazy suppressed"
    (scan
       [
         ( "dlt_r2_sup.ml",
           [
             "(* domlint: safe R2 — fixture: forced before domains spawn *)";
             "let v = lazy (1 + 2)";
           ] );
       ])

(* --- R3: global Random outside Util.Prng ----------------------------- *)

let r3 = "domlint/R3-global-random"

let test_r3 () =
  check_flagged "global Random flagged" r3
    (scan [ ("dlt_r3_bad.ml", [ "let noise () = Random.int 100" ]) ]);
  check_ok "no Random clean"
    (scan [ ("dlt_r3_ok.ml", [ "let noise () = 4" ]) ]);
  check_ok "annotated Random suppressed"
    (scan
       [
         ( "dlt_r3_sup.ml",
           [
             "(* domlint: safe R3 — fixture: bench-only, single domain *)";
             "let noise () = Random.int 100";
           ] );
       ])

(* --- R5: Domain.spawn outside Util.Domain_pool ----------------------- *)

let r5 = "domlint/R5-domain-spawn"

let test_r5 () =
  check_flagged "Domain.spawn flagged" r5
    (scan [ ("dlt_r5_bad.ml", [ "let worker f = Domain.spawn f" ]) ]);
  check_ok "no spawn clean"
    (scan [ ("dlt_r5_ok.ml", [ "let worker f = f ()" ]) ]);
  check_ok "annotated spawn suppressed"
    (scan
       [
         ( "dlt_r5_sup.ml",
           [
             "(* domlint: safe R5 — fixture: supervised one-shot domain *)";
             "let worker f = Domain.spawn f";
           ] );
       ])

(* --- R6: scheduler atomics outside the pool / morsel scheduler ------- *)

let r6 = "domlint/R6-scheduler-state"

let test_r6 () =
  check_flagged "Atomic.fetch_and_add flagged" r6
    (scan
       [
         ( "dlt_r6_bad.ml",
           [
             "let next = Atomic.make 0";
             "let claim () = Atomic.fetch_and_add next 1";
           ] );
       ]);
  check_ok "plain Atomic get/set clean"
    (scan
       [
         ( "dlt_r6_ok.ml",
           [
             "let flag = Atomic.make false";
             "let trip () = Atomic.set flag true";
           ] );
       ]);
  check_ok "annotated counter suppressed"
    (scan
       [
         ( "dlt_r6_sup.ml",
           [
             "let hits = Atomic.make 0";
             "(* domlint: safe R6 — fixture: monotone telemetry counter *)";
             "let note () = ignore (Atomic.fetch_and_add hits 1)";
           ] );
       ]);
  let allow =
    [
      {
        Domlint.Suppress.rule = "R6";
        file = "dlt_r6_allow.ml";
        symbol = "*";
        reason = "fixture: telemetry counters, not work distribution";
      };
    ]
  in
  let r =
    scan ~allow
      [
        ( "dlt_r6_allow.ml",
          [
            "let hits = Atomic.make 0";
            "let note () = ignore (Atomic.fetch_and_add hits 1)";
          ] );
      ]
  in
  check_ok "allowlist entry suppresses" r;
  Alcotest.(check int) "suppression counted" 1
    (suppressed_of "R6-scheduler-state" r)

(* --- R7: serving state confined to lib/serve -------------------------- *)

let r7 = "domlint/R7-serving-state"

let test_r7 () =
  check_flagged "toplevel session atomic flagged" r7
    (scan
       [
         ( "dlt_r7_bad.ml",
           [
             "let sessions = Atomic.make 0";
             "let bump () = Atomic.incr sessions";
           ] );
       ]);
  check_flagged "mutable inflight record field flagged" r7
    (scan
       [
         ( "dlt_r7_rec.ml",
           [
             "type gate = { mutable inflight : int }";
             "(* domlint: safe R1 — fixture: exercising R7's own check *)";
             "let gate = { inflight = 0 }";
           ] );
       ]);
  check_ok "pure bindings and per-call state clean"
    (scan
       [
         ( "dlt_r7_ok.ml",
           [
             "let session_label = \"sess\"";
             "let make_session () = Atomic.make 0";
           ] );
       ]);
  let r =
    scan
      [
        ( "dlt_r7_sup.ml",
          [
            "(* domlint: safe R7 — fixture: single-domain bench helper *)";
            "let session_count = Atomic.make 0";
          ] );
      ]
  in
  check_ok "annotated serving state suppressed" r;
  Alcotest.(check int) "suppression counted" 1
    (suppressed_of "R7-serving-state" r)

let test_r7_allowlist () =
  let allow =
    [
      {
        Domlint.Suppress.rule = "R7";
        file = "dlt_r7_allow.ml";
        symbol = "session_count";
        reason = "fixture: migration grace period";
      };
    ]
  in
  check_ok "allowlist entry suppresses"
    (scan ~allow
       [ ("dlt_r7_allow.ml", [ "let session_count = Atomic.make 0" ]) ])

let test_r7_confined () =
  (* A fixture placed under a lib/serve/ directory is the owning layer:
     the same binding that test_r7 flags must pass untouched. *)
  let lib = Filename.concat fixture_dir "lib" in
  let dir = Filename.concat lib "serve" in
  List.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    [ fixture_dir; lib; dir ];
  let path = Filename.concat dir "dlt_r7_conf.ml" in
  let oc = open_out path in
  output_string oc "let sessions = Atomic.make 0\n";
  close_out oc;
  check_ok "serving state inside lib/serve/ is exempt" (Domlint.scan [ path ])

(* --- R8: observability state confined to lib/obs ----------------------- *)

let r8 = "domlint/R8-observability-state"

let test_r8 () =
  check_flagged "toplevel span counter flagged" r8
    (scan
       [
         ( "dlt_r8_bad.ml",
           [
             "let span_count = Atomic.make 0";
             "let bump () = Atomic.incr span_count";
           ] );
       ]);
  check_flagged "mutable trace record field flagged" r8
    (scan
       [
         ( "dlt_r8_rec.ml",
           [
             "type sink = { mutable trace_bytes : int }";
             "(* domlint: safe R1 — fixture: exercising R8's own check *)";
             "let sink = { trace_bytes = 0 }";
           ] );
       ]);
  check_ok "pure bindings and per-call state clean"
    (scan
       [
         ( "dlt_r8_ok.ml",
           [
             "let trace_label = \"trace\"";
             "let make_span_buf () = Atomic.make 0";
           ] );
       ]);
  check_ok "cells registered through the Obs API sanctioned"
    (scan
       [
         ( "dlt_r8_api.ml",
           [ "let span_total = Obs.Metrics.counter \"exec.span_total\"" ] );
       ]);
  let r =
    scan
      [
        ( "dlt_r8_sup.ml",
          [
            "(* domlint: safe R8 — fixture: single-domain bench helper *)";
            "let metric_cell = Atomic.make 0";
          ] );
      ]
  in
  check_ok "annotated observability state suppressed" r;
  Alcotest.(check int) "suppression counted" 1
    (suppressed_of "R8-observability-state" r)

let test_r8_confined () =
  (* The same binding test_r8 flags must pass untouched when the file
     lives under lib/obs/ — the owning layer. *)
  let lib = Filename.concat fixture_dir "lib" in
  let dir = Filename.concat lib "obs" in
  List.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    [ fixture_dir; lib; dir ];
  let path = Filename.concat dir "dlt_r8_conf.ml" in
  let oc = open_out path in
  output_string oc "let span_count = Atomic.make 0\n";
  close_out oc;
  check_ok "observability state inside lib/obs/ is exempt"
    (Domlint.scan [ path ])

(* --- annotation hygiene ---------------------------------------------- *)

let test_annotation_hygiene () =
  check_flagged "reason-less annotation reported" "domlint/annotation"
    (scan [ ("dlt_ann_bad.ml", [ "(* domlint: safe *)"; "let v = 1" ]) ]);
  check_flagged "domlint typo reported" "domlint/annotation"
    (scan [ ("dlt_ann_typo.ml", [ "(* domlint: sofe — oops *)"; "let v = 1" ]) ]);
  check_flagged "unparsable file reported" "domlint/parse"
    (scan [ ("dlt_parse_bad.ml", [ "let let let" ]) ])

(* --- R4: lock-order cycles ------------------------------------------- *)

let r4 = "domlint/R4-lock-order"

let test_r4_cycle () =
  (* Dlt_locka locks its mutex then calls Dlt_lockb.g, which locks its
     own mutex then calls Dlt_locka.f: a classic ABBA deadlock. *)
  let r =
    scan
      [
        ( "dlt_locka.ml",
          [
            "let m = Mutex.create ()";
            "let f () = Mutex.lock m; Dlt_lockb.g (); Mutex.unlock m";
          ] );
        ( "dlt_lockb.ml",
          [
            "let m = Mutex.create ()";
            "let g () = Mutex.lock m; Dlt_locka.f (); Mutex.unlock m";
          ] );
      ]
  in
  check_flagged "ABBA lock cycle rejected" r4 r

let test_r4_acyclic () =
  (* One direction only: an edge, but no cycle. *)
  let r =
    scan
      [
        ( "dlt_locky.ml",
          [ "let m = Mutex.create ()"; "let g () = Mutex.protect m ignore" ]
        );
        ( "dlt_lockx.ml",
          [
            "let m = Mutex.create ()";
            "let f () = Mutex.lock m; Dlt_locky.g (); Mutex.unlock m";
          ] );
      ]
  in
  check_ok "one-directional lock nesting clean" r;
  Alcotest.(check bool) "the nesting edge is recorded" true
    (List.exists
       (fun (a, b, _) ->
         String.equal a "Dlt_lockx" && String.equal b "Dlt_locky")
       r.Domlint.lock_edges)

(* --- the real tree ---------------------------------------------------- *)

let test_real_tree () =
  (* Under `dune runtest` the binary runs in _build/default/test with
     the dune deps copying lib/, bin/ and bench/ one level up; under
     `dune exec` it runs from the workspace root. Probe for the tree.
     Same scan and allowlist as `dune build @lint` — this is the gate's
     own regression test. *)
  let root =
    List.find
      (fun root ->
        Sys.file_exists (Filename.concat root "lib/util/once.ml"))
      [ ".."; "." ]
  in
  let r = Domlint.scan_tree ~allow:Lintkit.Allowlist.entries ~root () in
  Alcotest.(check bool) "scanned a substantial tree" true (r.Domlint.files > 50);
  (match r.Domlint.result.Violation.violations with
  | [] -> ()
  | vs ->
      Alcotest.failf "real tree has %d domlint violations, first: %s"
        (List.length vs)
        (Violation.to_string (List.hd vs)));
  Alcotest.(check bool) "real lock graph is acyclic (R4 reported nothing)"
    true
    (not (has_pass r4 r));
  Alcotest.(check bool) "lock graph saw the known nesting edges" true
    (List.length r.Domlint.lock_edges >= 3)

let suite =
  [
    Alcotest.test_case "R1 toplevel mutable state" `Quick test_r1;
    Alcotest.test_case "R1 allowlist + stale entries" `Quick test_r1_allowlist;
    Alcotest.test_case "R2 lazy" `Quick test_r2;
    Alcotest.test_case "R3 global Random" `Quick test_r3;
    Alcotest.test_case "R5 Domain.spawn" `Quick test_r5;
    Alcotest.test_case "R6 scheduler atomics" `Quick test_r6;
    Alcotest.test_case "R7 serving state" `Quick test_r7;
    Alcotest.test_case "R7 allowlist" `Quick test_r7_allowlist;
    Alcotest.test_case "R7 lib/serve exempt" `Quick test_r7_confined;
    Alcotest.test_case "R8 observability state" `Quick test_r8;
    Alcotest.test_case "R8 lib/obs exempt" `Quick test_r8_confined;
    Alcotest.test_case "annotation hygiene" `Quick test_annotation_hygiene;
    Alcotest.test_case "R4 rejects lock cycle" `Quick test_r4_cycle;
    Alcotest.test_case "R4 accepts acyclic nesting" `Quick test_r4_acyclic;
    Alcotest.test_case "real tree is clean" `Quick test_real_tree;
  ]
