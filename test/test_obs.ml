(* The observability subsystem: histogram merge laws and the shared
   quantile math (the regression pin for the Serve.Report / bench
   dedup), the metrics registry's find-or-create and typing contract,
   the trace buffers' exactly-once flush under concurrent recording,
   and the end-to-end guarantee that tracing never changes results —
   the golden workload runs byte-identical with recording on and off. *)

let span_list () = fst (Obs.Trace.flush ())

(* --- histograms ------------------------------------------------------- *)

let hist_of xs =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe h) xs;
  h

let hist_equal a b =
  Obs.Histogram.count a = Obs.Histogram.count b
  && Obs.Histogram.sum a = Obs.Histogram.sum b
  && Obs.Histogram.buckets a = Obs.Histogram.buckets b

let small_nat_list = QCheck.(list (int_bound 1_000_000))

let merge_law_tests =
  let open Obs.Histogram in
  [
    Support.qcheck_case ~count:100 ~name:"merge is associative"
      QCheck.(triple small_nat_list small_nat_list small_nat_list)
      (fun (xs, ys, zs) ->
        let a = hist_of xs and b = hist_of ys and c = hist_of zs in
        hist_equal (merge (merge a b) c) (merge a (merge b c)));
    Support.qcheck_case ~count:100 ~name:"merge is order-independent"
      QCheck.(pair small_nat_list small_nat_list)
      (fun (xs, ys) ->
        let a = hist_of xs and b = hist_of ys in
        hist_equal (merge a b) (merge b a));
    Support.qcheck_case ~count:100 ~name:"merge preserves counts and sums"
      QCheck.(pair small_nat_list small_nat_list)
      (fun (xs, ys) ->
        let a = hist_of xs and b = hist_of ys in
        let m = merge a b in
        count m = count a + count b
        && sum m = sum a + sum b
        && merge a b != a);
    Support.qcheck_case ~count:100 ~name:"merge does not mutate its inputs"
      QCheck.(pair small_nat_list small_nat_list)
      (fun (xs, ys) ->
        let a = hist_of xs and b = hist_of ys in
        let before = (buckets a, buckets b) in
        ignore (merge a b);
        before = (buckets a, buckets b));
  ]

let test_bucket_shape () =
  let h = hist_of [ 0; 1; 2; 3; 4; 7; 8 ] in
  let b = Obs.Histogram.buckets h in
  (* value 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4..7 ->
     bucket 3; 8 -> bucket 4. *)
  Alcotest.(check (list int)) "log2 bucket placement" [ 1; 1; 2; 2; 1 ]
    (Array.to_list (Array.sub b 0 5));
  Alcotest.(check int) "count" 7 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" 25 (Obs.Histogram.sum h);
  Alcotest.(check int) "bucket 0 lower" 0 (Obs.Histogram.bucket_lower 0);
  Alcotest.(check int) "bucket 4 lower" 8 (Obs.Histogram.bucket_lower 4)

let test_approx_quantile () =
  let h = hist_of (List.init 100 (fun i -> i + 1)) in
  (* The p50 observation is 50, whose bucket [32, 63] resolves to its
     upper bound. *)
  Alcotest.(check int) "p50 bucket upper bound" 63
    (Obs.Histogram.approx_quantile h 0.5);
  Alcotest.(check int) "empty histogram" 0
    (Obs.Histogram.approx_quantile (Obs.Histogram.create ()) 0.5)

(* --- the exact quantiles the serve report and bench harness use ------- *)

let test_percentile_pinned () =
  (* Pinned against the nearest-rank implementation that used to live
     in Serve.Report: rank = ceil (q * n) over the sorted sample. *)
  let sample = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 5" 3.0
    (Obs.Histogram.percentile sample 0.50);
  Alcotest.(check (float 0.0)) "p95 of 5" 5.0
    (Obs.Histogram.percentile sample 0.95);
  Alcotest.(check (float 0.0)) "p99 of 5" 5.0
    (Obs.Histogram.percentile sample 0.99);
  let even = [| 4.0; 1.0; 3.0; 2.0 |] in
  Alcotest.(check (float 0.0)) "p50 of even n (nearest rank)" 2.0
    (Obs.Histogram.percentile even 0.50);
  (* The bench harness's upper median deliberately differs from
     nearest-rank p50 on even n. *)
  Alcotest.(check (float 0.0)) "upper median of even n" 3.0
    (Obs.Histogram.median_of_list [ 4.0; 1.0; 3.0; 2.0 ]);
  Alcotest.(check (float 0.0)) "median of singleton" 7.5
    (Obs.Histogram.median_of_list [ 7.5 ]);
  Alcotest.(check bool) "median of [] raises" true
    (try
       ignore (Obs.Histogram.median_of_list []);
       false
     with Invalid_argument _ -> true);
  (* percentile must not reorder the caller's array. *)
  Alcotest.(check (array (float 0.0))) "input array untouched"
    [| 5.0; 1.0; 4.0; 2.0; 3.0 |] sample

let percentile_reference_test =
  (* The exact formula Serve.Report shipped before the dedup, kept here
     as the regression oracle. *)
  let reference sample q =
    let n = Array.length sample in
    if n = 0 then 0.0
    else begin
      let sorted = Array.copy sample in
      Array.sort compare sorted;
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))
    end
  in
  Support.qcheck_case ~count:200 ~name:"percentile matches the old report math"
    QCheck.(pair (list (int_bound 1_000_000)) (int_bound 100))
    (fun (xs, pct) ->
      let sample = Array.of_list (List.map float_of_int xs) in
      let q = float_of_int pct /. 100.0 in
      Obs.Histogram.percentile sample q = reference sample q)

(* --- metrics registry ------------------------------------------------- *)

let test_registry () =
  let c = Obs.Metrics.counter "test_obs.c" in
  Obs.Metrics.Counter.reset c;
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Obs.Metrics.Counter.value c);
  Alcotest.(check int) "same name, same cell" 5
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "test_obs.c"));
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       ignore (Obs.Metrics.gauge "test_obs.c");
       false
     with Invalid_argument _ -> true);
  let g = Obs.Metrics.gauge "test_obs.g" in
  Obs.Metrics.Gauge.reset g;
  Obs.Metrics.Gauge.set_max g 3.0;
  Obs.Metrics.Gauge.set_max g 1.0;
  Alcotest.(check (float 0.0)) "set_max keeps the high-water mark" 3.0
    (Obs.Metrics.Gauge.value g);
  let h = Obs.Metrics.histogram "test_obs.h" in
  Obs.Metrics.Hist.reset h;
  Obs.Metrics.Hist.observe h 10;
  Obs.Metrics.Hist.observe h 20;
  Alcotest.(check int) "hist snapshot counts" 2
    (Obs.Histogram.count (Obs.Metrics.Hist.snapshot h));
  let dump = Obs.Metrics.dump () in
  let names = List.map fst dump in
  Alcotest.(check bool) "dump contains the cells" true
    (List.mem "test_obs.c" names && List.mem "test_obs.g" names
    && List.mem "test_obs.h" names);
  Alcotest.(check bool) "dump sorted by name" true
    (names = List.sort compare names);
  (* The telemetry migrations register their cells at module init:
     spot-check a few canonical names are present. *)
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "exec.morsel.phases"; "exec.join_table.tables"; "exec.join_cache.hits";
      "core.pipeline.plan_hits"; "serve.admission.waits"; "serve.request_us";
    ]

(* --- trace spans ------------------------------------------------------ *)

let test_trace_disabled () =
  Obs.Trace.set_enabled false;
  Obs.Trace.clear ();
  Alcotest.(check int) "start returns the sentinel" 0 (Obs.Trace.start ());
  Obs.Trace.span (Obs.Trace.intern "test_obs.x") ~t0:(Obs.Trace.start ()) ~a:1
    ~b:2;
  Obs.Trace.event (Obs.Trace.intern "test_obs.x") ~a:1 ~b:2;
  Alcotest.(check (list unit)) "nothing recorded" []
    (List.map ignore (span_list ()))

let test_trace_nesting () =
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  let ph_outer = Obs.Trace.intern "test_obs.outer" in
  let ph_inner = Obs.Trace.intern "test_obs.inner" in
  (* The wall clock ticks in microseconds; spin past a tick so the two
     starts are distinguishable. *)
  let spin () =
    let t = Obs.Trace.now_ns () in
    while Obs.Trace.now_ns () - t < 5_000 do () done
  in
  let t_outer = Obs.Trace.start () in
  spin ();
  let t_inner = Obs.Trace.start () in
  spin ();
  Obs.Trace.span ph_inner ~t0:t_inner ~a:0 ~b:0;
  spin ();
  Obs.Trace.span ph_outer ~t0:t_outer ~a:0 ~b:0;
  Obs.Trace.set_enabled false;
  match span_list () with
  | [ a; b ] ->
      (* Deterministic order: ascending start time — the outer span
         started first even though it recorded last, and its interval
         contains the inner one. *)
      Alcotest.(check string) "outer first" "test_obs.outer"
        a.Obs.Trace.sp_phase;
      Alcotest.(check string) "inner second" "test_obs.inner"
        b.Obs.Trace.sp_phase;
      Alcotest.(check bool) "outer contains inner" true
        (a.Obs.Trace.sp_start_ns <= b.Obs.Trace.sp_start_ns
        && a.Obs.Trace.sp_start_ns + a.Obs.Trace.sp_dur_ns
           >= b.Obs.Trace.sp_start_ns + b.Obs.Trace.sp_dur_ns)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_trace_exactly_once_concurrent () =
  (* Four domains (the pool's workers plus the caller) each record a
     distinct set of payloads; one flush must surface every span exactly
     once, and the next flush must be empty. *)
  let domains = 4 and per_domain = 500 in
  let pool = Util.Domain_pool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Util.Domain_pool.shutdown pool)
    (fun () ->
      Obs.Trace.set_enabled true;
      Obs.Trace.clear ();
      let ph = Obs.Trace.intern "test_obs.worker" in
      Util.Domain_pool.run_workers pool (fun slot ->
          for i = 0 to per_domain - 1 do
            let t0 = Obs.Trace.start () in
            Obs.Trace.span ph ~t0 ~a:((slot * per_domain) + i) ~b:slot
          done);
      Obs.Trace.set_enabled false;
      let spans, dropped = Obs.Trace.flush () in
      Alcotest.(check int) "no overwrites" 0 dropped;
      Alcotest.(check int) "every span surfaced" (domains * per_domain)
        (List.length spans);
      let seen = Hashtbl.create 4096 in
      List.iter
        (fun (s : Obs.Trace.sp) ->
          Alcotest.(check bool) "payload surfaced once" false
            (Hashtbl.mem seen s.Obs.Trace.sp_a);
          Hashtbl.replace seen s.Obs.Trace.sp_a ())
        spans;
      for p = 0 to (domains * per_domain) - 1 do
        if not (Hashtbl.mem seen p) then
          Alcotest.failf "payload %d never surfaced" p
      done;
      Alcotest.(check int) "second flush is empty" 0
        (List.length (span_list ())))

(* --- export ----------------------------------------------------------- *)

let test_export_shape () =
  Obs.Trace.set_enabled true;
  Obs.Trace.clear ();
  let ph = Obs.Trace.intern "exec" in
  let t0 = Obs.Trace.start () in
  Obs.Trace.span ph ~t0 ~a:7 ~b:9;
  Obs.Trace.set_enabled false;
  let spans, dropped = Obs.Trace.flush () in
  let totals = Obs.Export.phase_totals spans in
  Alcotest.(check int) "one phase" 1 (List.length totals);
  let t = List.hd totals in
  Alcotest.(check string) "phase name" "exec" t.Obs.Export.pt_phase;
  Alcotest.(check int) "span count" 1 t.Obs.Export.pt_spans;
  let doc = Obs.Export.trace_json ~query:"1a" ~wall_ms:1.0 ~spans ~dropped () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("document mentions " ^ needle) true
        (let n = String.length needle and m = String.length doc in
         let rec at i =
           i + n <= m && (String.sub doc i n = needle || at (i + 1))
         in
         at 0))
    [
      "\"version\""; "\"query\": \"1a\""; "\"span_count\": 1"; "\"phases\"";
      "\"spans\""; "\"metrics\""; "\"coverage\"";
    ]

(* --- tracing never changes results ------------------------------------ *)

let test_golden_workload_identity () =
  (* The whole workload, once with recording off and once with it on,
     in fresh sessions: every query's rows, simulated work, and result
     values must be byte-identical. This is the in-tree version of the
     bench obs gate's identity check. *)
  let fingerprint ~traced =
    let s = Core.Session.create ~seed:3 ~scale:0.0006 () in
    Obs.Trace.set_enabled traced;
    Obs.Trace.clear ();
    let fp =
      List.map
        (fun (jq : Workload.Job.query) ->
          let q = Core.Session.job s jq.Workload.Job.name in
          let r = Core.Session.run s q (Core.Session.optimize s q) in
          ( jq.Workload.Job.name,
            r.Exec.Executor.rows,
            r.Exec.Executor.work,
            List.map Storage.Value.to_string r.Exec.Executor.mins ))
        Workload.Job.all
    in
    Obs.Trace.set_enabled false;
    let spans, _ = Obs.Trace.flush () in
    (fp, List.length spans)
  in
  let off, off_spans = fingerprint ~traced:false in
  let on, on_spans = fingerprint ~traced:true in
  Alcotest.(check int) "untraced run recorded nothing" 0 off_spans;
  Alcotest.(check bool) "traced run recorded spans" true
    (on_spans > Workload.Job.query_count);
  if off <> on then
    List.iter2
      (fun (n, r1, w1, m1) (_, r2, w2, m2) ->
        if (r1, w1, m1) <> (r2, w2, m2) then
          Alcotest.failf "query %s diverged under tracing" n)
      off on

let suite =
  merge_law_tests
  @ [ percentile_reference_test ]
  @ [
      Alcotest.test_case "bucket shape" `Quick test_bucket_shape;
      Alcotest.test_case "approx quantile" `Quick test_approx_quantile;
      Alcotest.test_case "exact quantiles pinned" `Quick test_percentile_pinned;
      Alcotest.test_case "metrics registry" `Quick test_registry;
      Alcotest.test_case "trace disabled is silent" `Quick test_trace_disabled;
      Alcotest.test_case "trace spans nest" `Quick test_trace_nesting;
      Alcotest.test_case "exactly-once flush under 4 domains" `Quick
        test_trace_exactly_once_concurrent;
      Alcotest.test_case "export shape" `Quick test_export_shape;
      Alcotest.test_case "tracing never changes results" `Slow
        test_golden_workload_identity;
    ]
