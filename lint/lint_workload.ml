(* Workload lint driver behind `dune build @verify` (also wired into
   `dune runtest`): binds every JOB and TPC-H query against a small
   generated instance and runs the query-graph lint on each, so a
   malformed workload query can never reach the benchmark harness. *)

let lint_workload ~label ~db queries =
  let violations = ref 0 in
  let checks = ref 0 in
  List.iter
    (fun (name, sql) ->
      let bound = Sqlfront.Binder.bind_sql db ~name sql in
      let report = Verify.check_graph bound.Sqlfront.Binder.graph in
      checks := !checks + report.Verify.Violation.checks;
      match report.Verify.Violation.violations with
      | [] -> ()
      | vs ->
          violations := !violations + List.length vs;
          List.iter
            (fun v ->
              Printf.eprintf "%s\n" (Verify.Violation.to_string v))
            vs)
    queries;
  Printf.printf "%s: %d queries, %d lint checks, %d violations\n" label
    (List.length queries) !checks !violations;
  !violations

let () =
  let imdb = Datagen.Imdb_gen.generate ~seed:42 ~scale:0.02 () in
  let job =
    List.map (fun q -> (q.Workload.Job.name, q.Workload.Job.sql)) Workload.Job.all
  in
  let tpch_db = Datagen.Tpch_gen.generate ~scale:0.05 () in
  let tpch =
    List.map
      (fun q ->
        (q.Workload.Tpch_queries.name, q.Workload.Tpch_queries.sql))
      Workload.Tpch_queries.all
  in
  let bad =
    lint_workload ~label:"JOB" ~db:imdb job
    + lint_workload ~label:"TPC-H" ~db:tpch_db tpch
  in
  if bad > 0 then exit 1
