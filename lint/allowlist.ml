(* The committed domlint suppression list. Every entry is one reviewed
   decision: rule, path suffix, binding symbol ("*" = whole file) and a
   one-line reason. Entries that stop matching anything are reported as
   stale by the pass itself, so this list can only shrink as the tree
   gets cleaned up. Prefer an inline [(* domlint: safe — reason *)]
   annotation for single sites; use an entry here when a whole module is
   intentionally exempt. *)

let entries : Domlint.Suppress.entry list =
  [
    {
      rule = "R1";
      file = "lib/datagen/vocab.ml";
      symbol = "*";
      reason =
        "constant IMDB vocabulary tables: arrays written once at \
         definition, only ever indexed by the generators";
    };
    {
      rule = "R1";
      file = "lib/datagen/tpch_gen.ml";
      symbol = "regions";
      reason = "constant TPC-H vocabulary, never written";
    };
    {
      rule = "R1";
      file = "lib/datagen/tpch_gen.ml";
      symbol = "nations";
      reason = "constant TPC-H vocabulary, never written";
    };
    {
      rule = "R1";
      file = "lib/datagen/tpch_gen.ml";
      symbol = "segments";
      reason = "constant TPC-H vocabulary, never written";
    };
    {
      rule = "R1";
      file = "lib/datagen/tpch_gen.ml";
      symbol = "priorities";
      reason = "constant TPC-H vocabulary, never written";
    };
    {
      rule = "R1";
      file = "lib/datagen/tpch_gen.ml";
      symbol = "part_types";
      reason = "constant TPC-H vocabulary, never written";
    };
  ]
