(* Unified lint front-end: the workload query-graph lint (binds every
   JOB and TPC-H query against a small generated instance and runs
   Verify.check_graph) and the domlint source pass, under one report and
   one exit policy — any violation in either half is a non-zero exit.
   `dune build @lint` (also in the runtest path) runs both; `dune build
   @verify` keeps the historical workload-only gate. *)

module Violation = Verify.Violation

let lint_workload ~label ~db queries =
  let results =
    List.map
      (fun (name, sql) ->
        let bound = Sqlfront.Binder.bind_sql db ~name sql in
        Verify.check_graph bound.Sqlfront.Binder.graph)
      queries
  in
  (label, List.length queries, Violation.merge_all results)

let workload () =
  let imdb = Datagen.Imdb_gen.generate ~seed:42 ~scale:0.0004 () in
  let job =
    List.map
      (fun q -> (q.Workload.Job.name, q.Workload.Job.sql))
      Workload.Job.all
  in
  let tpch_db = Datagen.Tpch_gen.generate ~scale:0.05 () in
  let tpch =
    List.map
      (fun q -> (q.Workload.Tpch_queries.name, q.Workload.Tpch_queries.sql))
      Workload.Tpch_queries.all
  in
  [
    lint_workload ~label:"JOB" ~db:imdb job;
    lint_workload ~label:"TPC-H" ~db:tpch_db tpch;
  ]

let print_workload parts =
  List.iter
    (fun (label, queries, (res : Violation.result)) ->
      List.iter
        (fun v -> Printf.eprintf "%s\n" (Violation.to_string v))
        res.Violation.violations;
      Printf.printf "%s: %d queries, %d lint checks, %d violations\n" label
        queries res.Violation.checks
        (List.length res.Violation.violations))
    parts

let workload_ok parts =
  List.for_all
    (fun (_, _, (res : Violation.result)) -> Violation.ok res)
    parts

(* The historical `dune build @verify` gate: workload graphs only. *)
let run_workload_only () =
  let parts = workload () in
  print_workload parts;
  if workload_ok parts then 0 else 1

(* The full gate behind `dune build @lint` and `jobench lint`: domlint
   over [root]'s lib/, bin/ and bench/ with the committed allowlist,
   plus the workload lint, optionally writing the machine-readable
   report for the CI artifact. *)
let run ?report ~root () =
  let dl = Domlint.scan_tree ~allow:Allowlist.entries ~root () in
  let parts = workload () in
  Format.printf "%a" Domlint.pp_report dl;
  print_workload parts;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Domlint.report_json ~workload:parts dl));
      Printf.printf "lint report written to %s\n" path)
    report;
  if Domlint.ok dl && workload_ok parts then 0 else 1
