(* CLI for the unified lint: `--workload-only` reproduces the historical
   @verify gate, the default runs workload + domlint. `jobench lint` is
   the same driver reached through the main binary. *)

let () =
  let root = ref "." in
  let report = ref "" in
  let workload_only = ref false in
  let specs =
    [
      ( "--workload-only",
        Arg.Set workload_only,
        " lint only the workload query graphs (the @verify gate)" );
      ( "--root",
        Arg.Set_string root,
        "DIR directory whose lib/, bin/ and bench/ domlint scans \
         (default .)" );
      ("--report", Arg.Set_string report, "FILE write a JSON lint report");
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "lint_main [--workload-only] [--root DIR] [--report FILE]";
  let code =
    if !workload_only then Lintkit.Driver.run_workload_only ()
    else
      Lintkit.Driver.run
        ?report:(if String.equal !report "" then None else Some !report)
        ~root:!root ()
  in
  exit code
