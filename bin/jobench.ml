(* jobench: command-line driver for the Join Order Benchmark
   reproduction.

   Subcommands:
     list                         the 113 benchmark queries
     show QUERY                   SQL and bound join graph
     plan QUERY [options]         optimize and explain
     run QUERY [options]          optimize, execute, report
     trace QUERY [--out FILE]     run with span recording, dump the trace
     experiment ID [--scale S]    regenerate one paper table/figure

   run, experiment and serve also take --trace FILE: record spans for
   the whole command and write one trace document at the end. *)

open Cmdliner

(* Option docs are derived from the component registry, so the help text
   can never drift from what actually resolves. *)
let registry_doc intro registry =
  Printf.sprintf "%s: %s." intro
    (String.concat ", "
       (List.map (fun n -> Printf.sprintf "'%s'" n) (Core.Registry.names registry)))

let scale_arg =
  let doc =
    "Database scale factor, relative to the paper's full 3.6 GB IMDB \
     snapshot (1.0 ~ 16.5M rows). The default 0.02 is the ~330k-row \
     reference database."
  in
  Arg.(value & opt float Datagen.Imdb_gen.reference_scale
       & info [ "scale" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Data generator seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let estimator_arg =
  let doc = registry_doc "Cardinality estimator" Core.Registry.estimators in
  Arg.(value & opt string "PostgreSQL" & info [ "estimator"; "e" ] ~docv:"SYS" ~doc)

let model_arg =
  let doc = registry_doc "Cost model" Core.Registry.cost_models in
  Arg.(value & opt string "PostgreSQL" & info [ "cost-model"; "m" ] ~docv:"M" ~doc)

let indexes_arg =
  let doc = registry_doc "Physical design" Core.Registry.index_configs in
  Arg.(value & opt string "pk" & info [ "indexes"; "i" ] ~docv:"CFG" ~doc)

let enumerator_arg =
  let doc = registry_doc "Plan enumeration" Core.Registry.enumerators in
  Arg.(value & opt string "dp" & info [ "enumerator" ] ~docv:"E" ~doc)

let engine_arg =
  let doc = registry_doc "Execution engine configuration" Core.Registry.engines in
  Arg.(value & opt string "robust" & info [ "engine" ] ~docv:"ENG" ~doc)

let query_arg =
  let doc = "Benchmark query name (e.g. 13d) or a file containing SQL." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let parse_indexes s = Core.Registry.(find_exn index_configs) s

let parse_enumerator s = Core.Registry.(find_exn enumerators) s

let parse_engine s = Core.Registry.(find_exn engines) s

let exec_jobs_arg =
  let doc =
    "Worker domains for morsel-driven intra-query parallelism (1 = \
     serial executor; 0 = the number of cores). Results are \
     byte-identical at any value — only wall clock changes."
  in
  Arg.(value & opt int 1 & info [ "exec-jobs" ] ~docv:"N" ~doc)

let resolve_exec_jobs n =
  if n < 0 then invalid_arg "jobench: --exec-jobs must be >= 0"
  else if n = 0 then Domain.recommended_domain_count ()
  else n

let data_arg =
  let doc =
    "Load the database from a directory of CSV files (as written by \
     'jobench generate') instead of generating it."
  in
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR" ~doc)

let session ?data ~seed ~scale ~indexes () =
  let s =
    match data with
    | Some dir -> Core.Session.of_database (Datagen.Imdb_schema.load ~dir)
    | None -> Core.Session.create ~seed ~scale ()
  in
  Core.Session.set_physical_design s (parse_indexes indexes);
  s

let load_query s name =
  match Workload.Job.find name with
  | q -> Core.Session.sql s ~name (q.Workload.Job.sql)
  | exception Not_found ->
      if Sys.file_exists name then
        let ic = open_in name in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Core.Session.sql s ~name:(Filename.basename name) text
      else failwith (Printf.sprintf "no such benchmark query or file: %s" name)

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (family, queries) ->
        let names =
          String.concat " "
            (List.map (fun q -> q.Workload.Job.name) queries)
        in
        Printf.printf "family %2d: %s\n" family names)
      Workload.Job.families;
    Printf.printf "%d queries, %d families\n" Workload.Job.query_count
      Workload.Job.family_count
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 113 benchmark queries")
    Term.(const run $ const ())

(* --- show ------------------------------------------------------------ *)

let show_cmd =
  let run scale seed data name =
    let s = session ?data ~seed ~scale ~indexes:"pk" () in
    let q = load_query s name in
    Printf.printf "%s\n\n" q.Core.Session.sql;
    Format.printf "%a" Query.Query_graph.pp q.Core.Session.graph
  in
  Cmd.v (Cmd.info "show" ~doc:"Show a query's SQL and join graph")
    Term.(const run $ scale_arg $ seed_arg $ data_arg $ query_arg)

(* --- plan ------------------------------------------------------------- *)

let dot_arg =
  let doc = "Emit the plan as GraphViz dot instead of a tree." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let plan_cmd =
  let run scale seed data indexes estimator model enumerator dot name =
    let s = session ?data ~seed ~scale ~indexes () in
    let q = load_query s name in
    ignore (Core.Session.true_cardinalities s q);
    let choice =
      Core.Session.optimize s ~estimator ~cost_model:model
        ~enumerator:(parse_enumerator enumerator) q
    in
    if dot then print_string (Core.Session.plan_dot s q choice)
    else print_string (Core.Session.explain s q choice)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Optimize a query and print the chosen plan")
    Term.(
      const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ estimator_arg
      $ model_arg $ enumerator_arg $ dot_arg $ query_arg)

(* Whole-command tracing (--trace FILE on run/experiment/serve): enable
   span recording around the command body, then flush every buffer into
   one trace document. The wall clock here brackets the entire command
   — database generation included — so coverage is only meaningful for
   the single-query [trace] subcommand, which starts its clock after
   the session is built. *)
let trace_arg =
  let doc =
    "Record trace spans for the whole command and write the trace \
     document (spans, per-phase totals, metrics registry) as JSON to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some file ->
      Obs.Trace.set_enabled true;
      Obs.Trace.clear ();
      let t0 = Obs.Trace.now_ns () in
      Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false) f;
      let wall_ms = float_of_int (Obs.Trace.now_ns () - t0) /. 1e6 in
      let spans, dropped = Obs.Trace.flush () in
      let oc = open_out file in
      output_string oc (Obs.Export.trace_json ~wall_ms ~spans ~dropped ());
      close_out oc;
      Printf.printf "wrote trace to %s (%d spans)\n%!" file
        (List.length spans)

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let run scale seed data indexes estimator model enumerator engine exec_jobs
      trace name =
    let exec_jobs = resolve_exec_jobs exec_jobs in
    if exec_jobs > 1 then Util.Domain_pool.tune_gc ();
    let pool =
      if exec_jobs > 1 then Some (Util.Domain_pool.create ~domains:exec_jobs)
      else None
    in
    Fun.protect
      ~finally:(fun () ->
        match pool with Some p -> Util.Domain_pool.shutdown p | None -> ())
      (fun () ->
        with_trace trace (fun () ->
            let s = session ?data ~seed ~scale ~indexes () in
            let q = load_query s name in
            let choice =
              Core.Session.optimize s ~estimator ~cost_model:model
                ~enumerator:(parse_enumerator enumerator) q
            in
            let engine = parse_engine engine in
            print_string (Core.Session.explain_analyze s ~engine ?pool q choice);
            let result = Core.Session.run s ~engine ?pool q choice in
            List.iter
              (fun v ->
                Printf.printf "  MIN = %s\n" (Storage.Value.to_string v))
              result.Exec.Executor.mins))
  in
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a query (EXPLAIN ANALYZE)")
    Term.(
      const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ estimator_arg
      $ model_arg $ enumerator_arg $ engine_arg $ exec_jobs_arg $ trace_arg
      $ query_arg)

(* --- trace ------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    let doc = "Write the trace JSON to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run scale seed data indexes estimator model enumerator engine exec_jobs
      out name =
    let exec_jobs = resolve_exec_jobs exec_jobs in
    if exec_jobs > 1 then Util.Domain_pool.tune_gc ();
    let pool =
      if exec_jobs > 1 then Some (Util.Domain_pool.create ~domains:exec_jobs)
      else None
    in
    Fun.protect
      ~finally:(fun () ->
        match pool with Some p -> Util.Domain_pool.shutdown p | None -> ())
      (fun () ->
        let s = session ?data ~seed ~scale ~indexes () in
        (* The clock starts after the session (database + ANALYZE) is
           built, so the traced window is exactly the query pipeline:
           parse -> bind -> plan -> verify -> exec. Coverage — the
           top-level phase sum over this wall time — is the acceptance
           figure for span placement. *)
        Obs.Trace.set_enabled true;
        Obs.Trace.clear ();
        let t0 = Obs.Trace.now_ns () in
        let q = load_query s name in
        let choice =
          Core.Session.optimize s ~estimator ~cost_model:model
            ~enumerator:(parse_enumerator enumerator) q
        in
        let result =
          Core.Session.run s ~engine:(parse_engine engine) ?pool q choice
        in
        let wall_ms = float_of_int (Obs.Trace.now_ns () - t0) /. 1e6 in
        Obs.Trace.set_enabled false;
        let spans, dropped = Obs.Trace.flush () in
        let doc =
          Obs.Export.trace_json ~query:q.Core.Session.name ~wall_ms ~spans
            ~dropped ()
        in
        (match out with
        | Some file ->
            let oc = open_out file in
            output_string oc doc;
            close_out oc;
            Printf.printf "wrote %s\n" file
        | None -> print_string doc);
        let cov = Obs.Export.coverage ~wall_ms spans in
        Printf.eprintf
          "%s: %d rows, wall %.2f ms, %d spans, phase coverage %.1f%%\n%!"
          q.Core.Session.name result.Exec.Executor.rows wall_ms
          (List.length spans) (100.0 *. cov);
        if cov < 0.95 then
          Printf.eprintf
            "warning: top-level phases cover < 95%% of wall time\n%!")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Optimize and execute a query with span recording on and dump the \
          trace as JSON")
    Term.(
      const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ estimator_arg
      $ model_arg $ enumerator_arg $ engine_arg $ exec_jobs_arg $ out_arg
      $ query_arg)

(* --- generate ------------------------------------------------------------ *)

let generate_cmd =
  let dir_arg =
    let doc = "Output directory for the CSV files." in
    Arg.(required & opt (some string) None & info [ "dir"; "o" ] ~docv:"DIR" ~doc)
  in
  let run scale seed dir =
    let db = Datagen.Imdb_gen.generate ~seed ~scale () in
    Storage.Csv.export_database db ~dir;
    Printf.printf "exported %d tables (%d rows) to %s\n"
      (List.length (Storage.Database.table_names db))
      (Storage.Database.total_rows db) dir
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate the synthetic IMDB database and export it as CSV files")
    Term.(const run $ scale_arg $ seed_arg $ dir_arg)

(* --- stats ---------------------------------------------------------------- *)

let stats_cmd =
  let table_arg =
    let doc = "Table to show ANALYZE statistics for." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc)
  in
  let run scale seed data table_name =
    let s = session ?data ~seed ~scale ~indexes:"pk" () in
    let db = Core.Session.db s in
    let table = Storage.Database.find_table db table_name in
    let analyze = Dbstats.Analyze.create db in
    let stats = Dbstats.Analyze.table analyze table_name in
    Printf.printf "table %s: %d rows, %d columns\n\n" table_name
      stats.Dbstats.Analyze.row_count
      (Storage.Table.column_count table);
    Array.iteri
      (fun i (cs : Dbstats.Column_stats.t) ->
        let column = Storage.Table.column table i in
        Printf.printf "%-18s %-5s nulls %5s  distinct ~%.0f (exact %.0f)\n"
          (Storage.Column.name column)
          (Storage.Value.ty_to_string (Storage.Column.ty column))
          (Util.Render.percent_cell cs.Dbstats.Column_stats.null_fraction)
          cs.Dbstats.Column_stats.distinct_sampled
          cs.Dbstats.Column_stats.distinct_exact;
        Array.iteri
          (fun rank (code, freq) ->
            if rank < 5 then
              let decoded =
                match Storage.Column.dict column with
                | Some dict when code >= 0 ->
                    Printf.sprintf "'%s'" (Storage.Dict.get dict code)
                | _ -> string_of_int code
              in
              Printf.printf "    mcv%d %-28s %s\n" (rank + 1) decoded
                (Util.Render.percent_cell freq))
          cs.Dbstats.Column_stats.mcv)
      stats.Dbstats.Analyze.columns
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show ANALYZE statistics for a table")
    Term.(const run $ scale_arg $ seed_arg $ data_arg $ table_arg)

(* --- estimate ------------------------------------------------------------- *)

let estimate_cmd =
  let run scale seed data indexes name =
    let s = session ?data ~seed ~scale ~indexes () in
    let q = load_query s name in
    let truth = Core.Session.true_cardinalities s q in
    let full = Query.Query_graph.full_set q.Core.Session.graph in
    let exact = Cardest.True_card.card truth full in
    Printf.printf "%s: true cardinality %.0f\n\n" q.Core.Session.name exact;
    Printf.printf "%-28s %14s %12s\n" "system" "estimate" "q-error";
    (* The system list is the estimator registry itself, so a newly
       registered estimator shows up here without touching the CLI. *)
    List.iter
      (fun system ->
        let est = Core.Session.estimator s q system in
        let estimate = est.Cardest.Estimator.subset full in
        Printf.printf "%-28s %14.0f %12s\n" system estimate
          (Util.Render.float_cell
             (Util.Stat.q_error
                ~estimate:(Float.max 1.0 estimate)
                ~truth:(Float.max 1.0 exact))))
      (Core.Registry.names Core.Registry.estimators)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Compare every system's full-query cardinality estimate to the truth")
    Term.(const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ query_arg)

(* --- verify --------------------------------------------------------------- *)

let verify_cmd =
  let queries_arg =
    let doc = "Comma-separated query names to verify, or 'all'." in
    Arg.(value & opt string "all" & info [ "queries"; "q" ] ~docv:"NAMES" ~doc)
  in
  let enumerators_arg =
    let doc =
      "Comma-separated enumerators to verify (dp, goo, quickpick:N, simpli)."
    in
    Arg.(
      value
      & opt string "dp,goo,quickpick:10,simpli"
      & info [ "enumerators" ] ~docv:"ES" ~doc)
  in
  let estimators_arg =
    let doc = "Comma-separated estimator systems to verify, or 'all'." in
    Arg.(value & opt string "all" & info [ "estimators" ] ~docv:"SYSS" ~doc)
  in
  let models_arg =
    let doc = "Comma-separated cost models to verify, or 'all'." in
    Arg.(value & opt string "all" & info [ "cost-models" ] ~docv:"MS" ~doc)
  in
  let run scale seed data indexes queries enumerators estimators models =
    let split s = String.split_on_char ',' s |> List.map String.trim in
    let s = session ?data ~seed ~scale ~indexes () in
    let names =
      if String.equal queries "all" then
        List.map (fun q -> q.Workload.Job.name) Workload.Job.all
      else split queries
    in
    let enumerators =
      List.map
        (fun e -> Core.Registry.verify_enumerator (parse_enumerator e))
        (split enumerators)
    in
    let estimator_names =
      if String.equal estimators "all" then Cardest.Systems.names
      else split estimators
    in
    let models =
      if String.equal models "all" then
        List.map (fun e -> e.Core.Registry.value)
          (Core.Registry.entries Core.Registry.cost_models)
      else
        List.map Core.Registry.(find_exn cost_models) (split models)
    in
    let total = ref Verify.Violation.empty in
    List.iter
      (fun name ->
        let q = load_query s name in
        let estimators =
          List.map (Core.Session.estimator s q) estimator_names
        in
        let report =
          Verify.check_all ~query:name ~enumerators
            ~graph:q.Core.Session.graph ~db:(Core.Session.db s) ~estimators
            ~models ()
        in
        total := Verify.Violation.merge !total report;
        if Verify.Violation.ok report then
          Printf.printf "%-4s ok (%d checks)\n%!" name
            report.Verify.Violation.checks
        else begin
          Printf.printf "%-4s FAILED (%d checks, %d violations)\n%!" name
            report.Verify.Violation.checks
            (List.length report.Verify.Violation.violations);
          List.iter
            (fun v -> Printf.printf "     %s\n" (Verify.Violation.to_string v))
            report.Verify.Violation.violations
        end)
      names;
    let violations = List.length !total.Verify.Violation.violations in
    Printf.printf
      "verify: %d queries, %d enumerators x %d estimators x %d cost models, \
       %d checks, %d violations\n"
      (List.length names) (List.length enumerators)
      (List.length estimator_names) (List.length models)
      !total.Verify.Violation.checks violations;
    if violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically sanitize plans, estimates and costs over the workload \
          without executing queries")
    Term.(
      const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ queries_arg
      $ enumerators_arg $ estimators_arg $ models_arg)

(* --- experiment ---------------------------------------------------------- *)

let experiment_cmd =
  let id_arg =
    (* The ID list is the experiment catalog itself. *)
    let doc =
      Printf.sprintf "Experiment id (%s) or 'all'."
        (String.concat ", " Experiments.Catalog.ids)
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let verify_flag =
    let doc =
      "Run the optimizer sanitizer (estimate and cost passes) on every \
       planning call while regenerating the experiment."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let stats_flag =
    let doc =
      "After rendering, print the pipeline's plan-cache and estimator-cache \
       counters (hits, misses, plans enumerated, estimator probes)."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for per-query fan-out (1 = serial; 0 = the number of \
       cores). Experiment output is byte-identical at any job count."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let gc_stats_flag =
    let doc =
      "After rendering, print this domain's GC counters (allocated words, \
       minor/major collections) — the figure of merit for the \
       allocation-free executor and true-cardinality kernels — plus the \
       hash-join load-factor and morsel-scheduler telemetry."
    in
    Arg.(value & flag & info [ "gc-stats" ] ~doc)
  in
  let reopt_threshold_arg =
    let doc =
      "Q-error trip point for the 'reopt' experiment's main table: a \
       checkpoint whose observed cardinality is off from its estimate by \
       more than this factor abandons the attempt and re-plans. Must be >= \
       1.0."
    in
    Arg.(
      value & opt float 2.0 & info [ "reopt-threshold" ] ~docv:"FACTOR" ~doc)
  in
  let run scale seed verify stats gc_stats reopt_threshold jobs exec_jobs
      trace id =
    (* Workers tune their GC on spawn; the caller participates in every
       parallel map, so it needs the same treatment. *)
    Util.Domain_pool.tune_gc ();
    Atomic.set Experiments.Harness.debug_verify verify;
    if reopt_threshold < 1.0 then
      invalid_arg "jobench experiment: --reopt-threshold must be >= 1.0";
    Atomic.set Experiments.Exp_reopt.threshold reopt_threshold;
    let jobs =
      if jobs < 0 then invalid_arg "jobench experiment: -j must be >= 0"
      else if jobs = 0 then Domain.recommended_domain_count ()
      else jobs
    in
    (* The two parallelism levels compose but should not oversubscribe:
       with N inter-query workers each racing for the shared morsel
       pool, cap the morsel pool so jobs * exec_jobs stays within the
       core budget. Results are byte-identical at any cap. *)
    let exec_jobs =
      let requested = resolve_exec_jobs exec_jobs in
      if jobs <= 1 then requested
      else
        max 1 (min requested (Domain.recommended_domain_count () / jobs))
    in
    let h = Experiments.Harness.create ~seed ~scale ~jobs ~exec_jobs () in
    Fun.protect
      ~finally:(fun () -> Experiments.Harness.shutdown h)
      (fun () ->
        with_trace trace @@ fun () ->
        let selected =
          if String.equal id "all" then Experiments.Catalog.all
          else [ Experiments.Catalog.find_exn id ]
        in
        List.iter
          (fun (e : Experiments.Catalog.entry) ->
            Printf.printf "=== %s ===\n%s\n%!" e.Experiments.Catalog.id
              (e.Experiments.Catalog.render h))
          selected;
        if stats then
          Printf.printf "--- %s\n%!" (Experiments.Harness.stats_summary h);
        if gc_stats then begin
          let g = Gc.quick_stat () in
          Printf.printf
            "--- gc: %.1f MB minor + %.1f MB major allocated, %d minor \
             collections, %d major collections, %d compactions\n%!"
            (g.Gc.minor_words *. 8.0 /. 1048576.0)
            ((g.Gc.major_words -. g.Gc.promoted_words) *. 8.0 /. 1048576.0)
            g.Gc.minor_collections g.Gc.major_collections g.Gc.compactions;
          let ls = Exec.Join_table.load_stats () in
          Printf.printf
            "--- join tables: %d sealed, %d entries / %d buckets, mean \
             final load %.3f, max %.3f\n%!"
            ls.Exec.Join_table.ls_tables ls.Exec.Join_table.ls_entries
            ls.Exec.Join_table.ls_buckets ls.Exec.Join_table.ls_mean_load
            ls.Exec.Join_table.ls_max_load;
          let ms = Exec.Morsel.stats () in
          Printf.printf
            "--- morsels: %d parallel phases, %d dispatched, %d stolen, \
             skew %.2f\n%!"
            ms.Exec.Morsel.st_phases ms.Exec.Morsel.st_dispatched
            ms.Exec.Morsel.st_stolen ms.Exec.Morsel.st_skew
        end)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(
      const run $ scale_arg $ seed_arg $ verify_flag $ stats_flag
      $ gc_stats_flag $ reopt_threshold_arg $ jobs_arg $ exec_jobs_arg
      $ trace_arg $ id_arg)

(* --- serve ---------------------------------------------------------------- *)

let serve_cmd =
  let clients_arg =
    let doc =
      "Comma-separated simulated client-session counts; one benchmark row \
       per value."
    in
    Arg.(value & opt string "1,4,16" & info [ "clients" ] ~docv:"NS" ~doc)
  in
  let duration_arg =
    let doc = "Total queries per row, split across the client sessions." in
    Arg.(value & opt int 1000 & info [ "duration-queries" ] ~docv:"N" ~doc)
  in
  let theta_arg =
    let doc =
      "Zipf skew of query popularity over the 113-statement catalog (0 = \
       uniform)."
    in
    Arg.(value & opt float 1.1 & info [ "zipf-theta" ] ~docv:"T" ~doc)
  in
  let think_arg =
    let doc =
      "Mean client think time between requests, in wall-clock milliseconds \
       (0 disables; applied identically in every arm)."
    in
    Arg.(value & opt float 0.0 & info [ "think-ms" ] ~docv:"MS" ~doc)
  in
  let cache_mb_arg =
    let doc = "Join-build recycling cache byte budget, in MiB." in
    Arg.(value & opt int 64 & info [ "cache-mb" ] ~docv:"MB" ~doc)
  in
  let inflight_arg =
    let doc =
      "Admission limit on concurrently executing queries (0 = the client \
       count)."
    in
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Per-session work budget in simulated work units; a session retires \
       once its cumulative work crosses it (0 = unlimited). Deterministic: \
       simulated work is scheduling-independent."
    in
    Arg.(value & opt int 0 & info [ "session-budget" ] ~docv:"W" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains serving sessions concurrently (1 = serial; 0 = the \
       number of cores). Replies are byte-identical at any value."
    in
    Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc = "Write the benchmark rows to $(docv)." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let stats_flag =
    let doc = "After serving, print the pipeline's cache counters." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let run scale seed data indexes estimator model engine_name clients duration
      theta think cache_mb inflight budget jobs exec_jobs json stats trace =
    Util.Domain_pool.tune_gc ();
    let jobs =
      if jobs < 0 then invalid_arg "jobench serve: --jobs must be >= 0"
      else if jobs = 0 then Domain.recommended_domain_count ()
      else jobs
    in
    (* Same oversubscription cap as `experiment`: inter-query workers
       times morsel workers stays within the core budget. *)
    let exec_jobs =
      let requested = resolve_exec_jobs exec_jobs in
      if jobs <= 1 then requested
      else max 1 (min requested (Domain.recommended_domain_count () / jobs))
    in
    if duration < 1 then invalid_arg "jobench serve: --duration-queries must be >= 1";
    if cache_mb < 1 then invalid_arg "jobench serve: --cache-mb must be >= 1";
    let clients_list =
      String.split_on_char ',' clients |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match int_of_string_opt s with
             | Some n when n >= 1 -> n
             | _ ->
                 invalid_arg
                   (Printf.sprintf "jobench serve: bad client count %S" s))
    in
    if clients_list = [] then invalid_arg "jobench serve: empty --clients";
    let engine = parse_engine engine_name in
    let serve_pool =
      if jobs > 1 then Some (Util.Domain_pool.create ~domains:jobs) else None
    in
    let exec_pool =
      if exec_jobs > 1 then Some (Util.Domain_pool.create ~domains:exec_jobs)
      else None
    in
    let shutdown = function
      | Some p -> Util.Domain_pool.shutdown p
      | None -> ()
    in
    Fun.protect
      ~finally:(fun () ->
        shutdown serve_pool;
        shutdown exec_pool)
      (fun () ->
        with_trace trace @@ fun () ->
        let s = session ?data ~seed ~scale ~indexes () in
        let statements =
          Array.of_list
            (List.map
               (fun q -> (q.Workload.Job.name, q.Workload.Job.sql))
               Workload.Job.all)
        in
        (* Bind and plan the whole catalog up front (through the
           pipeline's bind and plan caches), so the timed arms measure
           serving, not planning. *)
        let catalog =
          Serve.Engine.prepare s ~estimator ~cost_model:model statements
        in
        let rows =
          List.map
            (fun c ->
              let traffic =
                Serve.Traffic.generate ~sessions:c ~total:duration
                  ~catalog:(Array.length catalog) ~theta ~think_ms:think ~seed
              in
              let limit = if inflight = 0 then c else inflight in
              (* The serial uncached reference is the identity oracle
                 every timed arm must reproduce byte-for-byte. It also
                 doubles as the process warm-up (lazy index builds,
                 first-touch decompression, heap growth), so the timed
                 arms start from the same state. *)
              let reference =
                Serve.Engine.run s catalog traffic
                  {
                    Serve.Engine.engine;
                    cache = None;
                    exec_pool = None;
                    serve_pool = None;
                    max_inflight = 1;
                    session_budget = budget;
                  }
              in
              let concurrent cache =
                {
                  Serve.Engine.engine;
                  cache;
                  exec_pool;
                  serve_pool;
                  max_inflight = limit;
                  session_budget = budget;
                }
              in
              (* Timing discipline matches the storage/morsel sweeps —
                 full major collection before every pass, best-of-three
                 of a deterministic engine — with the off/on passes
                 interleaved (off, on, off, on, ...) so slow drift in
                 the GC climate lands on both arms alike. The repeat
                 equality is a free determinism check, folded into the
                 identity verdict. The cache-on arm shares one cache
                 across its passes: after the first, it serves with the
                 cache populated, so best-of-three measures steady-state
                 recycling. *)
              let pass cfg =
                Gc.full_major ();
                Serve.Engine.run s catalog traffic cfg
              in
              let off_cfg = concurrent None in
              let jc =
                Exec.Join_cache.create
                  ~budget_bytes:(cache_mb * 1024 * 1024) ()
              in
              let on_cfg = concurrent (Some jc) in
              let passes = 3 in
              let offs = Array.make passes None
              and ons = Array.make passes None in
              for i = 0 to passes - 1 do
                offs.(i) <- Some (pass off_cfg);
                ons.(i) <- Some (pass on_cfg)
              done;
              let get a i = Option.get a.(i) in
              let best a =
                let r = ref (get a 0) in
                for i = 1 to passes - 1 do
                  let c = get a i in
                  if c.Serve.Engine.wall_s < !r.Serve.Engine.wall_s then
                    r := c
                done;
                !r
              in
              let stable a =
                let ok = ref true in
                for i = 1 to passes - 1 do
                  ok :=
                    !ok
                    && Serve.Engine.replies_equal
                          (get a 0).Serve.Engine.replies
                          (get a i).Serve.Engine.replies
                done;
                !ok
              in
              let off = best offs and on = best ons in
              let off_stable = stable offs and on_stable = stable ons in
              let identity =
                off_stable && on_stable
                && Serve.Engine.replies_equal reference.Serve.Engine.replies
                     off.Serve.Engine.replies
                && Serve.Engine.replies_equal reference.Serve.Engine.replies
                     on.Serve.Engine.replies
              in
              if not identity then
                Printf.eprintf
                  "serve: replies diverged from the serial uncached \
                   reference at %d clients\n\
                   %!"
                  c;
              let cs = Exec.Join_cache.stats jc in
              let hit_rate = Exec.Join_cache.hit_rate cs in
              let row =
                {
                  Serve.Report.clients = c;
                  queries = on.Serve.Engine.completed;
                  on = Serve.Report.arm_of on;
                  off = Serve.Report.arm_of off;
                  cache = cs;
                  hit_rate;
                  retired_sessions = on.Serve.Engine.retired_sessions;
                  admission_peak = on.Serve.Engine.admission.Serve.Admission.peak;
                  identity;
                }
              in
              Printf.printf
                "clients %3d: on %8.1f q/s (p50 %6.2f ms, p95 %6.2f, p99 \
                 %6.2f) | off %8.1f q/s | speedup %5.2fx | hit rate %5.1f%% \
                 (%d hits, %d misses, %d evictions) | %s\n\
                 %!"
                c row.Serve.Report.on.Serve.Report.a_qps
                row.Serve.Report.on.Serve.Report.a_p50_ms
                row.Serve.Report.on.Serve.Report.a_p95_ms
                row.Serve.Report.on.Serve.Report.a_p99_ms
                row.Serve.Report.off.Serve.Report.a_qps
                (if row.Serve.Report.off.Serve.Report.a_qps <= 0.0 then 0.0
                 else
                   row.Serve.Report.on.Serve.Report.a_qps
                   /. row.Serve.Report.off.Serve.Report.a_qps)
                (100.0 *. hit_rate) cs.Exec.Join_cache.hits
                cs.Exec.Join_cache.misses cs.Exec.Join_cache.evictions
                (if identity then "identity ok" else "IDENTITY MISMATCH");
              row)
            clients_list
        in
        let out = open_out json in
        output_string out
          (Serve.Report.to_json ~scale ~seed ~theta ~cache_mb ~jobs ~exec_jobs
             ~cores:(Domain.recommended_domain_count ())
             rows);
        close_out out;
        Printf.printf "wrote %s\n%!" json;
        if stats then
          Printf.printf "--- %s\n%!"
            (Core.Pipeline.stats_summary (Core.Session.pipeline s));
        if List.exists (fun r -> not r.Serve.Report.identity) rows then exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve Zipfian query traffic from simulated concurrent clients and \
          benchmark throughput with cross-query join-build recycling")
    Term.(
      const run $ scale_arg $ seed_arg $ data_arg $ indexes_arg $ estimator_arg
      $ model_arg $ engine_arg $ clients_arg $ duration_arg $ theta_arg
      $ think_arg $ cache_mb_arg $ inflight_arg $ budget_arg $ jobs_arg
      $ exec_jobs_arg $ json_arg $ stats_flag $ trace_arg)

(* --- lint ----------------------------------------------------------------- *)

let lint_cmd =
  let root_arg =
    let doc =
      "Directory whose lib/, bin/ and bench/ the source pass scans."
    in
    Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)
  in
  let report_arg =
    let doc = "Write a machine-readable JSON lint report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let workload_only_arg =
    let doc = "Lint only the workload query graphs (the @verify gate)." in
    Arg.(value & flag & info [ "workload-only" ] ~doc)
  in
  let run root report workload_only =
    let code =
      if workload_only then Lintkit.Driver.run_workload_only ()
      else Lintkit.Driver.run ?report ~root ()
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the domlint source pass and the workload query-graph lint \
          under one report")
    Term.(const run $ root_arg $ report_arg $ workload_only_arg)

let () =
  let doc = "Join Order Benchmark reproduction toolkit" in
  let info = Cmd.info "jobench" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; plan_cmd; run_cmd; trace_cmd; generate_cmd;
            stats_cmd; estimate_cmd; verify_cmd; experiment_cmd; serve_cmd;
            lint_cmd ]))
