type index_config = No_indexes | Pk_only | Pk_fk

let index_config_to_string = function
  | No_indexes -> "no indexes"
  | Pk_only -> "PK indexes"
  | Pk_fk -> "PK + FK indexes"

type t = {
  tables : (string, Table.t) Hashtbl.t;
  (* Read-mostly snapshot: lookups read the current table without any
     lock (the executor and the cost models probe indexes from several
     domains, and after warm-up every probe is a hit). A miss installs a
     {!Util.Once} cell under [index_mutex] by publishing a fresh copy of
     the table; the build itself runs outside the mutex, guarded only by
     the cell, so two domains demanding different indexes never
     serialize on each other's builds. *)
  index_cache : (string * int, Index.t Util.Once.t) Hashtbl.t Atomic.t;
  index_mutex : Mutex.t;
  mutable config : index_config;
}

let create () =
  {
    tables = Hashtbl.create 32;
    index_cache = Atomic.make (Hashtbl.create 64);
    index_mutex = Mutex.create ();
    config = Pk_only;
  }

let add_table t table =
  let table_name = Table.name table in
  if Hashtbl.mem t.tables table_name then
    invalid_arg (Printf.sprintf "Database.add_table: duplicate table %s" table_name);
  Hashtbl.add t.tables table_name table

let find_table t table_name =
  match Hashtbl.find_opt t.tables table_name with
  | Some table -> table
  | None -> invalid_arg (Printf.sprintf "Database.find_table: unknown table %s" table_name)

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare

let set_index_config t config = t.config <- config

let index_config t = t.config

let cached_index t ~table ~col =
  let key = (table, col) in
  let cell =
    match Hashtbl.find_opt (Atomic.get t.index_cache) key with
    | Some cell -> cell
    | None ->
        Mutex.lock t.index_mutex;
        let current = Atomic.get t.index_cache in
        let cell =
          (* Re-check: another domain may have published the cell while
             we waited for the mutex. *)
          match Hashtbl.find_opt current key with
          | Some cell -> cell
          | None ->
              let cell =
                Util.Once.make (fun () -> Index.build (find_table t table) ~col)
              in
              let next = Hashtbl.copy current in
              Hashtbl.add next key cell;
              Atomic.set t.index_cache next;
              cell
        in
        Mutex.unlock t.index_mutex;
        cell
  in
  Util.Once.force cell

let configured_columns t table =
  let tbl = find_table t table in
  match t.config with
  | No_indexes -> []
  | Pk_only -> Option.to_list (Table.pk tbl)
  | Pk_fk -> Option.to_list (Table.pk tbl) @ Table.fks tbl

let index t ~table ~col =
  if List.mem col (configured_columns t table) then Some (cached_index t ~table ~col)
  else None

let force_index t ~table ~col = cached_index t ~table ~col

let total_rows t =
  Hashtbl.fold (fun _ table acc -> acc + Table.row_count table) t.tables 0

let recode t enc =
  let out = create () in
  out.config <- t.config;
  List.iter
    (fun name ->
      let table = find_table t name in
      let cols = Array.map (fun c -> Column.recode c enc) (Table.columns table) in
      let colname i = Column.name (Table.column table i) in
      let pk = Option.map colname (Table.pk table) in
      let fks = List.map colname (Table.fks table) in
      add_table out (Table.create ~name ?pk ~fks cols))
    (table_names t);
  out
