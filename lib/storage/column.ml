type encoding = Flat | Bitpack | Frame | Rle

let all_encodings = [ Flat; Bitpack; Frame; Rle ]

let encoding_name = function
  | Flat -> "flat"
  | Bitpack -> "bitpack"
  | Frame -> "frame"
  | Rle -> "rle"

let encoding_of_name = function
  | "flat" -> Some Flat
  | "bitpack" -> Some Bitpack
  | "frame" -> Some Frame
  | "rle" -> Some Rle
  | _ -> None

(* Frame-of-reference block size; must match the executor's scan chunk so a
   chunk decode touches at most two blocks. [lsr 12]/[land 4095] below
   depend on this value. *)
let block = 4096

(* Widths above this cannot guarantee the read-modify-write packing trick
   (a 64-bit load at any bit offset spans the whole field: width + 7 <= 64). *)
let max_width = 57

type repr =
  | Flat_r of int array
  | Pack_r of { bytes : Bytes.t; width : int; base : int }
  | Frame_r of { bytes : Bytes.t; width : int; bases : int array }
  | Rle_r of { values : int array; ends : int array }
      (* ends.(i) = exclusive end row of run i; ends.(last) = length *)

type t = {
  name : string;
  ty : Value.ty;
  dict : Dict.t option;
  length : int;
  repr : repr;
  distinct : int;
  nulls : int;
  lo_hi : (int * int) option; (* min/max non-NULL code *)
}

(* ---------- bit packing ---------- *)

let packed_bytes n width = ((n * width + 7) / 8) + 8

let pack ~width ~f n =
  let b = Bytes.make (packed_bytes n width) '\000' in
  for i = 0 to n - 1 do
    let bit = i * width in
    let byte = bit lsr 3 and shift = bit land 7 in
    let cur = Bytes.get_int64_le b byte in
    Bytes.set_int64_le b byte
      (Int64.logor cur (Int64.shift_left (Int64.of_int (f i)) shift))
  done;
  b

let unpack bytes width mask i =
  let bit = i * width in
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical (Bytes.get_int64_le bytes (bit lsr 3))
          (bit land 7))
       mask)

let mask_of width = Int64.of_int ((1 lsl width) - 1)

(* Bits needed for stored values in [0, k], k >= 1. *)
let bits_needed k =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 k

(* [hi - lo + 1] would not fit in [max_width] bits (or overflows int). *)
let range_too_wide lo hi =
  let limit = (1 lsl max_width) - 2 in
  if lo >= 0 || hi <= 0 then hi - lo > limit
  else hi - lo < 0 || hi - lo > limit

(* ---------- construction ---------- *)

type stats = {
  s_nulls : int;
  s_distinct : int;
  s_lo_hi : (int * int) option;
  s_runs : int;
  s_bases : int array; (* per-block min non-NULL code (0 for all-NULL blocks) *)
  s_max_delta : int option; (* max per-block (max - min); None if too wide *)
}

let scan_stats codes =
  let n = Array.length codes in
  let nulls = ref 0 in
  let found = ref false in
  let lo = ref 0 and hi = ref 0 in
  let runs = ref (if n = 0 then 0 else 1) in
  let seen = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get codes i in
    if c = Value.null_code then incr nulls
    else begin
      Hashtbl.replace seen c ();
      if not !found then begin
        found := true;
        lo := c;
        hi := c
      end
      else begin
        if c < !lo then lo := c;
        if c > !hi then hi := c
      end
    end;
    if i > 0 && c <> Array.unsafe_get codes (i - 1) then incr runs
  done;
  let lo_hi = if !found then Some (!lo, !hi) else None in
  let too_wide = match lo_hi with Some (l, h) -> range_too_wide l h | None -> false in
  let nblocks = (n + block - 1) / block in
  let bases = Array.make (max nblocks 1) 0 in
  let max_delta = ref 0 in
  if not too_wide then
    for b = 0 to nblocks - 1 do
      let blo = ref 0 and bhi = ref 0 and bfound = ref false in
      let stop = min n ((b * block) + block) - 1 in
      for i = b * block to stop do
        let c = Array.unsafe_get codes i in
        if c <> Value.null_code then
          if not !bfound then begin
            bfound := true;
            blo := c;
            bhi := c
          end
          else begin
            if c < !blo then blo := c;
            if c > !bhi then bhi := c
          end
      done;
      if !bfound then begin
        bases.(b) <- !blo;
        if !bhi - !blo > !max_delta then max_delta := !bhi - !blo
      end
    done;
  {
    s_nulls = !nulls;
    s_distinct = Hashtbl.length seen;
    s_lo_hi = lo_hi;
    s_runs = !runs;
    s_bases = (if nblocks = 0 then [||] else Array.sub bases 0 nblocks);
    s_max_delta = (if too_wide then None else Some !max_delta);
  }

let build_pack codes ~base ~width =
  let n = Array.length codes in
  let f i =
    let c = Array.unsafe_get codes i in
    if c = Value.null_code then 0 else c - base + 1
  in
  Pack_r { bytes = pack ~width ~f n; width; base }

let build_frame codes ~bases ~width =
  let n = Array.length codes in
  let f i =
    let c = Array.unsafe_get codes i in
    if c = Value.null_code then 0 else c - bases.(i / block) + 1
  in
  Frame_r { bytes = pack ~width ~f n; width; bases }

let build_rle codes ~runs =
  let values = Array.make runs 0 and ends = Array.make runs 0 in
  let r = ref (-1) in
  Array.iteri
    (fun i c ->
      if !r < 0 || c <> values.(!r) then begin
        incr r;
        values.(!r) <- c
      end;
      ends.(!r) <- i + 1)
    codes;
  Rle_r { values; ends }

(* Width of stored values under global bit-packing: range + 1 for the
   in-band NULL zero. Returns None when the range cannot be packed. *)
let pack_width stats =
  match (stats.s_lo_hi, stats.s_max_delta) with
  | None, _ -> Some 1 (* all NULL: every stored value is 0 *)
  | Some _, None -> None
  | Some (lo, hi), Some _ -> Some (bits_needed (hi - lo + 1))

let frame_width stats =
  match stats.s_max_delta with
  | None -> None
  | Some d -> Some (bits_needed (d + 1))

(* Pick the smallest estimated payload. RLE additionally requires an
   average run length of >= 4 so random access (binary search over run
   ends) stays off genuinely unclustered columns. *)
(* The chooser minimizes bytes, but not blindly: bitpack's random
   access is within ~10% of a flat array read, while frame pays an
   extra per-block base lookup and RLE a binary search — so frame and
   RLE must beat the cheaper encoding by a real margin (25% for frame,
   4x for RLE) before the chooser trades access speed for bytes.
   Without the margin the chooser picks frame for sorted FK join
   columns that bitpack compresses almost as well, and every probe in
   a join-heavy query pays for a handful of saved kilobytes. *)
let choose n stats =
  if n = 0 then Flat
  else begin
    let best = ref Flat and best_bytes = ref (n * 8) in
    let consider ?(margin = 1.0) enc bytes =
      if float_of_int bytes *. margin < float_of_int !best_bytes then begin
        best := enc;
        best_bytes := bytes
      end
    in
    (match pack_width stats with
    | Some w when w <= max_width -> consider Bitpack (packed_bytes n w)
    | _ -> ());
    (match frame_width stats with
    | Some w when w <= max_width ->
        consider ~margin:(4.0 /. 3.0) Frame
          (packed_bytes n w + (8 * Array.length stats.s_bases))
    | _ -> ());
    if stats.s_runs * 4 <= n then consider ~margin:4.0 Rle (stats.s_runs * 16);
    !best
  end

let build_repr codes stats = function
  | Flat -> Flat_r codes
  | Bitpack -> (
      match pack_width stats with
      | Some w when w <= max_width ->
          let base = match stats.s_lo_hi with Some (lo, _) -> lo | None -> 0 in
          build_pack codes ~base ~width:w
      | _ -> Flat_r codes)
  | Frame -> (
      match frame_width stats with
      | Some w when w <= max_width ->
          build_frame codes ~bases:stats.s_bases ~width:w
      | _ -> Flat_r codes)
  | Rle ->
      if Array.length codes = 0 then Flat_r codes
      else build_rle codes ~runs:stats.s_runs

(* [codes] must be freshly allocated: Flat_r takes ownership. *)
let make ~name ~ty ~dict ?force codes =
  let n = Array.length codes in
  let stats = scan_stats codes in
  let enc = match force with Some e -> e | None -> choose n stats in
  {
    name;
    ty;
    dict;
    length = n;
    repr = build_repr codes stats enc;
    distinct = stats.s_distinct;
    nulls = stats.s_nulls;
    lo_hi = stats.s_lo_hi;
  }

let of_ints ~name values =
  let codes =
    Array.map (function Some v -> v | None -> Value.null_code) values
  in
  make ~name ~ty:Value.Int_ty ~dict:None codes

let of_strings ~name values =
  let dict = Dict.create () in
  let codes =
    Array.map
      (function Some s -> Dict.intern dict s | None -> Value.null_code)
      values
  in
  make ~name ~ty:Value.Str_ty ~dict:(Some dict) codes

let of_codes ~name ~ty ?dict codes =
  (match (ty, dict) with
  | Value.Str_ty, None ->
      invalid_arg
        (Printf.sprintf "Column.of_codes: string column %s needs a dictionary"
           name)
  | _ -> ());
  make ~name ~ty ~dict (Array.copy codes)

(* ---------- shape ---------- *)

let name t = t.name
let ty t = t.ty
let dict t = t.dict
let length t = t.length

let encoding t =
  match t.repr with
  | Flat_r _ -> Flat
  | Pack_r _ -> Bitpack
  | Frame_r _ -> Frame
  | Rle_r _ -> Rle

(* ---------- row access ---------- *)

(* First run covering [row]: smallest i with ends.(i) > row. *)
let rle_find ends row =
  let lo = ref 0 and hi = ref (Array.length ends - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get ends mid > row then hi := mid else lo := mid + 1
  done;
  !lo

let get_unchecked t row =
  match t.repr with
  | Flat_r a -> Array.unsafe_get a row
  | Pack_r { bytes; width; base } ->
      let s = unpack bytes width (mask_of width) row in
      if s = 0 then Value.null_code else base + s - 1
  | Frame_r { bytes; width; bases } ->
      let s = unpack bytes width (mask_of width) row in
      if s = 0 then Value.null_code
      else Array.unsafe_get bases (row / block) + s - 1
  | Rle_r { values; ends } -> Array.unsafe_get values (rle_find ends row)

let get t row =
  if row < 0 || row >= t.length then
    invalid_arg
      (Printf.sprintf "Column.get: row %d out of bounds on %s (%d rows)" row
         t.name t.length);
  get_unchecked t row

let reader t =
  match t.repr with
  | Flat_r a -> fun row -> Array.unsafe_get a row
  | Pack_r { bytes; width; base } ->
      let mask = mask_of width in
      fun row ->
        let s = unpack bytes width mask row in
        if s = 0 then Value.null_code else base + s - 1
  | Frame_r { bytes; width; bases } ->
      let mask = mask_of width in
      fun row ->
        let s = unpack bytes width mask row in
        if s = 0 then Value.null_code
        else Array.unsafe_get bases (row / block) + s - 1
  | Rle_r { values; ends } ->
      (* Executor hot loops walk rows mostly in order, so each reader
         closure caches its last run and tries it (then its successor)
         before falling back to the binary search: O(1) amortized on
         sequential scans, O(log runs) on genuinely random probes. The
         cache affects only speed, never the value returned. *)
      let last = ref 0 in
      let nruns = Array.length ends in
      fun row ->
        let r = !last in
        let lo = if r = 0 then 0 else Array.unsafe_get ends (r - 1) in
        if row >= lo then
          if row < Array.unsafe_get ends r then Array.unsafe_get values r
          else if
            r + 1 < nruns
            && row >= Array.unsafe_get ends r
            && row < Array.unsafe_get ends (r + 1)
          then begin
            last := r + 1;
            Array.unsafe_get values (r + 1)
          end
          else begin
            let r = rle_find ends row in
            last := r;
            Array.unsafe_get values r
          end
        else begin
          let r = rle_find ends row in
          last := r;
          Array.unsafe_get values r
        end

let flat_view t = match t.repr with Flat_r a -> Some a | _ -> None

let decode_into t ~row_start ~len buf =
  if row_start < 0 || len < 0 || row_start + len > t.length then
    invalid_arg
      (Printf.sprintf "Column.decode_into: [%d, %d) out of bounds on %s"
         row_start (row_start + len) t.name);
  if len > Array.length buf then
    invalid_arg "Column.decode_into: buffer too small";
  match t.repr with
  | Flat_r a -> Array.blit a row_start buf 0 len
  | Pack_r { bytes; width; base } ->
      let mask = mask_of width in
      for i = 0 to len - 1 do
        let s = unpack bytes width mask (row_start + i) in
        Array.unsafe_set buf i
          (if s = 0 then Value.null_code else base + s - 1)
      done
  | Frame_r { bytes; width; bases } ->
      let mask = mask_of width in
      for i = 0 to len - 1 do
        let row = row_start + i in
        let s = unpack bytes width mask row in
        Array.unsafe_set buf i
          (if s = 0 then Value.null_code
           else Array.unsafe_get bases (row / block) + s - 1)
      done
  | Rle_r { values; ends } ->
      if len > 0 then begin
        let r = ref (rle_find ends row_start) in
        for i = 0 to len - 1 do
          let row = row_start + i in
          if row >= Array.unsafe_get ends !r then incr r;
          Array.unsafe_set buf i (Array.unsafe_get values !r)
        done
      end

let iter_codes t f =
  match t.repr with
  | Flat_r a -> Array.iter f a
  | Pack_r _ | Frame_r _ ->
      for row = 0 to t.length - 1 do
        f (get_unchecked t row)
      done
  | Rle_r { values; ends } ->
      let start = ref 0 in
      Array.iteri
        (fun r stop ->
          let v = Array.unsafe_get values r in
          for _ = !start to stop - 1 do
            f v
          done;
          start := stop)
        ends

let to_codes t =
  match t.repr with
  | Flat_r a -> Array.copy a
  | _ ->
      let buf = Array.make (max t.length 1) 0 in
      decode_into t ~row_start:0 ~len:t.length buf;
      if t.length = Array.length buf then buf else Array.sub buf 0 t.length

let value t row =
  let code = get t row in
  if code = Value.null_code then Value.Null
  else
    match t.dict with
    | None -> Value.Int code
    | Some dict -> Value.Str (Dict.get dict code)

let is_null t row = get t row = Value.null_code

(* ---------- cached statistics ---------- *)

let distinct_count t = t.distinct
let null_count t = t.nulls
let min_max t = t.lo_hi

(* ---------- value/code conversions ---------- *)

let encode t v =
  match (v, t.dict) with
  | Value.Null, _ -> Some Value.null_code
  | Value.Int i, None -> Some i
  | Value.Str s, Some dict -> Dict.find_opt dict s
  | Value.Int _, Some _ | Value.Str _, None ->
      invalid_arg
        (Printf.sprintf "Column.encode: type mismatch on column %s" t.name)

let code_value t code =
  if code = Value.null_code then Value.Null
  else
    match t.dict with
    | None -> Value.Int code
    | Some dict -> Value.Str (Dict.get dict code)

(* ---------- derived constructors ---------- *)

let take t rows =
  let codes = Array.map (fun row -> get t row) rows in
  make ~name:t.name ~ty:t.ty ~dict:t.dict codes

let recode t enc = make ~name:t.name ~ty:t.ty ~dict:t.dict ~force:enc (to_codes t)

(* ---------- storage accounting ---------- *)

let byte_size t =
  match t.repr with
  | Flat_r a -> 8 * Array.length a
  | Pack_r { bytes; _ } -> Bytes.length bytes
  | Frame_r { bytes; bases; _ } -> Bytes.length bytes + (8 * Array.length bases)
  | Rle_r { values; _ } -> 16 * Array.length values

let flat_byte_size t = 8 * t.length
