type t = {
  name : string;
  columns : Column.t array;
  by_name : (string, int) Hashtbl.t;
  row_count : int;
  pk : int option;
  fks : int list;
}

let create ~name ?pk ?(fks = []) columns =
  if Array.length columns = 0 then invalid_arg "Table.create: no columns";
  let row_count = Column.length columns.(0) in
  Array.iter
    (fun c ->
      if Column.length c <> row_count then
        invalid_arg
          (Printf.sprintf "Table.create %s: column %s has %d rows, expected %d"
             name (Column.name c) (Column.length c) row_count))
    columns;
  let by_name = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name (Column.name c) then
        invalid_arg
          (Printf.sprintf "Table.create %s: duplicate column %s" name
             (Column.name c));
      Hashtbl.add by_name (Column.name c) i)
    columns;
  let resolve what col_name =
    match Hashtbl.find_opt by_name col_name with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Table.create %s: %s column %s not found" name what col_name)
  in
  let pk = Option.map (resolve "pk") pk in
  let fks = List.map (resolve "fk") fks in
  { name; columns; by_name; row_count; pk; fks }

let name t = t.name
let row_count t = t.row_count
let columns t = t.columns
let column_count t = Array.length t.columns

let column_index t col_name =
  match Hashtbl.find_opt t.by_name col_name with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Table.column_index: table %s has no column %s" t.name
           col_name)

let column t i = t.columns.(i)
let find_column t col_name = t.columns.(column_index t col_name)
let pk t = t.pk
let fks t = t.fks
let value t ~row ~col = Column.value t.columns.(col) row
