type column_spec = { name : string; ty : Value.ty }

exception Csv_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Csv_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  || String.length s = 0

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let format_field = function
  | Value.Null -> ""
  | Value.Int i -> string_of_int i
  | Value.Str s -> if needs_quoting s then quote s else s

let export table ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let columns = Table.columns table in
      output_string oc
        (String.concat ","
           (Array.to_list (Array.map Column.name columns)));
      output_char oc '\n';
      for row = 0 to Table.row_count table - 1 do
        let fields =
          Array.to_list
            (Array.map (fun c -> format_field (Column.value c row)) columns)
        in
        output_string oc (String.concat "," fields);
        output_char oc '\n'
      done)

let export_database db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun name ->
      export (Database.find_table db name) ~path:(Filename.concat dir (name ^ ".csv")))
    (Database.table_names db)

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

(* Parse one record starting at [pos]; returns fields and the position
   after the record. A quoted field may span newlines. *)
let parse_line text pos =
  let n = String.length text in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let quoted_seen = ref false in
  let i = ref pos in
  let push () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    (* Unquoted empty field = NULL; quoted anything = string. *)
    let field = if (not !quoted_seen) && String.length s = 0 then None else Some s in
    quoted_seen := false;
    fields := field :: !fields
  in
  let rec field_start () =
    if !i >= n then push ()
    else
      match text.[!i] with
      | '"' ->
          quoted_seen := true;
          incr i;
          in_quotes ()
      | _ -> unquoted ()
  and in_quotes () =
    if !i >= n then fail "unterminated quoted field at end of input"
    else
      match text.[!i] with
      | '"' ->
          if !i + 1 < n && text.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2;
            in_quotes ()
          end
          else begin
            incr i;
            after_quotes ()
          end
      | c ->
          Buffer.add_char buf c;
          incr i;
          in_quotes ()
  and after_quotes () =
    if !i >= n then push ()
    else
      match text.[!i] with
      | ',' ->
          incr i;
          push ();
          field_start ()
      | '\n' ->
          incr i;
          push ()
      | '\r' when !i + 1 < n && text.[!i + 1] = '\n' ->
          i := !i + 2;
          push ()
      | c -> fail "unexpected character %C after closing quote" c
  and unquoted () =
    if !i >= n then push ()
    else
      match text.[!i] with
      | ',' ->
          incr i;
          push ();
          field_start ()
      | '\n' ->
          incr i;
          push ()
      | '\r' when !i + 1 < n && text.[!i + 1] = '\n' ->
          i := !i + 2;
          push ()
      | c ->
          Buffer.add_char buf c;
          incr i;
          unquoted ()
  in
  field_start ();
  (List.rev !fields, !i)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let import ~name ?pk ?fks ~columns ~path () =
  let text = read_file path in
  let n = String.length text in
  (* Header. *)
  let header, pos = parse_line text 0 in
  let expected = List.map (fun c -> Some c.name) columns in
  if header <> expected then
    fail "header of %s does not match the declared schema (got: %s)" path
      (String.concat ","
         (List.map (function Some s -> s | None -> "<null>") header));
  let width = List.length columns in
  (* Records. *)
  let rows = ref [] in
  let count = ref 0 in
  let pos = ref pos in
  let line = ref 2 in
  while !pos < n do
    let fields, next = parse_line text !pos in
    if fields = [ None ] && next >= n then pos := next (* trailing newline *)
    else begin
      if List.length fields <> width then
        fail "%s line %d: %d fields, expected %d" path !line (List.length fields)
          width;
      rows := fields :: !rows;
      incr count;
      incr line;
      pos := next
    end
  done;
  let rows = Array.of_list (List.rev !rows) in
  let column_values =
    List.mapi
      (fun col_idx spec ->
        let cells = Array.map (fun fields -> List.nth fields col_idx) rows in
        match spec.ty with
        | Value.Str_ty -> Column.of_strings ~name:spec.name cells
        | Value.Int_ty ->
            Column.of_ints ~name:spec.name
              (Array.mapi
                 (fun row cell ->
                   match cell with
                   | None -> None
                   | Some s -> (
                       match int_of_string_opt (String.trim s) with
                       | Some v -> Some v
                       | None ->
                           fail "%s line %d: %S is not an integer (column %s)"
                             path (row + 2) s spec.name))
                 cells))
      columns
  in
  Table.create ~name ?pk ?fks (Array.of_list column_values)
