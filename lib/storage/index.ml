type t = {
  table_name : string;
  column : int;
  buckets : (int, int array) Hashtbl.t;
  indexed_rows : int;
}

(* domlint: safe [R1] — empty sentinel shared read-only, never written *)
let empty_rows : int array = [||]

let build table ~col =
  let column = Table.column table col in
  let counts = Hashtbl.create 1024 in
  Column.iter_codes column (fun code ->
      if code <> Value.null_code then
        match Hashtbl.find_opt counts code with
        | Some n -> Hashtbl.replace counts code (n + 1)
        | None -> Hashtbl.add counts code 1);
  let buckets = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter (fun code n -> Hashtbl.add buckets code (Array.make n 0)) counts;
  let fill = Hashtbl.create (Hashtbl.length counts) in
  let indexed = ref 0 in
  let row = ref 0 in
  Column.iter_codes column (fun code ->
      if code <> Value.null_code then begin
        let pos = match Hashtbl.find_opt fill code with Some p -> p | None -> 0 in
        (Hashtbl.find buckets code).(pos) <- !row;
        Hashtbl.replace fill code (pos + 1);
        incr indexed
      end;
      incr row);
  { table_name = Table.name table; column = col; buckets; indexed_rows = !indexed }

let table_name t = t.table_name
let column t = t.column

let lookup t code =
  match Hashtbl.find_opt t.buckets code with
  | Some rows -> rows
  | None -> empty_rows

let count t code =
  match Hashtbl.find_opt t.buckets code with
  | Some rows -> Array.length rows
  | None -> 0

let distinct_keys t = Hashtbl.length t.buckets

let average_fanout t =
  let keys = Hashtbl.length t.buckets in
  if keys = 0 then 0.0 else float_of_int t.indexed_rows /. float_of_int keys
