(** A single materialized column, sealed behind compressed encodings.

    Integer columns hold their values directly; string columns hold
    dictionary codes. NULL is [Value.null_code] in either case at the
    API boundary; packed physical layouts store it as an in-band 0 so
    the sentinel never widens the bit width.

    The physical representation is chosen per column at build time from
    observed width, clustering and run structure:

    - [Flat]: one word per row (the reference layout).
    - [Bitpack]: fixed-width codes, [value - min + 1] with 0 as NULL.
    - [Frame]: frame-of-reference — per-4096-row-block minima plus
      fixed-width offsets; wins on sorted or clustered columns (ids).
    - [Rle]: run-length over codes; wins on constant or near-constant
      columns (run starts are binary-searched on random access).

    All encodings expose the same code sequence: [decode_into] and
    [get] return exactly what the flat layout would, so query results
    are byte-identical no matter which encoding backs a column. *)

type t

type encoding = Flat | Bitpack | Frame | Rle

val all_encodings : encoding list

val encoding_name : encoding -> string
val encoding_of_name : string -> encoding option

(** {1 Constructors} *)

val of_ints : name:string -> int option array -> t
(** Integer column; [None] becomes NULL. *)

val of_strings : name:string -> string option array -> t
(** Dictionary-encoded string column; [None] becomes NULL. *)

val of_codes : name:string -> ty:Value.ty -> ?dict:Dict.t -> int array -> t
(** Column from raw codes ([Value.null_code] for NULL). String columns
    must pass the dictionary the codes refer to. *)

val take : t -> int array -> t
(** [take t rows] gathers the given rows into a fresh column sharing
    [t]'s dictionary, so codes (and compiled predicates) transfer. *)

val recode : t -> encoding -> t
(** Rebuild with the given encoding forced, bypassing the chooser.
    Falls back to [Flat] when the data cannot satisfy the encoding's
    width limit. Codes and dictionary are preserved exactly. *)

(** {1 Shape} *)

val name : t -> string
val ty : t -> Value.ty

val dict : t -> Dict.t option
(** [Some] for string columns. *)

val length : t -> int
val encoding : t -> encoding

(** {1 Row access} *)

val value : t -> int -> Value.t
(** Decoded value of a row. *)

val is_null : t -> int -> bool

val get : t -> int -> int
(** Code at a row; [Value.null_code] for NULL. *)

val reader : t -> int -> int
(** [reader t] is a closure equivalent to [get t] with the
    representation dispatch hoisted out; for random-access hot loops
    (join keys, index probes). *)

val flat_view : t -> int array option
(** The underlying array when the column is [Flat] — a zero-copy fast
    path for scans. Callers must not mutate it. *)

val decode_into : t -> row_start:int -> len:int -> int array -> unit
(** Decode codes for rows [row_start, row_start+len) into
    [buf.(0..len-1)]. The late-materialization chunk API: scans decode
    one 4096-row selection-vector chunk at a time. *)

val iter_codes : t -> (int -> unit) -> unit
(** Visit every code in row order (sequential scans: index build,
    statistics). *)

val to_codes : t -> int array
(** Fully decoded copy of the code sequence. *)

(** {1 Cached statistics} *)

val distinct_count : t -> int
(** Exact number of distinct non-NULL values (cached at build time). *)

val null_count : t -> int

val min_max : t -> (int * int) option
(** Smallest and largest non-NULL code, or [None] if all rows are
    NULL. *)

(** {1 Value/code conversions} *)

val encode : t -> Value.t -> int option
(** Physical code a value would have in this column, or [None] when a
    string constant is absent from the dictionary (it then matches no
    row). [Some Value.null_code] encodes NULL. *)

val code_value : t -> int -> Value.t
(** Decode a code (not a row number) back to a value. *)

(** {1 Storage accounting} *)

val byte_size : t -> int
(** Physical bytes of the encoded payload (excluding the dictionary,
    which is shared across encodings). *)

val flat_byte_size : t -> int
(** Bytes the flat reference layout would use (one word per row). *)
