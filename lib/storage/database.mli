(** The catalog: named tables plus the current physical design.

    A physical design ([index_config]) determines which hash indexes
    exist. Index construction is cached per (table, column), so switching
    configurations back and forth during the experiments is cheap. *)

type index_config = No_indexes | Pk_only | Pk_fk

val index_config_to_string : index_config -> string

type t

val create : unit -> t

val add_table : t -> Table.t -> unit
(** Raises [Invalid_argument] on duplicate names. *)

val find_table : t -> string -> Table.t
(** Raises [Invalid_argument] when unknown. *)

val table_names : t -> string list
(** Sorted list of registered tables. *)

val set_index_config : t -> index_config -> unit

val index_config : t -> index_config

val index : t -> table:string -> col:int -> Index.t option
(** The index on [table.col] if the current configuration provides one
    (built lazily, cached forever). *)

val force_index : t -> table:string -> col:int -> Index.t
(** Index regardless of configuration — used internally by exact
    cardinality computation, never by the optimizer. *)

val total_rows : t -> int

val recode : t -> Column.encoding -> t
(** Fresh catalog with every column re-encoded (dictionaries and codes
    preserved, fresh index cache, same index configuration). Used by the
    per-encoding golden tests and the scale sweep. *)
