module QG = Query.Query_graph
module P = Query.Predicate

type bound = {
  graph : QG.t;
  projections : (int * int) list;
}

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

(* Sentinel code for string constants absent from a dictionary: no stored
   code is negative, so Eq matches nothing and Ne matches every non-NULL
   row — the correct SQL semantics. *)
let missing_code = -1

let cmp_of_ast : Ast.cmp -> P.cmp = function
  | Ast.Eq -> P.Eq
  | Ast.Ne -> P.Ne
  | Ast.Lt -> P.Lt
  | Ast.Le -> P.Le
  | Ast.Gt -> P.Gt
  | Ast.Ge -> P.Ge

type rel_binding = {
  idx : int;
  table : Storage.Table.t;
  mutable preds : P.atom list;
}

let resolve_column table (c : Ast.colref) =
  try Storage.Table.column_index table c.column
  with Invalid_argument _ ->
    fail "column %s.%s does not exist in table %s" c.alias c.column
      (Storage.Table.name table)

let encode_const table col (c : Ast.colref) v =
  let column = Storage.Table.column table col in
  match (v, Storage.Column.ty column) with
  | Ast.Cint i, Storage.Value.Int_ty -> i
  | Ast.Cstr s, Storage.Value.Str_ty -> (
      match Storage.Column.encode column (Storage.Value.Str s) with
      | Some code -> code
      | None -> missing_code)
  | Ast.Cint _, Storage.Value.Str_ty ->
      fail "integer constant compared with string column %s.%s" c.alias c.column
  | Ast.Cstr _, Storage.Value.Int_ty ->
      fail "string constant compared with integer column %s.%s" c.alias c.column

let rec bind_atom rels (atom : Ast.atom) : int * P.atom =
  let rel_of (c : Ast.colref) =
    match Hashtbl.find_opt rels c.alias with
    | Some r -> r
    | None -> fail "unknown alias %s" c.alias
  in
  match atom with
  | Ast.A_cmp (c, op, v) -> (
      let r = rel_of c in
      let col = resolve_column r.table c in
      let column = Storage.Table.column r.table col in
      let op = cmp_of_ast op in
      match (v, Storage.Column.ty column, op) with
      | Ast.Cstr s, Storage.Value.Str_ty, (P.Lt | P.Le | P.Gt | P.Ge) ->
          (r.idx, P.Str_cmp { col; op; value = s })
      | _ ->
          let code = encode_const r.table col c v in
          (r.idx, P.Cmp { col; op; code }))
  | Ast.A_between (c, lo, hi) ->
      let r = rel_of c in
      let col = resolve_column r.table c in
      let column = Storage.Table.column r.table col in
      if Storage.Column.ty column <> Storage.Value.Int_ty then
        fail "BETWEEN requires an integer column (%s.%s)" c.alias c.column;
      (r.idx, P.Between { col; lo; hi })
  | Ast.A_in (c, vs) ->
      let r = rel_of c in
      let col = resolve_column r.table c in
      let codes = List.map (encode_const r.table col c) vs in
      (r.idx, P.In { col; codes })
  | Ast.A_like (c, pattern, negated) ->
      let r = rel_of c in
      let col = resolve_column r.table c in
      let column = Storage.Table.column r.table col in
      if Storage.Column.ty column <> Storage.Value.Str_ty then
        fail "LIKE requires a string column (%s.%s)" c.alias c.column;
      (r.idx, P.Like { col; pattern; negated })
  | Ast.A_null (c, negated) ->
      let r = rel_of c in
      let col = resolve_column r.table c in
      (r.idx, P.Is_null { col; negated })
  | Ast.A_or atoms -> (
      let bound = List.map (bind_atom rels) atoms in
      match bound with
      | [] -> fail "empty OR group"
      | (first_rel, _) :: _ ->
          List.iter
            (fun (rel, _) ->
              if rel <> first_rel then
                fail "OR group spans multiple relations (unsupported)")
            bound;
          (first_rel, P.Or (List.map snd bound)))

let bind db ~name (select : Ast.select) =
  (* FROM clause: one relation binding per alias, in clause order. *)
  let rels = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun idx (table_name, alias) ->
      if Hashtbl.mem rels alias then fail "duplicate alias %s" alias;
      let table =
        try Storage.Database.find_table db table_name
        with Invalid_argument _ -> fail "unknown table %s" table_name
      in
      let binding = { idx; table; preds = [] } in
      Hashtbl.add rels alias binding;
      order := (alias, binding) :: !order)
    select.Ast.from;
  let order = List.rev !order in

  (* WHERE clause: join edges vs per-relation filters. *)
  let edges = ref [] in
  List.iter
    (function
      | Ast.W_join (a, b) ->
          let ra =
            match Hashtbl.find_opt rels a.Ast.alias with
            | Some r -> r
            | None -> fail "unknown alias %s" a.Ast.alias
          and rb =
            match Hashtbl.find_opt rels b.Ast.alias with
            | Some r -> r
            | None -> fail "unknown alias %s" b.Ast.alias
          in
          if ra.idx = rb.idx then fail "self-join predicate within one alias";
          let ca = resolve_column ra.table a and cb = resolve_column rb.table b in
          let pk_side =
            if Storage.Table.pk ra.table = Some ca then Some `Left
            else if Storage.Table.pk rb.table = Some cb then Some `Right
            else None
          in
          edges :=
            {
              QG.left = ra.idx;
              left_col = ca;
              right = rb.idx;
              right_col = cb;
              pk_side;
            }
            :: !edges
      | Ast.W_atom atom ->
          let rel, bound = bind_atom rels atom in
          let binding = List.nth (List.map snd order) rel in
          assert (binding.idx = rel);
          binding.preds <- bound :: binding.preds)
    select.Ast.where;

  let relations =
    Array.of_list
      (List.map
         (fun (alias, b) ->
           { QG.idx = b.idx; alias; table = b.table; preds = List.rev b.preds })
         order)
  in
  let graph = QG.create ~name relations (List.rev !edges) in

  (* Projections. *)
  let projections =
    List.filter_map
      (fun (p : Ast.projection) ->
        if p.expr.Ast.alias = "*" then None
        else
          match Hashtbl.find_opt rels p.expr.Ast.alias with
          | None -> fail "unknown alias %s in SELECT" p.expr.Ast.alias
          | Some r -> Some (r.idx, resolve_column r.table p.expr))
      select.Ast.projections
  in
  { graph; projections }

(* The parse span nests inside the pipeline's "bind" span (parsing is
   part of the bind phase); trace coverage sums count "bind" only. *)
let ph_parse = Obs.Trace.intern "parse"

let bind_sql db ~name sql =
  let t0 = Obs.Trace.start () in
  let ast = Parser.parse sql in
  Obs.Trace.span ph_parse ~t0 ~a:0 ~b:0;
  bind db ~name ast
