type error = { kind : string; input : string; valid : string list }

let error_to_string { kind; input; valid } =
  Printf.sprintf "unknown %s %S (valid: %s)" kind input
    (String.concat ", " valid)

type 'a entry = { name : string; doc : string; value : 'a }

type 'a t = {
  kind : string;
  entries : 'a entry list;
  parse : (string -> 'a option) option;
}

let make ~kind ?parse entries =
  List.iteri
    (fun i (e : _ entry) ->
      List.iteri
        (fun j (e' : _ entry) ->
          if i < j && String.equal e.name e'.name then
            invalid_arg
              (Printf.sprintf "Registry.make: duplicate %s %S" kind e.name))
        entries)
    entries;
  { kind; entries; parse }

let kind t = t.kind

let names t = List.map (fun e -> e.name) t.entries

let entries t = t.entries

let find t input =
  match List.find_opt (fun e -> String.equal e.name input) t.entries with
  | Some e -> Ok e.value
  | None -> (
      match Option.bind t.parse (fun parse -> parse input) with
      | Some v -> Ok v
      | None -> Error { kind = t.kind; input; valid = names t })

let find_exn t input =
  match find t input with
  | Ok v -> v
  | Error e -> invalid_arg (error_to_string e)

(* ------------------------------------------------------------------ *)
(* Enumerators                                                         *)

type enumerator =
  | Exhaustive_dp
  | Quickpick of int
  | Greedy_operator_ordering
  | Simpli_squared

let enumerator_name = function
  | Exhaustive_dp -> "dp"
  | Greedy_operator_ordering -> "goo"
  | Quickpick n -> Printf.sprintf "quickpick:%d" n
  | Simpli_squared -> "simpli"

let verify_enumerator = function
  | Exhaustive_dp -> Verify.Dp
  | Greedy_operator_ordering -> Verify.Goo
  | Quickpick n -> Verify.Quickpick n
  | Simpli_squared -> Verify.Simpli

let enumerators =
  make ~kind:"enumerator"
    ~parse:(fun s ->
      match String.split_on_char ':' s with
      | [ "quickpick"; n ] ->
          Option.map (fun n -> Quickpick n) (int_of_string_opt n)
      | _ -> None)
    [
      {
        name = "dp";
        doc = "exhaustive dynamic programming over connected subsets";
        value = Exhaustive_dp;
      };
      {
        name = "goo";
        doc = "Greedy Operator Ordering (cheapest join first)";
        value = Greedy_operator_ordering;
      };
      {
        name = "quickpick:N";
        doc = "best of N random join orders (Waas & Pellenkoft)";
        value = Quickpick 100;
      };
      {
        name = "simpli";
        doc =
          "Simpli-Squared: join order from raw table sizes only, no \
           cardinality estimates (Datta et al.)";
        value = Simpli_squared;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)

type estimator_ctx = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;
  coarse : Dbstats.Analyze.t;
  graph : Query.Query_graph.t;
  truth : Cardest.True_card.t Util.Once.t;
  feedback : Reopt.Feedback.t option;
}

let sctx c = { Cardest.Systems.db = c.db; graph = c.graph }

let estimators =
  make ~kind:"estimator"
    [
      {
        name = "PostgreSQL";
        doc = "histogram + MCV statistics, independence, clamp-to-1";
        value = (fun c -> Cardest.Systems.postgres c.analyze (sctx c));
      };
      {
        name = "DBMS A";
        doc = "5000-row table sample, damped join selectivities";
        value = (fun c -> Cardest.Systems.dbms_a c.analyze (sctx c));
      };
      {
        name = "DBMS B";
        doc = "coarse statistics, crude magic constants, floor-to-1";
        value = (fun c -> Cardest.Systems.dbms_b c.coarse (sctx c));
      };
      {
        name = "DBMS C";
        doc = "optimistic magic constants, overestimation tail";
        value = (fun c -> Cardest.Systems.dbms_c c.analyze (sctx c));
      };
      {
        name = "HyPer";
        doc = "1000-row table sample against the full conjunction";
        value = (fun c -> Cardest.Systems.hyper c.analyze (sctx c));
      };
      {
        name = "PostgreSQL (true distinct)";
        doc = "PostgreSQL with exact distinct counts (Figure 5)";
        value =
          (fun c -> Cardest.Systems.postgres ~true_distinct:true c.analyze (sctx c));
      };
      {
        name = "true";
        doc = "exact cardinalities of every connected subset (the oracle)";
        value = (fun c -> Cardest.True_card.estimator (Util.Once.force c.truth));
      };
      {
        name = "feedback";
        doc =
          "execution-time feedback overlay: observed subgraphs exact, the \
           rest delegated to PostgreSQL's estimator";
        value =
          (fun c ->
            let store =
              match c.feedback with
              | Some fb -> fb
              | None -> Reopt.Feedback.create ()
            in
            Reopt.Feedback.overlay
              ~fallback:(Cardest.Systems.postgres c.analyze (sctx c))
              store);
      };
    ]

(* ------------------------------------------------------------------ *)
(* Cost models                                                         *)

let cost_models =
  make ~kind:"cost model"
    [
      {
        name = "PostgreSQL";
        doc = "disk-oriented: page I/O plus per-tuple CPU costs";
        value = Cost.Cost_model.postgres;
      };
      {
        name = "tuned";
        doc = "PostgreSQL model with 50x CPU cost factors (Section 5.3)";
        value = Cost.Cost_model.tuned;
      };
      {
        name = "Cmm";
        doc = "the paper's main-memory cost model C_mm (Section 5.4)";
        value = Cost.Cost_model.cmm;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Engine and index configurations                                     *)

let engines =
  make ~kind:"engine configuration"
    [
      {
        name = "default";
        doc = "stock engine: NL joins on, fixed-size hash tables";
        value = Exec.Engine_config.default_9_4;
      };
      {
        name = "no-nl";
        doc = "nested-loop joins disabled";
        value = Exec.Engine_config.no_nl;
      };
      {
        name = "robust";
        doc = "no NL joins, resizable hash tables";
        value = Exec.Engine_config.robust;
      };
    ]

let index_configs =
  make ~kind:"index configuration"
    [
      { name = "none"; doc = "no indexes"; value = Storage.Database.No_indexes };
      {
        name = "pk";
        doc = "primary-key indexes only";
        value = Storage.Database.Pk_only;
      };
      {
        name = "pkfk";
        doc = "primary- and foreign-key indexes";
        value = Storage.Database.Pk_fk;
      };
    ]
