module QG = Query.Query_graph

type query = {
  name : string;
  sql : string;
  graph : QG.t;
  projections : (int * int) list;
}

type plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

type stats = {
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plans_enumerated : int;
  mutable estimators_built : int;
  mutable estimators_reused : int;
  mutable estimator_probes : int;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;
  coarse : Dbstats.Analyze.t;
  truths : (string * string, Cardest.True_card.t Lazy.t) Hashtbl.t;
  estimators : (string * string * string, Cardest.Estimator.t) Hashtbl.t;
  plans : (plan_key, Plan.t * float) Hashtbl.t;
  stats : stats;
}

and plan_key = {
  k_query : string * string;
  k_estimator : string;
  k_model : string;
  k_enumerator : string;
  k_shape : Planner.Search.shape_limit;
  k_allow_nl : bool;
  k_allow_hash : bool;
  k_seed : int;
  k_indexes : Storage.Database.index_config;
}

let create db =
  {
    db;
    analyze = Dbstats.Analyze.create db;
    coarse = Cardest.Systems.coarse_analyze db;
    truths = Hashtbl.create 128;
    estimators = Hashtbl.create 512;
    plans = Hashtbl.create 1024;
    stats =
      {
        plan_hits = 0;
        plan_misses = 0;
        plans_enumerated = 0;
        estimators_built = 0;
        estimators_reused = 0;
        estimator_probes = 0;
      };
  }

let db t = t.db

let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.plan_hits <- 0;
  s.plan_misses <- 0;
  s.plans_enumerated <- 0;
  s.estimators_built <- 0;
  s.estimators_reused <- 0;
  s.estimator_probes <- 0

let stats_summary t =
  let s = t.stats in
  Printf.sprintf
    "plan cache: %d hits, %d misses (%d plans enumerated) | estimators: %d \
     built, %d reused, %d probes"
    s.plan_hits s.plan_misses s.plans_enumerated s.estimators_built
    s.estimators_reused s.estimator_probes

(* ------------------------------------------------------------------ *)
(* Exact cardinalities                                                 *)

let truth_lazy t q =
  let key = (q.name, q.sql) in
  match Hashtbl.find_opt t.truths key with
  | Some l -> l
  | None ->
      let l = lazy (Cardest.True_card.compute q.graph) in
      Hashtbl.add t.truths key l;
      l

let truth t q = Lazy.force (truth_lazy t q)

let truth_if_computed t q =
  match Hashtbl.find_opt t.truths (q.name, q.sql) with
  | Some l when Lazy.is_val l -> Some (Lazy.force l)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)

let estimator t q system =
  let key = (q.name, q.sql, system) in
  match Hashtbl.find_opt t.estimators key with
  | Some est ->
      t.stats.estimators_reused <- t.stats.estimators_reused + 1;
      est
  | None ->
      let build = Registry.find_exn Registry.estimators system in
      let est =
        build
          {
            Registry.db = t.db;
            analyze = t.analyze;
            coarse = t.coarse;
            graph = q.graph;
            truth = truth_lazy t q;
          }
      in
      (* Count subset probes through the shared instance; the memo table
         inside [est.subset] keeps doing the actual caching. *)
      let counted =
        {
          est with
          Cardest.Estimator.subset =
            (fun s ->
              t.stats.estimator_probes <- t.stats.estimator_probes + 1;
              est.Cardest.Estimator.subset s);
        }
      in
      t.stats.estimators_built <- t.stats.estimators_built + 1;
      Hashtbl.add t.estimators key counted;
      counted

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)

let plan_with t q ~est ~model ?(enumerator = Registry.Exhaustive_dp)
    ?(shape = Planner.Search.Any_shape) ?(allow_nl = false)
    ?(allow_hash = true) ?(seed = 1) () =
  let key =
    {
      k_query = (q.name, q.sql);
      k_estimator = est.Cardest.Estimator.name;
      k_model = model.Cost.Cost_model.name;
      k_enumerator = Registry.enumerator_name enumerator;
      k_shape = shape;
      k_allow_nl = allow_nl;
      k_allow_hash = allow_hash;
      (* The seed only matters for randomized enumeration; normalizing it
         away for the deterministic ones widens cache sharing. *)
      k_seed = (match enumerator with Registry.Quickpick _ -> seed | _ -> 0);
      k_indexes = Storage.Database.index_config t.db;
    }
  in
  match Hashtbl.find_opt t.plans key with
  | Some entry ->
      t.stats.plan_hits <- t.stats.plan_hits + 1;
      entry
  | None ->
      t.stats.plan_misses <- t.stats.plan_misses + 1;
      let search =
        Planner.Search.create ~allow_nl ~allow_hash ~shape ~model ~graph:q.graph
          ~db:t.db ~card:est.Cardest.Estimator.subset ()
      in
      let entry =
        match enumerator with
        | Registry.Exhaustive_dp -> Planner.Dp.optimize search
        | Registry.Quickpick attempts ->
            Planner.Quickpick.best_of search (Util.Prng.create seed) ~attempts
        | Registry.Greedy_operator_ordering -> Planner.Goo.optimize search
      in
      t.stats.plans_enumerated <- t.stats.plans_enumerated + 1;
      (* Every plan an enumerator emits is statically sanitized before it
         can reach the cache, an executor, or a figure. *)
      Verify.ensure_plan ~shape ~what:q.name q.graph (fst entry);
      Hashtbl.add t.plans key entry;
      entry

let estimator_by_name = estimator

let plan t ?(estimator = "PostgreSQL") ?(cost_model = "PostgreSQL") ?enumerator
    ?shape ?allow_nl ?allow_hash ?seed query =
  let est = estimator_by_name t query estimator in
  let model = Registry.find_exn Registry.cost_models cost_model in
  let plan, estimated_cost =
    plan_with t query ~est ~model ?enumerator ?shape ?allow_nl ?allow_hash
      ?seed ()
  in
  { plan; estimated_cost; estimator = est; cost_model = model }
