module QG = Query.Query_graph

type query = {
  name : string;
  sql : string;
  graph : QG.t;
  projections : (int * int) list;
}

type plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

type stats = {
  plan_hits : int;
  plan_misses : int;
  plans_enumerated : int;
  estimators_built : int;
  estimators_reused : int;
  estimator_probes : int;
  bind_hits : int;
  bind_misses : int;
}

(* Trace phases for the planning pipeline. Spans record inside the memo
   cells, so a cache hit emits nothing — the trace shows where compute
   actually happened, and "bind"/"plan"/"verify" never overlap ("parse"
   nests inside "bind", see Sqlfront.Binder). *)
let ph_bind = Obs.Trace.intern "bind"
let ph_plan = Obs.Trace.intern "plan"
let ph_verify = Obs.Trace.intern "verify"

(* Process-wide mirrors of the per-pipeline counters below, living in
   the Obs.Metrics registry. A process can run several pipelines (the
   bench harness builds serial/parallel twins), so the registry rows
   aggregate across all of them while [stats] stays per instance. *)
let m_plan_hits = Obs.Metrics.counter "core.pipeline.plan_hits"
let m_plan_misses = Obs.Metrics.counter "core.pipeline.plan_misses"
let m_plans_enumerated = Obs.Metrics.counter "core.pipeline.plans_enumerated"
let m_estimators_built = Obs.Metrics.counter "core.pipeline.estimators_built"
let m_estimators_reused = Obs.Metrics.counter "core.pipeline.estimators_reused"
let m_estimator_probes = Obs.Metrics.counter "core.pipeline.estimator_probes"
let m_bind_hits = Obs.Metrics.counter "core.pipeline.bind_hits"
let m_bind_misses = Obs.Metrics.counter "core.pipeline.bind_misses"

let bump cell mirror =
  Atomic.incr cell;
  Obs.Metrics.Counter.incr mirror

(* Live counters are atomics so [--stats] stays truthful when several
   domains plan and probe concurrently; {!stats} takes a snapshot. *)
type counters = {
  c_plan_hits : int Atomic.t;
  c_plan_misses : int Atomic.t;
  c_plans_enumerated : int Atomic.t;
  c_estimators_built : int Atomic.t;
  c_estimators_reused : int Atomic.t;
  c_estimator_probes : int Atomic.t;
  c_bind_hits : int Atomic.t;
  c_bind_misses : int Atomic.t;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;
  coarse : Dbstats.Analyze.t;
  binds : (string * string, query Util.Once.t) Util.Shard_map.t;
  truths : (string * string, Cardest.True_card.t Util.Once.t) Util.Shard_map.t;
  estimators :
    (string * string * string, Cardest.Estimator.t Util.Once.t) Util.Shard_map.t;
  plans : (plan_key, (Plan.t * float) Util.Once.t) Util.Shard_map.t;
  counters : counters;
}

and plan_key = {
  k_query : string * string;
  k_estimator : string;
  k_model : string;
  k_enumerator : string;
  k_shape : Planner.Search.shape_limit;
  k_allow_nl : bool;
  k_allow_hash : bool;
  k_seed : int;
  k_indexes : Storage.Database.index_config;
}

let create db =
  {
    db;
    analyze = Dbstats.Analyze.create db;
    coarse = Cardest.Systems.coarse_analyze db;
    binds = Util.Shard_map.create ();
    truths = Util.Shard_map.create ();
    estimators = Util.Shard_map.create ();
    plans = Util.Shard_map.create ~shards:32 ();
    counters =
      {
        c_plan_hits = Atomic.make 0;
        c_plan_misses = Atomic.make 0;
        c_plans_enumerated = Atomic.make 0;
        c_estimators_built = Atomic.make 0;
        c_estimators_reused = Atomic.make 0;
        c_estimator_probes = Atomic.make 0;
        c_bind_hits = Atomic.make 0;
        c_bind_misses = Atomic.make 0;
      };
  }

let db t = t.db

let stats t =
  {
    plan_hits = Atomic.get t.counters.c_plan_hits;
    plan_misses = Atomic.get t.counters.c_plan_misses;
    plans_enumerated = Atomic.get t.counters.c_plans_enumerated;
    estimators_built = Atomic.get t.counters.c_estimators_built;
    estimators_reused = Atomic.get t.counters.c_estimators_reused;
    estimator_probes = Atomic.get t.counters.c_estimator_probes;
    bind_hits = Atomic.get t.counters.c_bind_hits;
    bind_misses = Atomic.get t.counters.c_bind_misses;
  }

let reset_stats t =
  Atomic.set t.counters.c_plan_hits 0;
  Atomic.set t.counters.c_plan_misses 0;
  Atomic.set t.counters.c_plans_enumerated 0;
  Atomic.set t.counters.c_estimators_built 0;
  Atomic.set t.counters.c_estimators_reused 0;
  Atomic.set t.counters.c_estimator_probes 0;
  Atomic.set t.counters.c_bind_hits 0;
  Atomic.set t.counters.c_bind_misses 0

let stats_summary t =
  let s = stats t in
  Printf.sprintf
    "plan cache: %d hits, %d misses (%d plans enumerated) | estimators: %d \
     built, %d reused, %d probes | binds: %d hits, %d misses"
    s.plan_hits s.plan_misses s.plans_enumerated s.estimators_built
    s.estimators_reused s.estimator_probes s.bind_hits s.bind_misses

(* Find-or-create a memo cell; only the cheap cell allocation runs
   under the shard lock. The (possibly expensive) computation itself is
   guarded by the cell's own mutex, so concurrent requests for distinct
   keys never serialize on each other — and with the tables sharded,
   neither do concurrent lookups of unrelated keys. *)
let find_or_add_cell table key make =
  Util.Shard_map.find_or_add table key (fun () -> Util.Once.make make)

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)

(* Parse-and-bind memoization, keyed on (name, SQL text). A serving
   loop replays the same statements over and over; binding is pure
   (the graph depends only on the text and the schema), so cached
   [query] values are safely shared across domains. *)
let bind t ~name text =
  let cell, fresh =
    find_or_add_cell t.binds (name, text) (fun () ->
        let t0 = Obs.Trace.start () in
        let bound = Sqlfront.Binder.bind_sql t.db ~name text in
        let q =
          {
            name;
            sql = text;
            graph = bound.Sqlfront.Binder.graph;
            projections = bound.Sqlfront.Binder.projections;
          }
        in
        Obs.Trace.span ph_bind ~t0 ~a:0 ~b:0;
        q)
  in
  if fresh then bump t.counters.c_bind_misses m_bind_misses
  else bump t.counters.c_bind_hits m_bind_hits;
  Util.Once.force cell

(* ------------------------------------------------------------------ *)
(* Exact cardinalities                                                 *)

let truth_cell t q =
  let key = (q.name, q.sql) in
  fst
    (find_or_add_cell t.truths key (fun () ->
         Cardest.True_card.compute q.graph))

let truth t q = Util.Once.force (truth_cell t q)

let truth_if_computed t q =
  match Util.Shard_map.find_opt t.truths (q.name, q.sql) with
  | Some c when Util.Once.is_val c -> Some (Util.Once.force c)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Estimators                                                          *)

let estimator t q system =
  let key = (q.name, q.sql, system) in
  let cell, fresh =
    find_or_add_cell t.estimators key (fun () ->
        let build = Registry.find_exn Registry.estimators system in
        let est =
          build
            {
              Registry.db = t.db;
              analyze = t.analyze;
              coarse = t.coarse;
              graph = q.graph;
              truth = truth_cell t q;
              feedback = None;
            }
        in
        (* Count subset probes through the shared instance; the memo
           table inside [est.subset] keeps doing the actual caching. The
           instance mutex guards those internal memo tables: one
           instance is shared by every domain working on this
           (query, system) pair. *)
        let m = Mutex.create () in
        let locked f x =
          Mutex.lock m;
          match f x with
          | v ->
              Mutex.unlock m;
              v
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              Mutex.unlock m;
              Printexc.raise_with_backtrace e bt
        in
        {
          est with
          Cardest.Estimator.base = locked est.Cardest.Estimator.base;
          subset =
            (fun s ->
              bump t.counters.c_estimator_probes m_estimator_probes;
              locked est.Cardest.Estimator.subset s);
        })
  in
  if fresh then bump t.counters.c_estimators_built m_estimators_built
  else bump t.counters.c_estimators_reused m_estimators_reused;
  Util.Once.force cell

(* ------------------------------------------------------------------ *)
(* Statistics warming                                                  *)

(* ANALYZE samples tables lazily on first touch, consuming a PRNG that
   is shared across the instance's tables — so per-table statistics
   depend on the order in which tables are first demanded. Replaying
   the serial demand order up front (Table 1's base estimates, then
   Figure 3's subset probes, PostgreSQL on the default statistics and
   DBMS B on the coarse ones — the first code paths that touch each
   instance in a full regeneration) freezes every table's sample before
   any parallel work starts: afterwards both ANALYZE instances are
   read-only, and experiment output cannot depend on domain scheduling.
   The throwaway estimators used here issue exactly the probe sequence
   of the serial first pass; they bypass the pipeline's caches and
   counters. *)
let warm_statistics t queries =
  let sctx (q : query) = { Cardest.Systems.db = t.db; graph = q.graph } in
  let base_pass est (q : query) =
    Array.iter
      (fun (r : QG.relation) ->
        if r.QG.preds <> [] then ignore (est.Cardest.Estimator.base r.QG.idx))
      (QG.relations q.graph)
  in
  let max_joins = 6 in
  let subset_pass est (q : query) =
    Array.iter
      (fun s ->
        if Util.Bitset.cardinal s - 1 <= max_joins then
          ignore (est.Cardest.Estimator.subset s))
      (QG.connected_subsets q.graph)
  in
  List.iter
    (fun q -> base_pass (Cardest.Systems.postgres t.analyze (sctx q)) q)
    queries;
  List.iter (fun q -> base_pass (Cardest.Systems.dbms_b t.coarse (sctx q)) q) queries;
  List.iter
    (fun q -> subset_pass (Cardest.Systems.postgres t.analyze (sctx q)) q)
    queries;
  List.iter
    (fun q -> subset_pass (Cardest.Systems.dbms_b t.coarse (sctx q)) q)
    queries

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)

let plan_with t q ~est ~model ?(enumerator = Registry.Exhaustive_dp)
    ?(shape = Planner.Search.Any_shape) ?(allow_nl = false)
    ?(allow_hash = true) ?(seed = 1) () =
  let key =
    {
      k_query = (q.name, q.sql);
      k_estimator = est.Cardest.Estimator.name;
      k_model = model.Cost.Cost_model.name;
      k_enumerator = Registry.enumerator_name enumerator;
      k_shape = shape;
      k_allow_nl = allow_nl;
      k_allow_hash = allow_hash;
      (* The seed only matters for randomized enumeration; normalizing it
         away for the deterministic ones widens cache sharing. *)
      k_seed = (match enumerator with Registry.Quickpick _ -> seed | _ -> 0);
      k_indexes = Storage.Database.index_config t.db;
    }
  in
  let cell, fresh =
    find_or_add_cell t.plans key (fun () ->
        let t0 = Obs.Trace.start () in
        let search =
          Planner.Search.create ~allow_nl ~allow_hash ~shape ~model
            ~graph:q.graph ~db:t.db ~card:est.Cardest.Estimator.subset ()
        in
        let entry =
          match enumerator with
          | Registry.Exhaustive_dp -> Planner.Dp.optimize search
          | Registry.Quickpick attempts ->
              Planner.Quickpick.best_of search (Util.Prng.create seed) ~attempts
          | Registry.Greedy_operator_ordering -> Planner.Goo.optimize search
          | Registry.Simpli_squared -> Planner.Simpli.optimize search
        in
        bump t.counters.c_plans_enumerated m_plans_enumerated;
        Obs.Trace.span ph_plan ~t0 ~a:0 ~b:0;
        (* Every plan an enumerator emits is statically sanitized before
           it can reach the cache, an executor, or a figure. *)
        let tv = Obs.Trace.start () in
        Verify.ensure_plan ~shape ~what:q.name q.graph (fst entry);
        Obs.Trace.span ph_verify ~t0:tv ~a:0 ~b:0;
        entry)
  in
  if fresh then bump t.counters.c_plan_misses m_plan_misses
  else bump t.counters.c_plan_hits m_plan_hits;
  Util.Once.force cell

let estimator_by_name = estimator

let plan t ?(estimator = "PostgreSQL") ?(cost_model = "PostgreSQL") ?enumerator
    ?shape ?allow_nl ?allow_hash ?seed query =
  let est = estimator_by_name t query estimator in
  let model = Registry.find_exn Registry.cost_models cost_model in
  let plan, estimated_cost =
    plan_with t query ~est ~model ?enumerator ?shape ?allow_nl ?allow_hash
      ?seed ()
  in
  { plan; estimated_cost; estimator = est; cost_model = model }
