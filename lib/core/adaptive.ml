module Bitset = Util.Bitset
module QG = Query.Query_graph

type outcome = {
  result : Exec.Executor.result;
  probes : int;
  probe_work : int;
}

(* The plan's bottom-most {e suspicious} join subtree: unobserved, and
   estimated at (nearly) one row — the signature of a clamped,
   collapsed estimate, which is where the catastrophic plans come from
   (Section 4.1). Well-estimated plans yield no target and run without
   any probing overhead. Smallest relation count first: probing it is
   cheapest and corrects the deepest compounding. *)
let suspicion_threshold = 1.5

let probe_target observed est plan =
  Plan.fold
    (fun acc (node : Plan.t) ->
      match node.Plan.op with
      | Plan.Scan _ -> acc
      | Plan.Join _ ->
          let estimate = est node.Plan.set in
          if Hashtbl.mem observed node.Plan.set || estimate > suspicion_threshold
          then acc
          else
            let size = Bitset.cardinal node.Plan.set in
            (match acc with
            | Some (bs, bc, _) when (bs, bc) <= (size, estimate) -> acc
            | _ -> Some (size, estimate, node)))
    None plan
  |> Option.map (fun (_, _, node) -> node)

(* Probes run against a 10% sample of the fact tables, built once per
   database and cached: a real system would keep such a sample resident,
   exactly like the table samples of Section 3.1, and pay only the
   sampled fraction of the work per observation. *)
(* domlint: safe [R1] — every access is under sample_lock below *)
let sample_cache :
    (Storage.Database.t * Cardest.Join_sample.t Util.Once.t) option ref =
  ref None

(* Guards the cache slot only: adaptive runs fan out per query across
   domains, and the expensive sample build runs outside this lock,
   serialized by the cell, so domains that arrive while it is underway
   block on the cell rather than on every later cache probe. The sample
   itself is deterministic per database, so whichever domain builds it
   first, every run sees the same one. *)
let sample_lock = Mutex.create ()

let sample_for db =
  Mutex.lock sample_lock;
  let cell =
    match !sample_cache with
    | Some (cached_db, cell) when cached_db == db -> cell
    | _ ->
        let cell = Util.Once.make (fun () -> Cardest.Join_sample.create db) in
        sample_cache := Some (db, cell);
        cell
  in
  Mutex.unlock sample_lock;
  Util.Once.force cell

let run ~db ~graph ~config ~model ~estimator ?(max_probes = 3)
    ?(projections = []) () =
  let sample = sample_for db in
  let sampled_db = Cardest.Join_sample.sampled_db sample in
  Storage.Database.set_index_config sampled_db (Storage.Database.index_config db);
  let sampled_graph = Cardest.Join_sample.rebind sample graph in

  let observed : (Bitset.t, float) Hashtbl.t = Hashtbl.create 8 in
  let injected () =
    Cardest.Injection.create ~name:"adaptive" ~fallback:estimator
      (Hashtbl.fold (fun s c acc -> (s, c) :: acc) observed [])
  in
  let optimize est =
    let search =
      Planner.Search.create ~allow_nl:config.Exec.Engine_config.allow_nl_join
        ~model ~graph ~db ~card:est.Cardest.Estimator.subset ()
    in
    fst (Planner.Dp.optimize search)
  in
  let probe_work = ref 0 in
  let probes = ref 0 in
  let observe (node : Plan.t) est =
    (* Execute the same subtree shape against the sampled database and
       scale the observed count back up. *)
    let result =
      Exec.Executor.run ~db:sampled_db ~graph:sampled_graph ~config
        ~size_est:est.Cardest.Estimator.subset node
    in
    probe_work := !probe_work + result.Exec.Executor.work;
    incr probes;
    let factor = Cardest.Join_sample.scale sample graph node.Plan.set in
    if result.Exec.Executor.timed_out then
      (* Even the sample blew the budget: record an enormous lower
         bound. *)
      Hashtbl.replace observed node.Plan.set
        (float_of_int config.Exec.Engine_config.work_limit)
    else
      let scaled = float_of_int result.Exec.Executor.rows *. factor in
      (* Zero sampled rows resolve to the sample's resolution limit. *)
      Hashtbl.replace observed node.Plan.set
        (Float.max 1.0 (if scaled > 0.0 then scaled else 0.5 *. factor))
  in
  let rec refine rounds est =
    let plan = optimize est in
    if rounds = 0 then (plan, est)
    else
      match probe_target observed est.Cardest.Estimator.subset plan with
      | None -> (plan, est)
      | Some node ->
          observe node est;
          refine (rounds - 1) (injected ())
  in
  let plan, final_est = refine max_probes estimator in
  let result =
    Exec.Executor.run ~db ~graph ~config
      ~size_est:final_est.Cardest.Estimator.subset ~projections plan
  in
  let work = result.Exec.Executor.work + !probe_work in
  {
    result =
      {
        result with
        Exec.Executor.work;
        runtime_ms = float_of_int work /. Exec.Engine_config.work_units_per_ms;
      };
    probes = !probes;
    probe_work = !probe_work;
  }
