module QG = Query.Query_graph

type query = Pipeline.query = {
  name : string;
  sql : string;
  graph : QG.t;
  projections : (int * int) list;
}

type enumerator = Registry.enumerator =
  | Exhaustive_dp
  | Quickpick of int
  | Greedy_operator_ordering
  | Simpli_squared

type plan_choice = Pipeline.plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

type t = Pipeline.t

let of_database db = Pipeline.create db

let create ?(seed = 42) ?(scale = Datagen.Imdb_gen.reference_scale) () =
  of_database (Datagen.Imdb_gen.generate ~seed ~scale ())

let db = Pipeline.db

let pipeline t = t

let set_physical_design t config =
  Storage.Database.set_index_config (Pipeline.db t) config

let sql t ?(name = "adhoc") text = Pipeline.bind t ~name text

let job t name =
  let q = Workload.Job.find name in
  sql t ~name q.Workload.Job.sql

let true_cardinalities = Pipeline.truth

let estimator = Pipeline.estimator

let optimize t ?estimator ?cost_model ?enumerator ?shape ?allow_nl query =
  Pipeline.plan t ?estimator ?cost_model ?enumerator ?shape ?allow_nl query

let explain t query choice =
  let truth = Pipeline.truth_if_computed t query in
  let annot (node : Plan.t) =
    let estimate = choice.estimator.Cardest.Estimator.subset node.Plan.set in
    match truth with
    | Some tc ->
        Printf.sprintf "  [est %.0f, true %.0f]" estimate
          (Cardest.True_card.card tc node.Plan.set)
    | None -> Printf.sprintf "  [est %.0f]" estimate
  in
  Format.asprintf "%s, estimated cost %.0f (%s estimates, %s cost model)@.%a"
    query.name choice.estimated_cost choice.estimator.Cardest.Estimator.name
    choice.cost_model.Cost.Cost_model.name
    (Plan.pp ~annot query.graph)
    choice.plan

let run t ?(engine = Exec.Engine_config.robust) ?pool ?cache query choice =
  Exec.Executor.run ~db:(Pipeline.db t) ~graph:query.graph ~config:engine
    ~size_est:choice.estimator.Cardest.Estimator.subset ?pool ?cache
    ~projections:query.projections choice.plan

let explain_analyze t ?(engine = Exec.Engine_config.robust) ?pool query choice =
  ignore (true_cardinalities t query);
  let result = run t ~engine ?pool query choice in
  let tree = explain t query choice in
  let summary =
    if result.Exec.Executor.timed_out then
      Printf.sprintf "TIMED OUT after %.0f simulated ms (%d work units)\n"
        result.Exec.Executor.runtime_ms result.Exec.Executor.work
    else
      Printf.sprintf "%d rows in %.1f simulated ms (%d work units, engine: %s)\n"
        result.Exec.Executor.rows result.Exec.Executor.runtime_ms
        result.Exec.Executor.work engine.Exec.Engine_config.name
  in
  tree ^ summary

let plan_dot t query choice =
  let truth = Pipeline.truth_if_computed t query in
  let annot (node : Plan.t) =
    let estimate = choice.estimator.Cardest.Estimator.subset node.Plan.set in
    match truth with
    | Some tc ->
        Printf.sprintf "\\nest %.0f / true %.0f" estimate
          (Cardest.True_card.card tc node.Plan.set)
    | None -> Printf.sprintf "\\nest %.0f" estimate
  in
  Plan.to_dot ~annot query.graph choice.plan
