module QG = Query.Query_graph

type query = {
  name : string;
  sql : string;
  graph : QG.t;
  projections : (int * int) list;
}

type enumerator = Exhaustive_dp | Quickpick of int | Greedy_operator_ordering

type plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;
  coarse : Dbstats.Analyze.t;
  truths : (string, Cardest.True_card.t) Hashtbl.t;
}

let of_database db =
  {
    db;
    analyze = Dbstats.Analyze.create db;
    coarse = Cardest.Systems.coarse_analyze db;
    truths = Hashtbl.create 16;
  }

let create ?(seed = 42) ?(scale = 1.0) () =
  of_database (Datagen.Imdb_gen.generate ~seed ~scale ())

let db t = t.db

let set_physical_design t config = Storage.Database.set_index_config t.db config

let sql t ?(name = "adhoc") text =
  let bound = Sqlfront.Binder.bind_sql t.db ~name text in
  {
    name;
    sql = text;
    graph = bound.Sqlfront.Binder.graph;
    projections = bound.Sqlfront.Binder.projections;
  }

let job t name =
  let q = Workload.Job.find name in
  sql t ~name q.Workload.Job.sql

let true_cardinalities t query =
  match Hashtbl.find_opt t.truths query.name with
  | Some tc -> tc
  | None ->
      let tc = Cardest.True_card.compute query.graph in
      Hashtbl.add t.truths query.name tc;
      tc

let estimator t query system =
  let ctx = { Cardest.Systems.db = t.db; graph = query.graph } in
  match system with
  | "true" -> Cardest.True_card.estimator (true_cardinalities t query)
  | "PostgreSQL (true distinct)" ->
      Cardest.Systems.postgres ~true_distinct:true t.analyze ctx
  | "DBMS B" -> Cardest.Systems.dbms_b t.coarse ctx
  | other -> Cardest.Systems.by_name t.analyze ctx other

let optimize t ?(estimator = "PostgreSQL") ?(cost_model = "PostgreSQL")
    ?(enumerator = Exhaustive_dp) ?(shape = Planner.Search.Any_shape)
    ?(allow_nl = false) query =
  let est =
    let system = estimator in
    let ctx = { Cardest.Systems.db = t.db; graph = query.graph } in
    match system with
    | "true" -> Cardest.True_card.estimator (true_cardinalities t query)
    | "PostgreSQL (true distinct)" ->
        Cardest.Systems.postgres ~true_distinct:true t.analyze ctx
    | "DBMS B" -> Cardest.Systems.dbms_b t.coarse ctx
    | other -> Cardest.Systems.by_name t.analyze ctx other
  in
  let model =
    match Cost.Cost_model.by_name cost_model with
    | Some m -> m
    | None ->
        invalid_arg (Printf.sprintf "Session.optimize: unknown cost model %s" cost_model)
  in
  let search =
    Planner.Search.create ~allow_nl ~shape ~model ~graph:query.graph ~db:t.db
      ~card:est.Cardest.Estimator.subset ()
  in
  let plan, estimated_cost =
    match enumerator with
    | Exhaustive_dp -> Planner.Dp.optimize search
    | Quickpick attempts ->
        Planner.Quickpick.best_of search (Util.Prng.create 1) ~attempts
    | Greedy_operator_ordering -> Planner.Goo.optimize search
  in
  (* Every plan an enumerator emits is statically sanitized before it
     can reach an executor or a figure. *)
  Verify.ensure_plan ~shape ~what:query.name query.graph plan;
  { plan; estimated_cost; estimator = est; cost_model = model }

let explain t query choice =
  let truth = Hashtbl.find_opt t.truths query.name in
  let annot (node : Plan.t) =
    let estimate = choice.estimator.Cardest.Estimator.subset node.Plan.set in
    match truth with
    | Some tc ->
        Printf.sprintf "  [est %.0f, true %.0f]" estimate
          (Cardest.True_card.card tc node.Plan.set)
    | None -> Printf.sprintf "  [est %.0f]" estimate
  in
  Format.asprintf "%s, estimated cost %.0f (%s estimates, %s cost model)@.%a"
    query.name choice.estimated_cost choice.estimator.Cardest.Estimator.name
    choice.cost_model.Cost.Cost_model.name
    (Plan.pp ~annot query.graph)
    choice.plan

let run t ?(engine = Exec.Engine_config.robust) query choice =
  Exec.Executor.run ~db:t.db ~graph:query.graph ~config:engine
    ~size_est:choice.estimator.Cardest.Estimator.subset
    ~projections:query.projections choice.plan

let explain_analyze t ?(engine = Exec.Engine_config.robust) query choice =
  ignore (true_cardinalities t query);
  let result = run t ~engine query choice in
  let tree = explain t query choice in
  let summary =
    if result.Exec.Executor.timed_out then
      Printf.sprintf "TIMED OUT after %.0f simulated ms (%d work units)\n"
        result.Exec.Executor.runtime_ms result.Exec.Executor.work
    else
      Printf.sprintf "%d rows in %.1f simulated ms (%d work units, engine: %s)\n"
        result.Exec.Executor.rows result.Exec.Executor.runtime_ms
        result.Exec.Executor.work engine.Exec.Engine_config.name
  in
  tree ^ summary

let plan_dot t query choice =
  let truth = Hashtbl.find_opt t.truths query.name in
  let annot (node : Plan.t) =
    let estimate = choice.estimator.Cardest.Estimator.subset node.Plan.set in
    match truth with
    | Some tc ->
        Printf.sprintf "\\nest %.0f / true %.0f" estimate
          (Cardest.True_card.card tc node.Plan.set)
    | None -> Printf.sprintf "\\nest %.0f" estimate
  in
  Plan.to_dot ~annot query.graph choice.plan
