(** The library's front door: a database session that ties together the
    whole optimizer architecture of the paper's Figure 1 — cardinality
    estimation, cost model, and plan-space enumeration — over the
    synthetic IMDB database, plus execution and cardinality injection.

    A session is a thin veneer over {!Pipeline}: every estimator and
    plan request goes through the component registry ({!Registry}) and
    the memoizing plan cache, so repeated optimizations of the same
    (query, estimator, cost model, shape) combination are free.

    {[
      let s = Session.create ~scale:0.2 () in
      let q = Session.job s "13d" in
      let choice = Session.optimize s q in
      print_string (Session.explain s q choice);
      let result = Session.run s q choice in
      Printf.printf "%d rows in %.1f ms\n"
        result.Exec.Executor.rows result.Exec.Executor.runtime_ms
    ]} *)

type t = Pipeline.t

type query = Pipeline.query = {
  name : string;
  sql : string;
  graph : Query.Query_graph.t;
  projections : (int * int) list;
}

type enumerator = Registry.enumerator =
  | Exhaustive_dp
  | Quickpick of int
  | Greedy_operator_ordering
  | Simpli_squared

type plan_choice = Pipeline.plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

val create : ?seed:int -> ?scale:float -> unit -> t
(** Generate the IMDB-like database and ANALYZE it. Defaults: seed 42,
    scale 1.0 (~325 k rows). *)

val of_database : Storage.Database.t -> t
(** Wrap an existing database (e.g. the TPC-H generator's). *)

val db : t -> Storage.Database.t

val pipeline : t -> Pipeline.t
(** The underlying pipeline (for cache statistics). *)

val set_physical_design : t -> Storage.Database.index_config -> unit
(** Choose between the paper's no-index / PK / PK+FK designs. Default:
    PK only. *)

val sql : t -> ?name:string -> string -> query
(** Parse and bind a query in the JOB SQL subset. Memoized on
    (name, text) through {!Pipeline.bind}, so a serving loop replaying
    the same statements binds each distinct one once. *)

val job : t -> string -> query
(** One of the 113 benchmark queries, by name (e.g. ["16d"]). *)

val estimator : t -> query -> string -> Cardest.Estimator.t
(** By registry name ({!Registry.estimators}): "PostgreSQL", "DBMS A",
    "DBMS B", "DBMS C", "HyPer", "PostgreSQL (true distinct)" and
    "true" (the exact oracle, computed on demand). Instances are cached
    per (query, system). Raises [Invalid_argument] with a registry
    error naming the valid alternatives on unknown names. *)

val true_cardinalities : t -> query -> Cardest.True_card.t
(** Exact cardinalities of every connected subexpression (cached). *)

val optimize :
  t ->
  ?estimator:string ->
  ?cost_model:string ->
  ?enumerator:enumerator ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_nl:bool ->
  query ->
  plan_choice
(** Defaults: PostgreSQL estimates, the PostgreSQL-style cost model,
    exhaustive DP, bushy trees, no (non-index) nested-loop joins.
    Results are memoized in the session's plan cache, keyed by every
    parameter plus the current index configuration. *)

val explain : t -> query -> plan_choice -> string
(** Operator tree annotated with estimated and (if already computed)
    true cardinalities. *)

val run :
  t ->
  ?engine:Exec.Engine_config.t ->
  ?pool:Util.Domain_pool.t ->
  ?cache:Exec.Join_cache.t ->
  query ->
  plan_choice ->
  Exec.Executor.result
(** Execute under an engine configuration (default: the robust engine —
    no NL joins, resizing hash tables). [pool] turns on morsel-driven
    intra-query parallelism; [cache] turns on cross-query join-build
    recycling; results are byte-identical with or without either (see
    {!Exec.Executor.run}). *)

val explain_analyze :
  t ->
  ?engine:Exec.Engine_config.t ->
  ?pool:Util.Domain_pool.t ->
  query ->
  plan_choice ->
  string
(** EXPLAIN ANALYZE: execute, then render the plan with estimated and
    exact cardinalities per operator plus a runtime summary. Computes the
    exact cardinalities on first use. *)

val plan_dot : t -> query -> plan_choice -> string
(** GraphViz source for the chosen plan. *)
