(** The cache-aware planning pipeline: the one entry point through which
    every consumer — [Session], the experiment harness, the CLIs and the
    benchmark driver — builds estimators and plans.

    The paper's evaluation is a matrix sweep (113 queries x estimators x
    cost models x enumerators x physical designs), and many cells of
    that matrix request the very same plan: every slowdown measurement
    needs the true-cardinality baseline plan, every figure re-plans the
    queries of the previous one. The pipeline memoizes

    - exact cardinalities per query,
    - estimator instances per (query, system) — so their internal
      subset memo tables are shared across experiments, and
    - plan choices per (query, estimator, cost model, enumerator,
      shape, allow_nl, allow_hash, seed, index configuration),

    so a full regeneration of all paper results computes each distinct
    plan exactly once. Hit/miss/enumeration counters are exposed via
    {!stats} and surfaced by [jobench experiment --stats] and
    [bench/main.exe].

    The pipeline is domain-safe: the three memo tables are sharded
    ({!Util.Shard_map}) and hold {!Util.Once} cells, so concurrent
    requests for the same key compute it once (the requester that
    created the cell is counted as the miss) while requests for
    distinct keys proceed in parallel without contending on a global
    lock; counters are atomic. Shared estimator instances serialize
    their internal memo tables on a per-instance mutex.

    Component names are resolved through {!Registry} — unknown names
    raise [Invalid_argument] with the structured registry error. *)

type query = {
  name : string;
  sql : string;
  graph : Query.Query_graph.t;
  projections : (int * int) list;
}

type plan_choice = {
  plan : Plan.t;
  estimated_cost : float;
  estimator : Cardest.Estimator.t;
  cost_model : Cost.Cost_model.t;
}

type stats = {
  plan_hits : int;  (** Plan-cache lookups served from memory. *)
  plan_misses : int;  (** Lookups that had to enumerate. *)
  plans_enumerated : int;
      (** Actual enumerator invocations (DP / GOO / Quickpick runs). *)
  estimators_built : int;
  estimators_reused : int;
  estimator_probes : int;
      (** Subset-cardinality probes answered by cached estimators. *)
  bind_hits : int;  (** Parse-and-bind lookups served from memory. *)
  bind_misses : int;
}
(** An immutable snapshot of the pipeline's atomic counters. *)

type counters = {
  c_plan_hits : int Atomic.t;
  c_plan_misses : int Atomic.t;
  c_plans_enumerated : int Atomic.t;
  c_estimators_built : int Atomic.t;
  c_estimators_reused : int Atomic.t;
  c_estimator_probes : int Atomic.t;
  c_bind_hits : int Atomic.t;
  c_bind_misses : int Atomic.t;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;  (** Default-settings ANALYZE. *)
  coarse : Dbstats.Analyze.t;  (** DBMS B's degraded statistics. *)
  binds : (string * string, query Util.Once.t) Util.Shard_map.t;
  truths : (string * string, Cardest.True_card.t Util.Once.t) Util.Shard_map.t;
  estimators :
    (string * string * string, Cardest.Estimator.t Util.Once.t) Util.Shard_map.t;
  plans : (plan_key, (Plan.t * float) Util.Once.t) Util.Shard_map.t;
  counters : counters;
}

and plan_key = {
  k_query : string * string;  (** Query name and SQL text. *)
  k_estimator : string;
  k_model : string;
  k_enumerator : string;  (** {!Registry.enumerator_name}. *)
  k_shape : Planner.Search.shape_limit;
  k_allow_nl : bool;
  k_allow_hash : bool;
  k_seed : int;  (** PRNG seed; 0 for deterministic enumerators. *)
  k_indexes : Storage.Database.index_config;
}

val create : Storage.Database.t -> t
(** Wrap a database: sets up the ANALYZE instances (default and DBMS B's
    coarse configuration) and starts with empty caches. Statistics are
    computed lazily per table; see {!warm_statistics}. *)

val db : t -> Storage.Database.t

val stats : t -> stats

val reset_stats : t -> unit

val stats_summary : t -> string
(** One line, e.g. ["plan cache: 310 hits, 113 misses (113 plans
    enumerated) | estimators: 5 built, 108 reused, 201839 probes |
    binds: 452 hits, 113 misses"]. *)

val bind : t -> name:string -> string -> query
(** Parse and bind a JOB-dialect statement, memoized on (name, text).
    Binding is pure given the schema, so the cached [query] (and its
    query graph) is shared across domains; a serving loop replaying the
    same statements binds each distinct one once. Parse/bind failures
    are also memoized and re-raised. *)

val warm_statistics : t -> query list -> unit
(** Force both ANALYZE instances over the given workload by replaying
    the serial demand order (Table 1's base estimates, then Figure 3's
    connected-subset probes). ANALYZE samples tables lazily from a
    shared per-instance PRNG, so table statistics depend on first-touch
    order; warming pins that order before any parallel fan-out, making
    every downstream estimate independent of domain scheduling. Must be
    called before statistics-based estimators are probed from more than
    one domain. *)

val truth : t -> query -> Cardest.True_card.t
(** Exact cardinalities of every connected subexpression (cached per
    query). *)

val truth_cell : t -> query -> Cardest.True_card.t Util.Once.t
(** The query's memo cell: a domain-safe deferred computation
    ([Stdlib.Lazy] cannot be forced concurrently). *)

val truth_if_computed : t -> query -> Cardest.True_card.t option
(** [Some] only when {!truth} has already been forced for this query. *)

val estimator : t -> query -> string -> Cardest.Estimator.t
(** Estimator by registry name; instances (and their internal memo
    tables) are cached per (query, system). Raises [Invalid_argument]
    with a registry error on unknown names. *)

val plan_with :
  t ->
  query ->
  est:Cardest.Estimator.t ->
  model:Cost.Cost_model.t ->
  ?enumerator:Registry.enumerator ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_nl:bool ->
  ?allow_hash:bool ->
  ?seed:int ->
  unit ->
  Plan.t * float
(** Optimize with explicit component values. The cache key uses
    [est.name] and [model.name]; callers constructing ad-hoc estimators
    must give them fresh names. Every freshly enumerated plan passes the
    structural sanitizer ({!Verify.ensure_plan}) before it is cached.
    Defaults: exhaustive DP, any shape, no NL joins, hash joins allowed,
    seed 1. *)

val plan :
  t ->
  ?estimator:string ->
  ?cost_model:string ->
  ?enumerator:Registry.enumerator ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_nl:bool ->
  ?allow_hash:bool ->
  ?seed:int ->
  query ->
  plan_choice
(** {!plan_with} with components resolved (and cached) by registry
    name. Defaults: PostgreSQL estimates, the PostgreSQL cost model. *)
