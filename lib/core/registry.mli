(** The typed component registry: the single source of truth for every
    pluggable optimizer component — cardinality estimators, cost models,
    plan enumerators, execution-engine configurations, and physical
    (index) designs.

    Each component is registered exactly once with its canonical name, a
    one-line doc string, and a typed value (or builder). Lookup either
    returns the typed value or a structured {!error} naming the unknown
    input and listing every valid alternative — replacing the bare
    [failwith]/[Not_found] string dispatch that used to be duplicated
    across [Session], [Harness], [bin/jobench.ml] and [bench/main.ml].

    The generic ['a t] is also the backbone for registries owned by
    other layers (e.g. the experiment catalog in [lib/experiments]). *)

type error = {
  kind : string;  (** What was being looked up, e.g. ["estimator"]. *)
  input : string;  (** The name that failed to resolve. *)
  valid : string list;  (** Every canonical name the registry accepts. *)
}

val error_to_string : error -> string
(** ["unknown <kind> \"<input>\" (valid: a, b, c)"]. *)

type 'a entry = { name : string; doc : string; value : 'a }

type 'a t
(** A registry of named, documented components of one kind. *)

val make : kind:string -> ?parse:(string -> 'a option) -> 'a entry list -> 'a t
(** Build a registry. [parse] handles parameterized names (e.g.
    ["quickpick:100"]) after exact-name lookup fails. Raises
    [Invalid_argument] if two entries share a name. *)

val kind : 'a t -> string

val names : 'a t -> string list
(** Canonical names, in registration order. *)

val entries : 'a t -> 'a entry list

val find : 'a t -> string -> ('a, error) result

val find_exn : 'a t -> string -> 'a
(** Raises [Invalid_argument] with {!error_to_string} on unknown names. *)

(* ------------------------------------------------------------------ *)
(* The optimizer component registries                                  *)

type enumerator =
  | Exhaustive_dp
  | Quickpick of int
  | Greedy_operator_ordering
  | Simpli_squared
(** Plan-space enumeration strategies (Section 6 of the paper), plus the
    Simpli-Squared no-estimates baseline (Datta et al., PAPERS.md). *)

val enumerator_name : enumerator -> string
(** Canonical name, usable as a cache key: ["dp"], ["goo"],
    ["quickpick:N"], ["simpli"]. *)

val verify_enumerator : enumerator -> Verify.enumerator
(** The sanitizer's view of the same component. *)

type estimator_ctx = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;  (** Default-settings ANALYZE. *)
  coarse : Dbstats.Analyze.t;  (** DBMS B's degraded statistics. *)
  graph : Query.Query_graph.t;
  truth : Cardest.True_card.t Util.Once.t;
      (** Exact cardinalities, forced only by the ["true"] oracle (a
          domain-safe {!Util.Once} cell, not [Lazy]). *)
  feedback : Reopt.Feedback.t option;
      (** Execution-time cardinality feedback for the ["feedback"]
          overlay estimator; [None] (an empty store) everywhere the
          re-optimization driver is not supplying one. *)
}
(** Everything an estimator builder may need; shared by [Session] and
    [Harness] so the registry is the only dispatch point. *)

val estimators : (estimator_ctx -> Cardest.Estimator.t) t
(** The paper's five systems plus ["PostgreSQL (true distinct)"]
    (Figure 5), ["true"] (the exact oracle), and ["feedback"] (the
    re-optimization overlay; with no store attached it behaves exactly
    like ["PostgreSQL"]). *)

val cost_models : Cost.Cost_model.t t
(** ["PostgreSQL"], ["tuned"], ["Cmm"]. *)

val enumerators : enumerator t
(** ["dp"], ["goo"], and parameterized ["quickpick:N"]. *)

val engines : Exec.Engine_config.t t
(** ["default"], ["no-nl"], ["robust"] (Figure 6's variants). *)

val index_configs : Storage.Database.index_config t
(** ["none"], ["pk"], ["pkfk"] (the paper's physical designs). *)
