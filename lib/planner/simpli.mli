(** Simpli-Squared-style enumeration (Datta et al., PAPERS.md): a join
    order computed from raw base-table row counts alone — no cardinality
    estimation at all. Greedy left-deep, smallest connected relation
    next; physical operators still chosen by the cost model. The
    baseline for "how far do you get with no estimates whatsoever?" in
    the re-optimization experiment. *)

val optimize : Search.t -> Plan.t * float
(** Raises [Invalid_argument] on a disconnected graph or when no legal
    join method exists for a forced join. *)
