module Bitset = Util.Bitset
module QG = Query.Query_graph

let optimize (t : Search.t) =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let card = t.Search.env.Cost.Cost_model.card in
  let n = QG.n_relations graph in
  let forest = ref (List.init n (fun r -> Search.scan_entry t r)) in
  let connected (a : Plan.t * float) (b : Plan.t * float) =
    not (Bitset.disjoint (QG.neighbors graph (fst a).Plan.set) (fst b).Plan.set)
  in
  while List.length !forest > 1 do
    (* Choose the connected pair with the smallest estimated output. *)
    let best = ref None in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              if connected a b then begin
                let out = card (Bitset.union (fst a).Plan.set (fst b).Plan.set) in
                match !best with
                | Some (_, _, bo) when bo <= out -> ()
                | _ -> best := Some (a, b, out)
              end)
            rest;
          pairs rest
    in
    pairs !forest;
    match !best with
    | None -> invalid_arg "Goo.optimize: graph not connected"
    | Some (a, b, _) -> (
        match Search.best_join_any_orientation t a b with
        | None -> invalid_arg "Goo.optimize: no legal join method"
        | Some entry ->
            forest :=
              entry
              :: List.filter (fun (p, _) -> p != fst a && p != fst b) !forest)
  done;
  match !forest with
  | [ entry ] -> entry
  | rest ->
      invalid_arg
        (Printf.sprintf
           "Goo.optimize: query %s left %d unjoined components (%s) — the \
            join graph is not connected"
           (QG.name graph) (List.length rest)
           (String.concat ", "
              (List.map
                 (fun (p, _) -> Format.asprintf "%a" Bitset.pp p.Plan.set)
                 rest)))
