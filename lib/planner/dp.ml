module Bitset = Util.Bitset
module QG = Query.Query_graph

(* The DP memo keyed by relation subsets with Bitset's own (int) hash,
   rather than the polymorphic one — this table sits on the innermost
   enumeration loop. *)
module Subset_table = Hashtbl.Make (Bitset)

(* The one DP over connected subsets, optionally seeded with
   already-materialized fragments (re-optimization restarts). A seed's
   subgraph enters the table atomically: no singleton inside it is
   seeded, so any subset that overlaps a fragment without containing it
   whole has no constructible split and never enters the table — the
   fragment behaves exactly like a base relation whose scan plan is the
   fragment's plan at the seed's (sunk) cost. *)
let build_table_seeded (t : Search.t) ~seeds =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let n = QG.n_relations graph in
  let table : (Plan.t * float) Subset_table.t = Subset_table.create 1024 in
  let covered =
    List.fold_left
      (fun acc ((p : Plan.t), _) ->
        if not (Bitset.disjoint acc p.Plan.set) then
          invalid_arg "Dp.build_table_seeded: overlapping seed fragments";
        Bitset.union acc p.Plan.set)
      Bitset.empty seeds
  in
  List.iter
    (fun ((p : Plan.t), cost) -> Subset_table.add table p.Plan.set (p, cost))
    seeds;
  for r = 0 to n - 1 do
    if not (Bitset.mem r covered) then
      Subset_table.add table (Bitset.singleton r) (Search.scan_entry t r)
  done;
  let subsets = QG.connected_subsets graph in
  Array.iter
    (fun s ->
      if Bitset.cardinal s >= 2 && not (Subset_table.mem table s) then begin
        let best = ref None in
        Bitset.subsets_iter s (fun s1 ->
            let s2 = Bitset.diff s s1 in
            match
              (Subset_table.find_opt table s1, Subset_table.find_opt table s2)
            with
            | Some outer, Some inner ->
                (* Both connected; require at least one join edge across. *)
                if not (Bitset.disjoint (QG.neighbors graph s1) s2) then begin
                  match Search.best_join t ~outer ~inner with
                  | Some ((_, cost) as cand) -> (
                      match !best with
                      | Some (_, bc) when bc <= cost -> ()
                      | _ -> best := Some cand)
                  | None -> ()
                end
            | _ -> ())
          ;
        match !best with
        | Some entry -> Subset_table.add table s entry
        | None -> ()
      end)
    subsets;
  table

let build_table t = build_table_seeded t ~seeds:[]

let optimize_seeded t ~seeds =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let table = build_table_seeded t ~seeds in
  match Subset_table.find_opt table (QG.full_set graph) with
  | Some entry -> entry
  | None ->
      invalid_arg
        (Printf.sprintf "Dp.optimize: no plan found for query %s" (QG.name graph))

let optimize t = optimize_seeded t ~seeds:[]

let optimize_all_subsets = build_table
