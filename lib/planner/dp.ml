module Bitset = Util.Bitset
module QG = Query.Query_graph

(* The DP memo keyed by relation subsets with Bitset's own (int) hash,
   rather than the polymorphic one — this table sits on the innermost
   enumeration loop. *)
module Subset_table = Hashtbl.Make (Bitset)

let build_table (t : Search.t) =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let n = QG.n_relations graph in
  let table : (Plan.t * float) Subset_table.t = Subset_table.create 1024 in
  for r = 0 to n - 1 do
    Subset_table.add table (Bitset.singleton r) (Search.scan_entry t r)
  done;
  let subsets = QG.connected_subsets graph in
  Array.iter
    (fun s ->
      if Bitset.cardinal s >= 2 then begin
        let best = ref None in
        Bitset.subsets_iter s (fun s1 ->
            let s2 = Bitset.diff s s1 in
            match
              (Subset_table.find_opt table s1, Subset_table.find_opt table s2)
            with
            | Some outer, Some inner ->
                (* Both connected; require at least one join edge across. *)
                if not (Bitset.disjoint (QG.neighbors graph s1) s2) then begin
                  match Search.best_join t ~outer ~inner with
                  | Some ((_, cost) as cand) -> (
                      match !best with
                      | Some (_, bc) when bc <= cost -> ()
                      | _ -> best := Some cand)
                  | None -> ()
                end
            | _ -> ())
          ;
        match !best with
        | Some entry -> Subset_table.add table s entry
        | None -> ()
      end)
    subsets;
  table

let optimize t =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let table = build_table t in
  match Subset_table.find_opt table (QG.full_set graph) with
  | Some entry -> entry
  | None ->
      invalid_arg
        (Printf.sprintf "Dp.optimize: no plan found for query %s" (QG.name graph))

let optimize_all_subsets = build_table
