(** Exhaustive join-order optimization by dynamic programming over
    connected subgraphs — bushy trees, no cross products, exactly
    PostgreSQL's enumeration (Section 2.3 of the paper). Shape limits in
    the search context turn the same machinery into the left-deep /
    right-deep / zig-zag enumerators of Section 6.2. *)

module Subset_table : Hashtbl.S with type key = Util.Bitset.t
(** The DP memo table type: subsets hashed with {!Util.Bitset.hash}
    instead of the polymorphic hash. *)

val optimize : Search.t -> Plan.t * float
(** Optimal plan and its estimated cost for the full relation set.
    Raises [Invalid_argument] if no plan exists (cannot happen for
    connected graphs with hash joins enabled). *)

val optimize_seeded :
  Search.t -> seeds:(Plan.t * float) list -> Plan.t * float
(** Re-entrant enumeration for mid-query re-optimization: like
    {!optimize}, but the DP table is pre-seeded with already-executed
    plan fragments at their (sunk) costs. Each seed's relation subgraph
    behaves like a base relation — it can only appear atomically in the
    result, because none of its member singletons is enumerable on its
    own. Seeds must be pairwise disjoint ([Invalid_argument] otherwise);
    [optimize] is [optimize_seeded ~seeds:\[\]]. *)

val optimize_all_subsets : Search.t -> (Plan.t * float) Subset_table.t
(** The full DP table, for experiments that inspect sub-plans. *)
