(* A Simpli-Squared-style enumerator (Datta et al.): choose the join
   order from raw base-table row counts only — no cardinality estimates,
   no per-predicate statistics. The order is left-deep, greedily
   appending the smallest not-yet-joined relation that is connected to
   the current prefix (lowest relation index breaks ties), starting from
   the smallest table overall. Physical operators are still picked by
   the cost model through {!Search.best_join}, mirroring the original
   setup where the simplified optimizer hands its join order to the
   underlying engine. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let optimize (t : Search.t) =
  let graph = t.Search.env.Cost.Cost_model.graph in
  let n = QG.n_relations graph in
  if n = 0 then invalid_arg "Simpli.optimize: empty query graph";
  let rows r =
    Storage.Table.row_count (QG.relation graph r).QG.table
  in
  (* Smaller table wins; the index tie-break keeps the order (and with
     it every downstream experiment) deterministic. *)
  let better a b = rows a < rows b || (rows a = rows b && a < b) in
  let first = ref 0 in
  for r = 1 to n - 1 do
    if better r !first then first := r
  done;
  let joined = ref (Bitset.singleton !first) in
  let entry = ref (Search.scan_entry t !first) in
  for _ = 2 to n do
    let frontier = QG.neighbors graph !joined in
    let next = ref (-1) in
    for r = 0 to n - 1 do
      if Bitset.mem r frontier && (!next < 0 || better r !next) then next := r
    done;
    if !next < 0 then invalid_arg "Simpli.optimize: graph not connected";
    (match
       Search.best_join t ~outer:!entry ~inner:(Search.scan_entry t !next)
     with
    | Some e -> entry := e
    | None -> invalid_arg "Simpli.optimize: no legal join method");
    joined := Bitset.add !next !joined
  done;
  !entry
