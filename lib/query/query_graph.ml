module Bitset = Util.Bitset

type relation = {
  idx : int;
  alias : string;
  table : Storage.Table.t;
  preds : Predicate.t;
}

type edge = {
  left : int;
  left_col : int;
  right : int;
  right_col : int;
  pk_side : [ `Left | `Right ] option;
}

type t = {
  name : string;
  relations : relation array;
  edges : edge list;
  adjacency : Bitset.t array;
  by_alias : (string, int) Hashtbl.t;
}

let create ~name relations edges =
  let n = Array.length relations in
  if n = 0 then invalid_arg "Query_graph.create: no relations";
  if n > 62 then invalid_arg "Query_graph.create: too many relations";
  Array.iteri
    (fun i r ->
      if r.idx <> i then invalid_arg "Query_graph.create: relation idx mismatch")
    relations;
  let adjacency = Array.make n Bitset.empty in
  List.iter
    (fun e ->
      if e.left < 0 || e.left >= n || e.right < 0 || e.right >= n || e.left = e.right
      then invalid_arg "Query_graph.create: bad edge endpoints";
      adjacency.(e.left) <- Bitset.add e.right adjacency.(e.left);
      adjacency.(e.right) <- Bitset.add e.left adjacency.(e.right))
    edges;
  let by_alias = Hashtbl.create n in
  Array.iter
    (fun r ->
      if Hashtbl.mem by_alias r.alias then
        invalid_arg (Printf.sprintf "Query_graph.create: duplicate alias %s" r.alias);
      Hashtbl.add by_alias r.alias r.idx)
    relations;
  let graph = { name; relations; edges; adjacency; by_alias } in
  (* Reject disconnected graphs: they would force cross products. *)
  let reached = ref (Bitset.singleton 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    Bitset.iter
      (fun r ->
        let grown = Bitset.union !reached adjacency.(r) in
        if grown <> !reached then begin
          reached := grown;
          changed := true
        end)
      !reached
  done;
  if !reached <> Bitset.full n then
    invalid_arg (Printf.sprintf "Query_graph.create: query %s is disconnected" name);
  graph

let name t = t.name
let n_relations t = Array.length t.relations
let relations t = t.relations
let relation t i = t.relations.(i)
let edges t = t.edges
let n_edges t = List.length t.edges

let relation_by_alias t alias =
  Option.map (fun i -> t.relations.(i)) (Hashtbl.find_opt t.by_alias alias)

let adjacency t i = t.adjacency.(i)

let neighbors t s =
  Bitset.diff (Bitset.fold (fun r acc -> Bitset.union acc t.adjacency.(r)) s Bitset.empty) s

let is_connected t s =
  if Bitset.is_empty s then false
  else begin
    let frontier = ref (Bitset.lowest_bit s) in
    let changed = ref true in
    while !changed do
      changed := false;
      let grown =
        Bitset.fold
          (fun r acc -> Bitset.union acc (Bitset.inter t.adjacency.(r) s))
          !frontier !frontier
      in
      if grown <> !frontier then begin
        frontier := grown;
        changed := true
      end
    done;
    !frontier = s
  end

let edges_between t s1 s2 =
  assert (Bitset.disjoint s1 s2);
  List.filter_map
    (fun e ->
      if Bitset.mem e.left s1 && Bitset.mem e.right s2 then Some e
      else if Bitset.mem e.left s2 && Bitset.mem e.right s1 then
        Some
          {
            left = e.right;
            left_col = e.right_col;
            right = e.left;
            right_col = e.left_col;
            pk_side =
              (match e.pk_side with
              | Some `Left -> Some `Right
              | Some `Right -> Some `Left
              | None -> None);
          }
      else None)
    t.edges

let connected_subsets t =
  let n = n_relations t in
  let out = ref [] in
  for mask = 1 to Bitset.full n do
    if is_connected t mask then out := mask :: !out
  done;
  let arr = Array.of_list (List.rev !out) in
  Array.sort
    (fun a b ->
      let c = compare (Bitset.cardinal a) (Bitset.cardinal b) in
      if c <> 0 then c else compare a b)
    arr;
  arr

let join_columns t i =
  let cols =
    List.concat_map
      (fun e ->
        (if e.left = i then [ e.left_col ] else [])
        @ if e.right = i then [ e.right_col ] else [])
      t.edges
  in
  List.sort_uniq compare cols

let full_set t = Bitset.full (n_relations t)

let pp fmt t =
  Format.fprintf fmt "query %s (%d relations, %d join predicates)@." t.name
    (n_relations t) (n_edges t);
  Array.iter
    (fun r ->
      Format.fprintf fmt "  %s AS %s WHERE %a@."
        (Storage.Table.name r.table)
        r.alias
        (Predicate.pp r.table)
        r.preds)
    t.relations;
  List.iter
    (fun e ->
      let rel i = t.relations.(i) in
      let col r c = Storage.Column.name (Storage.Table.column (rel r).table c) in
      Format.fprintf fmt "  %s.%s = %s.%s%s@." (rel e.left).alias
        (col e.left e.left_col) (rel e.right).alias
        (col e.right e.right_col)
        (match e.pk_side with
        | Some `Left -> "  [PK left]"
        | Some `Right -> "  [PK right]"
        | None -> "  [FK/FK]"))
    t.edges
