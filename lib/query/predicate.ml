type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | Cmp of { col : int; op : cmp; code : int }
  | In of { col : int; codes : int list }
  | Str_cmp of { col : int; op : cmp; value : string }
  | Like of { col : int; pattern : string; negated : bool }
  | Is_null of { col : int; negated : bool }
  | Between of { col : int; lo : int; hi : int }
  | Or of atom list
  | Const_false

type t = atom list

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec atom_column = function
  | Cmp { col; _ } | In { col; _ } | Like { col; _ } | Is_null { col; _ }
  | Between { col; _ } | Str_cmp { col; _ } ->
      Some col
  | Const_false -> None
  | Or atoms -> (
      match List.filter_map atom_column atoms with
      | [] -> None
      | c :: rest -> if List.for_all (Int.equal c) rest then Some c else None)

let eval_cmp op lhs rhs =
  match op with
  | Eq -> lhs = rhs
  | Ne -> lhs <> rhs
  | Lt -> lhs < rhs
  | Le -> lhs <= rhs
  | Gt -> lhs > rhs
  | Ge -> lhs >= rhs

let rec compile_atom table atom =
  let read col = Storage.Column.reader (Storage.Table.column table col) in
  let null = Storage.Value.null_code in
  match atom with
  | Const_false -> fun _ -> false
  | Cmp { col; op; code } ->
      let d = read col in
      fun row ->
        let v = d row in
        v <> null && eval_cmp op v code
  | In { col; codes } ->
      let d = read col in
      let set = Hashtbl.create (List.length codes) in
      List.iter (fun c -> Hashtbl.replace set c ()) codes;
      fun row ->
        let v = d row in
        v <> null && Hashtbl.mem set v
  | Between { col; lo; hi } ->
      let d = read col in
      fun row ->
        let v = d row in
        v <> null && v >= lo && v <= hi
  | Is_null { col; negated } ->
      let d = read col in
      fun row -> if negated then d row <> null else d row = null
  | Str_cmp { col; op; value } -> (
      let column = Storage.Table.column table col in
      let d = Storage.Column.reader column in
      match Storage.Column.dict column with
      | None -> invalid_arg "Predicate.compile: string comparison on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s ->
                eval_cmp op (String.compare s value) 0)
          in
          fun row ->
            let v = d row in
            v <> null && bitmap.(v))
  | Like { col; pattern; negated } -> (
      let column = Storage.Table.column table col in
      let d = Storage.Column.reader column in
      match Storage.Column.dict column with
      | None -> invalid_arg "Predicate.compile: LIKE on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s -> Like_match.matches ~pattern s)
          in
          fun row ->
            let v = d row in
            v <> null && bitmap.(v) <> negated)
  | Or atoms ->
      let fns = List.map (compile_atom table) atoms in
      fun row -> List.exists (fun f -> f row) fns

let compile table preds =
  let fns = List.map (compile_atom table) preds in
  match fns with
  | [] -> fun _ -> true
  | [ f ] -> f
  | fns -> fun row -> List.for_all (fun f -> f row) fns

(* ------------------------------------------------------------------ *)
(* Selection vectors                                                   *)

(* A refiner compacts a selection vector in place: rows [sel.(0..n-1)]
   come in, the surviving prefix goes out. Each atom compiles to one
   refiner with the comparison specialized per operator, so the hot
   loop tests a plain int against a constant — no closure dispatch and
   no allocation per row.

   Compressed columns are decoded late: the selector decodes each
   referenced non-flat column for the current chunk into a per-source
   scratch buffer before running the refiners, so the inner loops always
   index a plain [int array]. Flat columns keep a zero-copy view of the
   whole column ([off = 0]). *)
type source = {
  src_col : Storage.Column.t;
  mutable arr : int array; (* row [r]'s code is [arr.(r - off)] *)
  mutable off : int;
  src_flat : bool;
}

(* One compaction loop per operator; [keep] must be a simple value
   test so the compiler can inline it at each instantiation site. The
   source's view is re-read per chunk: the selector re-points
   [arr]/[off] before the refiners run. *)
let compact src keep sel n =
  let a = src.arr and off = src.off in
  let m = ref 0 in
  for k = 0 to n - 1 do
    let row = Array.unsafe_get sel k in
    let v = Array.unsafe_get a (row - off) in
    if keep v then begin
      Array.unsafe_set sel !m row;
      incr m
    end
  done;
  !m

(* A kernel is an atom's refiner with the expensive precomputation
   (LIKE / string-compare dictionary bitmaps, IN sets) hoisted out of
   instantiation. Everything a kernel captures is read-only after
   construction, so one kernel serves any number of selector instances
   — including instances running on different domains (morsel scans
   instantiate one selector per worker). *)
let kernel_of_atom table atom =
  let null = Storage.Value.null_code in
  match atom with
  | Cmp { col; op; code } -> (
      fun source_for ->
        let d = source_for col in
        match op with
        | Eq -> compact d (fun v -> v <> null && v = code)
        | Ne -> compact d (fun v -> v <> null && v <> code)
        | Lt -> compact d (fun v -> v <> null && v < code)
        | Le -> compact d (fun v -> v <> null && v <= code)
        | Gt -> compact d (fun v -> v <> null && v > code)
        | Ge -> compact d (fun v -> v <> null && v >= code))
  | Between { col; lo; hi } ->
      fun source_for ->
        compact (source_for col) (fun v -> v <> null && v >= lo && v <= hi)
  | In { col; codes } ->
      let set = Hashtbl.create (List.length codes) in
      List.iter (fun c -> Hashtbl.replace set c ()) codes;
      fun source_for ->
        compact (source_for col) (fun v -> v <> null && Hashtbl.mem set v)
  | Is_null { col; negated } ->
      fun source_for ->
        let d = source_for col in
        if negated then compact d (fun v -> v <> null)
        else compact d (fun v -> v = null)
  | Str_cmp { col; op; value } -> (
      let column = Storage.Table.column table col in
      match Storage.Column.dict column with
      | None ->
          invalid_arg "Predicate.compile: string comparison on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s ->
                eval_cmp op (String.compare s value) 0)
          in
          fun source_for ->
            compact (source_for col) (fun v -> v <> null && bitmap.(v)))
  | Like { col; pattern; negated } -> (
      let column = Storage.Table.column table col in
      match Storage.Column.dict column with
      | None -> invalid_arg "Predicate.compile: LIKE on an integer column"
      | Some dict ->
          let bitmap =
            Storage.Dict.matching_codes dict (fun s ->
                Like_match.matches ~pattern s)
          in
          fun source_for ->
            compact (source_for col) (fun v -> v <> null && bitmap.(v) <> negated))
  | (Or _ | Const_false) as atom ->
      (* Row-predicate fallback. The compiled closure's only mutable
         state is the RLE reader's run cache, which is validated before
         use — safe (if cache-thrashy) to share across domains. *)
      let f = compile_atom table atom in
      fun _source_for sel n ->
        let m = ref 0 in
        for k = 0 to n - 1 do
          let row = Array.unsafe_get sel k in
          if f row then begin
            Array.unsafe_set sel !m row;
            incr m
          end
        done;
        !m

let selector_factory table preds =
  let kernels = List.map (kernel_of_atom table) preds in
  fun () ->
    (* Per-instance mutable state: the decode scratch the refiners read
       through. This is why a selector instance belongs to exactly one
       domain while the factory itself is freely shared. *)
    let sources = ref [] in
    let source_for col =
      match List.assoc_opt col !sources with
      | Some s -> s
      | None ->
          let column = Storage.Table.column table col in
          let s =
            match Storage.Column.flat_view column with
            | Some a -> { src_col = column; arr = a; off = 0; src_flat = true }
            | None -> { src_col = column; arr = [||]; off = 0; src_flat = false }
          in
          sources := (col, s) :: !sources;
          s
    in
    let refiners = List.map (fun kernel -> kernel source_for) kernels in
    let to_decode =
      List.filter_map
        (fun (_, s) -> if s.src_flat then None else Some s)
        !sources
    in
    fun sel lo hi ->
      let n = hi - lo in
      List.iter
        (fun s ->
          if Array.length s.arr < n then s.arr <- Array.make (max n 4096) 0;
          Storage.Column.decode_into s.src_col ~row_start:lo ~len:n s.arr;
          s.off <- lo)
        to_decode;
      for k = 0 to n - 1 do
        Array.unsafe_set sel k (lo + k)
      done;
      List.fold_left (fun n refine -> refine sel n) n refiners

let compile_selector table preds = selector_factory table preds ()

let column_name table col =
  Storage.Column.name (Storage.Table.column table col)

let const_str table col code =
  let column = Storage.Table.column table col in
  match Storage.Column.dict column with
  | None -> string_of_int code
  | Some dict -> Printf.sprintf "'%s'" (Storage.Dict.get dict code)

let rec pp_atom table fmt = function
  | Const_false -> Format.pp_print_string fmt "FALSE"
  | Cmp { col; op; code } ->
      Format.fprintf fmt "%s %s %s" (column_name table col) (cmp_to_string op)
        (const_str table col code)
  | In { col; codes } ->
      Format.fprintf fmt "%s IN (%s)" (column_name table col)
        (String.concat ", " (List.map (const_str table col) codes))
  | Str_cmp { col; op; value } ->
      Format.fprintf fmt "%s %s '%s'" (column_name table col) (cmp_to_string op)
        value
  | Like { col; pattern; negated } ->
      Format.fprintf fmt "%s %sLIKE '%s'" (column_name table col)
        (if negated then "NOT " else "")
        pattern
  | Is_null { col; negated } ->
      Format.fprintf fmt "%s IS %sNULL" (column_name table col)
        (if negated then "NOT " else "")
  | Between { col; lo; hi } ->
      Format.fprintf fmt "%s BETWEEN %d AND %d" (column_name table col) lo hi
  | Or atoms ->
      Format.fprintf fmt "(%s)"
        (String.concat " OR "
           (List.map (Format.asprintf "%a" (pp_atom table)) atoms))

let pp table fmt preds =
  match preds with
  | [] -> Format.pp_print_string fmt "TRUE"
  | _ ->
      Format.pp_print_string fmt
        (String.concat " AND "
           (List.map (Format.asprintf "%a" (pp_atom table)) preds))
