(** Bound base-table predicates.

    A predicate is a conjunction of atoms over a single relation. Atoms
    keep their logical structure (the estimators inspect it) and compile
    to a fast row-level closure for execution. Constants are already
    encoded into the column's physical representation: integer values
    directly, string values as dictionary codes. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | Cmp of { col : int; op : cmp; code : int }
      (** Comparison against an encoded constant. Order comparisons are
          only meaningful on integer columns. *)
  | In of { col : int; codes : int list }
      (** Equality with any of the encoded constants. *)
  | Str_cmp of { col : int; op : cmp; value : string }
      (** Lexicographic comparison on a string column (JOB compares rating
          strings this way). Compiled to a dictionary-code bitmap. *)
  | Like of { col : int; pattern : string; negated : bool }
  | Is_null of { col : int; negated : bool }
  | Between of { col : int; lo : int; hi : int }  (** Inclusive bounds. *)
  | Or of atom list
  | Const_false
      (** E.g. equality with a string absent from the dictionary. *)

type t = atom list
(** Conjunction; the empty list is TRUE. *)

val cmp_to_string : cmp -> string

val atom_column : atom -> int option
(** Column an atom constrains, or [None] for [Const_false] / multi-column
    [Or]s (ours are single-column, so [Or] reports its column when all
    branches agree). *)

val compile : Storage.Table.t -> t -> int -> bool
(** [compile table preds] returns a row predicate. LIKE atoms are
    pre-resolved into code bitmaps over the column dictionary, so the
    per-row test is O(atoms). *)

val compile_atom : Storage.Table.t -> atom -> int -> bool

val compile_selector : Storage.Table.t -> t -> int array -> int -> int -> int
(** [compile_selector table preds] returns [fill] such that
    [fill sel lo hi] writes the rows of [\[lo, hi)] passing [preds] into
    [sel.(0 ..)] in ascending order and returns their count. [sel] must
    have at least [hi - lo] slots. One compaction pass per atom over the
    selection vector replaces the per-row closure dispatch of {!compile}
    on the executor's hot scan path; both paths select exactly the same
    rows. *)

val selector_factory :
  Storage.Table.t -> t -> unit -> int array -> int -> int -> int
(** [selector_factory table preds] compiles the predicates once —
    including the expensive dictionary bitmaps for LIKE and string
    comparisons — and returns a thunk minting {!compile_selector}-style
    [fill] instances that share that compilation. An instance owns
    mutable decode scratch and must stay on one domain; the factory is
    freely shared, so morsel-parallel scans mint one instance per
    worker without recompiling (or re-scanning the dictionary) per
    worker. *)

val pp_atom : Storage.Table.t -> Format.formatter -> atom -> unit

val pp : Storage.Table.t -> Format.formatter -> t -> unit
