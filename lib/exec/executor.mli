(** Volcano-inspired plan executor with deterministic work accounting.

    The executor is this reproduction's stand-in for the paper's
    PostgreSQL instance: it really evaluates the plan (every reported row
    count is exact), while "runtime" is a deterministic count of work
    units — rows scanned, hash-table entries built and chains walked,
    index lookups performed, nested-loop pairs considered — converted to
    milliseconds at {!Engine_config.work_units_per_ms}.

    Two estimate-sensitive behaviours are modeled physically:
    - hash tables are sized from the {e optimizer's} estimate of the
      build side ([size_est]); in non-resizing mode an underestimate
      yields long collision chains whose traversal is charged;
    - non-index nested-loop joins charge [|outer| * |inner|] work units
      (the result itself is computed hash-based, so answers stay exact
      even for plans that would take hours for real).

    A query that exceeds the configuration's work limit — or whose
    intermediate result outgrows its row limit, the work_mem stand-in —
    raises no exception: it returns a result with [timed_out = true] and
    the limit as its work. *)

type result = {
  rows : int;  (** Exact result cardinality (0 when timed out). *)
  work : int;
  runtime_ms : float;
  timed_out : bool;
  mins : Storage.Value.t list;
      (** MIN() of each requested projection, when the query finished. *)
}

val reference_scan : bool Atomic.t
(** Test-only: when set, scans evaluate predicates with the original
    row-at-a-time compiled closures instead of selection vectors. Both
    paths select identical rows and charge identical work; the kernel
    cross-check test runs the full workload through each and asserts
    equality. Defaults to [false]. *)

val run :
  db:Storage.Database.t ->
  graph:Query.Query_graph.t ->
  config:Engine_config.t ->
  size_est:(Util.Bitset.t -> float) ->
  ?observe:(Util.Bitset.t -> rows:int -> work:int -> unit) ->
  ?pool:Util.Domain_pool.t ->
  ?cache:Join_cache.t ->
  ?projections:(int * int) list ->
  Plan.t ->
  result
(** Raises [Invalid_argument] when the plan needs an index the current
    physical design does not provide, or uses a nested-loop join under a
    configuration that forbids it.

    [pool] enables morsel-driven intra-query parallelism (HyPer-style):
    base-table scans, hash-join builds, and hash/index probe pipelines
    run morsel-at-a-time (4096-row chunks) on the pool's workers, with
    per-morsel output reassembled in morsel-index order and all budgets
    tripping on shared totals — results, work, and timeout behaviour
    are byte-identical to the serial path at any worker count (the
    morsel determinism guarantee; see DESIGN §2h). Plan evaluation
    order, merge joins, and checkpoint observation stay on the calling
    domain, so [observe] never races. Without [pool] — or with
    [config.morsel_exec = false], or on inputs below
    [config.morsel_min_rows] — execution is exactly the serial
    reference path. The pool may be shared: if it is busy with another
    task the executor transparently runs its phases on the calling
    domain alone.

    [cache] enables cross-query join-build recycling: hash joins whose
    build side is a base-relation scan look up a sealed {!Join_table}
    (plus the scanned row set) in the shared {!Join_cache} and, on a
    hit, skip the scan and the build and go probe-only — while
    replaying the skipped work charges, so results, work accounting,
    checkpoint sequences, and timeout behaviour are byte-identical to
    an uncached run. Misses install the freshly sealed build for later
    queries. Off by default; the serving engine ([lib/serve]) is the
    intended user.

    [observe] is the checkpoint hook: called once per materialized plan
    node — in bottom-up execution order — with the node's relation
    subset, its exact row count, and the cumulative work spent so far.
    Off by default and allocation-free when disabled. Exceptions raised
    by the observer abort the run and propagate to the caller (they are
    {e not} converted into a timeout result); [lib/reopt] relies on this
    to cut execution short when a cardinality mis-estimate is detected. *)
