module Bitset = Util.Bitset
module QG = Query.Query_graph

type result = {
  rows : int;
  work : int;
  runtime_ms : float;
  timed_out : bool;
  mins : Storage.Value.t list;
}

exception Timeout

(* Row-major tuple store for intermediate results. *)
type batch = {
  rels : int array;
  slots : int array;  (* relation index -> slot, -1 when absent *)
  width : int;
  mutable data : int array;
  mutable nrows : int;
}

let batch_create rels =
  let width = Array.length rels in
  (* Direct rel -> slot lookup built once per batch; [slot_of] runs per
     join-edge setup and per finish column, so no linear scans there. *)
  let max_rel = Array.fold_left max 0 rels in
  let slots = Array.make (max_rel + 1) (-1) in
  Array.iteri (fun i rel -> slots.(rel) <- i) rels;
  { rels; slots; width; data = Array.make (max 16 (width * 16)) 0; nrows = 0 }

let batch_reserve b extra_rows =
  let needed = (b.nrows + extra_rows) * b.width in
  if needed > Array.length b.data then begin
    let capacity = max needed (2 * Array.length b.data) in
    let bigger = Array.make capacity 0 in
    Array.blit b.data 0 bigger 0 (b.nrows * b.width);
    b.data <- bigger
  end

let slot_of b rel =
  if rel >= Array.length b.slots || b.slots.(rel) < 0 then
    invalid_arg "Executor: relation not in batch"
  else b.slots.(rel)

let null = Storage.Value.null_code

let run ~db ~graph ~config ~size_est ?(projections = []) plan =
  let work = ref 0 in
  let limit = config.Engine_config.work_limit in
  let row_limit = config.Engine_config.row_limit in
  let spend n =
    work := !work + n;
    if !work > limit then raise Timeout
  in
  (* The work_mem stand-in: one intermediate result outgrowing the row
     budget counts as a timeout. *)
  let check_rows (b : batch) = if b.nrows > row_limit then raise Timeout in
  let column_data rel col =
    (Storage.Table.column (QG.relation graph rel).QG.table col).Storage.Column.data
  in
  (* (slot, column data) accessors for each join edge, per side. *)
  let key_columns batch side edges =
    Array.of_list
      (List.map
         (fun (e : QG.edge) ->
           match side with
           | `Outer -> (slot_of batch e.QG.left, column_data e.QG.left e.QG.left_col)
           | `Inner -> (slot_of batch e.QG.right, column_data e.QG.right e.QG.right_col))
         edges)
  in
  (* Composite hash of a tuple's join-key columns; None if any is NULL. *)
  let tuple_key batch cols i =
    let h = ref 0 in
    let ok = ref true in
    Array.iter
      (fun (slot, data) ->
        let v = data.(batch.data.((i * batch.width) + slot)) in
        if v = null then ok := false else h := Join_table.combine !h v)
      cols;
    if !ok then Some !h else None
  in
  let keys_equal outer ocols i inner icols j =
    let eq = ref true in
    Array.iteri
      (fun k (oslot, odata) ->
        let islot, idata = icols.(k) in
        let ov = odata.(outer.data.((i * outer.width) + oslot)) in
        let iv = idata.(inner.data.((j * inner.width) + islot)) in
        if ov <> iv || ov = null then eq := false)
      ocols;
    !eq
  in
  let emit_joined out outer i inner j =
    batch_reserve out 1;
    let base = out.nrows * out.width in
    Array.blit outer.data (i * outer.width) out.data base outer.width;
    Array.blit inner.data (j * inner.width) out.data (base + outer.width)
      inner.width;
    out.nrows <- out.nrows + 1;
    check_rows out
  in

  let scan rel =
    let relation = QG.relation graph rel in
    let table = relation.QG.table in
    let pred = Query.Predicate.compile table relation.QG.preds in
    let out = batch_create [| rel |] in
    let n = Storage.Table.row_count table in
    let chunk = 4096 in
    let row = ref 0 in
    while !row < n do
      let stop = min n (!row + chunk) in
      spend (stop - !row);
      for r = !row to stop - 1 do
        if pred r then begin
          batch_reserve out 1;
          out.data.(out.nrows) <- r;
          out.nrows <- out.nrows + 1
        end
      done;
      row := stop
    done;
    out
  in

  (* Hash-based matching shared by hash join and the nested-loop
     shortcut: returns the joined batch; [charge_hash] selects whether
     hash build/probe work is charged (the NL shortcut charges the
     quadratic pair count instead). Emitted rows are always charged, so
     materialized intermediates can never outgrow the work budget. *)
  let emit_cost = 2 in
  let hash_match ~oset ~iset ~charge_hash ~table_size outer inner =
    let edges = QG.edges_between graph oset iset in
    if edges = [] then invalid_arg "Executor: cross product";
    let ocols = key_columns outer `Outer edges in
    let icols = key_columns inner `Inner edges in
    let jt =
      Join_table.create ~bucket_floor:config.Engine_config.hash_bucket_floor
        ~estimated_rows:table_size
        ~resizable:config.Engine_config.resize_hash_tables ()
    in
    for j = 0 to inner.nrows - 1 do
      match tuple_key inner icols j with
      | Some h ->
          let w = Join_table.insert jt ~hash:h ~payload:j in
          if charge_hash then spend w
      | None -> if charge_hash then spend 1
    done;
    let out = batch_create (Array.append outer.rels inner.rels) in
    for i = 0 to outer.nrows - 1 do
      match tuple_key outer ocols i with
      | Some h ->
          let w =
            Join_table.probe jt ~hash:h ~f:(fun j ->
                if keys_equal outer ocols i inner icols j then begin
                  emit_joined out outer i inner j;
                  spend emit_cost
                end)
          in
          if charge_hash then spend w
      | None -> if charge_hash then spend 1
    done;
    out
  in

  (* Sort-merge join: sort both inputs' tuple indexes by composite key
     hash (equal keys share a hash; real equality re-checked on match),
     then merge runs pairwise. Sorting is charged n log2 n comparisons. *)
  let merge_join ~oset ~iset outer inner =
    let edges = QG.edges_between graph oset iset in
    if edges = [] then invalid_arg "Executor: cross product";
    let ocols = key_columns outer `Outer edges in
    let icols = key_columns inner `Inner edges in
    let sort_side batch cols =
      let keyed = ref [] in
      for i = batch.nrows - 1 downto 0 do
        match tuple_key batch cols i with
        | Some h -> keyed := (h, i) :: !keyed
        | None -> ()
      done;
      let arr = Array.of_list !keyed in
      Array.sort compare arr;
      let n = float_of_int (Array.length arr) in
      let comparisons =
        if n <= 2.0 then n else n *. (Float.log n /. Float.log 2.0)
      in
      spend (int_of_float comparisons);
      arr
    in
    let os = sort_side outer ocols in
    let is = sort_side inner icols in
    let out = batch_create (Array.append outer.rels inner.rels) in
    let no = Array.length os and ni = Array.length is in
    let i = ref 0 and j = ref 0 in
    while !i < no && !j < ni do
      spend 1;
      let oh, _ = os.(!i) and ih, _ = is.(!j) in
      if oh < ih then incr i
      else if oh > ih then incr j
      else begin
        (* Matching run: find the extent of equal hashes on both sides. *)
        let i_end = ref !i and j_end = ref !j in
        while !i_end < no && fst os.(!i_end) = oh do
          incr i_end
        done;
        while !j_end < ni && fst is.(!j_end) = ih do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            spend 1;
            let _, oi = os.(a) and _, ij = is.(b) in
            if keys_equal outer ocols oi inner icols ij then begin
              emit_joined out outer oi inner ij;
              spend emit_cost
            end
          done
        done;
        i := !i_end;
        j := !j_end
      end
    done;
    out
  in

  let rec eval (p : Plan.t) : batch =
    match p.Plan.op with
    | Plan.Scan rel -> scan rel
    | Plan.Join { algo = Plan.Merge_join; outer = op; inner = ip } ->
        let ob = eval op in
        let ib = eval ip in
        merge_join ~oset:op.Plan.set ~iset:ip.Plan.set ob ib
    | Plan.Join { algo = Plan.Hash_join; outer = op; inner = ip } ->
        let ob = eval op in
        let ib = eval ip in
        (* The hash table is sized from the optimizer's estimate of the
           build (inner) side — the 9.4 pathology under underestimates. *)
        hash_match ~oset:op.Plan.set ~iset:ip.Plan.set ~charge_hash:true
          ~table_size:(size_est ip.Plan.set) ob ib
    | Plan.Join { algo = Plan.Nl_join; outer = op; inner = ip } ->
        if not config.Engine_config.allow_nl_join then
          invalid_arg "Executor: nested-loop join disabled in this configuration";
        let ob = eval op in
        let ib = eval ip in
        (* Charge the quadratic pair count up front; compute the (equal)
           result hash-based so answers stay exact. *)
        spend (ob.nrows * ib.nrows);
        hash_match ~oset:op.Plan.set ~iset:ip.Plan.set ~charge_hash:false
          ~table_size:(float_of_int (max 16 ib.nrows))
          ob ib
    | Plan.Join { algo = Plan.Index_nl_join; outer = op; inner = ip } -> (
        match ip.Plan.op with
        | Plan.Join _ -> invalid_arg "Executor: index-NL inner must be base"
        | Plan.Scan inner_rel ->
            let ob = eval op in
            index_nl_join ~oset:op.Plan.set ob inner_rel)

  and index_nl_join ~oset ob inner_rel =
    let relation = QG.relation graph inner_rel in
    let table = relation.QG.table in
    let table_name = Storage.Table.name table in
    let pred = Query.Predicate.compile table relation.QG.preds in
    let edges = QG.edges_between graph oset (Bitset.singleton inner_rel) in
    (* Pick an indexed edge for the lookup; remaining edges are
       post-filters. *)
    let indexed_edge, index =
      let rec find = function
        | [] -> invalid_arg "Executor: index-NL join without an available index"
        | (e : QG.edge) :: rest -> (
            match Storage.Database.index db ~table:table_name ~col:e.QG.right_col with
            | Some idx -> (e, idx)
            | None -> find rest)
      in
      find edges
    in
    let other_edges = List.filter (fun e -> e != indexed_edge) edges in
    let outer_key_slot = slot_of ob indexed_edge.QG.left in
    let outer_key_data = column_data indexed_edge.QG.left indexed_edge.QG.left_col in
    let filters =
      List.map
        (fun (e : QG.edge) ->
          let oslot = slot_of ob e.QG.left in
          let odata = column_data e.QG.left e.QG.left_col in
          let idata = column_data e.QG.right e.QG.right_col in
          fun i inner_row ->
            let ov = odata.(ob.data.((i * ob.width) + oslot)) in
            let iv = idata.(inner_row) in
            ov <> null && ov = iv)
        other_edges
    in
    let out = batch_create (Array.append ob.rels [| inner_rel |]) in
    for i = 0 to ob.nrows - 1 do
      spend 4; (* index descent: random access *)
      let key = outer_key_data.(ob.data.((i * ob.width) + outer_key_slot)) in
      if key <> null then begin
        let matches = Storage.Index.lookup index key in
        spend (Array.length matches);
        Array.iter
          (fun inner_row ->
            if pred inner_row && List.for_all (fun f -> f i inner_row) filters
            then begin
              batch_reserve out 1;
              let base = out.nrows * out.width in
              Array.blit ob.data (i * ob.width) out.data base ob.width;
              out.data.(base + ob.width) <- inner_row;
              out.nrows <- out.nrows + 1;
              check_rows out;
              spend 1
            end)
          matches
      end
    done;
    out
  in

  let finish batch =
    let mins =
      List.map
        (fun (rel, col) ->
          let slot = slot_of batch rel in
          let column = Storage.Table.column (QG.relation graph rel).QG.table col in
          let best = ref None in
          for i = 0 to batch.nrows - 1 do
            let row = batch.data.((i * batch.width) + slot) in
            let v = column.Storage.Column.data.(row) in
            if v <> null then
              match !best with
              | Some b when b <= v -> ()
              | _ -> best := Some v
          done;
          match !best with
          | None -> Storage.Value.Null
          | Some code -> (
              match column.Storage.Column.dict with
              | None -> Storage.Value.Int code
              | Some dict -> Storage.Value.Str (Storage.Dict.get dict code)))
        projections
    in
    {
      rows = batch.nrows;
      work = !work;
      runtime_ms = float_of_int !work /. Engine_config.work_units_per_ms;
      timed_out = false;
      mins;
    }
  in
  try finish (eval plan)
  with Timeout ->
    {
      rows = 0;
      work = limit;
      runtime_ms = float_of_int limit /. Engine_config.work_units_per_ms;
      timed_out = true;
      mins = [];
    }
