module Bitset = Util.Bitset
module QG = Query.Query_graph

type result = {
  rows : int;
  work : int;
  runtime_ms : float;
  timed_out : bool;
  mins : Storage.Value.t list;
}

exception Timeout

(* Test-only escape hatch: evaluate scan predicates with the original
   row-at-a-time closures instead of selection vectors. The cross-check
   test runs the full workload through both paths and asserts identical
   results; nothing in the library or the binaries sets this. *)
let reference_scan = Atomic.make false

(* Row-major tuple store for intermediate results. *)
type batch = {
  rels : int array;
  slots : int array;  (* relation index -> slot, -1 when absent *)
  width : int;
  mutable data : int array;
  mutable nrows : int;
}

let slot_of b rel =
  if rel >= Array.length b.slots || b.slots.(rel) < 0 then
    invalid_arg "Executor: relation not in batch"
  else b.slots.(rel)

let null = Storage.Value.null_code

(* Composite hashes are non-negative ({!Join_table.mix} masks the sign
   bit), so a negative sentinel marks "some key column is NULL" without
   allocating an option per row. *)
let null_key = -1

(* Placeholder filling reader arrays before the per-edge closures land. *)
let no_reader : int -> int = fun _ -> null

(* Interned trace phases, resolved once at module init. With tracing
   disabled the per-node cost is one atomic load (Obs.Trace.start
   returning the 0 sentinel) plus an integer compare — the executor's
   hot path carries the instrumentation permanently. *)
let ph_exec = Obs.Trace.intern "exec"
let ph_scan = Obs.Trace.intern "exec.scan"
let ph_hash_join = Obs.Trace.intern "exec.hash_join"
let ph_merge_join = Obs.Trace.intern "exec.merge_join"
let ph_nl_join = Obs.Trace.intern "exec.nl_join"
let ph_index_nl_join = Obs.Trace.intern "exec.index_nl_join"

let phase_of (p : Plan.t) =
  match p.Plan.op with
  | Plan.Scan _ -> ph_scan
  | Plan.Join { algo = Plan.Hash_join; _ } -> ph_hash_join
  | Plan.Join { algo = Plan.Merge_join; _ } -> ph_merge_join
  | Plan.Join { algo = Plan.Nl_join; _ } -> ph_nl_join
  | Plan.Join { algo = Plan.Index_nl_join; _ } -> ph_index_nl_join

(* Per-slot scratch for morsel-parallel phases. A slot is owned by at
   most one running worker at a time ({!Util.Domain_pool.run_workers}'s
   contract), so nothing here is locked. [wbuf] stages each claimed
   morsel's output contiguously; the caller stitches the segments back
   together in morsel-index order, which is what makes assembled batches
   bit-for-bit the batches the serial path builds. *)
type wstate = {
  wslot : int;
  mutable wbuf : int array;
  mutable wlen : int;
  mutable wsel : int array; (* scan selection-vector scratch *)
  mutable wfill : (int array -> int -> int -> int) option;
      (* per-phase selector instance (owns mutable decode scratch) *)
  mutable wclaims : int; (* morsels claimed in the current phase *)
}

let wbuf_reserve w extra =
  let needed = w.wlen + extra in
  if needed > Array.length w.wbuf then begin
    let bigger = Array.make (max needed (2 * Array.length w.wbuf)) 0 in
    Array.blit w.wbuf 0 bigger 0 w.wlen;
    w.wbuf <- bigger
  end

let run ~db ~graph ~config ~size_est ?observe ?pool ?cache ?(projections = [])
    plan =
  let work = ref 0 in
  let limit = config.Engine_config.work_limit in
  let row_limit = config.Engine_config.row_limit in
  let spend n =
    work := !work + n;
    if !work > limit then raise Timeout
  in
  (* The work_mem stand-in: one intermediate result outgrowing the row
     budget counts as a timeout. *)
  let check_rows (b : batch) = if b.nrows > row_limit then raise Timeout in
  (* Random-access code readers (the column layer is sealed; flat columns
     compile to a plain array load, packed ones to shift/mask). *)
  let column_data rel col =
    Storage.Column.reader (Storage.Table.column (QG.relation graph rel).QG.table col)
  in

  (* Scratch pool: int arrays retired by consumed intermediate batches
     (and key/selection buffers), reused for the next intermediate. A
     bushy plan stops reallocating its working set once the first few
     joins have sized it. Arrays are never zeroed on reuse — every
     consumer writes before it reads. *)
  let scratch = ref [] in
  let pool_acquire min_len =
    let rec go acc = function
      | [] -> Array.make (max 1024 min_len) 0
      | a :: rest when Array.length a >= min_len ->
          scratch := List.rev_append acc rest;
          a
      | a :: rest -> go (a :: acc) rest
    in
    go [] !scratch
  in
  let pool_release a = if Array.length a >= 1024 then scratch := a :: !scratch in
  let retire b = pool_release b.data in

  let batch_create rels =
    let width = Array.length rels in
    (* Direct rel -> slot lookup built once per batch; [slot_of] runs per
       join-edge setup and per finish column, so no linear scans there. *)
    let max_rel = Array.fold_left max 0 rels in
    let slots = Array.make (max_rel + 1) (-1) in
    Array.iteri (fun i rel -> slots.(rel) <- i) rels;
    {
      rels;
      slots;
      width;
      data = pool_acquire (max 16 (width * 16));
      nrows = 0;
    }
  in
  let batch_reserve b extra_rows =
    let needed = (b.nrows + extra_rows) * b.width in
    if needed > Array.length b.data then begin
      let bigger = pool_acquire (max needed (2 * Array.length b.data)) in
      Array.blit b.data 0 bigger 0 (b.nrows * b.width);
      pool_release b.data;
      b.data <- bigger
    end
  in

  (* Join-key accessors per edge, preextracted into flat parallel arrays
     (slot and column data), so the per-row key loop touches no lists,
     no tuples, and no closures. *)
  let key_arrays batch side edges =
    let k = List.length edges in
    let slots = Array.make k 0 in
    let datas = Array.make k no_reader in
    List.iteri
      (fun idx (e : QG.edge) ->
        match side with
        | `Outer ->
            slots.(idx) <- slot_of batch e.QG.left;
            datas.(idx) <- column_data e.QG.left e.QG.left_col
        | `Inner ->
            slots.(idx) <- slot_of batch e.QG.right;
            datas.(idx) <- column_data e.QG.right e.QG.right_col)
      edges;
    (slots, datas)
  in
  (* Composite hash of a tuple's join-key columns; [null_key] if any is
     NULL. *)
  let tuple_key batch slots datas i =
    let base = i * batch.width in
    let h = ref 0 in
    let ok = ref true in
    for k = 0 to Array.length slots - 1 do
      let v =
        (Array.unsafe_get datas k) (batch.data.(base + Array.unsafe_get slots k))
      in
      if v = null then ok := false else h := Join_table.combine !h v
    done;
    if !ok then !h else null_key
  in
  let keys_equal outer oslots odatas i inner islots idatas j =
    let obase = i * outer.width and ibase = j * inner.width in
    let rec go k =
      if k = Array.length oslots then true
      else
        let ov = odatas.(k) outer.data.(obase + oslots.(k)) in
        let iv = idatas.(k) inner.data.(ibase + islots.(k)) in
        ov = iv && ov <> null && go (k + 1)
    in
    go 0
  in
  let emit_joined out outer i inner j =
    batch_reserve out 1;
    let base = out.nrows * out.width in
    Array.blit outer.data (i * outer.width) out.data base outer.width;
    Array.blit inner.data (j * inner.width) out.data (base + outer.width)
      inner.width;
    out.nrows <- out.nrows + 1;
    check_rows out
  in

  let chunk = 4096 in

  (* ---------------- Morsel-parallel phase machinery ----------------

     A phase carves its input rows into [chunk]-sized morsels handed
     out by an atomic cursor; pool workers stage each morsel's output
     in slot-local buffers and the caller reassembles it by morsel
     index, so batches — and therefore every downstream decision — are
     byte-identical to the serial path at any worker count.

     Accounting: [base] snapshots [!work] before the phase, workers
     fold their per-morsel work into a shared accumulator, and each
     flush compares [base + total] against the limit — the budget trips
     on exactly the serial path's condition (totals are sums of
     order-independent per-morsel contributions). Same for emitted rows
     against [row_limit]. A worker that sees the budget blown raises
     {!Timeout}; the pool re-raises it here, and the top-level handler
     below turns it into the usual timeout result. *)
  let nworkers =
    match pool with
    | Some p when config.Engine_config.morsel_exec -> Util.Domain_pool.size p
    | _ -> 1
  in
  (* The pool to use for a phase over [n] input rows, if any. *)
  let par_pool n =
    if nworkers > 1 && n >= config.Engine_config.morsel_min_rows then pool
    else None
  in
  let workers =
    Util.Once.make (fun () ->
        Array.init nworkers (fun slot ->
            {
              wslot = slot;
              wbuf = Array.make chunk 0;
              wlen = 0;
              wsel = [||];
              wfill = None;
              wclaims = 0;
            }))
  in
  let phase_work = Morsel.acc () in
  let phase_rows = Morsel.acc () in
  let run_phase p ~morsels ~body =
    Morsel.reset phase_work;
    Morsel.reset phase_rows;
    let ws = Util.Once.force workers in
    Array.iter
      (fun w ->
        w.wlen <- 0;
        w.wfill <- None;
        w.wclaims <- 0)
      ws;
    let cur = Morsel.cursor morsels in
    let outcome =
      match
        Util.Domain_pool.run_workers p (fun slot ->
            let w = ws.(slot) in
            let m = ref (Morsel.claim cur) in
            while !m >= 0 do
              w.wclaims <- w.wclaims + 1;
              body w !m;
              m := Morsel.claim cur
            done)
      with
      | () -> None
      | exception e -> Some e
    in
    Morsel.note_phase (Array.map (fun w -> w.wclaims) ws);
    (* Fold the phase's work into the serial counter even on failure,
       so a non-timeout abort still reports what was spent. *)
    work := !work + Morsel.total phase_work;
    (match outcome with Some e -> raise e | None -> ());
    if !work > limit then raise Timeout
  in
  (* Stitch per-morsel (slot, offset, count) records back into [out] in
     morsel-index order. Counts are rows; offsets are ints. *)
  let assemble out ~morsels ~m_src ~m_off ~m_cnt =
    let ws = Util.Once.force workers in
    let width = out.width in
    let total = ref 0 in
    for m = 0 to morsels - 1 do
      total := !total + m_cnt.(m)
    done;
    batch_reserve out !total;
    for m = 0 to morsels - 1 do
      let cnt = m_cnt.(m) in
      if cnt > 0 then begin
        Array.blit ws.(m_src.(m)).wbuf m_off.(m) out.data (out.nrows * width)
          (cnt * width);
        out.nrows <- out.nrows + cnt
      end
    done
  in

  (* One selection vector for the whole run: serial plan evaluation is
     sequential, so scans never overlap. Deferred via Once, so
     reference-path runs (and plans that are pure index nested loops)
     skip the allocation. *)
  let scan_sel = Util.Once.make (fun () -> Array.make chunk 0) in
  let scan rel =
    let relation = QG.relation graph rel in
    let table = relation.QG.table in
    let out = batch_create [| rel |] in
    let n = Storage.Table.row_count table in
    if Atomic.get reference_scan then begin
      (* Reference path: one closure call per row. *)
      let pred = Query.Predicate.compile table relation.QG.preds in
      let row = ref 0 in
      while !row < n do
        let stop = min n (!row + chunk) in
        spend (stop - !row);
        for r = !row to stop - 1 do
          if pred r then begin
            batch_reserve out 1;
            out.data.(out.nrows) <- r;
            out.nrows <- out.nrows + 1
          end
        done;
        row := stop
      done
    end
    else begin
      match par_pool n with
      | Some p ->
          (* Morsel path: workers mint their own selector instance from
             a shared factory (dictionary bitmaps compiled once), fill
             slot-local selection vectors, and stage survivors in their
             buffers; assembly by morsel index reproduces the serial
             append order exactly. *)
          let factory =
            Query.Predicate.selector_factory table relation.QG.preds
          in
          let morsels = (n + chunk - 1) / chunk in
          let m_src = pool_acquire morsels
          and m_off = pool_acquire morsels
          and m_cnt = pool_acquire morsels in
          let base = !work in
          run_phase p ~morsels ~body:(fun w m ->
              let fill =
                match w.wfill with
                | Some f -> f
                | None ->
                    let f = factory () in
                    w.wfill <- Some f;
                    if Array.length w.wsel < chunk then
                      w.wsel <- Array.make chunk 0;
                    f
              in
              let lo = m * chunk in
              let hi = min n (lo + chunk) in
              let cnt = fill w.wsel lo hi in
              wbuf_reserve w cnt;
              Array.blit w.wsel 0 w.wbuf w.wlen cnt;
              m_src.(m) <- w.wslot;
              m_off.(m) <- w.wlen;
              m_cnt.(m) <- cnt;
              w.wlen <- w.wlen + cnt;
              let t = Morsel.add phase_work (hi - lo) in
              if base + t > limit then raise Timeout);
          assemble out ~morsels ~m_src ~m_off ~m_cnt;
          pool_release m_src;
          pool_release m_off;
          pool_release m_cnt
      | None ->
          (* Vectorized path: fill a selection vector per chunk (one
             compaction pass per predicate atom), then append it whole. *)
          let fill = Query.Predicate.compile_selector table relation.QG.preds in
          let sel = Util.Once.force scan_sel in
          let row = ref 0 in
          while !row < n do
            let stop = min n (!row + chunk) in
            spend (stop - !row);
            let m = fill sel !row stop in
            batch_reserve out m;
            Array.blit sel 0 out.data out.nrows m;
            out.nrows <- out.nrows + m;
            row := stop
          done
    end;
    out
  in

  (* Hash-based matching shared by hash join and the nested-loop
     shortcut: returns the joined batch; [charge_hash] selects whether
     hash build/probe work is charged (the NL shortcut charges the
     quadratic pair count instead). Emitted rows are always charged, so
     materialized intermediates can never outgrow the work budget. *)
  let emit_cost = 2 in
  let hash_match ~oset ~iset ~charge_hash ~table_size ?(retire_inner = true)
      ?prebuilt ?install outer inner =
    let edges = QG.edges_between graph oset iset in
    if edges = [] then invalid_arg "Executor: cross product";
    let oslots, odatas = key_arrays outer `Outer edges in
    let islots, idatas = key_arrays inner `Inner edges in
    let jt =
      match prebuilt with
      | Some jt ->
          (* Recycled sealed table (the caller already replayed the
             build's work charges): straight to the probe phase. *)
          jt
      | None ->
          let jt =
            Join_table.create
              ~bucket_floor:config.Engine_config.hash_bucket_floor
              ~estimated_rows:table_size ~actual_rows:inner.nrows
              ~resizable:config.Engine_config.resize_hash_tables ()
          in
          (* Build, two-phase: append entries (1 work unit per build row,
             NULL keys included, matching the incremental path), then one
             seal that links chains in canonical ascending-payload order
             and charges the replayed resize bill. When parallel, workers
             only compute the key hashes — disjoint writes into a shared
             buffer — and the cheap append loop stays serial, so entry
             order (hence payload numbering) is identical at any worker
             count. *)
          (match par_pool inner.nrows with
          | Some p ->
              let n = inner.nrows in
              let kbuf = pool_acquire n in
              let morsels = (n + chunk - 1) / chunk in
              let base = !work in
              run_phase p ~morsels ~body:(fun _w m ->
                  let lo = m * chunk in
                  let hi = min n (lo + chunk) in
                  for j = lo to hi - 1 do
                    kbuf.(j) <- tuple_key inner islots idatas j
                  done;
                  if charge_hash then begin
                    let t = Morsel.add phase_work (hi - lo) in
                    if base + t > limit then raise Timeout
                  end);
              for j = 0 to n - 1 do
                let h = kbuf.(j) in
                if h <> null_key then Join_table.append jt ~hash:h ~payload:j
              done;
              pool_release kbuf
          | None ->
              for j = 0 to inner.nrows - 1 do
                let h = tuple_key inner islots idatas j in
                if h <> null_key then Join_table.append jt ~hash:h ~payload:j;
                if charge_hash then spend 1
              done);
          let seal_work = Join_table.seal jt in
          if charge_hash then spend seal_work;
          (* Publish to the recycling cache while the build batch is
             still alive: the row-id copy must happen before [retire]
             returns the batch's array to the scratch pool. *)
          (match install with
          | Some f ->
              f
                ~rows:(Array.sub inner.data 0 inner.nrows)
                ~nrows:inner.nrows ~table:jt ~seal_work
          | None -> ());
          jt
    in
    let out = batch_create (Array.append outer.rels inner.rels) in
    (match par_pool outer.nrows with
    | Some p ->
        let n = outer.nrows in
        let ow = outer.width and iw = inner.width in
        let width = out.width in
        let morsels = (n + chunk - 1) / chunk in
        let m_src = pool_acquire morsels
        and m_off = pool_acquire morsels
        and m_cnt = pool_acquire morsels in
        let base = !work in
        run_phase p ~morsels ~body:(fun w m ->
            let lo = m * chunk in
            let hi = min n (lo + chunk) in
            m_src.(m) <- w.wslot;
            m_off.(m) <- w.wlen;
            let wk = ref 0 and emitted = ref 0 in
            for i = lo to hi - 1 do
              let h = tuple_key outer oslots odatas i in
              if h <> null_key then begin
                let pw =
                  Join_table.probe jt ~hash:h ~f:(fun j ->
                      if keys_equal outer oslots odatas i inner islots idatas j
                      then begin
                        wbuf_reserve w width;
                        Array.blit outer.data (i * ow) w.wbuf w.wlen ow;
                        Array.blit inner.data (j * iw) w.wbuf (w.wlen + ow) iw;
                        w.wlen <- w.wlen + width;
                        incr emitted;
                        wk := !wk + emit_cost
                      end)
                in
                if charge_hash then wk := !wk + pw
              end
              else if charge_hash then incr wk
            done;
            m_cnt.(m) <- !emitted;
            let t = Morsel.add phase_work !wk in
            if base + t > limit then raise Timeout;
            if !emitted > 0 then begin
              let r = Morsel.add phase_rows !emitted in
              if r > row_limit then raise Timeout
            end);
        assemble out ~morsels ~m_src ~m_off ~m_cnt;
        pool_release m_src;
        pool_release m_off;
        pool_release m_cnt
    | None ->
        for i = 0 to outer.nrows - 1 do
          let h = tuple_key outer oslots odatas i in
          if h <> null_key then begin
            let w =
              Join_table.probe jt ~hash:h ~f:(fun j ->
                  if keys_equal outer oslots odatas i inner islots idatas j
                  then begin
                    emit_joined out outer i inner j;
                    spend emit_cost
                  end)
            in
            if charge_hash then spend w
          end
          else if charge_hash then spend 1
        done);
    retire outer;
    if retire_inner then retire inner;
    out
  in

  (* Sort-merge join: sort both inputs' tuple indexes by composite key
     hash (equal keys share a hash; real equality re-checked on match),
     then merge runs pairwise. Sorting is charged n log2 n comparisons. *)
  let merge_join ~oset ~iset outer inner =
    let edges = QG.edges_between graph oset iset in
    if edges = [] then invalid_arg "Executor: cross product";
    let oslots, odatas = key_arrays outer `Outer edges in
    let islots, idatas = key_arrays inner `Inner edges in
    (* Per-row keys land in a pooled buffer; the sorted side is a
       permutation of the non-NULL row ids ordered by (key, row) —
       exactly the order the former boxed (key, row) pair sort produced,
       without building a list or allocating a tuple per row. *)
    let sort_side batch slots datas =
      let nrows = batch.nrows in
      let keys = pool_acquire (max 1 nrows) in
      let m = ref 0 in
      for i = 0 to nrows - 1 do
        let h = tuple_key batch slots datas i in
        keys.(i) <- h;
        if h <> null_key then incr m
      done;
      let idx = Array.make (max 1 !m) 0 in
      let k = ref 0 in
      for i = 0 to nrows - 1 do
        if keys.(i) <> null_key then begin
          idx.(!k) <- i;
          incr k
        end
      done;
      Array.sort
        (fun a b ->
          let c = Int.compare keys.(a) keys.(b) in
          if c <> 0 then c else Int.compare a b)
        idx;
      let n = float_of_int !m in
      let comparisons =
        if n <= 2.0 then n else n *. (Float.log n /. Float.log 2.0)
      in
      spend (int_of_float comparisons);
      (keys, idx, !m)
    in
    let okeys, oidx, no = sort_side outer oslots odatas in
    let ikeys, iidx, ni = sort_side inner islots idatas in
    let out = batch_create (Array.append outer.rels inner.rels) in
    let i = ref 0 and j = ref 0 in
    while !i < no && !j < ni do
      spend 1;
      let oh = okeys.(oidx.(!i)) and ih = ikeys.(iidx.(!j)) in
      if oh < ih then incr i
      else if oh > ih then incr j
      else begin
        (* Matching run: find the extent of equal hashes on both sides. *)
        let i_end = ref !i and j_end = ref !j in
        while !i_end < no && okeys.(oidx.(!i_end)) = oh do
          incr i_end
        done;
        while !j_end < ni && ikeys.(iidx.(!j_end)) = ih do
          incr j_end
        done;
        for a = !i to !i_end - 1 do
          for b = !j to !j_end - 1 do
            spend 1;
            let oi = oidx.(a) and ij = iidx.(b) in
            if keys_equal outer oslots odatas oi inner islots idatas ij then begin
              emit_joined out outer oi inner ij;
              spend emit_cost
            end
          done
        done;
        i := !i_end;
        j := !j_end
      end
    done;
    pool_release okeys;
    pool_release ikeys;
    retire outer;
    retire inner;
    out
  in

  (* Checkpoint instrumentation: after a node's result is materialized,
     report its exact cardinality and the work spent so far. [observe]
     defaults to [None], in which case the hook is a single option match
     per plan node — no closure, no allocation. An Index_nl_join's inner
     scan is never materialized on its own, so it reports no checkpoint;
     the joined result does. Observer exceptions propagate to the caller
     (only {!Timeout} is caught below) — the re-optimization driver uses
     exactly that to abandon a doomed plan mid-flight. *)
  let checkpoint set (b : batch) =
    match observe with
    | None -> b
    | Some f ->
        f set ~rows:b.nrows ~work:!work;
        b
  in

  let rec eval (p : Plan.t) : batch =
    let t0 = Obs.Trace.start () in
    let b = eval_op p in
    (* Nested per-operator span: a join's interval includes its
       children's (the trace renders the tree); [a] is the node's exact
       cardinality, [b] the cumulative work when it materialized. *)
    Obs.Trace.span (phase_of p) ~t0 ~a:b.nrows ~b:!work;
    checkpoint p.Plan.set b

  and eval_op (p : Plan.t) : batch =
    match p.Plan.op with
    | Plan.Scan rel -> scan rel
    | Plan.Join { algo = Plan.Merge_join; outer = op; inner = ip } ->
        let ob = eval op in
        let ib = eval ip in
        merge_join ~oset:op.Plan.set ~iset:ip.Plan.set ob ib
    | Plan.Join { algo = Plan.Hash_join; outer = op; inner = ip } -> (
        (* The hash table is sized from the optimizer's estimate of the
           build (inner) side — the 9.4 pathology under underestimates. *)
        let table_size = size_est ip.Plan.set in
        (* Recycling applies only when the build side is a bare
           base-relation scan: then the sealed table plus the surviving
           row set is a pure function of (table, predicate, key columns,
           encodings, bucket sizing), all captured by the cache key. *)
        let cacheable =
          match (cache, ip.Plan.op) with
          | Some c, Plan.Scan rel ->
              let relation = QG.relation graph rel in
              let table = relation.QG.table in
              let edges = QG.edges_between graph op.Plan.set ip.Plan.set in
              let cols = List.map (fun (e : QG.edge) -> e.QG.right_col) edges in
              let key =
                Join_cache.make_key
                  ~table:(Storage.Table.name table)
                  ~table_rows:(Storage.Table.row_count table)
                  ~pred:(Join_cache.pred_digest relation.QG.preds)
                  ~cols
                  ~encoding:(Join_cache.encoding_fingerprint table)
                  ~buckets:
                    (Join_table.planned_buckets
                       ~bucket_floor:config.Engine_config.hash_bucket_floor
                       ~estimated_rows:table_size ())
                  ~resizable:config.Engine_config.resize_hash_tables
              in
              Some (c, key, rel, Storage.Table.row_count table)
          | _ -> None
        in
        match cacheable with
        | None ->
            let ob = eval op in
            let ib = eval ip in
            hash_match ~oset:op.Plan.set ~iset:ip.Plan.set ~charge_hash:true
              ~table_size ob ib
        | Some (c, key, rel, scan_rows) -> (
            match Join_cache.find c key with
            | Some entry ->
                (* Hit: skip the build-side scan and the hash build, but
                   replay their exact simulated-work charges and fire the
                   inner scan's checkpoint where the uncached path would
                   have — results, work, observer sequences, and timeout
                   behaviour stay byte-identical; only wall-clock drops. *)
                let ob = eval op in
                spend entry.Join_cache.e_scan_work;
                let slots = Array.make (rel + 1) (-1) in
                slots.(rel) <- 0;
                let ib =
                  {
                    rels = [| rel |];
                    slots;
                    width = 1;
                    data = entry.Join_cache.e_rows;
                    nrows = entry.Join_cache.e_nrows;
                  }
                in
                ignore (checkpoint ip.Plan.set ib);
                spend entry.Join_cache.e_build_work;
                spend entry.Join_cache.e_seal_work;
                (* [retire_inner:false]: the cached row array is shared
                   and must never enter the scratch pool. *)
                hash_match ~oset:op.Plan.set ~iset:ip.Plan.set
                  ~charge_hash:true ~table_size ~retire_inner:false
                  ~prebuilt:entry.Join_cache.e_table ob ib
            | None ->
                let ob = eval op in
                let ib = eval ip in
                hash_match ~oset:op.Plan.set ~iset:ip.Plan.set
                  ~charge_hash:true ~table_size
                  ~install:(fun ~rows ~nrows ~table ~seal_work ->
                    Join_cache.install c key ~rows ~nrows ~table
                      ~scan_work:scan_rows ~build_work:nrows ~seal_work)
                  ob ib))
    | Plan.Join { algo = Plan.Nl_join; outer = op; inner = ip } ->
        if not config.Engine_config.allow_nl_join then
          invalid_arg "Executor: nested-loop join disabled in this configuration";
        let ob = eval op in
        let ib = eval ip in
        (* Charge the quadratic pair count up front; compute the (equal)
           result hash-based so answers stay exact. *)
        spend (ob.nrows * ib.nrows);
        hash_match ~oset:op.Plan.set ~iset:ip.Plan.set ~charge_hash:false
          ~table_size:(float_of_int (max 16 ib.nrows))
          ob ib
    | Plan.Join { algo = Plan.Index_nl_join; outer = op; inner = ip } -> (
        match ip.Plan.op with
        | Plan.Join _ -> invalid_arg "Executor: index-NL inner must be base"
        | Plan.Scan inner_rel ->
            let ob = eval op in
            index_nl_join ~oset:op.Plan.set ob inner_rel)

  and index_nl_join ~oset ob inner_rel =
    let relation = QG.relation graph inner_rel in
    let table = relation.QG.table in
    let table_name = Storage.Table.name table in
    let pred = Query.Predicate.compile table relation.QG.preds in
    let edges = QG.edges_between graph oset (Bitset.singleton inner_rel) in
    (* Pick an indexed edge for the lookup; remaining edges are
       post-filters. *)
    let indexed_edge, index =
      let rec find = function
        | [] -> invalid_arg "Executor: index-NL join without an available index"
        | (e : QG.edge) :: rest -> (
            match Storage.Database.index db ~table:table_name ~col:e.QG.right_col with
            | Some idx -> (e, idx)
            | None -> find rest)
      in
      find edges
    in
    let other_edges = List.filter (fun e -> e != indexed_edge) edges in
    let outer_key_slot = slot_of ob indexed_edge.QG.left in
    let outer_key_data = column_data indexed_edge.QG.left indexed_edge.QG.left_col in
    (* Post-filter edges, preextracted like the join keys above. *)
    let nf = List.length other_edges in
    let f_oslots = Array.make nf 0 in
    let f_odatas = Array.make nf no_reader in
    let f_idatas = Array.make nf no_reader in
    List.iteri
      (fun k (e : QG.edge) ->
        f_oslots.(k) <- slot_of ob e.QG.left;
        f_odatas.(k) <- column_data e.QG.left e.QG.left_col;
        f_idatas.(k) <- column_data e.QG.right e.QG.right_col)
      other_edges;
    let filters_pass i inner_row =
      let base = i * ob.width in
      let rec go k =
        if k = nf then true
        else
          let ov = f_odatas.(k) ob.data.(base + f_oslots.(k)) in
          ov <> null && ov = f_idatas.(k) inner_row && go (k + 1)
      in
      go 0
    in
    let out = batch_create (Array.append ob.rels [| inner_rel |]) in
    (match par_pool ob.nrows with
    | Some p ->
        (* Index lookups are read-only (the database's index cache is a
           copy-on-write snapshot) and the compiled predicate's only
           mutable state is validated-before-use reader caches, so the
           probe side parallelizes like a hash probe. *)
        let n = ob.nrows in
        let width = out.width in
        let morsels = (n + chunk - 1) / chunk in
        let m_src = pool_acquire morsels
        and m_off = pool_acquire morsels
        and m_cnt = pool_acquire morsels in
        let base = !work in
        run_phase p ~morsels ~body:(fun w m ->
            let lo = m * chunk in
            let hi = min n (lo + chunk) in
            m_src.(m) <- w.wslot;
            m_off.(m) <- w.wlen;
            let wk = ref 0 and emitted = ref 0 in
            for i = lo to hi - 1 do
              wk := !wk + 4;
              let key = outer_key_data ob.data.((i * ob.width) + outer_key_slot) in
              if key <> null then begin
                let matches = Storage.Index.lookup index key in
                wk := !wk + Array.length matches;
                Array.iter
                  (fun inner_row ->
                    if pred inner_row && filters_pass i inner_row then begin
                      wbuf_reserve w width;
                      Array.blit ob.data (i * ob.width) w.wbuf w.wlen ob.width;
                      w.wbuf.(w.wlen + ob.width) <- inner_row;
                      w.wlen <- w.wlen + width;
                      incr emitted;
                      incr wk
                    end)
                  matches
              end
            done;
            m_cnt.(m) <- !emitted;
            let t = Morsel.add phase_work !wk in
            if base + t > limit then raise Timeout;
            if !emitted > 0 then begin
              let r = Morsel.add phase_rows !emitted in
              if r > row_limit then raise Timeout
            end);
        assemble out ~morsels ~m_src ~m_off ~m_cnt;
        pool_release m_src;
        pool_release m_off;
        pool_release m_cnt
    | None ->
        for i = 0 to ob.nrows - 1 do
          spend 4; (* index descent: random access *)
          let key = outer_key_data ob.data.((i * ob.width) + outer_key_slot) in
          if key <> null then begin
            let matches = Storage.Index.lookup index key in
            spend (Array.length matches);
            Array.iter
              (fun inner_row ->
                if pred inner_row && filters_pass i inner_row then begin
                  batch_reserve out 1;
                  let base = out.nrows * out.width in
                  Array.blit ob.data (i * ob.width) out.data base ob.width;
                  out.data.(base + ob.width) <- inner_row;
                  out.nrows <- out.nrows + 1;
                  check_rows out;
                  spend 1
                end)
              matches
          end
        done);
    retire ob;
    out
  in

  let finish batch =
    let mins =
      List.map
        (fun (rel, col) ->
          let slot = slot_of batch rel in
          let column = Storage.Table.column (QG.relation graph rel).QG.table col in
          let read = Storage.Column.reader column in
          let best = ref None in
          for i = 0 to batch.nrows - 1 do
            let row = batch.data.((i * batch.width) + slot) in
            let v = read row in
            if v <> null then
              match !best with
              | Some b when b <= v -> ()
              | _ -> best := Some v
          done;
          match !best with
          | None -> Storage.Value.Null
          | Some code -> (
              match Storage.Column.dict column with
              | None -> Storage.Value.Int code
              | Some dict -> Storage.Value.Str (Storage.Dict.get dict code)))
        projections
    in
    {
      rows = batch.nrows;
      work = !work;
      runtime_ms = float_of_int !work /. Engine_config.work_units_per_ms;
      timed_out = false;
      mins;
    }
  in
  let t_exec = Obs.Trace.start () in
  match finish (eval plan) with
  | r ->
      Obs.Trace.span ph_exec ~t0:t_exec ~a:r.rows ~b:r.work;
      r
  | exception Timeout ->
      let r =
        {
          rows = 0;
          work = limit;
          runtime_ms = float_of_int limit /. Engine_config.work_units_per_ms;
          timed_out = true;
          mins = [];
        }
      in
      Obs.Trace.span ph_exec ~t0:t_exec ~a:0 ~b:limit;
      r
