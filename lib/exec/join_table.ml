type t = {
  mutable buckets : int array; (* head index into entries, -1 = empty *)
  mutable mask : int;
  mutable next : int array;
  mutable hashes : int array;
  mutable payloads : int array;
  mutable count : int;
  resizable : bool;
  initial_buckets : int; (* bucket count at creation, for seal's replay *)
}

let mix x =
  (* SplitMix64 finalizer, truncated to OCaml's int. *)
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

let combine a b = mix ((a * 31) lxor b)

let next_pow2 x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 16

(* The initial bucket count [create] derives from the optimizer's
   estimate — exposed so the recycling cache can key sealed tables on
   exactly the sizing the executor would have used. *)
let planned_buckets ?(bucket_floor = 1024) ~estimated_rows () =
  let est =
    int_of_float
      (Float.max (float_of_int (max 1 bucket_floor)) (Float.min 1e9 estimated_rows))
  in
  next_pow2 est

let create ?(bucket_floor = 1024) ~estimated_rows ?actual_rows ~resizable () =
  (* PostgreSQL floors its hash tables at ~1k buckets regardless of the
     estimate; without the floor every underestimate is a catastrophe
     rather than a slowdown. The floor is a parameter so the ablation
     bench can quantify exactly that.

     Buckets are always sized from the optimizer's *estimate* — that is
     the paper's pathology and must stay. [actual_rows], when the build
     side's true cardinality is already known (the executor has the
     materialized batch in hand), pre-sizes only the entry arrays so a
     big build skips the ~15 doubling copies. *)
  let n_buckets = planned_buckets ~bucket_floor ~estimated_rows () in
  let entry_cap = max 64 (match actual_rows with Some r -> r | None -> 64) in
  {
    buckets = Array.make n_buckets (-1);
    mask = n_buckets - 1;
    next = Array.make entry_cap (-1);
    hashes = Array.make entry_cap 0;
    payloads = Array.make entry_cap 0;
    count = 0;
    resizable;
    initial_buckets = n_buckets;
  }

let bucket_count t = Array.length t.buckets

let entry_count t = t.count

(* Physical footprint of the table's arrays (words, at 8 bytes each),
   for the recycling cache's byte budget. Counts capacities, not
   [count]: retained garbage headroom is still resident memory. *)
let byte_size t =
  8
  * (Array.length t.buckets + Array.length t.next + Array.length t.hashes
    + Array.length t.payloads)

let grow_entries t =
  let capacity = Array.length t.next in
  if t.count = capacity then begin
    let resize a fill =
      let bigger = Array.make (2 * capacity) fill in
      Array.blit a 0 bigger 0 capacity;
      bigger
    in
    t.next <- resize t.next (-1);
    t.hashes <- resize t.hashes 0;
    t.payloads <- resize t.payloads 0
  end

(* Double the bucket array and redistribute; returns entries moved. *)
let rehash t =
  let n = 2 * Array.length t.buckets in
  t.buckets <- Array.make n (-1);
  t.mask <- n - 1;
  for i = 0 to t.count - 1 do
    let b = t.hashes.(i) land t.mask in
    t.next.(i) <- t.buckets.(b);
    t.buckets.(b) <- i
  done;
  t.count

let insert t ~hash ~payload =
  let work = ref 1 in
  if t.resizable && t.count >= Array.length t.buckets then
    work := !work + rehash t;
  grow_entries t;
  let i = t.count in
  t.count <- i + 1;
  t.hashes.(i) <- hash;
  t.payloads.(i) <- payload;
  let b = hash land t.mask in
  t.next.(i) <- t.buckets.(b);
  t.buckets.(b) <- i;
  !work

(* ------------------------------------------------------------------ *)
(* Two-phase build: [append] entries without bucket linking, then one
   [seal] links every chain and settles the resize bill. The executor
   uses this path exclusively: it decouples entry writing (whose key
   hashes the morsel workers compute in parallel) from bucket state,
   and it makes chain order canonical — seal links entries from the
   highest payload down, so probes traverse each chain in ascending
   payload order no matter how the build was scheduled. That canonical
   order is one pillar of the serial-vs-morsel byte-identity guarantee.

   Work parity with the incremental path: [insert] charges 1 per entry
   plus, when resizable, a rehash of [count] entries every time an
   insert finds [count >= buckets] (so at count = B0, 2*B0, 4*B0, ...).
   The caller charges the 1-per-entry part itself; [seal] replays the
   resize schedule against the final count and returns exactly the work
   the interleaved rehashes would have charged — totals are identical,
   only the trip point within the build moves, and the work budget
   trips on totals. Do not mix [insert] and [append] on one table. *)

let append t ~hash ~payload =
  grow_entries t;
  let i = t.count in
  t.count <- i + 1;
  t.hashes.(i) <- hash;
  t.payloads.(i) <- payload

(* Final load-factor telemetry across sealed tables, surfaced by
   [--gc-stats] and the Obs.Metrics registry (which owns the cells). *)
let lf_tables = Obs.Metrics.counter "exec.join_table.tables"
let lf_entries = Obs.Metrics.counter "exec.join_table.entries"
let lf_buckets = Obs.Metrics.counter "exec.join_table.buckets"
let lf_max_permille = Obs.Metrics.gauge "exec.join_table.max_load_permille"

type load_stats = {
  ls_tables : int;
  ls_entries : int;
  ls_buckets : int;
  ls_mean_load : float;
  ls_max_load : float;
}

let load_stats () =
  let tables = Obs.Metrics.Counter.value lf_tables in
  let entries = Obs.Metrics.Counter.value lf_entries in
  let buckets = Obs.Metrics.Counter.value lf_buckets in
  {
    ls_tables = tables;
    ls_entries = entries;
    ls_buckets = buckets;
    ls_mean_load =
      (if buckets = 0 then 0.0 else float_of_int entries /. float_of_int buckets);
    ls_max_load = Obs.Metrics.Gauge.value lf_max_permille /. 1000.0;
  }

let reset_load_stats () =
  Obs.Metrics.Counter.reset lf_tables;
  Obs.Metrics.Counter.reset lf_entries;
  Obs.Metrics.Counter.reset lf_buckets;
  Obs.Metrics.Gauge.reset lf_max_permille

let seal t =
  let work = ref 0 in
  if t.resizable then begin
    let b = ref t.initial_buckets in
    while t.count > !b do
      work := !work + !b;
      b := 2 * !b
    done;
    (* One allocation straight to the final size instead of the
       incremental path's chain of doublings-plus-relinks. *)
    if !b <> Array.length t.buckets then begin
      t.buckets <- Array.make !b (-1);
      t.mask <- !b - 1
    end
  end;
  for i = t.count - 1 downto 0 do
    let b = t.hashes.(i) land t.mask in
    t.next.(i) <- t.buckets.(b);
    t.buckets.(b) <- i
  done;
  Obs.Metrics.Counter.incr lf_tables;
  Obs.Metrics.Counter.add lf_entries t.count;
  Obs.Metrics.Counter.add lf_buckets (Array.length t.buckets);
  Obs.Metrics.Gauge.set_max lf_max_permille
    (float_of_int (1000 * t.count / Array.length t.buckets));
  !work

let probe t ~hash ~f =
  (* Chain entries are hash comparisons on consecutive memory — charge a
     quarter of a tuple's work each, matching the relative CPU weights of
     the cost models. *)
  let chain = ref 0 in
  let i = ref t.buckets.(hash land t.mask) in
  while !i >= 0 do
    incr chain;
    if t.hashes.(!i) = hash then f t.payloads.(!i);
    i := t.next.(!i)
  done;
  1 + (!chain / 4)
