(** Cross-query join-build recycling.

    A budgeted, sharded cache of sealed {!Join_table}s plus the
    build-side base-table selection they were built over, keyed on
    everything the build is a pure function of: table identity,
    predicate digest, ordered join-key columns, column-encoding
    fingerprint, and planned bucket sizing. On a hit the executor skips
    the build-side scan and the hash build entirely and goes probe-only
    — while *replaying* the skipped simulated work charges, so results,
    work accounting, and timeout behaviour stay byte-identical to an
    uncached run. The savings is wall-clock only, which is the point.

    Entries are immutable once published and safe to share across any
    number of serving domains. Eviction is LRU under a byte budget. *)

type t

type key

type entry = {
  e_rows : int array;  (** surviving row ids of the build-side scan *)
  e_nrows : int;
  e_table : Join_table.t;  (** sealed; probe-only from here on *)
  e_scan_work : int;  (** replayed on hit: the full-table scan charge *)
  e_build_work : int;  (** replayed on hit: 1 per build row *)
  e_seal_work : int;  (** replayed on hit: the seal's resize bill *)
  e_bytes : int;
  e_tick : int Atomic.t;  (** LRU recency stamp *)
}

val default_budget_bytes : int
(** 64 MiB. *)

val create : ?shards:int -> ?budget_bytes:int -> unit -> t
(** Raises [Invalid_argument] when [budget_bytes < 1]. *)

(** {1 Key construction} *)

val pred_digest : Query.Predicate.t -> string
(** Canonical digest of a scan's predicate AST (atoms are pure data). *)

val encoding_fingerprint : Storage.Table.t -> string
(** Digest of the table's row count and per-column (name, encoding,
    byte size): a recode or reload invalidates cached builds over the
    old physical layout. *)

val make_key :
  table:string ->
  table_rows:int ->
  pred:string ->
  cols:int list ->
  encoding:string ->
  buckets:int ->
  resizable:bool ->
  key
(** [cols] must be in edge order — composite hashes fold columns in
    order, so a permutation is a different physical table. [buckets]
    is {!Join_table.planned_buckets} for the build's estimate: the same
    build under a different cardinality estimate is a different table
    (bucket sizing from estimates is the paper's pathology, and the
    cache must not launder it away). *)

(** {1 Lookup / install} *)

val find : t -> key -> entry option
(** Counts a hit or miss and, on hit, touches the entry's LRU stamp. *)

val install :
  t ->
  key ->
  rows:int array ->
  nrows:int ->
  table:Join_table.t ->
  scan_work:int ->
  build_work:int ->
  seal_work:int ->
  unit
(** Publish a freshly sealed build. [rows] must be a private copy (the
    executor's scratch arrays are pooled and recycled); [table] must be
    sealed and never touched again. First writer wins on a racing key;
    an install that pushes the cache over budget evicts least-recently
    used entries until it fits (possibly including the new entry). *)

(** {1 Telemetry} *)

type stats = {
  hits : int;
  misses : int;
  installs : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget_bytes : int;
}

val stats : t -> stats
val hit_rate : stats -> float
