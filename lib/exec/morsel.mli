(** Morsel scheduler: work-stealing cursor, shared phase accumulators,
    and scheduler telemetry for the executor's intra-query parallelism.

    All shared mutable work-distribution state for morsel execution
    lives here (domlint R6 enforces that); the executor builds each
    parallel phase from a {!cursor} handing out morsel indices plus
    {!acc} counters that make the work/row budgets trip on global
    totals — the same condition the serial path checks, which is one
    half of the byte-identical-results argument (the other half is
    assembly of per-morsel output in morsel-index order). *)

(** {1 Cursor} *)

type cursor

val cursor : int -> cursor
(** [cursor n] hands out morsel indices [0 .. n-1], each exactly once,
    across any number of concurrent claimants. *)

val claim : cursor -> int
(** Next unclaimed morsel index, or [-1] when exhausted. Claims after
    exhaustion are side-effect free and keep returning [-1]. *)

(** {1 Phase accumulators} *)

type acc
(** A shared monotone counter for one parallel phase (work units, rows
    emitted). *)

val acc : unit -> acc
val add : acc -> int -> int
(** [add a n] adds [n] and returns the committed total including it —
    workers compare that against the engine budget and raise on the
    same global condition the serial path would. *)

val total : acc -> int
val reset : acc -> unit

(** {1 Telemetry} *)

type stats = {
  st_phases : int;  (** parallel phases run since the last reset *)
  st_dispatched : int;  (** morsels handed out *)
  st_stolen : int;  (** morsels run off the calling domain (slot > 0) *)
  st_skew : float;
      (** mean busiest-slot share of a phase relative to a perfect
          split; 1.0 = balanced, [size] = one slot did everything *)
}

val note_phase : int array -> unit
(** Record one finished phase from per-slot claim counts (index 0 is
    the calling domain). Phases with zero claims are ignored. *)

val stats : unit -> stats
val reset_stats : unit -> unit
