(** Query-engine configurations — the axes of Section 4's experiments.

    [default_9_4] is stock PostgreSQL 9.4 behaviour: nested-loop joins
    allowed, hash tables sized once from the optimizer's cardinality
    estimate. [no_nl] disables the risky non-index nested-loop join
    (Figure 6b). [robust] additionally resizes hash tables at runtime,
    the backported 9.5 patch (Figure 6c). *)

type t = {
  name : string;
  allow_nl_join : bool;
  resize_hash_tables : bool;
  work_limit : int;  (** Work units before a query times out. *)
  row_limit : int;
      (** Maximum rows one intermediate result may materialize — the
          stand-in for exceeding work_mem; exceeding it counts as a
          timeout. *)
  hash_bucket_floor : int;
      (** Minimum hash-join bucket count regardless of the estimate
          (PostgreSQL-style; 1024 by default). *)
  morsel_exec : bool;
      (** Allow morsel-driven intra-query parallelism when the executor
          is handed a worker pool. [false] forces the serial reference
          path even with a pool — the toggle the determinism guard
          flips. Results are byte-identical either way; only wall clock
          changes. On by default. *)
  morsel_min_rows : int;
      (** Input rows below which a phase stays serial even with a pool:
          with 4096-row morsels anything under ~2 morsels has nothing
          to parallelize and would only pay the hand-off. *)
}

val default_9_4 : t
val no_nl : t
val robust : t

val work_units_per_ms : float
(** Conversion constant between simulated work units and reported
    milliseconds. *)

val default_work_limit : int
val default_row_limit : int
