type t = {
  name : string;
  allow_nl_join : bool;
  resize_hash_tables : bool;
  work_limit : int;
  row_limit : int;
  hash_bucket_floor : int;
  morsel_exec : bool;
  morsel_min_rows : int;
}

let work_units_per_ms = 1000.0

let default_work_limit = 100_000_000 (* = 100 simulated seconds *)

let default_row_limit = 12_000_000

let default_9_4 =
  {
    name = "default";
    allow_nl_join = true;
    resize_hash_tables = false;
    work_limit = default_work_limit;
    row_limit = default_row_limit;
    hash_bucket_floor = 1024;
    morsel_exec = true;
    morsel_min_rows = 8192;
  }

let no_nl = { default_9_4 with name = "no nested-loop join"; allow_nl_join = false }

let robust =
  { no_nl with name = "no nested-loop join + rehashing"; resize_hash_tables = true }
