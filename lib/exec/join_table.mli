(** The executor's hash table for hash joins, with explicit bucket
    management so that the paper's undersized-hash-table pathology
    (Section 4.1 / Figure 6) is physically reproduced.

    In fixed mode the bucket count is chosen once from the optimizer's
    cardinality estimate — underestimates produce long collision chains
    whose traversal is charged to the query. In resizing mode (the 9.5
    patch) the table doubles when the load factor exceeds 1, and the
    rehash work is charged instead. *)

type t

val create :
  ?bucket_floor:int ->
  estimated_rows:float ->
  ?actual_rows:int ->
  resizable:bool ->
  unit ->
  t
(** [bucket_floor] defaults to 1024, PostgreSQL's effective minimum.
    Buckets are always sized from [estimated_rows] — preserving the
    paper's undersized-table pathology. [actual_rows] (the build side's
    known materialized cardinality) pre-sizes only the entry arrays so
    large builds skip the incremental doubling copies. *)

val planned_buckets : ?bucket_floor:int -> estimated_rows:float -> unit -> int
(** The initial bucket count {!create} would choose for this floor and
    estimate — the sizing half of the recycling cache's key, so a
    cached sealed table is only reused where a fresh build would have
    been bucketed identically. *)

val bucket_count : t -> int

val entry_count : t -> int

val byte_size : t -> int
(** Physical bytes of the table's bucket and entry arrays (capacity,
    not live count) — what a recycled table keeps resident. *)

val insert : t -> hash:int -> payload:int -> int
(** Add an entry; returns the work units spent (1, plus amortized rehash
    work when a resize triggers). Incremental reference path — do not
    mix with {!append}/{!seal} on the same table. *)

val append : t -> hash:int -> payload:int -> unit
(** Stage an entry without linking it into a bucket chain; probes see
    it only after {!seal}. Charge 1 work unit per appended row yourself
    (matching {!insert}'s base cost). *)

val seal : t -> int
(** Link every staged entry's chain and settle the resize bill: returns
    exactly the rehash work the incremental {!insert} schedule would
    have charged for the final entry count (0 when not resizable), and
    replaces the growth-by-rehash chain of copies with one allocation
    at the final bucket count. Chains come out in ascending payload
    order regardless of build schedule — the canonical probe order the
    serial-vs-morsel identity guarantee relies on. Call exactly once,
    after the last {!append}. *)

(** {1 Load-factor telemetry} *)

type load_stats = {
  ls_tables : int;  (** tables sealed since the last reset *)
  ls_entries : int;
  ls_buckets : int;
  ls_mean_load : float;  (** entries per bucket across all sealed tables *)
  ls_max_load : float;  (** worst single table's final load factor *)
}

val load_stats : unit -> load_stats
val reset_load_stats : unit -> unit

val probe : t -> hash:int -> f:(int -> unit) -> int
(** Visit the payloads of every entry in the hash's chain (callers
    re-check real key equality); returns the work units spent
    (1 + chain length). *)

val mix : int -> int
(** Finalizer-style integer hash (SplitMix64 mixing), used to build entry
    hashes from key values. *)

val combine : int -> int -> int
(** Mix a second key column into a composite hash. *)
