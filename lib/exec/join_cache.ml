(* Cross-query join-build recycling: a budgeted, sharded cache of sealed
   {!Join_table}s together with the base-table selection they were built
   over. A JOB workload re-executes the same queries (and the same
   predicated base-table scans) thousands of times; every hash join whose
   build side is a base-relation scan rebuilds a table that is a pure
   function of

     (table contents, scan predicate, key columns, bucket sizing)

   so the serving loop can skip the scan and the build entirely and go
   probe-only. Keys capture everything the build depends on:

   - table name + row count (guards against a different database
     instance sharing one cache by mistake),
   - a digest of the scan's predicate AST,
   - the ordered join-key columns (composite hashes fold columns in edge
     order, so order is semantic),
   - an encoding fingerprint of the table's columns (recoding preserves
     codes, but a recode mid-serve must not alias a stale byte budget),
   - the planned bucket count and resizability — buckets are sized from
     the *optimizer's estimate* (the paper's pathology), so the same
     build under a different estimate is a different physical table.

   Entries are immutable once published (the table is sealed, the row
   array is never written again), so concurrent probes from any number
   of serving domains share them without locks. Publication goes through
   {!Util.Shard_map}, whose shard mutex gives the release/acquire fence.

   Eviction is LRU under a byte budget: every hit stamps the entry with
   a global clock tick, and an install that pushes the cache over budget
   evicts stale entries (smallest tick first) until it fits. The clock
   is the one piece of shared mutable serving state here — an
   Atomic.fetch_and_add counter, annotated under domlint R6 and
   confined to this file by domlint R7. *)

type key = {
  k_table : string;
  k_rows : int;
  k_pred : string;  (* digest of the predicate AST *)
  k_cols : int list;  (* join-key columns, in edge order *)
  k_encoding : string;  (* fingerprint of the table's column encodings *)
  k_buckets : int;  (* Join_table.planned_buckets for this build *)
  k_resizable : bool;
}

type entry = {
  e_rows : int array;  (* surviving row ids of the build-side scan *)
  e_nrows : int;
  e_table : Join_table.t;  (* sealed; probe-only from here on *)
  e_scan_work : int;  (* replayed work: full-table scan charge *)
  e_build_work : int;  (* replayed work: 1 per build row *)
  e_seal_work : int;  (* replayed work: the seal's resize bill *)
  e_bytes : int;
  e_tick : int Atomic.t;  (* LRU stamp; later = more recently used *)
}

type t = {
  budget_bytes : int;
  map : (key, entry) Util.Shard_map.t;
  clock : int Atomic.t;
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_installs : int Atomic.t;
  c_evictions : int Atomic.t;
  reg_lock : Mutex.t;
  (* All live entries, for the eviction scan; guarded by [reg_lock]
     along with [reg_bytes]. Entry counts stay small (distinct build
     sides of a 113-query workload), so a linear victim scan per
     eviction is cheaper than maintaining an ordered index. *)
  mutable registry : (key * entry) list;
  mutable reg_bytes : int;
}

(* Process-wide totals mirrored into the Obs.Metrics registry. The
   per-instance [c_*] cells stay authoritative for per-run reports
   (BENCH_serve.json deltas are per cache); the registry rows aggregate
   across every cache the process ever created. *)
let m_hits = Obs.Metrics.counter "exec.join_cache.hits"
let m_misses = Obs.Metrics.counter "exec.join_cache.misses"
let m_installs = Obs.Metrics.counter "exec.join_cache.installs"
let m_evictions = Obs.Metrics.counter "exec.join_cache.evictions"

let default_budget_bytes = 64 * 1024 * 1024

let create ?(shards = 16) ?(budget_bytes = default_budget_bytes) () =
  if budget_bytes < 1 then
    invalid_arg "Join_cache.create: budget_bytes must be >= 1";
  {
    budget_bytes;
    (* The shard capacity is a hard backstop only: the byte budget is
       the real bound, enforced below through Shard_map.remove. *)
    map = Util.Shard_map.create ~shards ~capacity:4096 ();
    clock = Atomic.make 0;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_installs = Atomic.make 0;
    c_evictions = Atomic.make 0;
    reg_lock = Mutex.create ();
    registry = [];
    reg_bytes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Key construction                                                    *)

let pred_digest (preds : Query.Predicate.t) =
  (* Predicate atoms are pure data (ints, strings, lists), so their
     marshaled form is a canonical serialization of the AST. *)
  Digest.to_hex (Digest.string (Marshal.to_string preds []))

let encoding_fingerprint table =
  let b = Buffer.create 128 in
  Buffer.add_string b (string_of_int (Storage.Table.row_count table));
  for i = 0 to Storage.Table.column_count table - 1 do
    let c = Storage.Table.column table i in
    Buffer.add_char b '|';
    Buffer.add_string b (Storage.Column.name c);
    Buffer.add_char b ':';
    Buffer.add_string b (Storage.Column.encoding_name (Storage.Column.encoding c));
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int (Storage.Column.byte_size c))
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let make_key ~table ~table_rows ~pred ~cols ~encoding ~buckets ~resizable =
  {
    k_table = table;
    k_rows = table_rows;
    k_pred = pred;
    k_cols = cols;
    k_encoding = encoding;
    k_buckets = buckets;
    k_resizable = resizable;
  }

(* ------------------------------------------------------------------ *)
(* Lookup / install / eviction                                         *)

let tick t =
  (* domlint: safe R6 — LRU clock: unique recency stamps, never used to
     distribute work between domains *)
  Atomic.fetch_and_add t.clock 1

let find t key =
  match Util.Shard_map.find_opt t.map key with
  | Some e ->
      Atomic.incr t.c_hits;
      Obs.Metrics.Counter.incr m_hits;
      Atomic.set e.e_tick (tick t);
      Some e
  | None ->
      Atomic.incr t.c_misses;
      Obs.Metrics.Counter.incr m_misses;
      None

(* Under [reg_lock]: drop smallest-tick entries until within budget.
   Readers already holding an evicted entry keep using it (immutable;
   the GC keeps it alive) — eviction only unpublishes the key. *)
let evict_to_budget t =
  while t.reg_bytes > t.budget_bytes && t.registry <> [] do
    let victim =
      List.fold_left
        (fun acc (k, e) ->
          match acc with
          | Some (_, best) when Atomic.get best.e_tick <= Atomic.get e.e_tick ->
              acc
          | _ -> Some (k, e))
        None t.registry
    in
    match victim with
    | None -> ()
    | Some (vk, ve) ->
        ignore (Util.Shard_map.remove t.map vk);
        t.registry <- List.filter (fun (k, _) -> k != vk) t.registry;
        t.reg_bytes <- t.reg_bytes - ve.e_bytes;
        Atomic.incr t.c_evictions;
        Obs.Metrics.Counter.incr m_evictions
  done

let entry_overhead_bytes = 160 (* record + key, order of magnitude *)

let install t key ~rows ~nrows ~table ~scan_work ~build_work ~seal_work =
  let bytes =
    Join_table.byte_size table + (8 * Array.length rows) + entry_overhead_bytes
  in
  let entry =
    {
      e_rows = rows;
      e_nrows = nrows;
      e_table = table;
      e_scan_work = scan_work;
      e_build_work = build_work;
      e_seal_work = seal_work;
      e_bytes = bytes;
      e_tick = Atomic.make (tick t);
    }
  in
  let _, created = Util.Shard_map.find_or_add t.map key (fun () -> entry) in
  if created then begin
    Atomic.incr t.c_installs;
    Obs.Metrics.Counter.incr m_installs;
    Mutex.lock t.reg_lock;
    t.registry <- (key, entry) :: t.registry;
    t.reg_bytes <- t.reg_bytes + bytes;
    evict_to_budget t;
    Mutex.unlock t.reg_lock
  end

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

type stats = {
  hits : int;
  misses : int;
  installs : int;
  evictions : int;
  entries : int;
  bytes : int;
  budget_bytes : int;
}

let stats t =
  Mutex.lock t.reg_lock;
  let entries = List.length t.registry in
  let bytes = t.reg_bytes in
  Mutex.unlock t.reg_lock;
  {
    hits = Atomic.get t.c_hits;
    misses = Atomic.get t.c_misses;
    installs = Atomic.get t.c_installs;
    evictions = Atomic.get t.c_evictions;
    entries;
    bytes;
    budget_bytes = t.budget_bytes;
  }

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
