(* The executor's morsel scheduler: the one place intra-query work
   distribution state lives. A phase (scan, hash build, probe) slices
   its input into fixed-size morsels and hands them to pool workers
   through an atomic cursor; per-phase work and row totals accumulate
   in shared counters so the work/row budgets trip on the same global
   condition as the serial path.

   domlint R6 confines [Atomic.fetch_and_add] to this module and
   [util/domain_pool.ml]: ad-hoc cursors elsewhere would bypass both
   the determinism argument (assembly by morsel index) and the
   accounting contract (monotone shared totals checked against the
   serial budget). *)

type cursor = { morsels : int; next : int Atomic.t }

let cursor morsels = { morsels; next = Atomic.make 0 }

(* Claims return -1 once exhausted. The pre-check keeps repeated claims
   after exhaustion from advancing the counter (the same wrap-around
   hazard Domain_pool documents), and makes post-exhaustion claims
   side-effect free — the cursor law the QCheck tests pin down. *)
let claim c =
  if Atomic.get c.next >= c.morsels then -1
  else
    let i = Atomic.fetch_and_add c.next 1 in
    if i >= c.morsels then -1 else i

(* Shared accumulator for one parallel phase. [add] returns the total
   including this contribution, so a worker can compare the committed
   global figure against a budget without a second read. *)
type acc = int Atomic.t

let acc () = Atomic.make 0
let add (a : acc) n = Atomic.fetch_and_add a n + n
let total (a : acc) = Atomic.get a
let reset (a : acc) = Atomic.set a 0

(* ------------------------------------------------------------------ *)
(* Scheduler telemetry. Process-global and monotone between resets;
   counters are observability only — never part of query results, which
   stay byte-identical at any worker count. The cells live in the
   Obs.Metrics registry (the process-wide telemetry home, domlint R8);
   this module holds the handles and the derived [stats] view. *)

let phases = Obs.Metrics.counter "exec.morsel.phases"
let dispatched = Obs.Metrics.counter "exec.morsel.dispatched"
let stolen = Obs.Metrics.counter "exec.morsel.stolen"
let skew_permille = Obs.Metrics.counter "exec.morsel.skew_permille"

(* [note_phase claims] records one finished parallel phase from the
   per-slot claim counts. "Stolen" counts morsels that ran off the
   caller's domain (slot 0 is the caller); "skew" is the busiest slot's
   share relative to a perfect split, 1000 = perfectly balanced. *)
let note_phase claims =
  let nslots = Array.length claims in
  let total = Array.fold_left ( + ) 0 claims in
  if total > 0 && nslots > 0 then begin
    Obs.Metrics.Counter.incr phases;
    Obs.Metrics.Counter.add dispatched total;
    Obs.Metrics.Counter.add stolen (total - claims.(0));
    let busiest = Array.fold_left max 0 claims in
    Obs.Metrics.Counter.add skew_permille (1000 * busiest * nslots / total)
  end

type stats = {
  st_phases : int;
  st_dispatched : int;
  st_stolen : int;
  st_skew : float;  (* mean busiest-slot share, 1.0 = balanced *)
}

let stats () =
  let p = Obs.Metrics.Counter.value phases in
  {
    st_phases = p;
    st_dispatched = Obs.Metrics.Counter.value dispatched;
    st_stolen = Obs.Metrics.Counter.value stolen;
    st_skew =
      (if p = 0 then 1.0
       else
         float_of_int (Obs.Metrics.Counter.value skew_permille)
         /. (1000.0 *. float_of_int p));
  }

let reset_stats () =
  Obs.Metrics.Counter.reset phases;
  Obs.Metrics.Counter.reset dispatched;
  Obs.Metrics.Counter.reset stolen;
  Obs.Metrics.Counter.reset skew_permille
