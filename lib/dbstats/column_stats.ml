type t = {
  row_count : int;
  null_fraction : float;
  distinct_sampled : float;
  distinct_exact : float;
  mcv : (int * float) array;
  histogram : Histogram.t option;
  rank_of_code : int array option;
}

(* Haas & Stokes Duj1 estimator, the one PostgreSQL uses:
   d = n*d_s / (n - f1 + f1*n/N)
   where d_s = distinct in sample, f1 = values seen exactly once, n =
   sample size, N = table rows. *)
let duj1 ~sample_size ~table_rows ~sample_distinct ~singletons =
  if sample_size = 0 then 0.0
  else if sample_size >= table_rows then float_of_int sample_distinct
  else begin
    let n = float_of_int sample_size in
    let big_n = float_of_int table_rows in
    let d = float_of_int sample_distinct in
    let f1 = float_of_int singletons in
    let denom = n -. f1 +. (f1 *. n /. big_n) in
    if denom <= 0.0 then d else Float.min big_n (n *. d /. denom)
  end

let build prng table ~col ~sample_rows ?(buckets = 100) ?(mcv_entries = 100) () =
  ignore prng;
  let column = Storage.Table.column table col in
  let data = Storage.Column.reader column in
  let row_count = Storage.Column.length column in
  let null_code = Storage.Value.null_code in

  (* Rank translation for string columns. *)
  let rank_of_code =
    match Storage.Column.dict column with
    | None -> None
    | Some dict ->
        let n = Storage.Dict.size dict in
        let codes = Array.init n (fun c -> c) in
        Array.sort
          (fun a b -> String.compare (Storage.Dict.get dict a) (Storage.Dict.get dict b))
          codes;
        let ranks = Array.make n 0 in
        Array.iteri (fun r c -> ranks.(c) <- r) codes;
        Some ranks
  in
  let to_rank code =
    match rank_of_code with None -> code | Some ranks -> ranks.(code)
  in

  (* Sample pass: frequencies per code. *)
  let freqs = Hashtbl.create 512 in
  let nulls = ref 0 in
  let non_null = ref 0 in
  Array.iter
    (fun row ->
      let v = data row in
      if v = null_code then incr nulls
      else begin
        incr non_null;
        match Hashtbl.find_opt freqs v with
        | Some c -> Hashtbl.replace freqs v (c + 1)
        | None -> Hashtbl.add freqs v 1
      end)
    sample_rows;
  let sample_size = Array.length sample_rows in
  let null_fraction =
    if sample_size = 0 then 0.0 else float_of_int !nulls /. float_of_int sample_size
  in
  let sample_distinct = Hashtbl.length freqs in
  let singletons = Hashtbl.fold (fun _ c acc -> if c = 1 then acc + 1 else acc) freqs 0 in
  let distinct_sampled =
    Float.max 1.0
      (duj1 ~sample_size:!non_null ~table_rows:row_count ~sample_distinct ~singletons)
  in
  let distinct_exact = Float.max 1.0 (float_of_int (Storage.Column.distinct_count column)) in

  (* MCVs: codes seen at least twice in the sample, most frequent first. *)
  let pairs = Hashtbl.fold (fun code c acc -> (code, c) :: acc) freqs [] in
  let pairs = List.filter (fun (_, c) -> c >= 2) pairs in
  let pairs = List.sort (fun (_, a) (_, b) -> compare b a) pairs in
  let mcv =
    pairs
    |> List.filteri (fun i _ -> i < mcv_entries)
    |> List.map (fun (code, c) ->
           (code, float_of_int c /. float_of_int (max 1 sample_size)))
    |> Array.of_list
  in
  let mcv_codes = Hashtbl.create 32 in
  Array.iter (fun (code, _) -> Hashtbl.replace mcv_codes code ()) mcv;

  (* Histogram over the non-MCV part of the sample, in rank space. *)
  let hist_values =
    Array.of_list
      (Array.fold_left
         (fun acc row ->
           let v = data row in
           if v = null_code || Hashtbl.mem mcv_codes v then acc else to_rank v :: acc)
         [] sample_rows)
  in
  let histogram = Histogram.build ~buckets hist_values in
  {
    row_count;
    null_fraction;
    distinct_sampled;
    distinct_exact;
    mcv;
    histogram;
    rank_of_code;
  }

let mcv_fraction_total t = Array.fold_left (fun acc (_, f) -> acc +. f) 0.0 t.mcv

let mcv_find t code =
  let found = ref None in
  Array.iter (fun (c, f) -> if c = code && !found = None then found := Some f) t.mcv;
  !found

let rank t code = match t.rank_of_code with None -> code | Some ranks -> ranks.(code)

let rank_of_string t column s =
  match (t.rank_of_code, Storage.Column.dict column) with
  | Some ranks, Some dict ->
      (* Count dictionary entries strictly smaller than s. *)
      let smaller = ref 0 in
      Storage.Dict.iter (fun _ entry -> if String.compare entry s < 0 then incr smaller) dict;
      ignore ranks;
      !smaller
  | _ -> invalid_arg "Column_stats.rank_of_string: not a string column"
