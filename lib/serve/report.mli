(** Latency/throughput aggregation and the [BENCH_serve.json] renderer
    for the serving benchmark. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile of an unsorted sample; the quantile is in
    [0, 1]. Returns 0 on an empty sample. Does not modify the input. *)

type arm = {
  a_completed : int;
  a_wall_s : float;
  a_qps : float;
  a_mean_ms : float;
  a_p50_ms : float;
  a_p95_ms : float;
  a_p99_ms : float;
}

val arm_of : Engine.outcome -> arm

type row = {
  clients : int;
  queries : int;
  on : arm;  (** recycling cache enabled *)
  off : arm;  (** same run shape, cache disabled *)
  cache : Exec.Join_cache.stats;
  hit_rate : float;
  retired_sessions : int;
  admission_peak : int;
  identity : bool;
      (** replies byte-identical to the uncached serial reference *)
}

val to_json :
  scale:float ->
  seed:int ->
  theta:float ->
  cache_mb:int ->
  jobs:int ->
  exec_jobs:int ->
  cores:int ->
  row list ->
  string
