(** The concurrent query-serving engine behind [jobench serve].

    Simulated client sessions replay pregenerated {!Traffic} scripts
    against one shared registry pipeline ({!Core.Session}): statements
    bind through the pipeline's bind cache, plan through its plan
    cache, and execute on the morsel executor — optionally with a
    shared {!Exec.Join_cache} recycling hash-join builds across queries
    and sessions. Sessions are distributed over the serve pool by a
    work-stealing cursor; {!Admission} bounds globally in-flight
    queries; an optional per-session work budget retires sessions.

    Replies are deterministic — a pure function of the traffic seed and
    the planning/engine configuration, independent of worker count,
    admission limit, scheduling, and cache on/off (the executor's
    recycling cache replays skipped work charges). Only measured
    wall-clock latency varies. [jobench serve] enforces this by
    comparing every arm against an uncached serial reference run. *)

type reply = {
  p_query : int;  (** catalog index *)
  p_rows : int;
  p_work : int;
  p_timed_out : bool;
  p_mins : string list;  (** rendered MIN() projections *)
}

type config = {
  engine : Exec.Engine_config.t;
  cache : Exec.Join_cache.t option;  (** join-build recycling *)
  exec_pool : Util.Domain_pool.t option;  (** intra-query morsels *)
  serve_pool : Util.Domain_pool.t option;  (** inter-query concurrency *)
  max_inflight : int;  (** admission limit; must be >= 1 *)
  session_budget : int;  (** work units per session; 0 = unlimited *)
}

type outcome = {
  replies : reply array array;
      (** per session, in script order; a session retired by the work
          budget contributes the prefix it completed *)
  latencies_ms : float array;  (** all completed requests, unordered *)
  wall_s : float;
  completed : int;
  issued : int;
  retired_sessions : int;
  admission : Admission.stats;
}

type catalog_entry = {
  ce_name : string;
  ce_query : Core.Session.query;
  ce_choice : Core.Session.plan_choice;
}

val prepare :
  Core.Session.t ->
  ?estimator:string ->
  ?cost_model:string ->
  (string * string) array ->
  catalog_entry array
(** Bind and plan each (name, SQL) statement through the pipeline's
    caches. Serving warm (prepare first, then {!run}) keeps planning
    cost out of the latency measurements; serving cold is also safe —
    the pipeline's memo cells compute each plan exactly once under
    concurrency. *)

val run : Core.Session.t -> catalog_entry array -> Traffic.t -> config -> outcome
(** Raises [Invalid_argument] when [max_inflight < 1]. *)

val replies_equal : reply array array -> reply array array -> bool
(** Deep byte-identity over every reply of every session, including
    script prefix lengths. *)
