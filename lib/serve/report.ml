(* Latency/throughput aggregation and the BENCH_serve.json renderer. *)

(* The one nearest-rank implementation lives in Obs.Histogram; this
   alias keeps the report's call sites and its historical values —
   byte-identical p50/p95/p99 — while deduplicating the math. *)
let percentile = Obs.Histogram.percentile

type arm = {
  a_completed : int;
  a_wall_s : float;
  a_qps : float;
  a_mean_ms : float;
  a_p50_ms : float;
  a_p95_ms : float;
  a_p99_ms : float;
}

let arm_of (o : Engine.outcome) =
  let lat = o.Engine.latencies_ms in
  let n = Array.length lat in
  {
    a_completed = o.Engine.completed;
    a_wall_s = o.Engine.wall_s;
    a_qps =
      (if o.Engine.wall_s <= 0.0 then 0.0
       else float_of_int o.Engine.completed /. o.Engine.wall_s);
    a_mean_ms =
      (if n = 0 then 0.0
       else Array.fold_left ( +. ) 0.0 lat /. float_of_int n);
    a_p50_ms = percentile lat 0.50;
    a_p95_ms = percentile lat 0.95;
    a_p99_ms = percentile lat 0.99;
  }

type row = {
  clients : int;
  queries : int;
  on : arm;  (* recycling cache enabled *)
  off : arm;  (* same run shape, cache disabled *)
  cache : Exec.Join_cache.stats;
  hit_rate : float;
  retired_sessions : int;
  admission_peak : int;
  identity : bool;  (* replies byte-identical to the serial reference *)
}

let fmt_arm prefix a =
  Printf.sprintf
    "\"%s_qps\": %.2f, \"%s_mean_ms\": %.4f, \"%s_p50_ms\": %.4f, \
     \"%s_p95_ms\": %.4f, \"%s_p99_ms\": %.4f, \"%s_wall_s\": %.4f"
    prefix a.a_qps prefix a.a_mean_ms prefix a.a_p50_ms prefix a.a_p95_ms
    prefix a.a_p99_ms prefix a.a_wall_s

let to_json ~scale ~seed ~theta ~cache_mb ~jobs ~exec_jobs ~cores rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"benchmark\": \"serve\",\n\
       \  \"scale\": %g,\n\
       \  \"seed\": %d,\n\
       \  \"zipf_theta\": %g,\n\
       \  \"cache_mb\": %d,\n\
       \  \"jobs\": %d,\n\
       \  \"exec_jobs\": %d,\n\
       \  \"cores\": %d,\n\
       \  \"rows\": [\n"
       scale seed theta cache_mb jobs exec_jobs cores);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"clients\": %d, \"queries\": %d, %s, %s, \"speedup\": %.3f, \
            \"hit_rate\": %.4f, \"cache_hits\": %d, \"cache_misses\": %d, \
            \"cache_installs\": %d, \"cache_evictions\": %d, \
            \"cache_entries\": %d, \"cache_bytes\": %d, \
            \"retired_sessions\": %d, \"admission_peak\": %d, \
            \"identity\": %b}"
           r.clients r.queries (fmt_arm "on" r.on) (fmt_arm "off" r.off)
           (if r.off.a_qps <= 0.0 then 0.0 else r.on.a_qps /. r.off.a_qps)
           r.hit_rate r.cache.Exec.Join_cache.hits
           r.cache.Exec.Join_cache.misses r.cache.Exec.Join_cache.installs
           r.cache.Exec.Join_cache.evictions r.cache.Exec.Join_cache.entries
           r.cache.Exec.Join_cache.bytes r.retired_sessions r.admission_peak
           r.identity))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
