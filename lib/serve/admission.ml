(* Admission control for the serving loop: a counting gate that bounds
   how many queries execute concurrently. Sessions block in [acquire]
   until a slot frees up — the closed-loop generator's back-pressure.
   All state lives behind the mutex; the condition variable wakes one
   blocked session per release. *)

type t = {
  limit : int;
  m : Mutex.t;
  freed : Condition.t;
  mutable inflight : int;
  mutable peak : int;  (* high-water mark of [inflight] *)
  mutable waits : int;  (* acquires that had to block *)
}

(* Process-wide mirrors in the Obs.Metrics registry; the per-gate
   fields above stay authoritative for per-run reports. *)
let m_waits = Obs.Metrics.counter "serve.admission.waits"
let m_peak = Obs.Metrics.gauge "serve.admission.peak"

let create ~limit =
  if limit < 1 then invalid_arg "Admission.create: limit must be >= 1";
  {
    limit;
    m = Mutex.create ();
    freed = Condition.create ();
    inflight = 0;
    peak = 0;
    waits = 0;
  }

let acquire t =
  Mutex.lock t.m;
  if t.inflight >= t.limit then begin
    t.waits <- t.waits + 1;
    Obs.Metrics.Counter.incr m_waits;
    while t.inflight >= t.limit do
      Condition.wait t.freed t.m
    done
  end;
  t.inflight <- t.inflight + 1;
  if t.inflight > t.peak then begin
    t.peak <- t.inflight;
    Obs.Metrics.Gauge.set_max m_peak (float_of_int t.inflight)
  end;
  Mutex.unlock t.m

let release t =
  Mutex.lock t.m;
  t.inflight <- t.inflight - 1;
  Condition.signal t.freed;
  Mutex.unlock t.m

type stats = { peak : int; waits : int }

let stats t =
  Mutex.lock t.m;
  let s = { peak = t.peak; waits = t.waits } in
  Mutex.unlock t.m;
  s
