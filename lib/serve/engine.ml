(* The concurrent query-serving engine behind [jobench serve].

   N simulated client sessions replay pregenerated request scripts
   ({!Traffic}) against one shared {!Core.Session} (= registry
   pipeline): binding goes through the pipeline's bind cache, planning
   through its plan cache, and execution through the morsel executor
   with an optional shared {!Exec.Join_cache} recycling join builds
   across queries and sessions.

   Concurrency model: session indices are handed out by a work-stealing
   cursor ({!Exec.Morsel.cursor}) to the serve pool's workers; each
   claimed session runs its script to completion in seq order. A
   worker-count-independent replies guarantee falls out of the layers
   below: scripts are pregenerated, binding/planning are memoized pure
   computations, and execution is byte-identical serial vs morsel vs
   recycled (the executor's determinism guarantees) — so only measured
   wall-clock latency depends on scheduling. {!Admission} bounds
   globally in-flight queries; a per-session work budget retires
   sessions deterministically (simulated work is itself deterministic).

   Every mutable serving artifact (per-session reply/latency stores,
   executed counters) is either owned by exactly one worker (arrays
   indexed by the claimed session) or published only after the pool
   joins — no locks beyond admission's. *)

type reply = {
  p_query : int;  (* catalog index *)
  p_rows : int;
  p_work : int;
  p_timed_out : bool;
  p_mins : string list;
}

type config = {
  engine : Exec.Engine_config.t;
  cache : Exec.Join_cache.t option;
  exec_pool : Util.Domain_pool.t option;  (* intra-query morsels *)
  serve_pool : Util.Domain_pool.t option;  (* inter-query concurrency *)
  max_inflight : int;
  session_budget : int;  (* work units per session; 0 = unlimited *)
}

type outcome = {
  replies : reply array array;  (* per session, in script order *)
  latencies_ms : float array;  (* all completed requests, unordered *)
  wall_s : float;
  completed : int;
  issued : int;
  retired_sessions : int;  (* stopped early by the work budget *)
  admission : Admission.stats;
}

type catalog_entry = {
  ce_name : string;
  ce_query : Core.Session.query;
  ce_choice : Core.Session.plan_choice;
}

(* Per-request observability: a trace span covering admission wait plus
   execution (a = catalog index, b = simulated work), and a registered
   latency histogram in microseconds. Neither affects replies — only
   measured wall time was ever scheduling-dependent. *)
let ph_request = Obs.Trace.intern "serve.request"
let request_us = Obs.Metrics.histogram "serve.request_us"

let prepare pipe ?estimator ?cost_model statements =
  Array.map
    (fun (name, sql) ->
      let q = Core.Session.sql pipe ~name sql in
      let choice = Core.Session.optimize pipe ?estimator ?cost_model q in
      { ce_name = name; ce_query = q; ce_choice = choice })
    statements

let run pipe (catalog : catalog_entry array) (traffic : Traffic.t) cfg =
  if cfg.max_inflight < 1 then
    invalid_arg "Engine.run: max_inflight must be >= 1";
  let nsessions = Traffic.sessions traffic in
  let adm = Admission.create ~limit:cfg.max_inflight in
  let reply_store =
    Array.map
      (fun script ->
        Array.make (Array.length script)
          { p_query = -1; p_rows = 0; p_work = 0; p_timed_out = false; p_mins = [] })
      traffic.Traffic.scripts
  in
  let lat_store =
    Array.map (fun script -> Array.make (Array.length script) 0.0)
      traffic.Traffic.scripts
  in
  let executed = Array.make nsessions 0 in
  let retired = Array.make nsessions false in
  let run_session s =
    let script = traffic.Traffic.scripts.(s) in
    let out = reply_store.(s) and lat = lat_store.(s) in
    let n = Array.length script in
    let spent = ref 0 in
    let k = ref 0 in
    let stop = ref false in
    while (not !stop) && !k < n do
      let r = script.(!k) in
      if r.Traffic.r_think_ms > 0.0 then
        Unix.sleepf (r.Traffic.r_think_ms /. 1000.0);
      let t0 = Unix.gettimeofday () in
      let ts = Obs.Trace.start () in
      Admission.acquire adm;
      let entry = catalog.(r.Traffic.r_query) in
      let res =
        Core.Session.run pipe ~engine:cfg.engine ?pool:cfg.exec_pool
          ?cache:cfg.cache entry.ce_query entry.ce_choice
      in
      Admission.release adm;
      Obs.Trace.span ph_request ~t0:ts ~a:r.Traffic.r_query
        ~b:res.Exec.Executor.work;
      let t1 = Unix.gettimeofday () in
      Obs.Metrics.Hist.observe request_us
        (int_of_float ((t1 -. t0) *. 1e6));
      out.(!k) <-
        {
          p_query = r.Traffic.r_query;
          p_rows = res.Exec.Executor.rows;
          p_work = res.Exec.Executor.work;
          p_timed_out = res.Exec.Executor.timed_out;
          p_mins = List.map Storage.Value.to_string res.Exec.Executor.mins;
        };
      lat.(!k) <- (t1 -. t0) *. 1000.0;
      incr k;
      if cfg.session_budget > 0 then begin
        spent := !spent + res.Exec.Executor.work;
        if !spent >= cfg.session_budget then begin
          stop := true;
          retired.(s) <- true
        end
      end
    done;
    executed.(s) <- !k
  in
  let cursor = Exec.Morsel.cursor nsessions in
  let worker _slot =
    let s = ref (Exec.Morsel.claim cursor) in
    while !s >= 0 do
      run_session !s;
      s := Exec.Morsel.claim cursor
    done
  in
  let t_start = Unix.gettimeofday () in
  (match cfg.serve_pool with
  | Some p when Util.Domain_pool.size p > 1 -> Util.Domain_pool.run_workers p worker
  | _ -> worker 0);
  let wall_s = Unix.gettimeofday () -. t_start in
  let replies =
    Array.init nsessions (fun s -> Array.sub reply_store.(s) 0 executed.(s))
  in
  let completed = Array.fold_left ( + ) 0 executed in
  let latencies_ms = Array.make completed 0.0 in
  let j = ref 0 in
  Array.iteri
    (fun s lat ->
      Array.blit lat 0 latencies_ms !j executed.(s);
      j := !j + executed.(s))
    lat_store;
  {
    replies;
    latencies_ms;
    wall_s;
    completed;
    issued = Traffic.total traffic;
    retired_sessions =
      Array.fold_left (fun n r -> if r then n + 1 else n) 0 retired;
    admission = Admission.stats adm;
  }

(* Byte-identity across arms: every field of every reply, including how
   far each session got before its budget retired it. *)
let replies_equal (a : reply array array) (b : reply array array) = a = b
