(* Closed-loop traffic generation: every session's request script is
   pregenerated from a master seed before serving starts, so the set of
   queries each session issues — and therefore every reply — is a pure
   function of (seed, sessions, total, catalog, theta, think_ms),
   independent of how the scheduler interleaves the sessions at run
   time. Wall-clock latency is the only nondeterministic output.

   Popularity is Zipfian over the catalog ({!Util.Zipf}, the same
   sampler the data generator uses to plant IMDB's skew): rank 0 is
   the most popular statement. A seeded shuffle maps ranks to catalog
   positions so that "popular" is not always the first query of the
   workload file. Think times, when enabled, are uniform in
   [0, 2*think_ms) — mean [think_ms] — drawn per request from the
   session's own PRNG stream. *)

type request = {
  r_seq : int;  (* position within the session's script *)
  r_query : int;  (* catalog index *)
  r_think_ms : float;  (* pause before issuing this request *)
}

type t = {
  scripts : request array array;  (* one script per session *)
  rank_of : int array;  (* catalog index -> popularity rank *)
}

let generate ~sessions ~total ~catalog ~theta ~think_ms ~seed =
  if sessions < 1 then invalid_arg "Traffic.generate: sessions must be >= 1";
  if catalog < 1 then invalid_arg "Traffic.generate: catalog must be >= 1";
  if total < 0 then invalid_arg "Traffic.generate: total must be >= 0";
  let master = Util.Prng.create seed in
  (* perm.(rank) = catalog index holding that popularity rank. *)
  let perm = Array.init catalog Fun.id in
  Util.Prng.shuffle master perm;
  let rank_of = Array.make catalog 0 in
  Array.iteri (fun rank q -> rank_of.(q) <- rank) perm;
  let zipf = Util.Zipf.create ~n:catalog ~theta in
  (* Each session draws from its own split stream, so adding a session
     never perturbs the scripts of the existing ones. *)
  let rngs = Array.init sessions (fun _ -> Util.Prng.split master) in
  let base = total / sessions and extra = total mod sessions in
  let scripts =
    Array.init sessions (fun s ->
        let rng = rngs.(s) in
        let count = base + if s < extra then 1 else 0 in
        Array.init count (fun i ->
            {
              r_seq = i;
              r_query = perm.(Util.Zipf.sample zipf rng);
              r_think_ms =
                (if think_ms <= 0.0 then 0.0
                 else Util.Prng.float rng (2.0 *. think_ms));
            }))
  in
  { scripts; rank_of }

let sessions t = Array.length t.scripts

let total t = Array.fold_left (fun n s -> n + Array.length s) 0 t.scripts

let distinct_queries t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun script ->
      Array.iter (fun r -> Hashtbl.replace seen r.r_query ()) script)
    t.scripts;
  List.sort compare (Hashtbl.fold (fun q () acc -> q :: acc) seen [])
