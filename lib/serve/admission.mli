(** Admission control: a counting gate bounding concurrent query
    execution in the serving loop. Mutex/condition based; sessions
    block in {!acquire} until a slot frees — the closed-loop traffic
    generator's back-pressure mechanism. *)

type t

val create : limit:int -> t
(** Raises [Invalid_argument] when [limit < 1]. *)

val acquire : t -> unit
(** Take a slot, blocking while [limit] queries are already in flight. *)

val release : t -> unit
(** Free a slot and wake one blocked session. *)

type stats = {
  peak : int;  (** high-water mark of concurrently admitted queries *)
  waits : int;  (** acquires that had to block *)
}

val stats : t -> stats
