(** Closed-loop traffic generation for the serving benchmark.

    Scripts are pregenerated: the queries each simulated session issues
    are a pure function of the master seed and the shape parameters,
    independent of run-time scheduling — the foundation of the serving
    loop's deterministic-replies guarantee. Popularity is Zipfian over
    the catalog with a seeded rank-to-query shuffle; think times are
    uniform with the requested mean, drawn per request from the
    session's own split PRNG stream. *)

type request = {
  r_seq : int;  (** position within the session's script *)
  r_query : int;  (** catalog index *)
  r_think_ms : float;  (** pause before issuing this request *)
}

type t = {
  scripts : request array array;  (** one script per session *)
  rank_of : int array;  (** catalog index -> popularity rank *)
}

val generate :
  sessions:int ->
  total:int ->
  catalog:int ->
  theta:float ->
  think_ms:float ->
  seed:int ->
  t
(** [total] requests are split across [sessions] as evenly as possible
    (earlier sessions get the remainder). [theta = 0] degenerates to
    uniform popularity; the serving benchmark's default is 1.1. A
    non-positive [think_ms] disables think time. Raises
    [Invalid_argument] on [sessions < 1], [catalog < 1] or
    [total < 0]. *)

val sessions : t -> int

val total : t -> int

val distinct_queries : t -> int list
(** Sorted catalog indices appearing anywhere in the scripts — the set
    to pre-plan before timed serving starts. *)
