(** Structural analysis of physical plans: relation coverage, child
    disjointness, cached-set consistency, connectivity of every
    intermediate (undeclared cross products), index-NL inner-is-base,
    and conformance to the enumerator's shape restriction. *)

val check :
  ?subject:string ->
  ?shape:Planner.Search.shape_limit ->
  Query.Query_graph.t ->
  Plan.t ->
  Violation.result
