(** The optimizer sanitizer: composable static-analysis passes over
    optimizer artifacts — plans, cardinality estimates, cost
    annotations and query graphs — run without executing queries.

    Entry points: {!check_all} for the full matrix behind
    [jobench verify], {!ensure_plan} as the cheap structural hook every
    enumerator call site goes through, and the per-pass checks
    re-exported below. *)

module Violation = Violation
module Plan_sanitizer = Plan_sanitizer
module Estimate_sanitizer = Estimate_sanitizer
module Cost_sanitizer = Cost_sanitizer
module Graph_lint = Graph_lint

type enumerator = Dp | Goo | Quickpick of int | Simpli

val enumerator_name : enumerator -> string

val default_enumerators : enumerator list
(** [Dp; Goo; Quickpick 10; Simpli]. *)

val check_graph : ?subject:string -> Query.Query_graph.t -> Violation.result

val check_plan :
  ?subject:string ->
  ?shape:Planner.Search.shape_limit ->
  Query.Query_graph.t ->
  Plan.t ->
  Violation.result

val check_estimates :
  ?subject:string ->
  ?slack:float ->
  ?pk_bound:bool ->
  ?truth:(Util.Bitset.t -> float) ->
  Query.Query_graph.t ->
  Cardest.Estimator.t ->
  Violation.result

val check_costs :
  ?subject:string ->
  ?reported_cost:float ->
  Cost.Cost_model.env ->
  Cost.Cost_model.t ->
  Plan.t ->
  Violation.result

val q_error_checked :
  estimate:float -> truth:float -> (float, string) Result.t

val ensure_plan :
  ?shape:Planner.Search.shape_limit ->
  what:string ->
  Query.Query_graph.t ->
  Plan.t ->
  unit
(** Raise [Invalid_argument] listing every violation when a plan fails
    the structural sanitizer — used by [Core.Session.optimize] and
    [Experiments.Harness.plan_with] so a malformed plan can never flow
    into an executor or a figure. *)

val check_combination :
  ?query:string ->
  ?enumerators:enumerator list ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_nl:bool ->
  graph:Query.Query_graph.t ->
  db:Storage.Database.t ->
  est:Cardest.Estimator.t ->
  model:Cost.Cost_model.t ->
  unit ->
  Violation.result
(** Run every enumerator under one estimator/cost-model pair, sanitize
    each plan structurally and cost-wise, and check DP's cost as a
    lower bound on the heuristics'. *)

val check_all :
  ?query:string ->
  ?enumerators:enumerator list ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_nl:bool ->
  ?slack:float ->
  ?pk_bound:bool ->
  ?truth:(Util.Bitset.t -> float) ->
  graph:Query.Query_graph.t ->
  db:Storage.Database.t ->
  estimators:Cardest.Estimator.t list ->
  models:Cost.Cost_model.t list ->
  unit ->
  Violation.result
(** The full matrix for one query: graph lint once, estimate sanitizer
    per estimator, plan/cost sanitizers per estimator × model ×
    enumerator, differential DP check per estimator × model. *)
