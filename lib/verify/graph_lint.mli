(** Well-formedness lint for bound query graphs, run over the whole
    workload at load time: connectedness, dangling aliases, degenerate
    and duplicate edges, edge columns in range, and PK-side labels that
    match the table's declared primary key. *)

val check : ?subject:string -> Query.Query_graph.t -> Violation.result
