(* Analysis of cost annotations. Costs are recomputed bottom-up with the
   model under scrutiny and each node is checked:

   - finiteness and sign: every scan and join cost is finite and
     non-negative;
   - monotonicity in the subtree: a join costs at least as much as the
     pipeline feeding it. All three models charge the outer child's full
     cost at every join; hash, merge and nested-loop joins additionally
     materialize/build from the inner child, so they must also dominate
     its cost. Index-NL joins are exempt from the inner bound — they
     replace the inner scan with index lookups and legitimately cost
     less than scanning the inner relation;
   - agreement: if the enumerator reported a total cost for the plan, it
     must match the model's recomputation to relative tolerance (a
     mismatch means the search accumulated different numbers than the
     model defines — a classic source of silently wrong plan choices);
   - differential optimality: under one estimate function and cost
     model, exhaustive DP is optimal over the space that contains every
     GOO and QuickPick plan, so its cost may never exceed theirs. *)

module Bitset = Util.Bitset

let pass = "cost-sanitizer"

let rel_tolerance = 1e-6

let is_bad x = Float.is_nan x || x = Float.infinity || x = Float.neg_infinity

let close a b =
  Float.abs (a -. b) <= rel_tolerance *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ?(subject = "cost") ?reported_cost (env : Cost.Cost_model.env)
    (model : Cost.Cost_model.t) plan =
  let c = Violation.collector ~pass ~subject in
  let pp_set s = Format.asprintf "%a" Bitset.pp s in
  let node_ok what set cost =
    Violation.check c (not (is_bad cost)) "%s cost for %s is %h" what
      (pp_set set) cost;
    Violation.check c (is_bad cost || cost >= 0.0)
      "%s cost for %s is negative: %g" what (pp_set set) cost
  in
  let rec walk (node : Plan.t) =
    match node.Plan.op with
    | Plan.Scan rel ->
        let cost = model.Cost.Cost_model.scan_cost env rel in
        node_ok "scan" node.Plan.set cost;
        cost
    | Plan.Join { algo; outer; inner } ->
        let outer_cost = walk outer in
        let inner_cost = walk inner in
        let cost =
          model.Cost.Cost_model.join_cost env algo ~outer ~inner ~outer_cost
            ~inner_cost
        in
        node_ok (Plan.algo_to_string algo) node.Plan.set cost;
        let slack = 1.0 +. rel_tolerance in
        Violation.check c
          (is_bad cost || cost *. slack >= outer_cost)
          "%s at %s costs %g, less than its outer child %s at %g"
          (Plan.algo_to_string algo) (pp_set node.Plan.set) cost
          (pp_set outer.Plan.set) outer_cost;
        (if algo <> Plan.Index_nl_join then
           Violation.check c
             (is_bad cost || cost *. slack >= inner_cost)
             "%s at %s costs %g, less than its inner child %s at %g"
             (Plan.algo_to_string algo) (pp_set node.Plan.set) cost
             (pp_set inner.Plan.set) inner_cost);
        cost
  in
  let total = walk plan in
  (match reported_cost with
  | None -> ()
  | Some reported ->
      Violation.check c
        (is_bad total || close total reported)
        "enumerator reported cost %g but model %s recomputes %g" reported
        model.Cost.Cost_model.name total);
  Violation.result c

(* DP is exhaustive over connected complement pairs, the space every GOO
   and QuickPick plan lives in, so under the same estimates, cost model
   and shape restriction its cost is a lower bound for theirs. *)
let differential ?(subject = "cost") ~dp:(dp_name, dp_cost) rivals =
  let c = Violation.collector ~pass ~subject in
  List.iter
    (fun (name, cost) ->
      Violation.check c
        (is_bad dp_cost || is_bad cost
        || dp_cost <= cost *. (1.0 +. rel_tolerance))
        "%s found cost %g, cheaper than exhaustive %s at %g — DP missed part \
         of its search space"
        name cost dp_name dp_cost)
    rivals;
  Violation.result c
