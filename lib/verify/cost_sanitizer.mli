(** Analysis of cost annotations: finite, non-negative and monotone in
    the subtree for all cost models, agreement between the enumerator's
    reported total and the model's recomputation, and the differential
    DP-optimality bound against heuristic enumerators. *)

val check :
  ?subject:string ->
  ?reported_cost:float ->
  Cost.Cost_model.env ->
  Cost.Cost_model.t ->
  Plan.t ->
  Violation.result
(** Index-NL joins are exempt from the inner-child monotonicity bound:
    they replace the inner scan with index lookups and may legitimately
    cost less than scanning the inner relation. *)

val differential :
  ?subject:string ->
  dp:string * float ->
  (string * float) list ->
  Violation.result
(** [differential ~dp:(name, cost) rivals] flags any rival enumerator
    whose plan costs less than exhaustive DP's under the same estimate
    function, cost model and shape restriction — DP is optimal over the
    space containing every GOO/QuickPick plan, so that can only mean DP
    missed part of its search space. *)
