(** Violations and check accounting shared by all analysis passes.

    Passes never raise on a bad artifact: they count every invariant
    check they evaluate and report the failures, so one run surfaces
    every problem at once. *)

type t = {
  pass : string;  (** which analysis pass fired, e.g. "plan-sanitizer" *)
  subject : string;  (** what was analyzed, e.g. "13d/dp/PostgreSQL" *)
  message : string;  (** human-actionable description *)
}

type result = {
  checks : int;  (** individual invariant checks evaluated *)
  violations : t list;  (** in detection order *)
}

val empty : result
val ok : result -> bool
val merge : result -> result -> result
val merge_all : result list -> result
val to_string : t -> string
val pp_report : Format.formatter -> result -> unit

(** Accumulator used inside a pass. *)
type collector

val collector : pass:string -> subject:string -> collector

val check :
  collector -> bool -> ('a, unit, string, unit) format4 -> 'a
(** [check c cond fmt ...] counts one check and records a violation with
    the formatted message when [cond] is false. *)

val result : collector -> result
