(** Numerical analysis of cardinality estimators over every connected
    subset of a query graph: finiteness, non-negativity, cross-product
    inclusion bounds, optional strict PK bounds for exact estimators,
    and NaN/Inf-rejecting q-error bookkeeping. *)

val default_slack : float
(** Multiplicative slack of the cross-product bound; absorbs the
    floor/clamp rounding real systems apply to estimates. *)

val q_error_checked :
  estimate:float -> truth:float -> (float, string) Result.t
(** {!Util.Stat.q_error} that refuses NaN, infinite or negative inputs
    instead of letting them flow into percentile tables. *)

val check :
  ?subject:string ->
  ?slack:float ->
  ?pk_bound:bool ->
  ?truth:(Util.Bitset.t -> float) ->
  Query.Query_graph.t ->
  Cardest.Estimator.t ->
  Violation.result
(** [pk_bound] additionally requires [est(S ∪ {r}) ≤ est(S)] when [r]
    joins [S] on its primary-key side — sound for exact estimators
    only; statistics-based systems violate it routinely (that is the
    paper's point). [truth] enables q-error computability checks. *)
