(* Orchestrator for the optimizer sanitizer: composes the four analysis
   passes (query-graph lint, plan sanitizer, estimate sanitizer, cost
   sanitizer) over a matrix of enumerators × estimators × cost models,
   all without executing a single query. This is the entry point behind
   `jobench verify` and the harness debug mode. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

(* The library is wrapped under this module; re-export the passes. *)
module Violation = Violation
module Plan_sanitizer = Plan_sanitizer
module Estimate_sanitizer = Estimate_sanitizer
module Cost_sanitizer = Cost_sanitizer
module Graph_lint = Graph_lint

type enumerator = Dp | Goo | Quickpick of int | Simpli

let enumerator_name = function
  | Dp -> "dp"
  | Goo -> "goo"
  | Quickpick n -> Printf.sprintf "quickpick:%d" n
  | Simpli -> "simpli"

let default_enumerators = [ Dp; Goo; Quickpick 10; Simpli ]

(* Re-exported pass entry points, so callers need one module. *)
let check_graph = Graph_lint.check
let check_plan = Plan_sanitizer.check
let check_estimates = Estimate_sanitizer.check
let check_costs = Cost_sanitizer.check
let q_error_checked = Estimate_sanitizer.q_error_checked

(* Raise [Invalid_argument] when a plan fails the sanitizer — the hook
   enumerator call sites use so a malformed plan can never flow into an
   experiment or an executor. *)
let ensure_plan ?shape ~what graph plan =
  let result = Plan_sanitizer.check ~subject:what ?shape graph plan in
  if not (Violation.ok result) then
    invalid_arg
      (Printf.sprintf "Verify: malformed plan for %s: %s" what
         (String.concat "; "
            (List.map (fun v -> v.Violation.message) result.Violation.violations)))

let run_enumerator search = function
  | Dp -> Planner.Dp.optimize search
  | Goo -> Planner.Goo.optimize search
  | Quickpick attempts ->
      Planner.Quickpick.best_of search (Util.Prng.create 1) ~attempts
  | Simpli -> Planner.Simpli.optimize search

(* Plan + cost passes for one estimator/model pair: every enumerator's
   plan is sanitized structurally and cost-wise, then DP's cost is
   checked as a lower bound on the heuristics'. *)
let check_combination ?(query = "query") ?(enumerators = default_enumerators)
    ?shape ?(allow_nl = false) ~graph ~db
    ~(est : Cardest.Estimator.t) ~(model : Cost.Cost_model.t) () =
  let search =
    Planner.Search.create ~allow_nl ?shape ~model ~graph ~db
      ~card:est.Cardest.Estimator.subset ()
  in
  let env =
    { Cost.Cost_model.graph; db; card = est.Cardest.Estimator.subset }
  in
  let subject e =
    Printf.sprintf "%s/%s/%s/%s" query (enumerator_name e)
      est.Cardest.Estimator.name model.Cost.Cost_model.name
  in
  let plans =
    List.map (fun e -> (e, run_enumerator search e)) enumerators
  in
  let per_plan =
    List.concat_map
      (fun (e, (plan, cost)) ->
        [
          Plan_sanitizer.check ~subject:(subject e) ?shape graph plan;
          Cost_sanitizer.check ~subject:(subject e) ~reported_cost:cost env
            model plan;
        ])
      plans
  in
  let diff =
    match List.assoc_opt Dp plans with
    | None -> Violation.empty
    | Some (_, dp_cost) ->
        let rivals =
          List.filter_map
            (fun (e, (_, cost)) ->
              if e = Dp then None else Some (enumerator_name e, cost))
            plans
        in
        Cost_sanitizer.differential ~subject:(subject Dp)
          ~dp:(enumerator_name Dp, dp_cost) rivals
  in
  Violation.merge_all (per_plan @ [ diff ])

(* The full matrix for one query: graph lint once, estimate sanitizer
   once per estimator, plan/cost sanitizers per estimator × model ×
   enumerator, differential DP check per estimator × model. *)
let check_all ?(query = "query") ?(enumerators = default_enumerators) ?shape
    ?(allow_nl = false) ?slack ?pk_bound ?truth ~graph ~db
    ~(estimators : Cardest.Estimator.t list)
    ~(models : Cost.Cost_model.t list) () =
  let lint = Graph_lint.check ~subject:query graph in
  let estimates =
    List.map
      (fun (est : Cardest.Estimator.t) ->
        Estimate_sanitizer.check
          ~subject:(Printf.sprintf "%s/%s" query est.Cardest.Estimator.name)
          ?slack ?pk_bound ?truth graph est)
      estimators
  in
  let combos =
    List.concat_map
      (fun est ->
        List.map
          (fun model ->
            check_combination ~query ~enumerators ?shape ~allow_nl ~graph ~db
              ~est ~model ())
          models)
      estimators
  in
  Violation.merge_all ((lint :: estimates) @ combos)
