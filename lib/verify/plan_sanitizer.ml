(* Structural analysis of physical plans. Every plan an enumerator emits
   must satisfy, independent of estimates and costs:

   - relation coverage: the root covers exactly the query's relations,
     each relation exactly once, and every scan names a known relation;
   - set consistency: each node's cached [set] equals the union of the
     scans beneath it (guards hand-built or mutated plan records);
   - disjointness: the two children of every join are disjoint;
   - connectivity: every intermediate result is a connected subgraph of
     the query graph, and every join has at least one join predicate
     crossing its children (no undeclared cross products);
   - index-NL discipline: the inner of an index-NL join is a base
     relation (an index lookup needs a materialized index);
   - shape conformance: if the enumerator was restricted to a tree
     shape, the emitted plan actually lies in that class. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let pass = "plan-sanitizer"

let shape_limit_to_string = function
  | Planner.Search.Any_shape -> "any"
  | Planner.Search.Only_left_deep -> "left-deep"
  | Planner.Search.Only_right_deep -> "right-deep"
  | Planner.Search.Only_zig_zag -> "zig-zag"

let shape_conforms limit plan =
  match (limit, Plan.shape plan) with
  | Planner.Search.Any_shape, _ -> true
  | Planner.Search.Only_left_deep, Plan.Left_deep -> true
  | Planner.Search.Only_right_deep, (Plan.Right_deep | Plan.Left_deep) ->
      (* A single join is reported left-deep but is also right-deep. *)
      Plan.join_count plan <= 1 || Plan.shape plan = Plan.Right_deep
  | Planner.Search.Only_zig_zag,
    (Plan.Left_deep | Plan.Right_deep | Plan.Zig_zag) ->
      true
  | _ -> false

let check ?(subject = "plan") ?shape graph plan =
  let c = Violation.collector ~pass ~subject in
  let n = QG.n_relations graph in
  let seen = Array.make n 0 in
  let pp_set s = Format.asprintf "%a" Bitset.pp s in
  let rec walk (node : Plan.t) =
    (match node.Plan.op with
    | Plan.Scan r ->
        Violation.check c (r >= 0 && r < n)
          "scan of unknown relation %d (query has %d relations)" r n;
        if r >= 0 && r < n then seen.(r) <- seen.(r) + 1;
        Violation.check c (node.Plan.set = Bitset.singleton r)
          "scan of relation %d carries set %s instead of {%d}" r
          (pp_set node.Plan.set) r
    | Plan.Join { algo; outer; inner } ->
        Violation.check c (Bitset.disjoint outer.Plan.set inner.Plan.set)
          "join children overlap on %s"
          (pp_set (Bitset.inter outer.Plan.set inner.Plan.set));
        Violation.check c
          (node.Plan.set = Bitset.union outer.Plan.set inner.Plan.set)
          "join node set %s is not the union of its children %s and %s"
          (pp_set node.Plan.set) (pp_set outer.Plan.set)
          (pp_set inner.Plan.set);
        (if Bitset.disjoint outer.Plan.set inner.Plan.set then
           Violation.check c
             (QG.edges_between graph outer.Plan.set inner.Plan.set <> [])
             "cross product: no join predicate between %s and %s"
             (pp_set outer.Plan.set) (pp_set inner.Plan.set));
        Violation.check c
          (QG.is_connected graph node.Plan.set)
          "intermediate %s is not a connected subgraph" (pp_set node.Plan.set);
        Violation.check c
          (algo <> Plan.Index_nl_join || Plan.is_base inner)
          "index-NL inner %s is not a base relation" (pp_set inner.Plan.set);
        walk outer;
        walk inner);
  in
  walk plan;
  Violation.check c (plan.Plan.set = QG.full_set graph)
    "plan covers %s instead of all %d relations" (pp_set plan.Plan.set) n;
  Array.iteri
    (fun r count ->
      Violation.check c (count <= 1) "relation %d (%s) appears %d times" r
        (QG.relation graph r).QG.alias count)
    seen;
  (match shape with
  | None -> ()
  | Some limit ->
      Violation.check c
        (shape_conforms limit plan)
        "plan shape is %s but the enumerator was restricted to %s"
        (Plan.shape_to_string (Plan.shape plan))
        (shape_limit_to_string limit));
  Violation.result c
