(* Well-formedness lint for bound query graphs, run at workload load
   time. [Query_graph.create] already rejects the fatal cases (empty,
   disconnected, out-of-range edges); the lint re-derives those
   invariants independently — it must not trust the constructor it
   audits — and adds the diagnosable ones:

   - connectedness of the full relation set (a disconnected graph
     forces a cross product on every enumerator);
   - dangling aliases: in a multi-relation query, a relation with no
     incident join edge can only ever be cross-producted in;
   - degenerate edges: self joins of an alias with itself, and
     duplicate edges relating the same column pair twice (they distort
     every compositional estimator, which multiplies one selectivity
     per edge);
   - column sanity: edge endpoints must name existing columns of their
     relation's table;
   - PK labelling: an edge marked PK-on-one-side must actually touch
     that table's primary-key column — estimators and the index-NL
     planner both trust the label;
   - duplicate filter predicates: the same atom bound twice on one
     alias makes every compositional estimator apply its selectivity
     twice (predicate atoms are pure data, so structural equality is
     exact);
   - bound-but-unreferenced relations: an alias with neither a join
     edge nor a filter predicate contributes only a cross product times
     its full cardinality — almost certainly a binder or workload
     bug. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let pass = "query-graph-lint"

let check ?subject graph =
  let subject = Option.value subject ~default:(QG.name graph) in
  let c = Violation.collector ~pass ~subject in
  let n = QG.n_relations graph in
  let edges = QG.edges graph in
  Violation.check c
    (QG.is_connected graph (QG.full_set graph))
    "query graph is disconnected: every plan needs a cross product";
  Array.iteri
    (fun i (r : QG.relation) ->
      Violation.check c (r.QG.idx = i)
        "relation %s stored at index %d but declares idx %d" r.QG.alias i
        r.QG.idx;
      if n > 1 then begin
        Violation.check c
          (not (Bitset.is_empty (QG.adjacency graph i)))
          "dangling alias %s: no join edge touches it" r.QG.alias;
        Violation.check c
          ((not (Bitset.is_empty (QG.adjacency graph i)))
          || r.QG.preds <> [])
          "relation %s is bound but never referenced: no join edge and no \
           filter predicate"
          r.QG.alias
      end;
      let seen_atoms = Hashtbl.create 8 in
      List.iter
        (fun atom ->
          Violation.check c
            (not (Hashtbl.mem seen_atoms atom))
            "duplicate filter predicate on %s: %s" r.QG.alias
            (Format.asprintf "%a" (Query.Predicate.pp_atom r.QG.table) atom);
          Hashtbl.replace seen_atoms atom ())
        r.QG.preds)
    (QG.relations graph);
  let seen_edges = Hashtbl.create (List.length edges) in
  List.iter
    (fun (e : QG.edge) ->
      let in_range r = r >= 0 && r < n in
      Violation.check c
        (in_range e.QG.left && in_range e.QG.right)
        "edge endpoints %d–%d out of range (query has %d relations)" e.QG.left
        e.QG.right n;
      Violation.check c (e.QG.left <> e.QG.right)
        "self edge on relation %d: an alias cannot join itself" e.QG.left;
      if in_range e.QG.left && in_range e.QG.right then begin
        let describe r col =
          let rel = QG.relation graph r in
          (rel, Printf.sprintf "%s.col%d" rel.QG.alias col)
        in
        let check_col r col =
          let rel, label = describe r col in
          let count = Storage.Table.column_count rel.QG.table in
          Violation.check c
            (col >= 0 && col < count)
            "edge column %s out of range (table %s has %d columns)" label
            (Storage.Table.name rel.QG.table)
            count
        in
        check_col e.QG.left e.QG.left_col;
        check_col e.QG.right e.QG.right_col;
        let check_pk r col =
          let rel, label = describe r col in
          match Storage.Table.pk rel.QG.table with
          | Some pk ->
              Violation.check c (pk = col)
                "edge marked PK on %s but table %s's primary key is column %d"
                label
                (Storage.Table.name rel.QG.table)
                pk
          | None ->
              Violation.check c false
                "edge marked PK on %s but table %s declares no primary key"
                label
                (Storage.Table.name rel.QG.table)
        in
        (match e.QG.pk_side with
        | Some `Left -> check_pk e.QG.left e.QG.left_col
        | Some `Right -> check_pk e.QG.right e.QG.right_col
        | None -> ());
        (* Canonical key: the same column pair, orientation-independent. *)
        let a = (e.QG.left, e.QG.left_col) and b = (e.QG.right, e.QG.right_col) in
        let key = if a <= b then (a, b) else (b, a) in
        Violation.check c
          (not (Hashtbl.mem seen_edges key))
          "duplicate edge between relation %d.col%d and relation %d.col%d"
          e.QG.left e.QG.left_col e.QG.right e.QG.right_col;
        Hashtbl.replace seen_edges key ()
      end)
    edges;
  Violation.result c
