(* A single invariant violation reported by an analysis pass, plus the
   accounting record every pass returns: how many individual checks ran
   and which of them failed. Passes never raise on a bad artifact — they
   report, so one run can surface every problem at once. *)

type t = {
  pass : string;  (** which analysis pass fired, e.g. "plan-sanitizer" *)
  subject : string;  (** what was being analyzed, e.g. "13d/dp/PostgreSQL" *)
  message : string;  (** human-actionable description of the violation *)
}

type result = {
  checks : int;  (** individual invariant checks evaluated *)
  violations : t list;  (** in detection order *)
}

let empty = { checks = 0; violations = [] }

let ok result = result.violations = []

let merge a b =
  { checks = a.checks + b.checks; violations = a.violations @ b.violations }

let merge_all results = List.fold_left merge empty results

let to_string v = Printf.sprintf "[%s] %s: %s" v.pass v.subject v.message

(* Accumulator used inside a pass: count every check, record failures. *)
type collector = {
  pass_name : string;
  subject_name : string;
  mutable n_checks : int;
  mutable failed : t list;
}

let collector ~pass ~subject =
  { pass_name = pass; subject_name = subject; n_checks = 0; failed = [] }

let check c cond fmt =
  c.n_checks <- c.n_checks + 1;
  Printf.ksprintf
    (fun message ->
      if not cond then
        c.failed <-
          { pass = c.pass_name; subject = c.subject_name; message } :: c.failed)
    fmt

let result c = { checks = c.n_checks; violations = List.rev c.failed }

let pp_report fmt result =
  if ok result then
    Format.fprintf fmt "%d checks, 0 violations@." result.checks
  else begin
    Format.fprintf fmt "%d checks, %d violations:@." result.checks
      (List.length result.violations);
    List.iter
      (fun v -> Format.fprintf fmt "  %s@." (to_string v))
      result.violations
  end
