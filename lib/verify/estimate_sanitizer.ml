(* Numerical analysis of cardinality estimators. An estimator is probed
   over every connected subset of the query graph — exactly the domain
   the enumerators will query it on — and each output is checked:

   - finiteness and sign: no NaN, no infinity, no negative cardinality
     (these silently poison cost comparisons and every downstream
     figure);
   - cross-product inclusion bound: growing a connected subset S by one
     adjacent relation r can multiply the true cardinality by at most
     |r|, so the estimate for S ∪ {r} must stay within
     slack · est(S) · base(r). The slack absorbs the floor/clamp
     rounding real systems apply (DBMS B floors to an integer, which
     can shrink each factor by almost 2×); estimates that legitimately
     clamp up to one row are exempted via an absolute floor of 1;
   - PK inclusion bound (exact estimators only): when r sits on the
     primary-key side of a crossing join edge, each tuple of S matches
     at most one r-tuple, so card(S ∪ {r}) ≤ card(S). Only the true
     cardinality oracle is required to satisfy this — statistics-based
     estimators violate it routinely, which is the paper's point — so
     it is opt-in via [pk_bound];
   - q-error bookkeeping: [q_error_checked] refuses NaN/Inf/negative
     inputs instead of letting them flow into percentile tables. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

let pass = "estimate-sanitizer"

let default_slack = 4.0

let is_bad x = Float.is_nan x || x = Float.infinity || x = Float.neg_infinity

let q_error_checked ~estimate ~truth =
  if is_bad estimate || estimate < 0.0 then
    Error (Printf.sprintf "q-error: bad estimate %h" estimate)
  else if is_bad truth || truth < 0.0 then
    Error (Printf.sprintf "q-error: bad truth %h" truth)
  else Ok (Util.Stat.q_error ~estimate ~truth)

let check ?(subject = "estimator") ?(slack = default_slack)
    ?(pk_bound = false) ?truth graph (est : Cardest.Estimator.t) =
  let c = Violation.collector ~pass ~subject in
  let pp_set s = Format.asprintf "%a" Bitset.pp s in
  let subsets = QG.connected_subsets graph in
  let well_formed what s v =
    Violation.check c (not (is_bad v)) "%s for %s is %h" what (pp_set s) v;
    Violation.check c (is_bad v || v >= 0.0) "%s for %s is negative: %g" what
      (pp_set s) v
  in
  (* Base estimates: the per-relation numbers composition starts from. *)
  for r = 0 to QG.n_relations graph - 1 do
    well_formed "base estimate" (Bitset.singleton r) (est.Cardest.Estimator.base r)
  done;
  Array.iter
    (fun s ->
      let v = est.Cardest.Estimator.subset s in
      well_formed "estimate" s v;
      (* Inclusion bounds: compare est(S ∪ {r}) against est(S) for every
         adjacent relation r. *)
      if not (is_bad v) then
        Bitset.iter
          (fun r ->
            let grown = Bitset.add r s in
            let gv = est.Cardest.Estimator.subset grown in
            if not (is_bad gv) then begin
              let base = est.Cardest.Estimator.base r in
              Violation.check c
                (gv <= Float.max 1.0 (slack *. v *. Float.max 1.0 base))
                "estimate %g for %s exceeds cross-product bound %g · est(%s)=%g \
                 · base(%d)=%g"
                gv (pp_set grown) slack (pp_set s) v r base;
              if pk_bound then begin
                let crossing = QG.edges_between graph s (Bitset.singleton r) in
                let r_is_pk_side =
                  List.exists
                    (fun (e : QG.edge) -> e.QG.pk_side = Some `Right)
                    crossing
                in
                if r_is_pk_side then
                  Violation.check c
                    (gv <= v *. (1.0 +. 1e-9))
                    "PK inclusion bound: est %g for %s exceeds est %g for %s \
                     though relation %d joins on its primary key"
                    gv (pp_set grown) v (pp_set s) r
              end
            end)
          (QG.neighbors graph s);
      (* q-error bookkeeping against the truth oracle, when provided. *)
      match truth with
      | None -> ()
      | Some tr ->
          let t = tr s in
          Violation.check c
            (Result.is_ok (q_error_checked ~estimate:v ~truth:t))
            "q-error for %s is not computable (estimate %h, truth %h)"
            (pp_set s) v t)
    subsets;
  Violation.result c
