(* Span recording over per-domain ring buffers.

   Each domain that records gets its own buffer through Domain.DLS, so
   the record path touches no shared cache line except the enabled
   flag. The buffer's mutex is uncontended on that path — it only ever
   conflicts with a flush from another domain — and OCaml's Mutex is a
   futex-style fast path when free, keeping the enabled cost to a
   clock read, a lock/unlock pair, and six int stores. The disabled
   cost is the part that matters for golden timings: one atomic load
   in [start] and one integer compare in [span]. *)

let enabled_flag = Atomic.make false
let set_enabled on = Atomic.set enabled_flag on
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Phase interning                                                     *)

let intern_lock = Mutex.create ()

(* domlint: safe R1 — phase-name intern table, guarded by [intern_lock] *)
let intern_tbl : (string, int) Hashtbl.t = Hashtbl.create 32

(* domlint: safe R1 — id -> name, guarded by [intern_lock]; reads copy *)
let intern_names : string array ref = ref [||]

let intern name =
  Mutex.lock intern_lock;
  let id =
    match Hashtbl.find_opt intern_tbl name with
    | Some id -> id
    | None ->
        let id = Array.length !intern_names in
        Hashtbl.add intern_tbl name id;
        let grown = Array.make (id + 1) name in
        Array.blit !intern_names 0 grown 0 id;
        intern_names := grown;
        id
  in
  Mutex.unlock intern_lock;
  id

let phase_name id =
  Mutex.lock intern_lock;
  let names = !intern_names in
  Mutex.unlock intern_lock;
  if id >= 0 && id < Array.length names then names.(id) else "?"

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Per-domain ring buffers                                             *)

let stride = 6 (* phase, start_ns, end_ns, a, b, seq *)
let capacity = 1 lsl 15 (* spans per domain before overwrite *)

type buf = {
  m : Mutex.t;
  slots : int array;
  mutable wr : int;  (* next write position, in spans *)
  mutable count : int;  (* live spans, <= capacity *)
  mutable dropped : int;  (* overwritten since last flush *)
  mutable last_ns : int;  (* monotonic clamp *)
  mutable seq : int;
  id : int;  (* registration order = the reported domain id *)
}

let bufs_lock = Mutex.create ()

(* domlint: safe R1 — registry of every domain's buffer so [flush] can
   drain them all; guarded by [bufs_lock] *)
let bufs : buf list ref = ref []

let register_buf () =
  Mutex.lock bufs_lock;
  let b =
    {
      m = Mutex.create ();
      slots = Array.make (capacity * stride) 0;
      wr = 0;
      count = 0;
      dropped = 0;
      last_ns = 0;
      seq = 0;
      id = List.length !bufs;
    }
  in
  bufs := b :: !bufs;
  Mutex.unlock bufs_lock;
  b

let buf_key = Domain.DLS.new_key register_buf

let record phase t0 t1 a b =
  let buf = Domain.DLS.get buf_key in
  Mutex.lock buf.m;
  (* Spans nest — a parent records after its children, with an earlier
     start — so the monotonic clamp applies to span ends only. A
     backwards clock step surfaces as a shortened span, never as
     end < start or a regressing end stream. *)
  let t1 = if t1 < buf.last_ns then buf.last_ns else t1 in
  let t0 = if t0 > t1 then t1 else t0 in
  buf.last_ns <- t1;
  let base = buf.wr * stride in
  buf.slots.(base) <- phase;
  buf.slots.(base + 1) <- t0;
  buf.slots.(base + 2) <- t1;
  buf.slots.(base + 3) <- a;
  buf.slots.(base + 4) <- b;
  buf.slots.(base + 5) <- buf.seq;
  buf.seq <- buf.seq + 1;
  buf.wr <- (buf.wr + 1) mod capacity;
  if buf.count < capacity then buf.count <- buf.count + 1
  else buf.dropped <- buf.dropped + 1;
  Mutex.unlock buf.m

let start () = if Atomic.get enabled_flag then now_ns () else 0

let span phase ~t0 ~a ~b = if t0 <> 0 then record phase t0 (now_ns ()) a b

let event phase ~a ~b =
  if Atomic.get enabled_flag then begin
    let t = now_ns () in
    record phase t t a b
  end

(* ------------------------------------------------------------------ *)
(* Flush                                                               *)

type sp = {
  sp_phase : string;
  sp_domain : int;
  sp_seq : int;
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_a : int;
  sp_b : int;
}

let drain_buf buf =
  Mutex.lock buf.m;
  let n = buf.count in
  (* Oldest live span first: when the ring wrapped, [wr] points at it. *)
  let first = if n < capacity then 0 else buf.wr in
  let out =
    List.init n (fun i ->
        let base = (first + i) mod capacity * stride in
        {
          sp_phase = phase_name buf.slots.(base);
          sp_domain = buf.id;
          sp_seq = buf.slots.(base + 5);
          sp_start_ns = buf.slots.(base + 1);
          sp_dur_ns = buf.slots.(base + 2) - buf.slots.(base + 1);
          sp_a = buf.slots.(base + 3);
          sp_b = buf.slots.(base + 4);
        })
  in
  let dropped = buf.dropped in
  buf.wr <- 0;
  buf.count <- 0;
  buf.dropped <- 0;
  Mutex.unlock buf.m;
  (out, dropped)

let all_bufs () =
  Mutex.lock bufs_lock;
  let l = !bufs in
  Mutex.unlock bufs_lock;
  l

let flush () =
  let drained = List.map drain_buf (all_bufs ()) in
  let dropped = List.fold_left (fun acc (_, d) -> acc + d) 0 drained in
  let spans =
    List.concat_map fst drained
    |> List.sort (fun x y ->
           match compare x.sp_start_ns y.sp_start_ns with
           | 0 -> (
               match compare x.sp_domain y.sp_domain with
               | 0 -> compare x.sp_seq y.sp_seq
               | c -> c)
           | c -> c)
  in
  (spans, dropped)

let clear () = ignore (flush ())
