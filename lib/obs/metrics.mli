(** The process-wide metrics registry: named counters, gauges, and
    log2-bucket histograms behind one typed API.

    Mirrors the [Core.Registry] idiom — a metric name is canonical, and
    looking one up creates it on first use — but for telemetry cells
    instead of estimator constructors. All the suite's scattered
    counters ([Exec.Morsel] scheduler telemetry, [Exec.Join_table] load
    factors, [Exec.Join_cache] hit/miss totals, [Serve.Admission]
    peaks, [Core.Pipeline] cache counters) live on or mirror into this
    registry; [jobench trace] and [--trace] dump it alongside the span
    buffers.

    Cells are domain-safe: counters and gauges are atomics, histograms
    observe under a per-cell mutex. Unregistered cells
    ({!Counter.make}, {!Gauge.make}) serve per-instance telemetry
    (a cache's own hit counter) that is reported per run rather than
    process-wide. Requesting a registered name twice returns the same
    cell; requesting it as a different metric type raises
    [Invalid_argument]. *)

module Counter : sig
  type t

  val make : unit -> t
  (** A fresh unregistered cell (for per-instance stats). *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> float -> unit

  val set_max : t -> float -> unit
  (** Raise the gauge to [v] if [v] exceeds the current value
      (lock-free high-water mark). *)

  val value : t -> float
  val reset : t -> unit
end

module Hist : sig
  type t

  val make : unit -> t
  val observe : t -> int -> unit
  val snapshot : t -> Histogram.t
  (** A consistent copy of the distribution so far. *)

  val reset : t -> unit
end

val counter : string -> Counter.t
(** Find-or-create the registered counter [name]. *)

val gauge : string -> Gauge.t
val histogram : string -> Hist.t

type value =
  | Count of int
  | Level of float
  | Dist of Histogram.t

val dump : unit -> (string * value) list
(** Snapshot of every registered metric, sorted by name — the
    deterministic export order. *)

val reset_all : unit -> unit
(** Zero every registered metric (registration survives). *)
