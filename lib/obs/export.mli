(** JSON rendering for trace and metrics dumps — the schema behind
    [jobench trace], [--trace FILE], and the CI trace smoke check. *)

type phase_total = {
  pt_phase : string;
  pt_spans : int;
  pt_total_ms : float;
}

val phase_totals : Trace.sp list -> phase_total list
(** Per-phase span count and summed duration, sorted by phase name. *)

val top_level_phases : string list
(** The non-overlapping pipeline phases ("bind", "plan", "verify",
    "exec") whose durations partition a query's wall time; nested
    spans (parse inside bind, per-operator inside exec) are excluded
    from coverage sums. *)

val coverage : wall_ms:float -> Trace.sp list -> float
(** Summed {!top_level_phases} duration over [wall_ms]; 0 when wall is
    not positive. *)

val metrics_json : Buffer.t -> (string * Metrics.value) list -> unit
(** Append the metrics dump as one JSON object. *)

val trace_json :
  ?query:string ->
  wall_ms:float ->
  spans:Trace.sp list ->
  dropped:int ->
  unit ->
  string
(** The full trace document: wall time, per-phase totals, coverage,
    every span, and the current metrics registry dump. *)
