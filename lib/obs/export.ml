(* JSON rendering, hand-rolled like every other *.json writer in the
   tree (no JSON dependency). Spans arrive already deterministically
   ordered from Trace.flush; phase totals and the metrics dump are
   sorted by name, so the whole document is reproducible byte-for-byte
   given the same recorded data. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

type phase_total = {
  pt_phase : string;
  pt_spans : int;
  pt_total_ms : float;
}

let phase_totals spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.sp) ->
      let n, ns =
        match Hashtbl.find_opt tbl s.Trace.sp_phase with
        | Some (n, ns) -> (n, ns)
        | None -> (0, 0)
      in
      Hashtbl.replace tbl s.Trace.sp_phase (n + 1, ns + s.Trace.sp_dur_ns))
    spans;
  Hashtbl.fold
    (fun phase (n, ns) acc ->
      { pt_phase = phase; pt_spans = n; pt_total_ms = float_of_int ns /. 1e6 }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.pt_phase b.pt_phase)

let top_level_phases = [ "bind"; "plan"; "verify"; "exec" ]

let coverage ~wall_ms spans =
  if wall_ms <= 0.0 then 0.0
  else
    let ns =
      List.fold_left
        (fun acc (s : Trace.sp) ->
          if List.mem s.Trace.sp_phase top_level_phases then
            acc + s.Trace.sp_dur_ns
          else acc)
        0 spans
    in
    float_of_int ns /. 1e6 /. wall_ms

let metrics_json b dump =
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " (json_escape name));
      match v with
      | Metrics.Count n -> Buffer.add_string b (string_of_int n)
      | Metrics.Level f -> Buffer.add_string b (Printf.sprintf "%g" f)
      | Metrics.Dist h ->
          Buffer.add_string b
            (Printf.sprintf "{\"count\": %d, \"sum\": %d, \"buckets\": ["
               (Histogram.count h) (Histogram.sum h));
          let counts = Histogram.buckets h in
          let first = ref true in
          Array.iteri
            (fun k c ->
              if c > 0 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                Buffer.add_string b
                  (Printf.sprintf "[%d, %d]" (Histogram.bucket_lower k) c)
              end)
            counts;
          Buffer.add_string b "]}")
    dump;
  Buffer.add_string b "}"

let trace_json ?query ~wall_ms ~spans ~dropped () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"version\": 1,\n";
  (match query with
  | Some q -> Buffer.add_string b (Printf.sprintf "  \"query\": \"%s\",\n" (json_escape q))
  | None -> ());
  Buffer.add_string b (Printf.sprintf "  \"wall_ms\": %.4f,\n" wall_ms);
  Buffer.add_string b (Printf.sprintf "  \"span_count\": %d,\n" (List.length spans));
  Buffer.add_string b (Printf.sprintf "  \"dropped\": %d,\n" dropped);
  Buffer.add_string b
    (Printf.sprintf "  \"coverage\": %.4f,\n" (coverage ~wall_ms spans));
  Buffer.add_string b "  \"phases\": [\n";
  let totals = phase_totals spans in
  List.iteri
    (fun i pt ->
      Buffer.add_string b
        (Printf.sprintf "    {\"phase\": \"%s\", \"spans\": %d, \"total_ms\": %.4f}%s\n"
           (json_escape pt.pt_phase) pt.pt_spans pt.pt_total_ms
           (if i = List.length totals - 1 then "" else ",")))
    totals;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"spans\": [\n";
  List.iteri
    (fun i (s : Trace.sp) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"phase\": \"%s\", \"domain\": %d, \"seq\": %d, \
            \"start_us\": %.1f, \"dur_us\": %.1f, \"a\": %d, \"b\": %d}%s\n"
           (json_escape s.Trace.sp_phase)
           s.Trace.sp_domain s.Trace.sp_seq
           (float_of_int s.Trace.sp_start_ns /. 1e3)
           (float_of_int s.Trace.sp_dur_ns /. 1e3)
           s.Trace.sp_a s.Trace.sp_b
           (if i = List.length spans - 1 then "" else ",")))
    spans;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"metrics\": ";
  metrics_json b (Metrics.dump ());
  Buffer.add_string b "\n}\n";
  Buffer.contents b
