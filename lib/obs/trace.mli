(** Domain-safe, allocation-light span recording.

    A span is six ints — interned phase id, start/end timestamps, two
    payload words, and a per-domain sequence number — written into a
    per-domain ring buffer (no cross-domain contention on the record
    path, no allocation). {!flush} drains every domain's buffer and
    merges the spans into one deterministic order: ascending start
    time, with (domain id, sequence) as the tie-break, so the same set
    of recorded spans always renders the same trace.

    Recording is off by default. The disabled path is two reads: a
    {!start} is one atomic load returning the 0 sentinel, and the
    {!span} that receives 0 returns on an integer compare — no clock
    read, no lock, no allocation — which is why instrumentation can
    stay compiled into the executor's hot path (the bench obs gate
    measures this; see DESIGN §2j).

    Timestamps come from the wall clock; span ends are clamped per
    buffer to be non-decreasing, so each domain's end stream is
    monotonic even across clock adjustments. Starts are not clamped —
    spans nest, and a parent records after its children with an
    earlier start. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val intern : string -> int
(** The id for a phase name, registering it on first use. Ids are
    small ints, stable for the life of the process; intern once at
    module init and pass the int on the hot path. *)

val phase_name : int -> string
(** Inverse of {!intern}; ["?"] for unknown ids. *)

val now_ns : unit -> int
(** The raw clock (nanoseconds). Exposed for wall-time measurement
    next to a trace; span recording applies its own per-buffer
    monotonic clamp on top. *)

val start : unit -> int
(** The timestamp beginning a span, or 0 when recording is disabled —
    the sentinel {!span} uses to skip all work. *)

val span : int -> t0:int -> a:int -> b:int -> unit
(** [span phase ~t0 ~a ~b] records [t0 .. now] on the calling domain's
    buffer. No-op when [t0 = 0] (recording was disabled at {!start}).
    [a] and [b] are free payload words (rows and work units, for
    executor spans). *)

val event : int -> a:int -> b:int -> unit
(** An instant (zero-duration) span at the current time; no-op when
    recording is disabled. *)

type sp = {
  sp_phase : string;
  sp_domain : int;  (** registration order of the recording buffer *)
  sp_seq : int;  (** per-domain recording order *)
  sp_start_ns : int;
  sp_dur_ns : int;
  sp_a : int;
  sp_b : int;
}

val flush : unit -> sp list * int
(** Drain every buffer: the merged spans in deterministic order, plus
    the count of spans dropped to ring-buffer overwrite since the last
    flush. Each recorded span is returned by exactly one flush. *)

val clear : unit -> unit
(** Discard all buffered spans and the dropped count. *)
