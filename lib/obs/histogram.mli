(** Log2-bucket histograms plus the suite's one exact-quantile
    implementation.

    The bucketed form is what the metrics registry aggregates: 64
    power-of-two buckets, constant memory, mergeable. The exact
    functions ({!percentile}, {!median_of_list}) are the shared home of
    the quantile math that used to live separately in [Serve.Report]
    (nearest-rank p50/p95/p99) and [bench/main.ml] (upper median of
    repeat samples) — both layers now call here, so the reported values
    are byte-identical to what those local copies produced. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one non-negative observation (negatives clamp to 0). *)

val count : t -> int
(** Observations recorded, equal to the sum of all bucket counts. *)

val sum : t -> int
(** Exact sum of all observed values (kept alongside the buckets). *)

val buckets : t -> int array
(** A copy of the 64 bucket counts. Bucket 0 holds value 0; bucket
    [k >= 1] holds values in [[2^(k-1), 2^k - 1]]. *)

val bucket_lower : int -> int
(** Inclusive lower bound of bucket [k]: 0 for bucket 0, else
    [2^(k-1)]. *)

val merge : t -> t -> t
(** Pointwise sum, as a fresh histogram — associative, commutative, and
    count-preserving (the laws the QCheck suite pins down). Inputs are
    not mutated. *)

val approx_quantile : t -> float -> int
(** Nearest-rank quantile resolved to bucket precision: the upper bound
    of the bucket holding the [ceil (q * count)]-th smallest
    observation. 0 on an empty histogram. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile over an unsorted exact sample; [q] in
    [0, 1]. The serving report's p50/p95/p99. *)

val median_of_list : float list -> float
(** Upper median ([a.(n / 2)] of the sorted sample) — the bench
    harness's repeat aggregation. Raises [Invalid_argument] on []. *)
