(* Log2-bucket histograms and the shared exact-quantile functions. The
   bucketed type is a plain single-owner value: the metrics registry
   wraps it in a mutex for concurrent observation, QCheck exercises the
   merge laws on it directly. *)

let nbuckets = 64

type t = { counts : int array; mutable n : int; mutable total : int }

let create () = { counts = Array.make nbuckets 0; n = 0; total = 0 }

(* Bucket 0 holds value 0; bucket k >= 1 holds [2^(k-1), 2^k - 1] —
   i.e. k is the value's bit length. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let k = ref 0 and v = ref v in
    while !v > 0 do
      incr k;
      v := !v lsr 1
    done;
    !k
  end

let bucket_lower k = if k <= 0 then 0 else 1 lsl (k - 1)

let observe t v =
  let v = max 0 v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v

let count t = t.n
let sum t = t.total
let buckets t = Array.copy t.counts

let merge a b =
  {
    counts = Array.init nbuckets (fun i -> a.counts.(i) + b.counts.(i));
    n = a.n + b.n;
    total = a.total + b.total;
  }

let approx_quantile t q =
  if t.n = 0 then 0
  else begin
    let rank =
      max 1 (min t.n (int_of_float (ceil (q *. float_of_int t.n))))
    in
    let seen = ref 0 and k = ref 0 in
    while !seen < rank && !k < nbuckets do
      seen := !seen + t.counts.(!k);
      if !seen < rank then incr k
    done;
    (* Upper bound of the resolved bucket: 0 for bucket 0, else
       2^k - 1. *)
    if !k = 0 then 0 else (1 lsl !k) - 1
  end

(* ------------------------------------------------------------------ *)
(* Exact quantiles over raw samples — the one copy of this math.       *)

(* Nearest-rank percentile over an unsorted sample; [q] in [0, 1]. *)
let percentile sample q =
  let n = Array.length sample in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy sample in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* Upper median: element n/2 of the sorted sample (for even n, the
   higher of the two central values) — what the bench harness has
   always reported for --repeat aggregation. *)
let median_of_list xs =
  if xs = [] then invalid_arg "Histogram.median_of_list: empty sample";
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a.(Array.length a / 2)
