(* The metrics registry. Registration is rare and cold (module init,
   first touch of a subsystem), so one mutex over a plain Hashtbl is
   the right shape; the hot path is the cells themselves, which are
   atomics (counters, gauges) or a mutex-guarded histogram, never the
   registry lock. domlint R8 confines cells like these to lib/obs/ —
   other layers hold handles, the state lives here. *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0
  let incr t = Atomic.incr t

  let add t n =
    (* domlint: safe R6 — monotone telemetry accumulation: the summed
       value is never used to distribute work between domains *)
    ignore (Atomic.fetch_and_add t n)

  let value t = Atomic.get t
  let reset t = Atomic.set t 0
end

module Gauge = struct
  (* Boxed-float atomics: set/read are cold-path telemetry. *)
  type t = float Atomic.t

  let make () = Atomic.make 0.0
  let set t v = Atomic.set t v

  let rec set_max t v =
    let cur = Atomic.get t in
    if v > cur && not (Atomic.compare_and_set t cur v) then set_max t v

  let value t = Atomic.get t
  let reset t = Atomic.set t 0.0
end

module Hist = struct
  type t = { m : Mutex.t; mutable h : Histogram.t }

  let make () = { m = Mutex.create (); h = Histogram.create () }

  let observe t v =
    Mutex.lock t.m;
    Histogram.observe t.h v;
    Mutex.unlock t.m

  let snapshot t =
    Mutex.lock t.m;
    (* Merge with an empty histogram: a fresh copy, inputs untouched. *)
    let copy = Histogram.merge t.h (Histogram.create ()) in
    Mutex.unlock t.m;
    copy

  let reset t =
    Mutex.lock t.m;
    t.h <- Histogram.create ();
    Mutex.unlock t.m
end

type metric = C of Counter.t | G of Gauge.t | H of Hist.t

let registry_lock = Mutex.create ()

(* domlint: safe R1 — the registry table; every access is under
   [registry_lock] (see [with_registry]) *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let with_registry f =
  Mutex.lock registry_lock;
  match f registry with
  | v ->
      Mutex.unlock registry_lock;
      v
  | exception e ->
      Mutex.unlock registry_lock;
      raise e

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find_or_register name make expect =
  with_registry (fun tbl ->
      match Hashtbl.find_opt tbl name with
      | Some m -> (
          match expect m with
          | Some cell -> cell
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs.Metrics: %S is already registered as a %s" name
                   (kind_name m)))
      | None ->
          let m = make () in
          Hashtbl.add tbl name m;
          match expect m with Some cell -> cell | None -> assert false)

let counter name =
  find_or_register name
    (fun () -> C (Counter.make ()))
    (function C c -> Some c | _ -> None)

let gauge name =
  find_or_register name
    (fun () -> G (Gauge.make ()))
    (function G g -> Some g | _ -> None)

let histogram name =
  find_or_register name
    (fun () -> H (Hist.make ()))
    (function H h -> Some h | _ -> None)

type value = Count of int | Level of float | Dist of Histogram.t

let dump () =
  let entries =
    with_registry (fun tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  entries
  |> List.map (fun (name, m) ->
         ( name,
           match m with
           | C c -> Count (Counter.value c)
           | G g -> Level (Gauge.value g)
           | H h -> Dist (Hist.snapshot h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () =
  with_registry (fun tbl ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Counter.reset c
          | G g -> Gauge.reset g
          | H h -> Hist.reset h)
        tbl)
