(** Relation subsets as machine-word bitsets.

    Plan enumeration manipulates sets of base relations; a query never has
    more than 62 relations (ours cap at 14), so an OCaml [int] suffices and
    keeps the dynamic-programming inner loops allocation-free. *)

type t = int
(** Bit [i] set means relation [i] is a member. *)

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val equal : t -> t -> bool

val hash : t -> int
(** Mixed (non-identity) hash. Together with {!equal} this makes the
    module a ready-made [Hashtbl.HashedType], so subset memo tables can
    use [Hashtbl.Make (Bitset)] instead of polymorphic hashing. *)

val lowest : t -> int
(** Index of the least set bit, in constant time. Requires a non-empty
    set. *)

val lowest_bit : t -> t
(** The least set bit as a singleton set. Requires a non-empty set. *)

val full : int -> t
(** [full n] is [{0, .., n-1}]. Requires [0 <= n <= 62]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int list -> t

val subsets_iter : t -> (t -> unit) -> unit
(** Enumerate every non-empty proper subset of the given set (standard
    submask walk). *)

val pp : Format.formatter -> t -> unit
(** Prints as [{0,3,5}]. *)
