(* A fixed pool of worker domains executing indexed tasks.

   One task is active at a time. The caller installs the task, wakes the
   workers, then participates in the work itself; indices are claimed
   with an atomic counter, so items are distributed dynamically, but
   each result is stored at its input index — output order never
   depends on completion order.

   On an exception the task turns fail-fast: workers stop claiming new
   items (in-flight items finish), and the recorded error with the
   lowest input index is re-raised in the caller with its original
   backtrace. *)

(* Larger per-domain minor heaps and a laxer major-heap target: every
   minor collection in OCaml 5 is a stop-the-world synchronization of
   all domains, so the fewer of them the hot executor loops trigger,
   the less time domains spend waiting on each other's safepoints.
   Results never depend on GC settings — only wall clock does. *)
let tune_gc () =
  let g = Gc.get () in
  Gc.set
    {
      g with
      Gc.minor_heap_size = max g.Gc.minor_heap_size (8 * 1024 * 1024);
      space_overhead = max g.Gc.space_overhead 200;
    }

type task = {
  n : int;
  run : int -> unit;
  chunk : int;
  next : int Atomic.t;
  (* Fail-fast flag, checked before every claim. (Deliberately not
     implemented by pushing [next] past [n]: repeated fetch_and_add
     could overflow and wrap negative, defeating the bounds check.) *)
  failed : bool Atomic.t;
  (* Guarded by the pool mutex. *)
  mutable entered : int;
  mutable exited : int;
  mutable error : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : task option;
  mutable generation : int;
  mutable busy : bool;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let record_error t task i e =
  let bt = Printexc.get_raw_backtrace () in
  Atomic.set task.failed true;
  Mutex.lock t.mutex;
  (match task.error with
  | Some (j, _, _) when j <= i -> ()
  | _ -> task.error <- Some (i, e, bt));
  Mutex.unlock t.mutex

(* Claim and run chunks of consecutive items until the task is
   exhausted or failed. Runs in workers and in the caller alike.

   Chunks are claimed in index order and a claimed chunk runs its items
   in order with no mid-chunk failure check (it stops only when one of
   its *own* items raises) — this preserves the lowest-index-error
   guarantee: any item below a failing index sits in a chunk claimed no
   later, so it runs and its error, if any, wins. *)
let run_items t task =
  let continue = ref true in
  while !continue do
    if Atomic.get task.failed then continue := false
    else begin
      let i = Atomic.fetch_and_add task.next task.chunk in
      if i >= task.n then continue := false
      else
        let stop = min task.n (i + task.chunk) in
        let j = ref i in
        while !j < stop do
          (match task.run !j with
          | () -> ()
          | exception e ->
              record_error t task !j e;
              j := stop);
          incr j
        done
    end
  done

let worker_loop t =
  tune_gc ();
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stopped) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      seen := t.generation;
      match t.task with
      | None -> Mutex.unlock t.mutex
      | Some task ->
          task.entered <- task.entered + 1;
          Mutex.unlock t.mutex;
          run_items t task;
          Mutex.lock t.mutex;
          task.exited <- task.exited + 1;
          Condition.broadcast t.work_done;
          Mutex.unlock t.mutex
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      task = None;
      generation = 0;
      busy = false;
      stopped = false;
      workers = [||];
    }
  in
  (* The caller participates in every map, so [domains] ways of
     parallelism need only [domains - 1] spawned workers; [~domains:1]
     spawns nothing and maps run serially. *)
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = Array.length t.workers + 1

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* The serial path: explicit left-to-right loop, so [-j 1] replays
   exactly the evaluation order of the pre-pool code. *)
let serial_map f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let r = Array.make n (f xs.(0)) in
    for i = 1 to n - 1 do
      r.(i) <- f xs.(i)
    done;
    r
  end

let map_array t f xs =
  (* Checked before the worker-count fallback: a shut-down pool has no
     workers, and silently degrading to serial would mask the misuse. *)
  if t.stopped then invalid_arg "Domain_pool.map_array: pool is shut down";
  let n = Array.length xs in
  if Array.length t.workers = 0 || n <= 1 then serial_map f xs
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.map_array: pool is shut down"
    end;
    if t.busy then begin
      (* A nested map from inside a running task would deadlock on the
         single task slot; run it serially instead. *)
      Mutex.unlock t.mutex;
      serial_map f xs
    end
    else begin
      let results = Array.make n None in
      (* A few chunks per participant keeps claim traffic low while the
         cap preserves balance over heterogeneous items. *)
      let chunk = min 16 (max 1 (n / ((Array.length t.workers + 1) * 4))) in
      let task =
        {
          n;
          run = (fun i -> results.(i) <- Some (f xs.(i)));
          chunk;
          next = Atomic.make 0;
          failed = Atomic.make false;
          entered = 0;
          exited = 0;
          error = None;
        }
      in
      t.generation <- t.generation + 1;
      t.task <- Some task;
      t.busy <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      run_items t task;
      Mutex.lock t.mutex;
      (* Wait until no worker still holds an in-flight item. A worker
         that wakes late (after this condition turns true) claims
         nothing: the index counter is exhausted or the task failed. *)
      while
        not
          (task.entered = task.exited
          && (Atomic.get task.failed || Atomic.get task.next >= n))
      do
        Condition.wait t.work_done t.mutex
      done;
      t.busy <- false;
      t.task <- None;
      Mutex.unlock t.mutex;
      match task.error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map (function Some v -> v | None -> assert false) results
    end
  end

(* Run one body per worker slot on the existing task machinery: a task
   with [n = size] and [chunk = 1] hands out slot indices instead of
   item indices. Slots are claimed dynamically, so a late-waking worker
   may find the counter exhausted and run nothing while the caller runs
   two slots back to back — but every slot in [0, size) runs exactly
   once, and never concurrently with itself, so slot-indexed state needs
   no locking. The executor's morsel scheduler builds on exactly that. *)
let run_workers t f =
  if t.stopped then invalid_arg "Domain_pool.run_workers: pool is shut down";
  if Array.length t.workers = 0 then f 0
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Domain_pool.run_workers: pool is shut down"
    end;
    if t.busy then begin
      (* The single task slot is taken (a nested call from inside a
         running task, or another domain's query): the caller runs alone
         as slot 0, mirroring the nested-map serial fallback. *)
      Mutex.unlock t.mutex;
      f 0
    end
    else begin
      let task =
        {
          n = Array.length t.workers + 1;
          run = f;
          chunk = 1;
          next = Atomic.make 0;
          failed = Atomic.make false;
          entered = 0;
          exited = 0;
          error = None;
        }
      in
      t.generation <- t.generation + 1;
      t.task <- Some task;
      t.busy <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      run_items t task;
      Mutex.lock t.mutex;
      while
        not
          (task.entered = task.exited
          && (Atomic.get task.failed || Atomic.get task.next >= task.n))
      do
        Condition.wait t.work_done t.mutex
      done;
      t.busy <- false;
      t.task <- None;
      Mutex.unlock t.mutex;
      match task.error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
