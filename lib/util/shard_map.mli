(** A hash table sharded over independently locked segments.

    Concurrent lookups and insertions for keys landing in different
    shards never contend; within a shard, operations serialize on the
    shard's mutex. The intended use is memo tables of {!Once} cells:
    {!find_or_add}'s [make] runs under the shard lock, so it must be
    cheap — allocate the cell under the lock, force it outside.

    Iteration order is unspecified; this container deliberately has no
    [iter] — the pipeline's determinism argument rests on values being
    addressed by key only. Bounded consumers (the executor's join-build
    recycling cache) keep their own key registry and evict through
    {!remove}. *)

type ('a, 'b) t

val create : ?shards:int -> ?capacity:int -> unit -> ('a, 'b) t
(** [shards] (default 16) is rounded up to a power of two. [capacity]
    (default unbounded) caps the bindings each shard retains: a
    {!find_or_add} landing on a full shard still evaluates [make] and
    returns its value, but does not retain the binding — a hard backstop
    for bounded caches whose real eviction policy runs through
    {!remove}. Raises [Invalid_argument] when [< 1]. *)

val find_opt : ('a, 'b) t -> 'a -> 'b option

val length : ('a, 'b) t -> int
(** Total bindings across all shards. Not a consistent snapshot under
    concurrent insertion (shards are summed one lock at a time). *)

val remove : ('a, 'b) t -> 'a -> bool
(** Drop the binding for a key; [true] iff one existed. Values already
    handed out by {!find_opt}/{!find_or_add} stay valid — removal only
    unpublishes the key. *)

val find_or_add : ('a, 'b) t -> 'a -> (unit -> 'b) -> 'b * bool
(** [find_or_add t k make] returns the value bound to [k], binding
    [make ()] first when absent. The boolean is [true] iff this call
    created (and retained) the binding — [false] both for hits and for
    insertions rejected by a full shard. [make] runs under the shard
    lock: keep it cheap and non-reentrant. *)
