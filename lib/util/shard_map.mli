(** A hash table sharded over independently locked segments.

    Concurrent lookups and insertions for keys landing in different
    shards never contend; within a shard, operations serialize on the
    shard's mutex. The intended use is memo tables of {!Once} cells:
    {!find_or_add}'s [make] runs under the shard lock, so it must be
    cheap — allocate the cell under the lock, force it outside.

    Iteration order is unspecified; this container deliberately has no
    [iter] — the pipeline's determinism argument rests on values being
    addressed by key only. *)

type ('a, 'b) t

val create : ?shards:int -> unit -> ('a, 'b) t
(** [shards] (default 16) is rounded up to a power of two. *)

val find_opt : ('a, 'b) t -> 'a -> 'b option

val length : ('a, 'b) t -> int
(** Total bindings across all shards. Not a consistent snapshot under
    concurrent insertion (shards are summed one lock at a time). *)

val find_or_add : ('a, 'b) t -> 'a -> (unit -> 'b) -> 'b * bool
(** [find_or_add t k make] returns the value bound to [k], binding
    [make ()] first when absent. The boolean is [true] iff this call
    created the binding. [make] runs under the shard lock: keep it
    cheap and non-reentrant. *)
