(** A domain-safe memoized thunk.

    [Stdlib.Lazy] is not safe to force from several domains (concurrent
    forcing raises [Undefined] / corrupts the cell); this is the same
    idea behind a mutex, for the places where the pipeline shares
    deferred computations — exact-cardinality oracles, estimator
    construction — across a {!Domain_pool}.

    The first {!force} runs the thunk; every later (or concurrent) call
    waits for it and returns the same value. An exception escaping the
    thunk is cached and re-raised by every subsequent force. *)

type 'a t

val make : (unit -> 'a) -> 'a t

val of_val : 'a -> 'a t
(** An already-forced cell. *)

val force : 'a t -> 'a

val is_val : 'a t -> bool
(** True once {!force} has completed successfully. *)
