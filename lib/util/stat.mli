(** Order statistics and summary metrics used throughout the evaluation.

    The paper reports q-errors (Table 1, Figures 3–5), percentile summaries
    (Tables 2–3), geometric means (Section 5.4) and linear-regression
    prediction errors (Figure 8); all of those primitives live here. *)

val floored : float -> float
(** Floor a cardinality at one row ([Float.max 1.0]) before computing
    ratio metrics, so empty intermediate results do not blow up q-errors
    (the paper's convention for Table 1 and Figures 3–5). *)

val q_error : estimate:float -> truth:float -> float
(** The factor by which an estimate differs from the truth:
    [max (e /. t) (t /. e)], with both sides floored at a tiny epsilon so
    zero estimates stay finite. Always [>= 1]. *)

val signed_error : estimate:float -> truth:float -> float
(** Ratio [estimate /. truth]: [> 1] means overestimation, [< 1]
    underestimation. Used for the Figure 3 boxplots. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]]: linear interpolation between
    closest ranks on a sorted copy. Raises [Invalid_argument] on empty
    input. *)

val median : float array -> float

val mean : float array -> float

val geometric_mean : float array -> float
(** Requires strictly positive inputs. *)

val minimum : float array -> float

val maximum : float array -> float

type boxplot = {
  p5 : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
}
(** Five-number summary as drawn in Figure 3 of the paper. *)

val boxplot : float array -> boxplot

type linear_fit = { slope : float; intercept : float; r2 : float }

val linear_regression : (float * float) array -> linear_fit
(** Ordinary least squares over [(x, y)] pairs. Requires at least two
    points with distinct [x]. *)

val bucketize : edges:float array -> float array -> int array
(** [bucketize ~edges xs] counts values per half-open interval
    [\[edges.(i), edges.(i+1))], with the two open-ended extremes included
    in the first and last bucket. Returns [Array.length edges + 1]
    counts. Used for the slowdown histograms of Figures 6 and 7. *)

val fraction : int -> int -> float
(** [fraction num den] as a float, 0 when [den = 0]. *)
