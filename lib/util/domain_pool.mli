(** A fixed pool of worker domains with order-preserving map combinators.

    The experiment harness fans per-query work units out over this pool.
    Items are claimed dynamically (an atomic index counter), but every
    result lands at its input index, so the output of {!map_array} and
    {!map_list} is identical to the serial map regardless of completion
    order — a prerequisite for byte-identical experiment output under
    [-j N].

    The calling domain participates in the work, so a pool created with
    [~domains:n] spawns [n - 1] workers; [~domains:1] spawns none and
    maps degrade to a plain left-to-right serial loop. *)

type t

val tune_gc : unit -> unit
(** Raise the calling domain's minor-heap size and major-heap slack
    (never lowering user-configured values). Applied automatically in
    every pool worker; call it once from the main domain of a
    throughput-sensitive binary so the caller's share of the work runs
    under the same GC regime. Results never depend on it — minor
    collections are stop-the-world across domains in OCaml 5, so fewer
    of them means less cross-domain stalling. *)

val create : domains:int -> t
(** Spawn the pool. [domains] is the total parallelism including the
    caller; raises [Invalid_argument] when [< 1]. *)

val size : t -> int
(** Total parallelism ([domains] as passed to {!create}). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel map with results in input order. If any [f x] raises, the
    pool stops claiming new items, waits for in-flight items, and
    re-raises the exception of the lowest-indexed failing item with its
    original backtrace. Nested calls (from inside a running map) run
    serially. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val run_workers : t -> (int -> unit) -> unit
(** [run_workers t f] runs [f slot] once for every slot in
    [0, size t), the caller participating. Each slot runs exactly once
    and two invocations never share a slot concurrently, so
    slot-indexed scratch needs no locking (the morsel scheduler's
    contract). When the pool is busy — a nested call, or a concurrent
    caller from another domain — the caller runs [f 0] alone, so the
    function always completes and callers must not assume real
    parallelism. Exceptions follow {!map_array}: lowest-slot error is
    re-raised after in-flight slots finish. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Further maps raise
    [Invalid_argument]. Idempotent. *)
