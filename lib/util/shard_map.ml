type ('a, 'b) t = {
  mask : int;
  locks : Mutex.t array;
  tables : ('a, 'b) Hashtbl.t array;
}

let create ?(shards = 16) () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  let n = ref 1 in
  while !n < shards do
    n := !n * 2
  done;
  {
    mask = !n - 1;
    locks = Array.init !n (fun _ -> Mutex.create ());
    tables = Array.init !n (fun _ -> Hashtbl.create 32);
  }

let shard t k = Hashtbl.hash k land t.mask

let find_opt t k =
  let s = shard t k in
  Mutex.lock t.locks.(s);
  let r = Hashtbl.find_opt t.tables.(s) k in
  Mutex.unlock t.locks.(s);
  r

let length t =
  let n = ref 0 in
  Array.iteri
    (fun s table ->
      Mutex.lock t.locks.(s);
      n := !n + Hashtbl.length table;
      Mutex.unlock t.locks.(s))
    t.tables;
  !n

let find_or_add t k make =
  let s = shard t k in
  Mutex.lock t.locks.(s);
  match Hashtbl.find_opt t.tables.(s) k with
  | Some v ->
      Mutex.unlock t.locks.(s);
      (v, false)
  | None -> (
      match make () with
      | v ->
          Hashtbl.add t.tables.(s) k v;
          Mutex.unlock t.locks.(s);
          (v, true)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.unlock t.locks.(s);
          Printexc.raise_with_backtrace e bt)
