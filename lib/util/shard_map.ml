type ('a, 'b) t = {
  mask : int;
  capacity : int; (* max bindings per shard; max_int = unbounded *)
  locks : Mutex.t array;
  tables : ('a, 'b) Hashtbl.t array;
}

let create ?(shards = 16) ?capacity () =
  if shards < 1 then invalid_arg "Shard_map.create: shards must be >= 1";
  let capacity =
    match capacity with
    | None -> max_int
    | Some c when c < 1 -> invalid_arg "Shard_map.create: capacity must be >= 1"
    | Some c -> c
  in
  let n = ref 1 in
  while !n < shards do
    n := !n * 2
  done;
  {
    mask = !n - 1;
    capacity;
    locks = Array.init !n (fun _ -> Mutex.create ());
    tables = Array.init !n (fun _ -> Hashtbl.create 32);
  }

let shard t k = Hashtbl.hash k land t.mask

let find_opt t k =
  let s = shard t k in
  Mutex.lock t.locks.(s);
  let r = Hashtbl.find_opt t.tables.(s) k in
  Mutex.unlock t.locks.(s);
  r

let length t =
  let n = ref 0 in
  Array.iteri
    (fun s table ->
      Mutex.lock t.locks.(s);
      n := !n + Hashtbl.length table;
      Mutex.unlock t.locks.(s))
    t.tables;
  !n

let remove t k =
  let s = shard t k in
  Mutex.lock t.locks.(s);
  let existed = Hashtbl.mem t.tables.(s) k in
  if existed then Hashtbl.remove t.tables.(s) k;
  Mutex.unlock t.locks.(s);
  existed

let find_or_add t k make =
  let s = shard t k in
  Mutex.lock t.locks.(s);
  match Hashtbl.find_opt t.tables.(s) k with
  | Some v ->
      Mutex.unlock t.locks.(s);
      (v, false)
  | None -> (
      match make () with
      | v ->
          (* At capacity the shard rejects the new binding rather than
             evicting an arbitrary victim: this map has no iteration
             order to pick one by, and callers that bound it (the join
             recycling cache) run their own policy via {!remove}. *)
          let created = Hashtbl.length t.tables.(s) < t.capacity in
          if created then Hashtbl.add t.tables.(s) k v;
          Mutex.unlock t.locks.(s);
          (v, created)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.unlock t.locks.(s);
          Printexc.raise_with_backtrace e bt)
