type t = int

let empty = 0
let is_empty s = s = 0
let singleton i = 1 lsl i
let mem i s = s land (1 lsl i) <> 0
let add i s = s lor (1 lsl i)
let remove i s = s land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land b = a
let disjoint a b = a land b = 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let lowest_bit s =
  assert (s <> 0);
  s land -s

let lowest s =
  assert (s <> 0);
  (* Isolate the least set bit, then locate it with a constant six-step
     binary search (an OCaml int has 63 bits). *)
  let b = s land -s in
  let i = ref 0 in
  let b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    i := !i + 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    i := !i + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    i := !i + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    i := !i + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    i := !i + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr i;
  !i

let equal (a : t) (b : t) = a = b

let hash (s : t) =
  (* Multiplicative mixing (golden-ratio constant truncated to 61 bits);
     the identity hash would put the dense consecutive masks the DP
     enumerates into colliding buckets. *)
  let h = s * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 29)) land max_int

let full n =
  assert (n >= 0 && n <= 62);
  (1 lsl n) - 1

let iter f s =
  let rec go s =
    if s <> 0 then begin
      f (lowest s);
      go (s land (s - 1))
    end
  in
  go s

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list is = List.fold_left (fun acc i -> add i acc) empty is

let subsets_iter s f =
  (* Classic submask enumeration: visits each non-empty proper subset. *)
  let sub = ref ((s - 1) land s) in
  while !sub <> 0 do
    f !sub;
    sub := (!sub - 1) land s
  done

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
