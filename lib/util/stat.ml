let epsilon = 1e-9

let floored x = Float.max 1.0 x

let q_error ~estimate ~truth =
  let e = Float.max estimate epsilon in
  let t = Float.max truth epsilon in
  Float.max (e /. t) (t /. e)

let signed_error ~estimate ~truth =
  let e = Float.max estimate epsilon in
  let t = Float.max truth epsilon in
  e /. t

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stat.percentile: empty input";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
  end

let median xs = percentile xs 0.5

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stat.mean: empty input";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geometric_mean xs =
  if Array.length xs = 0 then invalid_arg "Stat.geometric_mean: empty input";
  let log_sum =
    Array.fold_left
      (fun acc x ->
        assert (x > 0.0);
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (Array.length xs))

let minimum xs = Array.fold_left Float.min xs.(0) xs

let maximum xs = Array.fold_left Float.max xs.(0) xs

type boxplot = {
  p5 : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
}

let boxplot xs =
  {
    p5 = percentile xs 0.05;
    p25 = percentile xs 0.25;
    p50 = percentile xs 0.50;
    p75 = percentile xs 0.75;
    p95 = percentile xs 0.95;
  }

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_regression points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stat.linear_regression: need at least 2 points";
  let fn = float_of_int n in
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < epsilon then
    invalid_arg "Stat.linear_regression: x values are all equal";
  let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  let y_bar = !sy /. fn in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let pred = (slope *. x) +. intercept in
      ss_tot := !ss_tot +. ((y -. y_bar) ** 2.0);
      ss_res := !ss_res +. ((y -. pred) ** 2.0))
    points;
  let r2 = if !ss_tot < epsilon then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { slope; intercept; r2 }

let bucketize ~edges xs =
  let k = Array.length edges in
  let counts = Array.make (k + 1) 0 in
  Array.iter
    (fun x ->
      (* Index of the first edge strictly greater than x. *)
      let rec go i = if i >= k || x < edges.(i) then i else go (i + 1) in
      let bucket = go 0 in
      counts.(bucket) <- counts.(bucket) + 1)
    xs;
  counts

let fraction num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
