type 'a state = Pending of (unit -> 'a) | Done of 'a | Failed of exn

type 'a t = { mutex : Mutex.t; mutable state : 'a state }

let make f = { mutex = Mutex.create (); state = Pending f }

let of_val v = { mutex = Mutex.create (); state = Done v }

let force t =
  Mutex.lock t.mutex;
  match t.state with
  | Done v ->
      Mutex.unlock t.mutex;
      v
  | Failed e ->
      Mutex.unlock t.mutex;
      raise e
  | Pending f -> (
      (* The computation runs under the cell's own mutex: concurrent
         forcers block until the first one finishes, exactly once. Cells
         guard independent computations, so holding the lock during the
         call cannot deadlock unless the thunk re-enters its own cell —
         the same programs that [Lazy] rejects with [Undefined]. *)
      match f () with
      | v ->
          t.state <- Done v;
          Mutex.unlock t.mutex;
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          t.state <- Failed e;
          Mutex.unlock t.mutex;
          Printexc.raise_with_backtrace e bt)

let is_val t =
  Mutex.lock t.mutex;
  let r = match t.state with Done _ -> true | _ -> false in
  Mutex.unlock t.mutex;
  r
