type cell = {
  model : string;
  cards : string;
  r2 : float;
  median_error : float;
  geomean_runtime_ms : float;
  timeouts : int;
}

let models =
  [
    ("standard cost model", Cost.Cost_model.postgres);
    ("tuned cost model", Cost.Cost_model.tuned);
    ("simple cost model (Cmm)", Cost.Cost_model.cmm);
  ]

let card_sources = [ ("PostgreSQL estimates", "PostgreSQL"); ("true cardinalities", "true") ]

let measure (h : Harness.t) =
  Harness.with_index_config h Storage.Database.Pk_fk (fun () ->
      List.concat_map
        (fun (model_name, model) ->
          List.map
            (fun (cards_label, system) ->
              let points = ref [] in
              let runtimes = ref [] in
              let timeouts = ref 0 in
              (* Plan + execute per query in parallel; the serial replay
                 below restores the original push order. *)
              let per_query =
                Harness.par_map h
                  (fun q ->
                    let est = Harness.estimator h q system in
                    let plan, cost = Harness.plan_with h q ~est ~model () in
                    let result =
                      Harness.execute h q ~plan
                        ~size_est:est.Cardest.Estimator.subset
                        ~engine:Exec.Engine_config.robust
                    in
                    if result.Exec.Executor.timed_out then None
                    else Some (cost, result.Exec.Executor.runtime_ms))
                  h.Harness.queries
              in
              Array.iter
                (function
                  | None -> incr timeouts
                  | Some (cost, runtime_ms) ->
                      points := (cost, runtime_ms) :: !points;
                      runtimes := Float.max 0.01 runtime_ms :: !runtimes)
                per_query;
              let points = Array.of_list !points in
              let fit = Util.Stat.linear_regression points in
              let errors =
                Array.map
                  (fun (c, t) ->
                    let predicted =
                      (fit.Util.Stat.slope *. c) +. fit.Util.Stat.intercept
                    in
                    Float.abs (t -. predicted) /. Float.max 0.01 t)
                  points
              in
              {
                model = model_name;
                cards = cards_label;
                r2 = fit.Util.Stat.r2;
                median_error = Util.Stat.median errors;
                geomean_runtime_ms =
                  Util.Stat.geometric_mean (Array.of_list !runtimes);
                timeouts = !timeouts;
              })
            card_sources)
        models)

let render h =
  let cells = measure h in
  let table =
    Util.Render.table
      ~title:
        "Figure 8 / Section 5: cost model predictive power and plan quality\n\
         (PK+FK indexes; linear fit of cost vs measured runtime per panel)"
      ~header:
        [ "cost model"; "cardinalities"; "r^2"; "median eps"; "geomean runtime";
          "timeouts" ]
      (List.map
         (fun c ->
           [
             c.model;
             c.cards;
             Printf.sprintf "%.3f" c.r2;
             Util.Render.percent_cell c.median_error;
             Printf.sprintf "%s ms" (Util.Render.float_cell c.geomean_runtime_ms);
             string_of_int c.timeouts;
           ])
         cells)
  in
  (* Geomean improvements relative to the standard model, true cards. *)
  let geomean model =
    List.find
      (fun c -> String.equal c.model model && String.equal c.cards "true cardinalities")
      cells
  in
  let base = (geomean "standard cost model").geomean_runtime_ms in
  let improvement cell =
    (base -. cell.geomean_runtime_ms) /. base *. 100.0
  in
  table
  ^ Printf.sprintf
      "\nWith true cardinalities: tuned model %.0f%% faster, simple Cmm %.0f%% \
       faster than the standard model (geometric mean).\n"
      (improvement (geomean "tuned cost model"))
      (improvement (geomean "simple cost model (Cmm)"))
