type entry = {
  id : string;
  doc : string;
  render : Harness.t -> string;
}

let all =
  [
    { id = "table-1"; doc = "base-table q-errors"; render = Exp_table1.render };
    {
      id = "figure-3";
      doc = "join estimate errors by join count";
      render = Exp_fig3.render;
    };
    { id = "figure-4"; doc = "JOB vs TPC-H estimates"; render = Exp_fig4.render };
    {
      id = "figure-5";
      doc = "default vs true distinct counts";
      render = Exp_fig5.render;
    };
    {
      id = "table-sec4.1";
      doc = "slowdowns from injected estimates";
      render = Exp_sec41.render;
    };
    {
      id = "figure-6";
      doc = "engine robustness variants";
      render = Exp_fig6.render;
    };
    {
      id = "figure-7";
      doc = "PK vs PK+FK slowdowns";
      render = Exp_fig7.render;
    };
    {
      id = "figure-8";
      doc = "cost model vs runtime";
      render = Exp_fig8.render;
    };
    {
      id = "figure-9";
      doc = "random plan cost distributions";
      render = Exp_fig9.render;
    };
    {
      id = "table-2";
      doc = "restricted tree shapes";
      render = Exp_table2.render;
    };
    { id = "table-3"; doc = "DP vs heuristics"; render = Exp_table3.render };
    {
      id = "ablations";
      doc = "design-choice ablations (extensions)";
      render = Exp_ablation.render;
    };
    {
      id = "extensions";
      doc = "future-work implementations: join sampling, adaptive \
             re-optimization";
      render = Exp_extensions.render;
    };
    {
      id = "reopt";
      doc = "mid-query re-optimization: cardinality feedback off/on, \
             re-plan counts, threshold sweep";
      render = Exp_reopt.render;
    };
  ]

let registry =
  Core.Registry.make ~kind:"experiment"
    (List.map
       (fun e -> { Core.Registry.name = e.id; doc = e.doc; value = e })
       all)

let ids = Core.Registry.names registry

let find id = Core.Registry.find registry id

let find_exn id = Core.Registry.find_exn registry id
