module QG = Query.Query_graph
module Bitset = Util.Bitset

type cell = {
  joins : int;
  count : int;
  box : Util.Stat.boxplot;
  frac_wrong_10x : float;
}

let signed_errors_for (_h : Harness.t) (q : Harness.qctx) est ~max_joins =
  let tc = Harness.truth q in
  let subsets = QG.connected_subsets q.Harness.graph in
  Array.to_list subsets
  |> List.filter_map (fun s ->
         let joins = Bitset.cardinal s - 1 in
         if joins > max_joins then None
         else
           let estimate = Util.Stat.floored (est.Cardest.Estimator.subset s) in
           let truth = Util.Stat.floored (Cardest.True_card.card tc s) in
           Some (joins, Util.Stat.signed_error ~estimate ~truth))

let measure (h : Harness.t) ~max_joins =
  List.map
    (fun system ->
      let by_joins = Array.make (max_joins + 1) [] in
      (* Per-query error lists compute in parallel; pushing them into the
         join-count bins serially, in query order, replays the original
         accumulation exactly. *)
      let per_query =
        Harness.par_map h
          (fun q ->
            let est = Harness.estimator h q system in
            signed_errors_for h q est ~max_joins)
          h.Harness.queries
      in
      Array.iter
        (List.iter
           (fun (joins, err) -> by_joins.(joins) <- err :: by_joins.(joins)))
        per_query;
      let cells =
        List.init (max_joins + 1) (fun joins ->
            let errs = Array.of_list by_joins.(joins) in
            let wrong =
              Array.fold_left
                (fun acc e -> if e >= 10.0 || e <= 0.1 then acc + 1 else acc)
                0 errs
            in
            {
              joins;
              count = Array.length errs;
              box = Util.Stat.boxplot errs;
              frac_wrong_10x = Util.Stat.fraction wrong (Array.length errs);
            })
      in
      (system, cells))
    Cardest.Systems.names

let render h =
  let data = measure h ~max_joins:6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 3: quality of cardinality estimates for multi-join queries\n";
  Buffer.add_string buf
    "(signed error estimate/true; <1 means underestimation; one row per join count)\n\n";
  List.iter
    (fun (system, cells) ->
      Buffer.add_string buf
        (Util.Render.log_boxplot_rows ~title:system ~lo:1e-8 ~hi:1e4
           (List.map
              (fun c -> (Printf.sprintf "%d joins" c.joins, Some c.box))
              cells));
      Buffer.add_string buf
        (Util.Render.table ~header:[ "joins"; "n"; "median"; "frac off >=10x" ]
           (List.map
              (fun c ->
                [
                  string_of_int c.joins;
                  string_of_int c.count;
                  Util.Render.float_cell c.box.Util.Stat.p50;
                  Util.Render.percent_cell c.frac_wrong_10x;
                ])
              cells));
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf
