let configs =
  [
    ("(a) PK indexes", Storage.Database.Pk_only);
    ("(b) PK + FK indexes", Storage.Database.Pk_fk);
  ]

let measure (h : Harness.t) =
  List.map
    (fun (label, config) ->
      Harness.with_index_config h config (fun () ->
          let slowdowns =
            Array.to_list
              (Harness.par_map h
                 (fun q ->
                   let est = Harness.estimator h q "PostgreSQL" in
                   Harness.slowdown_vs_optimal h q ~est
                     ~model:Cost.Cost_model.postgres
                     ~engine:Exec.Engine_config.robust)
                 h.Harness.queries)
          in
          let counts =
            Util.Stat.bucketize ~edges:Exp_fig6.bucket_edges
              (Array.of_list
                 (List.map (fun v -> if v = infinity then 1e9 else v) slowdowns))
          in
          let total = List.length slowdowns in
          ( label,
            Array.to_list (Array.map (fun c -> Util.Stat.fraction c total) counts)
          )))
    configs

let render h =
  let rows = measure h in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 7: slowdown of queries using PostgreSQL estimates w.r.t. true\n\
     cardinalities (different index configurations, robust engine)\n\n";
  List.iter
    (fun (label, fracs) ->
      Buffer.add_string buf
        (Util.Render.bar_chart ~title:label ~width:40
           (List.map2
              (fun l f -> (l, f *. 100.0))
              Exp_fig6.bucket_labels fracs));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
