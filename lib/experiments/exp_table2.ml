type row = {
  shape : string;
  config : Storage.Database.index_config;
  median : float;
  p95 : float;
  max : float;
}

let shapes =
  [
    ("zig-zag", Planner.Search.Only_zig_zag);
    ("left-deep", Planner.Search.Only_left_deep);
    ("right-deep", Planner.Search.Only_right_deep);
  ]

let configs = [ Storage.Database.Pk_only; Storage.Database.Pk_fk ]

let measure (h : Harness.t) =
  List.concat_map
    (fun config ->
      Harness.with_index_config h config (fun () ->
          let per_query =
            Array.to_list h.Harness.queries
            |> Harness.par_map_list h (fun q ->
                   let oracle = Harness.estimator h q "true" in
                   let _, bushy =
                     Harness.plan_with h q ~est:oracle ~model:Cost.Cost_model.cmm ()
                   in
                   List.map
                     (fun (name, shape) ->
                       let _, cost =
                         Harness.plan_with h q ~est:oracle
                           ~model:Cost.Cost_model.cmm ~shape ()
                       in
                       (name, cost /. Float.max 1e-9 bushy))
                     shapes)
          in
          List.map
            (fun (name, _) ->
              let slowdowns =
                Array.of_list
                  (List.map (fun per -> List.assoc name per) per_query)
              in
              {
                shape = name;
                config;
                median = Util.Stat.median slowdowns;
                p95 = Util.Stat.percentile slowdowns 0.95;
                max = Util.Stat.maximum slowdowns;
              })
            shapes))
    configs

let render h =
  let rows = measure h in
  Util.Render.table
    ~title:
      "Table 2: slowdown for restricted tree shapes vs the optimal (bushy)\n\
       plan, true cardinalities"
    ~header:[ "shape"; "index config"; "median"; "95%"; "max" ]
    (List.map
       (fun r ->
         [
           r.shape;
           Storage.Database.index_config_to_string r.config;
           Util.Render.float_cell r.median;
           Util.Render.float_cell r.p95;
           Util.Render.float_cell r.max;
         ])
       rows)
