type row = {
  algorithm : string;
  cards : string;
  config : Storage.Database.index_config;
  median : float;
  p95 : float;
  max : float;
}

(* Display label and the registry's typed enumerator, side by side — the
   dispatch itself lives in the pipeline. *)
let algorithms =
  [
    ("Dynamic Programming", Core.Registry.Exhaustive_dp);
    ("Quickpick-1000", Core.Registry.Quickpick 1000);
    ("Greedy Operator Ordering", Core.Registry.Greedy_operator_ordering);
  ]

let card_sources = [ ("PostgreSQL estimates", "PostgreSQL"); ("true cardinalities", "true") ]

let configs = [ Storage.Database.Pk_only; Storage.Database.Pk_fk ]

let measure (h : Harness.t) =
  List.concat_map
    (fun config ->
      Harness.with_index_config h config (fun () ->
          List.concat_map
            (fun (cards_label, system) ->
              (* slowdown per query per algorithm *)
              let per_query =
                Array.to_list h.Harness.queries
                |> Harness.par_map_list h (fun q ->
                       let est = Harness.estimator h q system in
                       let oracle = Harness.estimator h q "true" in
                       let optimal =
                         snd
                           (Harness.plan_with h q ~est:oracle
                              ~model:Cost.Cost_model.cmm ())
                       in
                       List.map
                         (fun (label, enumerator) ->
                           let plan =
                             fst
                               (Harness.plan_with h q ~est
                                  ~model:Cost.Cost_model.cmm ~enumerator
                                  ~seed:90125 ())
                           in
                           let cost = Harness.true_cost h q plan in
                           (label, cost /. Float.max 1e-9 optimal))
                         algorithms)
              in
              List.map
                (fun (algorithm, _) ->
                  let slowdowns =
                    Array.of_list
                      (List.map (fun per -> List.assoc algorithm per) per_query)
                  in
                  {
                    algorithm;
                    cards = cards_label;
                    config;
                    median = Util.Stat.median slowdowns;
                    p95 = Util.Stat.percentile slowdowns 0.95;
                    max = Util.Stat.maximum slowdowns;
                  })
                algorithms)
            card_sources))
    configs

let render h =
  let rows = measure h in
  Util.Render.table
    ~title:
      "Table 3: exhaustive DP vs Quickpick-1000 vs Greedy Operator Ordering\n\
       (plan chosen with the given cardinalities; cost recomputed with the\n\
       true ones, normalized by the optimal plan of that configuration)"
    ~header:[ "algorithm"; "cardinalities"; "index config"; "median"; "95%"; "max" ]
    (List.map
       (fun r ->
         [
           r.algorithm;
           r.cards;
           Storage.Database.index_config_to_string r.config;
           Util.Render.float_cell r.median;
           Util.Render.float_cell r.p95;
           Util.Render.float_cell r.max;
         ])
       rows)
