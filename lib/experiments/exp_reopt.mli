(** Mid-query re-optimization (Perron et al., PAPERS.md): slowdown
    distributions vs the true-cardinality optimum for the five emulated
    estimators with execution-time cardinality feedback off and on, plus
    the Simpli-Squared no-estimates baseline, re-plan counts, and a
    q-error threshold sweep. Both arms run with checkpoints enabled and
    must return identical query results — enforced per execution. *)

val buckets : float array

val bucket_labels : string list

val threshold : float Atomic.t
(** Q-error trip point for the main table (default 2.0); set by
    [jobench experiment --reopt-threshold]. *)

type summary = {
  system : string;
  off_slows : float array;
  on_slows : float array;
  replans : int;
  replanned_queries : int;
  off_ms : float;
  on_ms : float;
  comparable : int;
  best_query : string;
  best_off : float;
  best_on : float;
}

val last_summaries : summary list Atomic.t
(** Per-system aggregates of the most recent {!render}/{!measure}, read
    by [bench/main.exe] to write BENCH_reopt.json without re-measuring. *)

val measure : Harness.t -> summary list

val render : Harness.t -> string
