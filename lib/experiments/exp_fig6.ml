let variants =
  [
    ("(a) default", Exec.Engine_config.default_9_4);
    ("(b) + no nested-loop join", Exec.Engine_config.no_nl);
    ("(c) + rehashing", Exec.Engine_config.robust);
  ]

(* domlint: safe [R1] — constant bucket edges, never written *)
let bucket_edges = [| 0.9; 1.1; 2.0; 10.0; 100.0 |]

let bucket_labels =
  [ "[0.3,0.9)"; "[0.9,1.1)"; "[1.1,2)"; "[2,10)"; "[10,100)"; ">100" ]

let measure (h : Harness.t) =
  Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      List.map
        (fun (label, engine) ->
          let slowdowns =
            Array.to_list
              (Harness.par_map h
                 (fun q ->
                   let est = Harness.estimator h q "PostgreSQL" in
                   Harness.slowdown_vs_optimal h q ~est
                     ~model:Cost.Cost_model.postgres ~engine)
                 h.Harness.queries)
          in
          let counts =
            Util.Stat.bucketize ~edges:bucket_edges
              (Array.of_list
                 (List.map (fun v -> if v = infinity then 1e9 else v) slowdowns))
          in
          let total = List.length slowdowns in
          ( label,
            Array.to_list (Array.map (fun c -> Util.Stat.fraction c total) counts)
          ))
        variants)

let render h =
  let rows = measure h in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 6: slowdown of queries using PostgreSQL estimates w.r.t. true\n\
     cardinalities (primary key indexes only)\n\n";
  List.iter
    (fun (label, fracs) ->
      Buffer.add_string buf
        (Util.Render.bar_chart ~title:label ~width:40
           (List.map2 (fun l f -> (l, f *. 100.0)) bucket_labels fracs));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf
