module QG = Query.Query_graph

type qctx = {
  query : Workload.Job.query;
  graph : QG.t;
  projections : (int * int) list;
  truth : Cardest.True_card.t Util.Once.t;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;
  coarse : Dbstats.Analyze.t;
  queries : qctx array;
  pipeline : Core.Pipeline.t;
  verify_memo : (string, unit) Util.Shard_map.t;
  mutable jobs : int;
  mutable pool : Util.Domain_pool.t option;
  mutable exec_jobs : int;
  mutable exec_pool : Util.Domain_pool.t option;
  pool_lock : Mutex.t;
}

(* The pipeline's view of a bound benchmark query. *)
let pquery (q : qctx) =
  {
    Core.Pipeline.name = q.query.Workload.Job.name;
    sql = q.query.Workload.Job.sql;
    graph = q.graph;
    projections = q.projections;
  }

let create ?(seed = 42) ?(scale = Datagen.Imdb_gen.reference_scale)
    ?(queries = Workload.Job.all) ?(jobs = 1) ?(exec_jobs = 1)
    () =
  if jobs < 1 then invalid_arg "Harness.create: jobs must be >= 1";
  if exec_jobs < 1 then invalid_arg "Harness.create: exec_jobs must be >= 1";
  let db = Datagen.Imdb_gen.generate ~seed ~scale () in
  let pipeline = Core.Pipeline.create db in
  let queries =
    Array.of_list
      (List.map
         (fun (q : Workload.Job.query) ->
           let bound = Sqlfront.Binder.bind_sql db ~name:q.name q.sql in
           let graph = bound.Sqlfront.Binder.graph in
           let projections = bound.Sqlfront.Binder.projections in
           let pq =
             { Core.Pipeline.name = q.name; sql = q.sql; graph; projections }
           in
           {
             query = q;
             graph;
             projections;
             truth = Core.Pipeline.truth_cell pipeline pq;
           })
         queries)
  in
  (* Pin every ANALYZE sample to the serial demand order before any
     parallel fan-out; see {!Core.Pipeline.warm_statistics}. *)
  Core.Pipeline.warm_statistics pipeline
    (Array.to_list (Array.map pquery queries));
  {
    db;
    analyze = pipeline.Core.Pipeline.analyze;
    coarse = pipeline.Core.Pipeline.coarse;
    queries;
    pipeline;
    verify_memo = Util.Shard_map.create ();
    jobs;
    pool = None;
    exec_jobs;
    exec_pool = None;
    pool_lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* The domain pool: created lazily on first parallel map, so harnesses
   that stay serial (jobs = 1 spawns no domains either way) cost
   nothing, and shut down explicitly — domains are a bounded resource. *)

let pool t =
  Mutex.lock t.pool_lock;
  let p =
    match t.pool with
    | Some p -> p
    | None ->
        let p = Util.Domain_pool.create ~domains:t.jobs in
        t.pool <- Some p;
        p
  in
  Mutex.unlock t.pool_lock;
  p

(* The intra-query (morsel) pool, separate from the inter-query pool so
   the two levels compose: with [-j] fan-out active, every concurrent
   query hands the executor the same shared morsel pool and all but one
   fall back to serial phases (Domain_pool's busy path) — results are
   byte-identical either way, so the composition needs no coordination
   beyond capping total domains at the CLI. *)
let exec_pool t =
  if t.exec_jobs <= 1 then None
  else begin
    Mutex.lock t.pool_lock;
    let p =
      match t.exec_pool with
      | Some p -> p
      | None ->
          let p = Util.Domain_pool.create ~domains:t.exec_jobs in
          t.exec_pool <- Some p;
          p
    in
    Mutex.unlock t.pool_lock;
    Some p
  end

let jobs t = t.jobs

let exec_jobs t = t.exec_jobs

let set_jobs t n =
  if n < 1 then invalid_arg "Harness.set_jobs: jobs must be >= 1";
  Mutex.lock t.pool_lock;
  (match t.pool with Some p -> Util.Domain_pool.shutdown p | None -> ());
  t.pool <- None;
  t.jobs <- n;
  Mutex.unlock t.pool_lock

let set_exec_jobs t n =
  if n < 1 then invalid_arg "Harness.set_exec_jobs: exec_jobs must be >= 1";
  Mutex.lock t.pool_lock;
  (match t.exec_pool with Some p -> Util.Domain_pool.shutdown p | None -> ());
  t.exec_pool <- None;
  t.exec_jobs <- n;
  Mutex.unlock t.pool_lock

let shutdown t =
  Mutex.lock t.pool_lock;
  (match t.pool with Some p -> Util.Domain_pool.shutdown p | None -> ());
  t.pool <- None;
  (match t.exec_pool with Some p -> Util.Domain_pool.shutdown p | None -> ());
  t.exec_pool <- None;
  Mutex.unlock t.pool_lock

let par_map t f xs = Util.Domain_pool.map_array (pool t) f xs

let par_map_list t f xs = Util.Domain_pool.map_list (pool t) f xs

(* ------------------------------------------------------------------ *)

let find t name =
  match
    Array.to_list t.queries
    |> List.find_opt (fun q -> String.equal q.query.Workload.Job.name name)
  with
  | Some q -> q
  | None ->
      invalid_arg
        (Core.Registry.error_to_string
           {
             Core.Registry.kind = "query";
             input = name;
             valid =
               Array.to_list t.queries
               |> List.map (fun q -> q.query.Workload.Job.name);
           })

let truth qctx = Util.Once.force qctx.truth

let estimator t qctx name = Core.Pipeline.estimator t.pipeline (pquery qctx) name

let stats t = Core.Pipeline.stats t.pipeline

let stats_summary t = Core.Pipeline.stats_summary t.pipeline

let with_index_config t config f =
  let saved = Storage.Database.index_config t.db in
  Storage.Database.set_index_config t.db config;
  Fun.protect ~finally:(fun () -> Storage.Database.set_index_config t.db saved) f

(* Debug mode: when set (e.g. via `jobench experiment --verify`), every
   planning call also runs the estimate and cost sanitizers, so a figure
   regeneration is self-checking end to end. The estimate pass probes
   every connected subset, so it is memoized per harness instance on
   query x estimator x index configuration — a second harness (different
   seed or scale), or the same harness under another physical design,
   verifies again instead of silently skipping. *)
let debug_verify = Atomic.make false

let fail_report report =
  invalid_arg
    (String.concat "; "
       (List.map Verify.Violation.to_string
          report.Verify.Violation.violations))

let verify_choice t qctx ~est ~model ~shape (plan, cost) =
  let name = qctx.query.Workload.Job.name in
  (* Structural sanity is cheap; it guards every experiment run. *)
  Verify.ensure_plan ~shape ~what:name qctx.graph plan;
  if Atomic.get debug_verify then begin
    let est_name = est.Cardest.Estimator.name in
    let subject =
      Printf.sprintf "%s/%s/%s" name est_name
        (Storage.Database.index_config_to_string
           (Storage.Database.index_config t.db))
    in
    (* Claim the subject under its shard lock; the (expensive) estimate
       pass itself runs outside it. *)
    let fresh_subject =
      snd (Util.Shard_map.find_or_add t.verify_memo subject (fun () -> ()))
    in
    let est_report =
      if fresh_subject then Verify.check_estimates ~subject qctx.graph est
      else Verify.Violation.empty
    in
    let env =
      {
        Cost.Cost_model.graph = qctx.graph;
        db = t.db;
        card = est.Cardest.Estimator.subset;
      }
    in
    let cost_report =
      Verify.check_costs
        ~subject:(subject ^ "/" ^ model.Cost.Cost_model.name)
        ~reported_cost:cost env model plan
    in
    let report = Verify.Violation.merge est_report cost_report in
    if not (Verify.Violation.ok report) then fail_report report
  end

let plan_with t qctx ~est ~model ?enumerator ?(allow_nl = false)
    ?(shape = Planner.Search.Any_shape) ?allow_hash ?seed () =
  let entry =
    Core.Pipeline.plan_with t.pipeline (pquery qctx) ~est ~model ?enumerator
      ~shape ~allow_nl ?allow_hash ?seed ()
  in
  verify_choice t qctx ~est ~model ~shape entry;
  entry

let execute t qctx ~plan ~size_est ~engine =
  Exec.Executor.run ~db:t.db ~graph:qctx.graph ~config:engine ~size_est
    ?pool:(exec_pool t) ~projections:qctx.projections plan

let true_cost t qctx plan =
  let env =
    {
      Cost.Cost_model.graph = qctx.graph;
      db = t.db;
      card = Cardest.True_card.card (truth qctx);
    }
  in
  Cost.Cost_model.plan_cost Cost.Cost_model.cmm env plan

let slowdown_vs_optimal t qctx ~est ~model ~engine =
  let allow_nl = engine.Exec.Engine_config.allow_nl_join in
  let plan, _ = plan_with t qctx ~est ~model ~allow_nl () in
  let oracle = estimator t qctx "true" in
  let optimal_plan, _ = plan_with t qctx ~est:oracle ~model ~allow_nl () in
  let run plan size_est = execute t qctx ~plan ~size_est ~engine in
  let actual = run plan est.Cardest.Estimator.subset in
  let baseline = run optimal_plan oracle.Cardest.Estimator.subset in
  if actual.Exec.Executor.timed_out then
    (* Lower bound: the plan ran for at least the limit. *)
    float_of_int engine.Exec.Engine_config.work_limit
    /. Exec.Engine_config.work_units_per_ms
    /. Float.max 0.001 baseline.Exec.Executor.runtime_ms
  else
    actual.Exec.Executor.runtime_ms
    /. Float.max 0.001 baseline.Exec.Executor.runtime_ms
