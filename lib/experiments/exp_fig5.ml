let max_joins = 6

let collect (h : Harness.t) system =
  (* Per-query error lists compute in parallel; the fold replays the
     serial [errors := list @ !errors] accumulation order. *)
  let per_query =
    Harness.par_map h
      (fun q ->
        let est = Harness.estimator h q system in
        Exp_fig3.signed_errors_for h q est ~max_joins)
      h.Harness.queries
  in
  let errors =
    ref (Array.fold_left (fun acc items -> items @ acc) [] per_query)
  in
  List.init (max_joins + 1) (fun joins ->
      let errs =
        List.filter_map (fun (j, e) -> if j = joins then Some e else None) !errors
      in
      ( joins,
        if errs = [] then None else Some (Util.Stat.boxplot (Array.of_list errs)) ))

let measure h =
  [
    ("PostgreSQL", collect h "PostgreSQL");
    ("PostgreSQL (true distinct)", collect h "PostgreSQL (true distinct)");
  ]

let render h =
  let data = measure h in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 5: PostgreSQL estimates with default vs true distinct counts\n";
  Buffer.add_string buf
    "(medians drop further below 1: better statistics worsen the underestimation)\n\n";
  List.iter
    (fun (name, rows) ->
      Buffer.add_string buf
        (Util.Render.log_boxplot_rows ~title:name ~lo:1e-8 ~hi:1e2
           (List.map
              (fun (joins, box) -> (Printf.sprintf "%d joins" joins, box))
              rows));
      let medians =
        List.filter_map
          (fun (j, box) ->
            Option.map
              (fun (b : Util.Stat.boxplot) ->
                Printf.sprintf "%d:%s" j (Util.Render.float_cell b.Util.Stat.p50))
              box)
          rows
      in
      Buffer.add_string buf
        (Printf.sprintf "medians by joins: %s\n\n" (String.concat "  " medians)))
    data;
  Buffer.contents buf
