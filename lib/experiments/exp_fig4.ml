module QG = Query.Query_graph
module Bitset = Util.Bitset

let job_query_names = [ "6a"; "16d"; "17b"; "25c" ]
let tpch_query_names = [ "TPC-H 5"; "TPC-H 8"; "TPC-H 10" ]

let max_joins = 6

let boxes_of_errors errors =
  List.init (max_joins + 1) (fun joins ->
      let errs =
        List.filter_map (fun (j, e) -> if j = joins then Some e else None) errors
      in
      let box =
        if errs = [] then None else Some (Util.Stat.boxplot (Array.of_list errs))
      in
      (joins, box))

(* Signed errors for a stand-alone query (used for TPC-H, which lives
   outside the IMDB harness and gets its own pipeline). *)
let errors_of_query pipeline (q : Core.Pipeline.query) =
  let est = Core.Pipeline.estimator pipeline q "PostgreSQL" in
  let tc = Core.Pipeline.truth pipeline q in
  Array.to_list (QG.connected_subsets q.Core.Pipeline.graph)
  |> List.filter_map (fun s ->
         let joins = Bitset.cardinal s - 1 in
         if joins > max_joins then None
         else
           Some
             ( joins,
               Util.Stat.signed_error
                 ~estimate:(Util.Stat.floored (est.Cardest.Estimator.subset s))
                 ~truth:(Util.Stat.floored (Cardest.True_card.card tc s)) ))

let measure (h : Harness.t) =
  let job_rows =
    Harness.par_map_list h
      (fun name ->
        let q = Harness.find h name in
        let est = Harness.estimator h q "PostgreSQL" in
        let errors = Exp_fig3.signed_errors_for h q est ~max_joins in
        ("JOB " ^ name, boxes_of_errors errors))
      job_query_names
  in
  let tpch = Core.Pipeline.create (Datagen.Tpch_gen.generate ()) in
  let tpch_queries =
    List.map
      (fun name ->
        let q = Workload.Tpch_queries.find name in
        let sql = q.Workload.Tpch_queries.sql in
        let bound = Sqlfront.Binder.bind_sql (Core.Pipeline.db tpch) ~name sql in
        {
          Core.Pipeline.name;
          sql;
          graph = bound.Sqlfront.Binder.graph;
          projections = bound.Sqlfront.Binder.projections;
        })
      tpch_query_names
  in
  (* Exact cardinalities never touch the ANALYZE sampler, so they can be
     forced in parallel; the estimator probes below stay serial to keep
     the TPC-H pipeline's statistics demand order intact. *)
  ignore
    (Harness.par_map_list h
       (fun pq -> ignore (Core.Pipeline.truth tpch pq))
       tpch_queries);
  let tpch_rows =
    List.map
      (fun pq ->
        (pq.Core.Pipeline.name, boxes_of_errors (errors_of_query tpch pq)))
      tpch_queries
  in
  job_rows @ tpch_rows

let render h =
  let data = measure h in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 4: PostgreSQL estimates for 4 JOB queries and 3 TPC-H queries\n";
  Buffer.add_string buf
    "(signed error estimate/true per join count; TPC-H stays near 1)\n\n";
  List.iter
    (fun (name, rows) ->
      Buffer.add_string buf
        (Util.Render.log_boxplot_rows ~title:name ~lo:1e-6 ~hi:1e3
           (List.map
              (fun (joins, box) -> (Printf.sprintf "%d joins" joins, box))
              rows));
      Buffer.add_char buf '\n')
    data;
  Buffer.contents buf
