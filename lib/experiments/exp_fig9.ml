let query_names = [ "6a"; "13a"; "16d"; "17b"; "25c" ]

let index_configs =
  [ Storage.Database.No_indexes; Storage.Database.Pk_only; Storage.Database.Pk_fk ]

type summary = {
  config : Storage.Database.index_config;
  frac_within_1_5 : float;
  avg_width : float;
}

let search (h : Harness.t) (q : Harness.qctx) =
  let oracle = Harness.estimator h q "true" in
  Planner.Search.create ~model:Cost.Cost_model.cmm ~graph:q.Harness.graph
    ~db:h.Harness.db ~card:oracle.Cardest.Estimator.subset ()

(* Cost of the optimal bushy plan under the current physical design,
   served from the pipeline's plan cache. *)
let optimal_cost h q =
  snd
    (Harness.plan_with h q
       ~est:(Harness.estimator h q "true")
       ~model:Cost.Cost_model.cmm ())

(* Normalizer: cost of the optimal bushy plan with FK indexes. *)
let optimal_fk_cost h q =
  Harness.with_index_config h Storage.Database.Pk_fk (fun () ->
      optimal_cost h q)

let measure_query (h : Harness.t) q ~attempts =
  let norm = optimal_fk_cost h q in
  List.map
    (fun config ->
      Harness.with_index_config h config (fun () ->
          let prng = Util.Prng.create 4242 in
          let costs = Planner.Quickpick.sample_costs (search h q) prng ~attempts in
          (config, Array.map (fun c -> c /. norm) costs)))
    index_configs

let summarize (h : Harness.t) ~attempts =
  List.map
    (fun config ->
      Harness.with_index_config h config (fun () ->
          let within = ref 0 and total = ref 0 in
          let widths = ref [] in
          (* The index-config sweep stays serial (it mutates the shared
             database); per-query sampling inside one config fans out.
             Each query seeds its own PRNG, so results are deterministic
             regardless of scheduling. *)
          let per_query =
            Harness.par_map h
              (fun q ->
                let s = search h q in
                let optimal = optimal_cost h q in
                let prng = Util.Prng.create 777 in
                let costs =
                  Planner.Quickpick.sample_costs s prng ~attempts
                in
                let within_q =
                  Array.fold_left
                    (fun acc c -> if c <= 1.5 *. optimal then acc + 1 else acc)
                    0 costs
                in
                let worst = Util.Stat.maximum costs
                and best = Float.max 1e-9 (Util.Stat.minimum costs) in
                (within_q, Array.length costs, worst /. best))
              h.Harness.queries
          in
          Array.iter
            (fun (within_q, total_q, width) ->
              within := !within + within_q;
              total := !total + total_q;
              widths := width :: !widths)
            per_query;
          {
            config;
            frac_within_1_5 = Util.Stat.fraction !within !total;
            avg_width = Util.Stat.geometric_mean (Array.of_list !widths);
          }))
    index_configs

let render h =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 9: cost distribution of 10,000 random (Quickpick) join orders,\n\
     normalized by the optimal PK+FK plan (true cardinalities, Cmm)\n\n";
  List.iter
    (fun name ->
      let q = Harness.find h name in
      let per_config = measure_query h q ~attempts:10_000 in
      Buffer.add_string buf
        (Util.Render.log_boxplot_rows ~title:(Printf.sprintf "JOB %s" name)
           ~lo:1.0 ~hi:1e6
           (List.map
              (fun (config, samples) ->
                ( Storage.Database.index_config_to_string config,
                  Some (Util.Stat.boxplot samples) ))
              per_config));
      Buffer.add_char buf '\n')
    query_names;
  let summaries = summarize h ~attempts:300 in
  Buffer.add_string buf
    (Util.Render.table
       ~title:"Workload summary (300 random plans per query)"
       ~header:[ "index config"; "plans within 1.5x of optimal"; "avg worst/best" ]
       (List.map
          (fun s ->
            [
              Storage.Database.index_config_to_string s.config;
              Util.Render.percent_cell s.frac_within_1_5;
              Printf.sprintf "%sx" (Util.Render.float_cell s.avg_width);
            ])
          summaries));
  Buffer.contents buf
