(** Shared experimental setup: one generated database, its statistics,
    the bound workload, and lazily-computed exact cardinalities.

    Every experiment module takes a {!t}; building one [t] per benchmark
    run amortizes the expensive pieces (data generation, ANALYZE, the
    exact-cardinality DP per query) across all tables and figures.

    Estimators and plans are obtained through the harness's
    {!Core.Pipeline}: estimator instances are cached per
    (query, system) and plan choices per
    (query, estimator, cost model, enumerator, shape, allow_nl, index
    configuration), so a full 13-experiment regeneration computes each
    distinct plan exactly once. {!stats} exposes the cache counters.

    Per-query work fans out over a {!Util.Domain_pool} via {!par_map}:
    [jobs = 1] (the default) replays the serial path bit-for-bit, and
    because pool results always land by input index and statistics are
    warmed at creation ({!Core.Pipeline.warm_statistics}), every
    experiment renders byte-identical output at any job count. *)

type qctx = {
  query : Workload.Job.query;
  graph : Query.Query_graph.t;
  projections : (int * int) list;
  truth : Cardest.True_card.t Util.Once.t;
}

type t = {
  db : Storage.Database.t;
  analyze : Dbstats.Analyze.t;  (** Default-settings ANALYZE. *)
  coarse : Dbstats.Analyze.t;  (** DBMS B's degraded statistics. *)
  queries : qctx array;  (** The bound JOB workload. *)
  pipeline : Core.Pipeline.t;
      (** The cache-aware planning pipeline every estimator and plan
          request goes through. *)
  verify_memo : (string, unit) Util.Shard_map.t;
      (** Estimate-sanitizer memo, scoped to this harness instance and
          keyed on query x estimator x index configuration. *)
  mutable jobs : int;
  mutable pool : Util.Domain_pool.t option;
      (** Created lazily on the first {!par_map}. *)
  mutable exec_jobs : int;
  mutable exec_pool : Util.Domain_pool.t option;
      (** The intra-query morsel pool, created lazily on the first
          {!execute} with [exec_jobs > 1]. Separate from [pool]: the
          two compose (all results are byte-identical at any setting of
          either), concurrent queries simply share it first-come. *)
  pool_lock : Mutex.t;
}

val create :
  ?seed:int ->
  ?scale:float ->
  ?queries:Workload.Job.query list ->
  ?jobs:int ->
  ?exec_jobs:int ->
  unit ->
  t
(** Defaults: seed 42, scale 1.0, the full 113-query workload, one job
    (serial), one exec job (serial executor). Warms both ANALYZE
    instances over the workload in the serial demand order, so later
    parallel probes cannot reorder the statistics sampling. *)

val jobs : t -> int

val set_jobs : t -> int -> unit
(** Change the parallelism; shuts down any existing pool (a fresh one is
    spawned lazily by the next {!par_map}). *)

val exec_jobs : t -> int

val set_exec_jobs : t -> int -> unit
(** Change the intra-query (morsel) parallelism; shuts down any
    existing morsel pool. Results of {!execute} never depend on this —
    only wall clock does. *)

val exec_pool : t -> Util.Domain_pool.t option
(** The morsel pool when [exec_jobs > 1] (spawned on first use), for
    callers executing outside {!execute} (e.g. the re-optimization
    driver). *)

val shutdown : t -> unit
(** Join the worker domains of both pools, if any were spawned. The
    harness remains usable; the next use spawns fresh pools. *)

val par_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Fan a per-item function (typically per query) out over the harness
    pool; results are in input order. With [jobs = 1] this is a plain
    serial loop. *)

val par_map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!par_map} over an arbitrary work list. *)

val find : t -> string -> qctx
(** Query context by JOB name (e.g. ["16d"]); raises [Invalid_argument]
    with a registry-style error naming the unknown input and the valid
    names. *)

val pquery : qctx -> Core.Pipeline.query
(** The pipeline's view of a bound query. *)

val estimator : t -> qctx -> string -> Cardest.Estimator.t
(** System estimator by registry name ("PostgreSQL", "DBMS A", ...,
    "HyPer"), plus "PostgreSQL (true distinct)" and "true" (the exact
    oracle). Instances are cached in the pipeline. *)

val truth : qctx -> Cardest.True_card.t

val stats : t -> Core.Pipeline.stats
(** Plan/estimator cache counters of the underlying pipeline. *)

val stats_summary : t -> string

val with_index_config :
  t -> Storage.Database.index_config -> (unit -> 'a) -> 'a
(** Run a thunk under a physical design, restoring the previous one.
    Not domain-safe: experiments keep configuration sweeps serial and
    fan out only within one configuration. *)

val debug_verify : bool Atomic.t
(** When true, every {!plan_with} call also runs the estimate and cost
    sanitizer passes of {!Verify} (the estimate pass memoized per
    harness instance on query x estimator x index configuration), so a
    figure regeneration is self-checking. Off by default: the structural
    plan sanitizer alone always runs. *)

val verify_choice :
  t ->
  qctx ->
  est:Cardest.Estimator.t ->
  model:Cost.Cost_model.t ->
  shape:Planner.Search.shape_limit ->
  Plan.t * float ->
  unit
(** Sanitize one enumerator result: always the structural plan pass,
    plus the estimate/cost passes when {!debug_verify} is set. Raises
    [Invalid_argument] listing every violation found. *)

val plan_with :
  t ->
  qctx ->
  est:Cardest.Estimator.t ->
  model:Cost.Cost_model.t ->
  ?enumerator:Core.Registry.enumerator ->
  ?allow_nl:bool ->
  ?shape:Planner.Search.shape_limit ->
  ?allow_hash:bool ->
  ?seed:int ->
  unit ->
  Plan.t * float
(** Optimize the query through the pipeline's memoizing plan cache
    under the given estimator/cost model/enumerator and the database's
    current index configuration. Freshly enumerated plans pass the
    structural sanitizer before they are cached; the winning plan is
    additionally passed through {!verify_choice}. Defaults: exhaustive
    DP, bushy, no NL joins, hash joins allowed. *)

val execute :
  t ->
  qctx ->
  plan:Plan.t ->
  size_est:(Util.Bitset.t -> float) ->
  engine:Exec.Engine_config.t ->
  Exec.Executor.result

val true_cost : t -> qctx -> Plan.t -> float
(** Cmm cost of a plan under the exact cardinalities — the paper's proxy
    for runtime in the plan-space experiments (Section 6). *)

val slowdown_vs_optimal :
  t ->
  qctx ->
  est:Cardest.Estimator.t ->
  model:Cost.Cost_model.t ->
  engine:Exec.Engine_config.t ->
  float
(** End-to-end Section-4 measurement: optimize with [est], execute, and
    divide by the runtime of the true-cardinality plan. A timed-out query
    reports the lower bound [work_limit / baseline]. Nested-loop joins
    are offered to the optimizer exactly when the engine configuration
    executes them. *)
