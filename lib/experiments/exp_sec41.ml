(* domlint: safe [R1] — constant bucket edges, never written *)
let buckets = [| 0.9; 1.1; 2.0; 10.0; 100.0 |]

let bucket_labels =
  [ "<0.9"; "[0.9,1.1)"; "[1.1,2)"; "[2,10)"; "[10,100)"; ">100" ]

let slowdowns (h : Harness.t) system ~engine =
  Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      Array.to_list
        (Harness.par_map h
           (fun q ->
             let est = Harness.estimator h q system in
             Harness.slowdown_vs_optimal h q ~est
               ~model:Cost.Cost_model.postgres ~engine)
           h.Harness.queries))

let fractions values =
  let counts =
    Util.Stat.bucketize ~edges:buckets
      (Array.of_list (List.map (fun v -> if v = infinity then 1e9 else v) values))
  in
  let total = List.length values in
  Array.to_list (Array.map (fun c -> Util.Stat.fraction c total) counts)

let measure h =
  List.map
    (fun system ->
      (system, fractions (slowdowns h system ~engine:Exec.Engine_config.default_9_4)))
    Cardest.Systems.names

let render h =
  let rows = measure h in
  Util.Render.table
    ~title:
      "Section 4.1: slowdown of injected estimates vs true cardinalities\n\
       (PK indexes, stock engine: NL joins on, fixed-size hash tables)"
    ~header:("system" :: bucket_labels)
    (List.map
       (fun (system, fracs) ->
         system :: List.map Util.Render.percent_cell fracs)
       rows)
