module QG = Query.Query_graph
module Bitset = Util.Bitset

(* ------------------------------------------------------------------ *)
(* Statistics knobs: which per-attribute statistic buys what            *)

let base_qerrors (h : Harness.t) analyze =
  let errors = ref [] in
  Array.iter
    (fun (q : Harness.qctx) ->
      let ctx = { Cardest.Systems.db = h.Harness.db; graph = q.Harness.graph } in
      let est = Cardest.Systems.postgres analyze ctx in
      let tc = Harness.truth q in
      Array.iter
        (fun (r : QG.relation) ->
          if r.QG.preds <> [] then
            errors :=
              Util.Stat.q_error
                ~estimate:(Util.Stat.floored (est.Cardest.Estimator.base r.QG.idx))
                ~truth:(Util.Stat.floored (Cardest.True_card.base tc r.QG.idx))
              :: !errors)
        (QG.relations q.Harness.graph))
    h.Harness.queries;
  Array.of_list !errors

let statistics_knobs (h : Harness.t) =
  let variants =
    [
      ("full statistics (100 MCVs, 100 buckets)", Dbstats.Analyze.create h.Harness.db);
      ("no MCV list", Dbstats.Analyze.create ~seed:1338 ~mcv_entries:0 h.Harness.db);
      ("1-bucket histogram", Dbstats.Analyze.create ~seed:1339 ~buckets:1 h.Harness.db);
      ( "neither",
        Dbstats.Analyze.create ~seed:1340 ~mcv_entries:0 ~buckets:1 h.Harness.db );
    ]
  in
  Util.Render.table
    ~title:
      "Ablation A: PostgreSQL-style base estimation with statistics removed\n\
       (q-errors over all base-table selections)"
    ~header:[ "statistics"; "median"; "90th"; "95th"; "max" ]
    (List.map
       (fun (label, analyze) ->
         let e = base_qerrors h analyze in
         [
           label;
           Util.Render.float_cell (Util.Stat.median e);
           Util.Render.float_cell (Util.Stat.percentile e 0.90);
           Util.Render.float_cell (Util.Stat.percentile e 0.95);
           Util.Render.float_cell (Util.Stat.maximum e);
         ])
       variants)

(* ------------------------------------------------------------------ *)
(* Damping sweep                                                       *)

let damping_sweep (h : Harness.t) =
  let analyze = h.Harness.analyze in
  let exponents = [ 1.0; 0.95; 0.9; 0.85; 0.8; 0.7 ] in
  let rows =
    List.map
      (fun damping ->
        (* Median signed error of deep (>= 4-join) subexpressions. Each
           worker builds its own estimator instance (per-instance sample
           PRNG), so per-query fan-out stays deterministic; the fold
           replays the serial push order. *)
        let per_query =
          Harness.par_map h
            (fun (q : Harness.qctx) ->
              let ctx =
                { Cardest.Systems.db = h.Harness.db; graph = q.Harness.graph }
              in
              let est = Cardest.Systems.dbms_a_damped damping analyze ctx in
              let tc = Harness.truth q in
              let items = ref [] in
              Array.iter
                (fun s ->
                  if Bitset.cardinal s >= 5 then
                    items :=
                      Util.Stat.signed_error
                        ~estimate:(Util.Stat.floored (est.Cardest.Estimator.subset s))
                        ~truth:(Util.Stat.floored (Cardest.True_card.card tc s))
                      :: !items)
                (QG.connected_subsets q.Harness.graph);
              !items)
            h.Harness.queries
        in
        let e =
          Array.of_list
            (Array.fold_left (fun acc items -> items @ acc) [] per_query)
        in
        if Array.length e = 0 then [ Printf.sprintf "%.2f" damping; "-"; "-"; "-" ]
        else begin
          let under =
            Array.fold_left (fun a x -> if x < 0.1 then a + 1 else a) 0 e
          in
          let over =
            Array.fold_left (fun a x -> if x > 10.0 then a + 1 else a) 0 e
          in
          [
            Printf.sprintf "%.2f" damping;
            Util.Render.float_cell (Util.Stat.median e);
            Util.Render.percent_cell (Util.Stat.fraction under (Array.length e));
            Util.Render.percent_cell (Util.Stat.fraction over (Array.length e));
          ]
        end)
      exponents
  in
  Util.Render.table
    ~title:
      "Ablation B: DBMS A's damping exponent (applied to every join\n\
       selectivity after the first; 1.0 = pure independence). Signed error\n\
       est/true over subexpressions with >= 4 joins"
    ~header:[ "damping"; "median"; "under 10x+"; "over 10x+" ]
    rows

(* ------------------------------------------------------------------ *)
(* Hash-table bucket floor                                             *)

let bucket_floor (h : Harness.t) =
  (* A subset of queries keeps this quick; fixed-size tables sized by
     PostgreSQL's estimates under each floor. *)
  let sample_queries =
    Array.to_list h.Harness.queries
    |> List.filteri (fun i _ -> i mod 5 = 0)
  in
  let floors = [ 16; 256; 1024; 8192 ] in
  let rows =
    Harness.with_index_config h Storage.Database.Pk_only (fun () ->
        List.map
          (fun floor ->
            let engine =
              {
                Exec.Engine_config.no_nl with
                Exec.Engine_config.hash_bucket_floor = floor;
                name = Printf.sprintf "floor %d" floor;
              }
            in
            let slowdowns =
              Harness.par_map_list h
                (fun q ->
                  let est = Harness.estimator h q "PostgreSQL" in
                  Harness.slowdown_vs_optimal h q ~est
                    ~model:Cost.Cost_model.postgres ~engine)
                sample_queries
            in
            let arr = Array.of_list slowdowns in
            let severe = List.length (List.filter (fun s -> s > 100.0) slowdowns) in
            [
              string_of_int floor;
              Util.Render.float_cell (Util.Stat.median arr);
              Util.Render.float_cell (Util.Stat.percentile arr 0.95);
              string_of_int severe;
            ])
          floors)
  in
  Util.Render.table
    ~title:
      (Printf.sprintf
         "Ablation C: fixed-size hash tables under different bucket floors\n\
          (PostgreSQL estimates, no NL joins, %d queries; slowdown vs optimal)"
         (List.length sample_queries))
    ~header:[ "bucket floor"; "median"; "95th"; ">100x" ]
    rows

(* ------------------------------------------------------------------ *)
(* Syntactic order sensitivity (footnote 6)                             *)

let syntactic_order (h : Harness.t) =
  (* Rebind the same query with its FROM clause reversed / rotated: the
     clamping of intermediate estimates to >= 1 row interacts with the
     (relation-order-dependent) decomposition, so the final estimate
     changes — the paper's footnote-6 anecdote (there: a simple 2-join
     query estimated at 3, 9, 128 or 310 rows depending on syntax). *)
  (* The clamp only bites when one decomposition's intermediate estimate
     drops below one row; which selection year does that depends on the
     scale, so probe a few and keep the first that diverges. *)
  let sql_for year =
    Printf.sprintf
      "SELECT MIN(t.title) FROM title AS t, movie_companies AS mc, \
       movie_info AS mi WHERE t.id = mc.movie_id AND t.id = mi.movie_id AND \
       mi.info = 'Horror' AND t.production_year < %d"
      year
  in
  let estimate_for parsed from =
    let bound =
      Sqlfront.Binder.bind h.Harness.db ~name:"footnote6"
        { parsed with Sqlfront.Ast.from }
    in
    let graph = bound.Sqlfront.Binder.graph in
    let ctx = { Cardest.Systems.db = h.Harness.db; graph } in
    (Cardest.Systems.postgres h.Harness.analyze ctx).Cardest.Estimator.subset
      (QG.full_set graph)
  in
  let diverges parsed =
    let orders =
      [ parsed.Sqlfront.Ast.from; List.rev parsed.Sqlfront.Ast.from ]
    in
    match List.map (estimate_for parsed) orders with
    | [ a; b ] -> a <> b
    | _ -> false
  in
  let parsed =
    let candidates =
      List.map (fun y -> Sqlfront.Parser.parse (sql_for y))
        [ 1895; 1900; 1905; 1910; 1920; 1930 ]
    in
    match List.find_opt diverges candidates with
    | Some p -> p
    | None -> List.hd candidates
  in
  let permutations =
    [
      ("original FROM order", parsed.Sqlfront.Ast.from);
      ("reversed", List.rev parsed.Sqlfront.Ast.from);
      ( "rotated by 3",
        (let rec rotate n l =
           if n = 0 then l
           else match l with [] -> [] | x :: rest -> rotate (n - 1) (rest @ [ x ])
         in
         rotate 3 parsed.Sqlfront.Ast.from) );
      ("sorted by table name", List.sort compare parsed.Sqlfront.Ast.from);
    ]
  in
  let truth =
    let bound = Sqlfront.Binder.bind h.Harness.db ~name:"footnote6" parsed in
    let graph = bound.Sqlfront.Binder.graph in
    Util.Stat.floored
      (Cardest.True_card.card (Cardest.True_card.compute graph)
         (QG.full_set graph))
  in
  let rows =
    List.map
      (fun (label, from) ->
        let bound =
          Sqlfront.Binder.bind h.Harness.db ~name:"13d-perm"
            { parsed with Sqlfront.Ast.from }
        in
        let graph = bound.Sqlfront.Binder.graph in
        let ctx = { Cardest.Systems.db = h.Harness.db; graph } in
        let est = Cardest.Systems.postgres h.Harness.analyze ctx in
        [
          label;
          Util.Render.float_cell
            (est.Cardest.Estimator.subset (QG.full_set graph));
        ])
      permutations
  in
  Util.Render.table
    ~title:
      (Printf.sprintf
         "Ablation D: one 2-join query, different FROM-clause orders\n\
          (the paper's footnote-6 anecdote; true cardinality is %.0f)"
         truth)
    ~header:[ "FROM clause"; "PostgreSQL estimate" ]
    rows

(* ------------------------------------------------------------------ *)
(* Hash join vs sort-merge join (the paper's work_mem point, §2.5)      *)

let join_algorithms (h : Harness.t) =
  let sample_queries =
    Array.to_list h.Harness.queries |> List.filteri (fun i _ -> i mod 5 = 0)
  in
  let rows =
    Harness.with_index_config h Storage.Database.Pk_only (fun () ->
        List.map
          (fun (label, allow_hash) ->
            let runtimes =
              Harness.par_map_list h
                (fun (q : Harness.qctx) ->
                  let oracle = Harness.estimator h q "true" in
                  let plan, _ =
                    Harness.plan_with h q ~est:oracle ~model:Cost.Cost_model.cmm
                      ~allow_hash ()
                  in
                  let r =
                    Harness.execute h q ~plan
                      ~size_est:oracle.Cardest.Estimator.subset
                      ~engine:Exec.Engine_config.robust
                  in
                  if r.Exec.Executor.timed_out then None
                  else Some (Float.max 0.01 r.Exec.Executor.runtime_ms))
                sample_queries
              |> List.filter_map Fun.id
            in
            [
              label;
              Printf.sprintf "%s ms"
                (Util.Render.float_cell
                   (Util.Stat.geometric_mean (Array.of_list runtimes)));
            ])
          [
            ("hash joins enabled (default)", true);
            ("hash joins disabled (sort-merge)", false);
          ])
  in
  Util.Render.table
    ~title:
      (Printf.sprintf
         "Ablation E: hash joins vs sort-merge joins (the paper's work_mem\n\
          observation, section 2.5; true cardinalities, %d queries,\n\
          geometric-mean runtime)"
         (List.length sample_queries))
    ~header:[ "engine"; "geomean runtime" ]
    rows

let render h =
  String.concat "\n"
    [
      statistics_knobs h; damping_sweep h; bucket_floor h; syntactic_order h;
      join_algorithms h;
    ]
