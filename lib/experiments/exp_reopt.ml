(* Mid-query re-optimization (Perron et al., PAPERS.md): execute every
   benchmark query with execution-time cardinality checkpoints enabled,
   once with re-planning off and once with it on, under each of the five
   emulated estimators — plus the Simpli-Squared no-estimates baseline —
   and bucket the slowdowns against the true-cardinality optimum.

   Both arms run through [Reopt.Driver]: the off arm with
   [max_replans = 0] (checkpoints observed, never acted on), the on arm
   with the default budget. The executor is exact, so the two arms must
   return identical rows and aggregates — the experiment enforces that
   on every comparable execution. *)

module Bitset = Util.Bitset

(* domlint: safe [R1] — constant bucket edges, never written *)
let buckets = [| 0.9; 1.1; 2.0; 10.0; 100.0 |]

let bucket_labels =
  [ "<0.9"; "[0.9,1.1)"; "[1.1,2)"; "[2,10)"; "[10,100)"; ">100" ]

(* Q-error threshold that trips a re-plan; `jobench experiment
   --reopt-threshold` overrides (same pattern as Harness.debug_verify). *)
let threshold = Atomic.make 2.0

let engine = Exec.Engine_config.default_9_4

let model = Cost.Cost_model.postgres

let simpli_label = "Simpli-Squared (no estimates)"

(* One executed arm of one (query, system) cell. *)
type arm = {
  slow : float;  (* runtime / true-optimum runtime *)
  ms : float;
  rows : int;
  mins : Storage.Value.t list;
  timed_out : bool;
  replans : int;
}

(* Per-system aggregate over the workload, also consumed by
   bench/main.exe for BENCH_reopt.json. *)
type summary = {
  system : string;
  off_slows : float array;
  on_slows : float array;
  replans : int;
  replanned_queries : int;
  off_ms : float;
  on_ms : float;
  comparable : int;  (* executions where neither arm timed out *)
  best_query : string;  (* biggest off/on normalized-cost ratio *)
  best_off : float;
  best_on : float;
}

let last_summaries : summary list Atomic.t = Atomic.make []

let arm_of_outcome ~base_ms (o : Reopt.Driver.outcome) =
  let r = o.Reopt.Driver.result in
  {
    slow = r.Exec.Executor.runtime_ms /. base_ms;
    ms = r.Exec.Executor.runtime_ms;
    rows = r.Exec.Executor.rows;
    mins = r.Exec.Executor.mins;
    timed_out = r.Exec.Executor.timed_out;
    replans = o.Reopt.Driver.replans;
  }

(* Every system's off/on pair for one query; baseline executed once and
   shared. The Simpli-Squared arm plans its join order from raw table
   sizes (PostgreSQL estimates still size hash tables and cost the
   physical operators, as in the original setup). *)
let measure_query (h : Harness.t) (q : Harness.qctx) =
  let allow_nl = engine.Exec.Engine_config.allow_nl_join in
  let oracle = Harness.estimator h q "true" in
  let optimal_plan, _ = Harness.plan_with h q ~est:oracle ~model ~allow_nl () in
  let baseline =
    Harness.execute h q ~plan:optimal_plan
      ~size_est:oracle.Cardest.Estimator.subset ~engine
  in
  let base_ms = Float.max 0.001 baseline.Exec.Executor.runtime_ms in
  let cell system enumerator =
    let est = Harness.estimator h q system in
    let plan0, _ = Harness.plan_with h q ~est ~model ?enumerator ~allow_nl () in
    let drive max_replans =
      Reopt.Driver.run ~db:h.Harness.db ~graph:q.Harness.graph ~config:engine
        ~model ~estimator:est ~threshold:(Atomic.get threshold) ~max_replans
        ~plan0 ?pool:(Harness.exec_pool h)
        ~projections:q.Harness.projections ()
    in
    (arm_of_outcome ~base_ms (drive 0), arm_of_outcome ~base_ms (drive 8))
  in
  List.map (fun s -> (s, cell s None)) Cardest.Systems.names
  @ [ (simpli_label, cell "PostgreSQL" (Some Core.Registry.Simpli_squared)) ]

let summarize queries cells system =
  let off = ref [] and on = ref [] in
  let replans = ref 0 and replanned = ref 0 in
  let off_ms = ref 0.0 and on_ms = ref 0.0 in
  let comparable = ref 0 in
  let best = ref None in
  Array.iteri
    (fun i per_system ->
      let name = (queries.(i) : Harness.qctx).Harness.query.Workload.Job.name in
      let a_off, a_on = List.assoc system per_system in
      off := a_off.slow :: !off;
      on := a_on.slow :: !on;
      replans := !replans + a_on.replans;
      if a_on.replans > 0 then incr replanned;
      off_ms := !off_ms +. a_off.ms;
      on_ms := !on_ms +. a_on.ms;
      if not (a_off.timed_out || a_on.timed_out) then begin
        incr comparable;
        if a_off.rows <> a_on.rows || a_off.mins <> a_on.mins then
          failwith
            (Printf.sprintf
               "exp_reopt: %s/%s returned different results with \
                re-optimization on (%d rows) vs off (%d rows)"
               name system a_on.rows a_off.rows);
        let ratio = a_off.slow /. Float.max 1e-9 a_on.slow in
        match !best with
        | Some (_, _, _, r) when r >= ratio -> ()
        | _ -> best := Some (name, a_off.slow, a_on.slow, ratio)
      end)
    cells;
  let best_query, best_off, best_on =
    match !best with
    | Some (n, o, a, _) -> (n, o, a)
    | None -> ("-", nan, nan)
  in
  {
    system;
    off_slows = Array.of_list (List.rev !off);
    on_slows = Array.of_list (List.rev !on);
    replans = !replans;
    replanned_queries = !replanned;
    off_ms = !off_ms;
    on_ms = !on_ms;
    comparable = !comparable;
    best_query;
    best_off;
    best_on;
  }

let fractions values =
  let counts =
    Util.Stat.bucketize ~edges:buckets
      (Array.map (fun v -> if v = infinity then 1e9 else v) values)
  in
  Array.to_list
    (Array.map (fun c -> Util.Stat.fraction c (Array.length values)) counts)

let measure h =
  Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      let cells = Harness.par_map h (measure_query h) h.Harness.queries in
      List.map
        (summarize h.Harness.queries cells)
        (Cardest.Systems.names @ [ simpli_label ]))

(* Threshold sweep: how sensitive is the recovery to the trip point?
   PostgreSQL estimates, every other query (two executions per query per
   threshold keep the sweep affordable). *)
let sweep h =
  let thresholds = [ 1.5; 2.0; 5.0; 10.0 ] in
  let queries =
    Array.of_list
      (Array.to_list h.Harness.queries |> List.filteri (fun i _ -> i mod 2 = 0))
  in
  Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      let allow_nl = engine.Exec.Engine_config.allow_nl_join in
      let per_query =
        Harness.par_map h
          (fun (q : Harness.qctx) ->
            let oracle = Harness.estimator h q "true" in
            let optimal_plan, _ =
              Harness.plan_with h q ~est:oracle ~model ~allow_nl ()
            in
            let baseline =
              Harness.execute h q ~plan:optimal_plan
                ~size_est:oracle.Cardest.Estimator.subset ~engine
            in
            let base_ms = Float.max 0.001 baseline.Exec.Executor.runtime_ms in
            let est = Harness.estimator h q "PostgreSQL" in
            let plan0, _ = Harness.plan_with h q ~est ~model ~allow_nl () in
            List.map
              (fun t ->
                let o =
                  Reopt.Driver.run ~db:h.Harness.db ~graph:q.Harness.graph
                    ~config:engine ~model ~estimator:est ~threshold:t
                    ~plan0 ?pool:(Harness.exec_pool h)
                    ~projections:q.Harness.projections ()
                in
                ( o.Reopt.Driver.result.Exec.Executor.runtime_ms /. base_ms,
                  o.Reopt.Driver.replans ))
              thresholds)
          queries
      in
      Util.Render.table
        ~title:
          "Threshold sweep (PostgreSQL estimates, every other query): median \
           slowdown\nand re-plan volume per q-error trip point"
        ~header:[ "threshold"; "median slowdown"; "re-plans"; "queries re-planned" ]
        (List.mapi
           (fun ti t ->
             let slows =
               Array.map (fun per_t -> fst (List.nth per_t ti)) per_query
             in
             let replans =
               Array.fold_left
                 (fun acc per_t -> acc + snd (List.nth per_t ti))
                 0 per_query
             in
             let replanned =
               Array.fold_left
                 (fun acc per_t ->
                   if snd (List.nth per_t ti) > 0 then acc + 1 else acc)
                 0 per_query
             in
             [
               Printf.sprintf "%g" t;
               Util.Render.float_cell (Util.Stat.median slows);
               string_of_int replans;
               string_of_int replanned;
             ])
           thresholds))

let render h =
  let summaries = measure h in
  Atomic.set last_summaries summaries;
  let main =
    Util.Render.table
      ~title:
        (Printf.sprintf
           "Re-optimization: slowdown vs the true-cardinality optimum with \
            execution-time\n\
            cardinality feedback off/on (q-error threshold %g, PK indexes, \
            stock engine)"
           (Atomic.get threshold))
      ~header:("system" :: "reopt" :: bucket_labels)
      (List.concat_map
         (fun s ->
           [
             (s.system :: "off"
             :: List.map Util.Render.percent_cell (fractions s.off_slows));
             (s.system :: "on"
             :: List.map Util.Render.percent_cell (fractions s.on_slows));
           ])
         summaries)
  in
  let detail =
    Util.Render.table
      ~title:"Re-plan counts and runtime totals (simulated ms)"
      ~header:
        [
          "system"; "re-plans"; "queries re-planned"; "off total";
          "on total"; "median off"; "median on";
        ]
      (List.map
         (fun s ->
           [
             s.system;
             string_of_int s.replans;
             string_of_int s.replanned_queries;
             Util.Render.float_cell s.off_ms;
             Util.Render.float_cell s.on_ms;
             Util.Render.float_cell (Util.Stat.median s.off_slows);
             Util.Render.float_cell (Util.Stat.median s.on_slows);
           ])
         summaries)
  in
  let identical =
    let n =
      List.fold_left (fun acc s -> acc + s.comparable) 0 summaries
    in
    Printf.sprintf
      "query results identical with re-optimization on vs off: %d/%d \
       comparable executions"
      n n
  in
  let pg = List.find (fun s -> s.system = "PostgreSQL") summaries in
  let highlight =
    if Float.is_nan pg.best_off || pg.best_off <= pg.best_on then
      "re-planning reduced no PostgreSQL-estimated query's normalized cost"
    else
      Printf.sprintf
        "largest PostgreSQL gain: query %s, normalized cost %s -> %s \
         (%.1fx better)"
        pg.best_query
        (Util.Render.float_cell pg.best_off)
        (Util.Render.float_cell pg.best_on)
        (pg.best_off /. Float.max 1e-9 pg.best_on)
  in
  main ^ "\n" ^ detail ^ "\n" ^ identical ^ "\n" ^ highlight ^ "\n\n"
  ^ sweep h
