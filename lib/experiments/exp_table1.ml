module QG = Query.Query_graph

type row = {
  system : string;
  median : float;
  p90 : float;
  p95 : float;
  max : float;
  selections : int;
}

(* Cardinalities are floored at one row before computing q-errors so that
   deliberately empty selections stay finite (the paper's truths were
   tiny but non-zero). *)
let measure (h : Harness.t) =
  List.map
    (fun system ->
      (* Per-query q-errors fan out across domains; the serial merge
         below replays the original accumulation order exactly. *)
      let per_query =
        Harness.par_map h
          (fun (q : Harness.qctx) ->
            let est = Harness.estimator h q system in
            let tc = Harness.truth q in
            let items = ref [] in
            Array.iter
              (fun (r : QG.relation) ->
                if r.QG.preds <> [] then begin
                  let estimate = Util.Stat.floored (est.Cardest.Estimator.base r.QG.idx) in
                  let truth = Util.Stat.floored (Cardest.True_card.base tc r.QG.idx) in
                  items := Util.Stat.q_error ~estimate ~truth :: !items
                end)
              (QG.relations q.Harness.graph);
            !items)
          h.Harness.queries
      in
      let errors =
        Array.of_list
          (Array.fold_left (fun acc items -> items @ acc) [] per_query)
      in
      {
        system;
        median = Util.Stat.median errors;
        p90 = Util.Stat.percentile errors 0.90;
        p95 = Util.Stat.percentile errors 0.95;
        max = Util.Stat.maximum errors;
        selections = Array.length errors;
      })
    Cardest.Systems.names

let render h =
  let rows = measure h in
  let selections = match rows with r :: _ -> r.selections | [] -> 0 in
  Util.Render.table
    ~title:
      (Printf.sprintf
         "Table 1: q-errors for the %d base table selections of the workload"
         selections)
    ~header:[ "system"; "median"; "90th"; "95th"; "max" ]
    (List.map
       (fun r ->
         [
           r.system;
           Util.Render.float_cell r.median;
           Util.Render.float_cell r.p90;
           Util.Render.float_cell r.p95;
           Util.Render.float_cell r.max;
         ])
       rows)
